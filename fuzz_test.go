package wcoring

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rpq"
)

// Fuzz targets double as robustness tests: on every `go test` run they
// exercise the seed corpus; `go test -fuzz=Fuzz<Name>` explores further.
// The invariant in each case is "malformed input must error, never
// panic, and valid input must round-trip".

// FuzzReadStore feeds arbitrary bytes to the store deserializer.
func FuzzReadStore(f *testing.F) {
	store, err := NewStore([]StringTriple{
		{S: "a", P: "p", O: "b"},
		{S: "b", P: "p", O: "c"},
	}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not an index"))
	// A few single-byte corruptions of the valid image.
	for _, i := range []int{0, 8, 20, len(valid) / 2, len(valid) - 1} {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x5A
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadStore(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted input must yield a usable store.
		if s.Len() < 0 {
			t.Fatal("negative length")
		}
		_, _ = s.Query([]PatternString{{S: "?x", P: "?p", O: "?y"}}, QueryOptions{Limit: 5})
	})
}

// FuzzParseTSV feeds arbitrary text to the triple parser.
func FuzzParseTSV(f *testing.F) {
	f.Add("a b c\n")
	f.Add("a b\n")
	f.Add("# comment\n\n x\ty\tz ")
	f.Fuzz(func(t *testing.T, data string) {
		ts, err := ParseTSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, tr := range ts {
			if tr.S == "" || tr.P == "" || tr.O == "" {
				t.Fatalf("parser returned empty component: %+v", tr)
			}
		}
	})
}

// FuzzParsePath feeds arbitrary expressions to the property-path parser.
func FuzzParsePath(f *testing.F) {
	f.Add("a/b|c*")
	f.Add("^(a|b)+/c?")
	f.Add("((((")
	f.Add("a//b")
	f.Add("^")
	resolve := func(name string) (ID, bool) { return ID(len(name)), true }
	f.Fuzz(func(t *testing.T, expr string) {
		e, err := rpq.ParsePath(expr, resolve)
		if err != nil {
			return
		}
		// A parsed expression must compile into a well-formed NFA.
		a := rpq.Compile(e)
		if a.States() < 2 {
			t.Fatalf("parsed %q into a %d-state NFA", expr, a.States())
		}
	})
}
