package wcoring

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/rpq"
	"repro/internal/testutil"
)

// Fuzz targets double as robustness tests: on every `go test` run they
// exercise the seed corpus; `go test -fuzz=Fuzz<Name>` explores further.
// The invariant in each case is "malformed input must error, never
// panic, and valid input must round-trip".

// FuzzReadStore feeds arbitrary bytes to the store deserializer.
func FuzzReadStore(f *testing.F) {
	store, err := NewStore([]StringTriple{
		{S: "a", P: "p", O: "b"},
		{S: "b", P: "p", O: "c"},
	}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not an index"))
	// A few single-byte corruptions of the valid image.
	for _, i := range []int{0, 8, 20, len(valid) / 2, len(valid) - 1} {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x5A
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadStore(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted input must yield a usable store.
		if s.Len() < 0 {
			t.Fatal("negative length")
		}
		_, _ = s.Query([]PatternString{{S: "?x", P: "?p", O: "?y"}}, QueryOptions{Limit: 5})
	})
}

// FuzzViewStore is the differential fuzzer for the zero-copy load path:
// ViewStore and ReadStore must accept/reject the same inputs, and on
// acceptance answer queries identically. The view buffer is 8-byte
// aligned so the aliasing fast path (not the copy fallback) is the one
// being fuzzed.
func FuzzViewStore(f *testing.F) {
	store, err := NewStore([]StringTriple{
		{S: "a", P: "p", O: "b"},
		{S: "b", P: "p", O: "c"},
		{S: "c", P: "q", O: "a"},
	}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not an index"))
	for _, i := range []int{0, 8, 20, len(valid) / 2, len(valid) - 1} {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x5A
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		aligned := make([]byte, len(data)+8)
		base := (8 - int(uintptr(unsafe.Pointer(&aligned[0])))%8) % 8
		copy(aligned[base:], data)
		viewed, errView := ViewStore(aligned[base : base+len(data)])
		read, errRead := ReadStore(bytes.NewReader(data))
		if (errView == nil) != (errRead == nil) {
			t.Fatalf("paths disagree: view err %v, read err %v", errView, errRead)
		}
		if errView != nil {
			return
		}
		if viewed.Len() != read.Len() {
			t.Fatalf("Len: view %d, read %d", viewed.Len(), read.Len())
		}
		q := []PatternString{{S: "?x", P: "?p", O: "?y"}}
		sv, errV := viewed.Query(q, QueryOptions{Limit: 10})
		sr, errR := read.Query(q, QueryOptions{Limit: 10})
		if (errV == nil) != (errR == nil) || len(sv) != len(sr) {
			t.Fatalf("query: view (%d sols, %v), read (%d sols, %v)", len(sv), errV, len(sr), errR)
		}
	})
}

// FuzzParseTSV feeds arbitrary text to the triple parser.
func FuzzParseTSV(f *testing.F) {
	f.Add("a b c\n")
	f.Add("a b\n")
	f.Add("# comment\n\n x\ty\tz ")
	f.Fuzz(func(t *testing.T, data string) {
		ts, err := ParseTSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, tr := range ts {
			if tr.S == "" || tr.P == "" || tr.O == "" {
				t.Fatalf("parser returned empty component: %+v", tr)
			}
		}
	})
}

// FuzzParallelLTJ is the differential fuzzer for intra-query
// parallelism: over random graphs and random patterns of every shape,
// the parallel engine at 2, 4 and 8 workers must return exactly the
// sequential solution multiset, and under a Limit it must return
// min(Limit, total) solutions all drawn from that multiset.
func FuzzParallelLTJ(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint16(0))
	f.Add(int64(2), uint8(1), uint8(1), uint16(1))
	f.Add(int64(3), uint8(4), uint8(4), uint16(7))
	f.Add(int64(99), uint8(3), uint8(2), uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, nt, nv uint8, limit uint16) {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 80+rng.Intn(80), 4+graph.ID(rng.Intn(16)), 1+graph.ID(rng.Intn(4)))
		r := ring.New(g, ring.Options{})
		idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
			return r.NewPatternState(tp)
		})
		q := testutil.RandomPattern(rng, g, 1+int(nt)%4, 1+int(nv)%4, 0.35, false)

		seq, err := ltj.Evaluate(idx, q, ltj.Options{})
		if err != nil {
			t.Fatalf("sequential %v: %v", q, err)
		}
		want := graph.CanonicalizeBindings(seq.Solutions, q.Vars())
		wantCount := map[string]int{}
		for _, k := range want {
			wantCount[k]++
		}

		for _, p := range []int{2, 4, 8} {
			par, err := ltj.Evaluate(idx, q, ltj.Options{Parallelism: p})
			if err != nil {
				t.Fatalf("P=%d %v: %v", p, q, err)
			}
			got := graph.CanonicalizeBindings(par.Solutions, q.Vars())
			if len(got) != len(want) {
				t.Fatalf("P=%d %v: %d solutions, want %d", p, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=%d %v: multiset diverges at %d: %s != %s", p, q, i, got[i], want[i])
				}
			}

			if limit == 0 {
				continue
			}
			lim, err := ltj.Evaluate(idx, q, ltj.Options{Parallelism: p, Limit: int(limit)})
			if err != nil {
				t.Fatalf("P=%d limit=%d %v: %v", p, limit, q, err)
			}
			wantN := int(limit)
			if len(want) < wantN {
				wantN = len(want)
			}
			if len(lim.Solutions) != wantN {
				t.Fatalf("P=%d limit=%d %v: %d solutions, want %d", p, limit, q, len(lim.Solutions), wantN)
			}
			gotCount := map[string]int{}
			for _, k := range graph.CanonicalizeBindings(lim.Solutions, q.Vars()) {
				gotCount[k]++
			}
			for k, n := range gotCount {
				if n > wantCount[k] {
					t.Fatalf("P=%d limit=%d %v: solution %s appears %d times, sequential has %d",
						p, limit, q, k, n, wantCount[k])
				}
			}
		}
	})
}

// FuzzParsePath feeds arbitrary expressions to the property-path parser.
func FuzzParsePath(f *testing.F) {
	f.Add("a/b|c*")
	f.Add("^(a|b)+/c?")
	f.Add("((((")
	f.Add("a//b")
	f.Add("^")
	resolve := func(name string) (ID, bool) { return ID(len(name)), true }
	f.Fuzz(func(t *testing.T, expr string) {
		e, err := rpq.ParsePath(expr, resolve)
		if err != nil {
			return
		}
		// A parsed expression must compile into a well-formed NFA.
		a := rpq.Compile(e)
		if a.States() < 2 {
			t.Fatalf("parsed %q into a %d-state NFA", expr, a.States())
		}
	})
}
