# Repo checks. `make check` is the full CI gate; the individual targets
# exist so a failing stage can be rerun alone.
#
#   make fmt    gofmt diff check (fails listing unformatted files)
#   make vet    go vet
#   make build  compile everything
#   make test   full test suite (includes the fuzz seed corpora)
#   make race   race-detector lane over the concurrent engine and the
#               shared-ring fork tests (the parallel LTJ surface)
#   make bench  the parallel-LTJ sweep benchmark, one iteration
#   make bench-smoke      compile-and-run every benchmark once (catches
#                         bit-rotted benchmarks without paying full runs)
#   make bench-substrate  the rank/select substrate microbenchmarks
#                         (bits, bitvector, wavelet, ring Leap/Bind);
#                         benchstat-friendly: set BENCH_COUNT>=10 to compare
#   make check  fmt + vet + build + test + race + bench-smoke

GO ?= go
BENCH_COUNT ?= 1

.PHONY: check fmt vet build test race bench bench-smoke bench-substrate

check: fmt vet build test race bench-smoke

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run 'Parallel|Stream' ./internal/ltj/... ./internal/ring/...

bench:
	$(GO) test . -run XXX -bench 'BenchmarkParallelLTJ' -benchtime 1x

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-substrate:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) \
		./internal/bits ./internal/bitvector ./internal/wavelet ./internal/ring
