# Repo checks. `make check` is the full CI gate; the individual targets
# exist so a failing stage can be rerun alone.
#
#   make fmt    gofmt diff check (fails listing unformatted files)
#   make vet    go vet
#   make build  compile everything
#   make test   full test suite (includes the fuzz seed corpora)
#   make race   race-detector lane over the concurrent engine and the
#               shared-ring fork tests (the parallel LTJ surface)
#   make bench  the parallel-LTJ sweep benchmark, one iteration
#   make check  fmt + vet + build + test + race

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run 'Parallel|Stream' ./internal/ltj/... ./internal/ring/...

bench:
	$(GO) test . -run XXX -bench 'BenchmarkParallelLTJ' -benchtime 1x
