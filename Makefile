# Repo checks. `make check` is the full CI gate; the individual targets
# exist so a failing stage can be rerun alone.
#
#   make fmt    gofmt -s diff check (fails listing unformatted files)
#   make vet    go vet
#   make lint   ringlint, the repo-specific static analyzers (hotpath,
#               derivedstate, forksafe, truncation, viewsafe, guardedby,
#               golife, refpair, syncio, ctxflow) over the whole module,
#               with per-analyzer wall times
#   make lint-only ONLY=<a,b>  a subset of the analyzers (iterating on
#               one analyzer or an annotation pass)
#   make build  compile everything
#   make test   full test suite, shuffled (includes the fuzz seed corpora)
#   make test-debug  internal packages with the ringdebug assertion tag
#               (rank/select inverses, wavelet range sanity, leap ordering)
#   make race   race-detector lane over the full module (~4m on a
#               single-CPU container; rerun alone when iterating)
#   make bench  the parallel-LTJ sweep benchmark, one iteration
#   make bench-smoke      compile-and-run every benchmark once (catches
#                         bit-rotted benchmarks without paying full runs)
#   make bench-substrate  the rank/select substrate microbenchmarks
#                         (bits, bitvector, wavelet, ring Leap/Bind);
#                         benchstat-friendly: set BENCH_COUNT>=10 to compare
#   make bench-serve      the ringserve load-generator sweep (GOMAXPROCS
#                         1/4 x 1/4/16 clients x cache on/off, plus the
#                         shared-scan 2-core hot-set mix), writing
#                         BENCH_serve.json
#   make bench-batch      batched-vs-scalar leapfrog on the adversarial
#                         run workloads (dense runs, sparse tails,
#                         selective joins), writing BENCH_batch_leap.json
#   make bench-mmap-load  cold-start load comparison, decode vs mmap
#                         (wall + peak RSS, fresh process per run),
#                         writing BENCH_mmap_load.json
#   make serve-smoke      end-to-end ringserve smoke: build, index, serve,
#                         query, overload shedding, SIGTERM drain
#   make persist-smoke    end-to-end live-update smoke: insert over HTTP,
#                         SIGKILL, recover from the WAL, drain with a
#                         final checkpoint, inspect with ringstats
#   make mmap-smoke       end-to-end zero-copy smoke: ringstats layout,
#                         decode-vs-mmap differential serving across a
#                         restart, live mode with view-loaded checkpoints
#   make repl-smoke       end-to-end replication smoke: leader + follower,
#                         lag to zero, read-your-writes via X-Ring-Min-Seq,
#                         leader kill, promote, clean drain
#   make race-batch  batched lane (wavelet/ring/ltj) under -race with the
#               ringdebug assertions enabled
#   make check  fmt + vet + lint + build + test + test-debug + race +
#               race-batch + bench-smoke + bench-batch + serve-smoke +
#               persist-smoke + mmap-smoke + repl-smoke

GO ?= go
BENCH_COUNT ?= 1

.PHONY: check fmt vet lint lint-only build test test-debug race race-batch bench bench-smoke bench-substrate bench-serve bench-batch bench-mmap-load serve-smoke persist-smoke mmap-smoke repl-smoke

check: fmt vet lint build test test-debug race race-batch bench-smoke bench-batch serve-smoke persist-smoke mmap-smoke repl-smoke

fmt:
	@unformatted=$$(gofmt -s -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/ringlint -timing ./...

# Run a single analyzer while iterating on it or on annotations:
#   make lint-only ONLY=guardedby
#   make lint-only ONLY=refpair,syncio
lint-only:
	$(GO) run ./cmd/ringlint -timing -only $(ONLY) ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

test-debug:
	$(GO) test -tags ringdebug ./internal/...

race:
	$(GO) test -race ./...

# Batched lane under the race detector with the ringdebug assertions on:
# the radix-intersection descents and shared-scan grouping run with both
# their invariant checks and concurrency instrumentation.
race-batch:
	$(GO) test -race -tags ringdebug ./internal/wavelet ./internal/ring ./internal/ltj

bench:
	$(GO) test . -run XXX -bench 'BenchmarkParallelLTJ' -benchtime 1x

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-substrate:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) \
		./internal/bits ./internal/bitvector ./internal/wavelet ./internal/ring

bench-serve:
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkReplFanout' -benchtime 2s ./internal/server

bench-batch:
	BENCH_BATCH_JSON=$(CURDIR)/BENCH_batch_leap.json \
		$(GO) test -run TestRecordBatchLeapBench ./internal/ring

bench-mmap-load:
	$(GO) run ./cmd/benchload -json $(CURDIR)/BENCH_mmap_load.json

serve-smoke:
	sh scripts/serve_smoke.sh

persist-smoke:
	sh scripts/persist_smoke.sh

mmap-smoke:
	sh scripts/mmap_smoke.sh

repl-smoke:
	sh scripts/repl_smoke.sh
