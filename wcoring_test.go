package wcoring

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"
)

func nobelTriples() []StringTriple {
	return []StringTriple{
		{S: "Bohr", P: "adv", O: "Thomson"},
		{S: "Thomson", P: "adv", O: "Strutt"},
		{S: "Wheeler", P: "adv", O: "Bohr"},
		{S: "Thorne", P: "adv", O: "Wheeler"},
		{S: "Nobel", P: "nom", O: "Bohr"},
		{S: "Nobel", P: "nom", O: "Thomson"},
		{S: "Nobel", P: "nom", O: "Thorne"},
		{S: "Nobel", P: "nom", O: "Wheeler"},
		{S: "Nobel", P: "nom", O: "Strutt"},
		{S: "Nobel", P: "win", O: "Bohr"},
		{S: "Nobel", P: "win", O: "Thomson"},
		{S: "Nobel", P: "win", O: "Thorne"},
		{S: "Nobel", P: "win", O: "Strutt"},
	}
}

func nobelStore(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := NewStore(nobelTriples(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePaperQuery(t *testing.T) {
	for _, opt := range []Options{{}, {Compress: true}} {
		store := nobelStore(t, opt)
		sols, err := store.Query([]PatternString{
			{S: "?x", P: "win", O: "?y"},
			{S: "?x", P: "nom", O: "?z"},
			{S: "?z", P: "adv", O: "?y"},
		}, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, s := range sols {
			got = append(got, s["x"]+"/"+s["y"]+"/"+s["z"])
		}
		sort.Strings(got)
		want := []string{"Nobel/Bohr/Wheeler", "Nobel/Strutt/Thomson", "Nobel/Thomson/Bohr"}
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("solutions = %v, want %v", got, want)
		}
	}
}

func TestStoreVariablePredicate(t *testing.T) {
	store := nobelStore(t, Options{})
	sols, err := store.Query([]PatternString{
		{S: "Nobel", P: "?rel", O: "Bohr"},
	}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]bool{}
	for _, s := range sols {
		rels[s["rel"]] = true
	}
	if !rels["nom"] || !rels["win"] || len(rels) != 2 {
		t.Fatalf("rels = %v, want {nom, win}", rels)
	}
}

func TestStoreAbsentConstantIsEmpty(t *testing.T) {
	store := nobelStore(t, Options{})
	sols, err := store.Query([]PatternString{
		{S: "Einstein", P: "win", O: "?y"},
	}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Fatalf("absent constant yielded %d solutions", len(sols))
	}
}

func TestStoreQueryValidation(t *testing.T) {
	store := nobelStore(t, Options{})
	if _, err := store.Query([]PatternString{{S: "", P: "win", O: "?y"}}, QueryOptions{}); err == nil {
		t.Error("empty component accepted")
	}
	if _, err := store.Query([]PatternString{{S: "?", P: "win", O: "?y"}}, QueryOptions{}); err == nil {
		t.Error("unnamed variable accepted")
	}
}

func TestStoreLimit(t *testing.T) {
	store := nobelStore(t, Options{})
	sols, err := store.Query([]PatternString{
		{S: "?s", P: "?p", O: "?o"},
	}, QueryOptions{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 4 {
		t.Fatalf("limit 4: got %d", len(sols))
	}
}

func TestStoreSerializationRoundTrip(t *testing.T) {
	store := nobelStore(t, Options{})
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("Len after reload = %d, want %d", loaded.Len(), store.Len())
	}
	sols, err := loaded.Query([]PatternString{
		{S: "?who", P: "adv", O: "Bohr"},
	}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["who"] != "Wheeler" {
		t.Fatalf("reloaded store: %v", sols)
	}
}

func TestReadStoreCorrupt(t *testing.T) {
	store := nobelStore(t, Options{})
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadStore(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("accepted truncated store")
	}
	if _, err := ReadStore(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty stream")
	}
	bad := append([]byte(nil), data...)
	bad[10] ^= 0xFF // corrupt inside the dictionary section
	if _, err := ReadStore(bytes.NewReader(bad)); err == nil {
		t.Error("accepted corrupted dictionary")
	}
}

func TestEvaluateTimeoutSurfaced(t *testing.T) {
	// Build a dense store and give it an impossible deadline.
	var ts []StringTriple
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			ts = append(ts, StringTriple{S: name(i), P: "e", O: name(j)})
		}
	}
	store, err := NewStore(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = store.Query([]PatternString{
		{S: "?a", P: "e", O: "?b"},
		{S: "?b", P: "e", O: "?c"},
		{S: "?c", P: "e", O: "?d"},
	}, QueryOptions{Timeout: time.Nanosecond})
	if err == nil {
		t.Skip("query finished within a nanosecond budget")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
}

func name(i int) string { return string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestIDLevelAPI(t *testing.T) {
	g := NewGraph([]Triple{{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 2}, {S: 0, P: 0, O: 2}})
	r := NewRing(g, Options{})
	sols, err := Evaluate(r, Pattern{
		TP(Var("x"), Const(0), Var("y")),
		TP(Var("y"), Const(0), Var("z")),
		TP(Var("x"), Const(0), Var("z")),
	}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["x"] != 0 || sols[0]["y"] != 1 || sols[0]["z"] != 2 {
		t.Fatalf("triangle = %v", sols)
	}
}

func TestParseTSVReExport(t *testing.T) {
	ts, err := ParseTSV(strings.NewReader("a b c\n"))
	if err != nil || len(ts) != 1 {
		t.Fatalf("ParseTSV = %v, %v", ts, err)
	}
}

func TestStoreSelect(t *testing.T) {
	store := nobelStore(t, Options{})
	// Distinct nominees, projected and ordered.
	sols, err := store.Select([]PatternString{
		{S: "Nobel", P: "nom", O: "?who"},
	}, SelectOptions{
		Project:  []string{"who"},
		Distinct: true,
		OrderBy:  []string{"who"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 5 {
		t.Fatalf("got %d nominees, want 5", len(sols))
	}
	for i := 1; i < len(sols); i++ {
		if sols[i-1]["who"] >= sols[i]["who"] {
			t.Fatalf("not ordered: %v", sols)
		}
	}
	// Offset + limit window.
	sols, err = store.Select([]PatternString{
		{S: "Nobel", P: "nom", O: "?who"},
	}, SelectOptions{
		QueryOptions: QueryOptions{Limit: 2},
		Project:      []string{"who"},
		OrderBy:      []string{"who"},
		Offset:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 || sols[0]["who"] != "Strutt" {
		t.Fatalf("window = %v", sols)
	}
	// Unknown projected variable errors.
	if _, err := store.Select([]PatternString{
		{S: "Nobel", P: "nom", O: "?who"},
	}, SelectOptions{Project: []string{"nope"}}); err == nil {
		t.Error("unknown projection accepted")
	}
}

func TestStoreReach(t *testing.T) {
	store := nobelStore(t, Options{})
	// Advisor descendants of Thorne.
	got, err := store.Reach("Thorne", "adv+")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Bohr", "Strutt", "Thomson", "Wheeler"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Reach(Thorne, adv+) = %v, want %v", got, want)
	}
	// Inverse path: who advised Bohr, transitively upward.
	got, err = store.Reach("Strutt", "^adv+")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("Reach(Strutt, ^adv+) = %v, want 4 ancestors", got)
	}
	// Unknown source: empty, no error.
	got, err = store.Reach("Einstein", "adv")
	if err != nil || len(got) != 0 {
		t.Fatalf("unknown source: %v, %v", got, err)
	}
	// Bad path: error.
	if _, err := store.Reach("Bohr", "adv//"); err == nil {
		t.Fatal("malformed path accepted")
	}
	// Unknown predicate: error.
	if _, err := store.Reach("Bohr", "knows"); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}
