#!/bin/sh
# CI gate: formatting, vet, build, tests, the race-detector lane over
# the parallel LTJ engine and the shared-ring fork tests, and a
# compile-and-smoke pass over every benchmark (one iteration each).
# Equivalent to `make check`; kept as a script for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel engine lane)"
go test -race -run 'Parallel|Stream' ./internal/ltj/... ./internal/ring/...

echo "== bench smoke (compile and run every benchmark once)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "all checks passed"
