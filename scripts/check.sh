#!/bin/sh
# CI gate: formatting, vet, build, tests, and the race-detector lane
# over the parallel LTJ engine and the shared-ring fork tests.
# Equivalent to `make check`; kept as a script for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel engine lane)"
go test -race -run 'Parallel|Stream' ./internal/ltj/... ./internal/ring/...

echo "all checks passed"
