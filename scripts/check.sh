#!/bin/sh
# CI gate: formatting, vet, the repo-specific ringlint analyzers, build,
# shuffled tests, the ringdebug assertion lane, the full-module
# race-detector lane (~4m on a single-CPU container), a
# compile-and-smoke pass over every benchmark (one iteration each), the
# end-to-end ringserve smoke (query, overload shedding, SIGTERM drain),
# the live-update persistence smoke (insert, SIGKILL, WAL recovery,
# checkpointed drain), the zero-copy mmap smoke (layout inspection,
# decode-vs-mmap differential serving, live mode with view-loaded
# checkpoints), and the replication smoke (leader + follower, lag to
# zero, read-your-writes via X-Ring-Min-Seq, leader kill + promote).
# Equivalent to `make check`; kept as a script for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== ringlint"
# Fails fast (set -eu) before the build/test lanes; -timing prints the
# per-analyzer wall times of the parallel run. RINGLINT_JSON=path makes
# the findings+timings report machine readable for CI artifacts.
if [ -n "${RINGLINT_JSON:-}" ]; then
    go run ./cmd/ringlint -json ./... > "$RINGLINT_JSON"
else
    go run ./cmd/ringlint -timing ./...
fi

echo "== go build"
go build ./...

echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -tags ringdebug (assertion lane)"
go test -tags ringdebug ./internal/...

echo "== go test -race (full module)"
go test -race ./...

echo "== go test -race -tags ringdebug (batched lane: radix intersection under assertions)"
go test -race -tags ringdebug ./internal/wavelet ./internal/ring ./internal/ltj

echo "== bench smoke (compile and run every benchmark once)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== bench batch (batched vs scalar leapfrog, writes BENCH_batch_leap.json)"
BENCH_BATCH_JSON="$(pwd)/BENCH_batch_leap.json" go test -run TestRecordBatchLeapBench ./internal/ring

echo "== serve smoke (end-to-end ringserve: query, shed, drain)"
sh scripts/serve_smoke.sh

echo "== persist smoke (live updates: insert, SIGKILL, recover, checkpoint)"
sh scripts/persist_smoke.sh

echo "== mmap smoke (zero-copy load: layout, decode-vs-mmap differential, live views)"
sh scripts/mmap_smoke.sh

echo "== repl smoke (replication: bootstrap, lag to zero, read-your-writes, promote)"
sh scripts/repl_smoke.sh

echo "all checks passed"
