#!/bin/sh
# End-to-end smoke test for replication: builds ringserve + ringrepl,
# starts a leader with the replication endpoint, sync-inserts on it,
# bootstraps a follower, polls until lag is zero, asserts
# read-your-writes on the follower via X-Ring-Min-Seq (using the seq the
# leader's mutation ack returned), asserts the mutation redirect (421
# with the leader address), then SIGKILLs the leader, promotes the
# follower with `ringrepl promote`, inserts on the promoted node, and
# finally SIGTERMs it asserting a clean checkpointed drain.
#
# Run via `make repl-smoke`. Needs curl and awk; picks off-main ports
# (override with REPL_SMOKE_PORT / base+1 / base+2).
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PORT=${REPL_SMOKE_PORT:-18571}
REPL_PORT=$((PORT + 1))
FPORT=$((PORT + 2))
LEADER="http://127.0.0.1:$PORT"
FOLLOWER="http://127.0.0.1:$FPORT"
LEADER_PID=
FOLLOWER_PID=

cleanup() {
    for pid in $LEADER_PID $FOLLOWER_PID; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

json_field() {
    # json_field KEY: prints the numeric/boolean/string value of the
    # first "KEY": occurrence on stdin (flat-enough JSON for this smoke).
    awk -v key="\"$1\":" '{
        n = index($0, key)
        if (n == 0) next
        rest = substr($0, n + length(key))
        gsub(/^[ \t]*/, "", rest)
        if (substr(rest, 1, 1) == "\"") {
            rest = substr(rest, 2)
            print substr(rest, 1, index(rest, "\"") - 1)
        } else {
            gsub(/[,}\]].*/, "", rest)
            print rest
        }
        exit
    }'
}

wait_ready() {
    base=$1; pid=$2; name=$3; log=$4
    ok=0
    for _ in $(seq 1 150); do
        if curl -fsS -o /dev/null "$base/readyz" 2>/dev/null; then
            ok=1
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "repl-smoke: $name exited during startup"
            cat "$log"
            exit 1
        fi
        sleep 0.1
    done
    if [ "$ok" != 1 ]; then
        echo "repl-smoke: $name /readyz never became ready"
        cat "$log"
        exit 1
    fi
}

echo "== repl-smoke: build ringserve + ringrepl"
go build -o "$TMP/ringserve" ./cmd/ringserve
go build -o "$TMP/ringrepl" ./cmd/ringrepl

echo "== repl-smoke: start leader (repl endpoint on :$REPL_PORT)"
"$TMP/ringserve" -data-dir "$TMP/leader" -addr "127.0.0.1:$PORT" \
    -repl-listen "127.0.0.1:$REPL_PORT" \
    2> "$TMP/leader.log" &
LEADER_PID=$!
wait_ready "$LEADER" "$LEADER_PID" leader "$TMP/leader.log"

echo "== repl-smoke: sync insert on leader"
ack=$(curl -fsS -X POST -d '{"triples":[{"s":"alice","p":"knows","o":"bob"},{"s":"bob","p":"knows","o":"carol"}],"sync":true}' \
    "$LEADER/insert")
SEQ=$(printf '%s' "$ack" | json_field seq)
if [ -z "$SEQ" ] || [ "$SEQ" = 0 ]; then
    echo "repl-smoke: leader insert ack has no committed seq: $ack"
    exit 1
fi

echo "== repl-smoke: start follower of 127.0.0.1:$REPL_PORT"
"$TMP/ringserve" -data-dir "$TMP/follower" -addr "127.0.0.1:$FPORT" \
    -follow "127.0.0.1:$REPL_PORT" \
    2> "$TMP/follower.log" &
FOLLOWER_PID=$!
wait_ready "$FOLLOWER" "$FOLLOWER_PID" follower "$TMP/follower.log"

echo "== repl-smoke: poll until replication lag is zero"
caught_up=0
for _ in $(seq 1 100); do
    stats=$(curl -fsS "$FOLLOWER/stats")
    applied=$(printf '%s' "$stats" | json_field applied_seq)
    lag=$(printf '%s' "$stats" | json_field lag_batches)
    if [ "${applied:-0}" -ge "$SEQ" ] && [ "${lag:-1}" = 0 ]; then
        caught_up=1
        break
    fi
    sleep 0.1
done
if [ "$caught_up" != 1 ]; then
    echo "repl-smoke: follower never reached lag=0 (applied=${applied:-?} lag=${lag:-?})"
    cat "$TMP/follower.log"
    exit 1
fi

echo "== repl-smoke: read-your-writes on follower (X-Ring-Min-Seq: $SEQ)"
body=$(curl -fsS -H "X-Ring-Min-Seq: $SEQ" -G --data-urlencode 'q=alice knows ?who' "$FOLLOWER/query")
case "$body" in
*'"who":"bob"'*) ;;
*)
    echo "repl-smoke: follower missed the leader's write: $body"
    exit 1
    ;;
esac

echo "== repl-smoke: mutation on follower redirects to leader (421)"
code=$(curl -s -o "$TMP/redirect.json" -w '%{http_code}' -X POST \
    -d '{"triples":[{"s":"x","p":"y","o":"z"}]}' "$FOLLOWER/insert")
if [ "$code" != 421 ]; then
    echo "repl-smoke: follower accepted a mutation (status $code): $(cat "$TMP/redirect.json")"
    exit 1
fi
case "$(cat "$TMP/redirect.json")" in
*"127.0.0.1:$PORT"*) ;;
*)
    echo "repl-smoke: redirect does not name the leader: $(cat "$TMP/redirect.json")"
    exit 1
    ;;
esac

echo "== repl-smoke: ringrepl status against the follower"
"$TMP/ringrepl" status -addr "127.0.0.1:$FPORT" | grep -q 'role: *follower' || {
    echo "repl-smoke: ringrepl status did not report follower role"
    exit 1
}

echo "== repl-smoke: SIGKILL the leader"
kill -9 "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
LEADER_PID=

echo "== repl-smoke: promote the follower"
"$TMP/ringrepl" promote -addr "127.0.0.1:$FPORT" | grep -q 'promoted: role=leader' || {
    echo "repl-smoke: promote failed"
    cat "$TMP/follower.log"
    exit 1
}

echo "== repl-smoke: insert on the promoted node"
ack=$(curl -fsS -X POST -d '{"triples":[{"s":"carol","p":"knows","o":"dave"}],"sync":true}' \
    "$FOLLOWER/insert")
NEWSEQ=$(printf '%s' "$ack" | json_field seq)
if [ -z "$NEWSEQ" ] || [ "$NEWSEQ" -le "$SEQ" ]; then
    echo "repl-smoke: promoted node's insert seq did not advance past $SEQ: $ack"
    exit 1
fi
body=$(curl -fsS -G --data-urlencode 'q=carol knows ?who' "$FOLLOWER/query")
case "$body" in
*'"who":"dave"'*) ;;
*)
    echo "repl-smoke: promoted node lost its own write: $body"
    exit 1
    ;;
esac

echo "== repl-smoke: graceful drain of the promoted node"
kill -TERM "$FOLLOWER_PID"
F_EXIT=0
wait "$FOLLOWER_PID" || F_EXIT=$?
FOLLOWER_PID=
if [ "$F_EXIT" != 0 ]; then
    echo "repl-smoke: promoted node exit code $F_EXIT after SIGTERM"
    cat "$TMP/follower.log"
    exit 1
fi
if ! grep -q 'drain complete' "$TMP/follower.log"; then
    echo "repl-smoke: no 'drain complete' in follower log:"
    cat "$TMP/follower.log"
    exit 1
fi
if [ ! -f "$TMP/follower/MANIFEST" ]; then
    echo "repl-smoke: no MANIFEST in follower dir after drain"
    exit 1
fi

echo "repl-smoke: OK (leader insert seq $SEQ replicated, promote + write seq $NEWSEQ, clean drain)"
