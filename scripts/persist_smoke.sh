#!/bin/sh
# End-to-end smoke test for the live-update persistence path: starts
# ringserve on an empty -data-dir, inserts synchronously, SIGKILLs the
# process mid-life, restarts on the same directory and checks that every
# acknowledged triple survived; then deletes, drains gracefully (final
# checkpoint + WAL seal), verifies a third recovery serves the exact
# final state, and runs ringstats -data-dir over the sealed directory.
#
# Run via `make persist-smoke`. Needs curl; picks an off-main port
# (override with PERSIST_SMOKE_PORT).
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PORT=${PERSIST_SMOKE_PORT:-18474}
BASE="http://127.0.0.1:$PORT"
DATA="$TMP/data"
SRV_PID=

cleanup() {
    if [ -n "$SRV_PID" ]; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

start_server() {
    "$TMP/ringserve" -data-dir "$DATA" -addr "127.0.0.1:$PORT" \
        2>> "$TMP/server.log" &
    SRV_PID=$!
    ready=0
    for _ in $(seq 1 150); do
        if curl -fsS -o /dev/null "$BASE/readyz" 2>/dev/null; then
            ready=1
            break
        fi
        if ! kill -0 "$SRV_PID" 2>/dev/null; then
            echo "persist-smoke: server exited during startup"
            cat "$TMP/server.log"
            SRV_PID=
            exit 1
        fi
        sleep 0.1
    done
    if [ "$ready" != 1 ]; then
        echo "persist-smoke: /readyz never became ready"
        cat "$TMP/server.log"
        exit 1
    fi
}

count_knows() {
    curl -fsS "$BASE/query" -d '{"pattern":[{"s":"?x","p":"knows","o":"?y"}],"limit":100,"no_cache":true}' |
        sed 's/.*"count":\([0-9]*\).*/\1/'
}

echo "== persist-smoke: build ringserve + ringstats"
go build -o "$TMP/ringserve" ./cmd/ringserve
go build -o "$TMP/ringstats" ./cmd/ringstats

echo "== persist-smoke: start on an empty data dir and insert (sync)"
start_server
code=$(curl -s -o "$TMP/ins.json" -w '%{http_code}' "$BASE/insert" \
    -d '{"triples":[{"s":"alice","p":"knows","o":"bob"},{"s":"bob","p":"knows","o":"carol"},{"s":"carol","p":"knows","o":"dave"}]}')
if [ "$code" != 200 ]; then
    echo "persist-smoke: sync insert returned $code: $(cat "$TMP/ins.json")"
    exit 1
fi
n=$(count_knows)
if [ "$n" != 3 ]; then
    echo "persist-smoke: expected 3 triples after insert, got $n"
    exit 1
fi

echo "== persist-smoke: SIGKILL and recover from the WAL"
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
start_server
n=$(count_knows)
if [ "$n" != 3 ]; then
    echo "persist-smoke: acked triples lost across SIGKILL: got $n, want 3"
    cat "$TMP/server.log"
    exit 1
fi
if ! grep -q 'recovered' "$TMP/server.log"; then
    echo "persist-smoke: no recovery line in server log:"
    cat "$TMP/server.log"
    exit 1
fi

echo "== persist-smoke: delete, then drain (checkpoint + WAL seal)"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/delete" \
    -d '{"triples":[{"s":"carol","p":"knows","o":"dave"}]}')
if [ "$code" != 200 ]; then
    echo "persist-smoke: delete returned $code"
    exit 1
fi
kill -TERM "$SRV_PID"
SRV_EXIT=0
wait "$SRV_PID" || SRV_EXIT=$?
SRV_PID=
if [ "$SRV_EXIT" != 0 ]; then
    echo "persist-smoke: exit code $SRV_EXIT after SIGTERM"
    cat "$TMP/server.log"
    exit 1
fi
if ! grep -q 'checkpointed and sealed' "$TMP/server.log"; then
    echo "persist-smoke: no checkpoint line in server log:"
    cat "$TMP/server.log"
    exit 1
fi
if [ ! -f "$DATA/MANIFEST" ]; then
    echo "persist-smoke: no MANIFEST after graceful shutdown"
    exit 1
fi

echo "== persist-smoke: third start serves the checkpointed state"
start_server
n=$(count_knows)
if [ "$n" != 2 ]; then
    echo "persist-smoke: expected 2 triples after delete + restart, got $n"
    exit 1
fi
metrics=$(curl -fsS "$BASE/metrics")
for series in ringserve_wal_appended_total ringserve_memtable_triples \
    ringserve_static_rings ringserve_manifest_version; do
    case "$metrics" in
    *"$series"*) ;;
    *)
        echo "persist-smoke: /metrics missing $series"
        exit 1
        ;;
    esac
done
kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=

echo "== persist-smoke: ringstats -data-dir on the sealed directory"
stats=$("$TMP/ringstats" -data-dir "$DATA")
case "$stats" in
*'manifest version'*) ;;
*)
    echo "persist-smoke: ringstats output missing manifest version: $stats"
    exit 1
    ;;
esac
case "$stats" in
*'estimated replay:    0 batches'*) ;;
*)
    echo "persist-smoke: sealed directory should need no replay: $stats"
    exit 1
    ;;
esac

echo "persist-smoke passed"
