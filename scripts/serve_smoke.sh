#!/bin/sh
# End-to-end smoke test for ringserve: builds the binaries, indexes a
# dense random graph, starts the server, and exercises the serving
# contract from outside the process — readiness gating, a real query,
# the metrics exposition, bounded admission under overload (at least one
# request must be shed with 429/503 while capacity is held), and a
# graceful SIGTERM drain that lets the in-flight query finish.
#
# Run via `make serve-smoke`. Needs curl and awk; picks an off-main port
# (override with SERVE_SMOKE_PORT).
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PORT=${SERVE_SMOKE_PORT:-18473}
BASE="http://127.0.0.1:$PORT"
SRV_PID=

cleanup() {
    if [ -n "$SRV_PID" ]; then
        kill "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== serve-smoke: build ringbuild + ringserve"
go build -o "$TMP/ringbuild" ./cmd/ringbuild
go build -o "$TMP/ringserve" ./cmd/ringserve

echo "== serve-smoke: index a dense random graph"
# ~20k edges over 200 nodes: the 3-hop all-variable join below is heavy
# enough to hold its admission slot while the overload burst arrives.
awk 'BEGIN { srand(7); for (i = 0; i < 20000; i++)
        printf "n%03d p%d n%03d\n", int(rand()*200), int(rand()*4), int(rand()*200) }' \
    > "$TMP/graph.tsv"
"$TMP/ringbuild" -in "$TMP/graph.tsv" -out "$TMP/graph.ring"

echo "== serve-smoke: start ringserve (capacity 1, queue 1)"
"$TMP/ringserve" -index "$TMP/graph.ring" -addr "127.0.0.1:$PORT" \
    -max-concurrent 1 -max-queue 1 -queue-wait 50ms \
    2> "$TMP/server.log" &
SRV_PID=$!

ready=0
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$BASE/readyz" 2>/dev/null; then
        ready=1
        break
    fi
    # The process dying is a faster, clearer failure than the poll timeout.
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serve-smoke: server exited during startup"
        cat "$TMP/server.log"
        SRV_PID=
        exit 1
    fi
    sleep 0.1
done
if [ "$ready" != 1 ]; then
    echo "serve-smoke: /readyz never became ready"
    cat "$TMP/server.log"
    exit 1
fi

echo "== serve-smoke: query"
body=$(curl -fsS -G --data-urlencode 'q=?a p0 ?b' --data 'limit=3' "$BASE/query")
case "$body" in
*'"solutions"'*) ;;
*)
    echo "serve-smoke: query response missing solutions: $body"
    exit 1
    ;;
esac

echo "== serve-smoke: overload burst (expect shedding)"
HEAVY='q=?a ?p ?b ; ?b ?q ?c ; ?c ?r ?d'
: > "$TMP/codes.txt"
pids=
for _ in 1 2 3 4 5 6; do
    curl -s -o /dev/null -w '%{http_code}\n' -G \
        --data-urlencode "$HEAVY" \
        --data 'limit=100000&timeout_ms=400&no_cache=1' \
        "$BASE/query" >> "$TMP/codes.txt" &
    pids="$pids $!"
done
for pid in $pids; do
    wait "$pid" || true
done
if ! grep -q '^200$' "$TMP/codes.txt"; then
    echo "serve-smoke: no query admitted under overload:"
    cat "$TMP/codes.txt"
    exit 1
fi
if ! grep -qE '^(429|503)$' "$TMP/codes.txt"; then
    echo "serve-smoke: admission is unbounded — nothing shed under overload:"
    cat "$TMP/codes.txt"
    exit 1
fi

echo "== serve-smoke: metrics"
metrics=$(curl -fsS "$BASE/metrics")
for series in ringserve_queries_total ringserve_admission_shed_total \
    ringserve_index_triples ringserve_query_duration_seconds_count; do
    case "$metrics" in
    *"$series"*) ;;
    *)
        echo "serve-smoke: /metrics missing $series"
        exit 1
        ;;
    esac
done

echo "== serve-smoke: graceful drain"
curl -s -o /dev/null -w '%{http_code}\n' -G \
    --data-urlencode "$HEAVY" \
    --data 'limit=100000&timeout_ms=1000&no_cache=1' \
    "$BASE/query" > "$TMP/drain_code.txt" &
DRAIN_PID=$!
sleep 0.3
kill -TERM "$SRV_PID"
SRV_EXIT=0
wait "$SRV_PID" || SRV_EXIT=$?
SRV_PID=
if [ "$SRV_EXIT" != 0 ]; then
    echo "serve-smoke: server exit code $SRV_EXIT after SIGTERM"
    cat "$TMP/server.log"
    exit 1
fi
if ! grep -q 'drain complete' "$TMP/server.log"; then
    echo "serve-smoke: no 'drain complete' in server log:"
    cat "$TMP/server.log"
    exit 1
fi
wait "$DRAIN_PID" || true
if ! grep -q '^200$' "$TMP/drain_code.txt"; then
    echo "serve-smoke: in-flight query did not survive the drain: $(cat "$TMP/drain_code.txt")"
    exit 1
fi

echo "serve-smoke passed"
