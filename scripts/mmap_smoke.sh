#!/bin/sh
# End-to-end smoke test for the zero-copy mmap load path: builds an
# index, inspects its layout with ringstats -mmap, serves it with
# ringserve -mmap and checks that query answers match a decode-mode
# server exactly (including across a restart), and that the mmap
# observability surface (/metrics load mode + mapped bytes, /stats
# mapped section) is present. Then exercises live mode with -mmap:
# insert, SIGKILL, WAL recovery, graceful drain with a checkpoint, and a
# final restart that view-loads the checkpointed rings.
#
# Run via `make mmap-smoke`. Needs curl and awk; picks an off-main port
# (override with MMAP_SMOKE_PORT).
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PORT=${MMAP_SMOKE_PORT:-18475}
BASE="http://127.0.0.1:$PORT"
SRV_PID=

cleanup() {
    if [ -n "$SRV_PID" ]; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# start_server <args...>: launch ringserve and wait for readiness.
start_server() {
    "$TMP/ringserve" "$@" -addr "127.0.0.1:$PORT" 2>> "$TMP/server.log" &
    SRV_PID=$!
    ready=0
    for _ in $(seq 1 150); do
        if curl -fsS -o /dev/null "$BASE/readyz" 2>/dev/null; then
            ready=1
            break
        fi
        if ! kill -0 "$SRV_PID" 2>/dev/null; then
            echo "mmap-smoke: server exited during startup"
            cat "$TMP/server.log"
            SRV_PID=
            exit 1
        fi
        sleep 0.1
    done
    if [ "$ready" != 1 ]; then
        echo "mmap-smoke: /readyz never became ready"
        cat "$TMP/server.log"
        exit 1
    fi
}

stop_server() {
    kill -TERM "$SRV_PID"
    wait "$SRV_PID" || true
    SRV_PID=
}

# static_answer: a deterministic join, canonical because solutions are
# fully enumerated sequentially; only the wall-clock field is masked.
static_answer() {
    curl -fsS -G --data-urlencode 'q=?a p0 ?b ; ?b p1 ?c' \
        --data 'limit=100000&no_cache=1' "$BASE/query" |
        sed 's/"elapsed_ms":[0-9.eE+-]*/"elapsed_ms":X/'
}

echo "== mmap-smoke: build ringbuild + ringserve + ringstats"
go build -o "$TMP/ringbuild" ./cmd/ringbuild
go build -o "$TMP/ringserve" ./cmd/ringserve
go build -o "$TMP/ringstats" ./cmd/ringstats

echo "== mmap-smoke: index a random graph"
awk 'BEGIN { srand(11); for (i = 0; i < 5000; i++)
        printf "n%03d p%d n%03d\n", int(rand()*150), int(rand()*4), int(rand()*150) }' \
    > "$TMP/graph.tsv"
"$TMP/ringbuild" -in "$TMP/graph.tsv" -out "$TMP/graph.ring"

echo "== mmap-smoke: ringstats -mmap reports the zero-copy layout"
stats=$("$TMP/ringstats" -index "$TMP/graph.ring" -mmap)
case "$stats" in
*'load mode:           mmap'*) ;;
*)
    echo "mmap-smoke: ringstats did not report mmap load mode: $stats"
    exit 1
    ;;
esac
case "$stats" in
*'zero-copy'*) ;;
*)
    echo "mmap-smoke: index not loadable zero-copy: $stats"
    exit 1
    ;;
esac

echo "== mmap-smoke: decode-mode answer as the reference"
start_server -index "$TMP/graph.ring"
want=$(static_answer)
stop_server
case "$want" in
*'"solutions"'*) ;;
*)
    echo "mmap-smoke: reference query failed: $want"
    exit 1
    ;;
esac

echo "== mmap-smoke: serve with -mmap, answers must match decode exactly"
start_server -index "$TMP/graph.ring" -mmap
got=$(static_answer)
if [ "$got" != "$want" ]; then
    echo "mmap-smoke: mmap answer differs from decode answer"
    echo "decode: $want"
    echo "mmap:   $got"
    exit 1
fi

echo "== mmap-smoke: mmap observability"
metrics=$(curl -fsS "$BASE/metrics")
case "$metrics" in
*'ringserve_index_load_mode{mode="mmap"} 1'*) ;;
*)
    echo "mmap-smoke: /metrics missing mmap load mode"
    exit 1
    ;;
esac
bytes=$(printf '%s\n' "$metrics" | awk '/^ringserve_index_bytes_mapped/ { print $2 }')
if [ -z "$bytes" ] || [ "$bytes" = 0 ]; then
    echo "mmap-smoke: ringserve_index_bytes_mapped is '$bytes', want > 0"
    exit 1
fi
statsjson=$(curl -fsS "$BASE/stats")
case "$statsjson" in
*'"mapped"'*'"mode":"mmap"'*) ;;
*)
    echo "mmap-smoke: /stats missing the mapped section: $statsjson"
    exit 1
    ;;
esac

echo "== mmap-smoke: restart with -mmap, same answer"
stop_server
start_server -index "$TMP/graph.ring" -mmap
got=$(static_answer)
stop_server
if [ "$got" != "$want" ]; then
    echo "mmap-smoke: answer changed across mmap restart"
    exit 1
fi

echo "== mmap-smoke: live mode with -mmap (insert, SIGKILL, recover)"
DATA="$TMP/data"
count_knows() {
    curl -fsS "$BASE/query" -d '{"pattern":[{"s":"?x","p":"knows","o":"?y"}],"limit":100,"no_cache":true}' |
        sed 's/.*"count":\([0-9]*\).*/\1/'
}
start_server -data-dir "$DATA" -mmap -memtable 2
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/insert" \
    -d '{"triples":[{"s":"alice","p":"knows","o":"bob"},{"s":"bob","p":"knows","o":"carol"},{"s":"carol","p":"knows","o":"dave"}]}')
if [ "$code" != 200 ]; then
    echo "mmap-smoke: live insert returned $code"
    exit 1
fi
n=$(count_knows)
if [ "$n" != 3 ]; then
    echo "mmap-smoke: expected 3 triples after insert, got $n"
    exit 1
fi
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
start_server -data-dir "$DATA" -mmap -memtable 2
n=$(count_knows)
if [ "$n" != 3 ]; then
    echo "mmap-smoke: acked triples lost across SIGKILL with -mmap: got $n"
    cat "$TMP/server.log"
    exit 1
fi

echo "== mmap-smoke: drain (checkpoint), restart view-loads the rings"
stop_server
start_server -data-dir "$DATA" -mmap -memtable 2
n=$(count_knows)
if [ "$n" != 3 ]; then
    echo "mmap-smoke: expected 3 triples after drain + restart, got $n"
    exit 1
fi
metrics=$(curl -fsS "$BASE/metrics")
case "$metrics" in
*ringserve_snapshot_install_seconds*) ;;
*)
    echo "mmap-smoke: /metrics missing ringserve_snapshot_install_seconds"
    exit 1
    ;;
esac
statsjson=$(curl -fsS "$BASE/stats")
case "$statsjson" in
*'"mode":"mmap"'*) ;;
*)
    echo "mmap-smoke: live /stats does not report mmap mode: $statsjson"
    exit 1
    ;;
esac
stop_server

echo "mmap-smoke passed"
