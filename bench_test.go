// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5) plus the ablations called out in DESIGN.md.
// Each benchmark reports, through b.ReportMetric, the quantities the
// corresponding table/figure lists (bytes/triple, ms/query, timeouts).
// cmd/benchtables prints the same data as formatted tables at larger
// scales; these benches keep the default `go test -bench=.` run at
// laptop-friendly sizes.
//
//	Table 1   -> BenchmarkTable1_*            (space + avg WGPB query time)
//	Figure 8  -> BenchmarkFigure8/<shape>/*   (per-shape query times)
//	Table 2   -> BenchmarkTable2_*            (real-world mix at larger scale)
//	Table 3   -> BenchmarkTable3              (order counts per class)
//	§5.2.1    -> BenchmarkSpaceBreakdown, BenchmarkTripleRetrieval,
//	             BenchmarkBuild (build rate)
//	§6        -> BenchmarkRingHD (d-ary ring joins)
//	Ablations -> BenchmarkAblation*
package wcoring

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline/uniring"
	"repro/internal/bench"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/orders"
	"repro/internal/ring"
	"repro/internal/ringhd"
	"repro/internal/rpq"
	"repro/internal/wgpb"
)

// benchEnv caches the graph, systems, and workloads shared by benchmarks.
type benchEnv struct {
	g        *graph.Graph
	systems  []bench.System
	byName   map[string]bench.System
	wgpbSets map[string][]graph.Pattern // shape -> queries
	realQs   []graph.Pattern
}

var (
	envOnce sync.Once
	env     *benchEnv
)

// loadEnv builds a WGPB-like graph (~100k triples by default) and all
// seven systems over it.
func loadEnv() *benchEnv {
	envOnce.Do(func() {
		g := wgpb.Generate(wgpb.GraphConfig{Triples: 100_000, Nodes: 40_000, Predicates: 40, Seed: 1})
		e := &benchEnv{g: g, byName: map[string]bench.System{}}
		e.systems = bench.Build(g, bench.AllSystems())
		for _, s := range e.systems {
			e.byName[s.Name()] = s
		}
		w := wgpb.NewWorkload(g, 17)
		e.wgpbSets = map[string][]graph.Pattern{}
		for i := range wgpb.Shapes {
			s := &wgpb.Shapes[i]
			e.wgpbSets[s.Name] = w.Queries(s, 5)
		}
		for i := 0; i < 25; i++ {
			e.realQs = append(e.realQs, w.RealWorldQuery(5))
		}
		env = e
	})
	return env
}

// allWGPB returns the concatenated 17-shape workload (the Table 1 query
// set: "sequentially evaluate all the queries").
func (e *benchEnv) allWGPB() []graph.Pattern {
	var out []graph.Pattern
	for i := range wgpb.Shapes {
		out = append(out, e.wgpbSets[wgpb.Shapes[i].Name]...)
	}
	return out
}

// wgpbOptions is the paper's protocol: limit 1000 plus a timeout (the
// paper uses 10 minutes; 5 seconds here keeps the default bench run
// bounded — timeouts are reported as their own metric, as in Table 2).
func wgpbOptions() ltj.Options {
	return ltj.Options{Limit: 1000, Timeout: 5 * time.Second}
}

// benchSystemWorkload runs one system over a workload b.N times and
// reports space and per-query time, the two columns of Table 1.
func benchSystemWorkload(b *testing.B, sys bench.System, queries []graph.Pattern) {
	b.Helper()
	e := loadEnv()
	var stats *bench.RunStats
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err = bench.Run(sys, queries, wgpbOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(bench.BytesPerTriple(sys, e.g.Len()), "bytes/triple")
	b.ReportMetric(float64(stats.Mean().Microseconds())/1000, "ms/query")
	b.ReportMetric(float64(stats.Timeouts()), "timeouts")
}

// --- Table 1: index space and average WGPB query time, per system ---

func BenchmarkTable1_Ring(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["Ring"], loadEnv().allWGPB())
}
func BenchmarkTable1_CRing(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["C-Ring"], loadEnv().allWGPB())
}
func BenchmarkTable1_EmptyHeaded(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["EmptyHeaded"], loadEnv().allWGPB())
}
func BenchmarkTable1_Qdag(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["Qdag"], loadEnv().allWGPB())
}
func BenchmarkTable1_Jena(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["Jena"], loadEnv().allWGPB())
}
func BenchmarkTable1_JenaLTJ(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["Jena LTJ"], loadEnv().allWGPB())
}
func BenchmarkTable1_RDF3X(b *testing.B) {
	benchSystemWorkload(b, loadEnv().byName["RDF-3X"], loadEnv().allWGPB())
}

// --- Figure 8: per-shape distributions for the in-memory wco systems ---

func BenchmarkFigure8(b *testing.B) {
	e := loadEnv()
	for i := range wgpb.Shapes {
		shape := wgpb.Shapes[i].Name
		for _, name := range []string{"Ring", "C-Ring", "EmptyHeaded", "Qdag", "Jena LTJ"} {
			sys := e.byName[name]
			b.Run(fmt.Sprintf("%s/%s", shape, name), func(b *testing.B) {
				queries := e.wgpbSets[shape]
				var stats *bench.RunStats
				var err error
				for i := 0; i < b.N; i++ {
					stats, err = bench.Run(sys, queries, wgpbOptions())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(stats.Percentile(25).Microseconds())/1000, "p25-ms")
				b.ReportMetric(float64(stats.Median().Microseconds())/1000, "p50-ms")
				b.ReportMetric(float64(stats.Percentile(75).Microseconds())/1000, "p75-ms")
			})
		}
	}
}

// --- Table 2: real-world query mix (constants anywhere, variable
// predicates), disk-oriented systems included, Qdag/EmptyHeaded excluded
// as in the paper ---

func benchTable2(b *testing.B, name string) {
	e := loadEnv()
	sys := e.byName[name]
	var stats *bench.RunStats
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err = bench.Run(sys, e.realQs, wgpbOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(bench.BytesPerTriple(sys, e.g.Len()), "bytes/triple")
	b.ReportMetric(float64(stats.Min().Microseconds())/1000, "min-ms")
	b.ReportMetric(float64(stats.Mean().Microseconds())/1000, "avg-ms")
	b.ReportMetric(float64(stats.Median().Microseconds())/1000, "median-ms")
	b.ReportMetric(float64(stats.Timeouts()), "timeouts")
}

func BenchmarkTable2_Ring(b *testing.B)    { benchTable2(b, "Ring") }
func BenchmarkTable2_Jena(b *testing.B)    { benchTable2(b, "Jena") }
func BenchmarkTable2_JenaLTJ(b *testing.B) { benchTable2(b, "Jena LTJ") }
func BenchmarkTable2_RDF3X(b *testing.B)   { benchTable2(b, "RDF-3X") }

// --- Table 3: number of orders per index class and dimension ---

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for d := 2; d <= 5; d++ {
			for _, c := range []orders.Class{orders.W, orders.TW, orders.CW, orders.CTW, orders.CBW, orders.CBTW} {
				res := orders.Count(c, d, 200_000)
				if d == 3 && c == orders.CBTW && res.Upper != 1 {
					b.Fatalf("cbtw(3) = %d, want 1", res.Upper)
				}
			}
		}
	}
	// Report the headline cells.
	b.ReportMetric(float64(orders.Count(orders.CBTW, 3, 0).Upper), "cbtw(3)")
	b.ReportMetric(float64(orders.Count(orders.CBTW, 5, 0).Upper), "cbtw(5)")
	b.ReportMetric(float64(orders.Count(orders.TW, 5, 0).Upper), "tw(5)")
	b.ReportMetric(float64(orders.Count(orders.W, 5, 0).Upper), "w(5)")
}

// --- Section 5.2.1: space breakdown and triple retrieval ---

func BenchmarkSpaceBreakdown(b *testing.B) {
	e := loadEnv()
	var plainBpt, compBpt float64
	for i := 0; i < b.N; i++ {
		plainBpt = bench.BytesPerTriple(e.byName["Ring"], e.g.Len())
		compBpt = bench.BytesPerTriple(e.byName["C-Ring"], e.g.Len())
	}
	b.ReportMetric(plainBpt, "ring-bytes/triple")
	b.ReportMetric(compBpt, "cring-bytes/triple")
	b.ReportMetric(12, "simple-bytes/triple") // three 32-bit words, §5.2.1
	packedBits := 2*bitsFor(uint64(e.g.NumSO())) + bitsFor(uint64(e.g.NumP()))
	b.ReportMetric(float64(packedBits)/8, "packed-bytes/triple")
}

func bitsFor(v uint64) int {
	n := 0
	for v > 1 {
		n++
		v >>= 1
	}
	return n + 1
}

// BenchmarkTripleRetrieval measures random edge reconstruction from the
// index alone (the paper reports 5µs plain / 20µs compressed).
func BenchmarkTripleRetrieval(b *testing.B) {
	e := loadEnv()
	for _, cfg := range []struct {
		name string
		opt  ring.Options
	}{
		{"Ring", ring.Options{}},
		{"C-Ring-b16", ring.Options{Compress: true, RRRBlock: 16}},
		{"C-Ring-b64", ring.Options{Compress: true, RRRBlock: 64}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			r := ring.New(e.g, cfg.opt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.Triple(i % r.Len())
			}
		})
	}
}

// BenchmarkBuild measures index construction (the paper: 6.4M triples/min
// for the WGPB graph).
func BenchmarkBuild(b *testing.B) {
	e := loadEnv()
	for _, cfg := range []struct {
		name string
		opt  ring.Options
	}{
		{"Ring", ring.Options{}},
		{"C-Ring", ring.Options{Compress: true, RRRBlock: 16}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var r *ring.Ring
			for i := 0; i < b.N; i++ {
				r = ring.New(e.g, cfg.opt)
			}
			b.StopTimer()
			rate := float64(r.Len()) * float64(time.Minute) / float64(b.Elapsed()/time.Duration(b.N))
			b.ReportMetric(rate/1e6, "Mtriples/min")
		})
	}
}

// --- Section 6: the d-ary ring (Theorem 6.1) ---

func BenchmarkRingHD(b *testing.B) {
	for _, d := range []int{4, 5} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			tuples := make([]ringhd.Tuple, 20_000)
			seed := uint64(12345)
			next := func() uint64 {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				return seed
			}
			for i := range tuples {
				t := make(ringhd.Tuple, d)
				for j := range t {
					t[j] = ringhd.Value(next() % 64)
				}
				tuples[i] = t
			}
			idx := ringhd.New(tuples, d, 64)
			// A chain join over the first two attributes.
			q := ringhd.Query{
				make(ringhd.TuplePattern, d),
				make(ringhd.TuplePattern, d),
			}
			for j := 0; j < d; j++ {
				q[0][j] = ringhd.V(fmt.Sprintf("a%d", j))
				q[1][j] = ringhd.V(fmt.Sprintf("b%d", j))
			}
			q[1][0] = q[0][d-1] // join: last attr of pattern 0 = first of 1
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				sols, err := idx.Evaluate(q, 1000)
				if err != nil {
					b.Fatal(err)
				}
				n = len(sols)
			}
			b.StopTimer()
			b.ReportMetric(float64(n), "solutions")
			b.ReportMetric(float64(idx.Orders()), "orders")
		})
	}
}

// --- Ablations (DESIGN.md): the design choices of Sections 4.2-4.3 and
// the bidirectionality of Section 6 ---

// BenchmarkAblationLonely compares the lonely-variables optimisation
// (Section 4.2) against plain seek loops on the star-shaped queries where
// it matters (T4/Ti4/J4).
func BenchmarkAblationLonely(b *testing.B) {
	e := loadEnv()
	var queries []graph.Pattern
	for _, s := range []string{"T4", "Ti4", "J4", "T3", "Ti3"} {
		queries = append(queries, e.wgpbSets[s]...)
	}
	r := ring.New(e.g, ring.Options{})
	idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := wgpbOptions()
			opt.DisableLonely = cfg.disable
			var leaps, enums int
			for i := 0; i < b.N; i++ {
				leaps, enums = 0, 0
				for _, q := range queries {
					res, err := ltj.Evaluate(idx, q, opt)
					if err != nil {
						b.Fatal(err)
					}
					leaps += res.Stats.Leaps
					enums += res.Stats.Enumerations
				}
			}
			b.ReportMetric(float64(leaps), "leaps")
			b.ReportMetric(float64(enums), "enumerated")
		})
	}
}

// BenchmarkAblationOrder compares the cardinality-based variable order
// (Section 4.3) against the query's first-use order.
func BenchmarkAblationOrder(b *testing.B) {
	e := loadEnv()
	queries := e.allWGPB()
	r := ring.New(e.g, ring.Options{})
	idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"cardinality", false}, {"first-use", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := wgpbOptions()
			opt.DisableOrderHeuristic = cfg.disable
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := ltj.Evaluate(idx, q, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationBidirectional contrasts the ring (one bidirectional
// order) with the Brisaboa-style unidirectional configuration (two
// backward-only orders) — the design choice that is the paper's title.
func BenchmarkAblationBidirectional(b *testing.B) {
	e := loadEnv()
	var queries []graph.Pattern
	for _, s := range []string{"P2", "T2", "Tr1", "Tr2", "S1"} {
		queries = append(queries, e.wgpbSets[s]...)
	}
	b.Run("ring-1-order", func(b *testing.B) {
		r := ring.New(e.g, ring.Options{})
		idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
			return r.NewPatternState(tp)
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := ltj.Evaluate(idx, q, wgpbOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(r.SizeBytes())/float64(e.g.Len()), "bytes/triple")
	})
	b.Run("unidirectional-2-orders", func(b *testing.B) {
		idx := uniring.New(e.g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := ltj.Evaluate(idx, q, wgpbOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(idx.SizeBytes())/float64(e.g.Len()), "bytes/triple")
	})
}

// BenchmarkAblationRRRBlock sweeps the C-Ring block size b (the paper
// evaluates 16 and 64): larger blocks compress better and query slower.
func BenchmarkAblationRRRBlock(b *testing.B) {
	e := loadEnv()
	queries := e.wgpbSets["P2"]
	for _, blockSize := range []int{15, 16, 32, 64} {
		b.Run(fmt.Sprintf("b=%d", blockSize), func(b *testing.B) {
			r := ring.New(e.g, ring.Options{Compress: true, RRRBlock: blockSize})
			idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
				return r.NewPatternState(tp)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := ltj.Evaluate(idx, q, wgpbOptions()); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(r.BytesPerTriple(), "bytes/triple")
		})
	}
}

// --- Intra-query parallelism (Options.Parallelism) ---

// BenchmarkParallelLTJ sweeps the parallel LTJ engine's worker count on
// the Ring over a join-heavy WGPB shape mix, reporting per-query time
// and the speedup against the sequential engine measured in the same
// run. On a single-CPU host the goroutines share one core, so the
// speedup reported there reflects coordination overhead, not scaling;
// BENCH_parallel_ltj.json records the same sweep via cmd/benchtables.
func BenchmarkParallelLTJ(b *testing.B) {
	e := loadEnv()
	var queries []graph.Pattern
	for _, s := range []string{"Tr1", "Tr2", "P3", "T3", "S1"} {
		queries = append(queries, e.wgpbSets[s]...)
	}
	sys := e.byName["Ring"]
	base, err := bench.Run(sys, queries, wgpbOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			opt := wgpbOptions()
			opt.Parallelism = p
			var stats *bench.RunStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err = bench.Run(sys, queries, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Mean().Microseconds())/1000, "ms/query")
			b.ReportMetric(bench.Speedup(base, stats), "speedup-vs-seq")
		})
	}
}

// --- Extensions: dynamic store and regular path queries ---

// BenchmarkDynamicStore measures the conclusions-sketch dynamic ring:
// insertion throughput (amortised over flushes and merges) and query
// latency across the memtable/ring union.
func BenchmarkDynamicStore(b *testing.B) {
	e := loadEnv()
	ts := e.g.Triples()
	b.Run("insert", func(b *testing.B) {
		ds := dynamic.New(dynamic.Options{MemtableThreshold: 4096, MaxRings: 4})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds.Add(ts[i%len(ts)])
		}
		b.StopTimer()
		b.ReportMetric(float64(ds.Rings()), "rings")
	})
	b.Run("query", func(b *testing.B) {
		ds := dynamic.New(dynamic.Options{MemtableThreshold: 4096, MaxRings: 4})
		ds.AddBatch(ts[:50_000])
		q := e.wgpbSets["Tr1"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, query := range q {
				if _, err := ds.Evaluate(query, wgpbOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkRPQ measures regular path query evaluation over the ring
// (NFA-product BFS; an operator the paper's conclusions propose).
func BenchmarkRPQ(b *testing.B) {
	e := loadEnv()
	r := ring.New(e.g, ring.Options{})
	lister := rpq.IndexLister{Idx: ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})}
	// Sources that actually have outgoing edges of the queried predicate.
	ts := e.g.Triples()
	var sources []graph.ID
	hub := ts[0].P
	for _, t := range ts {
		if t.P == hub {
			sources = append(sources, t.S)
		}
		if len(sources) == 256 {
			break
		}
	}
	exprs := map[string]rpq.Expr{
		"single":      rpq.P(hub),
		"two-hop":     rpq.Path(rpq.P(hub), rpq.P(hub)),
		"star":        rpq.Star{X: rpq.P(hub)},
		"alternation": rpq.Plus{X: rpq.AnyOf(rpq.P(hub), rpq.P(hub+1), rpq.Inv(hub))},
	}
	for name, e2 := range exprs {
		b.Run(name, func(b *testing.B) {
			a := rpq.Compile(e2)
			var total int
			for i := 0; i < b.N; i++ {
				total = len(a.Reach(lister, sources[i%len(sources)]))
			}
			b.ReportMetric(float64(total), "reached")
		})
	}
}
