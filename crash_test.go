package wcoring

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecovery is the durability acceptance test: it SIGKILLs a
// live ringserve at randomized points during synchronous write bursts —
// landing kills mid-group-commit, mid-compaction, mid-checkpoint, and
// mid-recovery — then restarts against the same data directory and
// checks two invariants across every iteration:
//
//  1. every batch acknowledged with HTTP 200 (fsynced) is fully present
//     after recovery, and
//  2. every batch, acked or not, is atomic: all of its triples are
//     visible or none are (one batch = one WAL record).
//
// Each batch uses a unique predicate, so presence is one count query.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not found")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "ringserve")
	build := exec.Command(goBin, "build", "-o", bin, "./cmd/ringserve")
	build.Dir = mustModuleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ringserve: %v\n%s", err, out)
	}

	dataDir := filepath.Join(tmp, "data")
	const (
		kills     = 22 // randomized kill points (acceptance floor is 20)
		batchSize = 5
		writers   = 2
	)
	rng := rand.New(rand.NewSource(4242))

	type batchID struct{ iter, writer, seq int }
	pred := func(b batchID) string { return fmt.Sprintf("b%dw%dk%d", b.iter, b.writer, b.seq) }
	var mu sync.Mutex
	acked := map[batchID]bool{} // got HTTP 200: durable, must survive
	sent := map[batchID]bool{}  // attempted: must be atomic either way

	client := &http.Client{Timeout: 5 * time.Second}
	countPred := func(base, p string) (int, error) {
		body, _ := json.Marshal(map[string]any{
			"pattern":  []map[string]string{{"s": "?s", "p": p, "o": "?o"}},
			"limit":    batchSize + 10,
			"no_cache": true,
		})
		resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return 0, fmt.Errorf("query %s: status %d: %s", p, resp.StatusCode, b)
		}
		var qr struct {
			Count int `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return 0, err
		}
		return qr.Count, nil
	}

	freePort := func() int {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		port := l.Addr().(*net.TCPAddr).Port
		l.Close()
		return port
	}

	start := func(iter int) (*exec.Cmd, string) {
		port := freePort()
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		cmd := exec.Command(bin,
			"-data-dir", dataDir,
			"-addr", addr,
			"-memtable", "16", // small: kills land mid-flush/merge/checkpoint
			"-max-rings", "2",
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("iteration %d: starting ringserve: %v", iter, err)
		}
		base := "http://" + addr
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				t.Fatalf("iteration %d: ringserve never became ready", iter)
			}
			if cmd.ProcessState != nil {
				t.Fatalf("iteration %d: ringserve exited during startup", iter)
			}
			resp, err := client.Get(base + "/readyz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if ok {
					return cmd, base
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// verify checks the batch invariants; onlyIter restricts the sweep to
	// one iteration's batches (each restart re-checks the burst that was
	// interrupted; the final pass, with onlyIter = -1, audits everything).
	verify := func(iter int, base string, onlyIter int) {
		mu.Lock()
		toCheck := make([]batchID, 0, len(sent))
		for b := range sent {
			if onlyIter < 0 || b.iter == onlyIter {
				toCheck = append(toCheck, b)
			}
		}
		mu.Unlock()
		lost, torn := 0, 0
		for _, b := range toCheck {
			n, err := countPred(base, pred(b))
			if err != nil {
				t.Fatalf("iteration %d: verify %v: %v", iter, b, err)
			}
			mu.Lock()
			wasAcked := acked[b]
			mu.Unlock()
			if wasAcked && n != batchSize {
				lost++
				t.Errorf("iteration %d: ACKED batch %v has %d/%d triples after recovery", iter, b, n, batchSize)
			}
			if n != 0 && n != batchSize {
				torn++
				t.Errorf("iteration %d: batch %v is torn: %d/%d triples visible", iter, b, n, batchSize)
			}
		}
		if lost > 0 || torn > 0 {
			t.Fatalf("iteration %d: %d acked batches lost, %d batches torn", iter, lost, torn)
		}
	}

	for iter := 0; iter < kills; iter++ {
		cmd, base := start(iter)
		verify(iter, base, iter-1)

		// Write burst: concurrent sync inserts so kills land inside group
		// commits; each writer records its acks.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seq := 0; ; seq++ {
					select {
					case <-stop:
						return
					default:
					}
					b := batchID{iter: iter, writer: w, seq: seq}
					ts := make([]map[string]string, batchSize)
					for j := range ts {
						ts[j] = map[string]string{
							"s": fmt.Sprintf("s%d-%d-%d", iter, w, j),
							"p": pred(b),
							"o": fmt.Sprintf("o%d", j),
						}
					}
					body, _ := json.Marshal(map[string]any{"triples": ts})
					mu.Lock()
					sent[b] = true
					mu.Unlock()
					resp, err := client.Post(base+"/insert", "application/json", bytes.NewReader(body))
					if err != nil {
						return // killed mid-request: unacked, atomicity still checked
					}
					code := resp.StatusCode
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if code == http.StatusOK {
						mu.Lock()
						acked[b] = true
						mu.Unlock()
					}
				}
			}(w)
		}

		time.Sleep(time.Duration(10+rng.Intn(190)) * time.Millisecond)
		if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatalf("iteration %d: SIGKILL: %v", iter, err)
		}
		close(stop)
		wg.Wait()
		cmd.Wait() // reap; exit status is irrelevant after SIGKILL
	}

	// Final recovery and full audit of every batch ever sent.
	cmd, base := start(kills)
	verify(kills, base, -1)
	mu.Lock()
	nAcked, nSent := len(acked), len(sent)
	mu.Unlock()
	if nAcked == 0 {
		t.Fatal("no batch was ever acked; the harness never exercised durability")
	}
	t.Logf("crash harness: %d kills, %d batches sent, %d acked, 0 lost, 0 torn", kills, nSent, nAcked)
	cmd.Process.Signal(syscall.SIGTERM)
	waited := make(chan struct{})
	go func() { cmd.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		<-waited
	}
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST")); err != nil {
		t.Errorf("no MANIFEST after graceful shutdown: %v", err)
	}
}

// TestReplCrashConvergence is the replication acceptance test: a leader
// and a follower run as real processes, the leader takes synchronous
// write bursts, and at randomized points the harness SIGKILLs the leader
// (mid-WAL-stream) on even iterations and the follower (mid-apply) on
// odd ones. After each kill the victim restarts against its own data
// directory and the pair must reconverge:
//
//  1. every batch acked by the leader (HTTP 200 = fsynced) is present on
//     BOTH nodes after recovery — the stream ships only durable records,
//     so a leader crash can never retract bytes a follower holds, and
//  2. the full triple sets of leader and follower become identical.
//
// The write volume stays under the memtable flush threshold so the
// leader never checkpoints past a down follower's resume point (WAL
// history retention across checkpoints is a non-goal; a parked follower
// re-bootstraps instead).
func TestReplCrashConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("replication crash harness is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not found")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "ringserve")
	build := exec.Command(goBin, "build", "-o", bin, "./cmd/ringserve")
	build.Dir = mustModuleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ringserve: %v\n%s", err, out)
	}

	const (
		kills      = 8
		batchSize  = 5
		writers    = 2
		maxBatches = 40 // per writer per iteration: keeps total < memtable threshold
	)
	rng := rand.New(rand.NewSource(1337))
	leaderDir := filepath.Join(tmp, "leader")
	followerDir := filepath.Join(tmp, "follower")

	freePort := func() int {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		port := l.Addr().(*net.TCPAddr).Port
		l.Close()
		return port
	}
	leaderAddr := fmt.Sprintf("127.0.0.1:%d", freePort())
	replAddr := fmt.Sprintf("127.0.0.1:%d", freePort())
	followerAddr := fmt.Sprintf("127.0.0.1:%d", freePort())
	leaderBase := "http://" + leaderAddr
	followerBase := "http://" + followerAddr

	client := &http.Client{Timeout: 5 * time.Second}
	waitReady := func(base, role string) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("%s never became ready", role)
			}
			resp, err := client.Get(base + "/readyz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if ok {
					return
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	startLeader := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-data-dir", leaderDir,
			"-addr", leaderAddr,
			"-repl-listen", replAddr,
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting leader: %v", err)
		}
		waitReady(leaderBase, "leader")
		return cmd
	}
	startFollower := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-data-dir", followerDir,
			"-addr", followerAddr,
			"-follow", replAddr,
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting follower: %v", err)
		}
		waitReady(followerBase, "follower")
		return cmd
	}

	dump := func(base string) ([][3]string, error) {
		body, _ := json.Marshal(map[string]any{
			"pattern":  []map[string]string{{"s": "?s", "p": "?p", "o": "?o"}},
			"limit":    100000,
			"no_cache": true,
		})
		resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("dump: status %d: %s", resp.StatusCode, b)
		}
		var qr struct {
			Solutions []map[string]string `json:"solutions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return nil, err
		}
		out := make([][3]string, len(qr.Solutions))
		for i, s := range qr.Solutions {
			out[i] = [3]string{s["s"], s["p"], s["o"]}
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			if a[1] != b[1] {
				return a[1] < b[1]
			}
			return a[2] < b[2]
		})
		return out, nil
	}
	waitConverged := func(iter int) {
		deadline := time.Now().Add(60 * time.Second)
		var lastErr error
		for time.Now().Before(deadline) {
			ld, err1 := dump(leaderBase)
			fd, err2 := dump(followerBase)
			if err1 == nil && err2 == nil {
				lb, _ := json.Marshal(ld)
				fb, _ := json.Marshal(fd)
				if bytes.Equal(lb, fb) {
					return
				}
				lastErr = fmt.Errorf("leader %d triples, follower %d triples", len(ld), len(fd))
			} else if err1 != nil {
				lastErr = err1
			} else {
				lastErr = err2
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("iteration %d: leader and follower never converged: %v", iter, lastErr)
	}

	type batchID struct{ iter, writer, seq int }
	pred := func(b batchID) string { return fmt.Sprintf("r%dw%dk%d", b.iter, b.writer, b.seq) }
	var mu sync.Mutex
	acked := map[batchID]bool{}

	countPred := func(base, p string) (int, error) {
		body, _ := json.Marshal(map[string]any{
			"pattern":  []map[string]string{{"s": "?s", "p": p, "o": "?o"}},
			"limit":    batchSize + 10,
			"no_cache": true,
		})
		resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return 0, fmt.Errorf("query %s: status %d: %s", p, resp.StatusCode, b)
		}
		var qr struct {
			Count int `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return 0, err
		}
		return qr.Count, nil
	}

	leader := startLeader()
	follower := startFollower()

	for iter := 0; iter < kills; iter++ {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seq := 0; seq < maxBatches; seq++ {
					select {
					case <-stop:
						return
					default:
					}
					b := batchID{iter: iter, writer: w, seq: seq}
					ts := make([]map[string]string, batchSize)
					for j := range ts {
						ts[j] = map[string]string{
							"s": fmt.Sprintf("rs%d-%d-%d", iter, w, j),
							"p": pred(b),
							"o": fmt.Sprintf("o%d", j),
						}
					}
					body, _ := json.Marshal(map[string]any{"triples": ts})
					resp, err := client.Post(leaderBase+"/insert", "application/json", bytes.NewReader(body))
					if err != nil {
						return // leader killed mid-request: unacked
					}
					code := resp.StatusCode
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if code == http.StatusOK {
						mu.Lock()
						acked[b] = true
						mu.Unlock()
					}
				}
			}(w)
		}

		time.Sleep(time.Duration(5+rng.Intn(55)) * time.Millisecond)
		killLeader := iter%2 == 0
		var victim *exec.Cmd
		if killLeader {
			victim = leader
		} else {
			victim = follower
		}
		if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatalf("iteration %d: SIGKILL: %v", iter, err)
		}
		close(stop)
		wg.Wait()
		victim.Wait() // reap; exit status is irrelevant after SIGKILL
		if killLeader {
			leader = startLeader()
		} else {
			follower = startFollower()
		}

		waitConverged(iter)
		mu.Lock()
		toCheck := make([]batchID, 0, len(acked))
		for b := range acked {
			if b.iter == iter {
				toCheck = append(toCheck, b)
			}
		}
		mu.Unlock()
		for _, b := range toCheck {
			for _, node := range []struct{ name, base string }{{"leader", leaderBase}, {"follower", followerBase}} {
				n, err := countPred(node.base, pred(b))
				if err != nil {
					t.Fatalf("iteration %d: verify %v on %s: %v", iter, b, node.name, err)
				}
				if n != batchSize {
					t.Errorf("iteration %d: ACKED batch %v has %d/%d triples on %s", iter, b, n, batchSize, node.name)
				}
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}

	mu.Lock()
	nAcked := len(acked)
	mu.Unlock()
	if nAcked == 0 {
		t.Fatal("no batch was ever acked; the harness never exercised replication")
	}
	t.Logf("replication crash harness: %d kills, %d acked batches, converged every time", kills, nAcked)

	for _, node := range []struct {
		name string
		cmd  *exec.Cmd
		dir  string
	}{{"follower", follower, followerDir}, {"leader", leader, leaderDir}} {
		node.cmd.Process.Signal(syscall.SIGTERM)
		waited := make(chan struct{})
		go func(c *exec.Cmd) { c.Wait(); close(waited) }(node.cmd)
		select {
		case <-waited:
		case <-time.After(20 * time.Second):
			node.cmd.Process.Kill()
			<-waited
		}
		if _, err := os.Stat(filepath.Join(node.dir, "MANIFEST")); err != nil {
			t.Errorf("no MANIFEST in %s dir after graceful shutdown: %v", node.name, err)
		}
	}
}
