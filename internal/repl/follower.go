//ringlint:durable
package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/persist"
)

// A follower's life: bootstrap (download the leader's snapshot files
// and manifest, or resume from a previous life's data dir), persist.Open
// as if the snapshot were its own, then tail the leader's WAL stream,
// applying each batch through the same WAL-then-store path local writes
// take — the leader's sequence numbers are preserved in the follower's
// own log, so "where to resume" is always just NextSeq, in-process and
// across restarts alike. Connection loss is routine: reconnect with
// jittered backoff and re-request from NextSeq; the overlap-free resume
// makes redelivery impossible and ErrSeqGap makes holes loud.

// ErrResyncRequired reports that the leader has checkpointed and
// garbage-collected past this follower's position: the WAL records it
// needs no longer exist, and only a fresh bootstrap (empty data dir)
// can catch it up. The follower parks rather than guessing — wiping a
// data directory is an operator decision.
var ErrResyncRequired = errors.New("repl: follower position predates the leader snapshot; re-bootstrap from an empty data dir")

// ErrNotCaughtUp reports a promote attempt while the follower is still
// missing records the leader was known to have.
var ErrNotCaughtUp = errors.New("repl: follower has not applied every known leader batch")

// positionName is the advisory replication-position file a follower
// maintains in its data dir for offline tooling (ringstats). It is not
// part of the durability contract.
const positionName = "REPL"

// Position is the advisory replication position recorded in a follower
// data dir.
type Position struct {
	Leader     string `json:"leader"`      // replication endpoint
	LeaderAddr string `json:"leader_addr"` // leader's advertised client address
	LeaderSeq  uint64 `json:"leader_seq"`  // last known leader durable seq
	AppliedSeq uint64 `json:"applied_seq"`
	Writable   bool   `json:"writable"` // true once promoted
	UpdatedMs  int64  `json:"updated_unix_ms"`
}

// ReadPosition loads the advisory position file from a data dir; a
// missing file returns (nil, nil) — the dir never ran as a follower.
func ReadPosition(dir string) (*Position, error) {
	data, err := os.ReadFile(filepath.Join(dir, positionName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	p := &Position{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("repl: position file: %w", err)
	}
	return p, nil
}

// FollowerOptions configures a follower.
type FollowerOptions struct {
	// Dir is the follower's own data directory.
	Dir string
	// Leader is the leader's replication endpoint, host:port.
	Leader string
	// ReconnectMin/Max bound the reconnect backoff (defaults 100ms/5s).
	ReconnectMin, ReconnectMax time.Duration
	// Client issues the HTTP requests; nil uses a dedicated client with
	// no overall timeout (the WAL stream is long-lived).
	Client *http.Client
	// Log receives replication events; nil discards them.
	Log *slog.Logger
	// Open passes through to persist.Open.
	Open persist.Options
}

// Info is a point-in-time view of replication state, exposed through
// /stats, /metrics, and readiness gating.
type Info struct {
	Role       string `json:"role"` // "follower" or "leader" once promoted
	Leader     string `json:"leader,omitempty"`
	LeaderAddr string `json:"leader_addr,omitempty"`
	Connected  bool   `json:"connected"`
	Writable   bool   `json:"writable"`
	// Parked marks the terminal resync-required state: the follower
	// cannot catch up without a fresh bootstrap and has stopped retrying.
	Parked     bool    `json:"parked,omitempty"`
	AppliedSeq uint64  `json:"applied_seq"`
	DurableSeq uint64  `json:"durable_seq"`
	LeaderSeq  uint64  `json:"leader_seq"`
	LagBatches uint64  `json:"lag_batches"`
	LagSeconds float64 `json:"lag_seconds"`
	LastErr    string  `json:"last_err,omitempty"`
}

// Follower tails a leader's WAL into its own DB.
type Follower struct {
	opt FollowerOptions
	db  *persist.DB

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	writable   bool   //ringlint:guarded-by mu
	connected  bool   //ringlint:guarded-by mu
	parked     bool   //ringlint:guarded-by mu
	leaderAddr string //ringlint:guarded-by mu
	leaderSeq  uint64 //ringlint:guarded-by mu
	// caughtUp is the last instant applied >= leaderSeq; lastPosMs
	// throttles position-file writes.
	caughtUp  time.Time //ringlint:guarded-by mu
	lastErr   string    //ringlint:guarded-by mu
	lastPosMs int64     //ringlint:guarded-by mu
}

// OpenFollower bootstraps (if the data dir is empty) and opens the
// follower's DB. The tail loop starts with Start; queries can be served
// from DB() immediately — the store holds whatever the snapshot plus
// the locally durable WAL tail contained.
func OpenFollower(opt FollowerOptions) (*Follower, error) {
	if opt.ReconnectMin <= 0 {
		opt.ReconnectMin = 100 * time.Millisecond
	}
	if opt.ReconnectMax <= 0 {
		opt.ReconnectMax = 5 * time.Second
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	f := &Follower{opt: opt}
	//ringlint:detach -- the tail loop outlives any caller context; Close cancels it
	f.ctx, f.cancel = context.WithCancel(context.Background())
	if err := f.bootstrap(f.ctx); err != nil {
		f.cancel()
		return nil, err
	}
	db, err := persist.Open(opt.Dir, opt.Open)
	if err != nil {
		f.cancel()
		return nil, err
	}
	f.db = db
	f.caughtUp = time.Now()
	return f, nil
}

// DB exposes the follower's store for query serving.
func (f *Follower) DB() *persist.DB { return f.db }

// Start launches the tail loop.
func (f *Follower) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.run(f.ctx)
	}()
}

// Close stops tailing and closes the DB.
func (f *Follower) Close() error {
	f.cancel()
	f.wg.Wait()
	f.writePosition(true)
	return f.db.Close()
}

// Info snapshots the replication state.
func (f *Follower) Info() Info {
	applied, durable := f.db.AppliedSeq(), f.db.DurableSeq()
	f.mu.Lock()
	defer f.mu.Unlock()
	info := Info{
		Role:       "follower",
		Leader:     f.opt.Leader,
		LeaderAddr: f.leaderAddr,
		Connected:  f.connected,
		Writable:   f.writable,
		Parked:     f.parked,
		AppliedSeq: applied,
		DurableSeq: durable,
		LeaderSeq:  f.leaderSeq,
		LastErr:    f.lastErr,
	}
	if f.writable {
		info.Role = "leader"
	}
	if f.leaderSeq > applied {
		info.LagBatches = f.leaderSeq - applied
		info.LagSeconds = time.Since(f.caughtUp).Seconds()
	}
	return info
}

// Writable reports whether mutations are accepted (true after promote).
func (f *Follower) Writable() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writable
}

// LeaderAddr returns the leader's advertised client address for
// mutation redirects.
func (f *Follower) LeaderAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leaderAddr
}

// Promote flips the follower writable: stop tailing, drain the apply
// pipeline to durability, seal the WAL behind a checkpoint, and verify
// no known leader batch is missing. After a successful promote the node
// is a leader in every respect — its WAL continues the sequence the
// dead leader started.
func (f *Follower) Promote(ctx context.Context) error {
	f.mu.Lock()
	if f.writable {
		f.mu.Unlock()
		return nil // already promoted
	}
	f.mu.Unlock()

	// Stop the tail loop; no new batches arrive after this.
	f.cancel()
	f.wg.Wait()

	// Every known leader batch must be applied locally — promoting with
	// a gap would silently drop acknowledged history.
	applied := f.db.AppliedSeq()
	f.mu.Lock()
	known := f.leaderSeq
	f.mu.Unlock()
	if applied < known {
		return fmt.Errorf("%w: applied %d < leader durable %d", ErrNotCaughtUp, applied, known)
	}

	// Drain: group commit makes applied batches durable within one fsync
	// round; wait for the watermark to catch up.
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for f.db.DurableSeq() < applied {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}

	// Seal: a checkpoint rotates the WAL and records the sequence in the
	// manifest, so the promoted node's history starts from a clean edge.
	if err := f.db.Checkpoint(); err != nil {
		return fmt.Errorf("repl: promote checkpoint: %w", err)
	}

	f.mu.Lock()
	f.writable = true
	f.connected = false
	f.mu.Unlock()
	f.writePosition(true)
	f.opt.Log.Info("promoted to leader", "seq", applied)
	return nil
}

// --- bootstrap ---

// hasLocalState reports whether dir already holds a manifest or WAL
// segments — i.e. this is a resume, not a first bootstrap.
func hasLocalState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if name == "MANIFEST" || (len(name) > 4 && name[:4] == "wal-") {
			return true, nil
		}
	}
	return false, nil
}

func (f *Follower) url(path string) string {
	return "http://" + f.opt.Leader + path
}

// bootstrap populates an empty data dir from the leader's current
// snapshot: download every file the manifest names, verify byte counts
// and CRCs, fsync, then install the manifest image verbatim. The
// manifest is written last — a crash mid-bootstrap leaves a dir with no
// manifest, which the next attempt treats as empty scratch.
func (f *Follower) bootstrap(ctx context.Context) error {
	resume, err := hasLocalState(f.opt.Dir)
	if err != nil {
		return err
	}
	if resume {
		f.opt.Log.Info("resuming from existing data dir", "dir", f.opt.Dir)
		return nil
	}
	if err := os.MkdirAll(f.opt.Dir, 0o755); err != nil {
		return err
	}
	info, leaderAddr, err := f.fetchManifest(ctx)
	if err != nil {
		return fmt.Errorf("repl: bootstrap manifest: %w", err)
	}
	f.mu.Lock()
	f.leaderAddr = leaderAddr
	f.mu.Unlock()
	if info.Version == 0 {
		f.opt.Log.Info("leader has no snapshot yet; starting empty")
		return nil
	}
	for _, file := range info.Files {
		if err := f.fetchFile(ctx, file); err != nil {
			return fmt.Errorf("repl: bootstrap %s: %w", file.Name, err)
		}
	}
	if err := persist.InstallSnapshotManifest(f.opt.Dir, info.Raw); err != nil {
		return fmt.Errorf("repl: bootstrap manifest install: %w", err)
	}
	f.opt.Log.Info("bootstrap complete",
		"version", info.Version, "files", len(info.Files), "last_seq", info.LastSeq)
	return nil
}

func (f *Follower) fetchManifest(ctx context.Context) (*persist.ManifestInfo, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url("/repl/v1/manifest"), nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close() // response body close errors carry no data loss
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("leader returned %s", resp.Status)
	}
	info := &persist.ManifestInfo{}
	if err := json.NewDecoder(resp.Body).Decode(info); err != nil {
		return nil, "", err
	}
	if info.Version != 0 {
		// Re-validate the image: the CRC trailer must hold and must agree
		// with the JSON view we are about to trust.
		check, err := persist.ParseManifest(info.Raw)
		if err != nil {
			return nil, "", err
		}
		if check.Version != info.Version || check.LastSeq != info.LastSeq {
			return nil, "", fmt.Errorf("manifest image disagrees with its envelope")
		}
	}
	return info, resp.Header.Get("X-Ring-Leader"), nil
}

func (f *Follower) fetchFile(ctx context.Context, file persist.SnapshotFile) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url("/repl/v1/file/"+file.Name), nil)
	if err != nil {
		return err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() // response body close errors carry no data loss
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("leader returned %s", resp.Status)
	}
	crc := crc32.New(castagnoli)
	n, err := persist.WriteSnapshotFile(f.opt.Dir, file.Name, io.TeeReader(resp.Body, crc))
	if err != nil {
		return err
	}
	if n != file.Bytes {
		return fmt.Errorf("got %d bytes, manifest says %d", n, file.Bytes)
	}
	if trailer := resp.Trailer.Get("X-Ring-Crc"); trailer != "" {
		want, perr := strconv.ParseUint(trailer, 16, 32)
		if perr != nil || uint32(want) != crc.Sum32() {
			return fmt.Errorf("checksum mismatch (leader %s, got %08x)", trailer, crc.Sum32())
		}
	} else {
		return fmt.Errorf("leader sent no checksum trailer")
	}
	f.opt.Log.Info("fetched snapshot file", "file", file.Name, "bytes", n)
	return nil
}

// --- tail loop ---

// run reconnects forever with jittered exponential backoff until the
// context ends or the follower's position becomes unservable.
func (f *Follower) run(ctx context.Context) {
	backoff := f.opt.ReconnectMin
	for ctx.Err() == nil {
		err := f.tailOnce(ctx)
		f.setConnected(false)
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, ErrResyncRequired):
			// Terminal: the records this follower needs are gone. Park
			// unready rather than wiping a data directory on our own.
			f.setErr(err)
			f.mu.Lock()
			f.parked = true
			f.mu.Unlock()
			f.opt.Log.Error("follower parked", "err", err)
			return
		case err != nil:
			f.setErr(err)
			f.opt.Log.Warn("wal stream lost; reconnecting", "err", err, "backoff", backoff)
		default:
			// Clean EOF (leader restarting): reconnect quickly.
			backoff = f.opt.ReconnectMin
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.opt.ReconnectMax {
			backoff = f.opt.ReconnectMax
		}
	}
}

// tailOnce opens one WAL stream from the local resume point and applies
// frames until the stream ends. nil means clean EOF.
func (f *Follower) tailOnce(ctx context.Context) error {
	from := f.db.NextSeq()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.url("/repl/v1/wal?from="+strconv.FormatUint(from, 10)), nil)
	if err != nil {
		return err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() // response body close errors carry no data loss
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return ErrResyncRequired
	default:
		return fmt.Errorf("repl: leader returned %s", resp.Status)
	}
	if addr := resp.Header.Get("X-Ring-Leader"); addr != "" {
		f.mu.Lock()
		f.leaderAddr = addr
		f.mu.Unlock()
	}
	f.setConnected(true)
	f.opt.Log.Info("wal stream attached", "from", from)

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean boundary: leader closed the stream
			}
			// Truncated or corrupt frame: nothing from it was applied
			// (apply happens only after a full checksum-valid frame), so
			// reconnect-and-resume is safe.
			return err
		}
		if seq, ok := heartbeat(payload); ok {
			f.observeLeaderSeq(seq)
			continue
		}
		b, err := persist.DecodeRecordPayload(payload)
		if err != nil {
			return err // checksum-valid garbage: hostile or buggy peer
		}
		// Apply without per-batch fsync: the follower's group commit makes
		// batches durable a few milliseconds behind visibility, and resume
		// (from the durable watermark after a crash) re-requests anything
		// in flight. ErrSeqGap means the stream and our log disagree;
		// reconnecting re-requests from the authoritative local position.
		if err := f.db.ApplyReplicated(b, false); err != nil {
			return err
		}
		f.observeLeaderSeq(b.Seq)
	}
}

// observeLeaderSeq folds a proof that the leader's durable log reaches
// seq into the lag estimate and the advisory position file.
func (f *Follower) observeLeaderSeq(seq uint64) {
	applied := f.db.AppliedSeq()
	f.mu.Lock()
	if seq > f.leaderSeq {
		f.leaderSeq = seq
	}
	if applied >= f.leaderSeq {
		f.caughtUp = time.Now()
	}
	f.mu.Unlock()
	f.writePosition(false)
}

func (f *Follower) setConnected(v bool) {
	f.mu.Lock()
	f.connected = v
	if v {
		f.lastErr = ""
	}
	f.mu.Unlock()
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// writePosition records the advisory position file, throttled to one
// write per second unless forced. Best-effort by design: it is offline
// tooling metadata, not durability state, so write errors are logged
// and dropped and the file is not fsynced.
func (f *Follower) writePosition(force bool) {
	now := time.Now().UnixMilli()
	f.mu.Lock()
	if !force && now-f.lastPosMs < 1000 {
		f.mu.Unlock()
		return
	}
	f.lastPosMs = now
	pos := Position{
		Leader:     f.opt.Leader,
		LeaderAddr: f.leaderAddr,
		LeaderSeq:  f.leaderSeq,
		AppliedSeq: f.db.AppliedSeq(),
		Writable:   f.writable,
		UpdatedMs:  now,
	}
	f.mu.Unlock()
	data, err := json.Marshal(&pos)
	if err == nil {
		err = os.WriteFile(filepath.Join(f.opt.Dir, positionName+".tmp"), data, 0o644)
	}
	if err == nil {
		err = os.Rename(filepath.Join(f.opt.Dir, positionName+".tmp"),
			filepath.Join(f.opt.Dir, positionName))
	}
	if err != nil {
		f.opt.Log.Warn("position file write failed", "err", err)
	}
}
