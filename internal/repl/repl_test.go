package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dict"
	"repro/internal/persist"
)

func tr(s, p, o string) dict.StringTriple { return dict.StringTriple{S: s, P: p, O: o} }

func openDB(t *testing.T, dir string) *persist.DB {
	t.Helper()
	db, err := persist.Open(dir, persist.Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// startLeader serves db's replication endpoint from an httptest server
// and returns the host:port followers dial.
func startLeader(t *testing.T, db *persist.DB) (*Leader, string, *httptest.Server) {
	t.Helper()
	l := NewLeader(db, LeaderOptions{Advertise: "leader.example:7000", Heartbeat: 20 * time.Millisecond})
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	return l, strings.TrimPrefix(srv.URL, "http://"), srv
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationEndToEnd: bootstrap from a checkpointed leader, tail
// its live inserts to lag 0, survive a follower restart, and promote.
func TestReplicationEndToEnd(t *testing.T) {
	ldb := openDB(t, t.TempDir())
	defer ldb.Close()

	// Snapshot part: 20 triples folded into checkpoint files.
	for i := 0; i < 20; i++ {
		if _, err := ldb.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := ldb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL-tail part: 5 more after the checkpoint.
	for i := 20; i < 25; i++ {
		if _, err := ldb.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}

	_, addr, _ := startLeader(t, ldb)
	fdir := t.TempDir()
	f, err := OpenFollower(FollowerOptions{
		Dir: fdir, Leader: addr,
		Open: persist.Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: true},
	})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	// Bootstrap alone must already carry the snapshot's 20 triples.
	if got := f.DB().Len(); got != 20 {
		t.Fatalf("bootstrapped Len = %d, want 20", got)
	}
	f.Start()
	waitFor(t, "tail catch-up", func() bool { return f.DB().AppliedSeq() >= ldb.AppliedSeq() })
	if got := f.DB().Len(); got != 25 {
		t.Fatalf("tailed Len = %d, want 25", got)
	}

	// Live inserts while attached.
	for i := 25; i < 30; i++ {
		if _, err := ldb.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live replication", func() bool { return f.DB().Len() == 30 })

	info := f.Info()
	if info.Role != "follower" || !info.Connected || info.Writable {
		t.Fatalf("info = %+v, want connected non-writable follower", info)
	}
	if info.LeaderAddr != "leader.example:7000" {
		t.Fatalf("leader addr = %q, want advertised address", info.LeaderAddr)
	}
	waitFor(t, "lag zero", func() bool { i := f.Info(); return i.LagBatches == 0 && i.LagSeconds == 0 })

	// Restart the follower: it must resume from its durable position, not
	// re-bootstrap.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = OpenFollower(FollowerOptions{
		Dir: fdir, Leader: addr,
		Open: persist.Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: true},
	})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	f.Start()
	for i := 30; i < 33; i++ {
		if _, err := ldb.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "post-restart replication", func() bool { return f.DB().Len() == 33 })

	// Promote: the node flips writable and keeps accepting inserts on the
	// continued sequence.
	if err := f.Promote(context.Background()); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if info := f.Info(); info.Role != "leader" || !info.Writable {
		t.Fatalf("post-promote info = %+v", info)
	}
	_, seq, err := f.DB().Mutate(persist.OpInsert, []dict.StringTriple{tr("post-promote", "p", "o")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 34 {
		t.Fatalf("post-promote seq = %d, want 34 (leader history continued)", seq)
	}
	pos, err := ReadPosition(fdir)
	if err != nil || pos == nil {
		t.Fatalf("ReadPosition: %v, %v", pos, err)
	}
	if !pos.Writable {
		t.Fatalf("position file not marked writable after promote: %+v", pos)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerResyncRequired: a follower whose position predates the
// leader's snapshot floor parks with ErrResyncRequired instead of
// silently skipping history.
func TestFollowerResyncRequired(t *testing.T) {
	ldb := openDB(t, t.TempDir())
	defer ldb.Close()
	if _, err := ldb.InsertBatch([]dict.StringTriple{tr("a", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}
	_, addr, _ := startLeader(t, ldb)

	fdir := t.TempDir()
	f, err := OpenFollower(FollowerOptions{
		Dir: fdir, Leader: addr,
		Open: persist.Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitFor(t, "initial catch-up", func() bool { return f.DB().Len() == 1 })
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is away, the leader advances and checkpoints:
	// the records the follower needs are folded and GC'd.
	for i := 0; i < 10; i++ {
		if _, err := ldb.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("b%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := ldb.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f, err = OpenFollower(FollowerOptions{
		Dir: fdir, Leader: addr,
		Open: persist.Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start()
	waitFor(t, "parked follower", func() bool {
		return strings.Contains(f.Info().LastErr, "re-bootstrap")
	})
}

// TestFollowerReconnectBackoff: losing the leader flips Connected false;
// the follower keeps retrying and reports the error.
func TestFollowerReconnect(t *testing.T) {
	ldb := openDB(t, t.TempDir())
	defer ldb.Close()
	if _, err := ldb.InsertBatch([]dict.StringTriple{tr("a", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}
	_, addr, srv := startLeader(t, ldb)

	f, err := OpenFollower(FollowerOptions{
		Dir: t.TempDir(), Leader: addr,
		ReconnectMin: 10 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
		Open: persist.Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start()
	waitFor(t, "connect", func() bool { return f.Info().Connected })

	srv.CloseClientConnections()
	srv.Close()
	waitFor(t, "disconnect noticed", func() bool {
		i := f.Info()
		return !i.Connected && i.LastErr != ""
	})

	// Promote while disconnected (the dead-leader path): all known
	// batches are applied, so this succeeds.
	if err := f.Promote(context.Background()); err != nil {
		t.Fatalf("Promote after leader death: %v", err)
	}
}

// TestFrameRoundTrip: framing survives a round trip and rejects
// corruption with typed errors.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}

	// Bit flip in the payload: checksum mismatch.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-1] ^= 0x01
	r = bytes.NewReader(data)
	var ferr error
	for ferr == nil {
		_, ferr = ReadFrame(r)
	}
	if !errors.Is(ferr, ErrBadFrame) {
		t.Fatalf("flipped stream = %v, want ErrBadFrame", ferr)
	}

	// Truncation inside a frame: unexpected EOF, not EOF.
	r = bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	ferr = nil
	for ferr == nil {
		_, ferr = ReadFrame(r)
	}
	if !errors.Is(ferr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream = %v, want io.ErrUnexpectedEOF", ferr)
	}

	// Hostile length: bounded, typed.
	r = bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	if _, err := ReadFrame(r); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized frame = %v, want ErrBadFrame", err)
	}

	// Heartbeats are distinguishable from records by size.
	if _, ok := heartbeat(encodeHeartbeat(42)); !ok {
		t.Fatal("heartbeat not recognised")
	}
	if seq, _ := heartbeat(encodeHeartbeat(42)); seq != 42 {
		t.Fatalf("heartbeat seq = %d, want 42", seq)
	}
	if _, ok := heartbeat(make([]byte, 12)); ok {
		t.Fatal("12-byte payload misread as heartbeat")
	}
}
