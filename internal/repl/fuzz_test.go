package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/dict"
	"repro/internal/persist"
)

// buildStream produces a well-formed replication stream by driving a
// real leader store: n insert batches framed exactly as handleWAL ships
// them, followed by one heartbeat frame.
func buildStream(f *testing.F, n int) []byte {
	f.Helper()
	dir := f.TempDir()
	db, err := persist.Open(dir, persist.Options{NoBackground: true})
	if err != nil {
		f.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < n; i++ {
		ts := []dict.StringTriple{{S: string(rune('a' + i)), P: "p", O: "o"}}
		if _, err := db.InsertBatch(ts, true); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = db.StreamWAL(ctx, 1, 0, func(rec persist.TailRecord) error {
		if err := WriteFrame(&buf, rec.Payload); err != nil {
			return err
		}
		if rec.Seq >= uint64(n) {
			cancel() // sealed history shipped; no need to tail
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		f.Fatal(err)
	}
	if err := WriteFrame(&buf, encodeHeartbeat(uint64(n))); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReplStream holds the follower's stream-consumption path to its
// contract on arbitrary bytes: never panic, never apply a torn or
// out-of-sequence batch, and fail only with the typed errors the
// reconnect loop understands (ErrBadFrame, io.ErrUnexpectedEOF,
// persist.ErrCorrupt, persist.ErrSeqGap). After any rejection the local
// store must still be intact: a valid next batch applies cleanly and
// the store closes without error.
func FuzzReplStream(f *testing.F) {
	valid := buildStream(f, 2)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated mid-frame
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped) // bit flip: CRC must catch it
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // hostile length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := persist.Open(t.TempDir(), persist.Options{NoBackground: true})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()

		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				switch {
				case errors.Is(err, io.EOF): // clean stream end
				case errors.Is(err, io.ErrUnexpectedEOF): // truncation
				case errors.Is(err, ErrBadFrame): // corruption, caught
				default:
					t.Fatalf("ReadFrame: untyped error %v", err)
				}
				break
			}
			if _, ok := heartbeat(payload); ok {
				continue
			}
			b, err := persist.DecodeRecordPayload(payload)
			if err != nil {
				if !errors.Is(err, persist.ErrCorrupt) {
					t.Fatalf("DecodeRecordPayload: untyped error %v", err)
				}
				break
			}
			before := db.AppliedSeq()
			if err := db.ApplyReplicated(b, false); err != nil {
				if !errors.Is(err, persist.ErrSeqGap) && !errors.Is(err, persist.ErrCorrupt) {
					t.Fatalf("ApplyReplicated(seq %d): untyped error %v", b.Seq, err)
				}
				if db.AppliedSeq() != before {
					t.Fatalf("rejected batch moved applied seq %d -> %d", before, db.AppliedSeq())
				}
				break
			}
			if db.AppliedSeq() != b.Seq {
				t.Fatalf("applied batch %d but applied seq is %d", b.Seq, db.AppliedSeq())
			}
		}

		// Whatever the stream did, the store must not be poisoned: the
		// next contiguous batch applies and the store closes cleanly.
		next := persist.Batch{Seq: db.NextSeq(), Ops: []persist.Op{{Kind: persist.OpInsert, S: "probe", P: "p", O: "o"}}}
		if err := db.ApplyReplicated(next, true); err != nil {
			t.Fatalf("store poisoned: contiguous batch %d rejected: %v", next.Seq, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close after stream: %v", err)
		}
	})
}
