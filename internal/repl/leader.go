package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/persist"
)

// Leader HTTP protocol, all under /repl/v1/:
//
//	GET /repl/v1/manifest        current manifest (JSON persist.ManifestInfo,
//	                             Raw carried base64 per encoding/json) plus
//	                             X-Ring-Leader (advertised client address)
//	                             and X-Ring-Durable-Seq headers.
//	GET /repl/v1/file/<name>     one immutable snapshot file, streamed;
//	                             X-Ring-Bytes up front, X-Ring-Crc (CRC32C,
//	                             hex) as an HTTP trailer computed while
//	                             streaming.
//	GET /repl/v1/wal?from=N      durable-record stream from batch sequence
//	                             N: WAL-framed records plus 8-byte
//	                             heartbeat frames carrying the leader
//	                             durable sequence. 410 Gone when N
//	                             predates the snapshot floor (re-bootstrap).

const (
	// DefaultHeartbeat is the idle interval between heartbeat frames on a
	// WAL stream; it bounds how stale a follower's lag estimate can be.
	DefaultHeartbeat = 500 * time.Millisecond
	// DefaultMaxStreams bounds concurrent replication streams + file
	// downloads; beyond it the leader sheds with 503 rather than letting
	// replication I/O starve query serving.
	DefaultMaxStreams = 8
)

// LeaderOptions configures the replication endpoint.
type LeaderOptions struct {
	// Advertise is the leader's client-facing address (host:port),
	// handed to followers so they can redirect mutations.
	Advertise string
	// MaxStreams caps concurrent replication requests (0 = default).
	MaxStreams int
	// Heartbeat is the idle heartbeat interval (0 = default).
	Heartbeat time.Duration
	// Log receives replication events; nil discards them.
	Log *slog.Logger
}

// Leader serves a DB's manifest, snapshot files, and WAL stream to
// followers.
type Leader struct {
	db  *persist.DB
	opt LeaderOptions
	sem chan struct{}
	// streams counts live WAL streams (gauge for /stats).
	streams atomic.Int64
}

// NewLeader wraps db with a replication endpoint.
func NewLeader(db *persist.DB, opt LeaderOptions) *Leader {
	if opt.MaxStreams <= 0 {
		opt.MaxStreams = DefaultMaxStreams
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = DefaultHeartbeat
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Leader{db: db, opt: opt, sem: make(chan struct{}, opt.MaxStreams)}
}

// Streams reports the number of live WAL streams (followers attached).
func (l *Leader) Streams() int64 { return l.streams.Load() }

// Handler returns the replication mux, mounted by the caller on its
// replication listener.
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/repl/v1/manifest", l.handleManifest)
	mux.HandleFunc("/repl/v1/file/", l.handleFile)
	mux.HandleFunc("/repl/v1/wal", l.handleWAL)
	return mux
}

// admit takes a stream slot without blocking; a full leader sheds the
// request rather than queueing replication I/O behind itself.
func (l *Leader) admit(w http.ResponseWriter) bool {
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "replication streams saturated", http.StatusServiceUnavailable)
		return false
	}
}

func (l *Leader) release() {
	select {
	case <-l.sem:
	default: // unreachable: release pairs with a successful admit
	}
}

func (l *Leader) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	info := l.db.ManifestSnapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ring-Leader", l.opt.Advertise)
	w.Header().Set("X-Ring-Durable-Seq", strconv.FormatUint(l.db.DurableSeq(), 10))
	if err := json.NewEncoder(w).Encode(info); err != nil {
		l.opt.Log.Warn("manifest send failed", "err", err)
	}
}

func (l *Leader) handleFile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !l.admit(w) {
		return
	}
	defer l.release()
	name := r.URL.Path[len("/repl/v1/file/"):]
	f, size, err := l.db.OpenSnapshotFile(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer f.Close() // read-only handle; nothing to flush
	// The CRC is computed while streaming and shipped as a trailer: the
	// files are immutable but large, and a second read just to checksum
	// first would double the bootstrap's disk traffic.
	w.Header().Set("Trailer", "X-Ring-Crc")
	w.Header().Set("X-Ring-Bytes", strconv.FormatInt(size, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	crc := crc32.New(castagnoli)
	n, err := io.Copy(io.MultiWriter(w, crc), f)
	if err != nil {
		// Mid-stream: the status line is gone; the byte count/CRC mismatch
		// tells the follower to retry.
		l.opt.Log.Warn("snapshot file stream aborted", "file", name, "sent", n, "err", err)
		return
	}
	w.Header().Set("X-Ring-Crc", fmt.Sprintf("%08x", crc.Sum32()))
}

func (l *Leader) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from sequence", http.StatusBadRequest)
		return
	}
	if !l.admit(w) {
		return
	}
	defer l.release()
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ring-Leader", l.opt.Advertise)

	l.streams.Add(1)
	defer l.streams.Add(-1)
	l.opt.Log.Info("wal stream opened", "from", from, "remote", r.RemoteAddr)

	wrote := false
	streamErr := l.db.StreamWAL(r.Context(), from, l.opt.Heartbeat, func(rec persist.TailRecord) error {
		payload := rec.Payload
		if payload == nil {
			payload = encodeHeartbeat(rec.Seq)
		}
		if err := WriteFrame(w, payload); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	switch {
	case streamErr == nil || errors.Is(streamErr, persist.ErrClosed):
		// Clean end of stream (leader shutting down): the follower sees
		// EOF at a frame boundary and reconnects.
	case errors.Is(streamErr, persist.ErrSnapshotRequired):
		if !wrote {
			http.Error(w, streamErr.Error(), http.StatusGone)
		}
		l.opt.Log.Info("wal stream predates snapshot", "from", from)
	case r.Context().Err() != nil:
		// Follower went away; normal churn.
	default:
		l.opt.Log.Warn("wal stream failed", "from", from, "err", streamErr)
	}
}
