// Package repl ships the write-ahead log between ring servers: a leader
// serves its manifest, its immutable snapshot files, and a live WAL
// stream over plain HTTP; a follower bootstraps from the snapshot,
// tails the stream through the same apply path recovery uses, and can
// be promoted to a writable leader when the original dies.
//
// The wire format deliberately reuses the WAL's own record framing
// (little-endian u32 length, u32 CRC32C, payload), so a shipped frame
// is byte-identical to the record the leader fsynced and the record the
// follower will fsync. There is no translation layer to get wrong: a
// frame either passes the same checksum recovery trusts, or the
// connection dies and the follower resumes from its durable sequence.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// frameHeaderBytes prefixes every frame: u32 payload length + u32
	// CRC32C (Castagnoli), both little-endian — the WAL record header.
	frameHeaderBytes = 8
	// MaxFramePayload bounds one frame, matching the WAL's record bound:
	// anything larger in a header is hostile or torn.
	MaxFramePayload = 64 << 20
	// heartbeatPayloadBytes identifies a heartbeat frame: a bare 8-byte
	// leader durable sequence. Real records are at least 12 bytes (8-byte
	// sequence + 4-byte op count), so the length disambiguates.
	heartbeatPayloadBytes = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a structurally invalid frame: an oversized or
// undersized length, or a checksum mismatch. A follower treats it as a
// broken connection — drop everything unacknowledged and resume from
// the durable sequence — never as data.
var ErrBadFrame = errors.New("repl: bad frame")

// WriteFrame emits one length-prefixed CRC'd frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, verifying its checksum. A clean EOF at a
// frame boundary returns io.EOF; a truncation inside a frame returns
// io.ErrUnexpectedEOF; a hostile or corrupt header returns ErrBadFrame.
// The payload is freshly allocated (appliers retain it).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d-byte payload exceeds bound", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return payload, nil
}

// heartbeat reports whether a frame payload is a heartbeat and, if so,
// the leader durable sequence it carries.
func heartbeat(payload []byte) (uint64, bool) {
	if len(payload) != heartbeatPayloadBytes {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload), true
}

// encodeHeartbeat renders a heartbeat payload.
func encodeHeartbeat(seq uint64) []byte {
	var b [heartbeatPayloadBytes]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	return b[:]
}
