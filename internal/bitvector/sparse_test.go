package bitvector

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomSparse(rng *rand.Rand, m int, density float64) ([]int, []bool) {
	set := map[int]bool{}
	for i := 0; i < m; i++ {
		if rng.Float64() < density {
			set[i] = true
		}
	}
	ones := make([]int, 0, len(set))
	bs := make([]bool, m)
	for p := range set {
		ones = append(ones, p)
		bs[p] = true
	}
	sort.Ints(ones)
	return ones, bs
}

func TestSparseAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, m := range []int{1, 10, 100, 5000} {
		for _, density := range []float64{0, 0.001, 0.02, 0.3, 1} {
			ones, bs := randomSparse(rng, m, density)
			s := NewSparse(m, ones)
			ref := &naive{bits: bs}
			if s.Ones() != ref.Ones() || s.Len() != m {
				t.Fatalf("m=%d d=%.3f: Ones/Len mismatch", m, density)
			}
			for i := 0; i <= m; i++ {
				if got, want := s.Rank1(i), ref.Rank1(i); got != want {
					t.Fatalf("m=%d d=%.3f: Rank1(%d) = %d, want %d", m, density, i, got, want)
				}
			}
			for i := 0; i < m; i++ {
				if got, want := s.Get(i), bs[i]; got != want {
					t.Fatalf("m=%d d=%.3f: Get(%d) = %v, want %v", m, density, i, got, want)
				}
			}
			for k := 1; k <= s.Ones(); k++ {
				if got, want := s.Select1(k), ref.Select1(k); got != want {
					t.Fatalf("m=%d d=%.3f: Select1(%d) = %d, want %d", m, density, k, got, want)
				}
			}
			zeros := m - s.Ones()
			for k := 1; k <= zeros; k += 1 + zeros/50 {
				if got, want := s.Select0(k), ref.Select0(k); got != want {
					t.Fatalf("m=%d d=%.3f: Select0(%d) = %d, want %d", m, density, k, got, want)
				}
			}
			if s.Select1(0) != -1 || s.Select1(s.Ones()+1) != -1 {
				t.Fatal("Select1 out-of-range not -1")
			}
			if s.Select0(0) != -1 || s.Select0(zeros+1) != -1 {
				t.Fatal("Select0 out-of-range not -1")
			}
		}
	}
}

func TestSparseVerySparseCompresses(t *testing.T) {
	// 100 ones in a 10M universe must use a tiny fraction of plain space.
	m := 10_000_000
	ones := make([]int, 100)
	for i := range ones {
		ones[i] = i * 99991
	}
	s := NewSparse(m, ones)
	if s.SizeBytes() > 4096 {
		t.Errorf("Elias-Fano of 100 ones in 10M positions uses %d bytes", s.SizeBytes())
	}
	// Spot-check correctness at this scale.
	for k := 1; k <= 100; k++ {
		if got := s.Select1(k); got != (k-1)*99991 {
			t.Fatalf("Select1(%d) = %d", k, got)
		}
	}
	if got := s.Rank1(99991*50 + 1); got != 51 {
		t.Fatalf("Rank1 = %d, want 51", got)
	}
}

func TestSparseQuickRankSelectInverse(t *testing.T) {
	f := func(seed int64, mRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%3000) + 1
		ones, _ := randomSparse(rng, m, 0.1)
		s := NewSparse(m, ones)
		for k := 1; k <= s.Ones(); k++ {
			p := s.Select1(k)
			if p < 0 || !s.Get(p) || s.Rank1(p) != k-1 || s.Rank1(p+1) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	ones, bs := randomSparse(rng, 4000, 0.05)
	s := NewSparse(4000, ones)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bs {
		if got.Get(i) != bs[i] {
			t.Fatalf("Get(%d) differs after round-trip", i)
		}
	}
	// Corruption.
	buf.Reset()
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadSparse(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("accepted truncated Sparse")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 1
	if _, err := ReadSparse(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
}

func TestSparsePanics(t *testing.T) {
	t.Run("unsorted", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for unsorted positions")
			}
		}()
		NewSparse(10, []int{5, 3})
	})
	t.Run("outOfUniverse", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for out-of-universe position")
			}
		}()
		NewSparse(10, []int{3, 10})
	})
	t.Run("duplicate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for duplicate positions")
			}
		}()
		NewSparse(10, []int{3, 3})
	})
}

func TestSparseEmpty(t *testing.T) {
	s := NewSparse(100, nil)
	if s.Ones() != 0 || s.Rank1(50) != 0 || s.Select1(1) != -1 {
		t.Error("empty sparse misbehaves")
	}
	if s.Select0(10) != 9 {
		t.Errorf("Select0(10) = %d, want 9", s.Select0(10))
	}
}
