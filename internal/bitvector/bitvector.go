// Package bitvector implements succinct bitvectors with constant-time rank
// and logarithmic-time select, in two flavours:
//
//   - Plain: an uncompressed bitvector with a two-level rank directory
//     (o(n) bits on top of the data), used by the paper's "Ring" variant.
//   - RRR: a compressed bitvector following Raman, Raman and Rao's
//     class/offset block encoding, with a configurable block size b
//     (larger b compresses better but is slower to query), used by the
//     paper's "C-Ring" variant (b=16) and its archival variant (b=64).
//
// Both satisfy the Vector interface consumed by package wavelet.
//
// Conventions: positions are 0-based. Rank1(i) counts ones in the prefix
// [0, i) — so Rank1(0) == 0 and Rank1(Len()) == Ones(). Select1(k) is
// 1-based: it returns the position of the k-th one for k in [1, Ones()],
// and -1 outside that range. Select0 is symmetric for zeros.
package bitvector

import (
	"errors"
	"fmt"
	"io"
	mbits "math/bits"

	"repro/internal/bits"
)

// Vector is the read interface shared by all bitvector implementations.
type Vector interface {
	// Len returns the number of bits in the vector.
	Len() int
	// Get reports whether bit i is set. It panics if i is out of range.
	Get(i int) bool
	// Rank1 returns the number of set bits in the prefix [0, i), 0 <= i <= Len().
	Rank1(i int) int
	// Rank0 returns the number of zero bits in the prefix [0, i).
	Rank0(i int) int
	// Select1 returns the position of the k-th set bit (1-based), or -1 if
	// k is out of [1, Ones()].
	Select1(k int) int
	// Select0 returns the position of the k-th zero bit (1-based), or -1.
	Select0(k int) int
	// Ones returns the total number of set bits.
	Ones() int
	// SizeBytes returns the in-memory footprint of the structure, including
	// rank/select directories, in bytes.
	SizeBytes() int
}

// superBits is the rank superblock size in bits for Plain. One absolute
// cumulative count is stored per superblock; ranks inside a superblock are
// resolved with at most superBits/64 popcounts.
const superBits = 512

const superWords = superBits / 64

// Plain is an uncompressed bitvector with a two-level rank directory
// (absolute counts per 512-bit superblock, relative counts per word),
// giving constant-time rank with one popcount. The o(n) directory costs
// ~37.5% over the raw bits — the same order as the 57% rank/select
// overhead the paper reports for its plain configuration.
// The zero value is an empty vector; use NewPlain or a Builder to create one.
type Plain struct {
	// words may alias a read-only memory-mapped file when the vector was
	// loaded through ViewPlain; it must never be written to after
	// construction.
	//ringlint:viewed
	words []uint64
	n     int

	// Rank directory, derived from words by buildDirectory: rebuilt on
	// load, never serialized.
	//ringlint:derived
	super []uint64 // super[j] = Rank1(j*superBits)
	//ringlint:derived
	sub []uint16 // sub[w] = ones in the superblock before word w
	//ringlint:derived
	ones int

	// Select directories (see select.go): superblock index of every
	// selSampleRate-th one and zero. Rebuilt on load, never serialized.
	//ringlint:derived
	selOne []uint32
	//ringlint:derived
	selZero []uint32
}

// NewPlain builds a Plain bitvector of length n whose set bits are given by
// get. It runs in O(n/64 + ones) time.
func NewPlain(n int, get func(i int) bool) *Plain {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if get(i) {
			b.Set(i)
		}
	}
	return b.BuildPlain()
}

// PlainFromWords builds a Plain bitvector over the first n bits of words.
// The slice is retained, not copied; words must not be mutated afterwards.
func PlainFromWords(words []uint64, n int) *Plain {
	if need := bits.WordsFor(uint64(n)); len(words) < need {
		panic(fmt.Sprintf("bitvector: %d words cannot hold %d bits", len(words), n))
	}
	// Clear tail bits past n so popcounts and select scans are exact.
	if tail := uint(n & 63); tail != 0 {
		words[n>>6] &= (uint64(1) << tail) - 1
	}
	for i := bits.WordsFor(uint64(n)); i < len(words); i++ {
		words[i] = 0
	}
	p := &Plain{words: words, n: n}
	p.buildDirectory()
	return p
}

func (p *Plain) buildDirectory() {
	nSuper := (p.n + superBits - 1) / superBits
	p.super = make([]uint64, nSuper+1)
	p.sub = make([]uint16, len(p.words))
	cum := 0
	for j := 0; j < nSuper; j++ {
		p.super[j] = uint64(cum)
		lo := j * superWords
		hi := lo + superWords
		if hi > len(p.words) {
			hi = len(p.words)
		}
		within := 0
		for w := lo; w < hi; w++ {
			p.sub[w] = uint16(within)
			within += mbits.OnesCount64(p.words[w])
		}
		cum += within
	}
	p.super[nSuper] = uint64(cum)
	p.ones = cum
	p.selOne = buildSelectSamples(p.ones, nSuper, func(sb int) int {
		return int(p.super[sb])
	})
	p.selZero = buildSelectSamples(p.n-p.ones, nSuper, p.zerosBefore)
}

// zerosBefore returns the number of zero bits before superblock sb.
func (p *Plain) zerosBefore(sb int) int {
	b := sb * superBits
	if b > p.n {
		b = p.n
	}
	return b - int(p.super[sb])
}

// Len returns the number of bits.
func (p *Plain) Len() int { return p.n }

// Ones returns the number of set bits.
func (p *Plain) Ones() int { return p.ones }

// Get reports whether bit i is set.
//
//ringlint:hotpath
func (p *Plain) Get(i int) bool {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bitvector: Get(%d) out of range [0,%d)", i, p.n))
	}
	return p.words[i>>6]&(1<<uint(i&63)) != 0
}

// Rank1 returns the number of ones in [0, i), in constant time.
//
//ringlint:hotpath
func (p *Plain) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= p.n {
		return p.ones
	}
	w := i >> 6
	r := int(p.super[i/superBits]) + int(p.sub[w])
	if rem := uint(i & 63); rem != 0 {
		r += mbits.OnesCount64(p.words[w] & ((1 << rem) - 1))
	}
	return r
}

// Rank0 returns the number of zeros in [0, i).
//
//ringlint:hotpath
func (p *Plain) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i > p.n {
		i = p.n
	}
	return i - p.Rank1(i)
}

// Select1 returns the position of the k-th one (1-based), or -1.
//
//ringlint:hotpath
func (p *Plain) Select1(k int) int {
	if k < 1 || k > p.ones {
		return -1
	}
	if ringdebugEnabled {
		p.debugCheckDirectory()
	}
	// Narrow to the window between two select samples, then binary search
	// it for the last superblock whose cumulative rank is < k.
	lo, hi := selectWindow(p.selOne, k, len(p.super)-2)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(p.super[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(p.super[lo]) // rem >= 1: ones still to find
	start := lo * superWords
	end := start + superWords
	if end > len(p.words) {
		end = len(p.words)
	}
	w := start
	for w+1 < end && int(p.sub[w+1]) < rem {
		w++
	}
	res := w*64 + bits.Select64(p.words[w], rem-int(p.sub[w])-1)
	if ringdebugEnabled {
		p.debugCheckSelect(k, res, true)
	}
	return res
}

// Select0 returns the position of the k-th zero (1-based), or -1.
//
//ringlint:hotpath
func (p *Plain) Select0(k int) int {
	zeros := p.n - p.ones
	if k < 1 || k > zeros {
		return -1
	}
	if ringdebugEnabled {
		p.debugCheckDirectory()
	}
	// rank0 at superblock j is j*superBits - super[j].
	lo, hi := selectWindow(p.selZero, k, len(p.super)-2)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*superBits-int(p.super[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - (lo*superBits - int(p.super[lo]))
	start := lo * superWords
	end := start + superWords
	if end > len(p.words) {
		end = len(p.words)
	}
	w := start
	// zeros before word w within the superblock = (w-start)*64 - sub[w].
	for w+1 < end && (w+1-start)*64-int(p.sub[w+1]) < rem {
		w++
	}
	word := p.words[w]
	// Zeros past the end of the vector must not be counted.
	if hiBit := p.n - w*64; hiBit < 64 {
		word |= ^uint64(0) << uint(hiBit)
	}
	rem -= (w-start)*64 - int(p.sub[w])
	res := w*64 + bits.Select64(^word, rem-1)
	if ringdebugEnabled {
		p.debugCheckSelect(k, res, false)
	}
	return res
}

// SizeBytes returns the memory footprint including the rank directory and
// the select samples.
func (p *Plain) SizeBytes() int {
	return 8*len(p.words) + 8*len(p.super) + 2*len(p.sub) +
		4*(len(p.selOne)+len(p.selZero)) + 24
}

// Builder accumulates bits for a Plain or RRR vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a builder for a vector of n bits, all initially zero.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, bits.WordsFor(uint64(n))), n: n}
}

// Set sets bit i.
func (b *Builder) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvector: Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Len returns the length the built vector will have.
func (b *Builder) Len() int { return b.n }

// BuildPlain finalizes the builder into a Plain vector. The builder must not
// be reused afterwards.
func (b *Builder) BuildPlain() *Plain {
	return PlainFromWords(b.words, b.n)
}

// BuildRRR finalizes the builder into an RRR-compressed vector with the
// given block size (see NewRRR).
func (b *Builder) BuildRRR(blockSize int) *RRR {
	return rrrFromWords(b.words, b.n, blockSize)
}

// --- serialization ---

const plainMagic = uint64(0x52494e4750424954) // "RINGPBIT"

// WriteTo serializes the vector. The rank directory is rebuilt on load.
func (p *Plain) WriteTo(w io.Writer) (int64, error) {
	cw := newCountWriter(w)
	if err := writeUint64s(cw, plainMagic, uint64(p.n), uint64(len(p.words))); err != nil {
		return cw.n, err
	}
	if err := writeUint64Slice(cw, p.words); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadPlain deserializes a Plain vector written by WriteTo.
func ReadPlain(r io.Reader) (*Plain, error) {
	return DecodePlain(bits.NewReaderSource(r, "bitvector"))
}

// ViewPlain deserializes a Plain vector from an in-memory buffer —
// typically a memory-mapped file. The word payload aliases b when the
// host is little-endian and b is 8-byte aligned (copied otherwise); the
// rank/select directories are rebuilt on the heap either way. It returns
// the number of bytes consumed so callers can continue decoding a
// composite stream.
func ViewPlain(b []byte) (*Plain, int, error) {
	src := bits.NewByteSource(b, "bitvector")
	p, err := DecodePlain(src)
	if err != nil {
		return nil, 0, err
	}
	return p, src.Offset(), nil
}

// DecodePlain deserializes a Plain vector from any Source. The payload
// obtained through src.Words may alias read-only mapped memory, so —
// unlike PlainFromWords, which clears stray tail bits in place — the
// decoder rejects a nonzero tail instead of repairing it. WriteTo always
// emits clean tails, so this only fires on corrupt or hand-forged input.
func DecodePlain(src bits.Source) (*Plain, error) {
	hdr, err := src.U64s(3)
	if err != nil {
		return nil, err
	}
	if hdr[0] != plainMagic {
		return nil, errors.New("bitvector: bad magic for Plain vector")
	}
	n, nw := int(hdr[1]), int(hdr[2])
	if n < 0 || nw != bits.WordsFor(uint64(n)) {
		return nil, fmt.Errorf("bitvector: corrupt Plain header (n=%d words=%d)", n, nw)
	}
	words, err := src.Words(nw)
	if err != nil {
		return nil, err
	}
	if tail := uint(n & 63); tail != 0 && words[nw-1]>>tail != 0 {
		return nil, fmt.Errorf("bitvector: nonzero bits past Plain length %d", n)
	}
	p := &Plain{words: words, n: n}
	p.buildDirectory()
	return p, nil
}
