package bitvector

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"unsafe"
)

// writeBytes serializes any of the bitvector types through the shared
// io.Writer path.
func writeBytes(t *testing.T, v interface {
	WriteTo(io.Writer) (int64, error)
}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// alignedCopy returns a copy of data whose base address is 8-byte
// aligned plus skew — skew 0 exercises the zero-copy aliasing path,
// skew 1..7 the misaligned copy fallback.
func alignedCopy(data []byte, skew int) []byte {
	buf := make([]byte, len(data)+16)
	off := (8 - int(uintptr(unsafe.Pointer(&buf[0])))%8) % 8
	off += skew
	copy(buf[off:], data)
	return buf[off : off+len(data)]
}

func TestViewPlainMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 64, 1000} {
		bs := randomBits(rng, n, 0.4)
		data := writeBytes(t, buildPlain(bs))
		v, consumed, err := ViewPlain(alignedCopy(data, 0))
		if err != nil {
			t.Fatalf("ViewPlain(n=%d): %v", n, err)
		}
		if consumed != len(data) {
			t.Fatalf("ViewPlain(n=%d) consumed %d of %d bytes", n, consumed, len(data))
		}
		checkAgainstNaive(t, v, bs, "view-plain")
	}
}

// TestViewPlainAliases proves the zero-copy contract: on an aligned
// little-endian buffer the Plain's words alias the input bytes.
func TestViewPlainAliases(t *testing.T) {
	bs := randomBits(rand.New(rand.NewSource(42)), 512, 0.5)
	data := alignedCopy(writeBytes(t, buildPlain(bs)), 0)
	v, _, err := ViewPlain(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.words) == 0 {
		t.Fatal("no words")
	}
	// The payload starts after the 3-word header.
	if unsafe.Pointer(&v.words[0]) != unsafe.Pointer(&data[24]) {
		t.Error("ViewPlain on an aligned buffer did not alias the input")
	}
}

func TestViewPlainMisalignedFallback(t *testing.T) {
	bs := randomBits(rand.New(rand.NewSource(43)), 300, 0.3)
	data := writeBytes(t, buildPlain(bs))
	for skew := 1; skew < 8; skew++ {
		v, consumed, err := ViewPlain(alignedCopy(data, skew))
		if err != nil {
			t.Fatalf("skew %d: %v", skew, err)
		}
		if consumed != len(data) {
			t.Fatalf("skew %d: consumed %d of %d", skew, consumed, len(data))
		}
		checkAgainstNaive(t, v, bs, "view-plain-misaligned")
	}
}

func TestViewRRRMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, b := range []int{15, 16, 64} {
		bs := randomBits(rng, 3000, 0.2)
		data := writeBytes(t, buildRRR(bs, b))
		v, consumed, err := ViewRRR(alignedCopy(data, 0))
		if err != nil {
			t.Fatalf("ViewRRR(b=%d): %v", b, err)
		}
		if consumed != len(data) {
			t.Fatalf("ViewRRR(b=%d) consumed %d of %d bytes", b, consumed, len(data))
		}
		checkAgainstNaive(t, v, bs, "view-rrr")
	}
}

func TestViewSparseMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ones, bs := randomSparse(rng, 4000, 0.05)
	data := writeBytes(t, NewSparse(4000, ones))
	v, consumed, err := ViewSparse(alignedCopy(data, 0))
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(data) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(data))
	}
	for i := range bs {
		if v.Get(i) != bs[i] {
			t.Fatalf("Get(%d) differs between view and build", i)
		}
	}
}

// TestViewTruncationsError feeds every truncated prefix of each
// serialization to its View decoder: all must error, none may panic.
func TestViewTruncationsError(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	bs := randomBits(rng, 700, 0.3)
	ones, _ := randomSparse(rng, 700, 0.1)
	cases := []struct {
		name string
		data []byte
		view func([]byte) (int, error)
	}{
		{"plain", writeBytes(t, buildPlain(bs)), func(b []byte) (int, error) { _, n, err := ViewPlain(b); return n, err }},
		{"rrr", writeBytes(t, buildRRR(bs, 16)), func(b []byte) (int, error) { _, n, err := ViewRRR(b); return n, err }},
		{"sparse", writeBytes(t, NewSparse(700, ones)), func(b []byte) (int, error) { _, n, err := ViewSparse(b); return n, err }},
	}
	for _, tc := range cases {
		for i := 0; i < len(tc.data); i++ {
			if _, err := tc.view(alignedCopy(tc.data[:i], 0)); err == nil {
				t.Errorf("%s: accepted truncation to %d of %d bytes", tc.name, i, len(tc.data))
			}
		}
	}
}

// TestViewBitFlips corrupts each serialization one byte at a time: the
// View decoders must either reject the input or produce a structure
// that answers queries without panicking. (A flip inside the payload
// yields a different but valid bitvector; a flip in a header or
// directory word must be caught by validation.)
func TestViewBitFlips(t *testing.T) {
	if ringdebugEnabled {
		t.Skip("corrupt-but-accepted input returns wrong answers by policy, which legitimately trips ringdebug assertions")
	}
	rng := rand.New(rand.NewSource(47))
	bs := randomBits(rng, 500, 0.4)
	ones, _ := randomSparse(rng, 500, 0.1)
	type probe struct {
		name string
		data []byte
		view func([]byte) error
	}
	exercise := func(v Vector) {
		n := v.Len()
		for i := 0; i <= n; i += 17 {
			v.Rank1(i)
		}
		if ones := v.Rank1(n); ones > 0 {
			v.Select1(1)
			v.Select1(ones)
		}
	}
	cases := []probe{
		{"plain", writeBytes(t, buildPlain(bs)), func(b []byte) error {
			v, _, err := ViewPlain(b)
			if err == nil {
				exercise(v)
			}
			return err
		}},
		{"rrr", writeBytes(t, buildRRR(bs, 16)), func(b []byte) error {
			v, _, err := ViewRRR(b)
			if err == nil {
				exercise(v)
			}
			return err
		}},
		{"sparse", writeBytes(t, NewSparse(500, ones)), func(b []byte) error {
			v, _, err := ViewSparse(b)
			if err == nil {
				exercise(v)
			}
			return err
		}},
	}
	for _, tc := range cases {
		for i := 0; i < len(tc.data); i++ {
			c := alignedCopy(tc.data, 0)
			c[i] ^= 0x5A
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on byte %d flipped: %v", tc.name, i, r)
					}
				}()
				_ = tc.view(c)
			}()
		}
	}
}
