package bitvector

import "fmt"

// Runtime assertion hooks for the ringdebug build tag. Every helper is
// called behind `if ringdebugEnabled { ... }`: in normal builds the
// constant is false (see ringdebug_off.go) and the compiler eliminates
// both the branch and the call, so the hot paths carry no overhead.

// sampleCount returns the expected select-directory length for total
// occurrences of one bit kind (see buildSelectSamples).
func sampleCount(total int) int {
	if total <= 0 {
		return 0
	}
	return (total + selSampleRate - 1) / selSampleRate
}

// debugCheckDirectory asserts the structural invariants of the derived
// rank/select directories — in particular that the select samples were
// rebuilt after deserialization (they are never stored; see select.go).
func (p *Plain) debugCheckDirectory() {
	nSuper := (p.n + superBits - 1) / superBits
	if len(p.super) != nSuper+1 {
		panic(fmt.Sprintf("ringdebug: bitvector: Plain rank directory has %d superblock entries, want %d — directory not rebuilt?",
			len(p.super), nSuper+1))
	}
	if int(p.super[nSuper]) != p.ones {
		panic(fmt.Sprintf("ringdebug: bitvector: Plain rank directory ends at %d ones, vector has %d",
			p.super[nSuper], p.ones))
	}
	if want := sampleCount(p.ones); len(p.selOne) != want {
		panic(fmt.Sprintf("ringdebug: bitvector: Plain select-one directory has %d samples, want %d — rebuild skipped after load?",
			len(p.selOne), want))
	}
	if want := sampleCount(p.n - p.ones); len(p.selZero) != want {
		panic(fmt.Sprintf("ringdebug: bitvector: Plain select-zero directory has %d samples, want %d — rebuild skipped after load?",
			len(p.selZero), want))
	}
}

// debugCheckSelect asserts the rank/select inverse: the position returned
// for the k-th one (zero) must hold a bit of that kind and have exactly
// k-1 such bits before it.
func (p *Plain) debugCheckSelect(k, pos int, one bool) {
	if pos < 0 || pos >= p.n {
		panic(fmt.Sprintf("ringdebug: bitvector: Plain select returned position %d outside [0,%d)", pos, p.n))
	}
	if one {
		if !p.Get(pos) || p.Rank1(pos) != k-1 {
			panic(fmt.Sprintf("ringdebug: bitvector: Plain Select1(%d) = %d violates the rank inverse (get=%v rank1=%d)",
				k, pos, p.Get(pos), p.Rank1(pos)))
		}
	} else if p.Get(pos) || p.Rank0(pos) != k-1 {
		panic(fmt.Sprintf("ringdebug: bitvector: Plain Select0(%d) = %d violates the rank inverse (get=%v rank0=%d)",
			k, pos, p.Get(pos), p.Rank0(pos)))
	}
}

// debugCheckDirectory is the RRR counterpart of Plain.debugCheckDirectory:
// it asserts the rank superblocks agree with the ones count and that
// ReadRRR rebuilt the select samples (buildSelectSamples).
func (r *RRR) debugCheckDirectory() {
	nBlocks := (r.n + r.blockSize - 1) / r.blockSize
	nSuper := (nBlocks + r.sbRate - 1) / r.sbRate
	if len(r.superRank) != nSuper+1 {
		panic(fmt.Sprintf("ringdebug: bitvector: RRR rank directory has %d superblock entries, want %d",
			len(r.superRank), nSuper+1))
	}
	if int(r.superRank[nSuper]) != r.ones {
		panic(fmt.Sprintf("ringdebug: bitvector: RRR rank directory ends at %d ones, vector has %d",
			r.superRank[nSuper], r.ones))
	}
	if want := sampleCount(r.ones); len(r.selOne) != want {
		panic(fmt.Sprintf("ringdebug: bitvector: RRR select-one directory has %d samples, want %d — rebuild skipped after load?",
			len(r.selOne), want))
	}
	if want := sampleCount(r.n - r.ones); len(r.selZero) != want {
		panic(fmt.Sprintf("ringdebug: bitvector: RRR select-zero directory has %d samples, want %d — rebuild skipped after load?",
			len(r.selZero), want))
	}
}

// debugCheckSelect asserts the rank/select inverse on the compressed
// vector, decoding blocks as needed.
func (r *RRR) debugCheckSelect(k, pos int, one bool) {
	if pos < 0 || pos >= r.n {
		panic(fmt.Sprintf("ringdebug: bitvector: RRR select returned position %d outside [0,%d)", pos, r.n))
	}
	if one {
		if !r.Get(pos) || r.Rank1(pos) != k-1 {
			panic(fmt.Sprintf("ringdebug: bitvector: RRR Select1(%d) = %d violates the rank inverse (get=%v rank1=%d)",
				k, pos, r.Get(pos), r.Rank1(pos)))
		}
	} else if r.Get(pos) || r.Rank0(pos) != k-1 {
		panic(fmt.Sprintf("ringdebug: bitvector: RRR Select0(%d) = %d violates the rank inverse (get=%v rank0=%d)",
			k, pos, r.Get(pos), r.Rank0(pos)))
	}
}
