package bitvector

import (
	"errors"
	"fmt"
	"io"
	mbits "math/bits"

	"repro/internal/bits"
)

// RRR is a compressed bitvector following the Raman–Raman–Rao block
// encoding. The vector is cut into blocks of b bits; each block is stored
// as its class (popcount, in ⌈log₂(b+1)⌉ bits) plus an offset identifying
// the block among all b-bit words of that class (in ⌈log₂ C(b,class)⌉
// bits). A sampled directory of cumulative ranks and offset-stream
// positions supports rank and select.
//
// Larger block sizes compress closer to the zero-order entropy of the
// vector but pay a linear-in-b decode cost per query, matching the
// trade-off the paper reports for its C-Ring (b=16) and archival (b=64)
// variants. Block sizes from 1 to 64 are supported (binomials up to
// C(64,32) fit in a uint64).
type RRR struct {
	n         int
	blockSize int
	sbRate    int // blocks per superblock
	ones      int

	classWidth uint
	// classes and offsets may alias a read-only memory-mapped file when
	// the vector was loaded through ViewRRR; never write to them after
	// construction.
	//ringlint:viewed
	classes []uint64 // packed classWidth-bit class per block
	//ringlint:viewed
	offsets   []uint64 // concatenated variable-width offsets
	offsetLen uint64   // total bits used in offsets

	superRank []uint32 // cumulative ones before each superblock
	superOff  []uint32 // offset-stream bit position at each superblock

	// Select directories (see select.go): superblock index of every
	// selSampleRate-th one and zero. Rebuilt on load, never serialized.
	//ringlint:derived
	selOne []uint32
	//ringlint:derived
	selZero []uint32

	// Shared per-block-size decode tables, reattached on load.
	//ringlint:derived
	tab *binomTable
}

// DefaultRRRSampleRate is the number of blocks per rank/select superblock.
// At block size 16 a superblock spans 512 data bits and stores two 32-bit
// samples — a 12.5% directory overhead, paid once on top of the
// class/offset encoding — while keeping the per-query class walk short.
const DefaultRRRSampleRate = 32

// binomTable caches binomial coefficients C(i,j) for i,j <= 64 and the
// offset widths per class for one block size. For block sizes up to 16 a
// direct (class, offset) -> block-word decode table is materialised
// lazily (2^bs uint16 entries in total), making per-block decoding one
// array lookup — the same trick sdsl uses for its 15-bit blocks.
type binomTable struct {
	binom [65][65]uint64
	width [65]uint // width[c] = ceil(log2 C(blockSize, c))
	bs    int
	dec   [][]uint16 // dec[class][offset] = block word; nil if bs > 16
}

var binomTables [65]*binomTable

func init() {
	for b := 1; b <= 64; b++ {
		t := &binomTable{bs: b}
		for i := 0; i <= 64; i++ {
			t.binom[i][0] = 1
			for j := 1; j <= i; j++ {
				t.binom[i][j] = t.binom[i-1][j-1] + t.binom[i-1][j]
			}
		}
		for c := 0; c <= b; c++ {
			v := t.binom[b][c]
			if v <= 1 {
				t.width[c] = 0
			} else {
				t.width[c] = uint(mbits.Len64(v - 1))
			}
		}
		if b <= 16 {
			t.buildDecodeTable()
		}
		binomTables[b] = t
	}
}

// buildDecodeTable materialises the direct decode table (bs <= 16 only).
func (t *binomTable) buildDecodeTable() {
	dec := make([][]uint16, t.bs+1)
	for c := 0; c <= t.bs; c++ {
		dec[c] = make([]uint16, t.binom[t.bs][c])
	}
	for w := uint64(0); w < 1<<uint(t.bs); w++ {
		c := mbits.OnesCount64(w)
		dec[c][t.encodeBlock(w)] = uint16(w)
	}
	t.dec = dec
}

// rankInBlock returns the number of ones among the rem lowest bits of the
// block identified by (class, off). For small blocks it is one table
// lookup plus a popcount; for large blocks it decodes positions from the
// highest down and exits as soon as the remaining ones must all lie below
// rem.
//
//ringlint:hotpath
func (t *binomTable) rankInBlock(class int, off uint64, rem uint) int {
	if class > t.bs || off >= t.binom[t.bs][class] {
		return 0 // corrupt (viewed) payload; reject without panicking
	}
	if t.dec != nil {
		return mbits.OnesCount64(uint64(t.dec[class][off]) & ((1 << rem) - 1))
	}
	p := t.bs - 1
	for i := class; i >= 1; i-- {
		for t.binom[p][i] > off {
			p--
		}
		if uint(p) < rem {
			return i // this one and every remaining one is below rem
		}
		off -= t.binom[p][i]
		p--
	}
	return 0
}

// encodeBlock returns the combinatorial-number-system rank of the b-bit
// word w among all words with the same popcount, using colex order: with
// one-positions p1 < p2 < ... < pc, the rank is sum_i C(p_i, i).
func (t *binomTable) encodeBlock(w uint64) uint64 {
	var off uint64
	i := 1
	for w != 0 {
		p := mbits.TrailingZeros64(w)
		off += t.binom[p][i]
		i++
		w &= w - 1
	}
	return off
}

// decodeBlock reconstructs the block word from its class and offset.
//
//ringlint:hotpath
func (t *binomTable) decodeBlock(class int, off uint64) uint64 {
	if class > t.bs || off >= t.binom[t.bs][class] {
		return 0 // corrupt (viewed) payload; reject without panicking
	}
	if t.dec != nil {
		return uint64(t.dec[class][off])
	}
	var w uint64
	p := t.bs - 1
	for i := class; i >= 1; i-- {
		for t.binom[p][i] > off {
			p--
		}
		w |= 1 << uint(p)
		off -= t.binom[p][i]
		p--
	}
	return w
}

// NewRRR builds an RRR vector of length n with the given block size, whose
// set bits are given by get.
func NewRRR(n, blockSize int, get func(i int) bool) *RRR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if get(i) {
			b.Set(i)
		}
	}
	return b.BuildRRR(blockSize)
}

func rrrFromWords(words []uint64, n, blockSize int) *RRR {
	if blockSize < 1 || blockSize > 64 {
		panic(fmt.Sprintf("bitvector: RRR block size %d out of [1,64]", blockSize))
	}
	tab := binomTables[blockSize]
	nBlocks := (n + blockSize - 1) / blockSize
	r := &RRR{
		n:          n,
		blockSize:  blockSize,
		sbRate:     DefaultRRRSampleRate,
		classWidth: bits.Len(uint64(blockSize)),
		tab:        tab,
	}
	// First pass: total offset bits.
	var offBits uint64
	for blk := 0; blk < nBlocks; blk++ {
		w := r.blockWordFrom(words, blk)
		offBits += uint64(tab.width[mbits.OnesCount64(w)])
	}
	nSuper := (nBlocks + r.sbRate - 1) / r.sbRate
	r.classes = make([]uint64, bits.WordsFor(uint64(nBlocks)*uint64(r.classWidth)))
	r.offsets = make([]uint64, bits.WordsFor(offBits))
	r.offsetLen = offBits
	if uint64(n) >= 1<<32 || offBits >= 1<<32 {
		panic("bitvector: RRR vectors beyond 2^32 bits are unsupported")
	}
	r.superRank = make([]uint32, nSuper+1)
	r.superOff = make([]uint32, nSuper+1)

	var rank, pos uint64
	for blk := 0; blk < nBlocks; blk++ {
		if blk%r.sbRate == 0 {
			sb := blk / r.sbRate
			r.superRank[sb] = uint32(rank)
			r.superOff[sb] = uint32(pos)
		}
		w := r.blockWordFrom(words, blk)
		c := mbits.OnesCount64(w)
		//ringlint:allow viewsafe -- buffer freshly allocated by this builder, never view-aliased
		bits.WriteBits(r.classes, uint64(blk)*uint64(r.classWidth), r.classWidth, uint64(c))
		if wd := tab.width[c]; wd > 0 {
			//ringlint:allow viewsafe -- buffer freshly allocated by this builder, never view-aliased
			bits.WriteBits(r.offsets, pos, wd, tab.encodeBlock(w))
			pos += uint64(wd)
		}
		rank += uint64(c)
	}
	r.superRank[nSuper] = uint32(rank)
	r.superOff[nSuper] = uint32(pos)
	r.ones = int(rank)
	r.buildSelectSamples()
	return r
}

// buildSelectSamples derives the select directories from the rank
// superblocks. Called after construction and after deserialization.
func (r *RRR) buildSelectSamples() {
	nSuper := len(r.superRank) - 1
	r.selOne = buildSelectSamples(r.ones, nSuper, func(sb int) int {
		return int(r.superRank[sb])
	})
	r.selZero = buildSelectSamples(r.n-r.ones, nSuper, r.zerosBefore)
}

// zerosBefore returns the number of zero bits before superblock sb.
func (r *RRR) zerosBefore(sb int) int {
	b := sb * r.sbRate * r.blockSize
	if b > r.n {
		b = r.n
	}
	return b - int(r.superRank[sb])
}

// blockWordFrom extracts block blk (blockSize bits) from the raw words,
// masking bits past position n.
func (r *RRR) blockWordFrom(words []uint64, blk int) uint64 {
	start := uint64(blk) * uint64(r.blockSize)
	w := bits.ReadBits(words, start, uint(r.blockSize))
	if end := start + uint64(r.blockSize); end > uint64(r.n) {
		valid := uint(uint64(r.n) - start)
		w &= (uint64(1) << valid) - 1
	}
	return w
}

// class returns block blk's popcount class. Corrupt (viewed) payloads can
// hold class values up to 2^classWidth-1 > blockSize, which would overrun
// the binomial tables downstream, so out-of-range reads clamp to 0.
//
//ringlint:hotpath
func (r *RRR) class(blk int) int {
	pos := uint64(blk) * uint64(r.classWidth)
	if pos+uint64(r.classWidth) > uint64(len(r.classes))*64 {
		return 0
	}
	c := int(bits.ReadBits(r.classes, pos, r.classWidth))
	if c > r.blockSize {
		return 0
	}
	return c
}

// blockAt decodes block blk given the bit position of its offset in the
// offset stream.
//
//ringlint:hotpath
func (r *RRR) blockAt(blk int, offPos uint64) uint64 {
	c := r.class(blk)
	wd := r.tab.width[c]
	var off uint64
	if wd > 0 && offPos+uint64(wd) <= uint64(len(r.offsets))*64 {
		off = bits.ReadBits(r.offsets, offPos, wd)
	}
	return r.tab.decodeBlock(c, off)
}

// seekBlock walks from blk's superblock boundary to blk, returning the
// cumulative rank before blk and the offset-stream position of blk.
//
//ringlint:hotpath
func (r *RRR) seekBlock(blk int) (rankBefore int, offPos uint64) {
	sb := blk / r.sbRate
	rank := uint64(r.superRank[sb])
	pos := uint64(r.superOff[sb])
	cw := uint64(r.classWidth)
	bitPos := uint64(sb*r.sbRate) * cw
	for b := sb * r.sbRate; b < blk; b++ {
		c := bits.ReadBits(r.classes, bitPos, r.classWidth)
		bitPos += cw
		if c > uint64(r.blockSize) {
			c = 0 // corrupt payload: clamp before indexing the width table
		}
		rank += c
		pos += uint64(r.tab.width[c])
	}
	return int(rank), pos
}

// Len returns the number of bits.
func (r *RRR) Len() int { return r.n }

// Ones returns the number of set bits.
func (r *RRR) Ones() int { return r.ones }

// Get reports whether bit i is set.
//
//ringlint:hotpath
func (r *RRR) Get(i int) bool {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("bitvector: Get(%d) out of range [0,%d)", i, r.n))
	}
	blk := i / r.blockSize
	_, pos := r.seekBlock(blk)
	w := r.blockAt(blk, pos)
	return w&(1<<uint(i%r.blockSize)) != 0
}

// Rank1 returns the number of ones in [0, i).
//
//ringlint:hotpath
func (r *RRR) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= r.n {
		return r.ones
	}
	blk := i / r.blockSize
	rank, pos := r.seekBlock(blk)
	if rem := uint(i % r.blockSize); rem != 0 {
		c := r.class(blk)
		wd := r.tab.width[c]
		var off uint64
		if wd > 0 && pos+uint64(wd) <= uint64(len(r.offsets))*64 {
			off = bits.ReadBits(r.offsets, pos, wd)
		}
		rank += r.tab.rankInBlock(c, off, rem)
	}
	return rank
}

// Rank0 returns the number of zeros in [0, i).
//
//ringlint:hotpath
func (r *RRR) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i > r.n {
		i = r.n
	}
	return i - r.Rank1(i)
}

// Select1 returns the position of the k-th one (1-based), or -1.
//
//ringlint:hotpath
func (r *RRR) Select1(k int) int {
	if k < 1 || k > r.ones {
		return -1
	}
	if ringdebugEnabled {
		r.debugCheckDirectory()
	}
	// Narrow to the window between two select samples, then find the last
	// superblock with cumulative rank < k.
	lo, hi := selectWindow(r.selOne, k, len(r.superRank)-2)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(r.superRank[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(r.superRank[lo])
	pos := uint64(r.superOff[lo])
	blk := lo * r.sbRate
	// On well-formed input the walk always finds the k-th one inside this
	// superblock; bounding it keeps corrupt payloads from reading past the
	// class stream or looping forever.
	for nBlocks := (r.n + r.blockSize - 1) / r.blockSize; blk < nBlocks; blk++ {
		c := r.class(blk)
		if rem <= c {
			w := r.blockAt(blk, pos)
			res := blk*r.blockSize + bits.Select64(w, rem-1)
			if ringdebugEnabled {
				r.debugCheckSelect(k, res, true)
			}
			return res
		}
		rem -= c
		pos += uint64(r.tab.width[c])
	}
	return -1
}

// Select0 returns the position of the k-th zero (1-based), or -1.
//
//ringlint:hotpath
func (r *RRR) Select0(k int) int {
	zeros := r.n - r.ones
	if k < 1 || k > zeros {
		return -1
	}
	if ringdebugEnabled {
		r.debugCheckDirectory()
	}
	// rank0 before superblock sb is sb*sbRate*blockSize - superRank[sb],
	// except the final partial superblock cannot precede anything here.
	lo, hi := selectWindow(r.selZero, k, len(r.superRank)-2)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.zerosBefore(mid) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - r.zerosBefore(lo)
	pos := uint64(r.superOff[lo])
	blk := lo * r.sbRate
	// Bounded for the same reason as the Select1 walk.
	for nBlocks := (r.n + r.blockSize - 1) / r.blockSize; blk < nBlocks; blk++ {
		blkLen := r.blockSize
		if end := (blk + 1) * r.blockSize; end > r.n {
			blkLen = r.n - blk*r.blockSize
		}
		c := r.class(blk)
		z := blkLen - c
		if rem <= z {
			w := r.blockAt(blk, pos)
			res := blk*r.blockSize + bits.Select64(^w, rem-1)
			if ringdebugEnabled {
				r.debugCheckSelect(k, res, false)
			}
			return res
		}
		rem -= z
		pos += uint64(r.tab.width[c])
	}
	return -1
}

// SizeBytes returns the memory footprint of the compressed structure,
// select samples included.
func (r *RRR) SizeBytes() int {
	return 8*(len(r.classes)+len(r.offsets)) + 4*(len(r.superRank)+len(r.superOff)) +
		4*(len(r.selOne)+len(r.selZero)) + 48
}

// BlockSize returns the configured block size b.
func (r *RRR) BlockSize() int { return r.blockSize }

// --- serialization ---

const rrrMagic = uint64(0x52494e4752525221) // "RINGRRR!"

// WriteTo serializes the vector, directories included.
func (r *RRR) WriteTo(w io.Writer) (int64, error) {
	cw := newCountWriter(w)
	hdr := []uint64{
		rrrMagic, uint64(r.n), uint64(r.blockSize), uint64(r.sbRate),
		uint64(r.ones), r.offsetLen,
		uint64(len(r.classes)), uint64(len(r.offsets)), uint64(len(r.superRank)),
	}
	if err := writeUint64s(cw, hdr...); err != nil {
		return cw.n, err
	}
	for _, s := range [][]uint64{r.classes, r.offsets, widen(r.superRank), widen(r.superOff)} {
		if err := writeUint64Slice(cw, s); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

func widen(xs []uint32) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func narrow(xs []uint64) ([]uint32, error) {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		if x >= 1<<32 {
			return nil, errors.New("bitvector: RRR directory value overflows 32 bits")
		}
		out[i] = uint32(x)
	}
	return out, nil
}

// ReadRRR deserializes an RRR vector written by WriteTo.
func ReadRRR(rd io.Reader) (*RRR, error) {
	return DecodeRRR(bits.NewReaderSource(rd, "bitvector"))
}

// ViewRRR deserializes an RRR vector from an in-memory buffer. The
// classes and offsets payloads alias b when possible; the uint32
// rank/offset directories and select samples are always rebuilt or
// copied onto the heap (they are o(n) and need a width change anyway).
// Returns the number of bytes consumed.
func ViewRRR(b []byte) (*RRR, int, error) {
	src := bits.NewByteSource(b, "bitvector")
	r, err := DecodeRRR(src)
	if err != nil {
		return nil, 0, err
	}
	return r, src.Offset(), nil
}

// DecodeRRR deserializes an RRR vector from any Source.
func DecodeRRR(src bits.Source) (*RRR, error) {
	hdr, err := src.U64s(9)
	if err != nil {
		return nil, err
	}
	if hdr[0] != rrrMagic {
		return nil, errors.New("bitvector: bad magic for RRR vector")
	}
	r := &RRR{
		n:         int(hdr[1]),
		blockSize: int(hdr[2]),
		sbRate:    int(hdr[3]),
		ones:      int(hdr[4]),
		offsetLen: hdr[5],
	}
	if r.blockSize < 1 || r.blockSize > 64 || r.n < 0 || r.sbRate < 1 {
		return nil, fmt.Errorf("bitvector: corrupt RRR header (n=%d b=%d sb=%d)", r.n, r.blockSize, r.sbRate)
	}
	r.classWidth = bits.Len(uint64(r.blockSize))
	r.tab = binomTables[r.blockSize]
	nBlocks := (r.n + r.blockSize - 1) / r.blockSize
	nSuper := (nBlocks + r.sbRate - 1) / r.sbRate
	if int(hdr[6]) != bits.WordsFor(uint64(nBlocks)*uint64(r.classWidth)) ||
		int(hdr[7]) != bits.WordsFor(r.offsetLen) || int(hdr[8]) != nSuper+1 {
		return nil, errors.New("bitvector: corrupt RRR section lengths")
	}
	if r.classes, err = src.Words(int(hdr[6])); err != nil {
		return nil, err
	}
	if r.offsets, err = src.Words(int(hdr[7])); err != nil {
		return nil, err
	}
	// The serialized uint32 directories are widened to uint64 on disk;
	// narrow always copies, so they never alias the source buffer.
	rawRank, err := src.Words(int(hdr[8]))
	if err != nil {
		return nil, err
	}
	if r.superRank, err = narrow(rawRank); err != nil {
		return nil, err
	}
	rawOff, err := src.Words(int(hdr[8]))
	if err != nil {
		return nil, err
	}
	if r.superOff, err = narrow(rawOff); err != nil {
		return nil, err
	}
	// The select-sample rebuild walks the rank directory up to the ones
	// (and zeros) count; a stream whose directory disagrees with the
	// header must be rejected, not walked past. The zeros side also
	// catches an absurd sbRate: it overflows the superblock→bit products
	// zerosBefore relies on, making the count disagree.
	if int(r.superRank[len(r.superRank)-1]) != r.ones {
		return nil, errors.New("bitvector: RRR rank directory inconsistent with ones count")
	}
	if r.zerosBefore(len(r.superRank)-1) != r.n-r.ones {
		return nil, errors.New("bitvector: RRR rank directory inconsistent with zeros count")
	}
	// Select narrows between superblocks by binary search, which assumes
	// monotone directories; the offset positions must also stay inside
	// the offset stream or block decoding would read past the payload.
	for i := 0; i+1 < len(r.superRank); i++ {
		if r.superRank[i] > r.superRank[i+1] || r.superOff[i] > r.superOff[i+1] {
			return nil, errors.New("bitvector: RRR superblock directory not monotone")
		}
	}
	if uint64(r.superOff[len(r.superOff)-1]) > r.offsetLen {
		return nil, errors.New("bitvector: RRR superblock offsets exceed the offset stream")
	}
	r.buildSelectSamples()
	return r, nil
}
