package bitvector

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// adversarialPatterns builds bit patterns chosen to stress the select
// directories: the sampled windows degenerate (all occurrences in one
// superblock), stretch (occurrences thousands of superblocks apart), or
// land exactly on sample boundaries (runs of selSampleRate bits).
func adversarialPatterns(n int) map[string][]bool {
	mk := func(f func(i int) bool) []bool {
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = f(i)
		}
		return bs
	}
	return map[string][]bool{
		"all-zeros":   mk(func(int) bool { return false }),
		"all-ones":    mk(func(int) bool { return true }),
		"alternating": mk(func(i int) bool { return i%2 == 0 }),
		// Heavy clusters: selSampleRate ones, then an equally long gap, so
		// consecutive select samples straddle the run boundaries exactly.
		"sample-runs": mk(func(i int) bool { return i/selSampleRate%2 == 0 }),
		// A lone dense cluster at each end, nothing in between: the window
		// for mid-range ks spans almost the whole directory.
		"two-clumps": mk(func(i int) bool { return i < 1000 || i >= n-1000 }),
		// Clustered short runs: bursts of 37 ones every 509 bits.
		"bursts": mk(func(i int) bool { return i%509 < 37 }),
		// Single one in the last word, zeros elsewhere.
		"last-bit": mk(func(i int) bool { return i == n-1 }),
	}
}

// checkSelectsExhaustive verifies Select1/Select0 for every valid k (and
// just-out-of-range ks) against positions computed directly from the bits.
// Unlike checkAgainstNaive it is O(n), so it can run at sizes that span
// many select samples.
func checkSelectsExhaustive(t *testing.T, v Vector, bs []bool, label string) {
	t.Helper()
	var onesPos, zerosPos []int
	for i, b := range bs {
		if b {
			onesPos = append(onesPos, i)
		} else {
			zerosPos = append(zerosPos, i)
		}
	}
	if v.Ones() != len(onesPos) {
		t.Fatalf("%s: Ones = %d, want %d", label, v.Ones(), len(onesPos))
	}
	for k, p := range onesPos {
		if got := v.Select1(k + 1); got != p {
			t.Fatalf("%s: Select1(%d) = %d, want %d", label, k+1, got, p)
		}
	}
	for k, p := range zerosPos {
		if got := v.Select0(k + 1); got != p {
			t.Fatalf("%s: Select0(%d) = %d, want %d", label, k+1, got, p)
		}
	}
	if got := v.Select1(len(onesPos) + 1); got != -1 {
		t.Fatalf("%s: Select1 past end = %d, want -1", label, got)
	}
	if got := v.Select0(len(zerosPos) + 1); got != -1 {
		t.Fatalf("%s: Select0 past end = %d, want -1", label, got)
	}
}

func TestSelectAdversarialPatterns(t *testing.T) {
	// n spans dozens of select samples in the dense patterns and none in
	// the sparsest, covering both sides of the sampling.
	n := 1<<17 + 331 // odd tail: the last superblock and word are partial
	for name, bs := range adversarialPatterns(n) {
		checkSelectsExhaustive(t, buildPlain(bs), bs, "plain/"+name)
		checkSelectsExhaustive(t, buildRRR(bs, 16), bs, "rrr16/"+name)
		checkSelectsExhaustive(t, buildRRR(bs, 63), bs, "rrr63/"+name)
	}
}

// TestSelectMatchesRankInverse cross-checks the sampled select against
// rank on random densities at a size with several samples per directory.
func TestSelectMatchesRankInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, density := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
		bs := randomBits(rng, 1<<16, density)
		for _, v := range []Vector{buildPlain(bs), buildRRR(bs, 16)} {
			for trial := 0; trial < 300; trial++ {
				if ones := v.Ones(); ones > 0 {
					k := 1 + rng.Intn(ones)
					p := v.Select1(k)
					if p < 0 || !v.Get(p) || v.Rank1(p) != k-1 {
						t.Fatalf("density %v: Select1(%d) = %d inconsistent with rank", density, k, p)
					}
				}
				if zeros := v.Len() - v.Ones(); zeros > 0 {
					k := 1 + rng.Intn(zeros)
					p := v.Select0(k)
					if p < 0 || v.Get(p) || v.Rank0(p) != k-1 {
						t.Fatalf("density %v: Select0(%d) = %d inconsistent with rank", density, k, p)
					}
				}
			}
		}
	}
}

// TestSelectSamplesRebuiltOnLoad asserts the select directories are
// reconstructed identically after a serialization round-trip — they are
// derived state, not part of the stream.
func TestSelectSamplesRebuiltOnLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	bs := randomBits(rng, 40_000, 0.5)

	p := buildPlain(bs)
	if p.selOne == nil || p.selZero == nil {
		t.Fatal("plain: select samples not built (vector too small for the test?)")
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	gotP, err := ReadPlain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotP.selOne, p.selOne) || !reflect.DeepEqual(gotP.selZero, p.selZero) {
		t.Error("plain: select samples differ after round-trip")
	}

	r := buildRRR(bs, 16)
	if r.selOne == nil || r.selZero == nil {
		t.Fatal("rrr: select samples not built")
	}
	buf.Reset()
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	gotR, err := ReadRRR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotR.selOne, r.selOne) || !reflect.DeepEqual(gotR.selZero, r.selZero) {
		t.Error("rrr: select samples differ after round-trip")
	}
}

// TestReadRRRRejectsInconsistentOnes corrupts the ones count relative to
// the rank directory; the loader must reject the stream rather than walk
// past the directory while rebuilding select samples.
func TestReadRRRRejectsInconsistentOnes(t *testing.T) {
	bs := randomBits(rand.New(rand.NewSource(73)), 5000, 0.5)
	var buf bytes.Buffer
	if _, err := buildRRR(bs, 16).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[32] ^= 0x01 // low byte of the ones field (header word 4)
	if _, err := ReadRRR(bytes.NewReader(data)); err == nil {
		t.Error("ReadRRR accepted a stream whose ones count disagrees with the rank directory")
	}
}
