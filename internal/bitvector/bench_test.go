package bitvector

import (
	"math/rand"
	"testing"
)

// The substrate benchmarks share one set of vectors per (n, density) so
// that construction cost is paid once, outside the timed loops. Queries
// are pre-drawn to keep RNG cost out of the measurement.

const benchBits = 1 << 21

var sinkInt int

type benchVectors struct {
	plain *Plain
	rrr16 *RRR
	ones  int
	n     int
}

var benchCache = map[string]*benchVectors{}

func benchSetup(b *testing.B, density float64, label string) *benchVectors {
	b.Helper()
	if v, ok := benchCache[label]; ok {
		return v
	}
	rng := rand.New(rand.NewSource(41))
	bs := randomBits(rng, benchBits, density)
	v := &benchVectors{
		plain: buildPlain(bs),
		rrr16: buildRRR(bs, 16),
		n:     benchBits,
	}
	v.ones = v.plain.Ones()
	benchCache[label] = v
	return v
}

var benchDensities = []struct {
	name    string
	density float64
}{
	{"dense50", 0.5},
	{"sparse2", 0.02},
}

func randKs(limit, m int) []int {
	rng := rand.New(rand.NewSource(42))
	ks := make([]int, m)
	for i := range ks {
		ks[i] = 1 + rng.Intn(limit)
	}
	return ks
}

func BenchmarkPlainRank1(b *testing.B) {
	for _, d := range benchDensities {
		b.Run(d.name, func(b *testing.B) {
			v := benchSetup(b, d.density, d.name)
			is := randKs(v.n, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += v.plain.Rank1(is[i&1023])
			}
			sinkInt = s
		})
	}
}

func BenchmarkPlainSelect1(b *testing.B) {
	for _, d := range benchDensities {
		b.Run(d.name, func(b *testing.B) {
			v := benchSetup(b, d.density, d.name)
			ks := randKs(v.ones, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += v.plain.Select1(ks[i&1023])
			}
			sinkInt = s
		})
	}
}

func BenchmarkPlainSelect0(b *testing.B) {
	for _, d := range benchDensities {
		b.Run(d.name, func(b *testing.B) {
			v := benchSetup(b, d.density, d.name)
			ks := randKs(v.n-v.ones, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += v.plain.Select0(ks[i&1023])
			}
			sinkInt = s
		})
	}
}

func BenchmarkRRRRank1(b *testing.B) {
	for _, d := range benchDensities {
		b.Run(d.name, func(b *testing.B) {
			v := benchSetup(b, d.density, d.name)
			is := randKs(v.n, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += v.rrr16.Rank1(is[i&1023])
			}
			sinkInt = s
		})
	}
}

func BenchmarkRRRSelect1(b *testing.B) {
	for _, d := range benchDensities {
		b.Run(d.name, func(b *testing.B) {
			v := benchSetup(b, d.density, d.name)
			ks := randKs(v.ones, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += v.rrr16.Select1(ks[i&1023])
			}
			sinkInt = s
		})
	}
}

func BenchmarkRRRSelect0(b *testing.B) {
	for _, d := range benchDensities {
		b.Run(d.name, func(b *testing.B) {
			v := benchSetup(b, d.density, d.name)
			ks := randKs(v.n-v.ones, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += v.rrr16.Select0(ks[i&1023])
			}
			sinkInt = s
		})
	}
}
