package bitvector

// Select sampling shared by Plain and RRR: on top of the rank superblock
// directory, both flavours store the superblock index of every
// selSampleRate-th one and zero. A select query then positions its
// superblock search between two consecutive samples instead of binary
// searching the whole directory — a handful of superblocks for dense
// vectors, and still only O(log(gap)) for adversarially clustered ones.
//
// The directories are pure acceleration state: they are derived from the
// rank superblocks, never serialized, and rebuilt on load. Cost: one
// uint32 per selSampleRate ones (zeros), i.e. at most n/4096 * 32 bits =
// o(n) bits on top of the data.

// selSampleRate is the sampling rate of the select directories: one
// superblock index is stored per selSampleRate ones (and per
// selSampleRate zeros).
const selSampleRate = 4096

// buildSelectSamples returns the select directory for one bit kind:
// sample j holds the index of the superblock containing the
// (j*selSampleRate+1)-th occurrence. total is the number of occurrences
// in the vector, nSuper the number of superblocks, and cumBefore(sb) the
// number of occurrences before superblock sb (cumBefore(nSuper) == total).
func buildSelectSamples(total, nSuper int, cumBefore func(int) int) []uint32 {
	if total == 0 {
		return nil
	}
	samples := make([]uint32, (total+selSampleRate-1)/selSampleRate)
	sb := 0
	for j := range samples {
		k := j*selSampleRate + 1
		for cumBefore(sb+1) < k {
			sb++
		}
		samples[j] = uint32(sb)
	}
	return samples
}

// selectWindow returns the inclusive superblock range [lo, hi] that must
// contain the k-th occurrence, given the directory built above. lastSuper
// is the index of the final superblock.
//
//ringlint:hotpath
func selectWindow(samples []uint32, k, lastSuper int) (lo, hi int) {
	j := (k - 1) / selSampleRate
	lo = int(samples[j])
	hi = lastSuper
	if j+1 < len(samples) {
		hi = int(samples[j+1])
	}
	return lo, hi
}
