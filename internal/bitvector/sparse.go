package bitvector

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/bits"
)

// Sparse is an Elias–Fano encoded bitvector: n set bits over a universe of
// m positions stored in n·(2 + log₂(m/n)) + o(n) bits, with constant-time
// Select1 and logarithmic Rank1. It is the representation the paper's
// footnote 2 proposes for the C arrays of large alphabets ("C might be
// stored as a bitvector to save space"), where C[i] is recovered by select
// and the forward leap's binary search becomes one select0.
type Sparse struct {
	n int // number of set bits
	m int // universe (vector length)
	// low may alias a read-only memory-mapped file when the vector was
	// loaded through ViewSparse; never write to it after construction.
	//ringlint:viewed
	low  []uint64
	lw   uint   // low bits per element
	high *Plain // unary-coded high parts: one (val>>lw)+index per element
}

// NewSparse builds a Sparse vector of length m whose set bits are the
// given sorted, distinct positions.
func NewSparse(m int, ones []int) *Sparse {
	if !sort.IntsAreSorted(ones) {
		panic("bitvector: NewSparse requires sorted positions")
	}
	n := len(ones)
	s := &Sparse{n: n, m: m}
	if n > 0 && ones[n-1] >= m {
		panic(fmt.Sprintf("bitvector: position %d outside universe %d", ones[n-1], m))
	}
	// Low width: log2(m/n), clamped to [0, 64).
	s.lw = 0
	if n > 0 {
		for (uint64(m) >> s.lw) > uint64(n) {
			s.lw++
		}
	}
	s.low = make([]uint64, bits.WordsFor(uint64(n)*uint64(s.lw)))
	hb := NewBuilder(n + (m >> s.lw) + 2)
	prev := -1
	for j, p := range ones {
		if p <= prev {
			panic("bitvector: NewSparse requires strictly increasing positions")
		}
		prev = p
		if s.lw > 0 {
			//ringlint:allow viewsafe -- buffer freshly allocated by this builder, never view-aliased
			bits.WriteBits(s.low, uint64(j)*uint64(s.lw), s.lw, uint64(p)&((1<<s.lw)-1))
		}
		hb.Set((p >> s.lw) + j)
	}
	s.high = hb.BuildPlain()
	return s
}

// Len returns the universe size.
func (s *Sparse) Len() int { return s.m }

// Ones returns the number of set bits.
func (s *Sparse) Ones() int { return s.n }

// value returns the position of the j-th one (0-based j).
//
//ringlint:hotpath
func (s *Sparse) value(j int) int {
	hp := s.high.Select1(j + 1)
	hi := hp - j
	lo := 0
	if s.lw > 0 {
		lo = int(bits.ReadBits(s.low, uint64(j)*uint64(s.lw), s.lw))
	}
	return hi<<s.lw | lo
}

// Select1 returns the position of the k-th one (1-based), or -1.
//
//ringlint:hotpath
func (s *Sparse) Select1(k int) int {
	if k < 1 || k > s.n {
		return -1
	}
	return s.value(k - 1)
}

// Rank1 returns the number of ones in [0, i).
func (s *Sparse) Rank1(i int) int {
	if i <= 0 || s.n == 0 {
		return 0
	}
	if i > s.m {
		i = s.m
	}
	h := i >> s.lw
	// Ones with high part < h come before the h-th zero of the unary
	// stream; within the equal-high-part run, binary search the low bits.
	var lo, hi int // candidate range of one-indices (0-based, exclusive hi)
	if h == 0 {
		lo = 0
	} else {
		z := s.high.Select0(h)
		if z < 0 { // fewer than h zeros: all ones have high part < h
			return s.n
		}
		lo = z - h + 1 // ones before the h-th zero
	}
	z := s.high.Select0(h + 1)
	if z < 0 {
		hi = s.n
	} else {
		hi = z - h
	}
	// Among ones lo..hi-1 (high part == h), count those with value < i.
	target := uint64(i) & ((1 << s.lw) - 1)
	if s.lw == 0 {
		// All values in the run equal h; value < i iff h < i, i.e. always
		// false here since h == i (lw==0 → h==i).
		return lo
	}
	cnt := sort.Search(hi-lo, func(k int) bool {
		return bits.ReadBits(s.low, uint64(lo+k)*uint64(s.lw), s.lw) >= target
	})
	return lo + cnt
}

// Rank0 returns the number of zeros in [0, i).
func (s *Sparse) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.m {
		i = s.m
	}
	return i - s.Rank1(i)
}

// Get reports whether bit i is set.
func (s *Sparse) Get(i int) bool {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("bitvector: Get(%d) out of range [0,%d)", i, s.m))
	}
	return s.Rank1(i+1) > s.Rank1(i)
}

// Select0 returns the position of the k-th zero (1-based), or -1. It
// binary-searches Rank0, costing O(log m) — sufficient for the C-array
// use, where select0 replaces a binary search anyway.
func (s *Sparse) Select0(k int) int {
	zeros := s.m - s.n
	if k < 1 || k > zeros {
		return -1
	}
	lo, hi := 0, s.m-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Rank0(mid+1) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SizeBytes returns the in-memory footprint.
func (s *Sparse) SizeBytes() int {
	return 8*len(s.low) + s.high.SizeBytes() + 40
}

// --- serialization ---

const sparseMagic = uint64(0x52494e4745464256) // "RINGEFBV"

// WriteTo serializes the vector.
func (s *Sparse) WriteTo(w io.Writer) (int64, error) {
	cw := newCountWriter(w)
	if err := writeUint64s(cw, sparseMagic, uint64(s.n), uint64(s.m), uint64(s.lw), uint64(len(s.low))); err != nil {
		return cw.n, err
	}
	if err := writeUint64Slice(cw, s.low); err != nil {
		return cw.n, err
	}
	if _, err := s.high.WriteTo(cw); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSparse deserializes a Sparse vector written by WriteTo.
func ReadSparse(r io.Reader) (*Sparse, error) {
	return DecodeSparse(bits.NewReaderSource(r, "bitvector"))
}

// ViewSparse deserializes a Sparse vector from an in-memory buffer,
// aliasing the low-bits payload (and the nested Plain high vector's
// words) when possible. Returns the number of bytes consumed.
func ViewSparse(b []byte) (*Sparse, int, error) {
	src := bits.NewByteSource(b, "bitvector")
	s, err := DecodeSparse(src)
	if err != nil {
		return nil, 0, err
	}
	return s, src.Offset(), nil
}

// DecodeSparse deserializes a Sparse vector from any Source.
func DecodeSparse(src bits.Source) (*Sparse, error) {
	hdr, err := src.U64s(5)
	if err != nil {
		return nil, err
	}
	if hdr[0] != sparseMagic {
		return nil, errors.New("bitvector: bad magic for Sparse vector")
	}
	s := &Sparse{n: int(hdr[1]), m: int(hdr[2]), lw: uint(hdr[3])}
	if s.n < 0 || s.m < 0 || s.lw > 63 ||
		int(hdr[4]) != bits.WordsFor(uint64(s.n)*uint64(s.lw)) {
		return nil, errors.New("bitvector: corrupt Sparse header")
	}
	if s.low, err = src.Words(int(hdr[4])); err != nil {
		return nil, err
	}
	if s.high, err = DecodePlain(src); err != nil {
		return nil, err
	}
	// NewSparse sizes the unary stream as n + (m>>lw) + 2 bits with one
	// set bit per element, which ties the header to the serialized high
	// vector: a corrupt n, m, or lw that slipped past the checks above
	// breaks one of the relations. (The Plain's rank directory is rebuilt
	// from the payload, so Ones is trustworthy and select is total for
	// k <= n afterwards.)
	if s.n > s.m || s.high.Len() != s.n+(s.m>>s.lw)+2 || s.high.Ones() != s.n {
		return nil, errors.New("bitvector: Sparse high vector inconsistent with header")
	}
	return s, nil
}
