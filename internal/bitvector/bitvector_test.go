package bitvector

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a reference implementation of the Vector interface.
type naive struct{ bits []bool }

func (nv *naive) Len() int       { return len(nv.bits) }
func (nv *naive) Get(i int) bool { return nv.bits[i] }
func (nv *naive) Ones() int {
	c := 0
	for _, b := range nv.bits {
		if b {
			c++
		}
	}
	return c
}
func (nv *naive) Rank1(i int) int {
	if i > len(nv.bits) {
		i = len(nv.bits)
	}
	c := 0
	for j := 0; j < i; j++ {
		if nv.bits[j] {
			c++
		}
	}
	return c
}
func (nv *naive) Rank0(i int) int {
	if i > len(nv.bits) {
		i = len(nv.bits)
	}
	return i - nv.Rank1(i)
}
func (nv *naive) Select1(k int) int {
	for i, b := range nv.bits {
		if b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}
func (nv *naive) Select0(k int) int {
	for i, b := range nv.bits {
		if !b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}
func (nv *naive) SizeBytes() int { return len(nv.bits) }

func randomBits(rng *rand.Rand, n int, density float64) []bool {
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = rng.Float64() < density
	}
	return bs
}

func buildPlain(bs []bool) *Plain {
	return NewPlain(len(bs), func(i int) bool { return bs[i] })
}

func buildRRR(bs []bool, blockSize int) *RRR {
	return NewRRR(len(bs), blockSize, func(i int) bool { return bs[i] })
}

// checkAgainstNaive verifies every operation of v against the reference.
func checkAgainstNaive(t *testing.T, v Vector, bs []bool, label string) {
	t.Helper()
	ref := &naive{bits: bs}
	if v.Len() != ref.Len() {
		t.Fatalf("%s: Len = %d, want %d", label, v.Len(), ref.Len())
	}
	if v.Ones() != ref.Ones() {
		t.Fatalf("%s: Ones = %d, want %d", label, v.Ones(), ref.Ones())
	}
	for i := 0; i < len(bs); i++ {
		if v.Get(i) != bs[i] {
			t.Fatalf("%s: Get(%d) = %v, want %v", label, i, v.Get(i), bs[i])
		}
	}
	for i := 0; i <= len(bs); i++ {
		if got, want := v.Rank1(i), ref.Rank1(i); got != want {
			t.Fatalf("%s: Rank1(%d) = %d, want %d", label, i, got, want)
		}
		if got, want := v.Rank0(i), ref.Rank0(i); got != want {
			t.Fatalf("%s: Rank0(%d) = %d, want %d", label, i, got, want)
		}
	}
	ones, zeros := ref.Ones(), len(bs)-ref.Ones()
	for k := 1; k <= ones; k++ {
		if got, want := v.Select1(k), ref.Select1(k); got != want {
			t.Fatalf("%s: Select1(%d) = %d, want %d", label, k, got, want)
		}
	}
	for k := 1; k <= zeros; k++ {
		if got, want := v.Select0(k), ref.Select0(k); got != want {
			t.Fatalf("%s: Select0(%d) = %d, want %d", label, k, got, want)
		}
	}
	// Out-of-range selects return -1.
	for _, k := range []int{0, -1, ones + 1} {
		if got := v.Select1(k); got != -1 {
			t.Fatalf("%s: Select1(%d) = %d, want -1", label, k, got)
		}
	}
	for _, k := range []int{0, -1, zeros + 1} {
		if got := v.Select0(k); got != -1 {
			t.Fatalf("%s: Select0(%d) = %d, want -1", label, k, got)
		}
	}
}

func TestPlainAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 511, 512, 513, 1000, 4096} {
		for _, density := range []float64{0, 0.01, 0.5, 0.99, 1} {
			bs := randomBits(rng, n, density)
			checkAgainstNaive(t, buildPlain(bs), bs, "plain")
		}
	}
}

func TestRRRAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, blockSize := range []int{1, 2, 7, 15, 16, 31, 63, 64} {
		for _, n := range []int{0, 1, 63, 64, 65, 257, 1030} {
			for _, density := range []float64{0, 0.05, 0.5, 1} {
				bs := randomBits(rng, n, density)
				v := buildRRR(bs, blockSize)
				checkAgainstNaive(t, v, bs, "rrr")
			}
		}
	}
}

func TestRRRLargeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bs := randomBits(rng, 50000, 0.02)
	checkAgainstNaiveSampled(t, buildRRR(bs, 16), bs)
	checkAgainstNaiveSampled(t, buildPlain(bs), bs)
}

// checkAgainstNaiveSampled spot-checks a large vector.
func checkAgainstNaiveSampled(t *testing.T, v Vector, bs []bool) {
	t.Helper()
	ref := &naive{bits: bs}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		i := rng.Intn(len(bs) + 1)
		if got, want := v.Rank1(i), ref.Rank1(i); got != want {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, want)
		}
	}
	ones := ref.Ones()
	for trial := 0; trial < 200 && ones > 0; trial++ {
		k := 1 + rng.Intn(ones)
		if got, want := v.Select1(k), ref.Select1(k); got != want {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, want)
		}
	}
	zeros := len(bs) - ones
	for trial := 0; trial < 200 && zeros > 0; trial++ {
		k := 1 + rng.Intn(zeros)
		if got, want := v.Select0(k), ref.Select0(k); got != want {
			t.Fatalf("Select0(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestRankSelectInverseProperty(t *testing.T) {
	// Property: for every set bit at position p = Select1(k),
	// Rank1(p) == k-1 and Rank1(p+1) == k (and symmetrically for zeros).
	f := func(seed int64, nRaw uint16, densityRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%2000) + 1
		density := float64(densityRaw) / 255
		bs := randomBits(rng, n, density)
		for _, v := range []Vector{buildPlain(bs), buildRRR(bs, 15), buildRRR(bs, 64)} {
			for k := 1; k <= v.Ones(); k++ {
				p := v.Select1(k)
				if p < 0 || !v.Get(p) || v.Rank1(p) != k-1 || v.Rank1(p+1) != k {
					return false
				}
			}
			zeros := v.Len() - v.Ones()
			for k := 1; k <= zeros; k++ {
				p := v.Select0(k)
				if p < 0 || v.Get(p) || v.Rank0(p) != k-1 || v.Rank0(p+1) != k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRRRCompressesSkewed(t *testing.T) {
	// A very sparse vector must compress well below the plain size.
	n := 1 << 18
	bs := make([]bool, n)
	for i := 0; i < n; i += 512 {
		bs[i] = true
	}
	plain := buildPlain(bs)
	rrr := buildRRR(bs, 63)
	if rrr.SizeBytes() >= plain.SizeBytes()/4 {
		t.Errorf("RRR on sparse data: %d bytes, plain %d bytes — expected >4x compression",
			rrr.SizeBytes(), plain.SizeBytes())
	}
}

func TestRRRBlockSizeTradeoff(t *testing.T) {
	// Larger blocks should not compress worse on compressible data.
	rng := rand.New(rand.NewSource(14))
	bs := randomBits(rng, 1<<16, 0.03)
	small := buildRRR(bs, 15)
	large := buildRRR(bs, 63)
	if large.SizeBytes() > small.SizeBytes() {
		t.Errorf("b=63 (%d bytes) larger than b=15 (%d bytes) on compressible data",
			large.SizeBytes(), small.SizeBytes())
	}
}

func TestPlainSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{0, 1, 64, 1000} {
		bs := randomBits(rng, n, 0.4)
		v := buildPlain(bs)
		var buf bytes.Buffer
		if _, err := v.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		got, err := ReadPlain(&buf)
		if err != nil {
			t.Fatalf("ReadPlain: %v", err)
		}
		checkAgainstNaive(t, got, bs, "plain-roundtrip")
	}
}

func TestRRRSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, b := range []int{15, 16, 64} {
		bs := randomBits(rng, 3000, 0.2)
		v := buildRRR(bs, b)
		var buf bytes.Buffer
		if _, err := v.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		got, err := ReadRRR(&buf)
		if err != nil {
			t.Fatalf("ReadRRR: %v", err)
		}
		checkAgainstNaive(t, got, bs, "rrr-roundtrip")
	}
}

func TestCorruptSerializationErrors(t *testing.T) {
	bs := randomBits(rand.New(rand.NewSource(17)), 500, 0.5)

	var buf bytes.Buffer
	if _, err := buildPlain(bs).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncated stream.
	if _, err := ReadPlain(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("ReadPlain accepted a truncated stream")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ReadPlain(bytes.NewReader(bad)); err == nil {
		t.Error("ReadPlain accepted a corrupted magic")
	}
	// Reading Plain data as RRR must fail, not panic.
	if _, err := ReadRRR(bytes.NewReader(data)); err == nil {
		t.Error("ReadRRR accepted Plain data")
	}

	buf.Reset()
	if _, err := buildRRR(bs, 16).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rdata := buf.Bytes()
	if _, err := ReadRRR(bytes.NewReader(rdata[:20])); err == nil {
		t.Error("ReadRRR accepted a truncated stream")
	}
	// Corrupt the block-size field to an invalid value.
	badR := append([]byte(nil), rdata...)
	badR[16] = 0xFF
	if _, err := ReadRRR(bytes.NewReader(badR)); err == nil {
		t.Error("ReadRRR accepted an invalid block size")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set out of range did not panic")
		}
	}()
	NewBuilder(10).Set(10)
}

func TestGetPanicsOutOfRange(t *testing.T) {
	v := buildPlain([]bool{true})
	defer func() {
		if recover() == nil {
			t.Error("Get out of range did not panic")
		}
	}()
	v.Get(1)
}

func TestEncodeDecodeBlockExhaustiveSmall(t *testing.T) {
	// For b=10, every 10-bit word must round-trip through class/offset.
	tab := binomTables[10]
	for w := uint64(0); w < 1<<10; w++ {
		c := 0
		for x := w; x != 0; x &= x - 1 {
			c++
		}
		off := tab.encodeBlock(w)
		if off >= tab.binom[10][c] {
			t.Fatalf("offset %d out of range for class %d", off, c)
		}
		if got := tab.decodeBlock(c, off); got != w {
			t.Fatalf("decode(encode(%#x)) = %#x", w, got)
		}
	}
}

func TestEncodeDecodeBlock64(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	tab := binomTables[64]
	for i := 0; i < 5000; i++ {
		w := rng.Uint64()
		c := 0
		for x := w; x != 0; x &= x - 1 {
			c++
		}
		if got := tab.decodeBlock(c, tab.encodeBlock(w)); got != w {
			t.Fatalf("64-bit block round-trip failed for %#x: got %#x", w, got)
		}
	}
}
