//go:build ringdebug

package bitvector

import (
	"bytes"
	"strings"
	"testing"
)

// TestRingdebugCatchesSkippedSelectRebuild deliberately breaks the
// derived-state invariant that both the ringlint derivedstate analyzer
// and the ringdebug assertions guard: an RRR vector whose select samples
// were not rebuilt after deserialization. The first Select1 must trip the
// directory assertion instead of returning garbage (or crashing with an
// unexplained index panic).
func TestRingdebugCatchesSkippedSelectRebuild(t *testing.T) {
	v := NewRRR(100000, 16, func(i int) bool { return i%7 == 0 })
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRRR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a deserializer that skipped buildSelectSamples.
	r.selOne, r.selZero = nil, nil
	defer func() {
		msg, ok := recover().(string)
		if !ok || !strings.Contains(msg, "ringdebug") {
			t.Fatalf("expected a ringdebug assertion panic, got %v", msg)
		}
	}()
	r.Select1(1)
	t.Fatal("Select1 returned without tripping the ringdebug assertion")
}

// TestRingdebugSelectAssertionsPass exercises the select paths with the
// assertions enabled on an intact vector: no panic means the inverse
// checks agree with the directories.
func TestRingdebugSelectAssertionsPass(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    Vector
	}{
		{"plain", NewPlain(50000, func(i int) bool { return i%3 == 0 })},
		{"rrr", NewRRR(50000, 16, func(i int) bool { return i%3 == 0 })},
	} {
		ones := tc.v.Ones()
		for k := 1; k <= ones; k += 997 {
			if pos := tc.v.Select1(k); pos < 0 {
				t.Fatalf("%s: Select1(%d) = %d", tc.name, k, pos)
			}
		}
		zeros := tc.v.Len() - ones
		for k := 1; k <= zeros; k += 997 {
			if pos := tc.v.Select0(k); pos < 0 {
				t.Fatalf("%s: Select0(%d) = %d", tc.name, k, pos)
			}
		}
	}
}
