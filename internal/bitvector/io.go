package bitvector

import (
	"encoding/binary"
	"io"
)

// countWriter wraps an io.Writer and counts bytes written, so WriteTo
// implementations can report accurate totals without buffering.
type countWriter struct {
	w io.Writer
	n int64
}

func newCountWriter(w io.Writer) *countWriter { return &countWriter{w: w} }

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeUint64s(w io.Writer, vs ...uint64) error {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// writeUint64Slice writes the slice contents in little-endian order,
// chunking to bound the temporary buffer.
func writeUint64Slice(w io.Writer, s []uint64) error {
	const chunk = 8192
	buf := make([]byte, 8*chunk)
	for len(s) > 0 {
		n := len(s)
		if n > chunk {
			n = chunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], s[i])
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}
