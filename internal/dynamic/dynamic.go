// Package dynamic implements the update strategy the paper sketches in
// its conclusions: the ring itself is read-only, but amortised updates
// come from "taking the union of results over a small dynamic index
// where new triples are added, and a constant amount of increasing
// static rings for handling space overflows", with rings "merged
// periodically ... to build a bigger ring".
//
// Concretely, a Store keeps
//
//   - a memtable of recent insertions, indexed on demand by the
//     flat-trie structure (it is small, so the 6x space is negligible);
//   - a bounded list of static rings of geometrically growing size.
//
// When the memtable exceeds its threshold it is frozen into a new ring;
// when that would exceed the ring budget, the smallest rings are merged
// (we rebuild from the union — the paper points at BWT-merging
// algorithms as the optimised alternative). Queries run the ordinary LTJ
// engine over a union trie-iterator whose leap is the minimum of the
// components' leaps, preserving worst-case optimality up to the constant
// number of components.
//
// Deletions are supported with rebuild semantics: deleting a triple held
// by a static ring rebuilds that ring without it. This is expensive but
// exact; the paper's dynamic-wavelet-tree alternative (O(log U log n)
// updates) trades query time instead.
//
// # Concurrency: one writer, many readers
//
// The store is safe for one mutating goroutine plus any number of
// concurrent readers. Every mutation publishes an immutable Snapshot
// (an epoch: the memtable contents, the chunk currently being flushed,
// and the ring list) through an atomic pointer; readers pin a snapshot
// once per query and never observe a half-applied flush or merge. With
// Options.Background set, flushes and merges run on a dedicated
// compaction goroutine: the writer freezes the memtable and continues,
// and only blocks (backpressure) when the fresh memtable fills up again
// before the previous freeze has been compacted.
package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/baseline/flattrie"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
)

// Options configures a dynamic store.
type Options struct {
	// MemtableThreshold is the number of buffered triples that triggers a
	// flush into a static ring. 0 means 4096.
	MemtableThreshold int
	// MaxRings bounds the number of static rings ("a constant amount of
	// increasing static rings"). 0 means 4.
	MaxRings int
	// Ring configures the physical representation of the static rings.
	Ring ring.Options
	// Background moves flushes and merges to a dedicated compaction
	// goroutine: Add returns as soon as the triple is in the memtable, and
	// ring construction happens off the writer path. Writers block only
	// when the memtable reaches twice its threshold while a compaction is
	// still running. Stores with Background set must be Close()d.
	Background bool
	// OnCompact, when non-nil, is called after every completed background
	// flush or merge, outside all store locks — the persistence layer
	// checkpoints rings to disk from it. Only used with Background.
	OnCompact func()
}

// Store is a dynamic triple store backed by static rings.
type Store struct {
	opt Options

	// Writer state, guarded by mu. mem is append-only between flushes
	// (deletions rewrite it into a fresh slice), so published snapshots
	// can alias it without copying.
	mu        sync.Mutex
	cond      *sync.Cond                // broadcast when frozen drains or rings change
	mem       []graph.Triple            //ringlint:guarded-by mu
	memSet    map[graph.Triple]struct{} //ringlint:guarded-by mu
	frozen    []graph.Triple            // memtable chunk being flushed (nil when idle) //ringlint:guarded-by mu
	frozenSet map[graph.Triple]struct{} //ringlint:guarded-by mu
	rings     []*ring.Ring              // oldest first //ringlint:guarded-by mu
	numSO     graph.ID                  //ringlint:guarded-by mu
	numP      graph.ID                  //ringlint:guarded-by mu
	n         int                       //ringlint:guarded-by mu
	gen       uint64                    //ringlint:guarded-by mu
	closed    bool                      //ringlint:guarded-by mu

	compactions atomic.Uint64

	view atomic.Pointer[Snapshot]

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// New creates an empty dynamic store.
func New(opt Options) *Store {
	if opt.MemtableThreshold <= 0 {
		opt.MemtableThreshold = 4096
	}
	if opt.MaxRings <= 0 {
		opt.MaxRings = 4
	}
	s := &Store{opt: opt, memSet: map[graph.Triple]struct{}{}}
	s.cond = sync.NewCond(&s.mu)
	s.publishLocked()
	if opt.Background {
		s.compactCh = make(chan struct{}, 1)
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s
}

// FromGraph creates a store pre-loaded with one static ring over g.
func FromGraph(g *graph.Graph, opt Options) *Store {
	s := New(opt)
	s.mu.Lock()
	if g.Len() > 0 {
		s.rings = append(s.rings, ring.New(g, s.opt.Ring))
		s.n = g.Len()
	}
	s.numSO, s.numP = g.NumSO(), g.NumP()
	s.publishLocked()
	s.mu.Unlock()
	return s
}

// FromRings creates a store pre-loaded with the given static rings, which
// must hold pairwise-disjoint triple sets (the persistence layer restores
// checkpointed rings this way). The rings are shared, not copied.
func FromRings(rings []*ring.Ring, numSO, numP graph.ID, opt Options) *Store {
	s := New(opt)
	s.mu.Lock()
	for _, r := range rings {
		if r.Len() == 0 {
			continue
		}
		s.rings = append(s.rings, r)
		s.n += r.Len()
	}
	s.numSO, s.numP = numSO, numP
	s.publishLocked()
	s.mu.Unlock()
	return s
}

// Close stops the background compaction goroutine (no-op for synchronous
// stores). The store remains queryable; further mutations are rejected by
// panicking, as they would silently stop compacting.
func (s *Store) Close() {
	if !s.opt.Background {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast() // release any writer blocked on backpressure
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
}

// Snapshot returns the current epoch: an immutable view of the store for
// any number of concurrent readers. Pin one snapshot per query so every
// pattern of the query sees the same triple set.
func (s *Store) Snapshot() *Snapshot { return s.view.Load() }

// Generation returns the current epoch number; it increases on every
// applied mutation, flush and merge. Serving layers key caches on it.
func (s *Store) Generation() uint64 { return s.Snapshot().gen }

// Compactions returns the number of completed background flushes and
// merges (monitoring).
func (s *Store) Compactions() uint64 { return s.compactions.Load() }

// Len returns the number of distinct triples currently stored.
func (s *Store) Len() int { return s.Snapshot().n }

// Rings returns the current number of static rings (for tests and
// monitoring).
func (s *Store) Rings() int { return len(s.Snapshot().rings) }

// MemtableLen returns the number of buffered triples (including a chunk
// frozen for an in-flight background flush).
func (s *Store) MemtableLen() int {
	v := s.Snapshot()
	return len(v.mem) + len(v.frozen)
}

// Domains returns the current identifier-space sizes.
func (s *Store) Domains() (numSO, numP graph.ID) {
	v := s.Snapshot()
	return v.numSO, v.numP
}

// Contains reports whether the triple is stored.
func (s *Store) Contains(t graph.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.containsLocked(t)
}

func (s *Store) containsLocked(t graph.Triple) bool {
	if _, ok := s.memSet[t]; ok {
		return true
	}
	if _, ok := s.frozenSet[t]; ok {
		return true
	}
	for _, r := range s.rings {
		if ringContains(r, t) {
			return true
		}
	}
	return false
}

func ringContains(r *ring.Ring, t graph.Triple) bool {
	ps := r.NewPatternState(graph.TP(graph.Const(t.S), graph.Const(t.P), graph.Const(t.O)))
	return !ps.Empty()
}

// Add inserts a triple; duplicates are ignored. Insertion cost is O(1)
// amortised until a flush, which costs one ring construction (off the
// writer path with Options.Background).
func (s *Store) Add(t graph.Triple) {
	s.AddBatch([]graph.Triple{t})
}

// AddBatch inserts many triples under one lock acquisition and publishes
// one new epoch — the preferred write path for ingestion layers.
func (s *Store) AddBatch(ts []graph.Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkOpenLocked()
	added := false
	for _, t := range ts {
		if s.containsLocked(t) {
			continue
		}
		s.mem = append(s.mem, t)
		s.memSet[t] = struct{}{}
		s.n++
		added = true
		if t.S >= s.numSO {
			s.numSO = t.S + 1
		}
		if t.O >= s.numSO {
			s.numSO = t.O + 1
		}
		if t.P >= s.numP {
			s.numP = t.P + 1
		}
	}
	if added {
		s.publishLocked()
	}
	s.maybeFlushLocked()
}

// Delete removes a triple if present. Removing from the memtable is
// cheap; removing from a static ring rebuilds that ring (exact but
// expensive — batch deletions when possible). A delete that targets the
// chunk frozen for an in-flight background flush waits for that flush to
// land first.
func (s *Store) Delete(t graph.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkOpenLocked()
	if _, ok := s.memSet[t]; ok {
		delete(s.memSet, t)
		// Copy-on-write: readers may alias the published slice.
		kept := make([]graph.Triple, 0, len(s.mem)-1)
		for _, m := range s.mem {
			if m != t {
				kept = append(kept, m)
			}
		}
		s.mem = kept
		s.n--
		s.publishLocked()
		return true
	}
	// The frozen chunk is immutable while the compactor builds its ring;
	// wait for it to land as a ring, then delete through the ring path
	// (with a single writer the triple cannot move anywhere else).
	for {
		if _, ok := s.frozenSet[t]; !ok {
			break
		}
		s.cond.Wait()
	}
	for i, r := range s.rings {
		if !ringContains(r, t) {
			continue
		}
		kept := make([]graph.Triple, 0, r.Len()-1)
		for _, u := range r.Triples() {
			if u != t {
				kept = append(kept, u)
			}
		}
		if len(kept) == 0 {
			s.rings = append(s.rings[:i:i], s.rings[i+1:]...)
		} else {
			g := graph.NewWithDomains(kept, s.numSO, s.numP)
			nrings := append([]*ring.Ring(nil), s.rings...)
			nrings[i] = ring.New(g, s.opt.Ring)
			s.rings = nrings
		}
		s.n--
		s.publishLocked()
		s.cond.Broadcast()
		return true
	}
	return false
}

func (s *Store) checkOpenLocked() {
	if s.closed {
		panic("dynamic: mutation after Close")
	}
}

// publishLocked installs a new immutable epoch. mu must be held.
func (s *Store) publishLocked() {
	s.gen++
	s.view.Store(&Snapshot{
		mem:    s.mem[:len(s.mem):len(s.mem)],
		frozen: s.frozen,
		rings:  s.rings[:len(s.rings):len(s.rings)],
		numSO:  s.numSO,
		numP:   s.numP,
		n:      s.n,
		gen:    s.gen,
	})
}

// maybeFlushLocked triggers a flush when the memtable crosses its
// threshold: inline for synchronous stores, by signalling the compactor —
// and applying backpressure at twice the threshold — for background ones.
func (s *Store) maybeFlushLocked() {
	if len(s.mem) < s.opt.MemtableThreshold {
		return
	}
	if !s.opt.Background {
		s.flushLocked()
		for len(s.rings) > s.opt.MaxRings {
			s.mergeSmallestLocked()
		}
		s.publishLocked()
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
	// Backpressure: the previous freeze has not compacted yet and the new
	// memtable is full again — wait for the compactor to catch up.
	for len(s.mem) >= 2*s.opt.MemtableThreshold && !s.closed {
		s.cond.Wait()
	}
}

// FlushNow synchronously freezes the memtable into a static ring (even
// below the threshold), waits for any in-flight background compaction,
// and enforces the ring budget. On return every stored triple lives in a
// static ring — the persistence layer checkpoints from this state.
func (s *Store) FlushNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.frozen != nil {
		s.cond.Wait()
	}
	if len(s.mem) > 0 {
		s.flushLocked()
	}
	for len(s.rings) > s.opt.MaxRings {
		s.mergeSmallestLocked()
	}
	s.publishLocked()
}

// flushLocked freezes the memtable into a static ring inline. mu held.
func (s *Store) flushLocked() {
	if len(s.mem) == 0 {
		return
	}
	g := graph.NewWithDomains(s.mem, s.numSO, s.numP)
	s.rings = append(s.rings[:len(s.rings):len(s.rings)], ring.New(g, s.opt.Ring))
	s.mem = nil
	s.memSet = map[graph.Triple]struct{}{}
}

// Compact merges everything — memtable and all rings — into one ring.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkOpenLocked()
	for s.frozen != nil {
		s.cond.Wait()
	}
	all := s.allTriplesLocked()
	s.mem = nil
	s.memSet = map[graph.Triple]struct{}{}
	s.rings = nil
	if len(all) > 0 {
		g := graph.NewWithDomains(all, s.numSO, s.numP)
		s.rings = []*ring.Ring{ring.New(g, s.opt.Ring)}
		s.n = g.Len()
	} else {
		s.n = 0
	}
	s.publishLocked()
}

// mergeSmallestLocked merges the two smallest rings into one, inline.
// mu must be held.
func (s *Store) mergeSmallestLocked() {
	if len(s.rings) < 2 {
		return
	}
	a, b := s.smallestPairLocked()
	merged := append(s.rings[a].Triples(), s.rings[b].Triples()...)
	g := graph.NewWithDomains(merged, s.numSO, s.numP)
	nr := ring.New(g, s.opt.Ring)
	// Remove b first (the larger index), then replace a, on fresh slices
	// so published snapshots keep their ring list.
	nrings := append([]*ring.Ring(nil), s.rings...)
	nrings = append(nrings[:b], nrings[b+1:]...)
	nrings[a] = nr
	s.rings = nrings
}

// smallestPairLocked returns the indices of the two smallest rings, a < b.
func (s *Store) smallestPairLocked() (int, int) {
	a, b := 0, 1
	for i, r := range s.rings {
		if r.Len() < s.rings[a].Len() {
			a, b = i, a
		} else if i != a && r.Len() < s.rings[b].Len() {
			b = i
		}
	}
	if a > b {
		a, b = b, a
	}
	return a, b
}

// compactLoop is the background compaction goroutine: it freezes full
// memtables into rings and merges rings beyond the budget, holding the
// writer lock only to swap state — ring construction runs unlocked.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
		}
		s.compactOnce()
	}
}

func (s *Store) compactOnce() {
	worked := false
	s.mu.Lock()
	for !s.closed {
		switch {
		case len(s.mem) >= s.opt.MemtableThreshold:
			s.frozen = s.mem
			s.frozenSet = s.memSet
			s.mem = nil
			s.memSet = map[graph.Triple]struct{}{}
			frozen, numSO, numP := s.frozen, s.numSO, s.numP
			s.publishLocked()
			s.cond.Broadcast() // writers blocked on backpressure may resume
			s.mu.Unlock()
			r := ring.New(graph.NewWithDomains(frozen, numSO, numP), s.opt.Ring)
			s.mu.Lock()
			s.rings = append(s.rings[:len(s.rings):len(s.rings)], r)
			s.frozen, s.frozenSet = nil, nil
			s.compactions.Add(1)
			s.publishLocked()
			s.cond.Broadcast()
			worked = true
		case len(s.rings) > s.opt.MaxRings:
			ai, bi := s.smallestPairLocked()
			ra, rb := s.rings[ai], s.rings[bi]
			numSO, numP := s.numSO, s.numP
			s.mu.Unlock()
			merged := append(ra.Triples(), rb.Triples()...)
			nr := ring.New(graph.NewWithDomains(merged, numSO, numP), s.opt.Ring)
			s.mu.Lock()
			// A concurrent Delete may have rebuilt or removed either input
			// while we merged; the merged ring would resurrect the deleted
			// triple, so install only if both inputs survived unchanged.
			ai, bi = s.ringIndexLocked(ra), s.ringIndexLocked(rb)
			if ai < 0 || bi < 0 {
				continue // retry against the current ring list
			}
			if ai > bi {
				ai, bi = bi, ai
			}
			nrings := append([]*ring.Ring(nil), s.rings...)
			nrings = append(nrings[:bi], nrings[bi+1:]...)
			nrings[ai] = nr
			s.rings = nrings
			s.compactions.Add(1)
			s.publishLocked()
			s.cond.Broadcast()
			worked = true
		default:
			s.mu.Unlock()
			if worked && s.opt.OnCompact != nil {
				s.opt.OnCompact()
			}
			return
		}
	}
	s.mu.Unlock()
	if worked && s.opt.OnCompact != nil {
		s.opt.OnCompact()
	}
}

// ReplaceRing swaps old for new in the ring list, by pointer identity.
// The persistence layer uses it to substitute a freshly mapped on-disk
// ring for its heap-built equivalent after a checkpoint: the contents
// are identical, only the backing memory changes. It returns false — and
// installs nothing — if old has already left the store (merged away or
// rebuilt by a delete) or if the lengths disagree. Snapshots pinned
// before the swap keep reading the old ring; the copy-on-write ring list
// means they never observe the mutation.
func (s *Store) ReplaceRing(old, nw *ring.Ring) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.ringIndexLocked(old)
	if i < 0 || old.Len() != nw.Len() {
		return false
	}
	nrings := append([]*ring.Ring(nil), s.rings...)
	nrings[i] = nw
	s.rings = nrings
	s.publishLocked()
	return true
}

// ringIndexLocked finds r in the current ring list by identity, -1 if gone.
func (s *Store) ringIndexLocked(r *ring.Ring) int {
	for i, x := range s.rings {
		if x == r {
			return i
		}
	}
	return -1
}

// allTriplesLocked materialises the full triple set (for compaction and
// verification). mu must be held.
func (s *Store) allTriplesLocked() []graph.Triple {
	var out []graph.Triple
	out = append(out, s.frozen...)
	out = append(out, s.mem...)
	for _, r := range s.rings {
		out = append(out, r.Triples()...)
	}
	return out
}

// Graph exports the current contents as an immutable graph.
func (s *Store) Graph() *graph.Graph { return s.Snapshot().Graph() }

// SizeBytes returns the total footprint (rings + memtable index).
func (s *Store) SizeBytes() int { return s.Snapshot().SizeBytes() }

// NewPatternIter returns a union trie-iterator over the memtable and all
// static rings, so the standard LTJ engine evaluates joins over the
// dynamic store unchanged. Each call pins the current epoch; callers
// evaluating multi-pattern queries should pin one Snapshot themselves so
// all patterns agree.
func (s *Store) NewPatternIter(tp graph.TriplePattern) ltj.PatternIter {
	return s.Snapshot().NewPatternIter(tp)
}

// Evaluate runs LTJ over one consistent epoch of the store.
func (s *Store) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	return s.Snapshot().Evaluate(q, opt)
}

// Check verifies internal invariants (for tests): the stored count
// matches the materialised set.
func (s *Store) Check() error {
	v := s.Snapshot()
	g := v.Graph()
	if g.Len() != v.n {
		return fmt.Errorf("dynamic: count %d but %d distinct triples materialise", v.n, g.Len())
	}
	return nil
}

// Snapshot is one immutable epoch of a Store: the memtable contents (plus
// any chunk frozen for an in-flight flush) and the ring list as of one
// publish. Any number of goroutines may query a snapshot concurrently;
// it never changes once obtained.
type Snapshot struct {
	mem    []graph.Triple
	frozen []graph.Triple
	rings  []*ring.Ring
	numSO  graph.ID
	numP   graph.ID
	n      int
	gen    uint64

	memOnce sync.Once
	memIdx  *flattrie.Index
}

// Generation returns the epoch number of this snapshot.
func (v *Snapshot) Generation() uint64 { return v.gen }

// Len returns the number of distinct triples in this epoch.
func (v *Snapshot) Len() int { return v.n }

// Rings returns the epoch's static rings, oldest first. The slice and the
// rings are shared read-only — callers must not mutate them.
func (v *Snapshot) Rings() []*ring.Ring { return v.rings }

// Domains returns the epoch's identifier-space sizes.
func (v *Snapshot) Domains() (numSO, numP graph.ID) { return v.numSO, v.numP }

// MemtableLen returns the number of buffered (un-flushed) triples.
func (v *Snapshot) MemtableLen() int { return len(v.mem) + len(v.frozen) }

// memIndex returns the flat-trie index over the buffered triples, built
// lazily once per epoch (concurrent readers share the build).
func (v *Snapshot) memIndex() *flattrie.Index {
	v.memOnce.Do(func() {
		buf := make([]graph.Triple, 0, len(v.frozen)+len(v.mem))
		buf = append(buf, v.frozen...)
		buf = append(buf, v.mem...)
		v.memIdx = flattrie.New(graph.NewWithDomains(buf, v.numSO, v.numP))
	})
	return v.memIdx
}

// NewPatternIter returns a union trie-iterator over this epoch.
func (v *Snapshot) NewPatternIter(tp graph.TriplePattern) ltj.PatternIter {
	var parts []ltj.PatternIter
	if len(v.mem)+len(v.frozen) > 0 {
		parts = append(parts, v.memIndex().NewPatternIter(tp))
	}
	for _, r := range v.rings {
		parts = append(parts, r.NewPatternState(tp))
	}
	return &unionIter{parts: parts}
}

// Evaluate runs LTJ over this epoch.
func (v *Snapshot) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	return ltj.Evaluate(ltj.IndexFunc(v.NewPatternIter), q, opt)
}

// Triples materialises the epoch's full triple set.
func (v *Snapshot) Triples() []graph.Triple {
	var out []graph.Triple
	out = append(out, v.frozen...)
	out = append(out, v.mem...)
	for _, r := range v.rings {
		out = append(out, r.Triples()...)
	}
	return out
}

// Graph exports the epoch's contents as an immutable graph.
func (v *Snapshot) Graph() *graph.Graph {
	return graph.NewWithDomains(v.Triples(), v.numSO, v.numP)
}

// SizeBytes returns the epoch's total footprint (rings + memtable index).
func (v *Snapshot) SizeBytes() int {
	total := 24*(len(v.mem)+len(v.frozen)) + 64
	if v.memIdx != nil {
		total += v.memIdx.SizeBytes()
	}
	for _, r := range v.rings {
		total += r.SizeBytes()
	}
	return total
}

// unionIter merges component trie-iterators: the components partition the
// triple set, so counts add and leap is the minimum over components.
type unionIter struct {
	parts []ltj.PatternIter
}

func (u *unionIter) Count() int {
	total := 0
	for _, p := range u.parts {
		total += p.Count()
	}
	return total
}

func (u *unionIter) Empty() bool { return u.Count() == 0 }

func (u *unionIter) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	best, found := graph.ID(0), false
	for _, p := range u.parts {
		if p.Empty() {
			continue
		}
		if v, ok := p.Leap(pos, c); ok && (!found || v < best) {
			best, found = v, true
		}
	}
	return best, found
}

func (u *unionIter) Bind(pos graph.Position, c graph.ID) {
	for _, p := range u.parts {
		p.Bind(pos, c)
	}
}

func (u *unionIter) Unbind() {
	for _, p := range u.parts {
		p.Unbind()
	}
}

// Fork forks every component (flat-trie memtable and ring iterators are
// all forkable); if some component cannot fork it returns nil, telling
// the engine to rebuild the union iterator from the pattern instead.
func (u *unionIter) Fork() ltj.PatternIter {
	cp := &unionIter{parts: make([]ltj.PatternIter, len(u.parts))}
	for i, p := range u.parts {
		f, ok := p.(ltj.ForkableIter)
		if !ok {
			return nil
		}
		if cp.parts[i] = f.Fork(); cp.parts[i] == nil {
			return nil
		}
	}
	return cp
}

// CanEnumerate requires every non-empty component to support enumeration
// at pos; the union is then a sorted merge.
func (u *unionIter) CanEnumerate(pos graph.Position) bool {
	for _, p := range u.parts {
		if !p.Empty() && !p.CanEnumerate(pos) {
			return false
		}
	}
	return true
}

// Enumerate merges the components' sorted enumerations, deduplicating.
func (u *unionIter) Enumerate(pos graph.Position, visit func(graph.ID) bool) {
	// Collect per-component sorted streams eagerly; components are few and
	// streams are bounded by the range sizes.
	var streams [][]graph.ID
	for _, p := range u.parts {
		if p.Empty() {
			continue
		}
		var vals []graph.ID
		p.Enumerate(pos, func(c graph.ID) bool {
			vals = append(vals, c)
			return true
		})
		streams = append(streams, vals)
	}
	idx := make([]int, len(streams))
	var last graph.ID
	haveLast := false
	for {
		bestS := -1
		var best graph.ID
		for si, st := range streams {
			if idx[si] >= len(st) {
				continue
			}
			if bestS < 0 || st[idx[si]] < best {
				bestS, best = si, st[idx[si]]
			}
		}
		if bestS < 0 {
			return
		}
		idx[bestS]++
		if haveLast && best == last {
			continue
		}
		last, haveLast = best, true
		if !visit(best) {
			return
		}
	}
}
