// Package dynamic implements the update strategy the paper sketches in
// its conclusions: the ring itself is read-only, but amortised updates
// come from "taking the union of results over a small dynamic index
// where new triples are added, and a constant amount of increasing
// static rings for handling space overflows", with rings "merged
// periodically ... to build a bigger ring".
//
// Concretely, a Store keeps
//
//   - a memtable of recent insertions, indexed on demand by the
//     flat-trie structure (it is small, so the 6x space is negligible);
//   - a bounded list of static rings of geometrically growing size.
//
// When the memtable exceeds its threshold it is frozen into a new ring;
// when that would exceed the ring budget, the smallest rings are merged
// (we rebuild from the union — the paper points at BWT-merging
// algorithms as the optimised alternative). Queries run the ordinary LTJ
// engine over a union trie-iterator whose leap is the minimum of the
// components' leaps, preserving worst-case optimality up to the constant
// number of components.
//
// Deletions are supported with rebuild semantics: deleting a triple held
// by a static ring rebuilds that ring without it. This is expensive but
// exact; the paper's dynamic-wavelet-tree alternative (O(log U log n)
// updates) trades query time instead.
package dynamic

import (
	"fmt"

	"repro/internal/baseline/flattrie"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
)

// Options configures a dynamic store.
type Options struct {
	// MemtableThreshold is the number of buffered triples that triggers a
	// flush into a static ring. 0 means 4096.
	MemtableThreshold int
	// MaxRings bounds the number of static rings ("a constant amount of
	// increasing static rings"). 0 means 4.
	MaxRings int
	// Ring configures the physical representation of the static rings.
	Ring ring.Options
}

// Store is a dynamic triple store backed by static rings.
type Store struct {
	opt Options

	mem      []graph.Triple // unsorted recent insertions (deduplicated)
	memSet   map[graph.Triple]struct{}
	memIdx   *flattrie.Index // lazily rebuilt index over mem
	memDirty bool

	rings []*ring.Ring // oldest first
	numSO graph.ID
	numP  graph.ID
	n     int
}

// New creates an empty dynamic store.
func New(opt Options) *Store {
	if opt.MemtableThreshold <= 0 {
		opt.MemtableThreshold = 4096
	}
	if opt.MaxRings <= 0 {
		opt.MaxRings = 4
	}
	return &Store{opt: opt, memSet: map[graph.Triple]struct{}{}}
}

// FromGraph creates a store pre-loaded with one static ring over g.
func FromGraph(g *graph.Graph, opt Options) *Store {
	s := New(opt)
	if g.Len() > 0 {
		s.rings = append(s.rings, ring.New(g, s.opt.Ring))
		s.n = g.Len()
	}
	s.numSO, s.numP = g.NumSO(), g.NumP()
	return s
}

// Len returns the number of distinct triples currently stored.
func (s *Store) Len() int { return s.n }

// Rings returns the current number of static rings (for tests and
// monitoring).
func (s *Store) Rings() int { return len(s.rings) }

// MemtableLen returns the number of buffered triples.
func (s *Store) MemtableLen() int { return len(s.mem) }

// Contains reports whether the triple is stored.
func (s *Store) Contains(t graph.Triple) bool {
	if _, ok := s.memSet[t]; ok {
		return true
	}
	for _, r := range s.rings {
		if ringContains(r, t) {
			return true
		}
	}
	return false
}

func ringContains(r *ring.Ring, t graph.Triple) bool {
	ps := r.NewPatternState(graph.TP(graph.Const(t.S), graph.Const(t.P), graph.Const(t.O)))
	return !ps.Empty()
}

// Add inserts a triple; duplicates are ignored. Insertion cost is O(1)
// amortised until a flush, which costs one ring construction.
func (s *Store) Add(t graph.Triple) {
	if s.Contains(t) {
		return
	}
	s.mem = append(s.mem, t)
	s.memSet[t] = struct{}{}
	s.memDirty = true
	s.n++
	if t.S >= s.numSO {
		s.numSO = t.S + 1
	}
	if t.O >= s.numSO {
		s.numSO = t.O + 1
	}
	if t.P >= s.numP {
		s.numP = t.P + 1
	}
	if len(s.mem) >= s.opt.MemtableThreshold {
		s.flush()
	}
}

// AddBatch inserts many triples.
func (s *Store) AddBatch(ts []graph.Triple) {
	for _, t := range ts {
		s.Add(t)
	}
}

// Delete removes a triple if present. Removing from the memtable is
// cheap; removing from a static ring rebuilds that ring (exact but
// expensive — batch deletions when possible).
func (s *Store) Delete(t graph.Triple) bool {
	if _, ok := s.memSet[t]; ok {
		delete(s.memSet, t)
		for i, m := range s.mem {
			if m == t {
				s.mem = append(s.mem[:i], s.mem[i+1:]...)
				break
			}
		}
		s.memDirty = true
		s.n--
		return true
	}
	for i, r := range s.rings {
		if !ringContains(r, t) {
			continue
		}
		kept := make([]graph.Triple, 0, r.Len()-1)
		for _, u := range r.Triples() {
			if u != t {
				kept = append(kept, u)
			}
		}
		if len(kept) == 0 {
			s.rings = append(s.rings[:i], s.rings[i+1:]...)
		} else {
			g := graph.NewWithDomains(kept, s.numSO, s.numP)
			s.rings[i] = ring.New(g, s.opt.Ring)
		}
		s.n--
		return true
	}
	return false
}

// flush freezes the memtable into a static ring and enforces the ring
// budget by merging the smallest rings.
func (s *Store) flush() {
	if len(s.mem) == 0 {
		return
	}
	g := graph.NewWithDomains(s.mem, s.numSO, s.numP)
	s.rings = append(s.rings, ring.New(g, s.opt.Ring))
	s.mem = s.mem[:0]
	s.memSet = map[graph.Triple]struct{}{}
	s.memIdx = nil
	s.memDirty = false
	for len(s.rings) > s.opt.MaxRings {
		s.mergeSmallest()
	}
}

// Compact merges everything — memtable and all rings — into one ring.
func (s *Store) Compact() {
	all := s.allTriples()
	s.mem = nil
	s.memSet = map[graph.Triple]struct{}{}
	s.memIdx = nil
	s.memDirty = false
	s.rings = nil
	if len(all) > 0 {
		g := graph.NewWithDomains(all, s.numSO, s.numP)
		s.rings = []*ring.Ring{ring.New(g, s.opt.Ring)}
		s.n = g.Len()
	} else {
		s.n = 0
	}
}

// mergeSmallest merges the two smallest rings into one.
func (s *Store) mergeSmallest() {
	if len(s.rings) < 2 {
		return
	}
	a, b := 0, 1
	for i, r := range s.rings {
		if r.Len() < s.rings[a].Len() {
			a, b = i, a
		} else if i != a && r.Len() < s.rings[b].Len() {
			b = i
		}
	}
	if a > b {
		a, b = b, a
	}
	merged := append(s.rings[a].Triples(), s.rings[b].Triples()...)
	g := graph.NewWithDomains(merged, s.numSO, s.numP)
	nr := ring.New(g, s.opt.Ring)
	// Remove b first (the larger index), then replace a.
	s.rings = append(s.rings[:b], s.rings[b+1:]...)
	s.rings[a] = nr
}

// allTriples materialises the full triple set (for compaction and
// verification).
func (s *Store) allTriples() []graph.Triple {
	var out []graph.Triple
	out = append(out, s.mem...)
	for _, r := range s.rings {
		out = append(out, r.Triples()...)
	}
	return out
}

// Graph exports the current contents as an immutable graph.
func (s *Store) Graph() *graph.Graph {
	return graph.NewWithDomains(s.allTriples(), s.numSO, s.numP)
}

// SizeBytes returns the total footprint (rings + memtable index).
func (s *Store) SizeBytes() int {
	total := 24*len(s.mem) + 64
	if s.memIdx != nil {
		total += s.memIdx.SizeBytes()
	}
	for _, r := range s.rings {
		total += r.SizeBytes()
	}
	return total
}

// memIndex returns the (lazily rebuilt) index over the memtable.
func (s *Store) memIndex() *flattrie.Index {
	if s.memDirty || s.memIdx == nil {
		s.memIdx = flattrie.New(graph.NewWithDomains(s.mem, s.numSO, s.numP))
		s.memDirty = false
	}
	return s.memIdx
}

// NewPatternIter returns a union trie-iterator over the memtable and all
// static rings, so the standard LTJ engine evaluates joins over the
// dynamic store unchanged.
func (s *Store) NewPatternIter(tp graph.TriplePattern) ltj.PatternIter {
	var parts []ltj.PatternIter
	if len(s.mem) > 0 {
		parts = append(parts, s.memIndex().NewPatternIter(tp))
	}
	for _, r := range s.rings {
		parts = append(parts, r.NewPatternState(tp))
	}
	return &unionIter{parts: parts}
}

// Evaluate runs LTJ over the store.
func (s *Store) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	return ltj.Evaluate(ltj.IndexFunc(s.NewPatternIter), q, opt)
}

// unionIter merges component trie-iterators: the components partition the
// triple set, so counts add and leap is the minimum over components.
type unionIter struct {
	parts []ltj.PatternIter
}

func (u *unionIter) Count() int {
	total := 0
	for _, p := range u.parts {
		total += p.Count()
	}
	return total
}

func (u *unionIter) Empty() bool { return u.Count() == 0 }

func (u *unionIter) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	best, found := graph.ID(0), false
	for _, p := range u.parts {
		if p.Empty() {
			continue
		}
		if v, ok := p.Leap(pos, c); ok && (!found || v < best) {
			best, found = v, true
		}
	}
	return best, found
}

func (u *unionIter) Bind(pos graph.Position, c graph.ID) {
	for _, p := range u.parts {
		p.Bind(pos, c)
	}
}

func (u *unionIter) Unbind() {
	for _, p := range u.parts {
		p.Unbind()
	}
}

// Fork forks every component (flat-trie memtable and ring iterators are
// all forkable); if some component cannot fork it returns nil, telling
// the engine to rebuild the union iterator from the pattern instead.
func (u *unionIter) Fork() ltj.PatternIter {
	cp := &unionIter{parts: make([]ltj.PatternIter, len(u.parts))}
	for i, p := range u.parts {
		f, ok := p.(ltj.ForkableIter)
		if !ok {
			return nil
		}
		if cp.parts[i] = f.Fork(); cp.parts[i] == nil {
			return nil
		}
	}
	return cp
}

// CanEnumerate requires every non-empty component to support enumeration
// at pos; the union is then a sorted merge.
func (u *unionIter) CanEnumerate(pos graph.Position) bool {
	for _, p := range u.parts {
		if !p.Empty() && !p.CanEnumerate(pos) {
			return false
		}
	}
	return true
}

// Enumerate merges the components' sorted enumerations, deduplicating.
func (u *unionIter) Enumerate(pos graph.Position, visit func(graph.ID) bool) {
	// Collect per-component sorted streams eagerly; components are few and
	// streams are bounded by the range sizes.
	var streams [][]graph.ID
	for _, p := range u.parts {
		if p.Empty() {
			continue
		}
		var vals []graph.ID
		p.Enumerate(pos, func(c graph.ID) bool {
			vals = append(vals, c)
			return true
		})
		streams = append(streams, vals)
	}
	idx := make([]int, len(streams))
	var last graph.ID
	haveLast := false
	for {
		bestS := -1
		var best graph.ID
		for si, st := range streams {
			if idx[si] >= len(st) {
				continue
			}
			if bestS < 0 || st[idx[si]] < best {
				bestS, best = si, st[idx[si]]
			}
		}
		if bestS < 0 {
			return
		}
		idx[bestS]++
		if haveLast && best == last {
			continue
		}
		last, haveLast = best, true
		if !visit(best) {
			return
		}
	}
}

// Check verifies internal invariants (for tests): the stored count
// matches the materialised set.
func (s *Store) Check() error {
	g := s.Graph()
	if g.Len() != s.n {
		return fmt.Errorf("dynamic: count %d but %d distinct triples materialise", s.n, g.Len())
	}
	return nil
}
