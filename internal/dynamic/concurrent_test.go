package dynamic

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// TestBackgroundCompaction exercises the compaction goroutine: flushes
// and merges happen off the writer path, the ring budget is eventually
// enforced, and FlushNow leaves everything in static rings.
func TestBackgroundCompaction(t *testing.T) {
	s := New(Options{MemtableThreshold: 32, MaxRings: 2, Background: true})
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		s.Add(graph.Triple{
			S: graph.ID(rng.Intn(200)), P: graph.ID(rng.Intn(4)), O: graph.ID(rng.Intn(200)),
		})
	}
	s.FlushNow()
	if s.MemtableLen() != 0 {
		t.Fatalf("FlushNow left %d buffered triples", s.MemtableLen())
	}
	if s.Rings() > 2 {
		t.Fatalf("ring budget exceeded after FlushNow: %d rings", s.Rings())
	}
	if s.Compactions() == 0 {
		t.Fatal("no background compactions ran")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIsolation pins an epoch, mutates the store heavily, and
// verifies the pinned view still answers for its own triple set.
func TestSnapshotIsolation(t *testing.T) {
	s := New(Options{MemtableThreshold: 16, MaxRings: 2})
	for i := 0; i < 50; i++ {
		s.Add(graph.Triple{S: graph.ID(i), P: 0, O: graph.ID(i + 1)})
	}
	snap := s.Snapshot()
	wantGraph := snap.Graph()
	// Mutate: deletes, inserts, a full compaction.
	for i := 0; i < 50; i += 2 {
		s.Delete(graph.Triple{S: graph.ID(i), P: 0, O: graph.ID(i + 1)})
	}
	for i := 100; i < 180; i++ {
		s.Add(graph.Triple{S: graph.ID(i), P: 1, O: graph.ID(i)})
	}
	s.Compact()

	res, err := snap.Evaluate(graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != wantGraph.Len() {
		t.Fatalf("pinned snapshot sees %d edges, want %d", len(res.Solutions), wantGraph.Len())
	}
	if snap.Len() != wantGraph.Len() {
		t.Fatalf("snapshot Len drifted: %d vs %d", snap.Len(), wantGraph.Len())
	}
}

// TestConcurrentReadersOneWriter runs the contract the serving layer
// depends on: one writer mutating (with background compaction) while
// many readers evaluate. Every reader pins a snapshot and checks the
// answer against that snapshot's own materialisation, so any torn state
// shows up as a mismatch (and the race detector sees any unsynchronized
// access).
func TestConcurrentReadersOneWriter(t *testing.T) {
	s := New(Options{MemtableThreshold: 24, MaxRings: 2, Background: true})
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				p := graph.ID(rng.Intn(3))
				res, err := snap.Evaluate(graph.Pattern{
					graph.TP(graph.Var("x"), graph.Const(p), graph.Var("y")),
				}, ltj.Options{})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				want := 0
				for _, tr := range snap.Triples() {
					if tr.P == p {
						want++
					}
				}
				if len(res.Solutions) != want {
					t.Errorf("reader: %d solutions for p=%d, snapshot holds %d", len(res.Solutions), p, want)
					return
				}
			}
		}(int64(100 + r))
	}

	rng := rand.New(rand.NewSource(42))
	inserted := make([]graph.Triple, 0, 2000)
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 2000 && time.Now().Before(deadline); i++ {
		tr := graph.Triple{
			S: graph.ID(rng.Intn(150)), P: graph.ID(rng.Intn(3)), O: graph.ID(rng.Intn(150)),
		}
		s.Add(tr)
		inserted = append(inserted, tr)
		if len(inserted) > 10 && rng.Intn(10) == 0 {
			s.Delete(inserted[rng.Intn(len(inserted))]) // may be absent: fine
		}
	}
	close(stop)
	wg.Wait()
	s.FlushNow()
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressureReleases fills the memtable far beyond its threshold:
// writers must block at the backpressure bound, then be released by the
// compactor rather than deadlocking.
func TestBackpressureReleases(t *testing.T) {
	s := New(Options{MemtableThreshold: 8, MaxRings: 2, Background: true})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			s.Add(graph.Triple{S: graph.ID(i), P: graph.ID(i % 3), O: graph.ID(i + 1)})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("writer deadlocked under backpressure")
	}
	s.FlushNow()
	if got := s.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}
