package dynamic

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func randomTriple(rng *rand.Rand) graph.Triple {
	return graph.Triple{
		S: graph.ID(rng.Intn(30)),
		P: graph.ID(rng.Intn(4)),
		O: graph.ID(rng.Intn(30)),
	}
}

func TestAddAndQueryMatchesStaticRing(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	s := New(Options{MemtableThreshold: 64, MaxRings: 3})
	var inserted []graph.Triple
	for i := 0; i < 1000; i++ {
		tr := randomTriple(rng)
		s.Add(tr)
		inserted = append(inserted, tr)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	g := graph.New(inserted)
	if s.Len() != g.Len() {
		t.Fatalf("Len = %d, want %d distinct", s.Len(), g.Len())
	}
	if s.Rings() > 3 {
		t.Fatalf("ring budget exceeded: %d rings", s.Rings())
	}

	// Queries over the dynamic store must match a static ring built from
	// the same triples.
	static := ring.New(g, ring.Options{})
	staticIdx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return static.NewPatternState(tp)
	})
	for trial := 0; trial < 80; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(3), 0.4, false)
		want, err := ltj.Evaluate(staticIdx, q, ltj.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Evaluate(q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(got.Solutions, want.Solutions, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestDuplicateInsertsIgnored(t *testing.T) {
	s := New(Options{MemtableThreshold: 10})
	tr := graph.Triple{S: 1, P: 0, O: 2}
	s.Add(tr)
	s.Add(tr)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert", s.Len())
	}
	// Duplicate across the memtable/ring boundary.
	for i := 0; i < 20; i++ {
		s.Add(graph.Triple{S: graph.ID(i), P: 1, O: graph.ID(i)})
	}
	before := s.Len()
	s.Add(tr)
	if s.Len() != before {
		t.Fatal("duplicate of a flushed triple was counted")
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	s := New(Options{MemtableThreshold: 32, MaxRings: 2})
	set := map[graph.Triple]bool{}
	for i := 0; i < 300; i++ {
		tr := randomTriple(rng)
		s.Add(tr)
		set[tr] = true
	}
	// Delete half of them (some in the memtable, most in rings).
	removed := 0
	for tr := range set {
		if removed >= len(set)/2 {
			break
		}
		if !s.Delete(tr) {
			t.Fatalf("Delete(%v) failed for a present triple", tr)
		}
		delete(set, tr)
		removed++
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(set) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(set))
	}
	for tr := range set {
		if !s.Contains(tr) {
			t.Fatalf("remaining triple %v missing", tr)
		}
	}
	if s.Delete(graph.Triple{S: 99, P: 3, O: 99}) {
		t.Error("Delete of absent triple reported success")
	}
}

func TestCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	s := New(Options{MemtableThreshold: 16, MaxRings: 5})
	for i := 0; i < 200; i++ {
		s.Add(randomTriple(rng))
	}
	n := s.Len()
	s.Compact()
	if s.Rings() != 1 || s.MemtableLen() != 0 {
		t.Fatalf("after Compact: %d rings, %d buffered", s.Rings(), s.MemtableLen())
	}
	if s.Len() != n {
		t.Fatalf("Compact changed Len: %d -> %d", n, s.Len())
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraph(t *testing.T) {
	g := testutil.PaperGraph()
	s := FromGraph(g, Options{})
	if s.Len() != g.Len() || s.Rings() != 1 {
		t.Fatalf("FromGraph: len %d rings %d", s.Len(), s.Rings())
	}
	// Add more data and query across the boundary.
	s.Add(graph.Triple{S: 0, P: 2, O: 5}) // Bohr win Nobel (nonsense but new)
	res, err := s.Evaluate(graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 5 { // 4 original winners + 1 new
		t.Fatalf("got %d win edges, want 5", len(res.Solutions))
	}
}

func TestLonelyEnumerationAcrossComponents(t *testing.T) {
	// A query whose lonely variable spans the memtable and a ring: the
	// union enumeration must merge and deduplicate.
	s := New(Options{MemtableThreshold: 4})
	s.AddBatch([]graph.Triple{
		{S: 1, P: 0, O: 2}, {S: 1, P: 0, O: 3}, {S: 1, P: 0, O: 4}, {S: 1, P: 0, O: 5},
	}) // flushes into a ring
	s.Add(graph.Triple{S: 1, P: 0, O: 6}) // stays in the memtable
	s.Add(graph.Triple{S: 1, P: 0, O: 2}) // duplicate of a ring triple
	res, err := s.Evaluate(graph.Pattern{
		graph.TP(graph.Const(1), graph.Const(0), graph.Var("o")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 5 {
		t.Fatalf("got %d objects, want 5 (deduplicated)", len(res.Solutions))
	}
}

func TestEmptyStore(t *testing.T) {
	s := New(Options{})
	res, err := s.Evaluate(graph.Pattern{
		graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("o")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Error("empty store yielded solutions")
	}
	if s.Delete(graph.Triple{}) {
		t.Error("Delete on empty store succeeded")
	}
}

func TestManyFlushesKeepRingBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	s := New(Options{MemtableThreshold: 8, MaxRings: 2})
	for i := 0; i < 400; i++ {
		s.Add(graph.Triple{
			S: graph.ID(rng.Intn(100)), P: graph.ID(rng.Intn(3)), O: graph.ID(rng.Intn(100)),
		})
		if s.Rings() > 2 {
			t.Fatalf("ring budget exceeded at step %d: %d rings", i, s.Rings())
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}
