// Package intvec provides fixed-width packed integer vectors: n values of
// w bits each stored contiguously in ⌈nw/64⌉ words. They back the class
// arrays of compressed bitvectors, the C arrays of the ring, and the
// compact storage of dictionary identifiers — anywhere the paper counts
// "n log U" bits.
package intvec

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/bits"
)

// Vector is an immutable fixed-width packed integer array.
type Vector struct {
	// data may alias a read-only memory-mapped file when the vector was
	// loaded through View; never write to it after construction.
	//ringlint:viewed
	data  []uint64
	n     int
	width uint
}

// New packs the given values using the smallest width that fits the
// maximum value.
func New(values []uint64) *Vector {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	return NewWidth(values, bits.Len(max))
}

// NewWidth packs the values with an explicit width (1..64 bits). It panics
// if a value does not fit.
func NewWidth(values []uint64, width uint) *Vector {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("intvec: width %d out of [1,64]", width))
	}
	v := &Vector{
		data:  make([]uint64, bits.WordsFor(uint64(len(values))*uint64(width))),
		n:     len(values),
		width: width,
	}
	var limit uint64 = ^uint64(0)
	if width < 64 {
		limit = (uint64(1) << width) - 1
	}
	for i, val := range values {
		if val > limit {
			panic(fmt.Sprintf("intvec: value %d exceeds width %d", val, width))
		}
		//ringlint:allow viewsafe -- buffer freshly allocated by this builder, never view-aliased
		bits.WriteBits(v.data, uint64(i)*uint64(width), width, val)
	}
	return v
}

// Len returns the number of values.
func (v *Vector) Len() int { return v.n }

// Width returns the per-value width in bits.
func (v *Vector) Width() uint { return v.width }

// Get returns the i-th value.
//
//ringlint:hotpath
func (v *Vector) Get(i int) uint64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("intvec: Get(%d) out of range [0,%d)", i, v.n))
	}
	return bits.ReadBits(v.data, uint64(i)*uint64(v.width), v.width)
}

// SizeBytes returns the in-memory footprint.
func (v *Vector) SizeBytes() int { return 8*len(v.data) + 24 }

// All returns a freshly allocated unpacked copy of the values.
func (v *Vector) All() []uint64 {
	out := make([]uint64, v.n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// SearchPrefix performs a binary search over a vector whose values are
// non-decreasing, returning the smallest index i with Get(i) >= x, or
// Len() if none.
//
//ringlint:hotpath
func (v *Vector) SearchPrefix(x uint64) int {
	lo, hi := 0, v.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.Get(mid) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

const magic = uint64(0x52494e47495643) // "RINGIVC"

// WriteTo serializes the vector.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	n := int64(0)
	hdr := make([]byte, 32)
	putU64 := func(off int, x uint64) {
		for i := 0; i < 8; i++ {
			hdr[off+i] = byte(x >> (8 * i))
		}
	}
	putU64(0, magic)
	putU64(8, uint64(v.n))
	putU64(16, uint64(v.width))
	putU64(24, uint64(len(v.data)))
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 8)
	for _, word := range v.data {
		for i := 0; i < 8; i++ {
			buf[i] = byte(word >> (8 * i))
		}
		k, err = w.Write(buf)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read deserializes a vector written by WriteTo.
func Read(r io.Reader) (*Vector, error) {
	return Decode(bits.NewReaderSource(r, "intvec"))
}

// View deserializes a vector from an in-memory buffer, aliasing the
// packed payload when possible. Returns the number of bytes consumed.
func View(b []byte) (*Vector, int, error) {
	src := bits.NewByteSource(b, "intvec")
	v, err := Decode(src)
	if err != nil {
		return nil, 0, err
	}
	return v, src.Offset(), nil
}

// Decode deserializes a vector from any Source.
func Decode(src bits.Source) (*Vector, error) {
	hdr, err := src.U64s(4)
	if err != nil {
		return nil, err
	}
	if hdr[0] != magic {
		return nil, errors.New("intvec: bad magic")
	}
	v := &Vector{n: int(hdr[1]), width: uint(hdr[2])}
	nWords := int(hdr[3])
	if v.width < 1 || v.width > 64 || v.n < 0 ||
		nWords != bits.WordsFor(uint64(v.n)*uint64(v.width)) {
		return nil, fmt.Errorf("intvec: corrupt header (n=%d width=%d words=%d)", v.n, v.width, nWords)
	}
	if v.data, err = src.Words(nWords); err != nil {
		return nil, err
	}
	return v, nil
}
