package intvec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := uint(1); width <= 64; width++ {
		n := 200
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
			if width < 64 {
				vals[i] &= (1 << width) - 1
			}
		}
		v := NewWidth(vals, width)
		if v.Len() != n || v.Width() != width {
			t.Fatalf("width %d: Len/Width mismatch", width)
		}
		for i, want := range vals {
			if got := v.Get(i); got != want {
				t.Fatalf("width %d: Get(%d) = %d, want %d", width, i, got, want)
			}
		}
	}
}

func TestNewPicksMinimalWidth(t *testing.T) {
	v := New([]uint64{0, 1, 2, 3, 4, 5, 6, 7})
	if v.Width() != 3 {
		t.Errorf("width = %d, want 3", v.Width())
	}
	v = New([]uint64{0, 0, 0})
	if v.Width() != 1 {
		t.Errorf("all-zero width = %d, want 1", v.Width())
	}
}

func TestAll(t *testing.T) {
	vals := []uint64{5, 0, 17, 3, 3}
	got := New(vals).All()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("All()[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestSearchPrefix(t *testing.T) {
	v := New([]uint64{0, 0, 3, 3, 7, 10, 10, 10, 15})
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 5}, {10, 5}, {11, 8}, {15, 8}, {16, 9},
	}
	for _, c := range cases {
		if got := v.SearchPrefix(c.x); got != c.want {
			t.Errorf("SearchPrefix(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint64, 777)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 20))
	}
	v := New(vals)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got.Get(i) != want {
			t.Fatalf("after round-trip, Get(%d) = %d, want %d", i, got.Get(i), want)
		}
	}
}

func TestSerializationCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New([]uint64{1, 2, 3}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:10])); err == nil {
		t.Error("accepted truncated header")
	}
	bad := append([]byte(nil), data...)
	bad[3] ^= 0x55
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	short := data[:len(data)-4]
	if _, err := Read(bytes.NewReader(short)); err == nil {
		t.Error("accepted truncated data")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		v := New(vals)
		for i, want := range vals {
			if v.Get(i) != want {
				return false
			}
		}
		return v.Len() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	t.Run("width0", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for width 0")
			}
		}()
		NewWidth(nil, 0)
	})
	t.Run("valueTooWide", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for oversized value")
			}
		}()
		NewWidth([]uint64{8}, 3)
	})
	t.Run("getOutOfRange", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for Get out of range")
			}
		}()
		New([]uint64{1}).Get(1)
	})
}
