package intvec

import (
	"bytes"
	"math/rand"
	"testing"
	"unsafe"
)

// alignedCopy returns a copy of data whose base address is 8-byte
// aligned plus skew — skew 0 exercises the zero-copy aliasing path,
// skew 1..7 the misaligned copy fallback.
func alignedCopy(data []byte, skew int) []byte {
	buf := make([]byte, len(data)+16)
	off := (8 - int(uintptr(unsafe.Pointer(&buf[0])))%8) % 8
	off += skew
	copy(buf[off:], data)
	return buf[off : off+len(data)]
}

func serialize(t *testing.T, v *Vector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestViewMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint64, 333)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 17))
	}
	data := serialize(t, New(vals))
	for skew := 0; skew < 8; skew++ {
		v, consumed, err := View(alignedCopy(data, skew))
		if err != nil {
			t.Fatalf("skew %d: %v", skew, err)
		}
		if consumed != len(data) {
			t.Fatalf("skew %d: consumed %d of %d bytes", skew, consumed, len(data))
		}
		for i, want := range vals {
			if v.Get(i) != want {
				t.Fatalf("skew %d: Get(%d) = %d, want %d", skew, i, v.Get(i), want)
			}
		}
	}
}

// TestViewAliases proves the zero-copy contract on an aligned buffer.
func TestViewAliases(t *testing.T) {
	data := alignedCopy(serialize(t, New([]uint64{1, 2, 3, 4, 5})), 0)
	v, _, err := View(data)
	if err != nil {
		t.Fatal(err)
	}
	// The packed payload starts after the 4-word header.
	if unsafe.Pointer(&v.data[0]) != unsafe.Pointer(&data[32]) {
		t.Error("View on an aligned buffer did not alias the input")
	}
}

func TestViewTruncationsError(t *testing.T) {
	data := serialize(t, New([]uint64{9, 8, 7, 6, 5, 4, 3, 2, 1}))
	for i := 0; i < len(data); i++ {
		if _, _, err := View(alignedCopy(data[:i], 0)); err == nil {
			t.Errorf("accepted truncation to %d of %d bytes", i, len(data))
		}
	}
}

// TestViewBitFlips corrupts the serialization one byte at a time: View
// must either reject the input or produce a vector that answers queries
// without panicking.
func TestViewBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vals := make([]uint64, 200)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 12))
	}
	data := serialize(t, New(vals))
	for i := 0; i < len(data); i++ {
		c := alignedCopy(data, 0)
		c[i] ^= 0x5A
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on byte %d flipped: %v", i, r)
				}
			}()
			v, _, err := View(c)
			if err != nil {
				return
			}
			n := v.Len()
			if n > 100000 {
				n = 100000
			}
			for j := 0; j < n; j++ {
				v.Get(j)
			}
			v.SearchPrefix(1 << 11)
		}()
	}
}
