// Package orders implements the combinatorics of Section 6 and Table 3 of
// the paper: how many index orders an index class must materialise so that
// worst-case-optimal join algorithms can bind the attributes of d-ary
// tuples in any elimination order.
//
// Six index classes are modelled, named as in the paper:
//
//   - W (flat): classic tries. An order supports exactly the elimination
//     sequences that are its prefixes, so all d! orders are needed.
//   - TW: flat tries with trie switching — already-bound attributes may be
//     re-ordered by hopping to another trie, so an order covers a
//     requirement (B, a): "bound set B, next attribute a" iff its first
//     |B| levels are B (as a set) and level |B|+1 is a.
//   - CW: cyclic unidirectional orders (Brisaboa et al.): a cycle supports
//     the sequences that read as one of its forward arcs; (d-1)! cycles.
//   - CTW: cyclic + switching: a cycle covers (B, a) iff B is a contiguous
//     arc immediately followed (forward) by a.
//   - CBW: cyclic bidirectional (the ring, no switching): a cycle supports
//     a full sequence iff every prefix set is a contiguous arc (each new
//     attribute extends the arc at one of its two ends).
//   - CBTW: cyclic bidirectional + switching (the ring as implemented): a
//     cycle covers (B, a) iff B is a contiguous arc and a is adjacent to
//     either end. For d=3 a single cycle suffices — the paper's "one ring
//     to index them all".
//
// Counts are computed by exact formulas where the paper proves them
// (w, cw, tw) and by set-cover search otherwise: an exact branch-and-bound
// within a node budget, falling back to the greedy upper bound plus the
// density lower bound — mirroring how the paper itself produced Table 3
// ("when the search space was too large, we resorted to approximation
// algorithms for set cover").
package orders

import (
	"fmt"
	"math"
)

// Class identifies an index class from the paper's Table 3.
type Class int

// The six classes, in the paper's column order.
const (
	W Class = iota
	TW
	CW
	CTW
	CBW
	CBTW
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case W:
		return "W"
	case TW:
		return "TW"
	case CW:
		return "CW"
	case CTW:
		return "CTW"
	case CBW:
		return "CBW"
	case CBTW:
		return "CBTW"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Result is the outcome of a count: bounds on the minimal number of
// orders, and whether they coincide (exact).
type Result struct {
	Lower, Upper int
	Exact        bool
}

func exact(n int) Result { return Result{Lower: n, Upper: n, Exact: true} }

// Count computes (or bounds) the minimal number of orders the class must
// index in dimension d. budget bounds the branch-and-bound nodes for the
// search-based classes; 0 selects a default that is exact for d <= 5 and
// typically for d = 6.
func Count(c Class, d int, budget int) Result {
	if d < 2 {
		return exact(1)
	}
	if budget <= 0 {
		budget = 2_000_000
	}
	switch c {
	case W:
		return exact(factorial(d))
	case CW:
		return exact(factorial(d - 1))
	case TW:
		// Theorem 6.2: tw(d) = ceil(d/2) * C(d, floor(d/2)).
		return exact((d + 1) / 2 * binom(d, d/2))
	case CTW:
		return solveCover(cyclicCandidates(d), switchUniverse(d), coverCTW, d, budget)
	case CBW:
		return solveCover(cyclicCandidates(d), sequenceUniverse(d), coverCBW, d, budget)
	case CBTW:
		return solveCover(cyclicCandidates(d), switchUniverse(d), coverCBTW, d, budget)
	}
	panic("orders: unknown class")
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// --- candidates ---

// cyclicCandidates enumerates the distinct cycles on d elements as element
// arrays with first element fixed to 0 (rotations identified; reflections
// are distinct because direction matters).
func cyclicCandidates(d int) [][]int {
	rest := make([]int, d-1)
	for i := range rest {
		rest[i] = i + 1
	}
	var out [][]int
	var rec func(prefix []int, remaining []int)
	rec = func(prefix []int, remaining []int) {
		if len(remaining) == 0 {
			c := append([]int{0}, prefix...)
			out = append(out, c)
			return
		}
		for i, v := range remaining {
			rest2 := make([]int, 0, len(remaining)-1)
			rest2 = append(rest2, remaining[:i]...)
			rest2 = append(rest2, remaining[i+1:]...)
			rec(append(prefix, v), rest2)
		}
	}
	rec(nil, rest)
	return out
}

// --- universes ---

// requirement ids: switching classes use (B, a) pairs encoded as
// B*(d)+a over bitmask B; sequence classes use full permutations indexed
// by their rank.

// switchUniverse returns the requirement ids for the (B, a) universe:
// every proper subset B (including empty) and attribute a outside it.
func switchUniverse(d int) []int {
	var out []int
	for B := 0; B < 1<<d; B++ {
		if popcount(B) >= d {
			continue
		}
		for a := 0; a < d; a++ {
			if B&(1<<a) == 0 {
				out = append(out, B*d+a)
			}
		}
	}
	return out
}

// sequenceUniverse returns ids 0..d!-1 for the full elimination sequences.
func sequenceUniverse(d int) []int {
	out := make([]int, factorial(d))
	for i := range out {
		out[i] = i
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// permByRank decodes the r-th permutation of [d] in lexicographic order.
func permByRank(r, d int) []int {
	avail := make([]int, d)
	for i := range avail {
		avail[i] = i
	}
	out := make([]int, d)
	f := factorial(d - 1)
	for i := 0; i < d; i++ {
		idx := r / f
		r %= f
		out[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
		if i < d-1 {
			f /= d - 1 - i
		}
	}
	return out
}

// --- coverage predicates ---

// coverCTW: cycle covers (B,a) iff B is a contiguous arc whose next
// forward element is a. Empty B is covered by every cycle.
func coverCTW(cycle []int, req, d int) bool {
	B, a := req/d, req%d
	if B == 0 {
		return true
	}
	k := popcount(B)
	for start := 0; start < d; start++ {
		mask := 0
		for j := 0; j < k; j++ {
			mask |= 1 << cycle[(start+j)%d]
		}
		if mask == B && cycle[(start+k)%d] == a {
			return true
		}
	}
	return false
}

// coverCBTW: like coverCTW but a may also precede the arc (bidirectional).
func coverCBTW(cycle []int, req, d int) bool {
	B, a := req/d, req%d
	if B == 0 {
		return true
	}
	k := popcount(B)
	for start := 0; start < d; start++ {
		mask := 0
		for j := 0; j < k; j++ {
			mask |= 1 << cycle[(start+j)%d]
		}
		if mask != B {
			continue
		}
		if cycle[(start+k)%d] == a || cycle[((start-1)+d)%d] == a {
			return true
		}
	}
	return false
}

// coverCBW: cycle supports the full sequence (by rank) iff every prefix
// set is a contiguous arc of the cycle.
func coverCBW(cycle []int, req, d int) bool {
	seq := permByRank(req, d)
	posOf := make([]int, d)
	for i, v := range cycle {
		posOf[v] = i
	}
	lo, hi := posOf[seq[0]], posOf[seq[0]] // arc as cyclic interval [lo..hi]
	for _, v := range seq[1:] {
		p := posOf[v]
		switch {
		case p == (hi+1)%d:
			hi = p
		case p == (lo-1+d)%d:
			lo = p
		default:
			return false
		}
	}
	return true
}

// --- set cover ---

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) orWith(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) countMissing(cover bitset) int {
	miss := 0
	for i := range b {
		miss += popcount64(b[i] &^ cover[i])
	}
	return miss
}

func popcount64(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// solveCover computes bounds on the minimal number of candidate cycles
// covering the universe under the given predicate.
func solveCover(cands [][]int, universe []int, covers func([]int, int, int) bool, d, budget int) Result {
	// Re-index requirements densely and drop those covered by every
	// candidate (e.g. empty-B requirements).
	reqIdx := map[int]int{}
	var reqs []int
	for _, r := range universe {
		coveredByAll := true
		coveredBySome := false
		for _, c := range cands {
			if covers(c, r, d) {
				coveredBySome = true
			} else {
				coveredByAll = false
			}
			if coveredBySome && !coveredByAll {
				break
			}
		}
		if !coveredBySome {
			// Unsatisfiable requirement: no finite cover. Should not occur
			// for these classes.
			return Result{Lower: math.MaxInt32, Upper: math.MaxInt32}
		}
		if !coveredByAll {
			reqIdx[r] = len(reqs)
			reqs = append(reqs, r)
		}
	}
	n := len(reqs)
	if n == 0 {
		return exact(1) // everything trivial: one order suffices
	}
	sets := make([]bitset, len(cands))
	maxCover := 0
	for i, c := range cands {
		sets[i] = newBitset(n)
		cnt := 0
		for _, r := range reqs {
			if covers(c, r, d) {
				sets[i].set(reqIdx[r])
				cnt++
			}
		}
		if cnt > maxCover {
			maxCover = cnt
		}
	}
	full := newBitset(n)
	for i := 0; i < n; i++ {
		full.set(i)
	}

	greedyUB := randomizedGreedy(sets, full, n, 1500)
	lb := (n + maxCover - 1) / maxCover
	if lb == greedyUB {
		return exact(greedyUB)
	}

	// Branch and bound for the exact optimum within the node budget:
	// branch on the uncovered requirement contained in the fewest sets
	// (most constrained), trying the sets by decreasing marginal gain.
	best := greedyUB
	nodes := 0
	exhausted := true
	var rec func(cover bitset, used int)
	rec = func(cover bitset, used int) {
		nodes++
		if nodes > budget {
			exhausted = false
			return
		}
		miss := full.countMissing(cover)
		if miss == 0 {
			if used < best {
				best = used
			}
			return
		}
		if used+(miss+maxCover-1)/maxCover >= best {
			return
		}
		// Most-constrained uncovered requirement.
		bestReq, bestReqSets := -1, math.MaxInt32
		for i := 0; i < n; i++ {
			if cover.get(i) {
				continue
			}
			cnt := 0
			for _, s := range sets {
				if s.get(i) {
					cnt++
				}
			}
			if cnt < bestReqSets {
				bestReq, bestReqSets = i, cnt
			}
		}
		// Candidate sets sorted by marginal gain.
		type cand struct{ si, gain int }
		var cands []cand
		for si, s := range sets {
			if !s.get(bestReq) {
				continue
			}
			gain := 0
			for w := range s {
				gain += popcount64(s[w] &^ cover[w])
			}
			cands = append(cands, cand{si, gain})
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].gain > cands[j-1].gain; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		for _, c := range cands {
			nc := make(bitset, len(cover))
			copy(nc, cover)
			nc.orWith(sets[c.si])
			rec(nc, used+1)
			if !exhausted {
				return
			}
		}
	}
	rec(newBitset(n), 0)
	if exhausted {
		return exact(best)
	}
	return Result{Lower: lb, Upper: best}
}

// randomizedGreedy runs the greedy cover many times with randomized
// tie-breaking among near-best sets and returns the best size found. A
// deterministic xorshift keeps results reproducible.
func randomizedGreedy(sets []bitset, full bitset, n, restarts int) int {
	best := math.MaxInt32
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	gains := make([]int, len(sets))
	buildOne := func(slack int) []int {
		cover := newBitset(n)
		var sol []int
		for full.countMissing(cover) > 0 {
			bestGain := 0
			for i, s := range sets {
				gain := 0
				for w := range s {
					gain += popcount64(s[w] &^ cover[w])
				}
				gains[i] = gain
				if gain > bestGain {
					bestGain = gain
				}
			}
			if bestGain == 0 {
				return nil
			}
			var pool []int
			for i, g := range gains {
				if g >= bestGain-slack && g > 0 {
					pool = append(pool, i)
				}
			}
			pick := pool[int(next()%uint64(len(pool)))]
			cover.orWith(sets[pick])
			sol = append(sol, pick)
		}
		return sol
	}
	covered := func(sol []int) bool {
		cover := newBitset(n)
		for _, si := range sol {
			cover.orWith(sets[si])
		}
		return full.countMissing(cover) == 0
	}
	// Greedy restarts with randomized tie-breaking.
	var bestSol []int
	for r := 0; r < restarts; r++ {
		slack := 0
		if r > 0 {
			slack = int(next() % 2)
		}
		if sol := buildOne(slack); sol != nil && len(sol) < best {
			best = len(sol)
			bestSol = sol
		}
	}
	if bestSol == nil {
		return best
	}
	// Local search: drop two solution sets, re-cover the residue greedily.
	for iter := 0; iter < 4*restarts && len(bestSol) > 1; iter++ {
		i := int(next() % uint64(len(bestSol)))
		j := int(next() % uint64(len(bestSol)))
		if i == j {
			continue
		}
		var trial []int
		for k, si := range bestSol {
			if k != i && k != j {
				trial = append(trial, si)
			}
		}
		cover := newBitset(n)
		for _, si := range trial {
			cover.orWith(sets[si])
		}
		for full.countMissing(cover) > 0 && len(trial) < len(bestSol)-1 {
			bestI, bestGain := -1, 0
			for si, s := range sets {
				gain := 0
				for w := range s {
					gain += popcount64(s[w] &^ cover[w])
				}
				if gain > bestGain {
					bestI, bestGain = si, gain
				}
			}
			if bestI < 0 {
				break
			}
			trial = append(trial, bestI)
			cover.orWith(sets[bestI])
		}
		if full.countMissing(cover) == 0 && len(trial) < len(bestSol) && covered(trial) {
			bestSol = trial
			best = len(trial)
		}
	}
	return best
}

// BackwardCover returns a small set of cycles such that for every bound
// set B and attribute a ∉ B, some cycle has B as a contiguous arc with a
// immediately preceding it (backward direction). This is the cover the
// d-dimensional ring (package ringhd) indexes: binding always proceeds by
// backward extension, the unidirectional-BWT implementation sketched at
// the end of Section 6. The cover is produced greedily and verified
// exhaustively.
func BackwardCover(d int) [][]int {
	if d < 2 {
		return [][]int{{0}}
	}
	cands := cyclicCandidates(d)
	universe := switchUniverse(d)
	// Backward coverage is CTW on the reversed cycle: a precedes the arc.
	covers := func(cycle []int, req, dd int) bool {
		B, a := req/dd, req%dd
		if B == 0 {
			return true
		}
		k := popcount(B)
		for start := 0; start < dd; start++ {
			mask := 0
			for j := 0; j < k; j++ {
				mask |= 1 << cycle[(start+j)%dd]
			}
			if mask == B && cycle[((start-1)+dd)%dd] == a {
				return true
			}
		}
		return false
	}
	// Greedy cover retaining the chosen cycles.
	reqPending := map[int]bool{}
	for _, r := range universe {
		if r/d != 0 { // empty-B requirements are free
			reqPending[r] = true
		}
	}
	var chosen [][]int
	for len(reqPending) > 0 {
		bestI, bestGain := -1, 0
		for i, c := range cands {
			gain := 0
			for r := range reqPending {
				if covers(c, r, d) {
					gain++
				}
			}
			if gain > bestGain {
				bestI, bestGain = i, gain
			}
		}
		if bestI < 0 {
			panic("orders: backward cover infeasible")
		}
		chosen = append(chosen, cands[bestI])
		for r := range reqPending {
			if covers(cands[bestI], r, d) {
				delete(reqPending, r)
			}
		}
	}
	return chosen
}
