package orders

import (
	"testing"
)

func TestFormulaClasses(t *testing.T) {
	// W and CW have closed forms (Theorem 6.2), TW as well.
	cases := []struct {
		c    Class
		d    int
		want int
	}{
		{W, 2, 2}, {W, 3, 6}, {W, 4, 24}, {W, 5, 120}, {W, 6, 720}, {W, 7, 5040}, {W, 8, 40320},
		{CW, 3, 2}, {CW, 4, 6}, {CW, 5, 24}, {CW, 6, 120}, {CW, 7, 720}, {CW, 8, 5040},
		{TW, 2, 2}, {TW, 3, 6}, {TW, 4, 12}, {TW, 5, 30}, {TW, 6, 60}, {TW, 7, 140}, {TW, 8, 280},
	}
	for _, c := range cases {
		got := Count(c.c, c.d, 0)
		if !got.Exact || got.Upper != c.want {
			t.Errorf("Count(%v, %d) = %+v, want exact %d", c.c, c.d, got, c.want)
		}
	}
}

func TestRingNeedsOneOrderForTriples(t *testing.T) {
	// The headline claim: for d=3 the cyclic bidirectional (switching)
	// class needs exactly ONE order — "one ring to index them all".
	got := Count(CBTW, 3, 0)
	if !got.Exact || got.Upper != 1 {
		t.Fatalf("cbtw(3) = %+v, want exact 1", got)
	}
	// Bidirectionality is essential: without it (CTW) two orders are
	// needed, which is the Brisaboa et al. configuration.
	got = Count(CTW, 3, 0)
	if !got.Exact || got.Upper != 2 {
		t.Fatalf("ctw(3) = %+v, want exact 2", got)
	}
	// And even without switching, one bidirectional cycle covers d=3.
	got = Count(CBW, 3, 0)
	if !got.Exact || got.Upper != 1 {
		t.Fatalf("cbw(3) = %+v, want exact 1", got)
	}
}

func TestSearchClassesSmallD(t *testing.T) {
	// Paper Table 3 values for d=4 and d=5.
	cases := []struct {
		c    Class
		d    int
		want int
	}{
		{CTW, 4, 4}, {CBW, 4, 2}, {CBTW, 4, 2},
		{CTW, 5, 8}, {CBW, 5, 5}, {CBTW, 5, 5},
	}
	for _, c := range cases {
		got := Count(c.c, c.d, 0)
		if got.Upper != c.want {
			t.Errorf("Count(%v, %d) = %+v, want upper %d (paper Table 3)", c.c, c.d, got, c.want)
		}
		if got.Exact && got.Lower != c.want {
			t.Errorf("Count(%v, %d) exact but lower %d != %d", c.c, c.d, got.Lower, c.want)
		}
	}
}

func TestSearchClassesD6Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("d=6 search is slow")
	}
	// Paper Table 3 d=6: ctw in [10,12], cbw = 10, cbtw = 7. Our search
	// must land inside (or prove) those ranges.
	ctw := Count(CTW, 6, 500_000)
	if ctw.Upper < 10 || ctw.Upper > 12 {
		t.Errorf("ctw(6) upper = %d, want within [10,12]", ctw.Upper)
	}
	cbw := Count(CBW, 6, 500_000)
	if cbw.Upper < 8 || cbw.Upper > 12 {
		t.Errorf("cbw(6) upper = %d, want near 10", cbw.Upper)
	}
	cbtw := Count(CBTW, 6, 500_000)
	if cbtw.Upper < 5 || cbtw.Upper > 8 {
		t.Errorf("cbtw(6) upper = %d, want near 7", cbtw.Upper)
	}
}

func TestMonotoneAcrossClasses(t *testing.T) {
	// For each d, more capable classes never need more orders:
	// cbtw <= ctw <= tw and cbtw <= cbw <= cw.
	for d := 3; d <= 5; d++ {
		tw := Count(TW, d, 0).Upper
		ctw := Count(CTW, d, 0).Upper
		cbw := Count(CBW, d, 0).Upper
		cbtw := Count(CBTW, d, 0).Upper
		cw := Count(CW, d, 0).Upper
		if cbtw > ctw || ctw > tw {
			t.Errorf("d=%d: cbtw(%d) <= ctw(%d) <= tw(%d) violated", d, cbtw, ctw, tw)
		}
		if cbtw > cbw || cbw > cw {
			t.Errorf("d=%d: cbtw(%d) <= cbw(%d) <= cw(%d) violated", d, cbtw, cbw, cw)
		}
	}
}

func TestLowDimensionEdge(t *testing.T) {
	for _, c := range []Class{W, TW, CW, CTW, CBW, CBTW} {
		got := Count(c, 1, 0)
		if !got.Exact || got.Upper != 1 {
			t.Errorf("Count(%v, 1) = %+v, want exact 1", c, got)
		}
	}
	if got := Count(CBTW, 2, 0); !got.Exact || got.Upper != 1 {
		t.Errorf("cbtw(2) = %+v, want exact 1", got)
	}
}

func TestCycleCandidatesCount(t *testing.T) {
	for d := 2; d <= 6; d++ {
		if got := len(cyclicCandidates(d)); got != factorial(d-1) {
			t.Errorf("d=%d: %d cycles, want %d", d, got, factorial(d-1))
		}
	}
}

func TestPermByRank(t *testing.T) {
	seen := map[string]bool{}
	d := 4
	for r := 0; r < factorial(d); r++ {
		p := permByRank(r, d)
		key := ""
		used := map[int]bool{}
		for _, v := range p {
			if v < 0 || v >= d || used[v] {
				t.Fatalf("rank %d: invalid permutation %v", r, p)
			}
			used[v] = true
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("rank %d: duplicate permutation %v", r, p)
		}
		seen[key] = true
	}
}

func TestCoverPredicatesSpotChecks(t *testing.T) {
	// Cycle (0,1,2,3): arc {1,2} is contiguous; forward next after (1,2)
	// is 3, backward before is 0.
	cycle := []int{0, 1, 2, 3}
	d := 4
	B := (1 << 1) | (1 << 2)
	if !coverCTW(cycle, B*d+3, d) {
		t.Error("CTW should cover ({1,2}, 3)")
	}
	if coverCTW(cycle, B*d+0, d) {
		t.Error("CTW must not cover ({1,2}, 0) — that needs the backward direction")
	}
	if !coverCBTW(cycle, B*d+0, d) {
		t.Error("CBTW should cover ({1,2}, 0)")
	}
	// Non-contiguous bound set {0,2} is not coverable by this cycle.
	B = (1 << 0) | (1 << 2)
	if coverCBTW(cycle, B*d+1, d) {
		t.Error("CBTW must not cover non-contiguous arc {0,2}")
	}
}

func TestCoverCBWSequences(t *testing.T) {
	cycle := []int{0, 1, 2, 3}
	d := 4
	// Sequence 1,2,3,0: every prefix is an arc — covered.
	// Sequence 0,2,1,3: prefix {0,2} not contiguous — not covered.
	rankOf := func(seq []int) int {
		for r := 0; r < factorial(d); r++ {
			p := permByRank(r, d)
			same := true
			for i := range p {
				if p[i] != seq[i] {
					same = false
					break
				}
			}
			if same {
				return r
			}
		}
		return -1
	}
	if !coverCBW(cycle, rankOf([]int{1, 2, 3, 0}), d) {
		t.Error("CBW should cover 1,2,3,0 on cycle 0123")
	}
	if !coverCBW(cycle, rankOf([]int{2, 1, 3, 0}), d) {
		t.Error("CBW should cover 2,1,3,0 (grow left then right)")
	}
	if coverCBW(cycle, rankOf([]int{0, 2, 1, 3}), d) {
		t.Error("CBW must not cover 0,2,1,3")
	}
}

func TestBackwardCoverIsComplete(t *testing.T) {
	for d := 3; d <= 5; d++ {
		cycles := BackwardCover(d)
		// Exhaustively verify: every (B, a) with nonempty B has a cycle
		// with B a contiguous arc preceded by a.
		for B := 1; B < 1<<d; B++ {
			if popcount(B) >= d {
				continue
			}
			for a := 0; a < d; a++ {
				if B&(1<<a) != 0 {
					continue
				}
				covered := false
				for _, cy := range cycles {
					k := popcount(B)
					for start := 0; start < d && !covered; start++ {
						mask := 0
						for j := 0; j < k; j++ {
							mask |= 1 << cy[(start+j)%d]
						}
						if mask == B && cy[((start-1)+d)%d] == a {
							covered = true
						}
					}
					if covered {
						break
					}
				}
				if !covered {
					t.Fatalf("d=%d: (B=%b, a=%d) not covered by %v", d, B, a, cycles)
				}
			}
		}
	}
}

func TestBackwardCoverForTriples(t *testing.T) {
	// One backward-only ring is NOT enough for d=3 (that is the point of
	// bidirectionality); the unidirectional cover needs 2 cycles.
	cycles := BackwardCover(3)
	if len(cycles) != 2 {
		t.Errorf("backward cover for d=3 has %d cycles, want 2 (Brisaboa-style)", len(cycles))
	}
}
