package ring

import (
	"bytes"
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/testutil"
)

// alignedCopy returns a copy of data whose base address is 8-byte
// aligned plus skew — skew 0 exercises the zero-copy aliasing path,
// skew 1..7 the misaligned copy fallback.
func alignedCopy(data []byte, skew int) []byte {
	buf := make([]byte, len(data)+16)
	off := (8 - int(uintptr(unsafe.Pointer(&buf[0])))%8) % 8
	off += skew
	copy(buf[off:], data)
	return buf[off : off+len(data)]
}

// TestViewMatchesRead checks that the zero-copy view of a serialized
// ring answers exactly like the copying reader, for every variant and
// for both the aliased and the misaligned-fallback paths.
func TestViewMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range bothVariants {
		g := testutil.RandomGraph(rng, 250, 25, 4)
		r := New(g, tc.opt)
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", tc.name, err)
		}
		data := buf.Bytes()
		for _, skew := range []int{0, 5} {
			got, consumed, err := View(alignedCopy(data, skew))
			if err != nil {
				t.Fatalf("%s skew %d: View: %v", tc.name, skew, err)
			}
			if consumed != len(data) {
				t.Fatalf("%s skew %d: consumed %d of %d bytes", tc.name, skew, consumed, len(data))
			}
			if got.Len() != r.Len() || got.NumSO() != r.NumSO() || got.NumP() != r.NumP() {
				t.Fatalf("%s skew %d: header mismatch", tc.name, skew)
			}
			want := g.Triples()
			for i := range want {
				if got.Triple(i) != want[i] {
					t.Fatalf("%s skew %d: Triple(%d) mismatch", tc.name, skew, i)
				}
			}
		}
	}
}

func TestViewTruncationsError(t *testing.T) {
	r := New(testutil.PaperGraph(), Options{})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		if _, _, err := View(alignedCopy(data[:i], 0)); err == nil {
			t.Errorf("accepted truncation to %d of %d bytes", i, len(data))
		}
	}
}

// TestViewBitFlips corrupts each serialization one byte at a time: View
// must either reject the input or reconstruct triples without
// panicking. (A payload flip yields a different but answerable index.)
func TestViewBitFlips(t *testing.T) {
	if ringdebugEnabled {
		t.Skip("corrupt-but-accepted input returns wrong answers by policy, which legitimately trips ringdebug assertions")
	}
	rng := rand.New(rand.NewSource(72))
	for _, tc := range bothVariants {
		g := testutil.RandomGraph(rng, 40, 10, 3)
		r := New(g, tc.opt)
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for i := 0; i < len(data); i++ {
			c := alignedCopy(data, 0)
			c[i] ^= 0x5A
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("%s: panic on byte %d flipped: %v", tc.name, i, rec)
					}
				}()
				v, _, err := View(c)
				if err != nil {
					return
				}
				n := v.Len()
				if n > 100000 {
					n = 100000
				}
				for j := 0; j < n; j++ {
					v.Triple(j)
				}
			}()
		}
	}
}
