package ring

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

var bothVariants = []struct {
	name string
	opt  Options
}{
	{"ring", Options{}},
	{"c-ring", Options{Compress: true, RRRBlock: 16}},
	{"ring-sparse-c", Options{SparseC: true}},
	{"c-ring-sparse-c", Options{Compress: true, RRRBlock: 16, SparseC: true}},
}

func TestTripleRetrievalReplacesData(t *testing.T) {
	// Theorem 3.4: the index can reproduce every triple, so it replaces the
	// raw data.
	rng := rand.New(rand.NewSource(31))
	for _, tc := range bothVariants {
		for _, n := range []int{0, 1, 2, 10, 500} {
			g := testutil.RandomGraph(rng, n, 50, 5)
			r := New(g, tc.opt)
			if r.Len() != g.Len() {
				t.Fatalf("%s n=%d: Len = %d, want %d", tc.name, n, r.Len(), g.Len())
			}
			got := r.Triples()
			want := g.Triples()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Triple(%d) = %v, want %v", tc.name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestLFCycles(t *testing.T) {
	// Lemma 3.3: three LF-steps starting from any rotation return to it.
	g := testutil.RandomGraph(rand.New(rand.NewSource(32)), 300, 40, 6)
	r := New(g, Options{})
	for i := 0; i < r.Len(); i++ {
		if !r.LFCycleCheck(i) {
			t.Fatalf("LF cycle broken at rotation %d", i)
		}
	}
}

// TestBendedBWTDefinition checks the split representation against the
// paper's Definition 3.1 computed the slow way: build the text
// T = s1 p1 o1 ... sn pn on $ over shifted identifiers, compute its suffix
// array by brute force, extract BWT, bend it, and compare the three zones
// with the ring's stored columns.
func TestBendedBWTDefinition(t *testing.T) {
	g := testutil.PaperGraph()
	r := New(g, Options{})
	n := g.Len()
	U := uint64(g.NumSO())
	if up := uint64(g.NumP()); up > U {
		U = up
	}

	// Shifted text: subjects as-is, predicates +U, objects +2U, then $ as
	// the largest symbol 3U.
	ts := g.Triples()
	text := make([]uint64, 0, 3*n+1)
	for _, tr := range ts {
		text = append(text, uint64(tr.S), uint64(tr.P)+U, uint64(tr.O)+2*U)
	}
	text = append(text, 3*U)

	// Brute-force suffix array.
	sa := make([]int, len(text))
	for i := range sa {
		sa[i] = i
	}
	sort.Slice(sa, func(a, b int) bool {
		i, j := sa[a], sa[b]
		for i < len(text) && j < len(text) {
			if text[i] != text[j] {
				return text[i] < text[j]
			}
			i++
			j++
		}
		return i > j // the shorter suffix has consumed the terminator earlier
	})
	bwt := make([]uint64, len(text))
	for k, p := range sa {
		if p == 0 {
			bwt[k] = text[len(text)-1]
		} else {
			bwt[k] = text[p-1]
		}
	}
	// Definition 3.1 (1-based in the paper): BWT*[1..3n] =
	// BWT[2..n] · BWT[3n+1] · BWT[n+1..3n].
	bended := append(append(append([]uint64{}, bwt[1:n]...), bwt[3*n]), bwt[n:3*n]...)

	// Zone SPO (objects zone): bended[0..n) are shifted objects.
	for i := 0; i < n; i++ {
		want := bended[i] - 2*U
		if got := r.Column(ZoneSPO).Access(i); got != want {
			t.Fatalf("BWT_o[%d] = %d, want %d (per Definition 3.1)", i, got, want)
		}
	}
	// Zone POS (subjects zone): bended[n..2n) are unshifted subjects.
	for i := 0; i < n; i++ {
		if got, want := r.Column(ZonePOS).Access(i), bended[n+i]; got != want {
			t.Fatalf("BWT_s[%d] = %d, want %d", i, got, want)
		}
	}
	// Zone OSP (predicates zone): bended[2n..3n) are shifted predicates.
	for i := 0; i < n; i++ {
		want := bended[2*n+i] - U
		if got := r.Column(ZoneOSP).Access(i); got != want {
			t.Fatalf("BWT_p[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestPaperExampleColumns(t *testing.T) {
	// Figure 6 of the paper shows the bended BWT of the Nobel graph:
	// BWT* = 20 23 19 19 20 21 22 23 19 20 21 22 | 5 3 4 6*10 | 16 17 18 16
	// 17 18 17 18 16 17 (1-based ids; predicates shown shifted by U=9,
	// objects by 2U=18). Our encoding is 0-based and unshifted, so the
	// object zone is those values minus 19, subjects minus 1, predicates
	// minus 16 (adv=16→0, nom=17→1, win=18→2).
	r := New(testutil.PaperGraph(), Options{})
	wantO := []uint32{2, 1, 0, 4, 0, 1, 2, 3, 4, 0, 1, 2, 3}
	// Figure 6's triple set differs from ours in one nomination edge, so
	// rather than hard-coding the figure we recompute: objects of triples
	// sorted (s,p,o).
	ts := testutil.PaperGraph().Triples()
	for i, tr := range ts {
		wantO[i] = tr.O
	}
	for i := range wantO {
		if got := graph.ID(r.Column(ZoneSPO).Access(i)); got != wantO[i] {
			t.Fatalf("object zone[%d] = %d, want %d", i, got, wantO[i])
		}
	}
}

func TestCRange(t *testing.T) {
	g := testutil.PaperGraph()
	r := New(g, Options{})
	// Subject 5 (Nobel) has 9 triples; subjects 0..4 have one each.
	lo, hi := r.CRange(ZoneSPO, 5)
	if hi-lo != 9 {
		t.Errorf("CRange(spo, Nobel) size = %d, want 9", hi-lo)
	}
	// Predicate 1 (nom) has 5 triples.
	lo, hi = r.CRange(ZonePOS, 1)
	if hi-lo != 5 {
		t.Errorf("CRange(pos, nom) size = %d, want 5", hi-lo)
	}
	// Object 0 (Bohr) is the object of adv(Wheeler,Bohr), nom, win: 3.
	lo, hi = r.CRange(ZoneOSP, 0)
	if hi-lo != 3 {
		t.Errorf("CRange(osp, Bohr) size = %d, want 3", hi-lo)
	}
	// Out-of-domain constants yield empty ranges.
	lo, hi = r.CRange(ZoneSPO, 100)
	if lo != hi {
		t.Errorf("out-of-domain CRange = [%d,%d), want empty", lo, hi)
	}
}

// oracleCount counts triples matching a pattern with bindings applied.
func oracleCount(g *graph.Graph, tp graph.TriplePattern, bound map[graph.Position]graph.ID) int {
	cnt := 0
	for _, tr := range g.Triples() {
		vals := map[graph.Position]graph.ID{graph.PosS: tr.S, graph.PosP: tr.P, graph.PosO: tr.O}
		ok := true
		for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
			if c, isBound := bound[pos]; isBound && vals[pos] != c {
				ok = false
				break
			}
			if term := tp.Term(pos); !term.IsVar && vals[pos] != term.Value {
				ok = false
				break
			}
		}
		if ok {
			cnt++
		}
	}
	return cnt
}

// oracleLeap computes the expected result of Leap by brute force.
func oracleLeap(g *graph.Graph, tp graph.TriplePattern, bound map[graph.Position]graph.ID,
	pos graph.Position, c graph.ID) (graph.ID, bool) {
	best, found := graph.ID(0), false
	for _, tr := range g.Triples() {
		vals := map[graph.Position]graph.ID{graph.PosS: tr.S, graph.PosP: tr.P, graph.PosO: tr.O}
		ok := vals[pos] >= c
		for _, q := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
			if b, isBound := bound[q]; isBound && vals[q] != b {
				ok = false
			}
			if term := tp.Term(q); !term.IsVar && vals[q] != term.Value {
				ok = false
			}
		}
		if ok && (!found || vals[pos] < best) {
			best, found = vals[pos], true
		}
	}
	return best, found
}

// TestPatternStateAgainstOracle drives random bind/leap sequences on random
// patterns and compares every observable against brute force. This is the
// central correctness test for Lemmas 3.6 and 3.7.
func TestPatternStateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, tc := range bothVariants {
		g := testutil.RandomGraph(rng, 200, 25, 4)
		r := New(g, tc.opt)
		for trial := 0; trial < 400; trial++ {
			// Random pattern: each position constant (bound at creation) or
			// variable (to be bound interactively).
			var tp graph.TriplePattern
			varPos := []graph.Position{}
			terms := [3]graph.Term{}
			for i, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
				if rng.Intn(2) == 0 {
					// Constant biased to present values.
					tr := g.Triples()[rng.Intn(g.Len())]
					switch pos {
					case graph.PosS:
						terms[i] = graph.Const(tr.S)
					case graph.PosP:
						terms[i] = graph.Const(tr.P)
					default:
						terms[i] = graph.Const(tr.O)
					}
				} else {
					terms[i] = graph.Var(pos.String())
					varPos = append(varPos, pos)
				}
			}
			tp = graph.TP(terms[0], terms[1], terms[2])
			ps := r.NewPatternState(tp)
			bound := map[graph.Position]graph.ID{}

			if want := oracleCount(g, tp, bound); ps.Count() != want {
				t.Fatalf("%s %v: initial Count = %d, want %d", tc.name, tp, ps.Count(), want)
			}

			// Bind the variables one by one in random order, leaping first.
			rng.Shuffle(len(varPos), func(i, j int) { varPos[i], varPos[j] = varPos[j], varPos[i] })
			for _, pos := range varPos {
				c := graph.ID(rng.Intn(30))
				gotV, gotOK := ps.Leap(pos, c)
				wantV, wantOK := oracleLeap(g, tp, bound, pos, c)
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("%s %v bound=%v: Leap(%v,%d) = (%d,%v), want (%d,%v)",
						tc.name, tp, bound, pos, c, gotV, gotOK, wantV, wantOK)
				}
				if !gotOK {
					break
				}
				ps.Bind(pos, gotV)
				bound[pos] = gotV
				if want := oracleCount(g, tp, bound); ps.Count() != want {
					t.Fatalf("%s %v bound=%v: Count = %d, want %d",
						tc.name, tp, bound, ps.Count(), want)
				}
			}
			// Unbind everything and verify the state is restored.
			for range bound {
				ps.Unbind()
			}
			if want := oracleCount(g, tp, map[graph.Position]graph.ID{}); ps.Count() != want {
				t.Fatalf("%s %v: Count after full unbind = %d, want %d", tc.name, tp, ps.Count(), want)
			}
		}
	}
}

func TestEnumerateMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := testutil.RandomGraph(rng, 150, 20, 3)
	r := New(g, Options{})
	for trial := 0; trial < 200; trial++ {
		tr := g.Triples()[rng.Intn(g.Len())]
		// Pattern (s, p, ?o): enumerate objects.
		tp := graph.TP(graph.Const(tr.S), graph.Const(tr.P), graph.Var("o"))
		ps := r.NewPatternState(tp)
		if !ps.CanEnumerate(graph.PosO) {
			t.Fatal("cannot enumerate the backward-adjacent object")
		}
		var got []graph.ID
		ps.Enumerate(graph.PosO, func(c graph.ID) bool {
			got = append(got, c)
			return true
		})
		want := map[graph.ID]bool{}
		for _, u := range g.Triples() {
			if u.S == tr.S && u.P == tr.P {
				want[u.O] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Enumerate returned %d values, want %d", len(got), len(want))
		}
		for i, c := range got {
			if !want[c] {
				t.Fatalf("Enumerate returned absent value %d", c)
			}
			if i > 0 && got[i-1] >= c {
				t.Fatalf("Enumerate not strictly increasing: %v", got)
			}
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := testutil.PaperGraph()
	r := New(g, Options{})
	// (Nobel, nom, ?o) has 5 objects; stop after 2.
	ps := r.NewPatternState(graph.TP(graph.Const(5), graph.Const(1), graph.Var("o")))
	calls := 0
	ps.Enumerate(graph.PosO, func(graph.ID) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("early stop made %d calls, want 2", calls)
	}
}

func TestGroundPatternExistence(t *testing.T) {
	g := testutil.PaperGraph()
	r := New(g, Options{})
	present := r.NewPatternState(graph.TP(graph.Const(0), graph.Const(0), graph.Const(2)))
	if present.Count() != 1 {
		t.Errorf("present ground pattern Count = %d, want 1", present.Count())
	}
	absent := r.NewPatternState(graph.TP(graph.Const(2), graph.Const(0), graph.Const(0)))
	if !absent.Empty() {
		t.Error("absent ground pattern not Empty")
	}
	outOfDomain := r.NewPatternState(graph.TP(graph.Const(99), graph.Const(99), graph.Const(99)))
	if !outOfDomain.Empty() {
		t.Error("out-of-domain ground pattern not Empty")
	}
}

func TestLeapOnEmptyGraph(t *testing.T) {
	r := New(graph.New(nil), Options{})
	ps := r.NewPatternState(graph.TP(graph.Var("x"), graph.Var("y"), graph.Var("z")))
	if _, ok := ps.Leap(graph.PosS, 0); ok {
		t.Error("Leap on empty graph returned a value")
	}
	if ps.Count() != 0 {
		t.Errorf("Count on empty graph = %d", ps.Count())
	}
}

func TestUnbindPanicsOnEmptyStack(t *testing.T) {
	r := New(testutil.PaperGraph(), Options{})
	ps := r.NewPatternState(graph.TP(graph.Var("x"), graph.Var("y"), graph.Var("z")))
	defer func() {
		if recover() == nil {
			t.Error("Unbind on empty stack did not panic")
		}
	}()
	ps.Unbind()
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, tc := range bothVariants {
		g := testutil.RandomGraph(rng, 300, 30, 4)
		r := New(g, tc.opt)
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", tc.name, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: Read: %v", tc.name, err)
		}
		if got.Len() != r.Len() || got.NumSO() != r.NumSO() || got.NumP() != r.NumP() {
			t.Fatalf("%s: header mismatch after round-trip", tc.name)
		}
		want := g.Triples()
		for i := range want {
			if got.Triple(i) != want[i] {
				t.Fatalf("%s: Triple(%d) mismatch after round-trip", tc.name, i)
			}
		}
	}
}

func TestSerializationCorrupt(t *testing.T) {
	g := testutil.PaperGraph()
	r := New(g, Options{})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("accepted truncated index")
	}
	bad := append([]byte(nil), data...)
	bad[1] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("accepted corrupted magic")
	}
}

func TestCompressedSmallerThanPlain(t *testing.T) {
	// The C-Ring should be smaller than the Ring on a skewed graph (the
	// paper reports roughly half the space on Wikidata).
	rng := rand.New(rand.NewSource(36))
	ts := make([]graph.Triple, 20000)
	for i := range ts {
		// Zipf-ish: many triples share few hub subjects/objects.
		ts[i] = graph.Triple{
			S: graph.ID(rng.Intn(100)),
			P: graph.ID(rng.Intn(4)),
			O: graph.ID(zipfish(rng, 2000)),
		}
	}
	g := graph.New(ts)
	plain := New(g, Options{})
	comp := New(g, Options{Compress: true, RRRBlock: 64})
	if comp.SizeBytes() >= plain.SizeBytes() {
		t.Errorf("C-Ring (%d bytes) not smaller than Ring (%d bytes)",
			comp.SizeBytes(), plain.SizeBytes())
	}
}

func zipfish(rng *rand.Rand, max int) int {
	v := int(float64(max) / (1 + rng.ExpFloat64()*10))
	if v >= max {
		v = max - 1
	}
	return v
}

func TestBytesPerTriple(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(37)), 1000, 200, 10)
	r := New(g, Options{})
	bpt := r.BytesPerTriple()
	if bpt <= 0 || bpt > 1000 {
		t.Errorf("implausible bytes/triple: %f", bpt)
	}
	if New(graph.New(nil), Options{}).BytesPerTriple() != 0 {
		t.Error("empty ring bytes/triple should be 0")
	}
}

func TestSparseCReducesCSpace(t *testing.T) {
	// With a large sparse alphabet, the Elias–Fano C arrays must be much
	// smaller than the packed arrays (footnote 2 of the paper).
	rng := rand.New(rand.NewSource(38))
	ts := make([]graph.Triple, 30000)
	for i := range ts {
		ts[i] = graph.Triple{
			S: graph.ID(rng.Intn(1 << 20)),
			P: graph.ID(rng.Intn(8)),
			O: graph.ID(rng.Intn(1 << 20)),
		}
	}
	g := graph.New(ts)
	packed := New(g, Options{})
	sparse := New(g, Options{SparseC: true})
	if sparse.SizeBytes() >= packed.SizeBytes() {
		t.Errorf("SparseC (%d bytes) not smaller than packed C (%d bytes) on a sparse alphabet",
			sparse.SizeBytes(), packed.SizeBytes())
	}
	// And both must answer identically.
	for trial := 0; trial < 50; trial++ {
		tr := g.Triples()[rng.Intn(g.Len())]
		tp := graph.TP(graph.Const(tr.S), graph.Var("p"), graph.Var("o"))
		a, b := packed.NewPatternState(tp), sparse.NewPatternState(tp)
		if a.Count() != b.Count() {
			t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
		}
		va, oka := a.Leap(graph.PosP, 0)
		vb, okb := b.Leap(graph.PosP, 0)
		if oka != okb || va != vb {
			t.Fatalf("leaps differ: (%d,%v) vs (%d,%v)", va, oka, vb, okb)
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	// The ring is read-only: any number of goroutines may query it
	// concurrently, each with its own PatternState. Run under -race.
	g := testutil.RandomGraph(rand.New(rand.NewSource(39)), 500, 40, 5)
	r := New(g, Options{})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				tr := g.Triples()[rng.Intn(g.Len())]
				ps := r.NewPatternState(graph.TP(graph.Const(tr.S), graph.Var("p"), graph.Var("o")))
				if ps.Empty() {
					done <- fmt.Errorf("pattern for present subject is empty")
					return
				}
				if _, ok := ps.Leap(graph.PosP, 0); !ok {
					done <- fmt.Errorf("leap failed for present subject")
					return
				}
				if got := r.Triple(rng.Intn(r.Len())); got.S >= g.NumSO() {
					done <- fmt.Errorf("bad triple %v", got)
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
