package ring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/trieiter"
)

// PatternState is the ring's implementation of the trie-iterator
// abstraction (Definition 2.1) for one triple pattern. It maintains the
// BWT range of the pattern under the bindings applied so far and supports:
//
//   - Leap(pos, c): the smallest constant ≥ c that can bind position pos
//     so the pattern still has matches (Lemma 3.7), in O(log U) time;
//   - Bind/Unbind: push and pop a binding, updating the range by an
//     LF-step (backward) or a rank pair (forward), per Section 3.2.2;
//   - Enumerate: report the distinct values of the backward-adjacent free
//     position (the lonely-variable optimisation of Section 4.2).
//
// Invariant: the bound positions always form a cyclically contiguous run,
// and the current zone is the one starting at the run's first position.
// For arity 3 any set of ≤3 positions is cyclically contiguous, which is
// exactly why a single ring suffices for graphs.
type PatternState struct {
	r *Ring //ringlint:shared-immutable -- the ring is immutable after New/Read; forks share it read-only

	zone     Zone
	lo, hi   int      // current range within zone, half-open
	bound    int      // number of bound positions, 0..3
	firstVal graph.ID // value bound at the run's first position (zone start)

	frames []frame
}

type frame struct {
	zone     Zone
	lo, hi   int
	bound    int
	firstVal graph.ID
}

// NewPatternState creates the iterator for pattern tp, binding its constant
// components immediately (Lemma 3.6). The constants are bound in an order
// that keeps the run contiguous: a lone constant starts its own zone; two
// constants start at the cyclically later one and extend backward; three
// constants extend backward twice.
func (r *Ring) NewPatternState(tp graph.TriplePattern) *PatternState {
	ps := &PatternState{r: r, lo: 0, hi: r.n}
	consts := []graph.Position{}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		if !tp.Term(pos).IsVar {
			consts = append(consts, pos)
		}
	}
	switch len(consts) {
	case 0:
		// Full zone; the zone is fixed by the first variable bound.
	case 1:
		ps.Bind(consts[0], tp.Term(consts[0]).Value)
	case 2:
		// The two constants are cyclically adjacent (any 2 of 3 positions
		// are); find the run start a such that the run is (a, a.Next()).
		a, b := consts[0], consts[1]
		if a.Next() != b { // then b.Next() == a
			a, b = b, a
		}
		// Bind the later position first, then extend backward to the start.
		ps.Bind(b, tp.Term(b).Value)
		ps.Bind(a, tp.Term(a).Value)
	case 3:
		ps.Bind(graph.PosO, tp.O.Value)
		ps.Bind(graph.PosP, tp.P.Value)
		ps.Bind(graph.PosS, tp.S.Value)
	}
	return ps
}

// Count returns the number of triples matching the pattern under the
// current bindings — the paper's on-the-fly statistic c(t)·n (Section 4.3).
func (ps *PatternState) Count() int {
	if ps.hi < ps.lo {
		return 0
	}
	return ps.hi - ps.lo
}

// Empty reports whether no triples match under the current bindings.
func (ps *PatternState) Empty() bool { return ps.Count() == 0 }

// Bound returns how many positions are currently bound.
func (ps *PatternState) Bound() int { return ps.bound }

// runStart returns the first position of the bound run (only meaningful
// when bound >= 1).
func (ps *PatternState) runStart() graph.Position { return ps.zone.Start() }

// direction classifies how position pos relates to the current run:
// backward (pos cyclically precedes the run start), forward (pos follows
// the run's last position and the run has length 1), or initial (nothing
// bound yet).
type direction int

const (
	dirInitial direction = iota
	dirBackward
	dirForward
)

//ringlint:hotpath
func (ps *PatternState) classify(pos graph.Position) direction {
	if ps.bound == 0 {
		return dirInitial
	}
	start := ps.runStart()
	if pos == start.Prev() {
		return dirBackward
	}
	if ps.bound == 1 && pos == start.Next() {
		return dirForward
	}
	panic(fmt.Sprintf("ring: position %v is not adjacent to the bound run (start %v, len %d)",
		pos, start, ps.bound))
}

// Leap returns the smallest constant c' >= c that can bind position pos so
// that the pattern still has matches, and whether one exists. pos must be
// an unbound position; with arity 3 it is always adjacent to the bound run,
// so leap is supported with no restriction on the order constants were
// bound in — the property that lets one ring replace all six orders.
//
//ringlint:hotpath
func (ps *PatternState) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	v, ok := ps.leap(pos, c)
	if ringdebugEnabled && ok {
		ps.debugCheckLeap(pos, c, v)
	}
	return v, ok
}

// leap dispatches the three cases of Lemma 3.7 by the direction of pos
// relative to the bound run.
//
//ringlint:hotpath
func (ps *PatternState) leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	if ps.Empty() && ps.bound > 0 {
		return 0, false
	}
	switch ps.classify(pos) {
	case dirInitial:
		// All of the zone's first symbols are candidates: binary search the
		// C array for the next non-empty block.
		return ps.r.nextOccupied(ZoneOf(pos), c)
	case dirBackward:
		// Range-next-value on the zone's BWT column (Section 2.3.4).
		v, ok := ps.r.cols[ps.zone].RangeNextValue(ps.lo, ps.hi, uint64(c))
		return graph.ID(v), ok
	default: // dirForward
		return ps.leapForward(pos, c)
	}
}

// leapForward implements the forward case of Lemma 3.7: the run is a single
// bound symbol d = firstVal, and we search the smallest c' >= c that follows
// d in some rotation. In the zone starting at pos, whose column stores the
// symbols preceding pos (i.e. symbols of the run's type), we locate the
// first occurrence of d at or after C[c] with one rank and one select, and
// map it back to its block with a binary search on C.
//
//ringlint:hotpath allow-dispatch -- C-array accesses dispatch on the packed/sparse representation
func (ps *PatternState) leapForward(pos graph.Position, c graph.ID) (graph.ID, bool) {
	nz := ZoneOf(pos)
	if c >= ps.r.alphabetOf(nz) {
		return 0, false
	}
	col := ps.r.cols[nz]
	cArr := ps.r.c[nz]
	d := uint64(ps.firstVal)
	before := col.Rank(d, int(cArr.Get(int(c))))
	q := col.Select(d, before+1)
	if q < 0 {
		return 0, false
	}
	// Find c' with C[c'] <= q < C[c'+1]: the first index with value > q,
	// minus one.
	j := cArr.SearchPrefix(uint64(q) + 1)
	return graph.ID(j - 1), true
}

// Bind fixes position pos to constant c, updating the range. The previous
// state is pushed and can be restored with Unbind. Binding a value for
// which Leap did not vouch is allowed and simply yields an empty range.
//
//ringlint:hotpath allow-dispatch -- C-array accesses dispatch on the packed/sparse representation
func (ps *PatternState) Bind(pos graph.Position, c graph.ID) {
	ps.frames = append(ps.frames, frame{ps.zone, ps.lo, ps.hi, ps.bound, ps.firstVal})
	switch ps.classify(pos) {
	case dirInitial:
		ps.zone = ZoneOf(pos)
		ps.lo, ps.hi = ps.r.CRange(ps.zone, c)
		ps.firstVal = c
		ps.bound = 1
	case dirBackward:
		// LF-step: the run start moves back to pos and the zone changes.
		nz := ZoneOf(pos)
		if c >= ps.r.alphabetOf(nz) {
			ps.lo, ps.hi = 0, 0
		} else {
			col := ps.r.cols[ps.zone]
			base := int(ps.r.c[nz].Get(int(c)))
			rlo, rhi := col.Rank2(uint64(c), ps.lo, ps.hi)
			ps.lo, ps.hi = base+rlo, base+rhi
		}
		ps.zone = nz
		ps.firstVal = c
		ps.bound++
	default: // dirForward
		// Stay in the current zone; narrow to the sub-block whose second
		// symbol is c, counted through the next zone's column.
		nz := ZoneOf(pos)
		if c >= ps.r.alphabetOf(nz) {
			ps.lo, ps.hi = 0, 0
		} else {
			col := ps.r.cols[nz]
			cArr := ps.r.c[nz]
			d := uint64(ps.firstVal)
			base := int(ps.r.c[ps.zone].Get(int(ps.firstVal)))
			k1, k2 := col.Rank2(d, int(cArr.Get(int(c))), int(cArr.Get(int(c)+1)))
			ps.lo, ps.hi = base+k1, base+k2
		}
		ps.bound++
	}
	if ringdebugEnabled {
		ps.debugCheckRange()
	}
}

// Fork returns an independent copy of the iterator for parallel
// evaluation (trieiter.Forkable): the mutable cursor — zone, range,
// binding stack — is copied, while the ring itself, being immutable
// after construction, is shared read-only across all forks. This holds
// for both the plain Ring and the C-Ring (the RRR decode tables are
// populated at package init).
func (ps *PatternState) Fork() trieiter.Iter {
	cp := *ps
	cp.frames = append([]frame(nil), ps.frames...)
	return &cp
}

// Unbind undoes the most recent Bind.
//
//ringlint:hotpath
func (ps *PatternState) Unbind() {
	if len(ps.frames) == 0 {
		panic("ring: Unbind with no bindings")
	}
	f := ps.frames[len(ps.frames)-1]
	ps.frames = ps.frames[:len(ps.frames)-1]
	ps.zone, ps.lo, ps.hi, ps.bound, ps.firstVal = f.zone, f.lo, f.hi, f.bound, f.firstVal
}

// CanEnumerate reports whether Enumerate(pos) is supported: the ring
// enumerates the distinct values of the position cyclically preceding the
// bound run (the lonely-variable case of Section 4.2).
func (ps *PatternState) CanEnumerate(pos graph.Position) bool {
	return ps.bound >= 1 && pos == ps.runStart().Prev()
}

// Enumerate reports, in increasing order, the distinct values that can bind
// the backward-adjacent position, in O(k log(σ/k)) total time for k values.
// It stops early if visit returns false.
func (ps *PatternState) Enumerate(pos graph.Position, visit func(graph.ID) bool) {
	if !ps.CanEnumerate(pos) {
		panic(fmt.Sprintf("ring: cannot enumerate position %v (run start %v, bound %d)",
			pos, ps.zone.Start(), ps.bound))
	}
	ps.r.cols[ps.zone].DistinctInRange(ps.lo, ps.hi, func(c uint64, _ int) bool {
		return visit(graph.ID(c))
	})
}
