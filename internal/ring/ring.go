// Package ring implements the paper's contribution: a BWT-based index that
// regards each subject–predicate–object triple as a cyclic bidirectional
// string of length 3, so that one index order supports worst-case-optimal
// Leapfrog TrieJoin over every triple-pattern shape (Section 3).
//
// # Representation
//
// Following Section 4.1, the bended BWT of the text T = s₁p₁o₁…sₙpₙoₙ$ is
// split into its three zones, each stored as a wavelet matrix over the
// original (unshifted) identifiers together with a per-zone C array:
//
//   - Zone SPO: rotations starting at subjects, ordered by (s,p,o). The
//     stored column is the cyclically preceding symbol, the object: BWT_o.
//     C_s[c] counts triples with subject < c.
//   - Zone POS: rotations starting at predicates, ordered by (p,o,s); the
//     stored column is the subject: BWT_s. C_p[c] counts triples with
//     predicate < c.
//   - Zone OSP: rotations starting at objects, ordered by (o,s,p); the
//     stored column is the predicate: BWT_p. C_o[c] counts triples with
//     object < c.
//
// An LF-step from zone SPO leads to zone OSP (binding the object that
// precedes the subject), from OSP to POS, and from POS to SPO — the
// "backward" direction o ← s, p ← o, s ← p. Because the rotations with the
// same first symbol appear in the same relative order in consecutive zones,
// the standard LF formula C[c] + rank_c works zone to zone (Lemma 3.3).
//
// The index replaces the raw data: triple i is recovered with two LF-steps
// (Theorem 3.4), and the whole structure occupies |G| + o(|G|) bits with
// plain bitvectors, or compressed space with RRR bitvectors (the C-Ring).
package ring

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/bits"
	"repro/internal/graph"
	"repro/internal/intvec"
	"repro/internal/wavelet"
)

// Zone identifies one of the three BWT zones by the position its rotations
// start with.
type Zone int

// The three zones. The value equals the graph.Position of the zone's first
// symbol, so ZoneOf(pos) is the identity conversion.
const (
	ZoneSPO Zone = Zone(graph.PosS) // ordered (s,p,o); column stores objects
	ZonePOS Zone = Zone(graph.PosP) // ordered (p,o,s); column stores subjects
	ZoneOSP Zone = Zone(graph.PosO) // ordered (o,s,p); column stores predicates
)

// ZoneOf returns the zone whose rotations start at pos.
func ZoneOf(pos graph.Position) Zone { return Zone(pos) }

// Start returns the position the zone's rotations start with.
func (z Zone) Start() graph.Position { return graph.Position(z) }

// String names the zone by its sort order.
func (z Zone) String() string {
	switch z {
	case ZoneSPO:
		return "spo"
	case ZonePOS:
		return "pos"
	case ZoneOSP:
		return "osp"
	}
	return fmt.Sprintf("Zone(%d)", int(z))
}

// Options configures the physical representation of the ring.
type Options struct {
	// Compress stores the wavelet-matrix bitvectors in RRR-compressed form
	// (the paper's C-Ring). Plain bitvectors otherwise (the paper's Ring).
	Compress bool
	// RRRBlock is the RRR block size (the paper's parameter b). 0 means 16.
	RRRBlock int
	// SparseC stores the C arrays as Elias-Fano bitvectors (the paper's
	// footnote 2) instead of packed integer arrays: smaller for large
	// alphabets, with select-based access.
	SparseC bool
}

// Ring is the immutable ring index of a graph.
type Ring struct {
	cols [3]*wavelet.Matrix // indexed by Zone: BWT_o, BWT_s, BWT_p
	c    [3]cArray          // indexed by Zone: C_s, C_p, C_o (len = alphabet+1)

	n     int
	numSO graph.ID
	numP  graph.ID
	opt   Options
}

// New builds the ring index of g. Construction sorts the triples three
// ways and builds three wavelet matrices; the zones are independent, so
// they are built concurrently (deterministic result — each zone depends
// only on the input). It runs in O(n log n) time and O(n) words of
// working space per zone.
func New(g *graph.Graph, opt Options) *Ring {
	ts := g.Triples() // already sorted (s,p,o)
	n := len(ts)
	r := &Ring{n: n, numSO: g.NumSO(), numP: g.NumP(), opt: opt}

	wopt := wavelet.Options{Compress: opt.Compress, RRRBlock: opt.RRRBlock}

	var wg sync.WaitGroup
	wg.Add(3)

	// Zone SPO: triples sorted by (s,p,o); column = objects; C over subjects.
	go func() {
		defer wg.Done()
		col := make([]uint64, n)
		for i, t := range ts {
			col[i] = uint64(t.O)
		}
		r.cols[ZoneSPO] = wavelet.New(col, uint64(r.numSO), wopt)
		r.c[ZoneSPO] = makeC(buildC(ts, graph.PosS, int(r.numSO)), opt)
	}()

	// Zone POS: sorted by (p,o,s); column = subjects; C over predicates.
	go func() {
		defer wg.Done()
		pos := make([]graph.Triple, n)
		copy(pos, ts)
		sort.Slice(pos, func(i, j int) bool {
			a, b := pos[i], pos[j]
			if a.P != b.P {
				return a.P < b.P
			}
			if a.O != b.O {
				return a.O < b.O
			}
			return a.S < b.S
		})
		col := make([]uint64, n)
		for i, t := range pos {
			col[i] = uint64(t.S)
		}
		r.cols[ZonePOS] = wavelet.New(col, uint64(r.numSO), wopt)
		r.c[ZonePOS] = makeC(buildC(pos, graph.PosP, int(r.numP)), opt)
	}()

	// Zone OSP: sorted by (o,s,p); column = predicates; C over objects.
	go func() {
		defer wg.Done()
		osp := make([]graph.Triple, n)
		copy(osp, ts)
		sort.Slice(osp, func(i, j int) bool {
			a, b := osp[i], osp[j]
			if a.O != b.O {
				return a.O < b.O
			}
			if a.S != b.S {
				return a.S < b.S
			}
			return a.P < b.P
		})
		col := make([]uint64, n)
		for i, t := range osp {
			col[i] = uint64(t.P)
		}
		r.cols[ZoneOSP] = wavelet.New(col, uint64(r.numP), wopt)
		r.c[ZoneOSP] = makeC(buildC(osp, graph.PosO, int(r.numSO)), opt)
	}()

	wg.Wait()
	return r
}

// buildC computes the cumulative counts over the first symbol of the
// zone-ordered triples: C[c] = number of triples whose symbol at pos is < c.
func buildC(sorted []graph.Triple, pos graph.Position, alphabet int) []uint64 {
	counts := make([]uint64, alphabet+1)
	for _, t := range sorted {
		var v graph.ID
		switch pos {
		case graph.PosS:
			v = t.S
		case graph.PosP:
			v = t.P
		case graph.PosO:
			v = t.O
		}
		counts[v+1]++
	}
	for i := 1; i <= alphabet; i++ {
		counts[i] += counts[i-1]
	}
	return counts
}

// makeC chooses the C-array representation per the options.
func makeC(counts []uint64, opt Options) cArray {
	if opt.SparseC {
		return newSparseC(counts)
	}
	return packedC{intvec.New(counts)}
}

// Len returns the number of indexed triples.
func (r *Ring) Len() int { return r.n }

// NumSO returns the size of the subject/object identifier space.
func (r *Ring) NumSO() graph.ID { return r.numSO }

// NumP returns the size of the predicate identifier space.
func (r *Ring) NumP() graph.ID { return r.numP }

// Column returns the wavelet matrix storing the given zone's BWT column.
func (r *Ring) Column(z Zone) *wavelet.Matrix { return r.cols[z] }

// alphabetOf returns the size of the ID space of the symbols that start
// zone z's rotations.
//
//ringlint:hotpath
func (r *Ring) alphabetOf(z Zone) graph.ID {
	if z == ZonePOS {
		return r.numP
	}
	return r.numSO
}

// CRange returns [lo, hi): the positions in zone z whose rotations start
// with constant c. This is the b=1 case of Lemma 3.6 and also the on-the-fly
// cardinality statistic of Section 4.3 (hi-lo is the number of matches).
//
//ringlint:hotpath allow-dispatch -- C-array accesses dispatch on the packed/sparse representation
func (r *Ring) CRange(z Zone, c graph.ID) (lo, hi int) {
	if c >= r.alphabetOf(z) {
		return 0, 0
	}
	return int(r.c[z].Get(int(c))), int(r.c[z].Get(int(c) + 1))
}

// nextOccupied returns the smallest c' >= c whose CRange in zone z is
// non-empty, in O(log U) time by binary search on the C array.
//
//ringlint:hotpath allow-dispatch -- C-array accesses dispatch on the packed/sparse representation
func (r *Ring) nextOccupied(z Zone, c graph.ID) (graph.ID, bool) {
	if c >= r.alphabetOf(z) {
		return 0, false
	}
	base := r.c[z].Get(int(c))
	// Smallest index j with C[j] > base; then c' = j-1 has C[c'] <= base < C[c'+1].
	j := r.c[z].SearchPrefix(base + 1)
	if j >= r.c[z].Len() {
		return 0, false
	}
	return graph.ID(j - 1), true
}

// Triple returns the i-th triple in (s,p,o) order, 0 <= i < Len(),
// reconstructed from the index alone with two LF-steps (Theorem 3.4: the
// ring replaces the raw data).
func (r *Ring) Triple(i int) graph.Triple {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("ring: Triple(%d) out of range [0,%d)", i, r.n))
	}
	o := r.cols[ZoneSPO].Access(i)
	j := r.lfPos(ZoneOSP, o, r.cols[ZoneSPO].Rank(o, i))
	p := r.cols[ZoneOSP].Access(j)
	k := r.lfPos(ZonePOS, p, r.cols[ZoneOSP].Rank(p, j))
	s := r.cols[ZonePOS].Access(k)
	return graph.Triple{S: graph.ID(s), P: graph.ID(p), O: graph.ID(o)}
}

// lfPos computes the LF-step target C[z][c] + rk, clamped into [0, n).
// On a well-formed index the position is always in range; a corrupt
// (viewed) payload can push it out, and Access would panic.
//
//ringlint:hotpath allow-dispatch -- C-array accesses dispatch on the packed/sparse representation
func (r *Ring) lfPos(z Zone, c uint64, rk int) int {
	j := rk
	if int64(c) < int64(r.c[z].Len()) {
		j += int(r.c[z].Get(int(c)))
	}
	if j < 0 || j >= r.n {
		return 0
	}
	return j
}

// LFCycleCheck verifies Lemma 3.3 for rotation i of zone SPO: three
// LF-steps return to i. It is exported for tests and diagnostics.
func (r *Ring) LFCycleCheck(i int) bool {
	o := r.cols[ZoneSPO].Access(i)
	j := r.lfPos(ZoneOSP, o, r.cols[ZoneSPO].Rank(o, i))
	p := r.cols[ZoneOSP].Access(j)
	k := r.lfPos(ZonePOS, p, r.cols[ZoneOSP].Rank(p, j))
	s := r.cols[ZonePOS].Access(k)
	back := r.lfPos(ZoneSPO, s, r.cols[ZonePOS].Rank(s, k))
	return back == i
}

// Triples reconstructs the full sorted triple list from the index.
func (r *Ring) Triples() []graph.Triple {
	out := make([]graph.Triple, r.n)
	for i := range out {
		out[i] = r.Triple(i)
	}
	return out
}

// SizeBytes returns the total in-memory footprint of the index: the three
// wavelet matrices plus the three C arrays.
func (r *Ring) SizeBytes() int {
	total := 64
	for z := Zone(0); z < 3; z++ {
		total += r.cols[z].SizeBytes() + r.c[z].SizeBytes()
	}
	return total
}

// BytesPerTriple returns the space in bytes per indexed triple, the unit
// used throughout the paper's Tables 1 and 2.
func (r *Ring) BytesPerTriple() float64 {
	if r.n == 0 {
		return 0
	}
	return float64(r.SizeBytes()) / float64(r.n)
}

// --- serialization ---

const magic = uint64(0x52494e4733425754) // "RING3BWT"

// WriteTo serializes the full index.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	var total int64
	if err := writeU64s(w, &total, magic, uint64(r.n), uint64(r.numSO), uint64(r.numP)); err != nil {
		return total, err
	}
	for z := Zone(0); z < 3; z++ {
		n, err := r.cols[z].WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
		n, err = r.c[z].writeTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read deserializes a ring written by WriteTo.
func Read(rd io.Reader) (*Ring, error) {
	return Decode(bits.NewReaderSource(rd, "ring"))
}

// View deserializes a ring from an in-memory buffer — typically a
// memory-mapped index file. The bulk word payloads of every zone
// (wavelet levels, C arrays) alias b when the host is little-endian and
// b is 8-byte aligned; only the o(n) rank/select directories are rebuilt
// on the heap. Returns the number of bytes consumed.
func View(b []byte) (*Ring, int, error) {
	src := bits.NewByteSource(b, "ring")
	r, err := Decode(src)
	if err != nil {
		return nil, 0, err
	}
	return r, src.Offset(), nil
}

// Decode deserializes a ring from any Source.
func Decode(src bits.Source) (*Ring, error) {
	hdr, err := src.U64s(4)
	if err != nil {
		return nil, err
	}
	if hdr[0] != magic {
		return nil, errors.New("ring: bad magic")
	}
	if hdr[2] > uint64(graph.MaxID) || hdr[3] > uint64(graph.MaxID) {
		return nil, errors.New("ring: alphabet size overflows the ID space")
	}
	r := &Ring{n: int(hdr[1]), numSO: graph.ID(hdr[2]), numP: graph.ID(hdr[3])}
	if r.n < 0 {
		return nil, errors.New("ring: corrupt header")
	}
	for z := Zone(0); z < 3; z++ {
		if r.cols[z], err = wavelet.Decode(src); err != nil {
			return nil, fmt.Errorf("ring: zone %v column: %w", z, err)
		}
		if r.c[z], err = decodeCArray(src); err != nil {
			return nil, fmt.Errorf("ring: zone %v C array: %w", z, err)
		}
		if r.cols[z].Len() != r.n {
			return nil, errors.New("ring: zone length mismatch")
		}
		wantC := int(r.numSO) + 1
		if z == ZonePOS {
			wantC = int(r.numP) + 1
		}
		if r.c[z].Len() != wantC {
			return nil, errors.New("ring: C array length mismatch")
		}
	}
	return r, nil
}

func writeU64s(w io.Writer, total *int64, vs ...uint64) error {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(v >> (8 * j))
		}
	}
	n, err := w.Write(buf)
	*total += int64(n)
	return err
}
