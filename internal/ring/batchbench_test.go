package ring

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// Adversarial multi-pattern enumeration benchmarks: the shapes where the
// batched radix-intersection lane and the scalar leapfrog diverge most —
// dense contiguous candidate runs (one shared descent amortizes across
// thousands of values), sparse high-ID tails (subtree pruning skips the
// empty space leapfrog has to probe), and backward-direction sweeps (a
// run of range successors from one pattern). `make bench-batch` records
// the scalar-vs-batched sweep to BENCH_batch_leap.json via the
// BENCH_BATCH_JSON hook in TestRecordBatchLeapBench.

// adversarialCase describes one join-enumeration scenario: k patterns
// anchored at constant subjects, joining on their object variable.
type adversarialCase struct {
	name     string
	build    func() *graph.Graph
	subjects []graph.ID
}

// runGraph builds a graph where each listed subject s_i carries the
// objects {base_i + j*stride_i : j < count_i} under predicate 0, plus
// background noise so the ranges are not the whole column.
func runGraph(numSO graph.ID, specs [][3]int) *graph.Graph {
	var ts []graph.Triple
	for i, sp := range specs {
		base, stride, count := sp[0], sp[1], sp[2]
		for j := 0; j < count; j++ {
			ts = append(ts, graph.Triple{S: graph.ID(i), P: 0, O: graph.ID(base + j*stride)})
		}
	}
	rng := rand.New(rand.NewSource(91))
	for j := 0; j < 20_000; j++ {
		ts = append(ts, graph.Triple{
			S: graph.ID(100 + rng.Intn(1000)),
			P: graph.ID(rng.Intn(4)),
			O: graph.ID(rng.Intn(int(numSO))),
		})
	}
	return graph.NewWithDomains(ts, numSO, 4)
}

func adversarialCases() []adversarialCase {
	return []adversarialCase{
		{
			// Two subjects sharing a ~39k-value dense contiguous run.
			name:     "dense-runs-k2",
			build:    func() *graph.Graph { return runGraph(120_000, [][3]int{{0, 1, 40_000}, {500, 1, 40_000}}) },
			subjects: []graph.ID{0, 1},
		},
		{
			// Three-way dense overlap.
			name: "dense-runs-k3",
			build: func() *graph.Graph {
				return runGraph(120_000, [][3]int{{0, 1, 40_000}, {500, 1, 40_000}, {1000, 1, 40_000}})
			},
			subjects: []graph.ID{0, 1, 2},
		},
		{
			// Sparse arithmetic progressions in the high-ID tail: the
			// intersection is tiny (lcm-spaced), most subtrees prune.
			name: "sparse-tail-k2",
			build: func() *graph.Graph {
				return runGraph(500_000, [][3]int{{200_000, 97, 3000}, {200_000, 89, 3000}})
			},
			subjects: []graph.ID{0, 1},
		},
		{
			// Large ranges, small random overlap — the selectivity shape
			// the engine's threshold heuristic targets.
			name: "selective-k2",
			build: func() *graph.Graph {
				rng := rand.New(rand.NewSource(92))
				var ts []graph.Triple
				for i := 0; i < 2; i++ {
					for j := 0; j < 8000; j++ {
						ts = append(ts, graph.Triple{S: graph.ID(i), P: 0, O: graph.ID(rng.Intn(600_000))})
					}
				}
				return graph.NewWithDomains(ts, 600_000, 4)
			},
			subjects: []graph.ID{0, 1},
		},
	}
}

func joinStates(r *Ring, subjects []graph.ID) ([]*PatternState, []graph.Position) {
	states := make([]*PatternState, len(subjects))
	positions := make([]graph.Position, len(subjects))
	for i, s := range subjects {
		states[i] = r.NewPatternState(graph.TP(graph.Const(s), graph.Var("p"), graph.Var("o")))
		positions[i] = graph.PosO
	}
	return states, positions
}

func BenchmarkJoinEnumerate(b *testing.B) {
	for _, tc := range adversarialCases() {
		g := tc.build()
		r := New(g, Options{})
		b.Run(tc.name+"/scalar", func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				states, positions := joinStates(r, tc.subjects)
				s += len(leapfrogJoin(states, positions))
			}
			sinkInt = s
		})
		b.Run(tc.name+"/batched", func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				states, positions := joinStates(r, tc.subjects)
				if !EnumerateJoin(states, positions, func(graph.ID) bool {
					s++
					return true
				}) {
					b.Fatal("EnumerateJoin unsupported")
				}
			}
			sinkInt = s
		})
	}
}

// BenchmarkBatchLeapSweep measures the backward-direction sweep: draining
// one pattern's object run through chunked BatchLeap calls versus the
// scalar Leap chain. This is the k=1 amortization (satellite case) rather
// than the k-way intersection.
func BenchmarkBatchLeapSweep(b *testing.B) {
	g := runGraph(120_000, [][3]int{{0, 3, 30_000}})
	for _, v := range []struct {
		name string
		opt  Options
	}{
		{"ring", Options{}},
		{"c-ring", Options{Compress: true, RRRBlock: 16}},
	} {
		r := New(g, v.opt)
		b.Run(v.name+"/scalar", func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				ps := r.NewPatternState(graph.TP(graph.Const(0), graph.Var("p"), graph.Var("o")))
				c := graph.ID(0)
				for {
					nxt, ok := ps.Leap(graph.PosO, c)
					if !ok {
						break
					}
					s++
					c = nxt + 1
				}
			}
			sinkInt = s
		})
		b.Run(v.name+"/batched", func(b *testing.B) {
			buf := make([]graph.ID, 0, 256)
			s := 0
			for i := 0; i < b.N; i++ {
				ps := r.NewPatternState(graph.TP(graph.Const(0), graph.Var("p"), graph.Var("o")))
				c := graph.ID(0)
				for {
					buf = ps.BatchLeap(graph.PosO, c, buf[:0])
					if len(buf) == 0 {
						break
					}
					s += len(buf)
					last := buf[len(buf)-1]
					if len(buf) < cap(buf) || last == graph.MaxID {
						break
					}
					c = last + 1
				}
			}
			sinkInt = s
		})
	}
}

// TestRecordBatchLeapBench measures batched-vs-scalar enumeration on the
// adversarial cases plus the k=1 sweep and writes BENCH_batch_leap.json
// (geomean speedup and per-case rows). Gated on the BENCH_BATCH_JSON env
// var; see `make bench-batch`.
func TestRecordBatchLeapBench(t *testing.T) {
	path := os.Getenv("BENCH_BATCH_JSON")
	if path == "" {
		t.Skip("set BENCH_BATCH_JSON to record the batched-leap sweep")
	}
	type row struct {
		Case     string  `json:"case"`
		K        int     `json:"k"`
		Values   int     `json:"values"`
		ScalarNs float64 `json:"scalar_ns_per_op"`
		BatchNs  float64 `json:"batched_ns_per_op"`
		Speedup  float64 `json:"speedup"`
	}
	var rows []row
	for _, tc := range adversarialCases() {
		g := tc.build()
		r := New(g, Options{})
		states, positions := joinStates(r, tc.subjects)
		values := len(leapfrogJoin(states, positions))
		scalar := testing.Benchmark(func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				st, ps := joinStates(r, tc.subjects)
				s += len(leapfrogJoin(st, ps))
			}
			sinkInt = s
		})
		batched := testing.Benchmark(func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				st, ps := joinStates(r, tc.subjects)
				EnumerateJoin(st, ps, func(graph.ID) bool {
					s++
					return true
				})
			}
			sinkInt = s
		})
		sc := float64(scalar.NsPerOp())
		ba := float64(batched.NsPerOp())
		rows = append(rows, row{
			Case: tc.name, K: len(tc.subjects), Values: values,
			ScalarNs: sc, BatchNs: ba, Speedup: math.Round(sc/ba*100) / 100,
		})
		t.Logf("%-16s k=%d values=%-6d scalar=%.0fns batched=%.0fns speedup=%.2fx",
			tc.name, len(tc.subjects), values, sc, ba, sc/ba)
	}
	logSpeedup := 0.0
	for _, r := range rows {
		logSpeedup += math.Log(r.Speedup)
	}
	geomean := math.Exp(logSpeedup / float64(len(rows)))
	t.Logf("geomean speedup: %.2fx", geomean)
	out := struct {
		Workload string  `json:"workload"`
		NumCPU   int     `json:"num_cpu"`
		Geomean  float64 `json:"geomean_speedup"`
		Note     string  `json:"note"`
		Rows     []row   `json:"results"`
	}{
		Workload: "multi-pattern object-variable enumeration, plain ring, constant-subject stars",
		NumCPU:   runtime.NumCPU(),
		Geomean:  math.Round(geomean*100) / 100,
		Note:     "scalar = round-robin leapfrog over PatternState.Leap; batched = ring.EnumerateJoin (one wavelet.IntersectRanges descent carrying all ranges)",
		Rows:     rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (geomean %.2fx)\n", path, geomean)
}
