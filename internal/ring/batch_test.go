package ring

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

// leapfrogJoin is the scalar oracle for EnumerateJoin: the classic
// round-robin leapfrog over the states' Leap operations.
func leapfrogJoin(states []*PatternState, positions []graph.Position) []graph.ID {
	var out []graph.ID
	c := graph.ID(0)
outer:
	for {
		for i := range states {
			v, ok := states[i].Leap(positions[i], c)
			if !ok {
				return out
			}
			if v != c {
				c = v
				continue outer
			}
		}
		out = append(out, c)
		if c == graph.MaxID {
			return out
		}
		c++
	}
}

func batchTestRings(t testing.TB) (*graph.Graph, []*Ring) {
	rng := rand.New(rand.NewSource(71))
	g := testutil.RandomGraph(rng, 6000, 900, 5)
	return g, []*Ring{
		New(g, Options{}),
		New(g, Options{Compress: true, RRRBlock: 16}),
	}
}

func TestLeapRunDirections(t *testing.T) {
	g, rings := batchTestRings(t)
	s0 := g.Triples()[0].S
	for _, r := range rings {
		// Nothing bound: no run.
		free := r.NewPatternState(graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o")))
		if _, ok := free.LeapRun(graph.PosS); ok {
			t.Fatal("LeapRun on an unbound pattern should not apply")
		}
		// One constant: backward position has a run, forward does not.
		ps := r.NewPatternState(graph.TP(graph.Const(s0), graph.Var("p"), graph.Var("o")))
		mr, ok := ps.LeapRun(graph.PosO)
		if !ok || mr.Hi <= mr.Lo || mr.M == nil {
			t.Fatalf("LeapRun(PosO) = %+v, %v; want a non-empty backward run", mr, ok)
		}
		if _, ok := ps.LeapRun(graph.PosP); ok {
			t.Fatal("LeapRun(PosP) is the forward direction and should not apply")
		}
		// Fully bound: nothing to leap.
		t0 := g.Triples()[0]
		full := r.NewPatternState(graph.TP(graph.Const(t0.S), graph.Const(t0.P), graph.Const(t0.O)))
		if _, ok := full.LeapRun(graph.PosO); ok {
			t.Fatal("LeapRun on a fully bound pattern should not apply")
		}
	}
}

func TestBatchLeapMatchesScalar(t *testing.T) {
	g, rings := batchTestRings(t)
	rng := rand.New(rand.NewSource(72))
	ts := g.Triples()
	for _, r := range rings {
		for trial := 0; trial < 60; trial++ {
			tr := ts[rng.Intn(len(ts))]
			// Backward direction (batched descent) and forward direction
			// (scalar fallback inside BatchLeap).
			cases := []struct {
				ps  *PatternState
				pos graph.Position
			}{
				{r.NewPatternState(graph.TP(graph.Const(tr.S), graph.Var("p"), graph.Var("o"))), graph.PosO},
				{r.NewPatternState(graph.TP(graph.Const(tr.S), graph.Var("p"), graph.Var("o"))), graph.PosP},
				{r.NewPatternState(graph.TP(graph.Const(tr.S), graph.Const(tr.P), graph.Var("o"))), graph.PosO},
			}
			for _, tc := range cases {
				c := graph.ID(rng.Intn(1000))
				max := rng.Intn(12) + 1
				got := tc.ps.BatchLeap(tc.pos, c, make([]graph.ID, 0, max))
				want := make([]graph.ID, 0, max)
				cc := c
				for len(want) < max {
					v, ok := tc.ps.Leap(tc.pos, cc)
					if !ok {
						break
					}
					want = append(want, v)
					if v == graph.MaxID {
						break
					}
					cc = v + 1
				}
				if len(got) != len(want) {
					t.Fatalf("BatchLeap(%v, %d) cap %d: got %v want %v", tc.pos, c, max, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("BatchLeap(%v, %d) cap %d: got %v want %v", tc.pos, c, max, got, want)
					}
				}
			}
		}
	}
}

func TestEnumerateJoinMatchesLeapfrog(t *testing.T) {
	g, rings := batchTestRings(t)
	rng := rand.New(rand.NewSource(73))
	ts := g.Triples()
	for _, r := range rings {
		for trial := 0; trial < 40; trial++ {
			k := rng.Intn(3) + 2
			states := make([]*PatternState, k)
			positions := make([]graph.Position, k)
			for i := 0; i < k; i++ {
				tr := ts[rng.Intn(len(ts))]
				if i%2 == 0 {
					// Join variable as object: (s, ?p, ?v) over the SPO column.
					states[i] = r.NewPatternState(graph.TP(graph.Const(tr.S), graph.Var("p"), graph.Var("v")))
					positions[i] = graph.PosO
				} else {
					// Join variable as subject: (?v, p, ?o) over the POS column.
					states[i] = r.NewPatternState(graph.TP(graph.Var("v"), graph.Const(tr.P), graph.Var("o")))
					positions[i] = graph.PosS
				}
			}
			var got []graph.ID
			if !EnumerateJoin(states, positions, func(v graph.ID) bool {
				got = append(got, v)
				return true
			}) {
				t.Fatalf("EnumerateJoin unexpectedly unsupported (trial %d)", trial)
			}
			want := leapfrogJoin(states, positions)
			if len(got) != len(want) {
				t.Fatalf("EnumerateJoin: got %d values, leapfrog %d (k=%d)", len(got), len(want), k)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("EnumerateJoin[%d] = %d, leapfrog %d", i, got[i], want[i])
				}
			}
		}
	}
}

func TestEnumerateJoinFallbacks(t *testing.T) {
	g, rings := batchTestRings(t)
	t0 := g.Triples()[0]
	r := rings[0]
	// Width mismatch: the OSP column codes predicates (σ = numP = 5,
	// 3 levels) while the POS column codes subjects (σ = numSO = 900,
	// 10 levels); the two cannot be carried down one descent.
	bst := r.NewPatternState(graph.TP(graph.Var("v"), graph.Const(t0.P), graph.Var("o")))
	c := r.NewPatternState(graph.TP(graph.Var("s"), graph.Var("v"), graph.Const(t0.O))) // run = O, backward = ?v (predicate, OSP column)
	if mr, ok := c.LeapRun(graph.PosP); !ok {
		t.Skipf("predicate LeapRun unsupported: %+v", mr)
	}
	if EnumerateJoin([]*PatternState{c, bst}, []graph.Position{graph.PosP, graph.PosS}, func(graph.ID) bool { return true }) {
		t.Fatal("EnumerateJoin should decline a width mismatch between predicate and subject columns")
	}
	// Unsupported direction (forward leap) declines too.
	fwd := r.NewPatternState(graph.TP(graph.Const(t0.S), graph.Var("p"), graph.Var("o")))
	if EnumerateJoin([]*PatternState{fwd, bst}, []graph.Position{graph.PosP, graph.PosS}, func(graph.ID) bool { return true }) {
		t.Fatal("EnumerateJoin should decline a forward-direction member")
	}
	// Empty or mismatched argument lists decline.
	if EnumerateJoin(nil, nil, func(graph.ID) bool { return true }) {
		t.Fatal("EnumerateJoin(nil) should decline")
	}
}
