package ring

import (
	"fmt"

	"repro/internal/graph"
)

// Runtime assertion hooks for the ringdebug build tag, called behind
// `if ringdebugEnabled { ... }` so normal builds eliminate them entirely.

// debugCheckLeap asserts the contract of Lemma 3.7 on a successful leap:
// the returned candidate is ≥ the cursor and inside the alphabet of the
// leapt position.
func (ps *PatternState) debugCheckLeap(pos graph.Position, c, v graph.ID) {
	if v < c {
		panic(fmt.Sprintf("ringdebug: ring: Leap(%v, %d) returned %d < cursor (ordering contract violated)", pos, c, v))
	}
	if a := ps.r.alphabetOf(ZoneOf(pos)); v >= a {
		panic(fmt.Sprintf("ringdebug: ring: Leap(%v, %d) returned %d outside alphabet [0,%d)", pos, c, v, a))
	}
}

// debugCheckBatchLeap asserts the batched leap is indistinguishable from
// the scalar one: the appended values must equal the chain of Leap calls
// starting at c (strictly increasing by construction of the chain).
func (ps *PatternState) debugCheckBatchLeap(pos graph.Position, c graph.ID, buf []graph.ID) {
	want := c
	for i, v := range buf {
		sv, ok := ps.Leap(pos, want)
		if !ok || sv != v {
			panic(fmt.Sprintf("ringdebug: ring: BatchLeap(%v, %d)[%d] = %d disagrees with scalar Leap (%d, %v)",
				pos, c, i, v, sv, ok))
		}
		if v == graph.MaxID {
			return
		}
		want = v + 1
	}
}

// debugCheckRange asserts the BWT range stays well-formed after a Bind:
// 0 <= lo <= hi <= n.
func (ps *PatternState) debugCheckRange() {
	if ps.lo < 0 || ps.hi < ps.lo || ps.hi > ps.r.n {
		panic(fmt.Sprintf("ringdebug: ring: range [%d,%d) outside [0,%d] after Bind", ps.lo, ps.hi, ps.r.n))
	}
}
