package ring

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestStatsPaperGraph(t *testing.T) {
	r := New(testutil.PaperGraph(), Options{})
	st := r.Stats()
	if st.Triples != 13 {
		t.Errorf("Triples = %d, want 13", st.Triples)
	}
	// Subjects: Bohr, Thomson, Wheeler, Thorne, Nobel = 5.
	if st.DistinctSubjects != 5 {
		t.Errorf("DistinctSubjects = %d, want 5", st.DistinctSubjects)
	}
	if st.DistinctPredicates != 3 {
		t.Errorf("DistinctPredicates = %d, want 3", st.DistinctPredicates)
	}
	// Objects: everyone except Nobel = 5.
	if st.DistinctObjects != 5 {
		t.Errorf("DistinctObjects = %d, want 5", st.DistinctObjects)
	}
}

func TestStatsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	g := testutil.RandomGraph(rng, 400, 50, 6)
	r := New(g, Options{})
	st := r.Stats()
	subj, pred, obj := map[graph.ID]bool{}, map[graph.ID]bool{}, map[graph.ID]bool{}
	degS, degO, degP := map[graph.ID]int{}, map[graph.ID]int{}, map[graph.ID]int{}
	for _, tr := range g.Triples() {
		subj[tr.S], pred[tr.P], obj[tr.O] = true, true, true
		degS[tr.S]++
		degO[tr.O]++
		degP[tr.P]++
	}
	if st.DistinctSubjects != len(subj) || st.DistinctPredicates != len(pred) || st.DistinctObjects != len(obj) {
		t.Fatalf("Stats = %+v, want (%d,%d,%d)", st, len(subj), len(pred), len(obj))
	}
	for s := graph.ID(0); s < 50; s++ {
		if got := r.SubjectDegree(s); got != degS[s] {
			t.Fatalf("SubjectDegree(%d) = %d, want %d", s, got, degS[s])
		}
		if got := r.ObjectDegree(s); got != degO[s] {
			t.Fatalf("ObjectDegree(%d) = %d, want %d", s, got, degO[s])
		}
	}
	for p := graph.ID(0); p < 6; p++ {
		if got := r.PredicateCount(p); got != degP[p] {
			t.Fatalf("PredicateCount(%d) = %d, want %d", p, got, degP[p])
		}
	}
}

func TestPatternCount(t *testing.T) {
	r := New(testutil.PaperGraph(), Options{})
	if got := r.PatternCount(graph.TP(graph.Const(5), graph.Var("p"), graph.Var("o"))); got != 9 {
		t.Errorf("PatternCount(Nobel,?,?) = %d, want 9", got)
	}
	if got := r.PatternCount(graph.TP(graph.Const(5), graph.Const(2), graph.Var("o"))); got != 4 {
		t.Errorf("PatternCount(Nobel,win,?) = %d, want 4", got)
	}
}

func TestTopPredicates(t *testing.T) {
	r := New(testutil.PaperGraph(), Options{})
	top := r.TopPredicates(2)
	// nom (1) has 5; adv (0) and win (2) have 4 each (ties by id: adv).
	if len(top) != 2 || top[0].P != 1 || top[0].Count != 5 {
		t.Fatalf("TopPredicates = %+v", top)
	}
	if top[1].P != 0 || top[1].Count != 4 {
		t.Fatalf("TopPredicates[1] = %+v", top[1])
	}
	// Asking for more than exist returns all.
	if got := r.TopPredicates(10); len(got) != 3 {
		t.Fatalf("TopPredicates(10) returned %d", len(got))
	}
}

func TestStatsEmptyRing(t *testing.T) {
	r := New(graph.New(nil), Options{})
	st := r.Stats()
	if st.Triples != 0 || st.DistinctSubjects != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if len(r.TopPredicates(3)) != 0 {
		t.Error("empty ring has top predicates")
	}
}
