package ring

import (
	"repro/internal/graph"
)

// Stats are index-wide statistics the ring answers from its C arrays and
// wavelet matrices without any profiling pass — the Section 4.3 property
// that the index doubles as its own statistics store.
type Stats struct {
	// Triples is the indexed edge count.
	Triples int
	// DistinctSubjects, DistinctPredicates and DistinctObjects count the
	// identifiers that actually occur in each role.
	DistinctSubjects, DistinctPredicates, DistinctObjects int
}

// Stats scans the C arrays once (O(U) time, no extra space) and returns
// the global statistics.
func (r *Ring) Stats() Stats {
	st := Stats{Triples: r.n}
	for z, out := range map[Zone]*int{
		ZoneSPO: &st.DistinctSubjects,
		ZonePOS: &st.DistinctPredicates,
		ZoneOSP: &st.DistinctObjects,
	} {
		c := r.c[z]
		prev := uint64(0)
		for i := 1; i < c.Len(); i++ {
			if v := c.Get(i); v > prev {
				*out++
				prev = v
			}
		}
	}
	return st
}

// PatternCount returns the number of triples matching the pattern's
// constants (its variables unconstrained) in O(log U) time — the
// cardinality statistic the variable ordering uses, exposed for external
// planners.
func (r *Ring) PatternCount(tp graph.TriplePattern) int {
	return r.NewPatternState(tp).Count()
}

// PredicateCount returns the number of triples with the given predicate,
// straight from C_p — the most common selectivity question in graph
// planning, answered in O(1) array lookups.
func (r *Ring) PredicateCount(p graph.ID) int {
	lo, hi := r.CRange(ZonePOS, p)
	return hi - lo
}

// SubjectDegree returns the out-degree of s (triples with subject s).
func (r *Ring) SubjectDegree(s graph.ID) int {
	lo, hi := r.CRange(ZoneSPO, s)
	return hi - lo
}

// ObjectDegree returns the in-degree of o (triples with object o).
func (r *Ring) ObjectDegree(o graph.ID) int {
	lo, hi := r.CRange(ZoneOSP, o)
	return hi - lo
}

// TopPredicates returns the k most frequent predicates with their counts,
// in decreasing count order (ties by identifier). It scans C_p once.
func (r *Ring) TopPredicates(k int) []PredicateStat {
	var out []PredicateStat
	for p := graph.ID(0); p < r.numP; p++ {
		cnt := r.PredicateCount(p)
		if cnt == 0 {
			continue
		}
		out = append(out, PredicateStat{P: p, Count: cnt})
	}
	// Partial selection sort is fine: k is small.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Count > out[best].Count ||
				(out[j].Count == out[best].Count && out[j].P < out[best].P) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// PredicateStat pairs a predicate with its triple count.
type PredicateStat struct {
	P     graph.ID
	Count int
}
