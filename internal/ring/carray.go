package ring

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/bits"
	"repro/internal/bitvector"
	"repro/internal/intvec"
)

// cArray is the per-zone cumulative-count structure: C[c] = number of
// triples whose zone-start symbol is < c, for c in [0, alphabet]. Two
// representations are provided, as in the paper:
//
//   - packed: a fixed-width integer array (the default);
//   - sparse: the footnote-2 bitvector D with ones at positions C[i]+i,
//     recovering C[i] as select1(D, i+1) - i — asymptotically smaller for
//     large alphabets (n + U + o(·) bits instead of U·log n).
type cArray interface {
	// Get returns C[i].
	Get(i int) uint64
	// SearchPrefix returns the smallest index j with C[j] >= x, or Len()
	// if none.
	SearchPrefix(x uint64) int
	// Len returns the number of entries (alphabet size + 1).
	Len() int
	// SizeBytes returns the in-memory footprint.
	SizeBytes() int
	writeTo(w io.Writer) (int64, error)
}

// packedC is the intvec-backed representation.
type packedC struct {
	*intvec.Vector
}

func (p packedC) Get(i int) uint64 { return p.Vector.Get(i) }

func (p packedC) writeTo(w io.Writer) (int64, error) {
	var total int64
	if err := writeU64s(w, &total, uint64(cTagPacked)); err != nil {
		return total, err
	}
	n, err := p.Vector.WriteTo(w)
	return total + n, err
}

// sparseC is the Elias–Fano representation of footnote 2.
type sparseC struct {
	d       *bitvector.Sparse
	entries int
}

func newSparseC(counts []uint64) sparseC {
	ones := make([]int, len(counts))
	for i, c := range counts {
		ones[i] = int(c) + i
	}
	universe := 1
	if len(ones) > 0 {
		universe = ones[len(ones)-1] + 1
	}
	return sparseC{d: bitvector.NewSparse(universe, ones), entries: len(counts)}
}

func (s sparseC) Get(i int) uint64 {
	p := s.d.Select1(i + 1)
	if p < 0 {
		panic(fmt.Sprintf("ring: C index %d out of range", i))
	}
	return uint64(p - i)
}

func (s sparseC) SearchPrefix(x uint64) int {
	// C is nondecreasing: binary search over the entries via select.
	return sort.Search(s.entries, func(j int) bool { return s.Get(j) >= x })
}

func (s sparseC) Len() int { return s.entries }

func (s sparseC) SizeBytes() int { return s.d.SizeBytes() + 16 }

func (s sparseC) writeTo(w io.Writer) (int64, error) {
	var total int64
	if err := writeU64s(w, &total, uint64(cTagSparse), uint64(s.entries)); err != nil {
		return total, err
	}
	n, err := s.d.WriteTo(w)
	return total + n, err
}

const (
	cTagPacked = 1
	cTagSparse = 2
)

// decodeCArray deserializes either representation from any Source.
func decodeCArray(src bits.Source) (cArray, error) {
	hdr, err := src.U64s(1)
	if err != nil {
		return nil, err
	}
	switch hdr[0] {
	case cTagPacked:
		v, err := intvec.Decode(src)
		if err != nil {
			return nil, err
		}
		return packedC{v}, nil
	case cTagSparse:
		meta, err := src.U64s(1)
		if err != nil {
			return nil, err
		}
		d, err := bitvector.DecodeSparse(src)
		if err != nil {
			return nil, err
		}
		// The entry count narrows to int; it must agree with the ones
		// actually present in D, or Get would select past the end.
		entries := int(meta[0])
		if entries < 0 || entries != d.Ones() {
			return nil, fmt.Errorf("ring: sparse C entry count %d disagrees with bitvector (%d ones)", meta[0], d.Ones())
		}
		return sparseC{d: d, entries: entries}, nil
	default:
		return nil, errors.New("ring: unknown C-array representation tag")
	}
}
