package ring

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

// Ring-level substrate benchmarks: the Leap / Bind / Enumerate operations
// the LTJ engine issues on the hot path, measured on both the plain Ring
// and the RRR-compressed C-Ring over the same random graph.

const (
	benchTriples = 200_000
	benchSO      = graph.ID(50_000)
	benchP       = graph.ID(64)
)

var sinkInt int

type benchRings struct {
	g     *graph.Graph
	plain *Ring
	cring *Ring
}

var (
	benchOnce sync.Once
	benchEnv  *benchRings
)

func loadBenchRings() *benchRings {
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(61))
		g := testutil.RandomGraph(rng, benchTriples, benchSO, benchP)
		benchEnv = &benchRings{
			g:     g,
			plain: New(g, Options{}),
			cring: New(g, Options{Compress: true, RRRBlock: 16}),
		}
	})
	return benchEnv
}

var benchVariants = []struct {
	name string
	get  func(*benchRings) *Ring
}{
	{"ring", func(e *benchRings) *Ring { return e.plain }},
	{"c-ring", func(e *benchRings) *Ring { return e.cring }},
}

// benchSubjects draws existing subject constants so patterns are non-empty.
func benchSubjects(g *graph.Graph, m int) []graph.ID {
	rng := rand.New(rand.NewSource(62))
	ts := g.Triples()
	out := make([]graph.ID, m)
	for i := range out {
		out[i] = ts[rng.Intn(len(ts))].S
	}
	return out
}

// BenchmarkLeapForward drives the forward case of Lemma 3.7: bind the
// subject of (s, ?p, ?o), then leap over predicates. Each leap is a
// wavelet Rank + Select pair — the op the select fast path targets.
func BenchmarkLeapForward(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchRings()
			r := v.get(e)
			subs := benchSubjects(e.g, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				ps := r.NewPatternState(graph.TriplePattern{
					S: graph.Const(subs[i&1023]), P: graph.Var("p"), O: graph.Var("o"),
				})
				c := graph.ID(0)
				for {
					nxt, ok := ps.Leap(graph.PosP, c)
					if !ok {
						break
					}
					s += int(nxt)
					c = nxt + 1
				}
			}
			sinkInt = s
		})
	}
}

// BenchmarkLeapBackward drives the backward case: range-next-value on the
// zone's wavelet column.
func BenchmarkLeapBackward(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchRings()
			r := v.get(e)
			subs := benchSubjects(e.g, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				ps := r.NewPatternState(graph.TriplePattern{
					S: graph.Const(subs[i&1023]), P: graph.Var("p"), O: graph.Var("o"),
				})
				c := graph.ID(0)
				for {
					nxt, ok := ps.Leap(graph.PosO, c)
					if !ok {
						break
					}
					s += int(nxt)
					c = nxt + 1
				}
			}
			sinkInt = s
		})
	}
}

// BenchmarkBindUnbind measures one LF-step (Bind backward) plus its undo.
func BenchmarkBindUnbind(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchRings()
			r := v.get(e)
			subs := benchSubjects(e.g, 1024)
			ts := e.g.Triples()
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				ps := r.NewPatternState(graph.TriplePattern{
					S: graph.Const(subs[i&1023]), P: graph.Var("p"), O: graph.Var("o"),
				})
				ps.Bind(graph.PosO, ts[i%len(ts)].O)
				s += ps.Count()
				ps.Unbind()
			}
			sinkInt = s
		})
	}
}

// BenchmarkEnumerate measures the lonely-variable reporting (DistinctInRange).
func BenchmarkEnumerate(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchRings()
			r := v.get(e)
			subs := benchSubjects(e.g, 1024)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				ps := r.NewPatternState(graph.TriplePattern{
					S: graph.Const(subs[i&1023]), P: graph.Var("p"), O: graph.Var("o"),
				})
				ps.Enumerate(graph.PosO, func(c graph.ID) bool {
					s += int(c)
					return true
				})
			}
			sinkInt = s
		})
	}
}
