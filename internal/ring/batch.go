package ring

// Batched leaping (DESIGN.md §13): the ring's side of the engine's
// radix-intersection lane. A backward leap reads the range successor of
// one contiguous BWT-column range, so (a) a *run* of leaps over the same
// bindings can share one pruned wavelet descent (BatchLeap), and (b) the
// candidate sets of several patterns joining on one variable can be
// intersected wholesale by carrying all their column ranges down the
// radix levels together (EnumerateJoin), instead of leapfrogging
// pattern-by-pattern.

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/trieiter"
	"repro/internal/wavelet"
)

var _ trieiter.RunLeaper = (*PatternState)(nil)

// LeapRun implements trieiter.RunLeaper: when the next Leap(pos, ·)
// would be a backward range-successor descent, the candidate values for
// pos are exactly the distinct symbols of the current [lo, hi) range of
// the zone's BWT column. The initial (nothing bound) and forward
// directions have no contiguous-range form, so ok is false there and
// callers fall back to scalar Leap.
func (ps *PatternState) LeapRun(pos graph.Position) (wavelet.MatrixRange, bool) {
	if ps.bound == 0 || ps.bound == 3 || pos != ps.runStart().Prev() {
		return wavelet.MatrixRange{}, false
	}
	return wavelet.MatrixRange{M: ps.r.cols[ps.zone], Lo: ps.lo, Hi: ps.hi}, true
}

// batchBufPool recycles the uint64 staging buffer BatchLeap hands to
// wavelet.NextValues before narrowing the values to graph.IDs.
var batchBufPool = sync.Pool{
	New: func() any { s := make([]uint64, 0, 64); return &s },
}

// BatchLeap appends to buf the next candidates ≥ c for position pos, in
// increasing order, until buf reaches its capacity or the candidates are
// exhausted, and returns the extended slice. In the backward direction
// this costs a single pruned wavelet descent for the whole run; in the
// other directions it degrades to repeated scalar Leap calls, so callers
// may use it unconditionally.
func (ps *PatternState) BatchLeap(pos graph.Position, c graph.ID, buf []graph.ID) []graph.ID {
	if len(buf) >= cap(buf) {
		return buf
	}
	if r, ok := ps.LeapRun(pos); ok {
		want := cap(buf) - len(buf)
		sp := batchBufPool.Get().(*[]uint64)
		full := *sp
		if cap(full) < want {
			full = make([]uint64, 0, want)
		}
		// NextValues fills to capacity, so hand it a cap-limited view of
		// the pooled buffer; the full buffer goes back to the pool.
		tmp := full[:0:want]
		tmp = r.M.NextValues(r.Lo, r.Hi, uint64(c), tmp)
		n0 := len(buf)
		for _, v := range tmp {
			buf = append(buf, graph.ID(v))
		}
		*sp = full[:0]
		batchBufPool.Put(sp)
		if ringdebugEnabled {
			ps.debugCheckBatchLeap(pos, c, buf[n0:])
		}
		return buf
	}
	for len(buf) < cap(buf) {
		v, ok := ps.Leap(pos, c)
		if !ok {
			break
		}
		buf = append(buf, v)
		if v == graph.MaxID {
			break
		}
		c = v + 1
	}
	return buf
}

// EnumerateJoin emits, in increasing order, every value that can bind
// its position in all of the given pattern states simultaneously — the
// batched replacement for leapfrogging the states against each other.
// It requires each state to expose a LeapRun for its position and all
// the runs to lie over matrices of equal width (the ring's SPO and POS
// columns share the subject/object alphabet; the OSP column codes
// predicates and cannot be mixed in). It reports false, emitting
// nothing, when those conditions fail and the caller must leapfrog.
func EnumerateJoin(states []*PatternState, positions []graph.Position, emit func(graph.ID) bool) bool {
	if len(states) == 0 || len(states) != len(positions) {
		return false
	}
	rs := make([]wavelet.MatrixRange, len(states))
	for i, ps := range states {
		r, ok := ps.LeapRun(positions[i])
		if !ok {
			return false
		}
		if i > 0 && r.M.Width() != rs[0].M.Width() {
			return false
		}
		rs[i] = r
	}
	wavelet.IntersectRanges(rs, func(v uint64) bool {
		return emit(graph.ID(v))
	})
	return true
}
