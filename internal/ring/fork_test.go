package ring

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
	"repro/internal/trieiter"
)

// TestParallelForkStates drives many forked PatternStates concurrently
// over one shared Ring and C-Ring. The ring's query structures are
// immutable after construction, so forks advancing on separate
// goroutines must neither race (the -race CI lane runs this test) nor
// influence each other's results: every goroutine re-derives the same
// subject → objects map a single sequential cursor produces.
func TestParallelForkStates(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, tc := range bothVariants {
		t.Run(tc.name, func(t *testing.T) {
			g := testutil.RandomGraph(rng, 400, 30, 4)
			r := New(g, tc.opt)
			tp := graph.TP(graph.Var("x"), graph.Const(1), graph.Var("y"))

			// Sequential reference: for each subject matching (?x, 1, ?y),
			// the set of objects.
			want := map[graph.ID][]graph.ID{}
			ref := r.NewPatternState(tp)
			for c := graph.ID(0); ; {
				v, ok := ref.Leap(graph.PosS, c)
				if !ok {
					break
				}
				ref.Bind(graph.PosS, v)
				for o := graph.ID(0); ; {
					w, ok := ref.Leap(graph.PosO, o)
					if !ok {
						break
					}
					want[v] = append(want[v], w)
					if w == graph.MaxID {
						break
					}
					o = w + 1
				}
				ref.Unbind()
				if v == graph.MaxID {
					break
				}
				c = v + 1
			}
			if len(want) == 0 {
				t.Fatal("predicate 1 matches nothing; pick a denser seed")
			}

			// Fork one state per goroutine from a shared parent and let all
			// of them walk the full pattern concurrently.
			parent := r.NewPatternState(tp)
			baseBound := parent.Bound() // the constant predicate is bound at creation
			const goroutines = 8
			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			var forkable trieiter.Forkable = parent // compile-time capability check
			for i := 0; i < goroutines; i++ {
				it := forkable.Fork()
				if it == nil {
					t.Fatal("PatternState.Fork returned nil")
				}
				wg.Add(1)
				go func(id int, it trieiter.Iter) {
					defer wg.Done()
					got := map[graph.ID][]graph.ID{}
					for c := graph.ID(0); ; {
						v, ok := it.Leap(graph.PosS, c)
						if !ok {
							break
						}
						it.Bind(graph.PosS, v)
						for o := graph.ID(0); ; {
							w, ok := it.Leap(graph.PosO, o)
							if !ok {
								break
							}
							got[v] = append(got[v], w)
							if w == graph.MaxID {
								break
							}
							o = w + 1
						}
						it.Unbind()
						if v == graph.MaxID {
							break
						}
						c = v + 1
					}
					if len(got) != len(want) {
						errs <- "subject count mismatch"
						return
					}
					for s, os := range want {
						g := got[s]
						if len(g) != len(os) {
							errs <- "object count mismatch"
							return
						}
						for j := range os {
							if g[j] != os[j] {
								errs <- "object value mismatch"
								return
							}
						}
					}
				}(i, it)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}

			// The parent must be untouched by its forks' journeys.
			if parent.Bound() != baseBound {
				t.Fatalf("parent state mutated: %d bindings, want %d", parent.Bound(), baseBound)
			}
		})
	}
}

// TestParallelForkMidwayState forks a state after a binding and checks
// the fork continues independently: advancing the fork does not move the
// parent, and unbinding the parent does not corrupt the fork.
func TestParallelForkMidwayState(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := testutil.RandomGraph(rng, 300, 25, 3)
	r := New(g, Options{})
	tp := graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))
	ps := r.NewPatternState(tp)
	v, ok := ps.Leap(graph.PosP, 0)
	if !ok {
		t.Fatal("empty graph")
	}
	ps.Bind(graph.PosP, v)
	fork := ps.Fork()
	ps.Unbind() // parent rewinds; fork must keep the binding

	count := 0
	for c := graph.ID(0); ; {
		w, ok := fork.Leap(graph.PosS, c)
		if !ok {
			break
		}
		count++
		if w == graph.MaxID {
			break
		}
		c = w + 1
	}
	if count == 0 {
		t.Fatal("fork lost its binding state")
	}
	if got := ps.Count(); got != r.Len() {
		t.Fatalf("parent count %d after unbind, want full %d", got, r.Len())
	}
}
