package persist

// Replication seams: everything a WAL-shipping leader/follower pair
// needs from the persistence layer, and nothing protocol-shaped. The
// leader side exposes the current manifest with its immutable snapshot
// files (bootstrap is "download files, Open") and a durable-record
// stream from any batch sequence (sealed segments from disk, then the
// committer's live tail). The follower side applies shipped batches
// through the same WAL-then-store path local writes use, preserving the
// leader's sequence numbering so recovery and resume are exact.
//
// The one invariant everything here leans on: a record leaves this
// process only after the fsync covering it returned. Disk catch-up caps
// at the durable watermark and the tail subscription is fed post-fsync,
// so a follower can never hold bytes a leader crash could revoke — the
// pair cannot diverge.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SnapshotFile names one immutable file of a checkpoint.
type SnapshotFile struct {
	Name    string `json:"name"`
	Bytes   int64  `json:"bytes"`
	Triples int    `json:"triples,omitempty"` // ring files only
	Kind    string `json:"kind"`              // "dict" or "ring"
}

// ManifestInfo is a parsed manifest plus its exact on-disk image. Raw
// is CRC-trailed and round-trips byte-identically, so a follower can
// install it verbatim after downloading the files it names.
type ManifestInfo struct {
	Version    uint64         `json:"version"`
	Generation uint64         `json:"generation"`
	WALFloor   uint64         `json:"wal_floor"`
	LastSeq    uint64         `json:"last_seq"`
	Triples    int            `json:"triples"`
	Files      []SnapshotFile `json:"files"`
	Raw        []byte         `json:"raw"`
}

func manifestInfo(m *manifest, raw []byte) *ManifestInfo {
	info := &ManifestInfo{
		Version:    m.Version,
		Generation: m.Generation,
		WALFloor:   m.WALFloor,
		LastSeq:    m.LastSeq,
		Triples:    m.Triples,
		Raw:        raw,
	}
	if m.Dict.Name != "" {
		info.Files = append(info.Files, SnapshotFile{Name: m.Dict.Name, Bytes: m.Dict.Bytes, Kind: "dict"})
	}
	for _, r := range m.Rings {
		info.Files = append(info.Files, SnapshotFile{Name: r.Name, Bytes: r.Bytes, Triples: r.Triples, Kind: "ring"})
	}
	return info
}

// ManifestSnapshot returns the current manifest, consistent under the
// checkpoint lock. Version 0 means "no checkpoint yet": there are no
// files to fetch and a follower starts from an empty directory.
func (db *DB) ManifestSnapshot() *ManifestInfo {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	m := db.man
	if m.Version == 0 {
		return &ManifestInfo{WALFloor: m.WALFloor}
	}
	return manifestInfo(m, m.encode())
}

// ParseManifest decodes a manifest image (as shipped by a leader),
// validating its CRC trailer.
func ParseManifest(data []byte) (*ManifestInfo, error) {
	m, err := readManifestBytes(data)
	if err != nil {
		return nil, err
	}
	return manifestInfo(m, data), nil
}

// validSnapshotName reports whether name is a plausible snapshot file
// name a manifest may reference — defense in depth against a hostile
// leader steering a follower's writes outside its data directory.
func validSnapshotName(name string) bool {
	if strings.ContainsAny(name, "/\\") || name == "" {
		return false
	}
	return strings.HasPrefix(name, "dict-") || strings.HasPrefix(name, "ring-")
}

// OpenSnapshotFile opens one of the current manifest's immutable files
// for streaming to a follower. The name must be referenced by the
// manifest as of this call; the returned handle stays valid even if a
// later checkpoint garbage-collects the name (the open file survives
// the unlink).
func (db *DB) OpenSnapshotFile(name string) (io.ReadCloser, int64, error) {
	db.cpMu.Lock()
	var ref *fileRef
	if db.man.Dict.Name == name {
		ref = &fileRef{Name: name, Bytes: db.man.Dict.Bytes}
	}
	for _, r := range db.man.Rings {
		if r.Name == name {
			ref = &fileRef{Name: r.Name, Bytes: r.Bytes}
		}
	}
	db.cpMu.Unlock()
	if ref == nil || !validSnapshotName(name) {
		return nil, 0, fmt.Errorf("persist: %q is not a current snapshot file", name)
	}
	f, err := os.Open(filepath.Join(db.dir, name))
	if err != nil {
		return nil, 0, err
	}
	return f, ref.Bytes, nil
}

// InstallSnapshotManifest installs a leader's manifest image into a
// bootstrap directory (validate, temp file, fsync, rename, dirsync).
// Every file the manifest names must already be in place and fsynced —
// the manifest is the commit point, exactly as in a local checkpoint.
func InstallSnapshotManifest(dir string, raw []byte) error {
	m, err := readManifestBytes(raw)
	if err != nil {
		return err
	}
	return m.install(dir)
}

// WriteSnapshotFile streams one downloaded snapshot file into dir and
// fsyncs it, returning the byte count. The name is validated against
// directory escapes; the CRC check against the leader's trailer is the
// caller's job (it sees the transport).
func WriteSnapshotFile(dir, name string, src io.Reader) (int64, error) {
	if !validSnapshotName(name) {
		return 0, fmt.Errorf("persist: invalid snapshot file name %q", name)
	}
	return writeFileSync(filepath.Join(dir, name), func(w io.Writer) (int64, error) {
		return io.Copy(w, src)
	})
}

// DecodeRecordPayload decodes a shipped record payload (8-byte batch
// sequence + encoded ops) into a Batch, exactly as recovery would.
// Structural faults surface as ErrCorrupt — the transport CRC already
// passed, so a bad payload means a framing bug or a hostile peer.
func DecodeRecordPayload(payload []byte) (Batch, error) {
	return readBatch(payload)
}

// ApplyReplicated logs and applies one shipped batch, preserving the
// leader's sequence number. The batch must continue the local log
// exactly (ErrSeqGap otherwise — the follower resyncs rather than
// papering over a hole). With sync the call returns after the local
// fsync; without, the record rides the next group commit and the
// durable watermark advances behind visibility, same as local writes.
func (db *DB) ApplyReplicated(b Batch, sync bool) error {
	if b.Seq == 0 {
		return fmt.Errorf("%w: replicated batch seq 0", ErrCorrupt)
	}
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return ErrClosed
	}
	promise, err := db.wal.enqueue(b.Ops, b.Seq)
	if err != nil {
		db.wmu.Unlock()
		return err
	}
	db.applyOps(b.Ops)
	db.advanceApplied(b.Seq)
	db.wmu.Unlock()
	if sync {
		return promise.wait()
	}
	return nil
}

// errSubLost signals an overflowed tail subscription: the consumer fell
// behind the committer's buffer and must resume from the segment files.
var errSubLost = errors.New("persist: tail subscription overflowed")

// StreamWAL ships every durable batch with sequence ≥ from, in order,
// then follows the live tail until ctx ends, emit fails, or the DB
// closes (ErrClosed — a clean end of stream). With heartbeat > 0, a
// nil-payload TailRecord carrying the current durable watermark is
// emitted whenever the tail is idle that long, so consumers can measure
// lag and liveness.
//
// Batches already folded into the snapshot and garbage-collected cannot
// be shipped: ErrSnapshotRequired tells the follower to re-bootstrap.
func (db *DB) StreamWAL(ctx context.Context, from uint64, heartbeat time.Duration, emit func(TailRecord) error) error {
	if from == 0 {
		from = 1
	}
	next := from
	for {
		db.cpMu.Lock()
		floorSeq := db.man.LastSeq + 1
		segFloor := db.man.WALFloor
		db.cpMu.Unlock()
		if next < floorSeq {
			return fmt.Errorf("%w (want seq %d, snapshot covers through %d)", ErrSnapshotRequired, next, floorSeq-1)
		}
		// Subscribe before reading disk: every record durable after this
		// point is buffered, every record durable before it is on disk, so
		// the union has no hole and overlaps dedupe by sequence.
		sub := db.wal.subscribe()
		durable := db.wal.lastDurable.Load()
		var err error
		next, err = db.shipFromDisk(segFloor, next, durable, emit)
		if err != nil {
			db.wal.unsubscribe(sub)
			return err
		}
		err = db.shipFromTail(ctx, sub, &next, heartbeat, emit)
		db.wal.unsubscribe(sub)
		if errors.Is(err, errSubLost) {
			continue // fell behind the buffer: catch up from disk again
		}
		return err
	}
}

// shipFromDisk emits the durable records in [next, durable] from the
// segment files and returns the new resume point. Records beyond the
// durable watermark are skipped even when readable: they are flushed
// but possibly not fsynced, and a crash may still revoke them.
func (db *DB) shipFromDisk(segFloor, next, durable uint64, emit func(TailRecord) error) (uint64, error) {
	if durable < next {
		return next, nil
	}
	segs, err := listSegments(db.dir)
	if err != nil {
		return next, err
	}
	for _, seq := range segs {
		if seq < segFloor {
			continue
		}
		data, err := os.ReadFile(filepath.Join(db.dir, segmentName(seq)))
		if err != nil {
			if os.IsNotExist(err) {
				continue // checkpointed away mid-scan; the floor re-check catches real gaps
			}
			return next, err
		}
		// Tolerant scan (last=true): the committer appends concurrently,
		// so any segment may end mid-record from this reader's viewpoint.
		// Everything at or below the durable watermark parses — fsync
		// completes records before it returns.
		_, err = replayBytes(data, seq, true, func(b Batch) error {
			if b.Seq < next || b.Seq > durable {
				return nil
			}
			if b.Seq != next {
				return fmt.Errorf("%w: durable record gap at seq %d (want %d)", ErrCorrupt, b.Seq, next)
			}
			payload := encodeOps(b.Ops)
			full := make([]byte, 0, 8+len(payload))
			full = appendSeq(full, b.Seq)
			full = append(full, payload...)
			if err := emit(TailRecord{Seq: b.Seq, Payload: full}); err != nil {
				return err
			}
			next = b.Seq + 1
			return nil
		})
		if err != nil {
			return next, err
		}
	}
	if next <= durable {
		return next, fmt.Errorf("%w: durable records through seq %d missing from segment files (resumed at %d)", ErrCorrupt, durable, next)
	}
	return next, nil
}

// shipFromTail streams the live subscription: committed records in
// order, heartbeats when idle. Returns errSubLost on overflow (resume
// from disk), ErrClosed when the WAL shuts down cleanly, or ctx/emit
// errors.
func (db *DB) shipFromTail(ctx context.Context, sub *walSub, next *uint64, heartbeat time.Duration, emit func(TailRecord) error) error {
	var hb <-chan time.Time
	if heartbeat > 0 {
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		hb = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case rec, ok := <-sub.ch:
			if !ok {
				if sub.lost {
					return errSubLost
				}
				return ErrClosed
			}
			if rec.Seq < *next {
				continue // already shipped during disk catch-up
			}
			if rec.Seq > *next {
				// The buffered tail starts past our resume point (records
				// committed between two disk passes); fall back to disk.
				return errSubLost
			}
			if err := emit(rec); err != nil {
				return err
			}
			*next = rec.Seq + 1
		case <-hb:
			if err := emit(TailRecord{Seq: db.wal.lastDurable.Load()}); err != nil {
				return err
			}
		}
	}
}

// appendSeq appends a little-endian batch sequence (the record payload
// prefix).
func appendSeq(b []byte, seq uint64) []byte {
	return append(b,
		byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24),
		byte(seq>>32), byte(seq>>40), byte(seq>>48), byte(seq>>56))
}
