package persist

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// The manifest is the persistence root: a small text file naming the
// dictionary snapshot, the static ring files, and the WAL floor (the
// first segment recovery must replay). A checkpoint writes the new
// version to a temp file, fsyncs it, and renames it over MANIFEST —
// installation is the rename, so readers see either the old complete
// state or the new one, never a blend. Everything below the manifest is
// immutable once referenced; everything not referenced is garbage.

const (
	manifestName  = "MANIFEST"
	manifestMagic = "RINGMANIFEST1"
)

// ringFileName renders the on-disk name of checkpointed ring id.
func ringFileName(id uint64) string { return fmt.Sprintf("ring-%06d.ring", id) }

// dictFileName renders the on-disk name of the dictionary snapshot for a
// manifest version.
func dictFileName(version uint64) string { return fmt.Sprintf("dict-%06d.dict", version) }

// fileRef names one immutable snapshot file.
type fileRef struct {
	Name  string
	Bytes int64
}

// ringRef names one checkpointed ring file and its logical size.
type ringRef struct {
	Name    string
	Triples int
	Bytes   int64
}

// manifest is the decoded persistence root.
type manifest struct {
	Version    uint64
	Generation uint64 // store generation at checkpoint (diagnostic)
	WALFloor   uint64 // first WAL segment to replay
	// LastSeq is the highest batch sequence folded into this snapshot:
	// recovery (and a replication follower) resumes at LastSeq+1. Zero in
	// manifests written before replication existed — recovery then falls
	// back to the replayed WAL tail, as it always did.
	LastSeq  uint64
	NextRing uint64 // next unused ring file id
	NumSO    graph.ID
	NumP     graph.ID
	Triples  int
	Dict     fileRef
	Rings    []ringRef
}

// encode renders the manifest body, CRC trailer included.
func (m *manifest) encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", manifestMagic)
	fmt.Fprintf(&b, "version %d\n", m.Version)
	fmt.Fprintf(&b, "generation %d\n", m.Generation)
	fmt.Fprintf(&b, "walfloor %d\n", m.WALFloor)
	// lastseq is omitted when zero so pre-replication manifests keep
	// their canonical byte-identical round-trip.
	if m.LastSeq != 0 {
		fmt.Fprintf(&b, "lastseq %d\n", m.LastSeq)
	}
	fmt.Fprintf(&b, "nextring %d\n", m.NextRing)
	fmt.Fprintf(&b, "domains %d %d\n", m.NumSO, m.NumP)
	fmt.Fprintf(&b, "triples %d\n", m.Triples)
	fmt.Fprintf(&b, "dict %s %d\n", m.Dict.Name, m.Dict.Bytes)
	for _, r := range m.Rings {
		fmt.Fprintf(&b, "ring %s %d %d\n", r.Name, r.Triples, r.Bytes)
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc %08x\n", body, crc32.Checksum([]byte(body), castagnoli)))
}

// install atomically publishes the manifest in dir: temp file, fsync,
// rename over MANIFEST, fsync the directory so the rename is durable.
func (m *manifest) install(dir string) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.encode()); err != nil {
		f.Close() //ringlint:allow syncio -- best-effort close; the write error already fails the install
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //ringlint:allow syncio -- best-effort close; the sync error already fails the install
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable before dependents proceed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readManifest loads and validates dir's MANIFEST. A missing file is
// (nil, nil): a fresh data directory. Any structural fault or checksum
// mismatch is an error — the manifest is written atomically, so a bad
// one is corruption, not a crash artifact.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return readManifestBytes(data)
}

// readManifestBytes decodes a manifest image; split from readManifest so
// tests can feed corrupted bytes directly.
func readManifestBytes(data []byte) (*manifest, error) {
	text := string(data)
	crcAt := strings.LastIndex(text, "crc ")
	if crcAt < 0 || !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("%w: manifest missing crc trailer", ErrCorrupt)
	}
	var wantCRC uint32
	if _, err := fmt.Sscanf(text[crcAt:], "crc %08x\n", &wantCRC); err != nil {
		return nil, fmt.Errorf("%w: manifest crc trailer: %v", ErrCorrupt, err)
	}
	body := text[:crcAt]
	if crc32.Checksum([]byte(body), castagnoli) != wantCRC {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}

	m := &manifest{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() || sc.Text() != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	var numSO, numP uint64
	seen := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		key, rest, _ := strings.Cut(line, " ")
		var err error
		switch key {
		case "version":
			_, err = fmt.Sscanf(rest, "%d", &m.Version)
		case "generation":
			_, err = fmt.Sscanf(rest, "%d", &m.Generation)
		case "walfloor":
			_, err = fmt.Sscanf(rest, "%d", &m.WALFloor)
		case "lastseq":
			_, err = fmt.Sscanf(rest, "%d", &m.LastSeq)
			if err == nil && m.LastSeq == 0 {
				// Canonical form omits the zero; accepting it would break
				// the byte-identical round-trip.
				err = fmt.Errorf("lastseq 0 is written by omission")
			}
		case "nextring":
			_, err = fmt.Sscanf(rest, "%d", &m.NextRing)
		case "domains":
			_, err = fmt.Sscanf(rest, "%d %d", &numSO, &numP)
		case "triples":
			_, err = fmt.Sscanf(rest, "%d", &m.Triples)
		case "dict":
			_, err = fmt.Sscanf(rest, "%s %d", &m.Dict.Name, &m.Dict.Bytes)
		case "ring":
			var r ringRef
			if _, err = fmt.Sscanf(rest, "%s %d %d", &r.Name, &r.Triples, &r.Bytes); err == nil {
				m.Rings = append(m.Rings, r)
			}
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: manifest line %q: %v", ErrCorrupt, line, err)
		}
		seen[key] = true
	}
	for _, key := range []string{"version", "walfloor", "nextring", "domains", "triples", "dict"} {
		if !seen[key] {
			return nil, fmt.Errorf("%w: manifest missing %q", ErrCorrupt, key)
		}
	}
	if m.Triples < 0 {
		return nil, fmt.Errorf("%w: manifest triples %d", ErrCorrupt, m.Triples)
	}
	for _, r := range m.Rings {
		if strings.ContainsAny(r.Name, "/\\") {
			return nil, fmt.Errorf("%w: manifest file name %q escapes directory", ErrCorrupt, r.Name)
		}
	}
	if strings.ContainsAny(m.Dict.Name, "/\\") {
		return nil, fmt.Errorf("%w: manifest file name %q escapes directory", ErrCorrupt, m.Dict.Name)
	}
	if numSO > math.MaxUint32 || numP > math.MaxUint32 {
		return nil, fmt.Errorf("%w: manifest domains %d/%d exceed the ID space", ErrCorrupt, numSO, numP)
	}
	m.NumSO = graph.ID(numSO)
	m.NumP = graph.ID(numP)
	return m, nil
}
