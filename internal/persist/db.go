package persist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wcoring "repro"
	"repro/internal/dict"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mman"
	"repro/internal/ring"
)

// Options configures a DB.
type Options struct {
	// MemtableThreshold and MaxRings bound the dynamic store (zero means
	// its defaults).
	MemtableThreshold int
	MaxRings          int
	// Ring configures the physical representation of checkpointed rings.
	Ring ring.Options
	// NoBackground disables the compaction goroutine and automatic
	// checkpoints; flushes happen inline on the writer and checkpoints
	// only when Checkpoint is called. Tests use this for determinism.
	NoBackground bool
	// Mmap loads checkpointed ring files through read-only memory
	// mappings (ring.View) instead of decoding them onto the heap, both
	// at Open and when a checkpoint installs freshly written files. Load
	// cost drops to rebuilding the o(n) rank/select directories and the
	// bulk payload stays in the page cache, shared across processes.
	Mmap bool
}

// DB is a durable dynamic store: a write-ahead log in front of a
// dictionary plus dynamic ring store, checkpointed into immutable
// snapshot files behind a versioned manifest. One writer at a time;
// readers pin epoch snapshots and never block.
type DB struct {
	dir string
	opt Options

	// wmu serialises writers: WAL enqueue order equals apply order.
	wmu    sync.Mutex
	closed bool //ringlint:guarded-by wmu

	// dictMu guards the growing dictionary (writers hold it briefly to
	// encode; readers to decode results).
	dictMu sync.RWMutex
	d      *dict.Dictionary //ringlint:guarded-by dictMu

	store *dynamic.Store
	wal   *wal

	// cpMu serialises checkpoints and guards the manifest bookkeeping.
	cpMu sync.Mutex
	man  *manifest //ringlint:guarded-by cpMu
	// ringFiles maps in-memory rings to their on-disk files, by pointer
	// identity: a merged or rebuilt ring is a new pointer and gets a new
	// file at the next checkpoint. Rebuilt from the manifest at Open;
	// never serialized itself.
	//ringlint:derived
	//ringlint:guarded-by cpMu
	ringFiles map[*ring.Ring]ringRef
	// regions maps view-loaded rings to their file mappings (Mmap mode
	// only), by pointer identity; guarded by cpMu. The entry keeps ring
	// and mapping alive together; once a ring leaves the map (its file
	// superseded), a finalizer set in viewRingFile releases the mapping
	// when the last snapshot lets go of the ring. Rebuilt at Open, never
	// serialized.
	//ringlint:derived
	//ringlint:guarded-by cpMu
	regions map[*ring.Ring]*mman.Region

	kickCh chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	// appliedSeq is the highest batch sequence applied to the in-memory
	// store (visibility watermark; durability is the WAL's lastDurable).
	// Consistent reads wait on it via WaitApplied.
	appliedSeq atomic.Uint64
	// seqMu guards the WaitApplied waiter list.
	seqMu      sync.Mutex
	seqWaiters []seqWaiter //ringlint:guarded-by seqMu

	checkpoints atomic.Uint64
	// lastInstallNanos is the duration of the last checkpoint's install
	// phase: mapping freshly written ring files, swapping them into the
	// store, and installing the manifest — everything after the O(new
	// data) file writes. With Mmap it stays O(directories), which is the
	// point of the zero-copy load path.
	lastInstallNanos atomic.Int64
	// Recovery observations, derived from replaying the WAL tail at Open —
	// pure reporting state, never written back to disk.
	//ringlint:derived
	recoveryBatches atomic.Uint64
	//ringlint:derived
	recoveryOps atomic.Uint64
	//ringlint:derived
	tornTail atomic.Bool
	cpErr    atomic.Pointer[error] // last background checkpoint failure
}

// Stats is a point-in-time snapshot of the persistence counters the
// serving layer exposes as metrics.
type Stats struct {
	Triples         int
	MemtableTriples int
	StaticRings     int
	DictSOTerms     int
	DictPTerms      int
	Generation      uint64
	Compactions     uint64
	Checkpoints     uint64
	ManifestVersion uint64
	// Mmap reports whether the zero-copy load path is active;
	// MappedRings/MappedBytes count the live file mappings, and
	// LastInstallSeconds is the duration of the last checkpoint's
	// install phase (map + swap + manifest, excluding file writes).
	Mmap               bool
	MappedRings        int
	MappedBytes        int64
	LastInstallSeconds float64
	WALFloor           uint64
	WALSegments        int
	WALSizeBytes       int64
	WAL                WALStats
	RecoveryBatches    uint64
	RecoveryOps        uint64
	RecoveryTorn       bool
	// AppliedSeq/DurableSeq are the replication watermarks: the highest
	// batch sequence visible in memory and the highest fsynced locally.
	AppliedSeq uint64
	DurableSeq uint64
	// SnapshotLastSeq is the manifest's LastSeq: the first batch a
	// follower bootstrapping from this snapshot needs is SnapshotLastSeq+1.
	SnapshotLastSeq uint64
}

// Open opens (or creates) the data directory: load the manifest's
// dictionary and ring snapshot, replay the WAL tail over it, truncate a
// torn tail if the crash left one, and start accepting writes. The
// returned DB serves queries immediately.
func Open(dir string, opt Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{
		dir:     dir,
		opt:     opt,
		regions: make(map[*ring.Ring]*mman.Region),
		kickCh:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}

	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	var rings []*ring.Ring
	var numSO, numP graph.ID
	if man != nil {
		if db.d, err = readDictFile(dir, man.Dict); err != nil {
			return nil, err
		}
		numSO, numP = db.d.NumSO(), db.d.NumP()
		if numSO < man.NumSO || numP < man.NumP {
			return nil, fmt.Errorf("%w: dictionary smaller than manifest domains", ErrCorrupt)
		}
		for _, ref := range man.Rings {
			var r *ring.Ring
			if opt.Mmap {
				var reg *mman.Region
				if r, reg, err = viewRingFile(dir, ref); err == nil {
					db.regions[r] = reg
				}
			} else {
				r, err = readRingFile(dir, ref)
			}
			if err != nil {
				return nil, err
			}
			rings = append(rings, r)
		}
	} else {
		db.d, _ = dict.Build(nil)
		man = &manifest{Version: 0, WALFloor: 1, NextRing: 1}
	}
	db.man = man

	db.store = dynamic.FromRings(rings, numSO, numP, dynamic.Options{
		MemtableThreshold: opt.MemtableThreshold,
		MaxRings:          opt.MaxRings,
		Ring:              opt.Ring,
		Background:        !opt.NoBackground,
		OnCompact:         db.kickCheckpoint,
	})
	db.ringFiles = make(map[*ring.Ring]ringRef, len(rings))
	for i, r := range rings {
		db.ringFiles[r] = man.Rings[i]
	}

	nextSeg, nextBatch, err := db.recover()
	if err != nil {
		db.store.Close()
		return nil, err
	}
	db.appliedSeq.Store(nextBatch - 1)
	if db.wal, err = openWAL(dir, nextSeg, nextBatch); err != nil {
		db.store.Close()
		return nil, err
	}
	db.gcLocked()

	if !opt.NoBackground {
		db.wg.Add(1)
		go db.checkpointLoop()
	}
	return db, nil
}

// recover replays every WAL segment at or above the manifest floor, in
// order, and reports the next segment and batch sequence numbers.
func (db *DB) recover() (nextSeg, nextBatch uint64, err error) {
	segs, err := listSegments(db.dir)
	if err != nil {
		return 0, 0, err
	}
	nextSeg = db.man.WALFloor //ringlint:allow guardedby -- recovery runs inside Open, before the DB is shared
	if nextSeg == 0 {
		nextSeg = 1
	}
	// The snapshot already covers batches up to the manifest's LastSeq;
	// sequences must stay monotonic across checkpoints (and across a
	// whole replica set), so numbering resumes there even when every
	// covered segment has been garbage-collected.
	nextBatch = db.man.LastSeq + 1 //ringlint:allow guardedby -- recovery runs inside Open, before the DB is shared
	live := segs[:0]
	for _, seq := range segs {
		if seq >= db.man.WALFloor { //ringlint:allow guardedby -- recovery runs inside Open, before the DB is shared
			live = append(live, seq)
		}
	}
	for i, seq := range live {
		if i > 0 && seq != live[i-1]+1 {
			return 0, 0, fmt.Errorf("%w: WAL gap between segments %d and %d", ErrCorrupt, live[i-1], seq)
		}
		last := i == len(live)-1
		res, err := replaySegment(db.dir, seq, last, func(b Batch) error {
			db.applyOps(b.Ops)
			db.recoveryBatches.Add(1)
			db.recoveryOps.Add(uint64(len(b.Ops)))
			if b.Seq >= nextBatch {
				nextBatch = b.Seq + 1
			}
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		if res.Torn {
			db.tornTail.Store(true)
		}
		if res.Removed {
			// The active segment's header was torn and the file deleted;
			// reuse its number so the on-disk sequence stays gapless.
			nextSeg = seq
		} else {
			nextSeg = seq + 1
		}
	}
	return nextSeg, nextBatch, nil
}

func readDictFile(dir string, ref fileRef) (*dict.Dictionary, error) {
	f, err := os.Open(filepath.Join(dir, ref.Name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := dict.Read(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", ref.Name, err)
	}
	return d, nil
}

func readRingFile(dir string, ref ringRef) (*ring.Ring, error) {
	f, err := os.Open(filepath.Join(dir, ref.Name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ring.Read(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", ref.Name, err)
	}
	if r.Len() != ref.Triples {
		return nil, fmt.Errorf("%w: %s holds %d triples, manifest says %d", ErrCorrupt, ref.Name, r.Len(), ref.Triples)
	}
	return r, nil
}

// viewRingFile maps a checkpointed ring file and view-loads it: the bulk
// word payloads alias the mapping, only the rank/select directories are
// rebuilt. The mapping's lifetime is tied to the ring with a finalizer,
// so a query or pinned snapshot still iterating the ring after a
// generation swap keeps the pages mapped until it lets go — the
// refcounted unmap the live path relies on.
func viewRingFile(dir string, ref ringRef) (*ring.Ring, *mman.Region, error) {
	reg, err := mman.Map(filepath.Join(dir, ref.Name))
	if err != nil {
		return nil, nil, err
	}
	r, _, err := ring.View(reg.Bytes())
	if err != nil {
		reg.Release()
		return nil, nil, fmt.Errorf("%s: %w", ref.Name, err)
	}
	if r.Len() != ref.Triples {
		reg.Release()
		return nil, nil, fmt.Errorf("%w: %s holds %d triples, manifest says %d", ErrCorrupt, ref.Name, r.Len(), ref.Triples)
	}
	runtime.SetFinalizer(r, func(*ring.Ring) { reg.Release() })
	return r, reg, nil
}

// Close checkpoints, seals the WAL, and stops the background work. A
// closed DB keeps serving reads from its last snapshot.
func (db *DB) Close() error {
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return nil
	}
	db.closed = true
	db.wmu.Unlock()
	close(db.done)
	db.wg.Wait()
	err := db.checkpoint()
	if werr := db.wal.Close(); err == nil {
		err = werr
	}
	db.store.Close()
	return err
}

// --- writes ---

// InsertBatch logs and applies triples. With sync it returns only after
// the batch's WAL record is fsynced (the durable acknowledgement);
// without, the batch is applied and queued — a crash may lose it, which
// the caller accepted by not asking for sync. Returns how many triples
// were actually new.
func (db *DB) InsertBatch(ts []dict.StringTriple, sync bool) (int, error) {
	applied, _, err := db.Mutate(OpInsert, ts, sync)
	return applied, err
}

// DeleteBatch logs and removes triples; absent triples are no-ops. See
// InsertBatch for the sync contract. Returns how many were removed.
func (db *DB) DeleteBatch(ts []dict.StringTriple, sync bool) (int, error) {
	applied, _, err := db.Mutate(OpDelete, ts, sync)
	return applied, err
}

// Mutate is the seq-reporting mutation entry point: like
// InsertBatch/DeleteBatch, but it also returns the batch's WAL sequence
// number. A client holding the seq can demand read-your-writes on any
// replica ("wait until you have applied ≥ seq"); the seq is assigned at
// enqueue, so it is valid for 202-queued batches too.
func (db *DB) Mutate(kind OpKind, ts []dict.StringTriple, sync bool) (int, uint64, error) {
	if len(ts) == 0 {
		return 0, db.appliedSeq.Load(), nil
	}
	ops := make([]Op, len(ts))
	for i, t := range ts {
		ops[i] = Op{Kind: kind, S: t.S, P: t.P, O: t.O}
	}
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return 0, 0, ErrClosed
	}
	// Enqueue before applying: WAL order equals apply order, and the ops
	// become visible to readers while the fsync is still in flight —
	// acknowledgement, not visibility, waits for durability.
	promise, err := db.wal.enqueue(ops, 0)
	if err != nil {
		db.wmu.Unlock()
		return 0, 0, err
	}
	applied := db.applyOps(ops)
	db.advanceApplied(promise.seq)
	db.wmu.Unlock()
	if sync {
		if err := promise.wait(); err != nil {
			return applied, promise.seq, err
		}
	}
	return applied, promise.seq, nil
}

// seqWaiter is one parked WaitApplied call.
type seqWaiter struct {
	seq uint64
	ch  chan struct{}
}

// advanceApplied publishes a new applied watermark and releases every
// waiter it satisfies. Caller holds wmu (the apply path), so watermarks
// move monotonically.
func (db *DB) advanceApplied(seq uint64) {
	db.appliedSeq.Store(seq)
	db.seqMu.Lock()
	if len(db.seqWaiters) > 0 {
		kept := db.seqWaiters[:0]
		for _, w := range db.seqWaiters {
			if w.seq <= seq {
				close(w.ch)
			} else {
				kept = append(kept, w)
			}
		}
		db.seqWaiters = kept
	}
	db.seqMu.Unlock()
}

// AppliedSeq returns the highest batch sequence applied to the
// in-memory store — the visibility watermark consistent reads compare
// against.
func (db *DB) AppliedSeq() uint64 { return db.appliedSeq.Load() }

// DurableSeq returns the highest batch sequence whose WAL record is
// fsynced locally.
func (db *DB) DurableSeq() uint64 { return db.wal.lastDurable.Load() }

// NextSeq returns the next batch sequence the log will assign — the
// resume point for a replication tail.
func (db *DB) NextSeq() uint64 { return db.wal.nextSeq() }

// WaitApplied blocks until the applied watermark reaches seq or ctx
// ends. It is the server side of "X-Ring-Min-Seq: N": bounded
// generation/sequence-consistent reads on any replica.
func (db *DB) WaitApplied(ctx context.Context, seq uint64) error {
	if db.appliedSeq.Load() >= seq {
		return nil
	}
	w := seqWaiter{seq: seq, ch: make(chan struct{})}
	db.seqMu.Lock()
	// Re-check under the lock: advanceApplied may have passed seq
	// between the fast path and registration.
	if db.appliedSeq.Load() >= seq {
		db.seqMu.Unlock()
		return nil
	}
	db.seqWaiters = append(db.seqWaiters, w)
	db.seqMu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		db.seqMu.Lock()
		for i := range db.seqWaiters {
			if db.seqWaiters[i].ch == w.ch {
				db.seqWaiters = append(db.seqWaiters[:i], db.seqWaiters[i+1:]...)
				break
			}
		}
		db.seqMu.Unlock()
		return ctx.Err()
	}
}

// applyOps encodes and applies a homogeneous-or-mixed op list in order.
// Caller holds wmu (or is single-threaded recovery). Returns the number
// of triples whose presence actually changed.
func (db *DB) applyOps(ops []Op) int {
	type encOp struct {
		kind OpKind
		t    graph.Triple
		ok   bool
	}
	enc := make([]encOp, len(ops))
	db.dictMu.Lock()
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			enc[i] = encOp{kind: OpInsert, ok: true, t: graph.Triple{
				S: db.d.AddSO(op.S), P: db.d.AddP(op.P), O: db.d.AddSO(op.O),
			}}
		default:
			t := graph.Triple{}
			s, ok1 := db.d.EncodeSO(op.S)
			p, ok2 := db.d.EncodeP(op.P)
			o, ok3 := db.d.EncodeSO(op.O)
			if ok1 && ok2 && ok3 {
				t = graph.Triple{S: s, P: p, O: o}
			}
			enc[i] = encOp{kind: OpDelete, ok: ok1 && ok2 && ok3, t: t}
		}
	}
	db.dictMu.Unlock()

	before := db.store.Len()
	deleted := 0
	batch := make([]graph.Triple, 0, len(enc))
	flush := func() {
		if len(batch) > 0 {
			db.store.AddBatch(batch)
			batch = batch[:0]
		}
	}
	for _, e := range enc {
		switch {
		case e.kind == OpInsert:
			batch = append(batch, e.t)
		case e.ok:
			flush()
			if db.store.Delete(e.t) {
				deleted++
			}
		}
	}
	flush()
	inserted := db.store.Len() - before + deleted
	return inserted + deleted
}

// --- checkpoint ---

func (db *DB) kickCheckpoint() {
	select {
	case db.kickCh <- struct{}{}:
	default:
	}
}

func (db *DB) checkpointLoop() {
	defer db.wg.Done()
	for {
		select {
		case <-db.done:
			return
		case <-db.kickCh:
			if err := db.checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				db.cpErr.Store(&err)
			}
		}
	}
}

// Checkpoint forces a snapshot: rotate the WAL, flush the memtable into
// rings, persist new ring and dictionary files, and atomically install
// the next manifest version. Obsolete WAL segments and snapshot files
// are removed afterwards.
func (db *DB) Checkpoint() error {
	db.wmu.Lock()
	closed := db.closed
	db.wmu.Unlock()
	if closed {
		return ErrClosed
	}
	return db.checkpoint()
}

func (db *DB) checkpoint() error {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()

	// Seal the log and drain the memtable under the writer lock: every
	// op in segments < floor is now represented in the store's rings.
	db.wmu.Lock()
	rot, err := db.wal.rotate()
	if err != nil {
		db.wmu.Unlock()
		return err
	}
	db.store.FlushNow()
	snap := db.store.Snapshot()
	var dictBuf bytes.Buffer
	db.dictMu.RLock()
	_, derr := db.d.WriteTo(&dictBuf)
	numSO, numP := db.d.NumSO(), db.d.NumP()
	db.dictMu.RUnlock()
	db.wmu.Unlock()
	if derr != nil {
		return derr
	}

	version := db.man.Version + 1
	nextRing := db.man.NextRing
	newRefs := make([]ringRef, 0, len(snap.Rings()))
	newFiles := make(map[*ring.Ring]ringRef, len(snap.Rings()))
	type writtenRing struct {
		r   *ring.Ring
		ref ringRef
	}
	var written []writtenRing
	for _, r := range snap.Rings() {
		if ref, ok := db.ringFiles[r]; ok {
			newRefs = append(newRefs, ref)
			newFiles[r] = ref
			continue
		}
		name := ringFileName(nextRing)
		nextRing++
		n, err := writeFileSync(filepath.Join(db.dir, name), r.WriteTo)
		if err != nil {
			return err
		}
		ref := ringRef{Name: name, Triples: r.Len(), Bytes: n}
		newRefs = append(newRefs, ref)
		newFiles[r] = ref
		written = append(written, writtenRing{r: r, ref: ref})
	}
	dictName := dictFileName(version)
	dictBytes, err := writeFileSync(filepath.Join(db.dir, dictName), func(w io.Writer) (int64, error) {
		n, err := w.Write(dictBuf.Bytes())
		return int64(n), err
	})
	if err != nil {
		return err
	}

	// Install phase: everything after the O(new data) file writes. In
	// Mmap mode each freshly written ring file is mapped and view-loaded
	// — no re-decode, only directory rebuilds — and swapped in for its
	// heap-built twin, so the heap copy becomes collectable as soon as
	// the last pinned snapshot drops it.
	installStart := time.Now()
	if db.opt.Mmap {
		for _, wr := range written {
			mr, reg, err := viewRingFile(db.dir, wr.ref)
			if err != nil {
				// The heap ring keeps serving; the mapping is only an
				// optimization. The manifest still references the file.
				continue
			}
			if db.store.ReplaceRing(wr.r, mr) {
				delete(newFiles, wr.r)
				newFiles[mr] = wr.ref
				db.regions[mr] = reg
			}
			// Otherwise the ring was merged away while we wrote; the
			// dropped mapped ring's finalizer releases the mapping.
		}
	}
	m := &manifest{
		Version:    version,
		Generation: snap.Generation(),
		WALFloor:   rot.Sealed + 1,
		LastSeq:    rot.LastSeq,
		NextRing:   nextRing,
		NumSO:      numSO,
		NumP:       numP,
		Triples:    snap.Len(),
		Dict:       fileRef{Name: dictName, Bytes: dictBytes},
		Rings:      newRefs,
	}
	if err := m.install(db.dir); err != nil {
		return err
	}
	db.man = m
	db.ringFiles = newFiles
	for r := range db.regions {
		if _, ok := newFiles[r]; !ok {
			// The ring left the store; dropping the map entry lets the
			// GC collect ring + mapping once readers are done.
			delete(db.regions, r)
		}
	}
	db.lastInstallNanos.Store(int64(time.Since(installStart)))
	db.checkpoints.Add(1)
	db.gcLocked()
	return nil
}

// gcLocked removes WAL segments below the floor and snapshot files the
// current manifest does not reference. Caller holds cpMu (or is inside
// Open before concurrency starts). Removal failures are ignored: garbage
// is retried at the next checkpoint and never compromises correctness.
func (db *DB) gcLocked() {
	keep := map[string]bool{db.man.Dict.Name: true}
	for _, r := range db.man.Rings {
		keep[r.Name] = true
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := segmentSeq(name); ok {
			if seq < db.man.WALFloor {
				os.Remove(filepath.Join(db.dir, name))
			}
			continue
		}
		obsoleteSnap := (strings.HasPrefix(name, "ring-") || strings.HasPrefix(name, "dict-")) && !keep[name]
		if obsoleteSnap || name == manifestName+".tmp" {
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// writeFileSync writes a new immutable file and fsyncs it before
// returning; the manifest may only reference files that went through
// here.
func writeFileSync(path string, write func(io.Writer) (int64, error)) (int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	n, err := write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// --- reads ---

// Snapshot pins the current epoch for lock-free reading.
func (db *DB) Snapshot() *dynamic.Snapshot { return db.store.Snapshot() }

// Generation returns the store's current epoch; it advances on every
// applied batch and compaction, so it keys result-cache invalidation.
func (db *DB) Generation() uint64 { return db.store.Generation() }

// Len returns the number of triples currently visible.
func (db *DB) Len() int { return db.store.Len() }

// Compile translates string patterns against the live dictionary. A
// constant the dictionary has never seen makes the query infeasible
// (matches nothing), reported via the third return.
func (db *DB) Compile(q []wcoring.PatternString) (graph.Pattern, map[string]bool, bool, error) {
	db.dictMu.RLock()
	defer db.dictMu.RUnlock()
	return wcoring.CompilePatterns(db.d, q)
}

// DecodeBinding renders a solution back to strings under the dictionary
// read lock.
func (db *DB) DecodeBinding(b graph.Binding, predVars map[string]bool) map[string]string {
	db.dictMu.RLock()
	defer db.dictMu.RUnlock()
	return db.d.DecodeBinding(b, predVars)
}

// CheckpointError returns the last background checkpoint failure, if
// any. Writes keep succeeding after one (durability is the WAL's job);
// operators should still alarm on it.
func (db *DB) CheckpointError() error {
	if p := db.cpErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats snapshots the persistence counters.
func (db *DB) Stats() Stats {
	db.dictMu.RLock()
	dso, dp := int(db.d.NumSO()), int(db.d.NumP())
	db.dictMu.RUnlock()
	db.cpMu.Lock()
	version := db.man.Version
	floor := db.man.WALFloor
	snapLastSeq := db.man.LastSeq
	mappedRings := len(db.regions)
	var mappedBytes int64
	for _, reg := range db.regions {
		mappedBytes += int64(reg.Len())
	}
	db.cpMu.Unlock()
	segs, _ := listSegments(db.dir)
	var segBytes int64
	for _, seq := range segs {
		if fi, err := os.Stat(filepath.Join(db.dir, segmentName(seq))); err == nil {
			segBytes += fi.Size()
		}
	}
	snap := db.store.Snapshot()
	return Stats{
		Triples:         snap.Len(),
		MemtableTriples: snap.MemtableLen(),
		StaticRings:     len(snap.Rings()),
		DictSOTerms:     dso,
		DictPTerms:      dp,
		Generation:      snap.Generation(),
		Compactions:     db.store.Compactions(),
		Checkpoints:     db.checkpoints.Load(),
		ManifestVersion: version,
		WALFloor:        floor,
		WALSegments:     len(segs),
		WALSizeBytes:    segBytes,
		WAL:             db.wal.stats(),
		AppliedSeq:      db.appliedSeq.Load(),
		DurableSeq:      db.wal.lastDurable.Load(),
		SnapshotLastSeq: snapLastSeq,
		RecoveryBatches: db.recoveryBatches.Load(),
		RecoveryOps:     db.recoveryOps.Load(),
		RecoveryTorn:    db.tornTail.Load(),

		Mmap:               db.opt.Mmap,
		MappedRings:        mappedRings,
		MappedBytes:        mappedBytes,
		LastInstallSeconds: time.Duration(db.lastInstallNanos.Load()).Seconds(),
	}
}
