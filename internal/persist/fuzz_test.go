package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// buildSegment assembles a well-formed segment image in memory: the
// fuzz corpus seeds and the classification tests both start from one.
func buildSegment(seq uint64, batches [][]Op) []byte {
	var buf bytes.Buffer
	var hdr [segHeaderBytes]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	buf.Write(hdr[:])
	for i, ops := range batches {
		payload := encodeOps(ops)
		full := make([]byte, 8, 8+len(payload))
		binary.LittleEndian.PutUint64(full, uint64(i+1))
		full = append(full, payload...)
		var rh [recHeaderBytes]byte
		binary.LittleEndian.PutUint32(rh[:4], uint32(len(full)))
		binary.LittleEndian.PutUint32(rh[4:], crc32.Checksum(full, castagnoli))
		buf.Write(rh[:])
		buf.Write(full)
	}
	return buf.Bytes()
}

// FuzzWALReplay holds replay to its contract on arbitrary bytes: never
// panic; when the active-segment pass reports a clean (torn-tail)
// truncation, the truncated image must replay cleanly and identically;
// and any image the active pass rejects or truncates must fail the
// sealed-segment pass (mid-stream corruption is an error, not a silent
// truncation).
func FuzzWALReplay(f *testing.F) {
	f.Add(buildSegment(1, [][]Op{
		{{Kind: OpInsert, S: "a", P: "p", O: "b"}},
		{{Kind: OpDelete, S: "a", P: "p", O: "b"}, {Kind: OpInsert, S: "b", P: "p", O: "c"}},
	}))
	f.Add(buildSegment(1, nil))
	whole := buildSegment(1, [][]Op{{{Kind: OpInsert, S: "x", P: "y", O: "z"}}})
	f.Add(whole[:len(whole)-3]) // torn tail
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped) // checksum mismatch in the tail record
	f.Add([]byte{})
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		count := func(last bool, img []byte) (replayResult, error) {
			batches := 0
			res, err := replayBytes(img, 1, last, func(Batch) error {
				batches++
				return nil
			})
			if err == nil && batches != res.Batches {
				t.Fatalf("apply ran %d times, result says %d", batches, res.Batches)
			}
			return res, err
		}

		res, err := count(true, data)
		sealedRes, sealedErr := count(false, data)

		if err != nil {
			// Interior corruption in the active segment must also fail
			// the sealed pass.
			if sealedErr == nil {
				t.Fatalf("active pass failed (%v) but sealed pass succeeded", err)
			}
			return
		}
		if res.Torn {
			if int64(len(data)) < res.ValidLen {
				t.Fatalf("ValidLen %d beyond input %d", res.ValidLen, len(data))
			}
			if sealedErr == nil {
				t.Fatal("torn tail replayed cleanly as a sealed segment")
			}
			// Truncation reaches a fixpoint: the valid prefix replays
			// with the same batches and no further shrinking.
			res2, err2 := count(true, data[:res.ValidLen])
			if err2 != nil {
				t.Fatalf("truncated image fails replay: %v", err2)
			}
			if res2.ValidLen != res.ValidLen || res2.Batches != res.Batches {
				t.Fatalf("truncation not a fixpoint: %+v then %+v", res, res2)
			}
			return
		}
		// Clean active replay: the sealed pass must agree exactly.
		if sealedErr != nil {
			t.Fatalf("clean image fails sealed pass: %v", sealedErr)
		}
		if sealedRes.Batches != res.Batches || sealedRes.Ops != res.Ops {
			t.Fatalf("pass disagreement: %+v vs %+v", res, sealedRes)
		}
	})
}

// FuzzManifest holds the manifest decoder to "never panic, reject
// everything that fails the CRC, and round-trip what it accepts".
func FuzzManifest(f *testing.F) {
	m := &manifest{
		Version: 3, Generation: 17, WALFloor: 5, NextRing: 9,
		NumSO: 100, NumP: 4, Triples: 1234,
		Dict:  fileRef{Name: "dict-000003.dict", Bytes: 999},
		Rings: []ringRef{{Name: "ring-000007.ring", Triples: 1000, Bytes: 4096}},
	}
	f.Add(m.encode())
	f.Add([]byte(manifestMagic + "\ncrc 00000000\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readManifestBytes(data)
		if err != nil {
			return
		}
		// Accepted: re-encoding must reproduce the exact image (the
		// format has one canonical rendering).
		if !bytes.Equal(got.encode(), data) {
			t.Fatalf("accepted manifest does not round-trip")
		}
	})
}
