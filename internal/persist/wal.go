// Package persist (ringwal) makes the dynamic store durable: a
// length-prefixed, CRC32C-checksummed, fsync-batched write-ahead log
// with group commit; checkpointed ring + dictionary snapshots behind an
// atomically swapped versioned manifest; and crash recovery that replays
// the log tail over the last snapshot. The paper's amortised-update
// sketch (a small dynamic index plus a constant number of growing static
// rings) thus survives process death: every acknowledged batch is on
// disk before its writer unblocks, and recovery rebuilds exactly the
// acknowledged state.
//
// # Durability argument
//
// A batch is acknowledged only after the fsync covering its record
// returns. fsync flushes the whole file, so when any record is durable,
// every earlier record of its segment is too. Hence, in the active
// (last) segment, everything at or after the first invalid record was
// never acknowledged — truncating there cannot lose acked data. Sealed
// segments were fsynced at rotation, so an invalid record inside one is
// real corruption and replay fails loudly rather than guessing.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OpKind distinguishes WAL operations.
type OpKind uint8

// The two operations a WAL record can carry.
const (
	OpInsert OpKind = 1
	OpDelete OpKind = 2
)

// Op is one logged mutation over string constants. Logging strings (not
// dictionary IDs) keeps replay self-contained: re-applying ops in order
// re-creates dictionary terms in their original arrival order, so the
// IDs inside checkpointed rings stay valid.
type Op struct {
	Kind    OpKind
	S, P, O string
}

// Batch is one WAL record: the ops a single append call made durable and
// visible atomically.
type Batch struct {
	Seq uint64
	Ops []Op
}

// ErrCorrupt reports interior WAL corruption: an invalid record in a
// sealed segment, or a checksum-valid record whose payload does not
// parse. Unlike a torn tail this is not recoverable by truncation — the
// damaged range was acknowledged as durable.
var ErrCorrupt = errors.New("persist: WAL corrupt")

// ErrClosed reports an append against a closed (or failed) WAL.
var ErrClosed = errors.New("persist: WAL closed")

// ErrTooLarge reports a batch whose encoded record would exceed the
// size bound replay enforces. Rejecting it before it is written (and
// before it is acked) keeps the recovery invariant: a record header
// above the bound is always a torn write, never acknowledged data.
var ErrTooLarge = errors.New("persist: batch exceeds the WAL record size bound")

// ErrSeqGap reports a replicated batch whose sequence does not continue
// the local log: applying it would leave a hole no recovery could
// detect, so the follower must resync instead.
var ErrSeqGap = errors.New("persist: batch sequence gap")

// ErrSnapshotRequired reports a WAL stream request for sequences the
// leader has already folded into a checkpoint and garbage-collected:
// the follower must re-bootstrap from the snapshot instead of tailing.
var ErrSnapshotRequired = errors.New("persist: requested WAL sequence predates the snapshot floor")

const (
	segMagic       = "RWALSEG1"
	segHeaderBytes = 16 // magic + segment seq
	recHeaderBytes = 8  // payload length + CRC32C
	// maxRecordBytes bounds one record's payload; anything larger in a
	// header is hostile or torn.
	maxRecordBytes = 64 << 20
	// groupMax bounds how many queued appends one fsync covers.
	groupMax = 256
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fsyncBuckets spans 50µs (tmpfs) to 2.5s (overloaded spinning disk).
var fsyncBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// HistSnapshot is a point-in-time copy of a latency histogram, in the
// cumulative-bucket form the metrics exposition wants.
type HistSnapshot struct {
	Bounds     []float64 // upper bounds in seconds, ascending
	Counts     []uint64  // per-bucket (non-cumulative) counts, len = len(Bounds)+1
	Count      uint64
	SumSeconds float64
}

type latencyHist struct {
	bounds   []float64
	counts   []atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

func newLatencyHist(bounds []float64) *latencyHist {
	return &latencyHist{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(uint64(d))
}

func (h *latencyHist) snapshot() HistSnapshot {
	out := HistSnapshot{
		Bounds:     h.bounds,
		Counts:     make([]uint64, len(h.counts)),
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNanos.Load()) / 1e9,
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// WALStats is a point-in-time snapshot of the log's counters.
type WALStats struct {
	AppendedBatches uint64
	AppendedBytes   uint64
	Fsyncs          uint64
	FsyncSeconds    HistSnapshot
	Segment         uint64 // active segment sequence number
	DurableSeq      uint64 // highest fsynced batch sequence
}

// wal is the write-ahead log: a sequence of segment files, appended to
// by a single commit goroutine that groups concurrent appends under one
// fsync (group commit).
type wal struct {
	dir string

	mu        sync.Mutex // guards closed, nextBatch and enqueue vs Close
	closed    bool       //ringlint:guarded-by mu
	nextBatch uint64     //ringlint:guarded-by mu
	reqCh     chan *walReq
	wg        sync.WaitGroup
	failed    atomic.Pointer[error] // first write/sync error; sticky
	appended  atomic.Uint64
	bytes     atomic.Uint64
	fsyncs    atomic.Uint64
	fsyncHist *latencyHist
	segment   atomic.Uint64
	// lastDurable is the highest batch sequence whose record is fsynced.
	// Replication streams read it as their shipping bound: a record above
	// it may still be torn away by a crash, so it must never leave the
	// process.
	lastDurable atomic.Uint64

	// tmu guards the tail-subscription set; the committer publishes each
	// group's records to subscribers after the covering fsync returns.
	tmu  sync.Mutex
	subs map[*walSub]struct{} //ringlint:guarded-by tmu

	// commit-goroutine state
	f   walFile
	bw  *bufio.Writer
	seq uint64
}

// walFile is the committer's handle on the active segment: *os.File in
// production, a fake in tests that need Close to fail after a clean
// Sync (the shape write-back storage produces when deferred errors
// surface only at close).
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

type walReq struct {
	seq     uint64 // batch sequence, assigned at enqueue under mu
	full    []byte // nil for a rotate request: batch seq + encoded ops
	done    chan error
	rotated chan walRotateInfo // rotate requests: sealed segment + last batch seq
}

// walRotateInfo reports what a rotate sealed: the closed segment's
// number and the highest batch sequence assigned before the rotate
// enqueued (every record at or below it lives in sealed segments).
type walRotateInfo struct {
	Sealed  uint64
	LastSeq uint64
}

// walPromise resolves when the enqueueing append's record is durable.
// The batch sequence is known at enqueue time (assignment happens under
// the WAL mutex, so enqueue order equals sequence order equals commit
// order) — callers can hand it to clients before the fsync resolves.
type walPromise struct {
	seq  uint64
	done chan error
}

func (p *walPromise) wait() error { return <-p.done }

// walSub is one live-tail subscription: the committer delivers every
// batch made durable after the subscription started, in order. A
// subscriber that falls behind the buffer is overflowed (closed with
// lost=true) and must re-read the segment files to resume.
type walSub struct {
	ch   chan TailRecord
	lost bool // set (under tmu) before ch is closed on overflow
}

// TailRecord is one durable WAL record as shipped to replication
// consumers: the batch sequence and the full record payload (sequence
// prefix + encoded ops — exactly the bytes the record's CRC covers). A
// heartbeat TailRecord has a nil Payload and carries only the current
// durable sequence.
type TailRecord struct {
	Seq     uint64
	Payload []byte
}

// segmentName renders the on-disk name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// segmentSeq parses a segment filename, reporting whether it is one.
func segmentSeq(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	if name != segmentName(seq) {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sequence numbers of every WAL segment in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := segmentSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// openWAL creates segment seq in dir and starts the commit goroutine.
// nextBatch seeds the batch sequence (one past the last durable batch).
func openWAL(dir string, seq, nextBatch uint64) (*wal, error) {
	w := &wal{
		dir:       dir,
		reqCh:     make(chan *walReq, groupMax),
		fsyncHist: newLatencyHist(fsyncBuckets),
		seq:       seq,
		nextBatch: nextBatch,
		subs:      make(map[*walSub]struct{}),
	}
	w.lastDurable.Store(nextBatch - 1)
	if err := w.openSegment(seq); err != nil {
		return nil, err
	}
	w.wg.Add(1)
	go w.commitLoop()
	return w, nil
}

// openSegment creates and syncs a fresh segment file (commit goroutine
// or constructor only).
func (w *wal) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderBytes]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close() //ringlint:allow syncio -- best-effort close; the write error already fails the open
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //ringlint:allow syncio -- best-effort close; the sync error already fails the open
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<20)
	w.seq = seq
	w.segment.Store(seq)
	return nil
}

// enqueue submits a batch for commit and returns a promise that resolves
// once the record is durable. The caller may apply the ops to the
// in-memory store immediately: visibility may run ahead of durability,
// but acknowledgement (the promise) never does. The batch sequence is
// assigned here, under the mutex, so enqueue order equals sequence
// order. forceSeq, when nonzero, pins the assigned sequence — the
// replication apply path uses it to preserve the leader's numbering —
// and must equal the next unassigned sequence, else ErrSeqGap.
func (w *wal) enqueue(ops []Op, forceSeq uint64) (*walPromise, error) {
	if err := w.err(); err != nil {
		return nil, err
	}
	payload := encodeOps(ops)
	// The 8-byte batch sequence is prepended below; the full record must
	// stay under the bound replay treats as "implausible, torn".
	if len(payload)+8 > maxRecordBytes {
		return nil, fmt.Errorf("%w (%d bytes encoded, max %d)", ErrTooLarge, len(payload)+8, maxRecordBytes)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if forceSeq != 0 && forceSeq != w.nextBatch {
		next := w.nextBatch
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: batch seq %d, log expects %d", ErrSeqGap, forceSeq, next)
	}
	seq := w.nextBatch
	w.nextBatch++
	full := make([]byte, 0, 8+len(payload))
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	full = append(full, seqBuf[:]...)
	full = append(full, payload...)
	req := &walReq{seq: seq, full: full, done: make(chan error, 1)}
	w.reqCh <- req
	w.mu.Unlock()
	return &walPromise{seq: seq, done: req.done}, nil
}

// nextSeq returns the next batch sequence the log will assign.
func (w *wal) nextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextBatch
}

// rotate seals the active segment (flush + fsync + close) and opens the
// next one, returning the sealed segment's number and the last batch
// sequence it (or an earlier segment) holds. Records enqueued before
// rotate land in the sealed segment.
func (w *wal) rotate() (walRotateInfo, error) {
	if err := w.err(); err != nil {
		return walRotateInfo{}, err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return walRotateInfo{}, ErrClosed
	}
	req := &walReq{done: make(chan error, 1), rotated: make(chan walRotateInfo, 1)}
	req.seq = w.nextBatch - 1 // highest assigned seq; all of them precede us in the queue
	w.reqCh <- req
	w.mu.Unlock()
	if err := <-req.done; err != nil {
		return walRotateInfo{}, err
	}
	return <-req.rotated, nil
}

// Close seals the log: pending appends are committed, the file is synced
// and closed, and further appends fail with ErrClosed.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.reqCh)
	w.mu.Unlock()
	w.wg.Wait()
	return w.err()
}

func (w *wal) err() error {
	if p := w.failed.Load(); p != nil {
		return *p
	}
	return nil
}

func (w *wal) fail(err error) error {
	wrapped := fmt.Errorf("persist: WAL segment %d: %w", w.seq, err)
	w.failed.CompareAndSwap(nil, &wrapped)
	return w.err()
}

func (w *wal) stats() WALStats {
	return WALStats{
		AppendedBatches: w.appended.Load(),
		AppendedBytes:   w.bytes.Load(),
		Fsyncs:          w.fsyncs.Load(),
		FsyncSeconds:    w.fsyncHist.snapshot(),
		Segment:         w.segment.Load(),
		DurableSeq:      w.lastDurable.Load(),
	}
}

// commitLoop is the single committer: it drains queued requests, writes
// their records, fsyncs once per group, and only then acknowledges —
// group commit amortises the sync across concurrent writers.
func (w *wal) commitLoop() {
	defer w.wg.Done()
	for {
		req, ok := <-w.reqCh
		if !ok {
			w.finish()
			return
		}
		group := []*walReq{req}
	collect:
		for len(group) < groupMax {
			select {
			case more, ok := <-w.reqCh:
				if !ok {
					break collect // channel closed; commit what we have
				}
				group = append(group, more)
			default:
				break collect
			}
		}
		w.commitGroup(group)
	}
}

func (w *wal) commitGroup(group []*walReq) {
	pending := group[:0:0]
	for _, req := range group {
		if req.rotated != nil {
			w.ackDurable(pending, w.syncAndRotate(req))
			pending = pending[:0:0]
			continue
		}
		if err := w.err(); err == nil {
			if err2 := w.writeRecord(req.full); err2 != nil {
				w.fail(err2)
			}
		}
		pending = append(pending, req)
	}
	if len(pending) > 0 {
		err := w.err()
		if err == nil {
			err = w.sync()
		}
		w.ackDurable(pending, err)
	}
}

// syncAndRotate seals the active segment and opens the next; the rotate
// request's channels resolve once both halves are durable.
func (w *wal) syncAndRotate(req *walReq) error {
	err := w.err()
	if err == nil {
		err = w.sync()
	}
	if err == nil {
		if err2 := w.f.Close(); err2 != nil {
			err = w.fail(err2)
		}
	}
	sealed := w.seq
	if err == nil {
		if err2 := w.openSegment(w.seq + 1); err2 != nil {
			err = w.fail(err2)
		}
	}
	req.done <- err
	if err == nil {
		req.rotated <- walRotateInfo{Sealed: sealed, LastSeq: req.seq}
	}
	return err
}

// ackDurable resolves a synced group's promises. On success the records
// are durable: the durable watermark advances to the group's last
// sequence and the records fan out to tail subscribers — strictly after
// the fsync, so a subscriber can never ship bytes a crash could revoke.
func (w *wal) ackDurable(reqs []*walReq, err error) {
	if err == nil && len(reqs) > 0 {
		w.lastDurable.Store(reqs[len(reqs)-1].seq)
		w.publish(reqs)
	}
	for _, r := range reqs {
		r.done <- err
	}
}

// publish delivers a durable group to every tail subscriber. A
// subscriber whose buffer is full is overflowed — closed with the lost
// flag — rather than blocking the committer; it re-reads the segment
// files to resume.
func (w *wal) publish(reqs []*walReq) {
	w.tmu.Lock()
	defer w.tmu.Unlock()
	for sub := range w.subs {
		for _, r := range reqs {
			select {
			case sub.ch <- TailRecord{Seq: r.seq, Payload: r.full}:
			default:
				sub.lost = true
				close(sub.ch)
				delete(w.subs, sub)
			}
			if sub.lost {
				break
			}
		}
	}
}

// subscribe registers a live-tail subscription covering every record
// made durable from now on. The caller must drain sub.ch or accept
// overflow; unsubscribe is mandatory.
func (w *wal) subscribe() *walSub {
	sub := &walSub{ch: make(chan TailRecord, 4*groupMax)}
	w.tmu.Lock()
	w.subs[sub] = struct{}{}
	w.tmu.Unlock()
	return sub
}

// unsubscribe removes a subscription; safe to call after overflow or
// close (both already removed it).
func (w *wal) unsubscribe(sub *walSub) {
	w.tmu.Lock()
	if _, ok := w.subs[sub]; ok {
		delete(w.subs, sub)
		close(sub.ch)
	}
	w.tmu.Unlock()
}

// closeSubs closes every remaining subscription cleanly (without the
// lost flag): the log is shutting down and the tail is complete.
func (w *wal) closeSubs() {
	w.tmu.Lock()
	for sub := range w.subs {
		close(sub.ch)
		delete(w.subs, sub)
	}
	w.tmu.Unlock()
}

// writeRecord frames and buffers one record (full = batch seq + ops,
// already assembled at enqueue).
func (w *wal) writeRecord(full []byte) error {
	var hdr [recHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(full)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(full, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(full); err != nil {
		return err
	}
	w.appended.Add(1)
	w.bytes.Add(uint64(recHeaderBytes + len(full)))
	return nil
}

func (w *wal) sync() error {
	if err := w.bw.Flush(); err != nil {
		return w.fail(err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.fsyncs.Add(1)
	w.fsyncHist.observe(time.Since(start))
	return nil
}

// finish seals the active segment on shutdown. The close error must be
// recorded: on write-back storage a deferred I/O error can surface only
// at close, and Close() returns w.err() — dropping it here would hand
// the caller a clean shutdown for bytes the kernel never kept.
func (w *wal) finish() {
	if w.err() == nil {
		w.sync()
	}
	if err := w.f.Close(); err != nil {
		w.fail(err)
	}
	w.closeSubs()
}

// --- record encoding ---

// encodeOps renders the op list in the record payload form (the batch
// sequence number is prepended by the committer).
func encodeOps(ops []Op) []byte {
	size := 4
	for _, op := range ops {
		size += 1 + 12 + len(op.S) + len(op.P) + len(op.O)
	}
	buf := make([]byte, 0, size)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ops)))
	buf = append(buf, u32[:]...)
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		for _, s := range []string{op.S, op.P, op.O} {
			binary.LittleEndian.PutUint32(u32[:], uint32(len(s)))
			buf = append(buf, u32[:]...)
			buf = append(buf, s...)
		}
	}
	return buf
}

// readBatch decodes a record payload (batch seq + ops). The payload has
// already passed its checksum, so any structural fault here is interior
// corruption, not a torn write.
func readBatch(payload []byte) (Batch, error) {
	if len(payload) < 12 {
		return Batch{}, fmt.Errorf("%w: record payload of %d bytes", ErrCorrupt, len(payload))
	}
	b := Batch{Seq: binary.LittleEndian.Uint64(payload)}
	rest := payload[8:]
	nops := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	// Each op is at least 13 bytes; an inflated count cannot hide.
	if uint64(nops)*13 > uint64(len(rest)) {
		return Batch{}, fmt.Errorf("%w: %d ops in %d payload bytes", ErrCorrupt, nops, len(rest))
	}
	b.Ops = make([]Op, 0, int(nops))
	for i := uint32(0); i < nops; i++ {
		if len(rest) < 1 {
			return Batch{}, fmt.Errorf("%w: truncated op %d", ErrCorrupt, i)
		}
		op := Op{Kind: OpKind(rest[0])}
		rest = rest[1:]
		if op.Kind != OpInsert && op.Kind != OpDelete {
			return Batch{}, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, op.Kind)
		}
		for j := 0; j < 3; j++ {
			if len(rest) < 4 {
				return Batch{}, fmt.Errorf("%w: truncated op %d", ErrCorrupt, i)
			}
			slen := binary.LittleEndian.Uint32(rest)
			rest = rest[4:]
			if uint64(slen) > uint64(len(rest)) {
				return Batch{}, fmt.Errorf("%w: op %d term of %d bytes exceeds payload", ErrCorrupt, i, slen)
			}
			term := string(rest[:int(slen)])
			rest = rest[int(slen):]
			switch j {
			case 0:
				op.S = term
			case 1:
				op.P = term
			default:
				op.O = term
			}
		}
		b.Ops = append(b.Ops, op)
	}
	if len(rest) != 0 {
		return Batch{}, fmt.Errorf("%w: %d trailing bytes after ops", ErrCorrupt, len(rest))
	}
	return b, nil
}

// --- replay ---

// replayResult describes one segment's replay.
type replayResult struct {
	Batches  int
	Ops      int
	LastSeq  uint64 // highest batch seq applied (0 if none)
	ValidLen int64  // bytes of valid prefix; < file size iff a tail was torn
	Torn     bool
	// Removed marks an active segment deleted outright: the crash tore
	// its 16-byte header, so the file never held a record and its
	// sequence number may be reused.
	Removed bool
}

// replaySegment reads segment seq from dir, calling apply for each valid
// record in order. last marks the active (highest-numbered) segment: a
// torn tail there is truncated away per the package durability argument,
// while any fault in a sealed segment — or a checksum-valid record that
// does not parse — returns ErrCorrupt. replaySegment never panics on
// arbitrary bytes (FuzzWALReplay holds it to that).
func replaySegment(dir string, seq uint64, last bool, apply func(Batch) error) (replayResult, error) {
	path := filepath.Join(dir, segmentName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return replayResult{}, err
	}
	res, err := replayBytes(data, seq, last, apply)
	if err != nil {
		return res, fmt.Errorf("%s: %w", segmentName(seq), err)
	}
	switch {
	case res.Torn && res.ValidLen < segHeaderBytes:
		// The crash tore the segment header itself: no record was ever
		// written here. Truncating would leave a runt file that reads as
		// corrupt once a newer segment seals it, so delete it; the caller
		// reuses its sequence number.
		if err := os.Remove(path); err != nil {
			return res, err
		}
		res.Removed = true
		if err := syncDir(dir); err != nil {
			return res, err
		}
	case res.Torn:
		// Truncate the torn tail so the surviving prefix is canonical, and
		// sync it: if the truncation itself is not durable, a crash after
		// this segment is sealed resurrects the torn bytes as ErrCorrupt.
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return res, err
		}
		err = f.Truncate(res.ValidLen)
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return res, err
		}
		if err := syncDir(dir); err != nil {
			return res, err
		}
	}
	return res, nil
}

// replayBytes is the allocation-site-free core of replaySegment, split
// out so fuzzing can drive it with raw bytes.
func replayBytes(data []byte, seq uint64, last bool, apply func(Batch) error) (replayResult, error) {
	res := replayResult{}
	torn := func(at int64, why string) (replayResult, error) {
		if !last {
			return res, fmt.Errorf("%w: %s at offset %d in sealed segment", ErrCorrupt, why, at)
		}
		res.ValidLen = at
		res.Torn = true
		return res, nil
	}
	if len(data) < segHeaderBytes {
		return torn(0, "short segment header")
	}
	if string(data[:8]) != segMagic {
		return res, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != seq {
		return res, fmt.Errorf("%w: segment header claims seq %d, file named %d", ErrCorrupt, got, seq)
	}
	off := int64(segHeaderBytes)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			res.ValidLen = off
			return res, nil
		}
		if len(rest) < recHeaderBytes {
			return torn(off, "short record header")
		}
		rlen := binary.LittleEndian.Uint32(rest[:4])
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		if rlen > maxRecordBytes {
			return torn(off, "implausible record length")
		}
		if uint64(len(rest)-recHeaderBytes) < uint64(rlen) {
			return torn(off, "record extends past end of segment")
		}
		payload := rest[recHeaderBytes : recHeaderBytes+int64(rlen)]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return torn(off, "checksum mismatch")
		}
		batch, err := readBatch(payload)
		if err != nil {
			// Checksum-valid but unparseable: corrupt even in the active
			// segment — these bytes are what the committer wrote.
			return res, err
		}
		if err := apply(batch); err != nil {
			return res, err
		}
		res.Batches++
		res.Ops += len(batch.Ops)
		res.LastSeq = batch.Seq
		off += recHeaderBytes + int64(rlen)
	}
}
