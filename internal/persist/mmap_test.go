package persist

import (
	"fmt"
	"testing"

	"repro/internal/dict"
	"repro/internal/ring"
)

// openMmap opens a DB with the zero-copy load path active and thresholds
// small enough that flushes produce real ring files.
func openMmap(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir, Options{MemtableThreshold: 8, MaxRings: 64, NoBackground: true, Mmap: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func insertN(t *testing.T, db *DB, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("%s%d", prefix, i), "p", "o")}, true); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
	}
}

// TestMmapCheckpointInstallsViews checks the near-free install property:
// after a checkpoint in Mmap mode the store serves view-loaded rings
// backed by file mappings, and a subsequent checkpoint leaves already
// checkpointed rings untouched — the exact same *ring.Ring pointers stay
// installed, proving they were not re-decoded.
func TestMmapCheckpointInstallsViews(t *testing.T) {
	dir := t.TempDir()
	db := openMmap(t, dir)
	defer db.Close()

	insertN(t, db, "a", 20)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := db.Stats()
	if !st.Mmap {
		t.Fatal("Stats.Mmap = false with Mmap option set")
	}
	if st.MappedRings == 0 || st.MappedBytes == 0 {
		t.Fatalf("no mappings after checkpoint: %d rings, %d bytes", st.MappedRings, st.MappedBytes)
	}
	if st.LastInstallSeconds <= 0 {
		t.Fatalf("LastInstallSeconds = %v, want > 0", st.LastInstallSeconds)
	}
	if got := countP(t, db, "p"); got != 20 {
		t.Fatalf("after first checkpoint: count = %d, want 20", got)
	}

	gen1 := map[*ring.Ring]bool{}
	for _, r := range db.Snapshot().Rings() {
		gen1[r] = true
	}
	if len(gen1) == 0 {
		t.Fatal("no rings in snapshot after checkpoint")
	}

	insertN(t, db, "b", 20)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	surviving := 0
	for _, r := range db.Snapshot().Rings() {
		if gen1[r] {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("no first-generation ring pointer survived the second checkpoint: rings were re-decoded")
	}
	if got := countP(t, db, "p"); got != 40 {
		t.Fatalf("after second checkpoint: count = %d, want 40", got)
	}

	st = db.Stats()
	if st.MappedRings < surviving {
		t.Fatalf("MappedRings = %d, fewer than %d surviving mapped rings", st.MappedRings, surviving)
	}
}

// TestMmapReopenLoadsViews checks that Open in Mmap mode view-loads the
// checkpointed rings instead of decoding them.
func TestMmapReopenLoadsViews(t *testing.T) {
	dir := t.TempDir()
	db := openMmap(t, dir)
	insertN(t, db, "a", 20)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := openMmap(t, dir)
	defer db2.Close()
	st := db2.Stats()
	if !st.Mmap || st.MappedRings == 0 || st.MappedBytes == 0 {
		t.Fatalf("reopened DB has no mappings: %+v", st)
	}
	if got := countP(t, db2, "p"); got != 20 {
		t.Fatalf("reopened count = %d, want 20", got)
	}
}
