package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	wcoring "repro"
	"repro/internal/dict"
	"repro/internal/ltj"
)

func tr(s, p, o string) dict.StringTriple { return dict.StringTriple{S: s, P: p, O: o} }

// openTest opens a DB in dir with small thresholds so flushes and merges
// actually happen.
func openTest(t *testing.T, dir string, background bool) *DB {
	t.Helper()
	db, err := Open(dir, Options{MemtableThreshold: 8, MaxRings: 2, NoBackground: !background})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// countP evaluates {?x p ?y} and returns the solution count.
func countP(t *testing.T, db *DB, p string) int {
	t.Helper()
	q, _, feasible, err := db.Compile([]wcoring.PatternString{{S: "?x", P: p, O: "?y"}})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !feasible {
		return 0
	}
	res, err := db.Snapshot().Evaluate(q, ltj.Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return len(res.Solutions)
}

func TestInsertQueryReopen(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, true)
	n, err := db.InsertBatch([]dict.StringTriple{
		tr("alice", "knows", "bob"),
		tr("bob", "knows", "carol"),
		tr("alice", "likes", "carol"),
		tr("alice", "knows", "bob"), // duplicate
	}, true)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if n != 3 {
		t.Fatalf("InsertBatch applied %d, want 3", n)
	}
	if got := countP(t, db, "knows"); got != 2 {
		t.Fatalf("knows count = %d, want 2", got)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: state must come back from manifest + WAL.
	db2 := openTest(t, dir, true)
	defer db2.Close()
	if got := db2.Len(); got != 3 {
		t.Fatalf("reopened Len = %d, want 3", got)
	}
	if got := countP(t, db2, "knows"); got != 2 {
		t.Fatalf("reopened knows count = %d, want 2", got)
	}
}

func TestDeletePersists(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	db.InsertBatch([]dict.StringTriple{tr("a", "p", "b"), tr("b", "p", "c")}, true)
	n, err := db.DeleteBatch([]dict.StringTriple{tr("a", "p", "b"), tr("x", "p", "y")}, true)
	if err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	if n != 1 {
		t.Fatalf("DeleteBatch removed %d, want 1", n)
	}
	db.Close()

	db2 := openTest(t, dir, false)
	defer db2.Close()
	if got := db2.Len(); got != 1 {
		t.Fatalf("reopened Len = %d, want 1", got)
	}
	if got := countP(t, db2, "p"); got != 1 {
		t.Fatalf("reopened count = %d, want 1", got)
	}
}

// TestRecoveryWithoutCheckpoint kills the DB without Close (no final
// checkpoint): everything must come back from the WAL alone.
func TestRecoveryWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 40; i++ {
		if _, err := db.InsertBatch([]dict.StringTriple{
			tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)),
		}, true); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Abandon without Close: simulates a crash after the last fsync ack.
	db.wal.Close()
	db.store.Close()

	db2 := openTest(t, dir, false)
	defer db2.Close()
	if got := db2.Len(); got != 40 {
		t.Fatalf("recovered Len = %d, want 40", got)
	}
	st := db2.Stats()
	if st.RecoveryBatches == 0 {
		t.Fatal("expected WAL batches to be replayed")
	}
}

// TestCheckpointShrinksReplay verifies the floor advances: after a
// checkpoint, reopening replays (almost) nothing.
func TestCheckpointShrinksReplay(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 30; i++ {
		db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	db.wal.Close()
	db.store.Close()

	db2 := openTest(t, dir, false)
	defer db2.Close()
	st := db2.Stats()
	if st.RecoveryBatches != 0 {
		t.Fatalf("replayed %d batches after checkpoint, want 0", st.RecoveryBatches)
	}
	if got := db2.Len(); got != 30 {
		t.Fatalf("Len = %d, want 30", got)
	}
	if st.ManifestVersion == 0 {
		t.Fatal("manifest version still 0 after checkpoint")
	}
}

// TestGC: checkpoints must not accumulate obsolete segments or snapshot
// files.
func TestGC(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for round := 0; round < 4; round++ {
		for i := 0; i < 20; i++ {
			db.InsertBatch([]dict.StringTriple{
				tr(fmt.Sprintf("s%d-%d", round, i), "p", "o"),
			}, true)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	var segs, dicts int
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if _, ok := segmentSeq(e.Name()); ok {
			segs++
		}
		if len(e.Name()) > 5 && e.Name()[:5] == "dict-" {
			dicts++
		}
	}
	if segs != 1 {
		t.Fatalf("%d WAL segments after checkpoints, want 1 (the active one)", segs)
	}
	if dicts != 1 {
		t.Fatalf("%d dict files after checkpoints, want 1", dicts)
	}
	db.Close()
}

// TestTornTailTruncated is the pure-library crash variant: truncate the
// WAL mid-record and corrupt the tail, then recover. The torn batch must
// vanish; everything before it must survive.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 10; i++ {
		db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true)
	}
	seg := db.wal.segment.Load()
	db.wal.Close()
	db.store.Close()

	// Tear the tail: chop the last 5 bytes of the active segment.
	path := filepath.Join(dir, segmentName(seg))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir, false)
	if got := db2.Len(); got != 9 {
		t.Fatalf("recovered Len = %d, want 9 (torn batch dropped)", got)
	}
	if !db2.Stats().RecoveryTorn {
		t.Fatal("recovery did not report the torn tail")
	}
	db2.Close()

	// After truncation the segment replays cleanly.
	db3 := openTest(t, dir, false)
	defer db3.Close()
	if got := db3.Len(); got != 9 {
		t.Fatalf("second recovery Len = %d, want 9", got)
	}
}

// TestTornHeaderSegmentRemoved: a crash between segment create and the
// header fsync leaves the active segment shorter than its 16-byte
// header. Recovery must delete the runt and reuse its sequence number
// rather than truncate it: a truncated runt, once sealed under a newer
// segment by a second crash, would read as interior corruption forever.
func TestTornHeaderSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	db.InsertBatch([]dict.StringTriple{tr("a", "p", "b")}, true)
	// Close checkpoints, which rotates: the active segment is header-only.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
	}
	active := segs[len(segs)-1]
	// Tear the header: crash before the 16 header bytes became durable.
	if err := os.Truncate(filepath.Join(dir, segmentName(active)), 7); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir, false)
	if got := db2.Len(); got != 1 {
		t.Fatalf("recovered Len = %d, want 1", got)
	}
	if !db2.Stats().RecoveryTorn {
		t.Fatal("recovery did not report the torn header")
	}
	if got := db2.wal.segment.Load(); got != active {
		t.Fatalf("active segment = %d, want %d (runt's number reused)", got, active)
	}
	db2.InsertBatch([]dict.StringTriple{tr("c", "p", "d")}, true)
	// Crash again without Close: the second recovery must see a gapless
	// segment sequence (no runt left behind) and replay cleanly.
	db2.wal.Close()
	db2.store.Close()

	db3 := openTest(t, dir, false)
	defer db3.Close()
	if got := db3.Len(); got != 2 {
		t.Fatalf("second recovery Len = %d, want 2", got)
	}
}

// TestBatchTooLarge: a batch whose encoded record would exceed the
// replay size bound is rejected before it is written or applied —
// otherwise it would be acked as durable yet read back on recovery as
// a torn write and silently dropped.
func TestBatchTooLarge(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	huge := strings.Repeat("x", maxRecordBytes)
	if _, err := db.InsertBatch([]dict.StringTriple{tr(huge, "p", "o")}, true); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized InsertBatch err = %v, want ErrTooLarge", err)
	}
	if got := db.Len(); got != 0 {
		t.Fatalf("rejected batch was applied: Len = %d", got)
	}
	if _, err := db.InsertBatch([]dict.StringTriple{tr("a", "p", "b")}, true); err != nil {
		t.Fatalf("insert after rejection: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTest(t, dir, false)
	defer db2.Close()
	if got := db2.Len(); got != 1 {
		t.Fatalf("reopened Len = %d, want 1", got)
	}
}

// TestTailBitFlipTruncates: a flipped byte in the final record reads as
// a torn tail (checksum catches it) and recovery drops that record only.
func TestTailBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 10; i++ {
		db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true)
	}
	seg := db.wal.segment.Load()
	db.wal.Close()
	db.store.Close()

	path := filepath.Join(dir, segmentName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir, false)
	defer db2.Close()
	if got := db2.Len(); got != 9 {
		t.Fatalf("recovered Len = %d, want 9 (flipped record dropped)", got)
	}
}

// TestSealedSegmentCorruptionFails: the same flip inside a sealed (non
// final) segment is interior corruption and Open must refuse.
func TestSealedSegmentCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 5; i++ {
		db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true)
	}
	sealed, err := db.wal.rotate()
	if err != nil {
		t.Fatal(err)
	}
	db.InsertBatch([]dict.StringTriple{tr("after", "p", "o")}, true)
	db.wal.Close()
	db.store.Close()

	path := filepath.Join(dir, segmentName(sealed.Sealed))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{NoBackground: true}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

// TestChecksumValidGarbageFails: a record whose checksum matches but
// whose payload is malformed is corruption even in the active segment.
func TestChecksumValidGarbageFails(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	db.InsertBatch([]dict.StringTriple{tr("a", "p", "b")}, true)
	seg := db.wal.segment.Load()
	db.wal.Close()
	db.store.Close()

	// Append a well-framed record with garbage payload.
	payload := []byte("not a batch, definitely")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seg)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(hdr[:])
	f.Write(payload)
	f.Close()

	if _, err := Open(dir, Options{NoBackground: true}); err == nil {
		t.Fatal("Open accepted a checksum-valid malformed record")
	}
}

// TestManifestCorruptionDetected: a flipped manifest byte fails the CRC.
func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	db.InsertBatch([]dict.StringTriple{tr("a", "p", "b")}, true)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	path := filepath.Join(dir, manifestName)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, Options{NoBackground: true}); err == nil {
		t.Fatal("Open accepted a corrupt manifest")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 20; i++ {
		db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true)
	}
	db.Checkpoint()
	for i := 0; i < 7; i++ {
		db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("t%d", i), "q", "o")}, true)
	}
	db.wal.Close()
	db.store.Close()

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rep.ManifestVersion != 1 {
		t.Fatalf("ManifestVersion = %d, want 1", rep.ManifestVersion)
	}
	if rep.Triples != 20 {
		t.Fatalf("manifest Triples = %d, want 20", rep.Triples)
	}
	if rep.ReplayBatches != 7 {
		t.Fatalf("ReplayBatches = %d, want 7", rep.ReplayBatches)
	}
	if len(rep.Rings) == 0 {
		t.Fatal("no rings in report")
	}
	// Inspect must be read-only: opening afterwards still replays.
	db2 := openTest(t, dir, false)
	defer db2.Close()
	if got := db2.Len(); got != 27 {
		t.Fatalf("Len after Inspect+reopen = %d, want 27", got)
	}
}

// TestGroupCommitConcurrentWriters hammers the DB from many goroutines
// with sync acks; group commit must keep every acked batch and the fsync
// count should be well below the batch count.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, true)
	const writers, per = 8, 25
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				_, err := db.InsertBatch([]dict.StringTriple{
					tr(fmt.Sprintf("w%d-s%d", w, i), fmt.Sprintf("p%d", w), "o"),
				}, true)
				if err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errCh; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if got := db.Len(); got != writers*per {
		t.Fatalf("Len = %d, want %d", got, writers*per)
	}
	db.Close()

	db2 := openTest(t, dir, true)
	defer db2.Close()
	if got := db2.Len(); got != writers*per {
		t.Fatalf("recovered Len = %d, want %d", got, writers*per)
	}
}

// TestDifferential replays a randomized interleaving of inserts,
// deletes, checkpoints, and recoveries, comparing every query against a
// flat map oracle. Run under -race this also exercises the reader/writer
// contract.
func TestDifferential(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, true)
	oracle := map[dict.StringTriple]bool{}
	rng := rand.New(rand.NewSource(99))

	preds := []string{"p0", "p1", "p2"}
	randTriple := func() dict.StringTriple {
		return tr(fmt.Sprintf("n%d", rng.Intn(60)), preds[rng.Intn(len(preds))], fmt.Sprintf("n%d", rng.Intn(60)))
	}
	check := func(stage string) {
		t.Helper()
		for _, p := range preds {
			want := 0
			for tp := range oracle {
				if tp.P == p {
					want++
				}
			}
			if got := countP(t, db, p); got != want {
				t.Fatalf("%s: count(%s) = %d, oracle %d", stage, p, got, want)
			}
		}
		want := len(oracle)
		if got := db.Len(); got != want {
			t.Fatalf("%s: Len = %d, oracle %d", stage, got, want)
		}
	}

	for step := 0; step < 400; step++ {
		switch r := rng.Intn(100); {
		case r < 55:
			batch := make([]dict.StringTriple, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = randTriple()
			}
			if _, err := db.InsertBatch(batch, rng.Intn(2) == 0); err != nil {
				t.Fatalf("insert: %v", err)
			}
			for _, tp := range batch {
				oracle[tp] = true
			}
		case r < 80:
			batch := make([]dict.StringTriple, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = randTriple()
			}
			if _, err := db.DeleteBatch(batch, rng.Intn(2) == 0); err != nil {
				t.Fatalf("delete: %v", err)
			}
			for _, tp := range batch {
				delete(oracle, tp)
			}
		case r < 90:
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		default:
			// Crash-free restart (recovery path): close and reopen.
			if err := db.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			db = openTest(t, dir, true)
		}
		if step%25 == 0 {
			check(fmt.Sprintf("step %d", step))
		}
	}
	check("final")
	db.Close()
}
