package persist

import (
	"bufio"
	"errors"
	"testing"
)

// failCloseFile is a walFile whose Sync succeeds but whose Close fails —
// the shape write-back storage produces when a deferred I/O error
// surfaces only at close time.
type failCloseFile struct {
	closeErr error
}

func (f *failCloseFile) Write(p []byte) (int, error) { return len(p), nil }
func (f *failCloseFile) Sync() error                 { return nil }
func (f *failCloseFile) Close() error                { return f.closeErr }

// TestWALFinishPropagatesCloseError: finish() must record the segment
// close error. wal.Close() reports w.err() after the committer drains;
// a discarded close error there hands the caller a clean shutdown for
// bytes the kernel never promised to keep.
func TestWALFinishPropagatesCloseError(t *testing.T) {
	sentinel := errors.New("deferred write-back failure at close")
	f := &failCloseFile{closeErr: sentinel}
	w := &wal{f: f, bw: bufio.NewWriter(f), fsyncHist: newLatencyHist(fsyncBuckets)}
	w.finish()
	if err := w.err(); !errors.Is(err, sentinel) {
		t.Fatalf("finish() discarded the close error: err() = %v, want %v", err, sentinel)
	}
}
