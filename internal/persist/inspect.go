package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// RingInfo describes one checkpointed ring file.
type RingInfo struct {
	Name    string
	Triples int
	Bytes   int64
}

// SegmentInfo describes one WAL segment as found on disk. For segments
// at or above the manifest floor, Batches/Ops count the valid records a
// recovery would replay; Torn marks an unterminated tail (normal after a
// crash).
type SegmentInfo struct {
	Seq     uint64
	Bytes   int64
	Live    bool // >= manifest floor: recovery replays it
	Batches int
	Ops     int
	Torn    bool
	Err     string // non-empty if the segment is corrupt
}

// Report is Inspect's summary of a data directory.
type Report struct {
	ManifestVersion uint64
	Generation      uint64
	WALFloor        uint64
	Triples         int
	NumSO           graph.ID
	NumP            graph.ID
	DictFile        string
	DictBytes       int64
	Rings           []RingInfo
	Segments        []SegmentInfo
	// ReplayBatches/ReplayOps estimate recovery work: the valid records
	// in live segments.
	ReplayBatches int
	ReplayOps     int
	// SnapshotLastSeq is the highest batch sequence folded into the
	// snapshot (manifest lastseq); DurableSeq adds the live WAL tail: the
	// highest valid batch sequence on disk, i.e. where a recovery — or a
	// replication follower resuming — would continue from.
	SnapshotLastSeq uint64
	DurableSeq      uint64
}

// Inspect summarises a data directory without opening it: manifest
// metadata, per-ring sizes, and a read-only scan of the WAL segments
// estimating how much a recovery would replay. It never mutates the
// directory (torn tails are reported, not truncated), so it is safe to
// run against a live server's data dir.
func Inspect(dir string) (*Report, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		man = &manifest{Version: 0, WALFloor: 1, NextRing: 1}
	}
	rep := &Report{
		ManifestVersion: man.Version,
		Generation:      man.Generation,
		WALFloor:        man.WALFloor,
		Triples:         man.Triples,
		NumSO:           man.NumSO,
		NumP:            man.NumP,
		DictFile:        man.Dict.Name,
		DictBytes:       man.Dict.Bytes,
		SnapshotLastSeq: man.LastSeq,
	}
	rep.DurableSeq = man.LastSeq
	for _, r := range man.Rings {
		rep.Rings = append(rep.Rings, RingInfo{Name: r.Name, Triples: r.Triples, Bytes: r.Bytes})
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range segs {
		info := SegmentInfo{Seq: seq, Live: seq >= man.WALFloor}
		if fi, err := os.Stat(filepath.Join(dir, segmentName(seq))); err == nil {
			info.Bytes = fi.Size()
		}
		if info.Live {
			data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
			if err != nil {
				info.Err = err.Error()
			} else {
				last := i == len(segs)-1
				res, rerr := replayBytes(data, seq, last, func(Batch) error { return nil })
				info.Batches, info.Ops, info.Torn = res.Batches, res.Ops, res.Torn
				if rerr != nil {
					info.Err = rerr.Error()
				}
				rep.ReplayBatches += res.Batches
				rep.ReplayOps += res.Ops
				if res.LastSeq > rep.DurableSeq {
					rep.DurableSeq = res.LastSeq
				}
			}
		}
		rep.Segments = append(rep.Segments, info)
	}
	if rep.DictFile == "" && len(rep.Segments) == 0 {
		return nil, fmt.Errorf("persist: %s: no manifest and no WAL segments", dir)
	}
	return rep, nil
}
