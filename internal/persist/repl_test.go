package persist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dict"
)

// collectStream runs StreamWAL from seq `from` in a goroutine and
// returns a channel of records plus a cancel func.
func collectStream(t *testing.T, db *DB, from uint64) (<-chan TailRecord, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	recs := make(chan TailRecord, 256)
	errc := make(chan error, 1)
	go func() {
		errc <- db.StreamWAL(ctx, from, 0, func(r TailRecord) error {
			recs <- r
			return nil
		})
		close(recs)
	}()
	return recs, cancel, errc
}

// TestStreamWALCatchUpAndTail: records written before the stream starts
// arrive from disk, records written after arrive from the live tail, in
// one gapless sequence.
func TestStreamWALCatchUpAndTail(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	defer db.Close()

	for i := 0; i < 5; i++ {
		if _, err := db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}

	recs, cancel, errc := collectStream(t, db, 1)
	defer cancel()

	var got []TailRecord
	for len(got) < 5 {
		select {
		case r := <-recs:
			got = append(got, r)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d records", len(got))
		}
	}

	// Live tail: write five more while the stream is attached.
	for i := 5; i < 10; i++ {
		if _, err := db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	for len(got) < 10 {
		select {
		case r := <-recs:
			got = append(got, r)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d records", len(got))
		}
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
		if len(r.Payload) < 12 {
			t.Fatalf("record %d payload %d bytes, want >= 12", i, len(r.Payload))
		}
	}

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", err)
	}
}

// TestStreamWALSnapshotRequired: once a checkpoint folds batches into
// the snapshot and GC drops their segments, a stream from seq 1 must get
// ErrSnapshotRequired rather than silently skipping history.
func TestStreamWALSnapshotRequired(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	defer db.Close()

	for i := 0; i < 10; i++ {
		if _, err := db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	err := db.StreamWAL(context.Background(), 1, 0, func(TailRecord) error { return nil })
	if !errors.Is(err, ErrSnapshotRequired) {
		t.Fatalf("StreamWAL(from=1) after checkpoint = %v, want ErrSnapshotRequired", err)
	}

	// From the snapshot boundary the stream is fine (and ends cleanly on
	// Close).
	info := db.ManifestSnapshot()
	if info.LastSeq != 10 {
		t.Fatalf("manifest LastSeq = %d, want 10", info.LastSeq)
	}
	recs, cancel, _ := collectStream(t, db, info.LastSeq+1)
	defer cancel()
	if _, err := db.InsertBatch([]dict.StringTriple{tr("post", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-recs:
		if r.Seq != 11 {
			t.Fatalf("first post-snapshot record seq %d, want 11", r.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for post-snapshot record")
	}
}

// TestApplyReplicatedRoundTrip: records shipped from one DB and applied
// to another preserve sequence numbers, survive restart, and yield the
// same triples.
func TestApplyReplicatedRoundTrip(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := openTest(t, ldir, false)
	defer leader.Close()
	follower := openTest(t, fdir, false)

	for i := 0; i < 8; i++ {
		if _, err := leader.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.DeleteBatch([]dict.StringTriple{tr("s3", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	shipped := 0
	errc := make(chan error, 1)
	go func() {
		errc <- leader.StreamWAL(ctx, 1, 0, func(r TailRecord) error {
			b, err := DecodeRecordPayload(r.Payload)
			if err != nil {
				return err
			}
			if err := follower.ApplyReplicated(b, true); err != nil {
				return err
			}
			shipped++
			if shipped == 9 {
				cancel()
			}
			return nil
		})
	}()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("stream: %v", err)
	}

	if got, want := follower.AppliedSeq(), uint64(9); got != want {
		t.Fatalf("follower applied seq %d, want %d", got, want)
	}
	if got, want := follower.DurableSeq(), uint64(9); got != want {
		t.Fatalf("follower durable seq %d, want %d", got, want)
	}
	if got, want := countP(t, follower, "p"), 7; got != want {
		t.Fatalf("follower has %d p-triples, want %d", got, want)
	}

	// Restart the follower: recovery must land on the same seq, so a
	// resumed stream continues exactly where it left off.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	follower = openTest(t, fdir, false)
	defer follower.Close()
	if got, want := follower.AppliedSeq(), uint64(9); got != want {
		t.Fatalf("restarted follower applied seq %d, want %d", got, want)
	}
	if got, want := follower.NextSeq(), uint64(10); got != want {
		t.Fatalf("restarted follower next seq %d, want %d", got, want)
	}

	// A gapped batch is refused.
	err := follower.ApplyReplicated(Batch{Seq: 12, Ops: []Op{{Kind: OpInsert, S: "gap", P: "p", O: "o"}}}, false)
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gapped apply = %v, want ErrSeqGap", err)
	}
	// The next contiguous one is accepted.
	if err := follower.ApplyReplicated(Batch{Seq: 10, Ops: []Op{{Kind: OpInsert, S: "next", P: "p", O: "o"}}}, true); err != nil {
		t.Fatalf("contiguous apply: %v", err)
	}
}

// TestManifestLastSeqRoundTrip: lastseq encodes, decodes, and seeds
// recovery; manifests without it stay byte-identical.
func TestManifestLastSeqRoundTrip(t *testing.T) {
	m := &manifest{Version: 3, WALFloor: 7, LastSeq: 41, NextRing: 2, Triples: 5,
		Dict: fileRef{Name: "dict-000003.dict", Bytes: 100}}
	got, err := readManifestBytes(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 41 {
		t.Fatalf("decoded LastSeq = %d, want 41", got.LastSeq)
	}

	m.LastSeq = 0
	enc := m.encode()
	if _, err := readManifestBytes(enc); err != nil {
		t.Fatalf("zero-LastSeq manifest: %v", err)
	}
	for _, line := range []string{"lastseq"} {
		if containsLine(enc, line) {
			t.Fatalf("zero LastSeq still encoded %q", line)
		}
	}
}

func containsLine(data []byte, key string) bool {
	for _, l := range splitLines(string(data)) {
		if len(l) >= len(key) && l[:len(key)] == key {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

// TestWaitApplied: a waiter blocks until the store reaches the target
// sequence and wakes promptly when it does.
func TestWaitApplied(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	defer db.Close()

	if _, err := db.InsertBatch([]dict.StringTriple{tr("a", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}
	// Already applied: returns immediately.
	if err := db.WaitApplied(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	werr := make(chan error, 1)
	go func() {
		defer wg.Done()
		werr <- db.WaitApplied(context.Background(), 2)
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := db.InsertBatch([]dict.StringTriple{tr("b", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := <-werr; err != nil {
		t.Fatalf("WaitApplied(2): %v", err)
	}

	// Context cancellation unblocks a waiter that can never be satisfied.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := db.WaitApplied(ctx, 1<<40); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitApplied(huge) = %v, want deadline exceeded", err)
	}
}

// TestMutateReturnsSeq: mutations report their committed sequence so
// clients can read-their-writes on a replica.
func TestMutateReturnsSeq(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	defer db.Close()

	_, seq1, err := db.Mutate(OpInsert, []dict.StringTriple{tr("a", "p", "o")}, true)
	if err != nil {
		t.Fatal(err)
	}
	_, seq2, err := db.Mutate(OpDelete, []dict.StringTriple{tr("a", "p", "o")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != 1 || seq2 != 2 {
		t.Fatalf("seqs = %d, %d; want 1, 2", seq1, seq2)
	}
	st := db.Stats()
	if st.AppliedSeq != 2 || st.DurableSeq != 2 {
		t.Fatalf("stats applied/durable = %d/%d, want 2/2", st.AppliedSeq, st.DurableSeq)
	}
}

// TestInspectDurableSeq: the offline report exposes snapshot and WAL-tail
// sequences for ringstats.
func TestInspectDurableSeq(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, false)
	for i := 0; i < 6; i++ {
		if _, err := db.InsertBatch([]dict.StringTriple{tr(fmt.Sprintf("s%d", i), "p", "o")}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertBatch([]dict.StringTriple{tr("tail", "p", "o")}, true); err != nil {
		t.Fatal(err)
	}
	// Inspect the live directory (Close would checkpoint and fold the
	// tail): the snapshot covers 6, the WAL tail carries the 7th.
	defer db.Close()

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotLastSeq != 6 {
		t.Fatalf("SnapshotLastSeq = %d, want 6", rep.SnapshotLastSeq)
	}
	if rep.DurableSeq != 7 {
		t.Fatalf("DurableSeq = %d, want 7", rep.DurableSeq)
	}
}
