package wavelet

import "fmt"

// Runtime assertion hooks for the ringdebug build tag, called behind
// `if ringdebugEnabled { ... }` so normal builds eliminate them entirely.

// debugCheckLevels cross-checks the zeros counters against the level
// bitvectors: zeros[l] must equal the number of 0-bits at level l. Called
// after deserialization, where a corrupt or stale counter would silently
// derail every descent.
func (m *Matrix) debugCheckLevels() {
	for l := uint(0); l < m.width; l++ {
		if z := m.levels[l].Rank0(m.n); z != m.zeros[l] {
			panic(fmt.Sprintf("ringdebug: wavelet: level %d zeros counter %d disagrees with bitvector (%d zero bits)",
				l, m.zeros[l], z))
		}
	}
}

// debugCheckAccess asserts Access results stay inside the alphabet.
func (m *Matrix) debugCheckAccess(v uint64) {
	if v >= m.sigma {
		panic(fmt.Sprintf("ringdebug: wavelet: Access returned %d outside alphabet [0,%d)", v, m.sigma))
	}
}

// debugCheckSelect asserts the select inverse: position pos holds symbol c
// and has exactly k-1 occurrences of c before it.
func (m *Matrix) debugCheckSelect(c uint64, k, pos int) {
	if pos < 0 || pos >= m.n {
		panic(fmt.Sprintf("ringdebug: wavelet: Select(%d, %d) = %d outside [0,%d)", c, k, pos, m.n))
	}
	if got := m.Access(pos); got != c {
		panic(fmt.Sprintf("ringdebug: wavelet: Select(%d, %d) = %d but Access there reads %d", c, k, pos, got))
	}
	if got := m.Rank(c, pos); got != k-1 {
		panic(fmt.Sprintf("ringdebug: wavelet: Select(%d, %d) = %d violates the rank inverse (rank=%d)", c, k, pos, got))
	}
}

// debugCheckNextValues asserts the batched range-successor contract: the
// appended symbols are strictly increasing, all ≥ c, and each agrees
// with the scalar RangeNextValue chain starting at c — the batched walk
// must be indistinguishable from repeated scalar leaps.
func (m *Matrix) debugCheckNextValues(lo, hi int, c uint64, got []uint64) {
	want := c
	for i, v := range got {
		if v < want {
			panic(fmt.Sprintf("ringdebug: wavelet: NextValues(%d, %d, %d)[%d] = %d below lower bound %d",
				lo, hi, c, i, v, want))
		}
		sv, ok := m.rangeNext(lo, hi, want)
		if !ok || sv != v {
			panic(fmt.Sprintf("ringdebug: wavelet: NextValues(%d, %d, %d)[%d] = %d disagrees with scalar RangeNextValue (%d, %v)",
				lo, hi, c, i, v, sv, ok))
		}
		want = v + 1
	}
}

// debugWrapIntersect wraps an IntersectRanges emit callback with the
// batched-emission assertions: values strictly increasing, and (sampled)
// actually present in every input range.
func debugWrapIntersect(rs []MatrixRange, emit func(uint64) bool) func(uint64) bool {
	var last uint64
	n := 0
	return func(v uint64) bool {
		n++
		if n > 1 && v <= last {
			panic(fmt.Sprintf("ringdebug: wavelet: IntersectRanges emitted %d after %d — not strictly increasing", v, last))
		}
		last = v
		if n&7 == 1 {
			for _, r := range rs {
				lo, hi := r.Lo, r.Hi
				if lo < 0 {
					lo = 0
				}
				if hi > r.M.n {
					hi = r.M.n
				}
				if r.M.Count(v, lo, hi) == 0 {
					panic(fmt.Sprintf("ringdebug: wavelet: IntersectRanges emitted %d, absent from range [%d,%d)", v, r.Lo, r.Hi))
				}
			}
		}
		return emit(v)
	}
}

// debugCheckRangeNext asserts the range-successor contract: the returned
// symbol is ≥ c, inside the alphabet, and actually occurs in [lo, hi).
func (m *Matrix) debugCheckRangeNext(lo, hi int, c, v uint64) {
	if v < c || v >= m.sigma {
		panic(fmt.Sprintf("ringdebug: wavelet: RangeNextValue(%d, %d, %d) returned %d outside [%d,%d)",
			lo, hi, c, v, c, m.sigma))
	}
	if m.Count(v, lo, hi) == 0 {
		panic(fmt.Sprintf("ringdebug: wavelet: RangeNextValue(%d, %d, %d) returned %d, which does not occur in the range",
			lo, hi, c, v))
	}
}
