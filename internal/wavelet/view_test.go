package wavelet

import (
	"bytes"
	"math/rand"
	"testing"
	"unsafe"
)

// alignedCopy returns a copy of data whose base address is 8-byte
// aligned plus skew — skew 0 exercises the zero-copy aliasing path,
// skew 1..7 the misaligned copy fallback.
func alignedCopy(data []byte, skew int) []byte {
	buf := make([]byte, len(data)+16)
	off := (8 - int(uintptr(unsafe.Pointer(&buf[0])))%8) % 8
	off += skew
	copy(buf[off:], data)
	return buf[off : off+len(data)]
}

func serialize(t *testing.T, m *Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestViewMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, tc := range allOpts {
		s := randomSeq(rng, 900, 57)
		data := serialize(t, New(s, 57, tc.opt))
		for _, skew := range []int{0, 3} {
			m, consumed, err := View(alignedCopy(data, skew))
			if err != nil {
				t.Fatalf("%s skew %d: %v", tc.name, skew, err)
			}
			if consumed != len(data) {
				t.Fatalf("%s skew %d: consumed %d of %d bytes", tc.name, skew, consumed, len(data))
			}
			if m.Len() != len(s) || m.Sigma() != 57 {
				t.Fatalf("%s skew %d: header mismatch", tc.name, skew)
			}
			for i := range s {
				if m.Access(i) != s[i] {
					t.Fatalf("%s skew %d: Access(%d) = %d, want %d", tc.name, skew, i, m.Access(i), s[i])
				}
			}
			for c := uint64(0); c < 57; c += 7 {
				if got, want := m.Rank(c, len(s)), naiveRank(s, c, len(s)); got != want {
					t.Fatalf("%s skew %d: Rank(%d) = %d, want %d", tc.name, skew, c, got, want)
				}
			}
		}
	}
}

func TestViewTruncationsError(t *testing.T) {
	s := randomSeq(rand.New(rand.NewSource(62)), 300, 20)
	for _, tc := range allOpts {
		data := serialize(t, New(s, 20, tc.opt))
		for i := 0; i < len(data); i++ {
			if _, _, err := View(alignedCopy(data[:i], 0)); err == nil {
				t.Errorf("%s: accepted truncation to %d of %d bytes", tc.name, i, len(data))
			}
		}
	}
}

// TestViewBitFlips corrupts each serialization one byte at a time: View
// must either reject the input or answer queries without panicking.
func TestViewBitFlips(t *testing.T) {
	if ringdebugEnabled {
		t.Skip("corrupt-but-accepted input returns wrong answers by policy, which legitimately trips ringdebug assertions")
	}
	s := randomSeq(rand.New(rand.NewSource(63)), 250, 33)
	for _, tc := range allOpts {
		data := serialize(t, New(s, 33, tc.opt))
		for i := 0; i < len(data); i++ {
			c := alignedCopy(data, 0)
			c[i] ^= 0x5A
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on byte %d flipped: %v", tc.name, i, r)
					}
				}()
				m, _, err := View(c)
				if err != nil {
					return
				}
				n := m.Len()
				if n > 100000 {
					n = 100000
				}
				for j := 0; j < n; j += 3 {
					m.Access(j)
				}
				for sym := uint64(0); sym < m.Sigma() && sym < 64; sym++ {
					if k := m.Rank(sym, n); k > 0 {
						m.Select(sym, 1)
						m.Select(sym, k)
					}
				}
				m.RangeNextValue(0, n, 5)
			}()
		}
	}
}
