package wavelet

import (
	"math/rand"
	"sync"
	"testing"
)

// Sequence-level substrate benchmarks. One shared matrix pair (plain and
// RRR-compressed levels) over a Zipf-ish sequence that resembles a BWT
// column: a few very frequent symbols plus a long tail.

const (
	benchN     = 1 << 19
	benchSigma = 1 << 14
)

var (
	sinkInt  int
	sinkU64  uint64
	sinkBool bool
)

type benchMats struct {
	seq   []uint64
	plain *Matrix
	rrr16 *Matrix
}

var (
	benchOnce sync.Once
	benchEnv  *benchMats
)

func loadBenchMats() *benchMats {
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(51))
		zipf := rand.NewZipf(rng, 1.3, 8, benchSigma-1)
		seq := make([]uint64, benchN)
		for i := range seq {
			seq[i] = zipf.Uint64()
		}
		benchEnv = &benchMats{
			seq:   seq,
			plain: New(seq, benchSigma, Options{}),
			rrr16: New(seq, benchSigma, Options{Compress: true, RRRBlock: 16}),
		}
	})
	return benchEnv
}

var benchVariants = []struct {
	name string
	get  func(*benchMats) *Matrix
}{
	{"plain", func(e *benchMats) *Matrix { return e.plain }},
	{"rrr16", func(e *benchMats) *Matrix { return e.rrr16 }},
}

// benchQueries draws (symbol, k) pairs with k in-range for the symbol, so
// Select exercises the full descent+ascent, not the early-out.
func benchQueries(m *Matrix, seq []uint64) (cs []uint64, ks []int) {
	rng := rand.New(rand.NewSource(52))
	cs = make([]uint64, 1024)
	ks = make([]int, 1024)
	for i := range cs {
		c := seq[rng.Intn(len(seq))]
		cs[i] = c
		ks[i] = 1 + rng.Intn(m.Rank(c, m.Len()))
	}
	return cs, ks
}

func BenchmarkWaveletAccess(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchMats()
			m := v.get(e)
			is := rand.New(rand.NewSource(53)).Perm(1024)
			b.ResetTimer()
			var s uint64
			for i := 0; i < b.N; i++ {
				s += m.Access(is[i&1023] * (benchN / 1024))
			}
			sinkU64 = s
		})
	}
}

func BenchmarkWaveletRank(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchMats()
			m := v.get(e)
			cs, _ := benchQueries(m, e.seq)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += m.Rank(cs[i&1023], benchN/2)
			}
			sinkInt = s
		})
	}
}

func BenchmarkWaveletRank2(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchMats()
			m := v.get(e)
			cs, _ := benchQueries(m, e.seq)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				lo, hi := m.Rank2(cs[i&1023], benchN/4, 3*benchN/4)
				s += hi - lo
			}
			sinkInt = s
		})
	}
}

func BenchmarkWaveletSelect(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchMats()
			m := v.get(e)
			cs, ks := benchQueries(m, e.seq)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				s += m.Select(cs[i&1023], ks[i&1023])
			}
			sinkInt = s
		})
	}
}

func BenchmarkWaveletRangeNext(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchMats()
			m := v.get(e)
			cs, _ := benchQueries(m, e.seq)
			b.ResetTimer()
			var s uint64
			for i := 0; i < b.N; i++ {
				val, ok := m.RangeNextValue(benchN/4, 3*benchN/4, cs[i&1023])
				if ok {
					s += val
				}
			}
			sinkU64 = s
		})
	}
}

func BenchmarkWaveletDistinct(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			e := loadBenchMats()
			m := v.get(e)
			b.ResetTimer()
			s := 0
			for i := 0; i < b.N; i++ {
				lo := (i * 509) & (benchN - 1)
				hi := lo + 512
				if hi > benchN {
					hi = benchN
				}
				m.DistinctInRange(lo, hi, func(c uint64, cnt int) bool {
					s += cnt
					return true
				})
			}
			sinkInt = s
		})
	}
}
