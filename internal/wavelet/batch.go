package wavelet

// Batched descents (DESIGN.md §13). A wavelet matrix is a radix tree over
// the alphabet: the level-l node for a bit-prefix p is a contiguous slice
// of level l, and any position range [lo, hi) of the root maps to one
// sub-range per node on the way down. That makes two batched operations
// natural:
//
//   - NextValues: one pruned DFS that reports a *run* of range successors,
//     where the scalar RangeNextValue would pay a root-to-leaf descent per
//     value;
//   - IntersectRanges: carry several ranges (one per triple pattern
//     touching a join variable) down the levels together and abandon a
//     subtree the moment any range runs empty in it — the radix-triejoin
//     intersection of the ranges' distinct-value sets, computed without
//     ever materializing them.
//
// Both share the pooled frame machinery with distinct, so the engine's
// per-variable calls do not allocate.

import (
	"fmt"
	"sync"
)

// MatrixRange names a half-open position range [Lo, Hi) of one matrix.
// IntersectRanges accepts ranges over *different* matrices as long as
// they share the same level width — how the ring intersects, say, subject
// candidates across its SPO and POS columns, which code the same
// alphabet.
type MatrixRange struct {
	M      *Matrix
	Lo, Hi int
}

// Width returns the number of levels (bits used to code σ-1). Two
// matrices are intersectable by IntersectRanges iff their widths agree.
func (m *Matrix) Width() uint { return m.width }

// dnode is one parked DFS sibling: the 1-child of a node whose 0-child
// the walk descended into. Symbols surface in sorted order because the
// 0-child is always explored first.
type dnode struct {
	l      uint
	lo, hi int
	prefix uint64
}

// dnodePool recycles the single-range DFS stack shared by distinct and
// nextValues. The stack holds at most one parked sibling per level
// (width ≤ 64); pooling it avoids both an allocation and the 2KB of
// zeroing a fixed [64]dnode array would cost on every call.
var dnodePool = sync.Pool{
	New: func() any { s := make([]dnode, 0, 64); return &s },
}

// NextValues appends to buf the distinct symbols ≥ c occurring in
// S[lo, hi), in increasing order, until buf reaches its capacity or the
// range is exhausted, and returns the extended slice. One call costs a
// single DFS that prunes every subtree whose maximum value is below c —
// the batched replacement for cap(buf)-len(buf) independent
// RangeNextValue descents when the caller (the ring's BatchLeap) knows
// it wants a run of successors. buf needs spare capacity
// (len(buf) < cap(buf)) for anything to be appended.
func (m *Matrix) NextValues(lo, hi int, c uint64, buf []uint64) []uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > m.n {
		hi = m.n
	}
	if lo >= hi || c >= m.sigma || len(buf) == cap(buf) {
		return buf
	}
	n0 := len(buf)
	buf = m.nextValues(lo, hi, c, buf)
	if ringdebugEnabled {
		m.debugCheckNextValues(lo, hi, c, buf[n0:])
	}
	return buf
}

// nextValues is the hot DFS behind NextValues: distinct-symbol
// enumeration with a lower bound, pruning any subtree whose value
// interval lies entirely below c.
//
//ringlint:hotpath
func (m *Matrix) nextValues(lo, hi int, c uint64, buf []uint64) []uint64 {
	sp := dnodePool.Get().(*[]dnode)
	stack := (*sp)[:0]
	cur := dnode{0, lo, hi, 0}
	for {
		if cur.lo < cur.hi && m.subtreeMax(cur.l, cur.prefix) >= c {
			if cur.l < m.width {
				r1lo, r1hi := m.rank1(cur.l, cur.lo), m.rank1(cur.l, cur.hi)
				z := m.zeros[cur.l]
				stack = append(stack, dnode{cur.l + 1, z + r1lo, z + r1hi, cur.prefix<<1 | 1})
				cur = dnode{cur.l + 1, cur.lo - r1lo, cur.hi - r1hi, cur.prefix << 1}
				continue
			}
			buf = append(buf, cur.prefix)
			if len(buf) == cap(buf) {
				break
			}
		}
		if len(stack) == 0 {
			break
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	}
	*sp = stack[:0]
	dnodePool.Put(sp)
	return buf
}

// subtreeMax returns the largest value codable below the level-l node
// with bit-prefix p: the prefix followed by all-one bits.
//
//ringlint:hotpath
func (m *Matrix) subtreeMax(l uint, prefix uint64) uint64 {
	s := m.width - l
	if s >= 64 {
		return ^uint64(0)
	}
	return prefix<<s | (1<<s - 1)
}

// isFrame parks the 1-children of a k-range node whose two child sets
// both survive in every range; the k child ranges live in a flat bounds
// arena so pushing and popping are plain copies.
type isFrame struct {
	l      uint
	prefix uint64
	off    int // parked child ranges at bounds[off : off+2k]
}

// isScratch holds the per-call buffers of intersectRanges. ensureScratch
// sizes every capacity to the worst case (one parked sibling per level),
// so the self-appends in the hot loop never grow a slice.
type isScratch struct {
	frames []isFrame
	bounds []int // flat [lo,hi) pairs, 2k ints per parked frame
	cur    []int // ranges of the node being expanded
	zb, ob []int // 0-/1-child ranges under construction
}

var isPool = sync.Pool{New: func() any { return new(isScratch) }}

func ensureScratch(k int, w uint) *isScratch {
	sc := isPool.Get().(*isScratch)
	if cap(sc.cur) < 2*k {
		sc.cur = make([]int, 2*k)
		sc.zb = make([]int, 2*k)
		sc.ob = make([]int, 2*k)
	}
	if cap(sc.frames) < int(w) {
		sc.frames = make([]isFrame, 0, w)
	}
	if cap(sc.bounds) < 2*k*int(w) {
		sc.bounds = make([]int, 0, 2*k*int(w))
	}
	return sc
}

// IntersectRanges emits, in increasing order, every symbol that occurs
// in ALL of the given ranges — the intersection of their distinct-value
// sets — with one level-synchronous descent that carries the k ranges
// together. A radix subtree is abandoned the moment any range runs empty
// in it, so for output size r the walk touches O(r log(σ/r)) tree nodes
// at k ranks each, against k full descents *per candidate* for the
// leapfrog equivalent.
//
// All ranges must lie over matrices of the same level width (they may be
// different matrices); IntersectRanges panics otherwise, since width is
// a static property of the indexes being joined and a mismatch is a
// caller bug, not a data condition. Ranges are clamped to their matrix
// bounds. Enumeration stops early when emit returns false. With k == 1
// this degrades to distinct-value enumeration without multiplicities.
func IntersectRanges(rs []MatrixRange, emit func(v uint64) bool) {
	if len(rs) == 0 {
		return
	}
	w := rs[0].M.width
	for i := range rs {
		if got := rs[i].M.width; got != w {
			panic(fmt.Sprintf("wavelet: IntersectRanges width mismatch: %d vs %d levels", got, w))
		}
	}
	if ringdebugEnabled {
		emit = debugWrapIntersect(rs, emit)
	}
	sc := ensureScratch(len(rs), w)
	intersectRanges(rs, w, sc, emit)
	isPool.Put(sc)
}

// IntersectRanges emits the symbols common to several ranges of this
// matrix; see the package-level IntersectRanges for the contract.
func (m *Matrix) IntersectRanges(ranges [][2]int, emit func(v uint64) bool) {
	rs := make([]MatrixRange, len(ranges))
	for i, r := range ranges {
		rs[i] = MatrixRange{M: m, Lo: r[0], Hi: r[1]}
	}
	IntersectRanges(rs, emit)
}

// intersectRanges is the hot DFS behind IntersectRanges. Per node it
// computes the k pairs of child ranges into zb/ob with one rank pair per
// range, then either descends (swapping the buffers — no copying) into
// the surviving child, parking the 1-child when both survive, or pops
// the deepest parked sibling.
//
//ringlint:hotpath
func intersectRanges(rs []MatrixRange, w uint, sc *isScratch, emit func(v uint64) bool) {
	k := len(rs)
	cur := sc.cur[:2*k]
	zb := sc.zb[:2*k]
	ob := sc.ob[:2*k]
	for i := 0; i < k; i++ {
		lo, hi := rs[i].Lo, rs[i].Hi
		if lo < 0 {
			lo = 0
		}
		if n := rs[i].M.n; hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		cur[2*i], cur[2*i+1] = lo, hi
	}
	frames := sc.frames[:0]
	bounds := sc.bounds[:0]
	l, prefix := uint(0), uint64(0)
	for {
		if l < w {
			zeroOK, oneOK := true, true
			for i := 0; i < k; i++ {
				m := rs[i].M
				lo, hi := cur[2*i], cur[2*i+1]
				r1lo, r1hi := m.rank1(l, lo), m.rank1(l, hi)
				z := m.zeros[l]
				if lo-r1lo >= hi-r1hi {
					zeroOK = false
				}
				if r1lo >= r1hi {
					oneOK = false
				}
				zb[2*i], zb[2*i+1] = lo-r1lo, hi-r1hi
				ob[2*i], ob[2*i+1] = z+r1lo, z+r1hi
			}
			if zeroOK {
				if oneOK {
					frames = append(frames, isFrame{l + 1, prefix<<1 | 1, len(bounds)})
					bounds = append(bounds, ob...)
				}
				cur, zb = zb, cur
				l, prefix = l+1, prefix<<1
				continue
			}
			if oneOK {
				cur, ob = ob, cur
				l, prefix = l+1, prefix<<1|1
				continue
			}
		} else if !emit(prefix) {
			break
		}
		if len(frames) == 0 {
			break
		}
		f := frames[len(frames)-1]
		frames = frames[:len(frames)-1]
		l, prefix = f.l, f.prefix
		copy(cur, bounds[f.off:f.off+2*k])
		bounds = bounds[:f.off]
	}
	// Hand the (swapped-around) buffers back so the pool keeps them warm.
	sc.cur, sc.zb, sc.ob = cur, zb, ob
	sc.frames, sc.bounds = frames[:0], bounds[:0]
}
