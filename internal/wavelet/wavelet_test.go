package wavelet

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomSeq(rng *rand.Rand, n int, sigma uint64) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(rng.Int63n(int64(sigma)))
	}
	return s
}

func naiveRank(s []uint64, c uint64, i int) int {
	cnt := 0
	for j := 0; j < i && j < len(s); j++ {
		if s[j] == c {
			cnt++
		}
	}
	return cnt
}

func naiveSelect(s []uint64, c uint64, k int) int {
	for i, v := range s {
		if v == c {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func naiveRangeNext(s []uint64, lo, hi int, c uint64) (uint64, bool) {
	best, found := uint64(0), false
	for i := lo; i < hi && i < len(s); i++ {
		if s[i] >= c && (!found || s[i] < best) {
			best, found = s[i], true
		}
	}
	return best, found
}

var allOpts = []struct {
	name string
	opt  Options
}{
	{"plain", Options{}},
	{"rrr16", Options{Compress: true, RRRBlock: 16}},
	{"rrr64", Options{Compress: true, RRRBlock: 64}},
}

func TestAccessRankSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range allOpts {
		t.Run(tc.name, func(t *testing.T) {
			for _, sigma := range []uint64{1, 2, 3, 7, 8, 100, 1000} {
				n := 500
				s := randomSeq(rng, n, sigma)
				m := New(s, sigma, tc.opt)
				for i := 0; i < n; i++ {
					if got := m.Access(i); got != s[i] {
						t.Fatalf("σ=%d: Access(%d) = %d, want %d", sigma, i, got, s[i])
					}
				}
				for trial := 0; trial < 300; trial++ {
					c := uint64(rng.Int63n(int64(sigma)))
					i := rng.Intn(n + 1)
					if got, want := m.Rank(c, i), naiveRank(s, c, i); got != want {
						t.Fatalf("σ=%d: Rank(%d,%d) = %d, want %d", sigma, c, i, got, want)
					}
				}
				for trial := 0; trial < 100; trial++ {
					c := uint64(rng.Int63n(int64(sigma)))
					total := naiveRank(s, c, n)
					if total == 0 {
						if got := m.Select(c, 1); got != -1 {
							t.Fatalf("σ=%d: Select(%d,1) = %d for absent symbol, want -1", sigma, c, got)
						}
						continue
					}
					k := 1 + rng.Intn(total)
					if got, want := m.Select(c, k), naiveSelect(s, c, k); got != want {
						t.Fatalf("σ=%d: Select(%d,%d) = %d, want %d", sigma, c, k, got, want)
					}
					if got := m.Select(c, total+1); got != -1 {
						t.Fatalf("σ=%d: Select(%d,%d) past end = %d, want -1", sigma, c, total+1, got)
					}
				}
			}
		})
	}
}

func TestRangeNextValue(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, tc := range allOpts {
		t.Run(tc.name, func(t *testing.T) {
			for _, sigma := range []uint64{2, 5, 64, 300} {
				n := 400
				s := randomSeq(rng, n, sigma)
				m := New(s, sigma, tc.opt)
				for trial := 0; trial < 500; trial++ {
					lo := rng.Intn(n + 1)
					hi := lo + rng.Intn(n+1-lo)
					c := uint64(rng.Int63n(int64(sigma)))
					got, ok := m.RangeNextValue(lo, hi, c)
					want, wok := naiveRangeNext(s, lo, hi, c)
					if ok != wok || (ok && got != want) {
						t.Fatalf("σ=%d: RangeNextValue(%d,%d,%d) = (%d,%v), want (%d,%v)",
							sigma, lo, hi, c, got, ok, want, wok)
					}
				}
			}
		})
	}
}

func TestRangeNextValueEdges(t *testing.T) {
	s := []uint64{5, 1, 9, 1, 5}
	m := New(s, 10, Options{})
	if _, ok := m.RangeNextValue(0, 0, 0); ok {
		t.Error("empty range reported a value")
	}
	if _, ok := m.RangeNextValue(3, 2, 0); ok {
		t.Error("inverted range reported a value")
	}
	if v, ok := m.RangeNextValue(0, 5, 6); !ok || v != 9 {
		t.Errorf("RangeNextValue(0,5,6) = (%d,%v), want (9,true)", v, ok)
	}
	if _, ok := m.RangeNextValue(0, 5, 10); ok {
		t.Error("c beyond alphabet reported a value")
	}
	// Clamping of out-of-bound ranges.
	if v, ok := m.RangeNextValue(-3, 99, 9); !ok || v != 9 {
		t.Errorf("clamped RangeNextValue = (%d,%v), want (9,true)", v, ok)
	}
}

func TestDistinctInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range allOpts {
		s := randomSeq(rng, 300, 40)
		m := New(s, 40, tc.opt)
		for trial := 0; trial < 100; trial++ {
			lo := rng.Intn(len(s) + 1)
			hi := lo + rng.Intn(len(s)+1-lo)
			want := map[uint64]int{}
			for i := lo; i < hi; i++ {
				want[s[i]]++
			}
			var gotSyms []uint64
			got := map[uint64]int{}
			m.DistinctInRange(lo, hi, func(c uint64, cnt int) bool {
				gotSyms = append(gotSyms, c)
				got[c] = cnt
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%s: distinct count = %d, want %d", tc.name, len(got), len(want))
			}
			for c, cnt := range want {
				if got[c] != cnt {
					t.Fatalf("%s: symbol %d count = %d, want %d", tc.name, c, got[c], cnt)
				}
			}
			if !sort.SliceIsSorted(gotSyms, func(i, j int) bool { return gotSyms[i] < gotSyms[j] }) {
				t.Fatalf("%s: symbols not emitted in sorted order: %v", tc.name, gotSyms)
			}
		}
	}
}

func TestDistinctInRangeEarlyStop(t *testing.T) {
	s := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	m := New(s, 10, Options{})
	calls := 0
	m.DistinctInRange(0, len(s), func(c uint64, cnt int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop made %d calls, want 3", calls)
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	s := []uint64{0, 0, 0, 0}
	m := New(s, 1, Options{})
	if m.Access(2) != 0 || m.Rank(0, 4) != 4 || m.Select(0, 3) != 2 {
		t.Error("σ=1 operations incorrect")
	}
	v, ok := m.RangeNextValue(1, 3, 0)
	if !ok || v != 0 {
		t.Errorf("σ=1 RangeNextValue = (%d,%v)", v, ok)
	}
}

func TestEmptySequence(t *testing.T) {
	m := New(nil, 10, Options{})
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	if m.Rank(3, 0) != 0 || m.Select(3, 1) != -1 {
		t.Error("empty sequence rank/select incorrect")
	}
	if _, ok := m.RangeNextValue(0, 0, 0); ok {
		t.Error("empty sequence reported a value")
	}
}

func TestQuickAccessIsInput(t *testing.T) {
	f := func(raw []uint16, sigmaRaw uint16) bool {
		sigma := uint64(sigmaRaw%500) + 1
		s := make([]uint64, len(raw))
		for i, v := range raw {
			s[i] = uint64(v) % sigma
		}
		for _, tc := range allOpts {
			m := New(s, sigma, tc.opt)
			for i := range s {
				if m.Access(i) != s[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRankSelectInverse(t *testing.T) {
	f := func(raw []uint8, sigmaRaw uint8) bool {
		sigma := uint64(sigmaRaw%60) + 1
		s := make([]uint64, len(raw))
		for i, v := range raw {
			s[i] = uint64(v) % sigma
		}
		m := New(s, sigma, Options{})
		for c := uint64(0); c < sigma; c++ {
			total := m.Rank(c, len(s))
			for k := 1; k <= total; k++ {
				p := m.Select(c, k)
				if p < 0 || m.Access(p) != c || m.Rank(c, p) != k-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, tc := range allOpts {
		s := randomSeq(rng, 700, 123)
		m := New(s, 123, tc.opt)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", tc.name, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: Read: %v", tc.name, err)
		}
		if got.Len() != m.Len() || got.Sigma() != m.Sigma() {
			t.Fatalf("%s: header mismatch after round-trip", tc.name)
		}
		for i := range s {
			if got.Access(i) != s[i] {
				t.Fatalf("%s: Access(%d) mismatch after round-trip", tc.name, i)
			}
		}
	}
}

func TestSerializationCorrupt(t *testing.T) {
	s := randomSeq(rand.New(rand.NewSource(25)), 100, 10)
	m := New(s, 10, Options{})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("accepted truncated stream")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 1
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
}

func TestCompressedSmallerOnSkewed(t *testing.T) {
	// Highly repetitive sequence: RRR levels should beat plain levels.
	n := 1 << 15
	s := make([]uint64, n)
	for i := range s {
		if i%97 == 0 {
			s[i] = uint64(i % 13)
		}
	}
	plain := New(s, 16, Options{})
	comp := New(s, 16, Options{Compress: true, RRRBlock: 64})
	if comp.SizeBytes() >= plain.SizeBytes() {
		t.Errorf("compressed %d bytes >= plain %d bytes on skewed data",
			comp.SizeBytes(), plain.SizeBytes())
	}
}

func TestValueOutOfAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-alphabet value")
		}
	}()
	New([]uint64{5}, 5, Options{})
}

func TestRank2MatchesRank(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, tc := range allOpts {
		s := randomSeq(rng, 600, 77)
		m := New(s, 77, tc.opt)
		for trial := 0; trial < 400; trial++ {
			c := uint64(rng.Int63n(77))
			i := rng.Intn(len(s) + 1)
			j := i + rng.Intn(len(s)+1-i)
			ri, rj := m.Rank2(c, i, j)
			if ri != m.Rank(c, i) || rj != m.Rank(c, j) {
				t.Fatalf("%s: Rank2(%d,%d,%d) = (%d,%d), want (%d,%d)",
					tc.name, c, i, j, ri, rj, m.Rank(c, i), m.Rank(c, j))
			}
		}
		// Clamping and out-of-alphabet behaviour.
		if a, b := m.Rank2(200, 0, 10); a != 0 || b != 0 {
			t.Fatalf("%s: out-of-alphabet Rank2 = (%d,%d)", tc.name, a, b)
		}
		if a, b := m.Rank2(1, -5, len(s)+100); a != 0 || b != m.Rank(1, len(s)) {
			t.Fatalf("%s: clamped Rank2 = (%d,%d)", tc.name, a, b)
		}
	}
}
