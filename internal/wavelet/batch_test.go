package wavelet

import (
	"math/rand"
	"sort"
	"testing"
)

func naiveNextValues(s []uint64, lo, hi int, c uint64, max int) []uint64 {
	seen := map[uint64]bool{}
	for i := lo; i < hi && i < len(s); i++ {
		if i >= 0 && s[i] >= c {
			seen[s[i]] = true
		}
	}
	out := make([]uint64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > max {
		out = out[:max]
	}
	return out
}

func naiveDistinctSet(s []uint64, lo, hi int) map[uint64]bool {
	set := map[uint64]bool{}
	for i := lo; i < hi && i < len(s); i++ {
		if i >= 0 {
			set[s[i]] = true
		}
	}
	return set
}

func TestNextValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range allOpts {
		t.Run(tc.name, func(t *testing.T) {
			for _, sigma := range []uint64{1, 2, 7, 64, 1000} {
				s := randomSeq(rng, 300, sigma)
				m := New(s, sigma, tc.opt)
				for trial := 0; trial < 200; trial++ {
					lo := rng.Intn(len(s) + 1)
					hi := lo + rng.Intn(len(s)-lo+1)
					c := uint64(rng.Int63n(int64(sigma) + 2))
					max := rng.Intn(8) + 1
					want := naiveNextValues(s, lo, hi, c, max)
					got := m.NextValues(lo, hi, c, make([]uint64, 0, max))
					if len(got) != len(want) {
						t.Fatalf("NextValues(%d,%d,%d) cap %d: got %v want %v", lo, hi, c, max, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("NextValues(%d,%d,%d) cap %d: got %v want %v", lo, hi, c, max, got, want)
						}
					}
				}
				// Appending to a partially filled buffer preserves the prefix.
				buf := append(make([]uint64, 0, 6), 99, 98)
				got := m.NextValues(0, len(s), 0, buf)
				if len(got) < 2 || got[0] != 99 || got[1] != 98 {
					t.Fatalf("NextValues clobbered buffer prefix: %v", got)
				}
				want := naiveNextValues(s, 0, len(s), 0, 4)
				for i, v := range got[2:] {
					if v != want[i] {
						t.Fatalf("NextValues appended %v, want prefix of %v", got[2:], want)
					}
				}
				// Full buffer: nothing appended.
				full := make([]uint64, 3, 3)
				if got := m.NextValues(0, len(s), 0, full); len(got) != 3 {
					t.Fatalf("NextValues grew a full buffer: %v", got)
				}
			}
		})
	}
}

func TestIntersectRangesSingleMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range allOpts {
		t.Run(tc.name, func(t *testing.T) {
			for _, sigma := range []uint64{2, 5, 100, 700} {
				s := randomSeq(rng, 400, sigma)
				m := New(s, sigma, tc.opt)
				for trial := 0; trial < 100; trial++ {
					k := rng.Intn(4) + 1
					ranges := make([][2]int, k)
					want := map[uint64]bool{}
					for i := 0; i < k; i++ {
						lo := rng.Intn(len(s) + 1)
						hi := lo + rng.Intn(len(s)-lo+1)
						ranges[i] = [2]int{lo, hi}
						set := naiveDistinctSet(s, lo, hi)
						if i == 0 {
							want = set
						} else {
							for v := range want {
								if !set[v] {
									delete(want, v)
								}
							}
						}
					}
					var got []uint64
					m.IntersectRanges(ranges, func(v uint64) bool {
						got = append(got, v)
						return true
					})
					if len(got) != len(want) {
						t.Fatalf("IntersectRanges(%v): got %d values %v, want %d", ranges, len(got), got, len(want))
					}
					for i, v := range got {
						if !want[v] {
							t.Fatalf("IntersectRanges(%v): emitted %d, not in intersection", ranges, v)
						}
						if i > 0 && v <= got[i-1] {
							t.Fatalf("IntersectRanges(%v): emission not increasing: %v", ranges, got)
						}
					}
				}
			}
		})
	}
}

func TestIntersectRangesCrossMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const sigma = 300
	a := randomSeq(rng, 500, sigma)
	b := randomSeq(rng, 250, sigma)
	ma := New(a, sigma, Options{})
	mb := New(b, sigma, Options{Compress: true, RRRBlock: 16})
	for trial := 0; trial < 100; trial++ {
		alo := rng.Intn(len(a) + 1)
		ahi := alo + rng.Intn(len(a)-alo+1)
		blo := rng.Intn(len(b) + 1)
		bhi := blo + rng.Intn(len(b)-blo+1)
		want := naiveDistinctSet(a, alo, ahi)
		bset := naiveDistinctSet(b, blo, bhi)
		for v := range want {
			if !bset[v] {
				delete(want, v)
			}
		}
		var got []uint64
		IntersectRanges([]MatrixRange{{ma, alo, ahi}, {mb, blo, bhi}}, func(v uint64) bool {
			got = append(got, v)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("cross-matrix intersect [%d,%d)x[%d,%d): got %v want %d values", alo, ahi, blo, bhi, got, len(want))
		}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("cross-matrix intersect emitted %d outside intersection", v)
			}
		}
	}
}

func TestIntersectRangesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randomSeq(rng, 200, 50)
	m := New(s, 50, Options{})

	// Early stop.
	count := 0
	m.IntersectRanges([][2]int{{0, len(s)}, {0, len(s)}}, func(uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop: emit called %d times, want 3", count)
	}

	// Empty input range, out-of-bounds clamping, no ranges at all.
	m.IntersectRanges([][2]int{{5, 5}, {0, 10}}, func(uint64) bool {
		t.Fatal("emitted from an empty range")
		return false
	})
	var clamped []uint64
	m.IntersectRanges([][2]int{{-10, 10_000}}, func(v uint64) bool {
		clamped = append(clamped, v)
		return true
	})
	if len(clamped) != len(naiveDistinctSet(s, 0, len(s))) {
		t.Fatalf("clamped full-range intersect returned %d values", len(clamped))
	}
	IntersectRanges(nil, func(uint64) bool {
		t.Fatal("emitted with no ranges")
		return false
	})

	// Width mismatch panics.
	narrow := New(randomSeq(rng, 50, 4), 4, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch did not panic")
		}
	}()
	IntersectRanges([]MatrixRange{{m, 0, 10}, {narrow, 0, 10}}, func(uint64) bool { return true })
}

// TestIntersectMatchesDistinct pins the k=1 degenerate case to
// DistinctInRange, which the batched walk must generalize.
func TestIntersectMatchesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := randomSeq(rng, 300, 97)
	m := New(s, 97, Options{})
	for trial := 0; trial < 50; trial++ {
		lo := rng.Intn(len(s) + 1)
		hi := lo + rng.Intn(len(s)-lo+1)
		var a, b []uint64
		m.IntersectRanges([][2]int{{lo, hi}}, func(v uint64) bool {
			a = append(a, v)
			return true
		})
		m.DistinctInRange(lo, hi, func(v uint64, _ int) bool {
			b = append(b, v)
			return true
		})
		if len(a) != len(b) {
			t.Fatalf("[%d,%d): intersect %v vs distinct %v", lo, hi, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("[%d,%d): intersect %v vs distinct %v", lo, hi, a, b)
			}
		}
	}
}
