// Package wavelet implements the wavelet matrix of Claude, Navarro and
// Ordóñez: a pointerless wavelet tree over a sequence S[0..n) drawn from an
// integer alphabet [0, σ). It supports the operations the ring index needs
// (Section 2.3.4 of the paper):
//
//   - Access(i), Rank(c, i), Select(c, k) in O(log σ) time;
//   - RangeNextValue (range successor): the smallest symbol ≥ c occurring
//     in a range, in O(log σ) time — the backward leap of the ring;
//   - DistinctInRange: enumerate the distinct symbols of a range in sorted
//     order with their multiplicities, in O(k log(σ/k)) time — the ring's
//     lonely-variable reporting.
//
// The per-level bitvectors may be plain (fast, the paper's "Ring") or
// RRR-compressed (small, the paper's "C-Ring"); see Options.
package wavelet

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/bits"
	"repro/internal/bitvector"
)

// Options selects the bitvector representation used for the matrix levels.
type Options struct {
	// Compress selects RRR-compressed level bitvectors when true, plain
	// bitvectors when false.
	Compress bool
	// RRRBlock is the RRR block size b (the paper's parameter b; 16 for
	// C-Ring, 64 for the archival variant). Ignored unless Compress is set;
	// 0 means 16.
	RRRBlock int
}

// Matrix is an immutable wavelet matrix.
type Matrix struct {
	levels []bitvector.Vector

	// Devirtualized view of levels, non-nil when every level is Plain.
	// Derived by setLevels: rebuilt on load, never serialized.
	//ringlint:derived
	plains []*bitvector.Plain

	zeros []int // zeros[l]: number of 0-bits at level l
	n     int
	sigma uint64
	width uint // number of levels = bits to code sigma-1
}

// rank1 performs a level rank through the concrete type when possible,
// letting the hot Plain.Rank1 inline.
//
//ringlint:hotpath
func (m *Matrix) rank1(l uint, i int) int {
	if m.plains != nil {
		return m.plains[l].Rank1(i)
	}
	return m.levels[l].Rank1(i) //ringlint:allow hotpath -- compressed-level fallback; the Plain fast path above stays devirtualized
}

// get reads level bit i through the concrete type when possible, same
// devirtualization pattern as rank1.
//
//ringlint:hotpath
func (m *Matrix) get(l uint, i int) bool {
	if m.plains != nil {
		return m.plains[l].Get(i)
	}
	return m.levels[l].Get(i) //ringlint:allow hotpath -- compressed-level fallback; the Plain fast path above stays devirtualized
}

// setLevels installs the level bitvectors and the devirtualized view.
func (m *Matrix) setLevels(levels []bitvector.Vector) {
	m.levels = levels
	plains := make([]*bitvector.Plain, len(levels))
	for i, lv := range levels {
		p, ok := lv.(*bitvector.Plain)
		if !ok {
			m.plains = nil
			return
		}
		plains[i] = p
	}
	m.plains = plains
}

// New builds a wavelet matrix over values, whose symbols must lie in
// [0, sigma). Building takes O(n log σ) time.
func New(values []uint64, sigma uint64, opt Options) *Matrix {
	if sigma == 0 {
		sigma = 1
	}
	width := uint(1)
	if sigma > 1 {
		width = lenBits(sigma - 1)
	}
	m := &Matrix{
		zeros: make([]int, width),
		n:     len(values),
		sigma: sigma,
		width: width,
	}
	levels := make([]bitvector.Vector, width)
	if opt.Compress && opt.RRRBlock == 0 {
		opt.RRRBlock = 16
	}

	cur := make([]uint64, len(values))
	copy(cur, values)
	next := make([]uint64, len(values))
	for l := uint(0); l < width; l++ {
		shift := width - 1 - l
		b := bitvector.NewBuilder(len(cur))
		nz := 0
		for i, v := range cur {
			if v >= sigma {
				panic(fmt.Sprintf("wavelet: value %d out of alphabet [0,%d)", v, sigma))
			}
			if (v>>shift)&1 == 1 {
				b.Set(i)
			} else {
				nz++
			}
		}
		m.zeros[l] = nz
		if opt.Compress {
			levels[l] = b.BuildRRR(opt.RRRBlock)
		} else {
			levels[l] = b.BuildPlain()
		}
		// Stable-partition for the next level: zeros first, then ones.
		zi, oi := 0, nz
		for _, v := range cur {
			if (v>>shift)&1 == 1 {
				next[oi] = v
				oi++
			} else {
				next[zi] = v
				zi++
			}
		}
		cur, next = next, cur
	}
	m.setLevels(levels)
	return m
}

func lenBits(v uint64) uint {
	w := uint(0)
	for v > 0 {
		w++
		v >>= 1
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Len returns the sequence length.
func (m *Matrix) Len() int { return m.n }

// Sigma returns the alphabet size σ (symbols are in [0, σ)).
func (m *Matrix) Sigma() uint64 { return m.sigma }

// Access returns S[i].
//
//ringlint:hotpath
func (m *Matrix) Access(i int) uint64 {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("wavelet: Access(%d) out of range [0,%d)", i, m.n))
	}
	var v uint64
	for l := uint(0); l < m.width; l++ {
		v <<= 1
		if m.get(l, i) {
			v |= 1
			i = m.zeros[l] + m.rank1(l, i)
		} else {
			i -= m.rank1(l, i) // rank0
		}
		// On a well-formed matrix i stays in [0, n); a corrupt (viewed)
		// compressed level can return ranks inconsistent with its bits,
		// and the next level's get would panic.
		if i >= m.n {
			i = m.n - 1
		} else if i < 0 {
			i = 0
		}
	}
	if ringdebugEnabled {
		m.debugCheckAccess(v)
	}
	return v
}

// Rank returns the number of occurrences of c in the prefix S[0, i).
//
//ringlint:hotpath
func (m *Matrix) Rank(c uint64, i int) int {
	if c >= m.sigma || i <= 0 {
		return 0
	}
	if i > m.n {
		i = m.n
	}
	s := 0
	for l := uint(0); l < m.width; l++ {
		if (c>>(m.width-1-l))&1 == 1 {
			s = m.zeros[l] + m.rank1(l, s)
			i = m.zeros[l] + m.rank1(l, i)
		} else {
			s -= m.rank1(l, s)
			i -= m.rank1(l, i)
		}
	}
	return i - s
}

// Rank2 returns Rank(c, i) and Rank(c, j) with one shared descent: the
// block-start pointer is computed once instead of twice, saving a third
// of the bitvector ranks. It is the workhorse of the ring's Bind step
// (one LF-step needs the rank at both range endpoints).
//
//ringlint:hotpath
func (m *Matrix) Rank2(c uint64, i, j int) (int, int) {
	if c >= m.sigma {
		return 0, 0
	}
	if i < 0 {
		i = 0
	}
	if j > m.n {
		j = m.n
	}
	s := 0
	for l := uint(0); l < m.width; l++ {
		if (c>>(m.width-1-l))&1 == 1 {
			z := m.zeros[l]
			s = z + m.rank1(l, s)
			i = z + m.rank1(l, i)
			j = z + m.rank1(l, j)
		} else {
			s -= m.rank1(l, s)
			i -= m.rank1(l, i)
			j -= m.rank1(l, j)
		}
	}
	return i - s, j - s
}

// Select returns the position of the k-th occurrence of c (1-based), or -1
// if c occurs fewer than k times.
//
//ringlint:hotpath
func (m *Matrix) Select(c uint64, k int) int {
	if c >= m.sigma || k < 1 {
		return -1
	}
	// Single descent tracking both endpoints of c's block (Rank2-style):
	// s is the block start, e its end, so e-s is the number of occurrences
	// of c in the whole sequence and no separate Rank(c, n) pass is needed
	// to validate k.
	s, e := 0, m.n
	for l := uint(0); l < m.width; l++ {
		if (c>>(m.width-1-l))&1 == 1 {
			z := m.zeros[l]
			s = z + m.rank1(l, s)
			e = z + m.rank1(l, e)
		} else {
			s -= m.rank1(l, s)
			e -= m.rank1(l, e)
		}
	}
	if k > e-s {
		return -1
	}
	pos := s + k - 1
	// Ascend. k <= e-s guarantees pos stays inside c's block at every
	// level, so the selects cannot fail on the devirtualized path.
	if m.plains != nil {
		for l := int(m.width) - 1; l >= 0; l-- {
			B := m.plains[l]
			if (c>>(m.width-1-uint(l)))&1 == 1 {
				pos = B.Select1(pos - m.zeros[l] + 1)
			} else {
				pos = B.Select0(pos + 1)
			}
		}
		if ringdebugEnabled {
			m.debugCheckSelect(c, k, pos)
		}
		return pos
	}
	for l := int(m.width) - 1; l >= 0; l-- {
		B := m.levels[l]
		if (c>>(m.width-1-uint(l)))&1 == 1 {
			pos = B.Select1(pos - m.zeros[l] + 1) //ringlint:allow hotpath -- compressed-level fallback ascent
		} else {
			pos = B.Select0(pos + 1) //ringlint:allow hotpath -- compressed-level fallback ascent
		}
		if pos < 0 {
			return -1
		}
	}
	if ringdebugEnabled {
		m.debugCheckSelect(c, k, pos)
	}
	return pos
}

// Count returns the number of occurrences of c in S[lo, hi).
func (m *Matrix) Count(c uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	return m.Rank(c, hi) - m.Rank(c, lo)
}

// RangeNextValue returns the smallest symbol ≥ c occurring in S[lo, hi),
// and whether such a symbol exists. This is the range-successor operation
// used by the ring's backward leap (Section 3.2.2). It runs in O(log σ).
//
//ringlint:hotpath
func (m *Matrix) RangeNextValue(lo, hi int, c uint64) (uint64, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > m.n {
		hi = m.n
	}
	if lo >= hi || c >= m.sigma {
		return 0, false
	}
	v, ok := m.rangeNext(lo, hi, c)
	if ringdebugEnabled && ok {
		m.debugCheckRangeNext(lo, hi, c, v)
	}
	return v, ok
}

// rangeNext finds the smallest value ≥ c among positions [lo, hi).
//
// It descends along c's bit path. At a level where c's bit is 0, the
// 1-child subtree holds values sharing the prefix so far but larger than
// c; because node cardinalities are preserved level to level, a non-empty
// sibling stays non-empty all the way down, and a deeper sibling always
// holds smaller values than a shallower one. So one fallback — the
// deepest non-empty 1-sibling seen — suffices: if the tight path dies,
// resume there with an unconstrained minimum descent (a plain loop).
//
//ringlint:hotpath
func (m *Matrix) rangeNext(lo, hi int, c uint64) (uint64, bool) {
	var fbL uint
	var fbLo, fbHi int
	var fbPrefix uint64
	haveFB := false

	l, prefix := uint(0), uint64(0)
	for lo < hi {
		if l == m.width {
			return prefix, true // c itself occurs in the range
		}
		r1lo, r1hi := m.rank1(l, lo), m.rank1(l, hi)
		if (c>>(m.width-1-l))&1 == 0 {
			if lo1, hi1 := m.zeros[l]+r1lo, m.zeros[l]+r1hi; lo1 < hi1 {
				fbL, fbLo, fbHi, fbPrefix = l+1, lo1, hi1, prefix<<1|1
				haveFB = true
			}
			lo, hi = lo-r1lo, hi-r1hi
			prefix <<= 1
		} else {
			lo, hi = m.zeros[l]+r1lo, m.zeros[l]+r1hi
			prefix = prefix<<1 | 1
		}
		l++
	}
	if !haveFB {
		return 0, false
	}
	// Unconstrained minimum of the fallback subtree: the leftmost child is
	// never empty below a non-empty node, so no further backtracking.
	l, lo, hi, prefix = fbL, fbLo, fbHi, fbPrefix
	for ; l < m.width; l++ {
		r1lo, r1hi := m.rank1(l, lo), m.rank1(l, hi)
		if lo-r1lo < hi-r1hi {
			lo, hi = lo-r1lo, hi-r1hi
			prefix <<= 1
		} else {
			lo, hi = m.zeros[l]+r1lo, m.zeros[l]+r1hi
			prefix = prefix<<1 | 1
		}
	}
	return prefix, true
}

// DistinctInRange calls visit once per distinct symbol occurring in
// S[lo, hi), in increasing symbol order, with the symbol's multiplicity in
// the range. If visit returns false the enumeration stops early.
func (m *Matrix) DistinctInRange(lo, hi int, visit func(c uint64, count int) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > m.n {
		hi = m.n
	}
	if lo >= hi {
		return
	}
	m.distinct(lo, hi, visit)
}

// distinct enumerates the distinct symbols of [lo, hi) in increasing
// order with an explicit-stack DFS: at each node the 1-child is parked on
// the stack and the walk continues into the 0-child, so symbols surface
// in sorted order. The stack holds at most one pending sibling per level
// (width ≤ 64) and is recycled through dnodePool (shared with the batched
// descents in batch.go) — a fixed stack array would zero 2KB per call.
//
//ringlint:hotpath
func (m *Matrix) distinct(lo, hi int, visit func(uint64, int) bool) {
	sp := dnodePool.Get().(*[]dnode)
	stack := (*sp)[:0]
	cur := dnode{0, lo, hi, 0}
	for {
		if cur.lo < cur.hi {
			if cur.l < m.width {
				r1lo, r1hi := m.rank1(cur.l, cur.lo), m.rank1(cur.l, cur.hi)
				z := m.zeros[cur.l]
				stack = append(stack, dnode{cur.l + 1, z + r1lo, z + r1hi, cur.prefix<<1 | 1})
				cur = dnode{cur.l + 1, cur.lo - r1lo, cur.hi - r1hi, cur.prefix << 1}
				continue
			}
			if !visit(cur.prefix, cur.hi-cur.lo) {
				break
			}
		}
		if len(stack) == 0 {
			break
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	}
	*sp = stack[:0]
	dnodePool.Put(sp)
}

// SizeBytes returns the total in-memory footprint of the matrix.
func (m *Matrix) SizeBytes() int {
	total := 8*len(m.zeros) + 48
	for _, lv := range m.levels {
		total += lv.SizeBytes()
	}
	return total
}

// --- serialization ---

const magic = uint64(0x52494e47574d5458) // "RINGWMTX"

const (
	tagPlain = uint64(1)
	tagRRR   = uint64(2)
)

// WriteTo serializes the matrix, including its level bitvectors.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var total int64
	hdr := []uint64{magic, uint64(m.n), m.sigma, uint64(m.width)}
	if err := writeU64s(w, &total, hdr...); err != nil {
		return total, err
	}
	for l := uint(0); l < m.width; l++ {
		if err := writeU64s(w, &total, uint64(m.zeros[l])); err != nil {
			return total, err
		}
		var tag uint64 = tagPlain
		if _, ok := m.levels[l].(*bitvector.RRR); ok {
			tag = tagRRR
		}
		if err := writeU64s(w, &total, tag); err != nil {
			return total, err
		}
		type writerTo interface {
			WriteTo(io.Writer) (int64, error)
		}
		n, err := m.levels[l].(writerTo).WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read deserializes a matrix written by WriteTo.
func Read(r io.Reader) (*Matrix, error) {
	return Decode(bits.NewReaderSource(r, "wavelet"))
}

// View deserializes a matrix from an in-memory buffer, aliasing each
// level's word payload when possible. Returns the number of bytes
// consumed.
func View(b []byte) (*Matrix, int, error) {
	src := bits.NewByteSource(b, "wavelet")
	m, err := Decode(src)
	if err != nil {
		return nil, 0, err
	}
	return m, src.Offset(), nil
}

// Decode deserializes a matrix from any Source.
func Decode(src bits.Source) (*Matrix, error) {
	hdr, err := src.U64s(4)
	if err != nil {
		return nil, err
	}
	if hdr[0] != magic {
		return nil, errors.New("wavelet: bad magic")
	}
	m := &Matrix{n: int(hdr[1]), sigma: hdr[2], width: uint(hdr[3])}
	if m.n < 0 || m.width < 1 || m.width > 64 {
		return nil, fmt.Errorf("wavelet: corrupt header (n=%d width=%d)", m.n, m.width)
	}
	// New derives width from sigma; a corrupt sigma that breaks the
	// relation would mis-split symbols across levels.
	wantWidth := uint(1)
	if m.sigma > 1 {
		wantWidth = lenBits(m.sigma - 1)
	}
	if m.sigma == 0 || wantWidth != m.width {
		return nil, fmt.Errorf("wavelet: sigma %d inconsistent with %d levels", m.sigma, m.width)
	}
	levels := make([]bitvector.Vector, m.width)
	m.zeros = make([]int, m.width)
	for l := uint(0); l < m.width; l++ {
		meta, err := src.U64s(2)
		if err != nil {
			return nil, err
		}
		if meta[0] > uint64(m.n) {
			return nil, fmt.Errorf("wavelet: corrupt zeros count %d for %d positions", meta[0], m.n)
		}
		m.zeros[l] = int(meta[0])
		switch meta[1] {
		case tagPlain:
			v, err := bitvector.DecodePlain(src)
			if err != nil {
				return nil, err
			}
			levels[l] = v
		case tagRRR:
			v, err := bitvector.DecodeRRR(src)
			if err != nil {
				return nil, err
			}
			levels[l] = v
		default:
			return nil, fmt.Errorf("wavelet: unknown level tag %d", meta[1])
		}
		if levels[l].Len() != m.n {
			return nil, errors.New("wavelet: level length mismatch")
		}
		// Access positions stay in [0, n) only when zeros[l] is exactly
		// the level's zero count: i = zeros[l] + rank1(l, i) ≤ n-1 holds
		// because zeros[l] + ones[l] == n.
		if m.zeros[l] != m.n-levels[l].Ones() {
			return nil, errors.New("wavelet: zeros directory inconsistent with level")
		}
	}
	m.setLevels(levels)
	if ringdebugEnabled {
		m.debugCheckLevels()
	}
	return m, nil
}

func writeU64s(w io.Writer, total *int64, vs ...uint64) error {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(v >> (8 * j))
		}
	}
	n, err := w.Write(buf)
	*total += int64(n)
	return err
}
