package bench

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/testutil"
	"repro/internal/wgpb"
)

func smallGraph() *graph.Graph {
	return wgpb.Generate(wgpb.GraphConfig{Triples: 800, Nodes: 200, Predicates: 10, Seed: 5})
}

func TestBuildAllSystems(t *testing.T) {
	g := smallGraph()
	systems := Build(g, AllSystems())
	if len(systems) != 7 {
		t.Fatalf("built %d systems, want 7", len(systems))
	}
	names := map[string]bool{}
	for _, s := range systems {
		names[s.Name()] = true
		if s.SizeBytes() <= 0 {
			t.Errorf("%s: non-positive size", s.Name())
		}
	}
	for _, want := range []string{"Ring", "C-Ring", "EmptyHeaded", "Qdag", "Jena", "Jena LTJ", "RDF-3X"} {
		if !names[want] {
			t.Errorf("missing system %q", want)
		}
	}
}

func TestAllSystemsAgreeOnWGPB(t *testing.T) {
	// The integration test of the whole repository: every system must
	// produce the same solutions for WGPB-shaped queries (Qdag included —
	// WGPB patterns are exactly its supported shape).
	g := smallGraph()
	systems := Build(g, AllSystems())
	w := wgpb.NewWorkload(g, 9)
	for i := range wgpb.Shapes {
		s := &wgpb.Shapes[i]
		for _, q := range w.Queries(s, 2) {
			var want []graph.Binding
			for si, sys := range systems {
				res, err := sys.Evaluate(q, ltj.Options{})
				if err != nil {
					t.Fatalf("%s shape %s: %v", sys.Name(), s.Name, err)
				}
				if si == 0 {
					want = res.Solutions
					continue
				}
				if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
					t.Fatalf("%s disagrees with %s on shape %s query %v: %s",
						sys.Name(), systems[0].Name(), s.Name, q, diff)
				}
			}
		}
	}
}

func TestSpaceOrdering(t *testing.T) {
	// The paper's headline space result, at our scale: the rings are far
	// smaller than the multi-order indexes. Compression effects need a
	// graph large enough for the RRR directories to amortize, so this test
	// uses a bigger instance than the agreement test.
	g := wgpb.Generate(wgpb.GraphConfig{Triples: 40000, Nodes: 8000, Predicates: 16, Seed: 6})
	systems := Build(g, AllSystems())
	size := map[string]float64{}
	for _, s := range systems {
		size[s.Name()] = BytesPerTriple(s, g.Len())
	}
	if size["Ring"] >= size["EmptyHeaded"] {
		t.Errorf("Ring (%.1f B/t) not smaller than EmptyHeaded (%.1f B/t)",
			size["Ring"], size["EmptyHeaded"])
	}
	if size["Ring"] >= size["Jena LTJ"] {
		t.Errorf("Ring (%.1f B/t) not smaller than Jena LTJ (%.1f B/t)",
			size["Ring"], size["Jena LTJ"])
	}
	if size["C-Ring"] >= size["Ring"] {
		t.Errorf("C-Ring (%.1f B/t) not smaller than Ring (%.1f B/t)",
			size["C-Ring"], size["Ring"])
	}
	if size["Jena LTJ"] <= size["Jena"] {
		t.Errorf("Jena LTJ (%.1f B/t, 6 orders) not larger than Jena (%.1f B/t, 3 orders)",
			size["Jena LTJ"], size["Jena"])
	}
}

func TestRunStats(t *testing.T) {
	g := smallGraph()
	sys := Build(g, SystemSet{Ring: true})[0]
	w := wgpb.NewWorkload(g, 4)
	queries := w.Queries(wgpb.ShapeByName("P2"), 10)
	stats, err := Run(sys, queries, ltj.Options{Limit: 1000, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Queries) != len(queries) {
		t.Fatalf("recorded %d queries, want %d", len(stats.Queries), len(queries))
	}
	if stats.Min() > stats.Median() || stats.Median() > stats.Max() {
		t.Errorf("ordering violated: min=%v median=%v max=%v", stats.Min(), stats.Median(), stats.Max())
	}
	if stats.Mean() <= 0 {
		t.Errorf("mean = %v", stats.Mean())
	}
	if stats.Timeouts() != 0 {
		t.Errorf("unexpected timeouts: %d", stats.Timeouts())
	}
	for _, qs := range stats.Queries {
		if qs.Solutions == 0 {
			t.Error("WGPB query with no solutions (random-walk guarantee broken)")
		}
	}
}

func TestQdagUnsupportedAccounting(t *testing.T) {
	g := smallGraph()
	sys := Build(g, SystemSet{Qdag: true})[0]
	queries := []graph.Pattern{
		{graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y"))},
		{graph.TP(graph.Const(1), graph.Const(0), graph.Var("y"))}, // unsupported
	}
	stats, err := Run(sys, queries, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnsupportedCount() != 1 {
		t.Errorf("unsupported count = %d, want 1", stats.UnsupportedCount())
	}
}

func TestPercentileEdges(t *testing.T) {
	s := &RunStats{Queries: []QueryStat{
		{Elapsed: 1 * time.Millisecond},
		{Elapsed: 2 * time.Millisecond},
		{Elapsed: 3 * time.Millisecond},
		{Elapsed: 4 * time.Millisecond},
	}}
	if got := s.Percentile(25); got != 1*time.Millisecond {
		t.Errorf("p25 = %v", got)
	}
	if got := s.Percentile(100); got != 4*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	empty := &RunStats{}
	if empty.Mean() != 0 || empty.Median() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty stats should be zero")
	}
}
