// Package bench is the benchmark harness that regenerates the paper's
// evaluation: it wraps every index behind one System interface, runs query
// workloads with the paper's limit/timeout protocol, and aggregates the
// statistics reported in Tables 1 and 2 and Figure 8 (averages, medians,
// percentiles, timeout counts, bytes per triple).
package bench

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline/btree"
	"repro/internal/baseline/btreeltj"
	"repro/internal/baseline/flattrie"
	"repro/internal/baseline/qdag"
	"repro/internal/baseline/rdf3x"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
)

// System is one benchmarked configuration: an index plus its evaluator.
type System interface {
	// Name identifies the system in tables ("Ring", "Jena LTJ", ...).
	Name() string
	// SizeBytes is the index footprint (data included — all systems here
	// are clustered/self-contained).
	SizeBytes() int
	// Evaluate runs one basic graph pattern.
	Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error)
}

// funcSystem adapts closures to System.
type funcSystem struct {
	name string
	size func() int
	eval func(q graph.Pattern, opt ltj.Options) (*ltj.Result, error)
}

func (s funcSystem) Name() string   { return s.name }
func (s funcSystem) SizeBytes() int { return s.size() }
func (s funcSystem) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	return s.eval(q, opt)
}

// NewSystem wraps explicit closures.
func NewSystem(name string, size func() int,
	eval func(q graph.Pattern, opt ltj.Options) (*ltj.Result, error)) System {
	return funcSystem{name: name, size: size, eval: eval}
}

// LTJSystem wraps any ltj.Index (ring, flat tries, B+-tree orders) with
// the shared LTJ engine.
func LTJSystem(name string, idx ltj.Index, size func() int) System {
	return funcSystem{
		name: name,
		size: size,
		eval: func(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
			return ltj.Evaluate(idx, q, opt)
		},
	}
}

// RingSystem wraps a ring index.
func RingSystem(name string, r *ring.Ring) System {
	idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	return LTJSystem(name, idx, r.SizeBytes)
}

// SystemSet identifies which systems to build (some are expensive).
type SystemSet struct {
	Ring        bool
	CRing       bool
	EmptyHeaded bool // flat tries, 6 orders
	Qdag        bool
	Jena        bool // 3 B+-tree orders, nested-loop joins
	JenaLTJ     bool // 6 B+-tree orders, LTJ
	RDF3X       bool // compressed clustered, pairwise joins
}

// AllSystems selects everything.
func AllSystems() SystemSet {
	return SystemSet{Ring: true, CRing: true, EmptyHeaded: true, Qdag: true,
		Jena: true, JenaLTJ: true, RDF3X: true}
}

// Build constructs the selected systems over g, in the paper's Table 1
// row order.
func Build(g *graph.Graph, set SystemSet) []System {
	var out []System
	if set.Ring {
		out = append(out, RingSystem("Ring", ring.New(g, ring.Options{})))
	}
	if set.CRing {
		out = append(out, RingSystem("C-Ring", ring.New(g, ring.Options{Compress: true, RRRBlock: 16})))
	}
	if set.EmptyHeaded {
		idx := flattrie.New(g)
		out = append(out, LTJSystem("EmptyHeaded", idx, idx.SizeBytes))
	}
	if set.Qdag {
		idx := qdag.New(g)
		out = append(out, NewSystem("Qdag", idx.SizeBytes, idx.Evaluate))
	}
	if set.Jena {
		idx := btree.NewJena(g)
		out = append(out, NewSystem("Jena", idx.SizeBytes, idx.Evaluate))
	}
	if set.JenaLTJ {
		idx := btreeltj.New(g)
		out = append(out, LTJSystem("Jena LTJ", idx, idx.SizeBytes))
	}
	if set.RDF3X {
		idx := rdf3x.New(g)
		out = append(out, NewSystem("RDF-3X", idx.SizeBytes, idx.Evaluate))
	}
	return out
}

// QueryStat records one query execution.
type QueryStat struct {
	Elapsed     time.Duration
	Solutions   int
	TimedOut    bool
	Unsupported bool
}

// RunStats aggregates a workload run.
type RunStats struct {
	System string
	// Parallelism is the intra-query worker count the run used
	// (0 = sequential); set by ParallelSweep.
	Parallelism int
	Queries     []QueryStat
}

// Run evaluates every query sequentially (as the paper does) and records
// per-query statistics. Systems that cannot evaluate a query (e.g. Qdag
// with constants in subject position) get Unsupported entries.
func Run(sys System, queries []graph.Pattern, opt ltj.Options) (*RunStats, error) {
	stats := &RunStats{System: sys.Name(), Queries: make([]QueryStat, 0, len(queries))}
	for _, q := range queries {
		start := time.Now()
		res, err := sys.Evaluate(q, opt)
		elapsed := time.Since(start)
		if err != nil {
			if errors.Is(err, qdag.ErrUnsupported) {
				stats.Queries = append(stats.Queries, QueryStat{Unsupported: true})
				continue
			}
			return nil, fmt.Errorf("bench: %s on %v: %w", sys.Name(), q, err)
		}
		stats.Queries = append(stats.Queries, QueryStat{
			Elapsed:   elapsed,
			Solutions: len(res.Solutions),
			TimedOut:  res.TimedOut,
		})
	}
	return stats, nil
}

// ParallelSweep runs the same workload at several intra-query
// parallelism levels (0/1 = sequential) and returns one RunStats per
// level, in order — the data behind the parallel columns of
// cmd/benchtables and BENCH_parallel_ltj.json. Queries within a level
// still run sequentially, as in the paper's protocol; only the evaluation
// of each individual query is parallel.
func ParallelSweep(sys System, queries []graph.Pattern, opt ltj.Options, levels []int) ([]*RunStats, error) {
	out := make([]*RunStats, 0, len(levels))
	for _, p := range levels {
		o := opt
		o.Parallelism = p
		stats, err := Run(sys, queries, o)
		if err != nil {
			return nil, err
		}
		stats.Parallelism = p
		out = append(out, stats)
	}
	return out, nil
}

// Speedup returns base's mean query time divided by s's (how much faster
// s ran the workload); 0 when s recorded no time.
func Speedup(base, s *RunStats) float64 {
	if s.Mean() == 0 {
		return 0
	}
	return float64(base.Mean()) / float64(s.Mean())
}

// supported returns the non-Unsupported durations, sorted.
func (s *RunStats) supported() []time.Duration {
	var out []time.Duration
	for _, q := range s.Queries {
		if !q.Unsupported {
			out = append(out, q.Elapsed)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mean returns the average query time.
func (s *RunStats) Mean() time.Duration {
	ds := s.supported()
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// Min returns the fastest query time.
func (s *RunStats) Min() time.Duration {
	ds := s.supported()
	if len(ds) == 0 {
		return 0
	}
	return ds[0]
}

// Max returns the slowest query time.
func (s *RunStats) Max() time.Duration {
	ds := s.supported()
	if len(ds) == 0 {
		return 0
	}
	return ds[len(ds)-1]
}

// Percentile returns the p-th percentile query time (0 < p <= 100).
func (s *RunStats) Percentile(p float64) time.Duration {
	ds := s.supported()
	if len(ds) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(ds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

// Median returns the 50th percentile.
func (s *RunStats) Median() time.Duration { return s.Percentile(50) }

// Timeouts counts queries that hit the deadline.
func (s *RunStats) Timeouts() int {
	n := 0
	for _, q := range s.Queries {
		if q.TimedOut {
			n++
		}
	}
	return n
}

// UnsupportedCount counts queries the system could not run.
func (s *RunStats) UnsupportedCount() int {
	n := 0
	for _, q := range s.Queries {
		if q.Unsupported {
			n++
		}
	}
	return n
}

// BytesPerTriple computes the Table 1/2 space unit.
func BytesPerTriple(sys System, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(sys.SizeBytes()) / float64(n)
}
