package query

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// AggFunc is an aggregate function over a group of solutions.
type AggFunc int

// The supported aggregates. Identifiers are dictionary codes assigned in
// lexicographic order, so Min/Max correspond to lexicographically
// smallest/largest constants.
const (
	// Count counts the solutions in the group.
	Count AggFunc = iota
	// CountDistinct counts the distinct values of Var in the group.
	CountDistinct
	// Min returns the smallest value of Var in the group.
	Min
	// Max returns the largest value of Var in the group.
	Max
)

// String names the function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case CountDistinct:
		return "COUNT-DISTINCT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Agg is one aggregate column: a function over a variable, reported
// under the name As.
type Agg struct {
	Func AggFunc
	Var  string // ignored for Count
	As   string
}

// Aggregation is a GROUP BY query over a basic graph pattern.
type Aggregation struct {
	// Pattern is evaluated with the worst-case-optimal join.
	Pattern graph.Pattern
	// GroupBy lists the grouping variables (empty = one global group).
	GroupBy []string
	// Aggs are the aggregate columns (at least one).
	Aggs []Agg
	// Filters are applied to each solution before aggregation.
	Filters []Filter
	// Timeout bounds evaluation (0 = none).
	Timeout time.Duration
}

// AggRow is one result group.
type AggRow struct {
	// Group holds the grouping variables' values.
	Group graph.Binding
	// Values holds one entry per aggregate, keyed by Agg.As.
	Values map[string]uint64
}

type aggState struct {
	group    graph.Binding
	count    uint64
	distinct []map[graph.ID]struct{}
	min, max []graph.ID
	seen     []bool
}

// Run evaluates the aggregation streamingly: solutions are folded into
// per-group accumulators as the join produces them, so no solution list
// is materialised. Groups are returned sorted by their grouping values.
func (a Aggregation) Run(idx ltj.Index) ([]AggRow, error) {
	if len(a.Aggs) == 0 {
		return nil, fmt.Errorf("query: aggregation needs at least one aggregate")
	}
	vars := a.Pattern.Vars()
	varSet := map[string]bool{}
	for _, v := range vars {
		varSet[v] = true
	}
	for _, v := range a.GroupBy {
		if !varSet[v] {
			return nil, fmt.Errorf("query: group-by variable %q not in pattern", v)
		}
	}
	for i, ag := range a.Aggs {
		if ag.As == "" {
			return nil, fmt.Errorf("query: aggregate %d has no output name", i)
		}
		if ag.Func != Count && !varSet[ag.Var] {
			return nil, fmt.Errorf("query: aggregate variable %q not in pattern", ag.Var)
		}
	}

	groups := map[string]*aggState{}
	err := ltj.Stream(idx, a.Pattern, ltj.Options{Timeout: a.Timeout}, func(b graph.Binding) bool {
		for _, f := range a.Filters {
			if !f(b) {
				return true
			}
		}
		key := BindingKey(b, a.GroupBy)
		st := groups[key]
		if st == nil {
			st = &aggState{
				group:    make(graph.Binding, len(a.GroupBy)),
				distinct: make([]map[graph.ID]struct{}, len(a.Aggs)),
				min:      make([]graph.ID, len(a.Aggs)),
				max:      make([]graph.ID, len(a.Aggs)),
				seen:     make([]bool, len(a.Aggs)),
			}
			for _, v := range a.GroupBy {
				st.group[v] = b[v]
			}
			for i, ag := range a.Aggs {
				if ag.Func == CountDistinct {
					st.distinct[i] = map[graph.ID]struct{}{}
				}
			}
			groups[key] = st
		}
		st.count++
		for i, ag := range a.Aggs {
			switch ag.Func {
			case CountDistinct:
				st.distinct[i][b[ag.Var]] = struct{}{}
			case Min:
				if v := b[ag.Var]; !st.seen[i] || v < st.min[i] {
					st.min[i] = v
				}
				st.seen[i] = true
			case Max:
				if v := b[ag.Var]; !st.seen[i] || v > st.max[i] {
					st.max[i] = v
				}
				st.seen[i] = true
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	out := make([]AggRow, 0, len(groups))
	for _, st := range groups {
		row := AggRow{Group: st.group, Values: map[string]uint64{}}
		for i, ag := range a.Aggs {
			switch ag.Func {
			case Count:
				row.Values[ag.As] = st.count
			case CountDistinct:
				row.Values[ag.As] = uint64(len(st.distinct[i]))
			case Min:
				row.Values[ag.As] = uint64(st.min[i])
			case Max:
				row.Values[ag.As] = uint64(st.max[i])
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		for _, v := range a.GroupBy {
			if out[i].Group[v] != out[j].Group[v] {
				return out[i].Group[v] < out[j].Group[v]
			}
		}
		return false
	})
	return out, nil
}
