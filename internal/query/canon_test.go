package query

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestBindingKeyDistinguishesValues(t *testing.T) {
	vars := []string{"x", "y"}
	a := graph.Binding{"x": 1, "y": 2}
	b := graph.Binding{"x": 1, "y": 2}
	c := graph.Binding{"x": 2, "y": 1}
	if BindingKey(a, vars) != BindingKey(b, vars) {
		t.Fatal("equal bindings produced different keys")
	}
	if BindingKey(a, vars) == BindingKey(c, vars) {
		t.Fatal("different bindings collided")
	}
	// Restriction to vars: values outside the list must not matter.
	d := graph.Binding{"x": 1, "y": 2, "z": 99}
	if BindingKey(a, vars) != BindingKey(d, vars) {
		t.Fatal("key depends on variables outside vars")
	}
}

func TestCacheKeyPatternOrderInsensitive(t *testing.T) {
	p1 := graph.TP(graph.Var("x"), graph.Const(1), graph.Var("y"))
	p2 := graph.TP(graph.Var("y"), graph.Const(2), graph.Var("z"))
	a, ok := Select{Pattern: graph.Pattern{p1, p2}}.CacheKey()
	if !ok {
		t.Fatal("unfiltered query not cacheable")
	}
	b, ok := Select{Pattern: graph.Pattern{p2, p1}}.CacheKey()
	if !ok || a != b {
		t.Fatalf("pattern order changed the key: %q vs %q", a, b)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := Select{Pattern: graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("y")),
	}}
	key := func(s Select) string {
		t.Helper()
		k, ok := s.CacheKey()
		if !ok {
			t.Fatal("expected cacheable")
		}
		return k
	}
	k0 := key(base)

	vary := map[string]Select{}
	s := base
	s.Pattern = graph.Pattern{graph.TP(graph.Var("a"), graph.Const(1), graph.Var("y"))}
	vary["variable name"] = s
	s = base
	s.Pattern = graph.Pattern{graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y"))}
	vary["constant"] = s
	s = base
	s.Project = []string{"x"}
	vary["projection"] = s
	s = base
	s.Distinct = true
	vary["distinct"] = s
	s = base
	s.OrderBy = []string{"y"}
	vary["order by"] = s
	s = base
	s.Offset = 3
	vary["offset"] = s
	s = base
	s.Limit = 7
	vary["limit"] = s

	for what, sel := range vary {
		if key(sel) == k0 {
			t.Errorf("changing %s did not change the key", what)
		}
	}

	// Execution knobs must NOT change the key.
	s = base
	s.Parallelism = 8
	if key(s) != k0 {
		t.Error("parallelism changed the key")
	}

	// Filters make the query uncacheable.
	s = base
	s.Filters = []Filter{NotEqual("x", "y")}
	if _, ok := s.CacheKey(); ok {
		t.Error("filtered query reported cacheable")
	}
}

// TestCountMatchesRun pins the shared-core refactor: Count must agree with
// len(Run()) across clause combinations, without materialising solutions.
func TestCountMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 400, 15, 3)
	idx := ringIndex(g)
	pattern := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Var("q"), graph.Var("z")),
	}
	cases := []Select{
		{Pattern: pattern},
		{Pattern: pattern, Distinct: true, Project: []string{"x", "z"}},
		{Pattern: pattern, Offset: 5},
		{Pattern: pattern, Limit: 17},
		{Pattern: pattern, Offset: 1000000},
		{Pattern: pattern, Offset: 3, Limit: 11, Distinct: true, Project: []string{"y"}},
		{Pattern: pattern, Filters: []Filter{NotEqual("x", "z")}},
		{Pattern: pattern, OrderBy: []string{"x"}, Offset: 2, Limit: 9},
	}
	for i, sel := range cases {
		res, err := sel.Run(idx)
		if err != nil {
			t.Fatalf("case %d: Run: %v", i, err)
		}
		n, err := sel.Count(idx)
		if err != nil {
			t.Fatalf("case %d: Count: %v", i, err)
		}
		if n != len(res) {
			t.Errorf("case %d: Count = %d, Run returned %d solutions", i, n, len(res))
		}
	}
}
