// Package query layers the query-language features the paper leaves to
// future work ("support for other features of graph query languages could
// be simply layered on top", Section 1) over the LTJ evaluation core:
// projection, DISTINCT, per-solution filters, ORDER BY, OFFSET and LIMIT.
// Everything composes with any ltj.Index — ring, baselines, or the
// dynamic store.
package query

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// Filter accepts or rejects one solution.
type Filter func(graph.Binding) bool

// NotEqual filters solutions where two variables are bound to the same
// constant (e.g. to exclude degenerate triangles).
func NotEqual(x, y string) Filter {
	return func(b graph.Binding) bool { return b[x] != b[y] }
}

// Equal keeps solutions where two variables coincide.
func Equal(x, y string) Filter {
	return func(b graph.Binding) bool { return b[x] == b[y] }
}

// Less keeps solutions with b[x] < b[y] in identifier order — the usual
// symmetry-breaking trick for counting undirected motifs once.
func Less(x, y string) Filter {
	return func(b graph.Binding) bool { return b[x] < b[y] }
}

// ValueIn keeps solutions where x is bound to one of the given constants.
func ValueIn(x string, allowed ...graph.ID) Filter {
	set := make(map[graph.ID]bool, len(allowed))
	for _, v := range allowed {
		set[v] = true
	}
	return func(b graph.Binding) bool { return set[b[x]] }
}

// Select is a query with post-processing clauses.
type Select struct {
	// Pattern is the basic graph pattern to evaluate.
	Pattern graph.Pattern
	// Project lists the variables to keep (nil keeps all).
	Project []string
	// Distinct deduplicates projected solutions.
	Distinct bool
	// Filters are conjunctive per-solution predicates, applied before
	// projection.
	Filters []Filter
	// OrderBy sorts the results by the given variables ascending (applied
	// after projection; unlisted variables do not influence the order).
	OrderBy []string
	// Offset skips that many results (after ordering).
	Offset int
	// Limit caps the result count (0 = unlimited; applied after Offset).
	Limit int
	// Timeout bounds evaluation (0 = none).
	Timeout time.Duration
	// Context, when non-nil, cancels the evaluation when it is done (see
	// ltj.Options.Context). Cancellation surfaces as an error wrapping
	// ltj.ErrCancelled and the context's own Err().
	Context context.Context
	// Parallelism sets the LTJ worker count (0/1 = sequential; see
	// ltj.Options.Parallelism). With no ORDER BY the result order becomes
	// nondeterministic when > 1; filters, projection, DISTINCT and LIMIT
	// still apply streamingly, on the calling goroutine.
	Parallelism int
	// Stats, when non-nil, receives the engine's operation counts for the
	// evaluation (leaps, binds, seeks, enumerations).
	Stats *ltj.EvalStats
}

// Run evaluates the query over the index.
//
// Filters, projection, DISTINCT and (when no ORDER BY is present) LIMIT
// are applied streamingly during the join, so a limited query stops as
// soon as enough solutions are found. ORDER BY forces full
// materialisation first.
func (s Select) Run(idx ltj.Index) ([]graph.Binding, error) {
	project, err := s.check()
	if err != nil {
		return nil, err
	}
	var out []graph.Binding
	err = s.forEach(idx, project, func(proj graph.Binding) bool {
		out = append(out, proj)
		return true
	})
	if err != nil {
		return out, err
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for _, v := range s.OrderBy {
				if out[i][v] != out[j][v] {
					return out[i][v] < out[j][v]
				}
			}
			return false
		})
	}
	if s.Offset > 0 {
		if s.Offset >= len(out) {
			return nil, nil
		}
		out = out[s.Offset:]
	}
	if s.Limit > 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	return out, nil
}

// Count evaluates the query and returns only the number of solutions
// (respecting filters, DISTINCT, OFFSET and LIMIT; ordering cannot change
// the count and is ignored). It shares Run's streaming core but never
// materialises the solutions.
func (s Select) Count(idx ltj.Index) (int, error) {
	s.OrderBy = nil
	project, err := s.check()
	if err != nil {
		return 0, err
	}
	n := 0
	err = s.forEach(idx, project, func(graph.Binding) bool {
		n++
		return true
	})
	if err != nil {
		return 0, err
	}
	if s.Offset > 0 {
		if s.Offset >= n {
			return 0, nil
		}
		n -= s.Offset
	}
	if s.Limit > 0 && n > s.Limit {
		n = s.Limit
	}
	return n, nil
}

// check validates the clause variables and resolves the effective
// projection list.
func (s Select) check() ([]string, error) {
	vars := s.Pattern.Vars()
	varSet := map[string]bool{}
	for _, v := range vars {
		varSet[v] = true
	}
	project := s.Project
	if project == nil {
		project = vars
	}
	for _, v := range project {
		if !varSet[v] {
			return nil, fmt.Errorf("query: projected variable %q not in pattern", v)
		}
	}
	for _, v := range s.OrderBy {
		if !varSet[v] {
			return nil, fmt.Errorf("query: order-by variable %q not in pattern", v)
		}
	}
	if s.Offset < 0 {
		return nil, fmt.Errorf("query: negative offset %d", s.Offset)
	}
	return project, nil
}

// forEach is the streaming core shared by Run and Count: it evaluates the
// join and yields every projected solution that survives the filters and
// DISTINCT, stopping early once Offset+Limit solutions have been produced
// (when no ORDER BY forces full materialisation). yield owns the solution
// it receives.
func (s Select) forEach(idx ltj.Index, project []string, yield func(graph.Binding) bool) error {
	streamingLimit := 0
	if len(s.OrderBy) == 0 && s.Limit > 0 {
		streamingLimit = s.Offset + s.Limit
	}
	stats := s.Stats
	if stats == nil {
		stats = &ltj.EvalStats{}
	}
	opt := ltj.Options{Timeout: s.Timeout, Context: s.Context, Parallelism: s.Parallelism}
	n := 0
	seen := map[string]bool{}
	return ltj.StreamStats(idx, s.Pattern, opt, stats, func(b graph.Binding) bool {
		for _, f := range s.Filters {
			if !f(b) {
				return true
			}
		}
		proj := make(graph.Binding, len(project))
		for _, v := range project {
			proj[v] = b[v]
		}
		if s.Distinct {
			key := BindingKey(proj, project)
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		n++
		if !yield(proj) {
			return false
		}
		return streamingLimit <= 0 || n < streamingLimit
	})
}
