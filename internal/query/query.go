// Package query layers the query-language features the paper leaves to
// future work ("support for other features of graph query languages could
// be simply layered on top", Section 1) over the LTJ evaluation core:
// projection, DISTINCT, per-solution filters, ORDER BY, OFFSET and LIMIT.
// Everything composes with any ltj.Index — ring, baselines, or the
// dynamic store.
package query

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// Filter accepts or rejects one solution.
type Filter func(graph.Binding) bool

// NotEqual filters solutions where two variables are bound to the same
// constant (e.g. to exclude degenerate triangles).
func NotEqual(x, y string) Filter {
	return func(b graph.Binding) bool { return b[x] != b[y] }
}

// Equal keeps solutions where two variables coincide.
func Equal(x, y string) Filter {
	return func(b graph.Binding) bool { return b[x] == b[y] }
}

// Less keeps solutions with b[x] < b[y] in identifier order — the usual
// symmetry-breaking trick for counting undirected motifs once.
func Less(x, y string) Filter {
	return func(b graph.Binding) bool { return b[x] < b[y] }
}

// ValueIn keeps solutions where x is bound to one of the given constants.
func ValueIn(x string, allowed ...graph.ID) Filter {
	set := make(map[graph.ID]bool, len(allowed))
	for _, v := range allowed {
		set[v] = true
	}
	return func(b graph.Binding) bool { return set[b[x]] }
}

// Select is a query with post-processing clauses.
type Select struct {
	// Pattern is the basic graph pattern to evaluate.
	Pattern graph.Pattern
	// Project lists the variables to keep (nil keeps all).
	Project []string
	// Distinct deduplicates projected solutions.
	Distinct bool
	// Filters are conjunctive per-solution predicates, applied before
	// projection.
	Filters []Filter
	// OrderBy sorts the results by the given variables ascending (applied
	// after projection; unlisted variables do not influence the order).
	OrderBy []string
	// Offset skips that many results (after ordering).
	Offset int
	// Limit caps the result count (0 = unlimited; applied after Offset).
	Limit int
	// Timeout bounds evaluation (0 = none).
	Timeout time.Duration
	// Parallelism sets the LTJ worker count (0/1 = sequential; see
	// ltj.Options.Parallelism). With no ORDER BY the result order becomes
	// nondeterministic when > 1; filters, projection, DISTINCT and LIMIT
	// still apply streamingly, on the calling goroutine.
	Parallelism int
}

// Run evaluates the query over the index.
//
// Filters, projection, DISTINCT and (when no ORDER BY is present) LIMIT
// are applied streamingly during the join, so a limited query stops as
// soon as enough solutions are found. ORDER BY forces full
// materialisation first.
func (s Select) Run(idx ltj.Index) ([]graph.Binding, error) {
	vars := s.Pattern.Vars()
	varSet := map[string]bool{}
	for _, v := range vars {
		varSet[v] = true
	}
	project := s.Project
	if project == nil {
		project = vars
	}
	for _, v := range project {
		if !varSet[v] {
			return nil, fmt.Errorf("query: projected variable %q not in pattern", v)
		}
	}
	for _, v := range s.OrderBy {
		if !varSet[v] {
			return nil, fmt.Errorf("query: order-by variable %q not in pattern", v)
		}
	}
	if s.Offset < 0 {
		return nil, fmt.Errorf("query: negative offset %d", s.Offset)
	}

	streamingLimit := 0
	if len(s.OrderBy) == 0 && s.Limit > 0 {
		streamingLimit = s.Offset + s.Limit
	}

	var out []graph.Binding
	seen := map[string]bool{}
	err := ltj.Stream(idx, s.Pattern, ltj.Options{Timeout: s.Timeout, Parallelism: s.Parallelism}, func(b graph.Binding) bool {
		for _, f := range s.Filters {
			if !f(b) {
				return true
			}
		}
		proj := make(graph.Binding, len(project))
		for _, v := range project {
			proj[v] = b[v]
		}
		if s.Distinct {
			key := bindingKey(proj, project)
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		out = append(out, proj)
		return streamingLimit <= 0 || len(out) < streamingLimit
	})
	if err != nil {
		return out, err
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for _, v := range s.OrderBy {
				if out[i][v] != out[j][v] {
					return out[i][v] < out[j][v]
				}
			}
			return false
		})
	}
	if s.Offset > 0 {
		if s.Offset >= len(out) {
			return nil, nil
		}
		out = out[s.Offset:]
	}
	if s.Limit > 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	return out, nil
}

// Count evaluates the query and returns only the number of solutions
// (respecting filters and DISTINCT, ignoring projection order clauses).
func (s Select) Count(idx ltj.Index) (int, error) {
	s.OrderBy = nil
	res, err := s.Run(idx)
	return len(res), err
}

func bindingKey(b graph.Binding, vars []string) string {
	key := make([]byte, 0, 8*len(vars))
	for _, v := range vars {
		x := b[v]
		key = append(key, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), ';')
	}
	return string(key)
}
