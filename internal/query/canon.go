package query

// Canonicalization: deterministic byte-string keys for solutions and for
// whole queries. One helper serves both consumers — the DISTINCT dedup in
// Select.Run and the result-cache keys of the serving layer — so the two
// can never drift apart.

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// BindingKey returns a compact canonical key for b restricted to vars:
// the values in vars order, fixed-width little-endian. Two bindings map
// to the same key iff they agree on every variable of vars.
func BindingKey(b graph.Binding, vars []string) string {
	key := make([]byte, 0, 8*len(vars))
	for _, v := range vars {
		x := b[v]
		key = append(key, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), ';')
	}
	return string(key)
}

// CacheKey returns a canonical key identifying the query's result set, for
// use by result caches. Two Selects with equal keys produce equal result
// multisets (and equal ordered results when OrderBy is set):
//
//   - the triple patterns are serialized term by term and sorted, so BGPs
//     that differ only in pattern order share a key (joins commute);
//   - every result-affecting clause — projection, DISTINCT, ORDER BY,
//     OFFSET, LIMIT — is appended;
//   - Timeout and Parallelism are excluded: they change how the result is
//     computed, not what it is. Without an ORDER BY the engine's solution
//     order is an implementation detail (and nondeterministic under
//     parallelism), so a cached result may legitimately be in a different
//     order than a fresh evaluation would produce.
//
// ok is false when the query is not canonicalizable: Filters are opaque
// functions, so filtered queries must not be cached.
func (s Select) CacheKey() (key string, ok bool) {
	if len(s.Filters) > 0 {
		return "", false
	}
	pats := make([]string, len(s.Pattern))
	for i, tp := range s.Pattern {
		var b strings.Builder
		for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
			term := tp.Term(pos)
			if term.IsVar {
				b.WriteByte('?')
				b.WriteString(term.Name)
			} else {
				b.WriteString(strconv.FormatUint(uint64(term.Value), 10))
			}
			b.WriteByte(' ')
		}
		pats[i] = b.String()
	}
	sort.Strings(pats)

	var b strings.Builder
	for _, p := range pats {
		b.WriteString(p)
		b.WriteByte(';')
	}
	b.WriteByte('|')
	if s.Project == nil {
		b.WriteByte('*')
	} else {
		for _, v := range s.Project {
			b.WriteString(v)
			b.WriteByte(',')
		}
	}
	b.WriteByte('|')
	if s.Distinct {
		b.WriteByte('d')
	}
	b.WriteByte('|')
	for _, v := range s.OrderBy {
		b.WriteString(v)
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Offset))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Limit))
	return b.String(), true
}
