package query

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestAggregateCountPerGroup(t *testing.T) {
	// Nobel graph: count edges per predicate via GROUP BY.
	g := testutil.PaperGraph()
	idx := ringIndex(g)
	rows, err := Aggregation{
		Pattern: graph.Pattern{graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o"))},
		GroupBy: []string{"p"},
		Aggs:    []Agg{{Func: Count, As: "n"}},
	}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	// adv(0)=4, nom(1)=5, win(2)=4, sorted by predicate id.
	want := []uint64{4, 5, 4}
	if len(rows) != 3 {
		t.Fatalf("got %d groups, want 3", len(rows))
	}
	for i, row := range rows {
		if row.Group["p"] != graph.ID(i) || row.Values["n"] != want[i] {
			t.Fatalf("group %d = %+v, want count %d", i, row, want[i])
		}
	}
}

func TestAggregateCountDistinctMinMax(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g)
	rows, err := Aggregation{
		Pattern: graph.Pattern{graph.TP(graph.Const(5), graph.Var("p"), graph.Var("o"))},
		Aggs: []Agg{
			{Func: Count, As: "edges"},
			{Func: CountDistinct, Var: "o", As: "people"},
			{Func: Min, Var: "o", As: "first"},
			{Func: Max, Var: "o", As: "last"},
		},
	}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("global group count = %d", len(rows))
	}
	v := rows[0].Values
	if v["edges"] != 9 || v["people"] != 5 || v["first"] != 0 || v["last"] != 4 {
		t.Fatalf("values = %v", v)
	}
}

func TestAggregateWithFilter(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g)
	rows, err := Aggregation{
		Pattern: graph.Pattern{graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o"))},
		GroupBy: []string{"p"},
		Aggs:    []Agg{{Func: Count, As: "n"}},
		Filters: []Filter{ValueIn("o", 0)}, // only edges into Bohr
	}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	// Bohr is the object of adv (from Wheeler), nom, win: 3 groups of 1.
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.Values["n"] != 1 {
			t.Fatalf("row = %+v", row)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	g := testutil.PaperGraph()
	idx := ringIndex(g)
	base := graph.Pattern{graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o"))}
	if _, err := (Aggregation{Pattern: base}).Run(idx); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := (Aggregation{Pattern: base, GroupBy: []string{"zz"},
		Aggs: []Agg{{Func: Count, As: "n"}}}).Run(idx); err == nil {
		t.Error("unknown group-by accepted")
	}
	if _, err := (Aggregation{Pattern: base,
		Aggs: []Agg{{Func: Min, Var: "zz", As: "m"}}}).Run(idx); err == nil {
		t.Error("unknown aggregate variable accepted")
	}
	if _, err := (Aggregation{Pattern: base,
		Aggs: []Agg{{Func: Count}}}).Run(idx); err == nil {
		t.Error("missing output name accepted")
	}
}

func TestAggregateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	g := testutil.RandomGraph(rng, 200, 20, 4)
	idx := ringIndex(g)
	q := graph.Pattern{graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o"))}
	rows, err := Aggregation{
		Pattern: q,
		GroupBy: []string{"s"},
		Aggs: []Agg{
			{Func: Count, As: "deg"},
			{Func: CountDistinct, Var: "o", As: "fanout"},
		},
	}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	deg := map[graph.ID]uint64{}
	fan := map[graph.ID]map[graph.ID]bool{}
	for _, tr := range g.Triples() {
		deg[tr.S]++
		if fan[tr.S] == nil {
			fan[tr.S] = map[graph.ID]bool{}
		}
		fan[tr.S][tr.O] = true
	}
	if len(rows) != len(deg) {
		t.Fatalf("groups = %d, want %d", len(rows), len(deg))
	}
	for _, row := range rows {
		s := row.Group["s"]
		if row.Values["deg"] != deg[s] || row.Values["fanout"] != uint64(len(fan[s])) {
			t.Fatalf("subject %d: %v, want deg=%d fanout=%d", s, row.Values, deg[s], len(fan[s]))
		}
	}
}
