package query

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func ringIndex(g *graph.Graph) ltj.Index {
	r := ring.New(g, ring.Options{})
	return ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
}

func triangleGraph() *graph.Graph {
	// Two triangles plus a chain; all edges predicate 0.
	return graph.New([]graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 2}, {S: 0, P: 0, O: 2},
		{S: 3, P: 0, O: 4}, {S: 4, P: 0, O: 5}, {S: 3, P: 0, O: 5},
		{S: 6, P: 0, O: 7},
	})
}

func trianglePattern() graph.Pattern {
	return graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Const(0), graph.Var("z")),
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("z")),
	}
}

func TestProjection(t *testing.T) {
	idx := ringIndex(triangleGraph())
	res, err := Select{Pattern: trianglePattern(), Project: []string{"x"}}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d rows, want 2", len(res))
	}
	for _, b := range res {
		if len(b) != 1 {
			t.Fatalf("row has %d columns, want 1: %v", len(b), b)
		}
		if _, ok := b["x"]; !ok {
			t.Fatalf("row missing projected variable: %v", b)
		}
	}
}

func TestProjectionUnknownVariable(t *testing.T) {
	idx := ringIndex(triangleGraph())
	if _, err := (Select{Pattern: trianglePattern(), Project: []string{"nope"}}).Run(idx); err == nil {
		t.Error("unknown projected variable accepted")
	}
	if _, err := (Select{Pattern: trianglePattern(), OrderBy: []string{"nope"}}).Run(idx); err == nil {
		t.Error("unknown order-by variable accepted")
	}
	if _, err := (Select{Pattern: trianglePattern(), Offset: -1}).Run(idx); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestDistinct(t *testing.T) {
	// Project the triangle pattern to x: without DISTINCT one row per
	// triangle, with DISTINCT one row per distinct x (same here), but
	// projecting a star pattern to its centre shows the difference.
	g := graph.New([]graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 0, P: 0, O: 2}, {S: 0, P: 0, O: 3},
	})
	idx := ringIndex(g)
	q := graph.Pattern{graph.TP(graph.Var("c"), graph.Const(0), graph.Var("leaf"))}
	plain, err := Select{Pattern: q, Project: []string{"c"}}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 3 {
		t.Fatalf("without distinct: %d rows, want 3", len(plain))
	}
	dist, err := Select{Pattern: q, Project: []string{"c"}, Distinct: true}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 {
		t.Fatalf("with distinct: %d rows, want 1", len(dist))
	}
}

func TestFilters(t *testing.T) {
	g := triangleGraph()
	idx := ringIndex(g)
	// Undirected-motif symmetry breaking: x < y < z yields each triangle
	// once (here the pattern is already directed, so Less is a no-op check
	// of filter plumbing).
	res, err := Select{
		Pattern: trianglePattern(),
		Filters: []Filter{Less("x", "y"), Less("y", "z")},
	}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("filtered triangles = %d, want 2", len(res))
	}
	// ValueIn restricting x.
	res, err = Select{
		Pattern: trianglePattern(),
		Filters: []Filter{ValueIn("x", 3)},
	}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["x"] != 3 {
		t.Fatalf("ValueIn: %v", res)
	}
	// NotEqual and Equal.
	if !NotEqual("a", "b")(graph.Binding{"a": 1, "b": 2}) ||
		NotEqual("a", "b")(graph.Binding{"a": 1, "b": 1}) {
		t.Error("NotEqual wrong")
	}
	if !Equal("a", "b")(graph.Binding{"a": 1, "b": 1}) {
		t.Error("Equal wrong")
	}
}

func TestOrderByOffsetLimit(t *testing.T) {
	g := graph.New([]graph.Triple{
		{S: 5, P: 0, O: 9}, {S: 3, P: 0, O: 9}, {S: 8, P: 0, O: 9}, {S: 1, P: 0, O: 9},
	})
	idx := ringIndex(g)
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Const(0), graph.Const(9))}
	res, err := Select{Pattern: q, OrderBy: []string{"x"}}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	var xs []graph.ID
	for _, b := range res {
		xs = append(xs, b["x"])
	}
	if !reflect.DeepEqual(xs, []graph.ID{1, 3, 5, 8}) {
		t.Fatalf("ordered = %v", xs)
	}
	// Offset + limit window.
	res, err = Select{Pattern: q, OrderBy: []string{"x"}, Offset: 1, Limit: 2}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0]["x"] != 3 || res[1]["x"] != 5 {
		t.Fatalf("window = %v", res)
	}
	// Offset beyond the result set.
	res, err = Select{Pattern: q, Offset: 10}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("oversized offset returned %d rows", len(res))
	}
}

func TestStreamingLimitStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	g := testutil.RandomGraph(rng, 2000, 50, 2)
	idx := ringIndex(g)
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	res, err := Select{Pattern: q, Limit: 5}.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("limit 5: got %d", len(res))
	}
}

func TestCount(t *testing.T) {
	idx := ringIndex(triangleGraph())
	n, err := Select{Pattern: trianglePattern()}.Count(idx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
}

func TestAgainstOracleWithFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	g := testutil.RandomGraph(rng, 150, 15, 3)
	idx := ringIndex(g)
	for trial := 0; trial < 60; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(3), 2+rng.Intn(2), 0.4, false)
		vars := q.Vars()
		if len(vars) < 2 {
			continue
		}
		f := NotEqual(vars[0], vars[1])
		got, err := Select{Pattern: q, Filters: []Filter{f}}.Run(idx)
		if err != nil {
			t.Fatal(err)
		}
		var want []graph.Binding
		for _, b := range g.Evaluate(q, 0) {
			if f(b) {
				want = append(want, b)
			}
		}
		if diff := testutil.SameSolutions(got, want, vars); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}
