package bits

import (
	mbits "math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveSelect64(w uint64, k int) int {
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return 64
}

func TestSelect64Exhaustive16(t *testing.T) {
	// Exhaustive over all 16-bit patterns placed at varying shifts.
	for pat := uint64(0); pat < 1<<16; pat += 7 { // stride keeps runtime sane
		for _, shift := range []uint{0, 5, 16, 48} {
			w := pat << shift
			ones := mbits.OnesCount64(w)
			for k := 0; k < ones; k++ {
				got := Select64(w, k)
				want := naiveSelect64(w, k)
				if got != want {
					t.Fatalf("Select64(%#x, %d) = %d, want %d", w, k, got, want)
				}
			}
			if got := Select64(w, ones); got != 64 {
				t.Fatalf("Select64(%#x, %d) = %d, want 64 (out of range)", w, ones, got)
			}
		}
	}
}

func TestSelect64Random(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		w := rng.Uint64()
		k := rng.Intn(64)
		got, want := Select64(w, k), naiveSelect64(w, k)
		if got != want {
			t.Fatalf("Select64(%#x, %d) = %d, want %d", w, k, got, want)
		}
	}
}

func TestSelect64Edges(t *testing.T) {
	cases := []struct {
		w    uint64
		k    int
		want int
	}{
		{0, 0, 64},
		{1, 0, 0},
		{1 << 63, 0, 63},
		{^uint64(0), 63, 63},
		{^uint64(0), 0, 0},
		{0xF0, 3, 7},
		{5, -1, 64},
	}
	for _, c := range cases {
		if got := Select64(c.w, c.k); got != c.want {
			t.Errorf("Select64(%#x, %d) = %d, want %d", c.w, c.k, got, c.want)
		}
	}
}

func TestSelect64Zero(t *testing.T) {
	if got := Select64Zero(0, 5); got != 5 {
		t.Errorf("Select64Zero(0, 5) = %d, want 5", got)
	}
	if got := Select64Zero(^uint64(0), 0); got != 64 {
		t.Errorf("Select64Zero(all-ones, 0) = %d, want 64", got)
	}
	if got := Select64Zero(0b1011, 0); got != 2 {
		t.Errorf("Select64Zero(0b1011, 0) = %d, want 2", got)
	}
}

func TestReadWriteBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nbits = 4096
	data := make([]uint64, WordsFor(nbits))
	type rec struct {
		pos   uint64
		width uint
		val   uint64
	}
	// Write non-overlapping fields of random widths, then read them back.
	var recs []rec
	pos := uint64(0)
	for pos < nbits-64 {
		width := uint(rng.Intn(64) + 1)
		val := rng.Uint64()
		if width < 64 {
			val &= (1 << width) - 1
		}
		WriteBits(data, pos, width, val)
		recs = append(recs, rec{pos, width, val})
		pos += uint64(width)
	}
	for _, r := range recs {
		if got := ReadBits(data, r.pos, r.width); got != r.val {
			t.Fatalf("ReadBits(pos=%d, width=%d) = %#x, want %#x", r.pos, r.width, got, r.val)
		}
	}
}

func TestWriteBitsOverwrite(t *testing.T) {
	data := make([]uint64, 2)
	WriteBits(data, 60, 8, 0xFF) // straddles the word boundary
	if got := ReadBits(data, 60, 8); got != 0xFF {
		t.Fatalf("straddling write: got %#x, want 0xFF", got)
	}
	WriteBits(data, 60, 8, 0xA5)
	if got := ReadBits(data, 60, 8); got != 0xA5 {
		t.Fatalf("straddling overwrite: got %#x, want 0xA5", got)
	}
	// Neighbours untouched.
	if got := ReadBits(data, 0, 60); got != 0 {
		t.Fatalf("low neighbour corrupted: %#x", got)
	}
	if got := ReadBits(data, 68, 32); got != 0 {
		t.Fatalf("high neighbour corrupted: %#x", got)
	}
}

func TestReadBitsPastEnd(t *testing.T) {
	data := []uint64{^uint64(0)}
	if got := ReadBits(data, 128, 8); got != 0 {
		t.Fatalf("read past end = %#x, want 0", got)
	}
	if got := ReadBits(data, 60, 8); got != 0x0F {
		t.Fatalf("read straddling end = %#x, want 0x0F", got)
	}
}

func TestReadWriteQuick(t *testing.T) {
	f := func(posRaw uint16, widthRaw uint8, val uint64) bool {
		pos := uint64(posRaw % 1000)
		width := uint(widthRaw%64) + 1
		if width < 64 {
			val &= (1 << width) - 1
		}
		data := make([]uint64, WordsFor(2048))
		WriteBits(data, pos, width, val)
		return ReadBits(data, pos, width) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLen(t *testing.T) {
	cases := map[uint64]uint{0: 1, 1: 1, 2: 2, 3: 2, 255: 8, 256: 9}
	for v, want := range cases {
		if got := Len(v); got != want {
			t.Errorf("Len(%d) = %d, want %d", v, got, want)
		}
	}
}
