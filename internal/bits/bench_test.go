package bits

import (
	mbits "math/bits"
	"math/rand"
	"testing"
)

var sinkInt int

// BenchmarkSelect64 measures the in-word select primitive on random words
// with random in-range ks — the innermost step of every bitvector select.
func BenchmarkSelect64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m = 1024
	words := make([]uint64, m)
	ks := make([]int, m)
	for i := range words {
		w := rng.Uint64()
		if w == 0 {
			w = 1
		}
		words[i] = w
		ks[i] = rng.Intn(mbits.OnesCount64(w))
	}
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		j := i & (m - 1)
		s += Select64(words[j], ks[j])
	}
	sinkInt = s
}

// BenchmarkSelect64Sparse exercises the high-byte path: a single set bit
// placed in the top byte, the worst case for a byte-by-byte loop.
func BenchmarkSelect64Sparse(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += Select64(1<<63|uint64(i&1), i&1)
	}
	sinkInt = s
}
