// Package bits provides word-level bit manipulation primitives used by the
// succinct data structures in this repository: population counts, in-word
// select, and helpers for reading and writing bit fields that straddle
// 64-bit word boundaries.
//
// All functions operate on uint64 words with bit 0 being the least
// significant bit. They are the building blocks for the rank/select
// directories in package bitvector and the packed arrays in package intvec.
package bits

import mbits "math/bits"

// Select64 returns the position (0-based, from the least significant bit) of
// the (k+1)-th set bit of w, i.e. the position p such that w has exactly k
// ones strictly below p and bit p set. k must satisfy 0 <= k < OnesCount(w);
// otherwise the result is 64.
//
// The implementation narrows the search byte by byte using cumulative
// popcounts, then finishes with a small table-free scan inside the byte.
func Select64(w uint64, k int) int {
	if k < 0 || k >= mbits.OnesCount64(w) {
		return 64
	}
	// Narrow to the byte containing the target bit.
	base := 0
	for {
		c := mbits.OnesCount8(uint8(w))
		if k < c {
			break
		}
		k -= c
		w >>= 8
		base += 8
	}
	// Scan within the byte.
	b := uint8(w)
	for i := 0; i < 8; i++ {
		if b&(1<<uint(i)) != 0 {
			if k == 0 {
				return base + i
			}
			k--
		}
	}
	return 64 // unreachable for valid input
}

// Select64Zero returns the position of the (k+1)-th zero bit of w, or 64 if
// w has fewer than k+1 zeros.
func Select64Zero(w uint64, k int) int {
	return Select64(^w, k)
}

// ReadBits reads width bits (1..64) starting at absolute bit offset pos from
// the word slice data. Bits beyond the end of data are read as zero.
func ReadBits(data []uint64, pos uint64, width uint) uint64 {
	if width == 0 {
		return 0
	}
	wordIdx := pos >> 6
	bitIdx := uint(pos & 63)
	if wordIdx >= uint64(len(data)) {
		return 0
	}
	v := data[wordIdx] >> bitIdx
	got := 64 - bitIdx
	if got < width && wordIdx+1 < uint64(len(data)) {
		v |= data[wordIdx+1] << got
	}
	if width == 64 {
		return v
	}
	return v & ((uint64(1) << width) - 1)
}

// WriteBits writes the width (1..64) low bits of v at absolute bit offset
// pos into data. The caller must ensure data is large enough.
func WriteBits(data []uint64, pos uint64, width uint, v uint64) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (uint64(1) << width) - 1
	}
	wordIdx := pos >> 6
	bitIdx := uint(pos & 63)
	data[wordIdx] &^= maskAt(bitIdx, width)
	data[wordIdx] |= v << bitIdx
	if spill := bitIdx + width; spill > 64 {
		rem := spill - 64
		data[wordIdx+1] &^= (uint64(1) << rem) - 1
		data[wordIdx+1] |= v >> (64 - bitIdx)
	}
}

// maskAt returns a mask with width bits set starting at bit offset off,
// truncated at the word boundary.
func maskAt(off, width uint) uint64 {
	if width >= 64 {
		return ^uint64(0) << off
	}
	return ((uint64(1) << width) - 1) << off
}

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n uint64) int {
	return int((n + 63) / 64)
}

// Len returns the number of bits needed to represent v (Len(0) == 1, so a
// packed array of zeros still has nonzero width).
func Len(v uint64) uint {
	if v == 0 {
		return 1
	}
	return uint(mbits.Len64(v))
}
