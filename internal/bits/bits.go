// Package bits provides word-level bit manipulation primitives used by the
// succinct data structures in this repository: population counts, in-word
// select, and helpers for reading and writing bit fields that straddle
// 64-bit word boundaries.
//
// All functions operate on uint64 words with bit 0 being the least
// significant bit. They are the building blocks for the rank/select
// directories in package bitvector and the packed arrays in package intvec.
package bits

import mbits "math/bits"

const (
	l8   = 0x0101010101010101 // the constant L8 of Knuth 7.1.3 / Vigna's broadword select
	msb8 = 0x8080808080808080
)

// selInByte[k<<8|b] is the position of the (k+1)-th set bit of the byte b,
// or 8 when b has at most k ones. 2 KiB, built once at init.
var selInByte [8 * 256]uint8

func init() {
	for b := 0; b < 256; b++ {
		for k := 0; k < 8; k++ {
			pos, seen := 8, 0
			for i := 0; i < 8; i++ {
				if b&(1<<uint(i)) != 0 {
					if seen == k {
						pos = i
						break
					}
					seen++
				}
			}
			selInByte[k<<8|b] = uint8(pos)
		}
	}
}

// Select64 returns the position (0-based, from the least significant bit) of
// the (k+1)-th set bit of w, i.e. the position p such that w has exactly k
// ones strictly below p and bit p set. k must satisfy 0 <= k < OnesCount(w);
// otherwise the result is 64.
//
// The implementation is branchless broadword (SWAR): byte-wise prefix
// popcounts locate the target byte with a parallel comparison against k,
// and a 2 KiB table finishes inside the byte.
//
//ringlint:hotpath
func Select64(w uint64, k int) int {
	if k < 0 || k >= mbits.OnesCount64(w) {
		return 64
	}
	// s: byte i holds the popcount of bytes 0..i of w (each value <= 64).
	s := w - ((w >> 1) & 0x5555555555555555)
	s = (s & 0x3333333333333333) + ((s >> 2) & 0x3333333333333333)
	s = ((s + (s >> 4)) & 0x0f0f0f0f0f0f0f0f) * l8
	// Per-byte compare s_i <= k: both sides are < 128, so the MSB of
	// (k|0x80) - s_i is set exactly when k >= s_i. The number of bytes
	// whose prefix count is <= k is the index of the byte holding the
	// (k+1)-th one.
	leq := ((uint64(k)*l8 | msb8) - s) & msb8
	byteOff := mbits.OnesCount64(leq) << 3
	// Ones strictly below the target byte: the previous byte's prefix count.
	prev := int((s << 8) >> uint(byteOff) & 0xff)
	return byteOff + int(selInByte[(k-prev)<<8|int(w>>uint(byteOff)&0xff)])
}

// Select64Zero returns the position of the (k+1)-th zero bit of w, or 64 if
// w has fewer than k+1 zeros.
//
//ringlint:hotpath
func Select64Zero(w uint64, k int) int {
	return Select64(^w, k)
}

// ReadBits reads width bits (1..64) starting at absolute bit offset pos from
// the word slice data. Bits beyond the end of data are read as zero.
//
//ringlint:hotpath
func ReadBits(data []uint64, pos uint64, width uint) uint64 {
	if width == 0 {
		return 0
	}
	wordIdx := pos >> 6
	bitIdx := uint(pos & 63)
	if wordIdx >= uint64(len(data)) {
		return 0
	}
	v := data[wordIdx] >> bitIdx
	got := 64 - bitIdx
	if got < width && wordIdx+1 < uint64(len(data)) {
		v |= data[wordIdx+1] << got
	}
	if width == 64 {
		return v
	}
	return v & ((uint64(1) << width) - 1)
}

// WriteBits writes the width (1..64) low bits of v at absolute bit offset
// pos into data. The caller must ensure data is large enough.
func WriteBits(data []uint64, pos uint64, width uint, v uint64) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (uint64(1) << width) - 1
	}
	wordIdx := pos >> 6
	bitIdx := uint(pos & 63)
	data[wordIdx] &^= maskAt(bitIdx, width)
	data[wordIdx] |= v << bitIdx
	if spill := bitIdx + width; spill > 64 {
		rem := spill - 64
		data[wordIdx+1] &^= (uint64(1) << rem) - 1
		data[wordIdx+1] |= v >> (64 - bitIdx)
	}
}

// maskAt returns a mask with width bits set starting at bit offset off,
// truncated at the word boundary.
func maskAt(off, width uint) uint64 {
	if width >= 64 {
		return ^uint64(0) << off
	}
	return ((uint64(1) << width) - 1) << off
}

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n uint64) int {
	return int((n + 63) / 64)
}

// Len returns the number of bits needed to represent v (Len(0) == 1, so a
// packed array of zeros still has nonzero width).
func Len(v uint64) uint {
	if v == 0 {
		return 1
	}
	return uint(mbits.Len64(v))
}
