package bits

import (
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"
)

// Source supplies little-endian uint64 words to the succinct-structure
// deserializers. Two implementations exist:
//
//   - ReaderSource decodes from an io.Reader, copying every word onto the
//     heap. This is the historical load path and works on any stream.
//   - ByteSource decodes from an in-memory byte slice (typically a
//     memory-mapped file). When the host is little-endian and the slice is
//     8-byte aligned, Words returns sub-slices that alias the backing
//     bytes directly — zero copies, zero allocation proportional to the
//     payload. Otherwise it silently falls back to copying.
//
// The split between U64s and Words encodes an ownership contract:
// U64s is for headers and small directories — the result is always a
// fresh private slice the caller may scribble on. Words is for bulk
// payloads — the result MAY alias read-only mapped memory and must never
// be written to (see the ringlint viewsafe analyzer and DESIGN.md §12).
type Source interface {
	// U64s reads n little-endian uint64 values into a freshly allocated
	// slice the caller owns.
	U64s(n int) ([]uint64, error)
	// Words reads n little-endian uint64 values. The result may alias
	// the source's backing buffer and must be treated as read-only.
	Words(n int) ([]uint64, error)
	// Aliased reports whether Words returns aliases into the backing
	// buffer (true only for an aligned ByteSource on a little-endian
	// host).
	Aliased() bool
}

// maxSliceWords bounds any single Words/U64s request. A forged length in
// a corrupt header must fail fast instead of allocating gigabytes.
const maxSliceWords = 1 << 34

// hostLittleEndian reports whether the running machine stores uint64
// values little-endian, i.e. whether the serialized little-endian word
// stream can be reinterpreted in place.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// ReaderSource adapts an io.Reader into a Source. It never aliases: every
// word is decoded into fresh heap slices, preserving the historical
// decode-and-copy load path byte for byte (it consumes exactly the words
// requested, so composite streams — a ring after a dictionary, a wavelet
// level after a header — keep working).
type ReaderSource struct {
	r      io.Reader
	prefix string
}

// NewReaderSource returns a Source reading from r. prefix namespaces
// error messages (e.g. "bitvector").
func NewReaderSource(r io.Reader, prefix string) *ReaderSource {
	return &ReaderSource{r: r, prefix: prefix}
}

// U64s reads n words from the stream.
func (s *ReaderSource) U64s(n int) ([]uint64, error) {
	if n < 0 || n > maxSliceWords {
		return nil, fmt.Errorf("%s: implausible slice length %d", s.prefix, n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return nil, fmt.Errorf("%s: short read: %w", s.prefix, err)
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return vs, nil
}

// Words reads n words from the stream. The slice grows chunk by chunk as
// reads succeed: a forged length on a truncated stream must fail fast,
// not allocate gigabytes up front.
func (s *ReaderSource) Words(n int) ([]uint64, error) {
	if n < 0 || n > maxSliceWords {
		return nil, fmt.Errorf("%s: implausible slice length %d", s.prefix, n)
	}
	var out []uint64
	const chunk = 8192
	buf := make([]byte, 8*chunk)
	for off := 0; off < n; {
		m := n - off
		if m > chunk {
			m = chunk
		}
		if _, err := io.ReadFull(s.r, buf[:8*m]); err != nil {
			return nil, fmt.Errorf("%s: short read: %w", s.prefix, err)
		}
		for i := 0; i < m; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
		off += m
	}
	if out == nil {
		out = []uint64{}
	}
	return out, nil
}

// Aliased always reports false for a ReaderSource.
func (s *ReaderSource) Aliased() bool { return false }

// ByteSource is a Source over an in-memory byte slice, typically a
// memory-mapped index file. When the base pointer is 8-byte aligned and
// the host is little-endian, Words reinterprets the bytes in place;
// otherwise (odd interior offsets in legacy store files, exotic hosts)
// it copies, which is slower but always correct.
type ByteSource struct {
	buf    []byte
	off    int
	prefix string
	alias  bool
}

// NewByteSource returns a Source over b. prefix namespaces error
// messages. b must not be mutated while any structure decoded from the
// source is alive.
func NewByteSource(b []byte, prefix string) *ByteSource {
	alias := hostLittleEndian &&
		(len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0)
	return &ByteSource{buf: b, prefix: prefix, alias: alias}
}

// Offset returns the number of bytes consumed so far.
func (s *ByteSource) Offset() int { return s.off }

// take bounds-checks and consumes 8*n bytes, returning the raw section.
func (s *ByteSource) take(n int) ([]byte, error) {
	if n < 0 || n > maxSliceWords {
		return nil, fmt.Errorf("%s: implausible slice length %d", s.prefix, n)
	}
	if rem := len(s.buf) - s.off; rem < 8*n || 8*n < 0 {
		return nil, fmt.Errorf("%s: short read: %w", s.prefix, io.ErrUnexpectedEOF)
	}
	raw := s.buf[s.off : s.off+8*n]
	s.off += 8 * n
	return raw, nil
}

// U64s decodes n words into a fresh slice the caller owns.
func (s *ByteSource) U64s(n int) ([]uint64, error) {
	raw, err := s.take(n)
	if err != nil {
		return nil, err
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return vs, nil
}

// Words returns n words, aliasing the backing buffer when possible. The
// result must be treated as read-only: on the aliased path it points
// into memory that may be a read-only file mapping.
func (s *ByteSource) Words(n int) ([]uint64, error) {
	raw, err := s.take(n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []uint64{}, nil
	}
	// All reads are whole words, so the interior offset stays congruent
	// mod 8 with the base; still check per call for robustness.
	if s.alias && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), n), nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return vs, nil
}

// Aliased reports whether Words aliases the backing buffer.
func (s *ByteSource) Aliased() bool { return s.alias }
