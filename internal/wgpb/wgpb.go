// Package wgpb provides the benchmark substrate standing in for the
// paper's Wikidata experiments: a synthetic labelled-multigraph generator
// with Wikidata-like skew, the 17 graph-pattern shapes of the Wikidata
// Graph Pattern Benchmark (WGPB, Figure 7 of the paper), instantiated by
// random walks exactly as the benchmark builds its 50 queries per shape,
// and a "real-world mix" generator reproducing the triple-pattern-type
// distribution the paper reports for its query-log benchmark (Table 2).
//
// See DESIGN.md for why this substitution preserves the experiments'
// shape: the ring's space is data-independent up to |G|, and the relative
// query times between systems are driven by the degree and predicate skew
// plus the pattern shapes, which are reproduced here.
package wgpb

import (
	"math/rand"

	"repro/internal/graph"
)

// GraphConfig parameterises the synthetic graph.
type GraphConfig struct {
	// Triples is the target edge count (the distinct count may be slightly
	// lower).
	Triples int
	// Nodes is the shared subject/object domain size. The paper's WGPB
	// graph has ~52M identifiers for 81M triples; the default generator
	// keeps a similar triples/nodes ratio.
	Nodes int
	// Predicates is the number of edge labels (2101 in WGPB); drawn with a
	// Zipf skew so a few "hub" predicates dominate, as in Wikidata.
	Predicates int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGraphConfig returns a laptop-scale configuration with
// Wikidata-like shape parameters (ratios follow Section 5.2's statistics).
func DefaultGraphConfig(triples int) GraphConfig {
	nodes := triples * 2 / 3
	if nodes < 16 {
		nodes = 16
	}
	preds := triples / 40000
	if preds < 16 {
		preds = 16
	}
	return GraphConfig{Triples: triples, Nodes: nodes, Predicates: preds, Seed: 1}
}

// Generate builds the synthetic graph: subjects and objects follow a
// heavy-tailed (Zipf) degree distribution over a shuffled identifier
// permutation (so hubs are spread across the ID space, as dictionary
// order spreads Wikidata hubs), and predicates follow a steeper Zipf.
func Generate(cfg GraphConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	subjZ := rand.NewZipf(rng, 1.1, 8, uint64(cfg.Nodes-1))
	objZ := rand.NewZipf(rng, 1.05, 4, uint64(cfg.Nodes-1))
	predZ := rand.NewZipf(rng, 1.2, 2, uint64(cfg.Predicates-1))

	// Spread the skew across the ID space with a random permutation.
	perm := rng.Perm(cfg.Nodes)
	pperm := rng.Perm(cfg.Predicates)

	ts := make([]graph.Triple, cfg.Triples)
	for i := range ts {
		ts[i] = graph.Triple{
			S: graph.ID(perm[subjZ.Uint64()]),
			P: graph.ID(pperm[predZ.Uint64()]),
			O: graph.ID(perm[objZ.Uint64()]),
		}
	}
	return graph.NewWithDomains(ts, graph.ID(cfg.Nodes), graph.ID(cfg.Predicates))
}

// Edge is one edge of a pattern shape: a directed connection between two
// variable nodes identified by small integers.
type Edge struct {
	From, To int
}

// Shape is one of the 17 WGPB abstract patterns: variable nodes connected
// by edges whose predicates become constants at instantiation.
type Shape struct {
	Name  string
	Edges []Edge
	// Nodes is the number of variable nodes.
	Nodes int
}

// Shapes lists the 17 WGPB patterns of the paper's Figure 7. Nodes are
// numbered so that node 0 starts the instantiating random walk.
//
//   - P2-P4: directed paths of 2-4 edges.
//   - T2-T4: out-stars (a centre pointing at 2-4 leaves); Ti2-Ti4 the
//     inverse in-stars.
//   - J3, J4: mixed-direction stars of 3 and 4 edges.
//   - Tr1: acyclically oriented triangle; Tr2: directed 3-cycle.
//   - S1-S4: 4-cycles (squares) in the four direction patterns.
var Shapes = []Shape{
	{Name: "P2", Nodes: 3, Edges: []Edge{{0, 1}, {1, 2}}},
	{Name: "P3", Nodes: 4, Edges: []Edge{{0, 1}, {1, 2}, {2, 3}}},
	{Name: "P4", Nodes: 5, Edges: []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
	{Name: "T2", Nodes: 3, Edges: []Edge{{0, 1}, {0, 2}}},
	{Name: "Ti2", Nodes: 3, Edges: []Edge{{1, 0}, {2, 0}}},
	{Name: "T3", Nodes: 4, Edges: []Edge{{0, 1}, {0, 2}, {0, 3}}},
	{Name: "Ti3", Nodes: 4, Edges: []Edge{{1, 0}, {2, 0}, {3, 0}}},
	{Name: "J3", Nodes: 4, Edges: []Edge{{0, 1}, {2, 0}, {0, 3}}},
	{Name: "T4", Nodes: 5, Edges: []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}},
	{Name: "Ti4", Nodes: 5, Edges: []Edge{{1, 0}, {2, 0}, {3, 0}, {4, 0}}},
	{Name: "J4", Nodes: 5, Edges: []Edge{{0, 1}, {2, 0}, {0, 3}, {4, 0}}},
	{Name: "Tr1", Nodes: 3, Edges: []Edge{{0, 1}, {1, 2}, {0, 2}}},
	{Name: "Tr2", Nodes: 3, Edges: []Edge{{0, 1}, {1, 2}, {2, 0}}},
	{Name: "S1", Nodes: 4, Edges: []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}},
	{Name: "S2", Nodes: 4, Edges: []Edge{{0, 1}, {1, 2}, {3, 2}, {0, 3}}},
	{Name: "S3", Nodes: 4, Edges: []Edge{{0, 1}, {2, 1}, {2, 3}, {0, 3}}},
	{Name: "S4", Nodes: 4, Edges: []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
}

// ShapeByName returns the named shape, or nil.
func ShapeByName(name string) *Shape {
	for i := range Shapes {
		if Shapes[i].Name == name {
			return &Shapes[i]
		}
	}
	return nil
}

// adjacency supports the instantiating random walks.
type adjacency struct {
	out map[graph.ID][]graph.Triple // by subject
	in  map[graph.ID][]graph.Triple // by object
}

func buildAdjacency(g *graph.Graph) *adjacency {
	a := &adjacency{out: map[graph.ID][]graph.Triple{}, in: map[graph.ID][]graph.Triple{}}
	for _, t := range g.Triples() {
		a.out[t.S] = append(a.out[t.S], t)
		a.in[t.O] = append(a.in[t.O], t)
	}
	return a
}

// Workload instantiates queries for the WGPB shapes over g.
type Workload struct {
	g    *graph.Graph
	adj  *adjacency
	rng  *rand.Rand
	hubP *graph.ID // cached most-frequent predicate
}

// NewWorkload prepares a query generator over g.
func NewWorkload(g *graph.Graph, seed int64) *Workload {
	return &Workload{g: g, adj: buildAdjacency(g), rng: rand.New(rand.NewSource(seed))}
}

// varName returns the query variable for shape node i.
func varName(i int) string { return string(rune('x'+i%3)) + suffix(i) }

func suffix(i int) string {
	if i < 3 {
		return ""
	}
	return string(rune('0' + i/3))
}

// Instantiate builds one concrete basic graph pattern for the shape: a
// random walk assigns concrete nodes to the shape's variables and takes
// the predicate of each traversed edge as the pattern's constant, which
// guarantees at least one solution (as WGPB does). It returns false if the
// walk dead-ends (the caller retries).
func (w *Workload) Instantiate(s *Shape) (graph.Pattern, bool) {
	if w.g.Len() == 0 {
		return nil, false
	}
	assign := make([]graph.ID, s.Nodes)
	assigned := make([]bool, s.Nodes)
	preds := make([]graph.ID, len(s.Edges))

	// Seed the walk at a random edge's subject.
	start := w.g.Triples()[w.rng.Intn(w.g.Len())]
	assign[0], assigned[0] = start.S, true

	for ei, e := range s.Edges {
		switch {
		case assigned[e.From] && assigned[e.To]:
			// Closing edge (cycles): a concrete edge must already exist.
			found := false
			for _, t := range w.adj.out[assign[e.From]] {
				if t.O == assign[e.To] {
					preds[ei] = t.P
					found = true
					break
				}
			}
			if !found {
				return nil, false
			}
		case assigned[e.From]:
			cands := w.adj.out[assign[e.From]]
			if len(cands) == 0 {
				return nil, false
			}
			t := cands[w.rng.Intn(len(cands))]
			assign[e.To], assigned[e.To] = t.O, true
			preds[ei] = t.P
		case assigned[e.To]:
			cands := w.adj.in[assign[e.To]]
			if len(cands) == 0 {
				return nil, false
			}
			t := cands[w.rng.Intn(len(cands))]
			assign[e.From], assigned[e.From] = t.S, true
			preds[ei] = t.P
		default:
			// Shapes are connected and start at node 0, so one endpoint is
			// always assigned.
			return nil, false
		}
	}
	q := make(graph.Pattern, len(s.Edges))
	for ei, e := range s.Edges {
		q[ei] = graph.TP(graph.Var(varName(e.From)), graph.Const(preds[ei]), graph.Var(varName(e.To)))
	}
	return q, true
}

// Queries generates count instances of the shape, retrying dead-ended
// walks (up to a large bound; fewer queries may be returned on very sparse
// graphs).
func (w *Workload) Queries(s *Shape, count int) []graph.Pattern {
	var out []graph.Pattern
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		if q, ok := w.Instantiate(s); ok {
			out = append(out, q)
		}
	}
	return out
}

// PatternTypeDist is the paper's Table 2 triple-pattern type distribution
// (Section 5.3): fractions of (?,p,?), (?,p,o), (?,?,?), (s,?,?), (s,p,?),
// (?,?,o), (s,?,o).
var PatternTypeDist = []struct {
	Name string
	Frac float64
}{
	{"?p?", 0.515},
	{"?po", 0.383},
	{"???", 0.067},
	{"s??", 0.012},
	{"sp?", 0.012},
	{"??o", 0.011},
	{"s?o", 0.0004},
}

// RealWorldQuery generates one mixed query in the spirit of the paper's
// query-log benchmark (which selected *timeout-prone* queries): between 1
// and maxTriples triple patterns chained over shared variables, with each
// pattern's constant/variable shape drawn from PatternTypeDist and
// constants taken from a random walk so queries tend to have solutions.
// With a small probability a chain is closed into a cycle — the
// adversarial structure on which pairwise join plans blow up and wco
// evaluation pays off.
func (w *Workload) RealWorldQuery(maxTriples int) graph.Pattern {
	nt := 1 + w.rng.Intn(maxTriples)
	q := make(graph.Pattern, 0, nt)
	// Walk a chain of concrete triples sharing endpoints.
	cur := w.g.Triples()[w.rng.Intn(w.g.Len())]
	nextVar := 0
	freshVar := func() string {
		nextVar++
		return "v" + string(rune('0'+nextVar/10)) + string(rune('0'+nextVar%10))
	}
	prevObjVar := ""
	for i := 0; i < nt; i++ {
		typ := w.drawType()
		sTerm := graph.Term{}
		// Chain: the subject reuses the previous object variable when both
		// are variables, producing joins.
		sIsVar := typ[0] == '?'
		pIsVar := typ[1] == '?'
		oIsVar := typ[2] == '?'
		if sIsVar {
			if prevObjVar != "" && w.rng.Intn(2) == 0 {
				sTerm = graph.Var(prevObjVar)
			} else {
				sTerm = graph.Var(freshVar())
			}
		} else {
			sTerm = graph.Const(cur.S)
		}
		var pTerm, oTerm graph.Term
		if pIsVar {
			pTerm = graph.Var(freshVar())
		} else {
			pTerm = graph.Const(cur.P)
		}
		if oIsVar {
			v := freshVar()
			oTerm = graph.Var(v)
			prevObjVar = v
		} else {
			oTerm = graph.Const(cur.O)
			prevObjVar = ""
		}
		q = append(q, graph.TP(sTerm, pTerm, oTerm))
		// Continue the walk from the current object when possible.
		if cands := w.adj.out[cur.O]; len(cands) > 0 {
			cur = cands[w.rng.Intn(len(cands))]
		} else {
			cur = w.g.Triples()[w.rng.Intn(w.g.Len())]
		}
	}
	// Occasionally harden the query, as the paper's benchmark does by
	// selecting timeout-prone log queries: close the chain into a cycle
	// through the graph's hub predicate (huge intermediate results for
	// pairwise plans, few final solutions), or append an unselective
	// hub-predicate hop.
	if len(q) >= 2 && w.rng.Float64() < 0.25 {
		var vars []string
		seen := map[string]bool{}
		for _, tp := range q {
			for _, pos := range []graph.Position{graph.PosS, graph.PosO} {
				if t := tp.Term(pos); t.IsVar && !seen[t.Name] {
					seen[t.Name] = true
					vars = append(vars, t.Name)
				}
			}
		}
		if len(vars) >= 2 {
			a, b := vars[0], vars[len(vars)-1]
			if a != b {
				hub := w.hubPredicate()
				q = append(q,
					graph.TP(graph.Var(b), graph.Const(hub), graph.Var(freshVar())),
					graph.TP(graph.Var(a), graph.Const(hub), graph.Var(freshVar())))
				q = append(q, graph.TP(graph.Var(b), graph.Const(hub), graph.Var(a)))
			}
		}
	}
	return q
}

// SharedScanCores generates n distinct selective 2-pattern join cores —
// the query shape of a cache-miss-heavy serving workload with a small
// hot set: (s, ?p, ?b) ⋈ (?b, p, ?c), anchored on a concrete subject.
// Many concurrent clients drawing from a small core set produce exactly
// the identical-canonical-pattern collisions the server's shared-scan
// lane batches into one evaluation; each core is seeded by a random walk
// so it has at least one solution. Cores are distinct by their (anchor,
// predicate) pair; fewer than n may be returned on very sparse graphs.
func (w *Workload) SharedScanCores(n int) []graph.Pattern {
	if w.g.Len() == 0 {
		return nil
	}
	type coreKey struct {
		s, p graph.ID
	}
	seen := map[coreKey]bool{}
	var out []graph.Pattern
	for attempts := 0; len(out) < n && attempts < n*200; attempts++ {
		t1 := w.g.Triples()[w.rng.Intn(w.g.Len())]
		hops := w.adj.out[t1.O]
		if len(hops) == 0 {
			continue
		}
		t2 := hops[w.rng.Intn(len(hops))]
		k := coreKey{t1.S, t2.P}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, graph.Pattern{
			graph.TP(graph.Const(t1.S), graph.Var("p"), graph.Var("b")),
			graph.TP(graph.Var("b"), graph.Const(t2.P), graph.Var("c")),
		})
	}
	return out
}

// hubPredicate returns the most frequent predicate (cached).
func (w *Workload) hubPredicate() graph.ID {
	if w.hubP == nil {
		counts := map[graph.ID]int{}
		for _, t := range w.g.Triples() {
			counts[t.P]++
		}
		best, bestC := graph.ID(0), -1
		for p, c := range counts {
			if c > bestC {
				best, bestC = p, c
			}
		}
		w.hubP = &best
	}
	return *w.hubP
}

func (w *Workload) drawType() string {
	r := w.rng.Float64()
	acc := 0.0
	for _, d := range PatternTypeDist {
		acc += d.Frac
		if r < acc {
			return typePattern(d.Name)
		}
	}
	return "?p?"
}

// typePattern normalises a distribution name to a 3-char s/p/o mask where
// '?' means variable.
func typePattern(name string) string {
	out := []byte{'s', 'p', 'o'}
	for i := 0; i < 3; i++ {
		if name[i] == '?' {
			out[i] = '?'
		}
	}
	return string(out)
}
