package wgpb

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := GraphConfig{Triples: 5000, Nodes: 800, Predicates: 20, Seed: 7}
	g := Generate(cfg)
	if g.Len() == 0 {
		t.Fatal("generator produced an empty graph")
	}
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GraphConfig{Triples: 1000, Nodes: 200, Predicates: 10, Seed: 42}
	g1, g2 := Generate(cfg), Generate(cfg)
	if g1.Len() != g2.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", g1.Len(), g2.Len())
	}
	for i, tr := range g1.Triples() {
		if tr != g2.Triples()[i] {
			t.Fatalf("same seed, different triple at %d", i)
		}
	}
	g3 := Generate(GraphConfig{Triples: 1000, Nodes: 200, Predicates: 10, Seed: 43})
	same := g1.Len() == g3.Len()
	if same {
		for i, tr := range g1.Triples() {
			if tr != g3.Triples()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateDomains(t *testing.T) {
	g := testGraph(t)
	if g.NumSO() != 800 || g.NumP() != 20 {
		t.Errorf("domains = (%d,%d), want (800,20)", g.NumSO(), g.NumP())
	}
	for _, tr := range g.Triples() {
		if tr.S >= 800 || tr.O >= 800 || tr.P >= 20 {
			t.Fatalf("triple out of domain: %v", tr)
		}
	}
}

func TestGenerateSkew(t *testing.T) {
	// Predicate usage must be heavily skewed (Zipf): the most frequent
	// predicate should dominate the least frequent by a wide margin.
	g := testGraph(t)
	counts := map[graph.ID]int{}
	for _, tr := range g.Triples() {
		counts[tr.P]++
	}
	max, min := 0, math.MaxInt
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 10*min && len(counts) > 3 {
		t.Errorf("predicate distribution not skewed: max=%d min=%d", max, min)
	}
}

func TestSeventeenShapes(t *testing.T) {
	if len(Shapes) != 17 {
		t.Fatalf("%d shapes, want 17 (Figure 7)", len(Shapes))
	}
	names := map[string]bool{}
	for _, s := range Shapes {
		if names[s.Name] {
			t.Errorf("duplicate shape %s", s.Name)
		}
		names[s.Name] = true
		// Every edge endpoint must be a valid node.
		for _, e := range s.Edges {
			if e.From < 0 || e.From >= s.Nodes || e.To < 0 || e.To >= s.Nodes {
				t.Errorf("shape %s: edge %v out of range", s.Name, e)
			}
		}
		// Shapes must be connected starting from node 0 in generation order
		// (each edge touches an already-reachable node).
		reach := map[int]bool{0: true}
		for _, e := range s.Edges {
			if !reach[e.From] && !reach[e.To] {
				t.Errorf("shape %s: edge %v disconnected at generation time", s.Name, e)
			}
			reach[e.From], reach[e.To] = true, true
		}
	}
	for _, want := range []string{"P2", "P3", "P4", "T2", "Ti2", "T3", "Ti3", "J3", "T4", "Ti4", "J4", "Tr1", "Tr2", "S1", "S2", "S3", "S4"} {
		if !names[want] {
			t.Errorf("missing shape %s", want)
		}
	}
}

func TestShapeByName(t *testing.T) {
	if ShapeByName("Tr2") == nil || ShapeByName("Tr2").Name != "Tr2" {
		t.Error("ShapeByName(Tr2) failed")
	}
	if ShapeByName("nope") != nil {
		t.Error("ShapeByName accepted an unknown name")
	}
}

func TestInstantiatedQueriesHaveSolutions(t *testing.T) {
	// The random-walk construction guarantees nonempty results, the key
	// property of WGPB instantiation.
	g := testGraph(t)
	w := NewWorkload(g, 3)
	r := ring.New(g, ring.Options{})
	idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	for i := range Shapes {
		s := &Shapes[i]
		qs := w.Queries(s, 3)
		if len(qs) == 0 {
			t.Errorf("shape %s: no queries generated", s.Name)
			continue
		}
		for _, q := range qs {
			if len(q) != len(s.Edges) {
				t.Errorf("shape %s: query has %d patterns, want %d", s.Name, len(q), len(s.Edges))
			}
			res, err := ltj.Evaluate(idx, q, ltj.Options{Limit: 1})
			if err != nil {
				t.Fatalf("shape %s query %v: %v", s.Name, q, err)
			}
			if len(res.Solutions) == 0 {
				t.Errorf("shape %s: instantiated query %v has no solutions", s.Name, q)
			}
		}
	}
}

func TestQueriesShapeStructure(t *testing.T) {
	// All WGPB queries have constant predicates and variable endpoints.
	g := testGraph(t)
	w := NewWorkload(g, 5)
	for i := range Shapes {
		for _, q := range w.Queries(&Shapes[i], 2) {
			for _, tp := range q {
				if tp.P.IsVar || !tp.S.IsVar || !tp.O.IsVar {
					t.Fatalf("shape %s produced non-WGPB pattern %v", Shapes[i].Name, tp)
				}
			}
		}
	}
}

func TestRealWorldQueryMix(t *testing.T) {
	g := testGraph(t)
	w := NewWorkload(g, 11)
	counts := map[string]int{}
	total := 0
	for i := 0; i < 3000; i++ {
		q := w.RealWorldQuery(4)
		if len(q) == 0 {
			t.Fatal("empty query")
		}
		for _, tp := range q {
			key := ""
			for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
				if tp.Term(pos).IsVar {
					key += "?"
				} else {
					key += pos.String()
				}
			}
			counts[key]++
			total++
		}
	}
	// The dominant types must match the paper's ordering: (?,p,?) most
	// common, then (?,p,o).
	if counts["?p?"] <= counts["?po"] {
		t.Errorf("type mix off: ?p?=%d should exceed ?po=%d", counts["?p?"], counts["?po"])
	}
	if frac := float64(counts["?p?"]) / float64(total); frac < 0.35 || frac > 0.65 {
		t.Errorf("(?,p,?) fraction = %.2f, want near 0.515", frac)
	}
	// Variable-predicate patterns must appear (unlike WGPB).
	if counts["???"] == 0 {
		t.Error("no (?,?,?) patterns generated")
	}
}

func TestRealWorldQueriesEvaluate(t *testing.T) {
	g := testGraph(t)
	w := NewWorkload(g, 13)
	r := ring.New(g, ring.Options{})
	idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	for i := 0; i < 30; i++ {
		q := w.RealWorldQuery(3)
		if _, err := ltj.Evaluate(idx, q, ltj.Options{Limit: 100}); err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
	}
}

// TestSharedScanCores: the cores are distinct canonical patterns, shaped
// as selective 2-pattern joins, and each has at least one solution.
func TestSharedScanCores(t *testing.T) {
	g := testGraph(t)
	w := NewWorkload(g, 11)
	cores := w.SharedScanCores(8)
	if len(cores) < 4 {
		t.Fatalf("only %d cores generated, want most of 8", len(cores))
	}
	r := ring.New(g, ring.Options{})
	idx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})
	seen := map[string]bool{}
	for i, q := range cores {
		if len(q) != 2 {
			t.Fatalf("core %d has %d patterns, want 2", i, len(q))
		}
		if q[0].Term(graph.PosS).IsVar || !q[0].Term(graph.PosP).IsVar {
			t.Fatalf("core %d first pattern not (const, ?p, ?b): %v", i, q[0])
		}
		if !q[1].Term(graph.PosS).IsVar || q[1].Term(graph.PosP).IsVar {
			t.Fatalf("core %d second pattern not (?b, const, ?c): %v", i, q[1])
		}
		key := q[0].Term(graph.PosS).String() + "|" + q[1].Term(graph.PosP).String()
		if seen[key] {
			t.Fatalf("core %d duplicates an earlier (anchor, predicate) pair", i)
		}
		seen[key] = true
		res, err := ltj.Evaluate(idx, q, ltj.Options{Limit: 1})
		if err != nil {
			t.Fatalf("core %d %v: %v", i, q, err)
		}
		if len(res.Solutions) == 0 {
			t.Fatalf("core %d %v has no solutions", i, q)
		}
	}
}
