// Package trieiter defines the per-triple-pattern trie-iterator
// abstraction (Definition 2.1 of the paper, extended with explicit
// binding state) shared by the LTJ engine and every index that plugs
// into it — the ring, the flat tries, the B+-tree orders, the
// unidirectional ablation, and the dynamic store's union iterator.
//
// The interface lives in its own leaf package (rather than in the engine
// package internal/ltj) so that index packages whose types the engine's
// tests exercise — notably internal/ring — can also name it without an
// import cycle. internal/ltj re-exports the types under their historical
// names (ltj.PatternIter, ltj.ForkableIter) via aliases, so engine-side
// code is unaffected.
package trieiter

import (
	"repro/internal/graph"
	"repro/internal/wavelet"
)

// Iter maintains the set of triples matching one triple pattern under a
// stack of position bindings.
type Iter interface {
	// Count returns the number of triples currently matching. It backs the
	// cardinality statistics used for the variable elimination order.
	Count() int
	// Empty reports whether no triples currently match.
	Empty() bool
	// Leap returns the smallest constant >= c that can bind position pos
	// while keeping the pattern non-empty, or ok=false if none exists.
	// pos must be unbound.
	Leap(pos graph.Position, c graph.ID) (graph.ID, bool)
	// Bind fixes pos to c, narrowing the match set (possibly to empty).
	Bind(pos graph.Position, c graph.ID)
	// Unbind undoes the most recent Bind.
	Unbind()
	// CanEnumerate reports whether Enumerate is supported for pos under
	// the current bindings.
	CanEnumerate(pos graph.Position) bool
	// Enumerate visits the distinct values that can bind pos, in
	// increasing order, stopping early if visit returns false.
	Enumerate(pos graph.Position, visit func(graph.ID) bool)
}

// RunLeaper is the optional capability behind the engine's batched
// radix-intersection lane (DESIGN.md §13): an iterator whose Leap(pos, ·)
// candidates are exactly the distinct symbols of one contiguous
// wavelet-matrix range. When every iterator touching a join variable
// exposes such a range (over matrices of equal width), the engine
// replaces ping-pong leapfrogging with one wavelet.IntersectRanges
// descent over all the ranges at once.
type RunLeaper interface {
	Iter
	// LeapRun returns the matrix range whose distinct values are the
	// pattern's current candidates for pos, and whether the batched form
	// applies under the current bindings (for the ring: only the
	// backward-leap direction reads a contiguous column range). When
	// ok is false the caller must fall back to scalar Leap calls.
	LeapRun(pos graph.Position) (wavelet.MatrixRange, bool)
}

// Forkable is the optional capability the parallel LTJ engine uses to
// hand each worker goroutine an independent iterator. The query
// structures behind an iterator are immutable once built, so a fork only
// has to copy the small mutable cursor (range bounds and the binding
// stack); the underlying index is shared read-only across all forks.
type Forkable interface {
	Iter
	// Fork returns an iterator over the same pattern with the same
	// binding state, which can thereafter be advanced independently of
	// the receiver (including from a different goroutine). Fork may
	// return nil when a cheap fork is impossible under the current state;
	// callers must then fall back to rebuilding an iterator from the
	// pattern and replaying the bindings.
	Fork() Iter
}
