package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(4, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := a.acquire(ctx, 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	used, queued := a.snapshot()
	if used != 4 || queued != 0 {
		t.Fatalf("snapshot = (%d,%d), want (4,0)", used, queued)
	}
	a.release(1)
	if used, _ := a.snapshot(); used != 3 {
		t.Fatalf("used after release = %d, want 3", used)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	done := make(chan error, 1)
	go func() {
		done <- a.acquire(ctx, 1)
	}()
	waitForQueued(t, a, 1)
	// ...the next is shed synchronously.
	if err := a.acquire(ctx, 1); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire = %v, want errQueueFull", err)
	}
	a.release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release(1)
}

func TestAdmissionZeroQueueShedsImmediately(t *testing.T) {
	a := newAdmission(1, 0)
	ctx := context.Background()
	if err := a.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx, 1); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire = %v, want errQueueFull", err)
	}
	a.release(1)
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, 1) }()
	waitForQueued(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire = %v, want context.Canceled", err)
	}
	if _, queued := a.snapshot(); queued != 0 {
		t.Fatalf("cancelled waiter still queued")
	}
	// The held slot is unaffected; releasing must leave a clean state.
	a.release(1)
	if used, _ := a.snapshot(); used != 0 {
		t.Fatalf("used = %d, want 0", used)
	}
}

func TestAdmissionWeightClamped(t *testing.T) {
	a := newAdmission(2, 0)
	ctx := context.Background()
	// A weight above capacity is clamped, so it is servable.
	if err := a.acquire(ctx, 100); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	if used, _ := a.snapshot(); used != 2 {
		t.Fatalf("used = %d, want clamped 2", used)
	}
	a.release(100)
	if used, _ := a.snapshot(); used != 0 {
		t.Fatalf("used after release = %d, want 0", used)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(1, 8)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.release(1)
		}()
		waitForQueued(t, a, i+1) // enqueue deterministically, one at a time
	}
	a.release(1)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
}

// TestAdmissionConcurrentStress hammers the semaphore from many
// goroutines (the race lane runs this under -race) and asserts the
// capacity invariant was never violated.
func TestAdmissionConcurrentStress(t *testing.T) {
	const capacity = 3
	a := newAdmission(capacity, 64)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := a.acquire(context.Background(), 1); err != nil {
					continue // shed under burst: fine
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				a.release(1)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak concurrency %d exceeded capacity %d", p, capacity)
	}
	if used, queued := a.snapshot(); used != 0 || queued != 0 {
		t.Fatalf("final snapshot = (%d,%d), want (0,0)", used, queued)
	}
}

func waitForQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued := a.snapshot(); queued >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}
