package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	wcoring "repro"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/persist"
)

// The server runs in one of two modes. Static mode serves an immutable
// ring loaded from a file. Live mode serves a persist.DB: queries pin an
// epoch snapshot of the dynamic store, and POST /insert and /delete
// append to the write-ahead log. The query path is shared through the
// index interface below; everything mutation- and durability-specific
// lives in this file.

// index is what the query path needs from either mode: pattern
// compilation against the (possibly growing) dictionary, a pinned
// iterator source for one evaluation, result decoding, and a cache-key
// prefix that changes whenever results could.
type index interface {
	Compile(q []wcoring.PatternString) (graph.Pattern, map[string]bool, bool, error)
	DecodeBinding(b graph.Binding, predVars map[string]bool) map[string]string
	// PatternIters pins a consistent view and returns the per-pattern
	// iterator factory over it; all iterators of one evaluation must come
	// from one call.
	PatternIters() func(tp graph.TriplePattern) ltj.PatternIter
	// CachePrefix keys the result cache by content version. Static
	// indexes return "" (the cache is invalidated wholesale on index
	// swap); live indexes return the store generation, so a cached result
	// can never be served across an applied batch.
	CachePrefix() string
}

// staticIndex serves an immutable wcoring.Store.
type staticIndex struct{ st *wcoring.Store }

func (x staticIndex) Compile(q []wcoring.PatternString) (graph.Pattern, map[string]bool, bool, error) {
	return x.st.Compile(q)
}

func (x staticIndex) DecodeBinding(b graph.Binding, predVars map[string]bool) map[string]string {
	return x.st.Dictionary().DecodeBinding(b, predVars)
}

func (x staticIndex) PatternIters() func(tp graph.TriplePattern) ltj.PatternIter {
	rg := x.st.Ring()
	return func(tp graph.TriplePattern) ltj.PatternIter { return rg.NewPatternState(tp) }
}

func (x staticIndex) CachePrefix() string { return "" }

// liveIndex serves a persist.DB; the snapshot is pinned per evaluation.
type liveIndex struct{ db *persist.DB }

func (x liveIndex) Compile(q []wcoring.PatternString) (graph.Pattern, map[string]bool, bool, error) {
	return x.db.Compile(q)
}

func (x liveIndex) DecodeBinding(b graph.Binding, predVars map[string]bool) map[string]string {
	return x.db.DecodeBinding(b, predVars)
}

func (x liveIndex) PatternIters() func(tp graph.TriplePattern) ltj.PatternIter {
	snap := x.db.Snapshot()
	return snap.NewPatternIter
}

func (x liveIndex) CachePrefix() string {
	return "g" + strconv.FormatUint(x.db.Generation(), 10) + "|"
}

// ExpectLive declares that this server will serve a live index that is
// still being recovered (the -data-dir boot path calls it before Open).
// Until SetLive installs the DB, mutations answer a retryable 503
// rather than the permanent-sounding read-only 501.
func (s *Server) ExpectLive() { s.liveWanted.Store(true) }

// SetLive installs an opened persist.DB as the live index: it runs an
// end-to-end probe query as a self-check, marks the server ready, and
// publishes the index gauges. The DB must already be recovered (Open
// does that); the caller keeps ownership and closes it after drain.
func (s *Server) SetLive(db *persist.DB) error {
	probe := graph.Pattern{graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o"))}
	if _, err := db.Snapshot().Evaluate(probe, ltj.Options{Limit: 1, Timeout: 30 * time.Second}); err != nil {
		return fmt.Errorf("server: live self-check query failed: %w", err)
	}
	s.liveWanted.Store(true)
	s.live.Store(db)
	s.met.indexTriples.set(int64(db.Len()))
	s.ready.Store(true)
	st := db.Stats()
	s.log.Info("live index ready",
		"triples", st.Triples,
		"manifest_version", st.ManifestVersion,
		"replayed_batches", st.RecoveryBatches,
		"replayed_ops", st.RecoveryOps,
		"torn_tail", st.RecoveryTorn)
	return nil
}

// Live returns the installed live DB, or nil in static mode.
func (s *Server) Live() *persist.DB { return s.live.Load() }

// index returns the active index, or nil when still loading.
func (s *Server) index() index {
	if db := s.live.Load(); db != nil {
		return liveIndex{db}
	}
	if st := s.store.Load(); st != nil {
		return staticIndex{st}
	}
	return nil
}

// --- mutation endpoints ---

// TripleJSON is one triple of a mutation request; all components are
// constants.
type TripleJSON struct {
	S string `json:"s"`
	P string `json:"p"`
	O string `json:"o"`
}

// MutationRequest is the body of POST /insert and POST /delete. Sync
// (the default) makes the call return only after the batch's WAL record
// is fsynced — HTTP 200 then means durable. With "sync": false the batch
// is applied and queued for the next group commit, acknowledged with 202:
// visible immediately, durable shortly, lost if the process dies first.
type MutationRequest struct {
	Triples []TripleJSON `json:"triples"`
	Sync    *bool        `json:"sync,omitempty"`
}

// MutationResponse is the body of a successful mutation.
type MutationResponse struct {
	// Applied counts the triples whose presence actually changed
	// (inserts deduplicate; deletes of absent triples are no-ops).
	Applied int `json:"applied"`
	// Count is the batch size as received.
	Count  int  `json:"count"`
	Synced bool `json:"synced"`
	// Generation is the store epoch after this batch; it only moves
	// forward, so clients can use it to read-their-writes against
	// replicas or caches.
	Generation uint64 `json:"generation"`
	// Seq is the batch's committed WAL sequence. Replication preserves
	// it, so passing it back as X-Ring-Min-Seq on a query makes any
	// replica wait until this write is visible there (read-your-writes).
	Seq       uint64  `json:"seq"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// maxMutationBytes bounds a mutation body; larger ingests should be
// chunked into multiple batches (group commit amortises the fsyncs).
const maxMutationBytes = 8 << 20

// maxMutationTriples bounds one batch; it is also the unit of atomicity
// (one WAL record), so unbounded batches would make recovery lumpy.
const maxMutationTriples = 10000

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleMutation(w, r, "insert")
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleMutation(w, r, "delete")
}

func (s *Server) handleMutation(w http.ResponseWriter, r *http.Request, op string) {
	outcome := func(o string) string { return `op="` + op + `",outcome="` + o + `"` }
	if r.Method != http.MethodPost {
		s.met.mutations.get(outcome("bad_request")).inc()
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	db := s.live.Load()
	if db == nil {
		if s.liveWanted.Load() {
			// Live mode is coming; recovery just has not finished. Mirror
			// the not-ready query path: transient, retryable.
			s.met.mutations.get(outcome("not_ready")).inc()
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusServiceUnavailable, "live index recovering")
			return
		}
		s.met.mutations.get(outcome("read_only")).inc()
		jsonError(w, http.StatusNotImplemented, "server is read-only: start with -data-dir for live updates")
		return
	}
	if s.draining.Load() {
		s.met.mutations.get(outcome("shed")).inc()
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// A non-promoted replica takes no writes: point the client at the
	// leader instead of forking history.
	if s.redirectMutation(w, r, outcome) {
		return
	}

	var req MutationRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxMutationBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.mutations.get(outcome("bad_request")).inc()
		jsonError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if err := validateMutation(&req); err != nil {
		s.met.mutations.get(outcome("bad_request")).inc()
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	sync := req.Sync == nil || *req.Sync

	ts := make([]wcoring.StringTriple, len(req.Triples))
	for i, t := range req.Triples {
		ts[i] = wcoring.StringTriple{S: t.S, P: t.P, O: t.O}
	}
	start := time.Now()
	kind := persist.OpInsert
	if op == "delete" {
		kind = persist.OpDelete
	}
	applied, seq, err := db.Mutate(kind, ts, sync)
	s.met.mutationDur.observe(time.Since(start))
	if err != nil {
		if errors.Is(err, persist.ErrTooLarge) {
			s.met.mutations.get(outcome("bad_request")).inc()
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.met.mutations.get(outcome("error")).inc()
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.met.mutations.get(outcome("ok")).inc()
	s.met.mutationTriples.add(int64(applied))
	code := http.StatusOK // synced: durable
	if !sync {
		code = http.StatusAccepted // queued: applied, fsync pending
	}
	w.Header().Set("X-Ring-Seq", strconv.FormatUint(seq, 10))
	writeJSON(w, code, &MutationResponse{
		Applied:    applied,
		Count:      len(req.Triples),
		Synced:     sync,
		Generation: db.Generation(),
		Seq:        seq,
		ElapsedMS:  msSince(start),
	})
}

func validateMutation(req *MutationRequest) error {
	if len(req.Triples) == 0 {
		return fmt.Errorf("empty triples")
	}
	if len(req.Triples) > maxMutationTriples {
		return fmt.Errorf("batch has %d triples, max %d", len(req.Triples), maxMutationTriples)
	}
	for i, t := range req.Triples {
		if t.S == "" || t.P == "" || t.O == "" {
			return fmt.Errorf("triple %d has an empty component", i)
		}
		if strings.HasPrefix(t.S, "?") || strings.HasPrefix(t.P, "?") || strings.HasPrefix(t.O, "?") {
			return fmt.Errorf("triple %d has a variable component; mutations take constants only", i)
		}
		if hasControlChar(t.S) || hasControlChar(t.P) || hasControlChar(t.O) {
			return fmt.Errorf("triple %d has a control character in a component", i)
		}
	}
	return nil
}

// hasControlChar reports whether a term contains a control character.
// The persistence formats are length-prefixed and store such terms
// safely; rejecting them at the API edge is hygiene — they are never
// meaningful graph constants and they mangle logs and TSV exports.
func hasControlChar(s string) bool {
	return strings.ContainsFunc(s, func(r rune) bool { return r < 0x20 || r == 0x7f })
}

// --- persistence metrics ---

// writePersistProm renders the durability series from a persist.Stats
// snapshot; called at scrape time so the gauges are always current.
func writePersistProm(w io.Writer, st persist.Stats) {
	writeCounter(w, "ringserve_wal_appended_total", "Batches appended to the write-ahead log.", int64(st.WAL.AppendedBatches))
	writeCounter(w, "ringserve_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", int64(st.WAL.AppendedBytes))
	writeCounter(w, "ringserve_wal_fsync_total", "Group commits (fsyncs) of the write-ahead log.", int64(st.WAL.Fsyncs))
	writeGaugeValue(w, "ringserve_wal_segments", "WAL segment files on disk.", int64(st.WALSegments))
	writeGaugeValue(w, "ringserve_wal_bytes", "Total bytes of WAL segments on disk.", st.WALSizeBytes)
	writeHistSnapshot(w, "ringserve_wal_fsync_seconds", "WAL fsync latency (one observation per group commit).", st.WAL.FsyncSeconds)
	writeGaugeValue(w, "ringserve_memtable_triples", "Triples buffered in the dynamic store's memtable.", int64(st.MemtableTriples))
	writeGaugeValue(w, "ringserve_static_rings", "Static rings in the dynamic store.", int64(st.StaticRings))
	writeCounter(w, "ringserve_compactions_total", "Background memtable flushes and ring merges.", int64(st.Compactions))
	writeCounter(w, "ringserve_checkpoints_total", "Snapshot checkpoints (manifest installs).", int64(st.Checkpoints))
	writeCounter(w, "ringserve_recovery_replayed_total", "WAL batches replayed by the last recovery.", int64(st.RecoveryBatches))
	writeGaugeValue(w, "ringserve_index_generation", "Store epoch; advances on every applied batch and compaction.", int64(st.Generation))
	writeGaugeValue(w, "ringserve_manifest_version", "Installed manifest version.", int64(st.ManifestVersion))
}

func writeGaugeValue(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// writeHistSnapshot renders a persist histogram snapshot in the same
// cumulative form as the server's own histograms.
func writeHistSnapshot(w io.Writer, name, help string, h persist.HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.SumSeconds)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// persistStatsJSON is the "persist" section of GET /stats in live mode.
type persistStatsJSON struct {
	Triples         int    `json:"triples"`
	MemtableTriples int    `json:"memtable_triples"`
	StaticRings     int    `json:"static_rings"`
	DictSOTerms     int    `json:"dict_so_terms"`
	DictPTerms      int    `json:"dict_p_terms"`
	Generation      uint64 `json:"generation"`
	Compactions     uint64 `json:"compactions"`
	Checkpoints     uint64 `json:"checkpoints"`
	ManifestVersion uint64 `json:"manifest_version"`
	WALSegments     int    `json:"wal_segments"`
	WALBytes        int64  `json:"wal_bytes"`
	WALBatches      uint64 `json:"wal_appended_batches"`
	Fsyncs          uint64 `json:"wal_fsyncs"`
	RecoveryBatches uint64 `json:"recovery_replayed_batches"`
	RecoveryOps     uint64 `json:"recovery_replayed_ops"`
	RecoveryTorn    bool   `json:"recovery_torn_tail"`
	CheckpointError string `json:"checkpoint_error,omitempty"`
}

func persistStats(db *persist.DB) *persistStatsJSON {
	st := db.Stats()
	out := &persistStatsJSON{
		Triples:         st.Triples,
		MemtableTriples: st.MemtableTriples,
		StaticRings:     st.StaticRings,
		DictSOTerms:     st.DictSOTerms,
		DictPTerms:      st.DictPTerms,
		Generation:      st.Generation,
		Compactions:     st.Compactions,
		Checkpoints:     st.Checkpoints,
		ManifestVersion: st.ManifestVersion,
		WALSegments:     st.WALSegments,
		WALBytes:        st.WALSizeBytes,
		WALBatches:      st.WAL.AppendedBatches,
		Fsyncs:          st.WAL.Fsyncs,
		RecoveryBatches: st.RecoveryBatches,
		RecoveryOps:     st.RecoveryOps,
		RecoveryTorn:    st.RecoveryTorn,
	}
	if err := db.CheckpointError(); err != nil {
		out.CheckpointError = err.Error()
	}
	return out
}
