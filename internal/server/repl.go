package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/repl"
)

// Replication wiring for the serving tier. A follower serves the same
// query surface as a live leader — the store underneath is a normal
// persist.DB fed by the tail loop instead of by POST /insert — so this
// file only adds the replica-specific edges: mutation redirects (421
// with the leader's address), sequence-consistent reads
// (X-Ring-Min-Seq), lag-aware readiness, the promote endpoint, and
// replication gauges in /stats and /metrics.

// ReplFollower is what the serving tier needs from a replication
// follower; satisfied by *repl.Follower (an interface so server tests
// can fake replication states without a real leader).
type ReplFollower interface {
	Info() repl.Info
	Writable() bool
	LeaderAddr() string
	Promote(ctx context.Context) error
}

// ReplLeader is what the serving tier reports about the leader side of
// replication; satisfied by *repl.Leader.
type ReplLeader interface {
	Streams() int64
}

// replRefs bundles the optional replication roles; one atomic slot so
// handlers read a consistent pair.
type replRefs struct {
	follower ReplFollower
	leader   ReplLeader
}

// SetFollower installs the follower whose state gates readiness and
// redirects mutations. Call before serving traffic.
func (s *Server) SetFollower(f ReplFollower) {
	refs := replRefs{follower: f}
	if old := s.repl.Load(); old != nil {
		refs.leader = old.leader
	}
	s.repl.Store(&refs)
}

// SetReplLeader installs the leader-side replication endpoint for
// reporting (stream gauge in /metrics).
func (s *Server) SetReplLeader(l ReplLeader) {
	refs := replRefs{leader: l}
	if old := s.repl.Load(); old != nil {
		refs.follower = old.follower
	}
	s.repl.Store(&refs)
}

func (s *Server) replFollower() ReplFollower {
	if refs := s.repl.Load(); refs != nil {
		return refs.follower
	}
	return nil
}

// replicaNotReady reports why a non-writable follower should fail its
// readiness probe ("" = ready): parked (resync required — this node will
// never catch up unattended) or lagging beyond the configured bound
// while records are known to be missing. A follower that is merely
// disconnected but has applied everything it ever heard of stays ready:
// it serves a complete-as-of-contact view, which is what read replicas
// are for.
func (s *Server) replicaNotReady() string {
	f := s.replFollower()
	if f == nil || f.Writable() {
		return ""
	}
	info := f.Info()
	if info.Parked {
		return "replica parked: " + info.LastErr
	}
	if info.LagBatches > 0 && info.LagSeconds > s.cfg.MaxReplicaLag.Seconds() {
		return fmt.Sprintf("replica lagging: %d batches, %.1fs", info.LagBatches, info.LagSeconds)
	}
	return ""
}

// redirectMutation answers a mutation attempted on a non-writable
// replica: 421 Misdirected Request with the leader's advertised address
// in X-Ring-Leader (and a full Location when known). Returns false when
// the server is not a read-only replica and the mutation should proceed.
func (s *Server) redirectMutation(w http.ResponseWriter, r *http.Request, outcome func(string) string) bool {
	f := s.replFollower()
	if f == nil || f.Writable() {
		return false
	}
	s.met.mutations.get(outcome("redirected")).inc()
	leader := f.LeaderAddr()
	w.Header().Set("X-Ring-Leader", leader)
	if leader != "" {
		w.Header().Set("Location", "http://"+leader+r.URL.Path)
	}
	jsonError(w, http.StatusMisdirectedRequest, "read-only replica: send mutations to leader "+leader)
	return true
}

// waitMinSeq honours X-Ring-Min-Seq: block (bounded by QueueWait) until
// the local store has applied at least the requested batch sequence, so
// a client holding a mutation's committed seq can read-its-writes on
// any replica. Returns false when the request was already answered.
func (s *Server) waitMinSeq(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get("X-Ring-Min-Seq")
	if h == "" {
		return true
	}
	minSeq, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		s.met.queries.get(`outcome="bad_request"`).inc()
		jsonError(w, http.StatusBadRequest, "bad X-Ring-Min-Seq: "+err.Error())
		return false
	}
	db := s.live.Load()
	if db == nil {
		s.met.queries.get(`outcome="bad_request"`).inc()
		jsonError(w, http.StatusBadRequest, "X-Ring-Min-Seq requires a live or replica server")
		return false
	}
	waitCtx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueWait)
	err = db.WaitApplied(waitCtx, minSeq)
	cancel()
	if err == nil {
		return true
	}
	if r.Context().Err() != nil {
		s.met.queries.get(`outcome="cancelled"`).inc()
		w.WriteHeader(statusClientClosedRequest)
		return false
	}
	s.met.queries.get(`outcome="shed"`).inc()
	s.met.shed.get(`reason="min_seq"`).inc()
	w.Header().Set("Retry-After", "1")
	jsonError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("replica behind: applied %d < requested %d", db.AppliedSeq(), minSeq))
	return false
}

// handlePromote flips a follower into a writable leader (POST
// /repl/promote): stop tailing, drain applies to durability, seal the
// WAL, refuse if any known leader batch is missing.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	f := s.replFollower()
	if f == nil {
		jsonError(w, http.StatusNotFound, "not a replica")
		return
	}
	if err := f.Promote(r.Context()); err != nil {
		if errors.Is(err, repl.ErrNotCaughtUp) {
			jsonError(w, http.StatusConflict, err.Error())
			return
		}
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	info := f.Info()
	s.log.Info("promoted", "applied_seq", info.AppliedSeq)
	writeJSON(w, http.StatusOK, map[string]any{
		"role":        info.Role,
		"applied_seq": info.AppliedSeq,
		"durable_seq": info.DurableSeq,
	})
}

// writeReplProm renders the replication series for /metrics.
func writeReplProm(w io.Writer, refs *replRefs) {
	if refs == nil {
		return
	}
	if refs.leader != nil {
		writeGaugeValue(w, "ringserve_repl_streams", "Open WAL replication streams (followers attached).", refs.leader.Streams())
	}
	if refs.follower == nil {
		return
	}
	info := refs.follower.Info()
	boolGauge := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	writeGaugeValue(w, "ringserve_repl_applied_seq", "Highest batch sequence applied to the local store.", int64(info.AppliedSeq))
	writeGaugeValue(w, "ringserve_repl_durable_seq", "Highest locally fsynced batch sequence.", int64(info.DurableSeq))
	writeGaugeValue(w, "ringserve_repl_leader_seq", "Highest known leader durable batch sequence.", int64(info.LeaderSeq))
	writeGaugeValue(w, "ringserve_repl_lag_batches", "Known leader batches not yet applied locally.", int64(info.LagBatches))
	writeFloatGauge(w, "ringserve_repl_lag_seconds", "Seconds since this replica was last caught up (0 when caught up).", info.LagSeconds)
	writeGaugeValue(w, "ringserve_repl_connected", "1 when the WAL stream to the leader is attached.", boolGauge(info.Connected))
	writeGaugeValue(w, "ringserve_repl_writable", "1 once promoted to a writable leader.", boolGauge(info.Writable))
}
