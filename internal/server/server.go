// Package server is the resident serving layer over the ring: it loads an
// index once and multiplexes concurrent basic-graph-pattern queries over
// it through HTTP, with the controls a long-running process needs —
// admission control (a weighted semaphore with a bounded wait queue, so
// overload degrades into fast 429/503 shedding instead of goroutine
// growth), per-request deadlines and client-disconnect cancellation
// plumbed into the LTJ engine, an LRU result cache keyed on the canonical
// query form, Prometheus-text metrics, structured access logs, and
// readiness/draining state for orchestrated deployments.
//
// The request path is admission → cache → engine:
//
//	parse → compile → cache lookup ── hit ──────────────► respond
//	                      │ miss
//	                      ▼
//	            admission.acquire (bounded queue; shed 429/503)
//	                      ▼
//	            query.Select.Run (ltj over the shared ring,
//	                      │        ctx-cancellable, deadline-bounded)
//	                      ▼
//	            decode → cache fill → respond
//
// The ring's query structures are immutable after load, so queries share
// the index without locks; all mutable state (cache, counters, admission)
// is internally synchronized.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	wcoring "repro"
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/persist"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/ring"
)

// Config sizes the server. Zero values select the documented defaults; a
// negative CacheEntries disables the result cache.
type Config struct {
	// Store is the loaded index. May be nil at construction for async
	// loading — the server answers 503 until SetStore succeeds.
	Store *wcoring.Store
	// MaxConcurrent is the admission semaphore's weight capacity — the
	// engine goroutines allowed to evaluate at once (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue; requests beyond it are
	// shed with 429 (default 4×MaxConcurrent).
	MaxQueue int
	// QueueWait bounds how long a request may wait for admission before a
	// 503 (default 2s).
	QueueWait time.Duration
	// DefaultTimeout is the per-query evaluation deadline when the request
	// does not set one (default 10s); MaxTimeout caps what a request may
	// ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultLimit is the solution cap when the request does not set one
	// (default 1000); MaxLimit caps what a request may ask for
	// (default 100000).
	DefaultLimit int
	MaxLimit     int
	// Parallelism is the LTJ worker count per query (0/1 = sequential).
	// Each admitted query weighs max(1, Parallelism) semaphore units, so
	// MaxConcurrent bounds engine goroutines regardless of this setting.
	Parallelism int
	// CacheEntries and CacheBytes bound the result cache (defaults 256
	// entries, 64 MiB). CacheEntries < 0 disables caching.
	CacheEntries int
	CacheBytes   int64
	// AccessLog receives one JSON line per request (default os.Stderr).
	AccessLog io.Writer
	// DisableSharedScan turns off shared-scan batch execution: grouping
	// concurrently-arriving cache-miss queries with the same canonical
	// pattern into one engine pass (see sharedscan.go).
	DisableSharedScan bool
	// MaxReplicaLag bounds how far behind a follower may fall before
	// /readyz reports 503 and load balancers route reads elsewhere
	// (default 30s). Only meaningful when SetFollower installs a replica.
	MaxReplicaLag time.Duration
}

func (cfg *Config) fillDefaults() {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 2 * time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.DefaultLimit <= 0 {
		cfg.DefaultLimit = 1000
	}
	if cfg.MaxLimit <= 0 {
		cfg.MaxLimit = 100000
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = os.Stderr
	}
	if cfg.MaxReplicaLag <= 0 {
		cfg.MaxReplicaLag = 30 * time.Second
	}
}

// Server is the HTTP serving layer. Construct with New, expose Handler()
// through an http.Server, and call BeginDrain before shutting that server
// down gracefully.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	adm    *admission
	cache  *resultCache // nil when disabled
	met    *metrics
	log    *slog.Logger
	weight int         // admission weight of one query
	scans  sharedScans // in-flight shared-scan groups

	store      atomic.Pointer[wcoring.Store]
	live       atomic.Pointer[persist.DB] // set instead of store in live mode
	liveWanted atomic.Bool                // live mode intended; recovery may still be running
	indexStats atomic.Pointer[ring.Stats]
	loadInfo   atomic.Pointer[LoadInfo]
	repl       atomic.Pointer[replRefs] // optional replication roles
	ready      atomic.Bool
	draining   atomic.Bool
}

// LoadInfo records how the index got into memory. The loader
// (cmd/ringserve) sets it once after the initial load; /metrics and
// /stats report the mode, mapped footprint and startup load time from
// it. In live mode the mapped footprint evolves with checkpoints, so
// scrape-time values come from persist.Stats instead and LoadInfo
// contributes only the mode and initial load time.
type LoadInfo struct {
	Mode        string  // "decode" or "mmap"
	BytesMapped int64   // bytes aliased from file mappings (0 in decode mode)
	Regions     int     // file mappings backing the index
	Seconds     float64 // wall-clock time of the initial load
}

// SetLoadInfo publishes how the index was loaded; safe to call before or
// after SetStore/SetLive and at most once per process in practice.
func (s *Server) SetLoadInfo(info LoadInfo) { s.loadInfo.Store(&info) }

// New builds a server. If cfg.Store is non-nil it is installed (and
// self-checked) immediately; otherwise the server starts not-ready and
// SetStore completes initialisation.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		adm: newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		met: newMetrics(),
		log: slog.New(slog.NewJSONHandler(cfg.AccessLog, nil)),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	s.weight = cfg.Parallelism
	if s.weight < 1 {
		s.weight = 1
	}
	if s.weight > cfg.MaxConcurrent {
		s.weight = cfg.MaxConcurrent
	}

	s.mux.HandleFunc("/query", s.accessLog("query", s.handleQuery))
	s.mux.HandleFunc("/healthz", s.accessLog("healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.accessLog("readyz", s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.accessLog("metrics", s.handleMetrics))
	s.mux.HandleFunc("/stats", s.accessLog("stats", s.handleStats))
	s.mux.HandleFunc("/cache/invalidate", s.accessLog("cache_invalidate", s.handleInvalidate))
	s.mux.HandleFunc("/insert", s.accessLog("insert", s.handleInsert))
	s.mux.HandleFunc("/delete", s.accessLog("delete", s.handleDelete))
	s.mux.HandleFunc("/repl/promote", s.accessLog("promote", s.handlePromote))

	if cfg.Store != nil {
		if err := s.SetStore(cfg.Store); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetStore installs (or replaces) the index: it self-checks the store
// with a statistics scan and an end-to-end probe query, invalidates the
// result cache if a previous index was being served, publishes the index
// gauges and marks the server ready. Safe to call from a loader goroutine
// while the server is already accepting (and 503-ing) requests.
func (s *Server) SetStore(st *wcoring.Store) error {
	stats := st.Ring().Stats()
	if stats.Triples != st.Len() {
		return fmt.Errorf("server: self-check failed: ring reports %d triples, store %d", stats.Triples, st.Len())
	}
	probe := []wcoring.PatternString{{S: "?s", P: "?p", O: "?o"}}
	if _, err := st.Query(probe, wcoring.QueryOptions{Limit: 1, Timeout: 30 * time.Second}); err != nil {
		return fmt.Errorf("server: self-check query failed: %w", err)
	}
	if s.store.Swap(st) != nil && s.cache != nil {
		s.cache.invalidate() // replacing a live index: cached results are stale
	}
	s.indexStats.Store(&stats)
	s.met.indexTriples.set(int64(stats.Triples))
	s.met.indexSubjects.set(int64(stats.DistinctSubjects))
	s.met.indexPredicates.set(int64(stats.DistinctPredicates))
	s.met.indexObjects.set(int64(stats.DistinctObjects))
	s.ready.Store(true)
	s.log.Info("index ready",
		"triples", stats.Triples,
		"bytes_per_triple", float64(st.SizeBytes())/float64(max(1, st.Len())))
	return nil
}

// BeginDrain flips the server into draining mode: /readyz reports 503 (so
// load balancers stop routing here) and new queries are refused, while
// queries already admitted run to completion. The caller then shuts the
// http.Server down gracefully with its own hard deadline.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("drain started")
	}
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "loading\n")
	default:
		if reason := s.replicaNotReady(); reason != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, reason+"\n")
			return
		}
		io.WriteString(w, "ready\n")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	used, queued := s.adm.snapshot()
	s.met.inFlight.set(int64(used))
	s.met.queueDepth.set(int64(queued))
	ready := int64(0)
	if s.ready.Load() && !s.draining.Load() {
		ready = 1
	}
	s.met.ready.set(ready)
	var cs cacheStats
	if s.cache != nil {
		cs = s.cache.stats()
	}
	if db := s.live.Load(); db != nil {
		s.met.indexTriples.set(int64(db.Len()))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeProm(w, cs)
	var pst *persist.Stats
	if db := s.live.Load(); db != nil {
		st := db.Stats()
		pst = &st
		writePersistProm(w, st)
	}
	s.writeLoadProm(w, pst)
	writeReplProm(w, s.repl.Load())
}

// writeLoadProm renders the index-load series: load mode and startup
// latency from the one-time LoadInfo record, and the mapped footprint —
// which in live mode changes with every checkpoint — from the current
// persist stats when available.
func (s *Server) writeLoadProm(w io.Writer, pst *persist.Stats) {
	li := s.loadInfo.Load()
	if li == nil && pst == nil {
		return
	}
	mode := "decode"
	var bytesMapped int64
	var loadSecs float64
	if li != nil {
		mode = li.Mode
		bytesMapped = li.BytesMapped
		loadSecs = li.Seconds
	}
	if pst != nil {
		if pst.Mmap {
			mode = "mmap"
		}
		bytesMapped = pst.MappedBytes
	}
	writeFloatGauge(w, "ringserve_index_load_seconds", "Wall-clock seconds of the initial index load.", loadSecs)
	writeGaugeValue(w, "ringserve_index_bytes_mapped", "Bytes of index data backed by file mappings (0 in decode mode).", bytesMapped)
	fmt.Fprintf(w, "# HELP ringserve_index_load_mode Index load mode; the active mode has value 1.\n# TYPE ringserve_index_load_mode gauge\n")
	for _, m := range []string{"decode", "mmap"} {
		v := 0
		if m == mode {
			v = 1
		}
		fmt.Fprintf(w, "ringserve_index_load_mode{mode=%q} %d\n", m, v)
	}
	if pst != nil {
		writeFloatGauge(w, "ringserve_snapshot_install_seconds", "Install phase of the last checkpoint: map (or keep) new rings, swap them in, install the manifest.", pst.LastInstallSeconds)
	}
}

// statsResponse is the body of GET /stats: the index-wide statistics the
// ring answers from its own structures, plus serving-side state.
type statsResponse struct {
	Triples            int        `json:"triples"`
	DistinctSubjects   int        `json:"distinct_subjects"`
	DistinctPredicates int        `json:"distinct_predicates"`
	DistinctObjects    int        `json:"distinct_objects"`
	IndexBytes         int        `json:"index_bytes"`
	Ready              bool       `json:"ready"`
	Draining           bool       `json:"draining"`
	Cache              cacheStats `json:"cache"`
	// Persist is present in live mode only: durability and ingestion
	// state of the backing data directory.
	Persist *persistStatsJSON `json:"persist,omitempty"`
	// Mapped is present once load info is recorded: how the index got
	// into memory and the current file-mapped footprint.
	Mapped *mappedStatsJSON `json:"mapped,omitempty"`
	// Repl is present on replication-enabled nodes: follower position and
	// lag, or stream counts on a leader.
	Repl *replStatsJSON `json:"repl,omitempty"`
}

// replStatsJSON is the "repl" section of GET /stats.
type replStatsJSON struct {
	// Follower is present when this node tails (or was promoted from
	// tailing) a leader.
	Follower *repl.Info `json:"follower,omitempty"`
	// Streams is the leader-side count of attached followers.
	Streams *int64 `json:"streams,omitempty"`
}

func (s *Server) replStats() *replStatsJSON {
	refs := s.repl.Load()
	if refs == nil {
		return nil
	}
	out := &replStatsJSON{}
	if refs.leader != nil {
		n := refs.leader.Streams()
		out.Streams = &n
	}
	if refs.follower != nil {
		info := refs.follower.Info()
		out.Follower = &info
	}
	if out.Streams == nil && out.Follower == nil {
		return nil
	}
	return out
}

// mappedStatsJSON is the "mapped" section of GET /stats.
type mappedStatsJSON struct {
	Mode               string  `json:"mode"` // "decode" or "mmap"
	BytesMapped        int64   `json:"bytes_mapped"`
	Regions            int     `json:"regions"`
	LoadSeconds        float64 `json:"load_seconds"`
	LastInstallSeconds float64 `json:"last_install_seconds,omitempty"`
}

// mappedStats mirrors writeLoadProm's source precedence: static mode
// reports the one-time load record, live mode the current footprint.
func (s *Server) mappedStats(pst *persist.Stats) *mappedStatsJSON {
	li := s.loadInfo.Load()
	if li == nil && pst == nil {
		return nil
	}
	out := &mappedStatsJSON{Mode: "decode"}
	if li != nil {
		out.Mode = li.Mode
		out.BytesMapped = li.BytesMapped
		out.Regions = li.Regions
		out.LoadSeconds = li.Seconds
	}
	if pst != nil {
		if pst.Mmap {
			out.Mode = "mmap"
		}
		out.BytesMapped = pst.MappedBytes
		out.Regions = pst.MappedRings
		out.LastInstallSeconds = pst.LastInstallSeconds
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if db := s.live.Load(); db != nil {
		resp := statsResponse{
			Triples:  db.Len(),
			Ready:    s.ready.Load() && !s.draining.Load(),
			Draining: s.draining.Load(),
			Persist:  persistStats(db),
		}
		resp.IndexBytes = db.Snapshot().SizeBytes()
		pst := db.Stats()
		resp.Mapped = s.mappedStats(&pst)
		resp.Repl = s.replStats()
		if s.cache != nil {
			resp.Cache = s.cache.stats()
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	st := s.store.Load()
	stats := s.indexStats.Load()
	if st == nil || stats == nil {
		jsonError(w, http.StatusServiceUnavailable, "index loading")
		return
	}
	resp := statsResponse{
		Triples:            stats.Triples,
		DistinctSubjects:   stats.DistinctSubjects,
		DistinctPredicates: stats.DistinctPredicates,
		DistinctObjects:    stats.DistinctObjects,
		IndexBytes:         st.SizeBytes(),
		Ready:              s.ready.Load() && !s.draining.Load(),
		Draining:           s.draining.Load(),
		Mapped:             s.mappedStats(nil),
	}
	if s.cache != nil {
		resp.Cache = s.cache.stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cache == nil {
		jsonError(w, http.StatusNotFound, "cache disabled")
		return
	}
	s.cache.invalidate()
	writeJSON(w, http.StatusOK, map[string]string{"status": "invalidated"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	idx := s.index()
	switch {
	case s.draining.Load():
		s.met.queries.get(`outcome="shed"`).inc()
		s.met.shed.get(`reason="draining"`).inc()
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	case idx == nil || !s.ready.Load():
		s.met.queries.get(`outcome="shed"`).inc()
		s.met.shed.get(`reason="not_ready"`).inc()
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "index loading")
		return
	}

	// Sequence-consistent reads: X-Ring-Min-Seq holds the query until the
	// local store has applied the client's last write (bounded wait).
	if !s.waitMinSeq(w, r) {
		return
	}

	req, err := parseRequest(r)
	if err != nil {
		s.met.queries.get(`outcome="bad_request"`).inc()
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout := effectiveTimeout(req.TimeoutMS, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	limit := effectiveLimit(req.Limit, s.cfg.DefaultLimit, s.cfg.MaxLimit)
	start := time.Now()

	encoded, predVars, feasible, err := idx.Compile(req.patternStrings())
	if err != nil {
		s.met.queries.get(`outcome="bad_request"`).inc()
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := checkVars(encoded, req.Project, req.OrderBy, feasible); err != nil {
		s.met.queries.get(`outcome="bad_request"`).inc()
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !feasible {
		// A constant is absent from the dictionary: provably no solutions.
		s.met.queries.get(`outcome="ok"`).inc()
		s.respond(w, &QueryResponse{Solutions: []map[string]string{}, ElapsedMS: msSince(start)})
		return
	}

	sel := query.Select{
		Pattern:     encoded,
		Project:     req.Project,
		Distinct:    req.Distinct,
		OrderBy:     req.OrderBy,
		Offset:      req.Offset,
		Limit:       limit,
		Timeout:     timeout,
		Parallelism: s.cfg.Parallelism,
	}
	key, cacheable := sel.CacheKey()
	// In live mode the key carries the store generation: a batch applied
	// between two identical queries changes the prefix, so stale entries
	// can never hit (they age out of the LRU instead).
	key = idx.CachePrefix() + key
	cacheable = cacheable && s.cache != nil && !req.NoCache
	if cacheable {
		if sols, ok := s.cache.get(key); ok {
			s.met.queries.get(`outcome="cache_hit"`).inc()
			s.met.queryDur.observe(time.Since(start))
			s.respond(w, &QueryResponse{Solutions: sols, Cached: true, ElapsedMS: msSince(start)})
			return
		}
	}

	// Shared-scan lane: if an identical-pattern evaluation is already in
	// flight (or other copies of this query are about to arrive), attach
	// to one group and let a single engine pass serve them all.
	if s.trySharedScan(w, r, idx, req, sel, key, cacheable, predVars, start) {
		return
	}

	// Admission: wait in the bounded queue for at most QueueWait (or
	// until the client goes away), then hold the weight for the whole
	// evaluation.
	waitCtx, cancelWait := context.WithTimeout(r.Context(), s.cfg.QueueWait)
	err = s.adm.acquire(waitCtx, s.weight)
	cancelWait()
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.met.queries.get(`outcome="shed"`).inc()
			s.met.shed.get(`reason="queue_full"`).inc()
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "server saturated: admission queue full")
		case r.Context().Err() != nil:
			s.met.queries.get(`outcome="cancelled"`).inc()
			w.WriteHeader(statusClientClosedRequest)
		default: // queue wait timed out
			s.met.queries.get(`outcome="shed"`).inc()
			s.met.shed.get(`reason="queue_timeout"`).inc()
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusServiceUnavailable, "server saturated: admission wait timed out")
		}
		return
	}
	defer s.adm.release(s.weight)

	var st ltj.EvalStats
	sel.Stats = &st
	sel.Context = r.Context()
	// One iterator source per evaluation: in live mode this pins an epoch
	// snapshot, so a concurrent flush or merge cannot tear the view.
	iters := idx.PatternIters()
	sols, err := sel.Run(ltj.IndexFunc(iters))
	elapsed := time.Since(start)
	s.met.ltjLeaps.add(int64(st.Leaps))
	s.met.ltjBinds.add(int64(st.Binds))
	s.met.ltjSeeks.add(int64(st.Seeks))
	s.met.ltjEnums.add(int64(st.Enumerations))
	s.met.ltjBatchDescents.add(int64(st.BatchDescents))
	s.met.ltjBatchEmits.add(int64(st.BatchEmits))
	s.met.queryDur.observe(elapsed)

	timedOut := errors.Is(err, ltj.ErrTimeout)
	if err != nil && !timedOut {
		if errors.Is(err, ltj.ErrCancelled) {
			// The client went away mid-evaluation; nobody reads the body.
			s.met.queries.get(`outcome="cancelled"`).inc()
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		s.met.queries.get(`outcome="error"`).inc()
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}

	decoded := make([]map[string]string, len(sols))
	for i, b := range sols {
		decoded[i] = idx.DecodeBinding(b, predVars)
	}
	if cacheable && !timedOut {
		s.cache.put(key, decoded)
	}
	outcome := `outcome="ok"`
	if timedOut {
		outcome = `outcome="timeout"`
	}
	s.met.queries.get(outcome).inc()
	s.respond(w, &QueryResponse{
		Solutions: decoded,
		TimedOut:  timedOut,
		ElapsedMS: msSince(start),
		Stats:     statsJSON(st),
	})
}

// statusClientClosedRequest is nginx's conventional code for "client
// disconnected before the response": nothing standard fits, and access
// logs need to tell these from real errors.
const statusClientClosedRequest = 499

// checkVars validates projection and order-by variables against the
// pattern before evaluation, so typos come back as 400s, not 500s. When
// the query is infeasible (a constant missing from the dictionary) the
// compiled pattern is empty and validation is skipped — the result is
// empty either way.
func checkVars(p graph.Pattern, project, orderBy []string, feasible bool) error {
	if !feasible {
		return nil
	}
	vars := map[string]bool{}
	for _, v := range p.Vars() {
		vars[v] = true
	}
	for _, v := range project {
		if !vars[v] {
			return fmt.Errorf("projected variable %q not in pattern", v)
		}
	}
	for _, v := range orderBy {
		if !vars[v] {
			return fmt.Errorf("order-by variable %q not in pattern", v)
		}
	}
	return nil
}

func (s *Server) respond(w http.ResponseWriter, resp *QueryResponse) {
	if resp.Solutions == nil {
		resp.Solutions = []map[string]string{}
	}
	resp.Count = len(resp.Solutions)
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}
