package server

import (
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestSharedScanConcurrentNoPlug: grouping must also happen in the wild —
// concurrent identical queries with free admission slots, nothing holding
// the leader in the queue. The query is deliberately expensive (a large
// limit over the 3-hop pattern) so its evaluation window dwarfs the
// goroutine-scheduling stagger between arrivals even on a single CPU;
// cheap queries legitimately serialize and go solo (DESIGN.md §13).
func TestSharedScanConcurrentNoPlug(t *testing.T) {
	srv, err := New(Config{Store: heavyStore(t), AccessLog: io.Discard, MaxConcurrent: 8, MaxQueue: 32, QueueWait: 5 * time.Second, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{Pattern: plugPattern(), Limit: 30000, TimeoutMS: 20000}
	var wg sync.WaitGroup
	var mu sync.Mutex
	shared := 0
	var first []map[string]string
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code := postQuery(t, ts, req)
			if code != 200 {
				t.Errorf("status %d", code)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if resp.Shared {
				shared++
			}
			if first == nil {
				first = resp.Solutions
			} else if len(resp.Solutions) != len(first) {
				t.Errorf("solution count mismatch: %d vs %d", len(resp.Solutions), len(first))
			}
		}()
	}
	wg.Wait()
	if shared == 0 {
		t.Fatalf("no request was served as a shared-scan follower (groups=%d followers=%d)",
			srv.met.sharedGroups.value(), srv.met.sharedFollowers.value())
	}
	t.Logf("followers: %d of 8", shared)
}
