package server

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestLabeledCounter(t *testing.T) {
	var lc labeledCounter
	lc.get(`code="200"`).inc()
	lc.get(`code="200"`).inc()
	lc.get(`code="429"`).inc()
	snap := lc.snapshot()
	if snap[`code="200"`] != 2 || snap[`code="429"`] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram(latencyBuckets)
	obs := []time.Duration{
		700 * time.Microsecond, // (0.0005, 0.001]
		3 * time.Millisecond,   // (0.0025, 0.005]
		7 * time.Second,        // (5, 10]
		20 * time.Second,       // +Inf overflow
	}
	var sum float64
	for _, d := range obs {
		h.observe(d)
		sum += d.Seconds()
	}
	if got := h.count.Load(); got != int64(len(obs)) {
		t.Fatalf("count = %d, want %d", got, len(obs))
	}
	if got := float64(h.sumNanos.Load()) / 1e9; math.Abs(got-sum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, sum)
	}
	var sb strings.Builder
	writeHistogram(&sb, "h", "test", h)
	out := sb.String()
	// Cumulative counts at key boundaries.
	for _, want := range []string{
		`h_bucket{le="0.0005"} 0`,
		`h_bucket{le="0.001"} 1`,
		`h_bucket{le="0.005"} 2`,
		`h_bucket{le="5"} 2`,
		`h_bucket{le="10"} 3`,
		`h_bucket{le="+Inf"} 4`,
		`h_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("histogram output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromFormat(t *testing.T) {
	m := newMetrics()
	m.requests.get(`endpoint="query",code="200"`).inc()
	m.queries.get(`outcome="ok"`).inc()
	m.shed.get(`reason="queue_full"`).inc()
	m.queryDur.observe(2 * time.Millisecond)
	m.ltjLeaps.add(42)
	m.indexTriples.set(1000)
	m.ready.set(1)

	var sb strings.Builder
	m.writeProm(&sb, cacheStats{Hits: 3, Misses: 5, Entries: 2, Bytes: 128})
	out := sb.String()

	for _, want := range []string{
		`ringserve_requests_total{endpoint="query",code="200"} 1`,
		`ringserve_queries_total{outcome="ok"} 1`,
		`ringserve_admission_shed_total{reason="queue_full"} 1`,
		`ringserve_query_duration_seconds_count 1`,
		`ringserve_cache_hits_total 3`,
		`ringserve_cache_misses_total 5`,
		`ringserve_cache_entries 2`,
		`ringserve_cache_bytes 128`,
		`ringserve_ltj_leaps_total 42`,
		`ringserve_index_triples 1000`,
		`ringserve_ready 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every series line must be "# ..." metadata or "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Split(line, " ")
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = name[:i]
		}
		if !strings.HasPrefix(name, "ringserve_") {
			t.Fatalf("series %q lacks the ringserve_ prefix", line)
		}
	}
}
