package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	wcoring "repro"
	"repro/internal/ltj"
)

// PatternJSON is one triple pattern of a query request; components
// starting with '?' are variables, everything else is a constant.
type PatternJSON struct {
	S string `json:"s"`
	P string `json:"p"`
	O string `json:"o"`
}

// QueryRequest is the body of POST /query. GET /query?q=... accepts the
// same query in the CLI's compact syntax ("s p o ; s p o", '?x'
// variables) with the scalar clauses as URL parameters.
type QueryRequest struct {
	// Pattern is the basic graph pattern (required, non-empty).
	Pattern []PatternJSON `json:"pattern"`
	// Project lists the variables to return (omitted = all).
	Project []string `json:"project,omitempty"`
	// Distinct deduplicates projected solutions.
	Distinct bool `json:"distinct,omitempty"`
	// OrderBy sorts by the given variables (dictionary order).
	OrderBy []string `json:"order_by,omitempty"`
	// Offset skips results (after ordering).
	Offset int `json:"offset,omitempty"`
	// Limit caps the result count; 0 uses the server default, and the
	// server's maximum always applies.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS bounds evaluation in milliseconds; 0 uses the server
	// default, and the server's maximum always applies.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request (both lookup and
	// fill) — the load generator uses it to measure the engine.
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryResponse is the body of a successful /query response.
type QueryResponse struct {
	Solutions []map[string]string `json:"solutions"`
	Count     int                 `json:"count"`
	ElapsedMS float64             `json:"elapsed_ms"`
	// Cached is set when the solutions came from the result cache.
	Cached bool `json:"cached"`
	// TimedOut is set when evaluation hit the deadline; Solutions then
	// holds the partial results found in time.
	TimedOut bool `json:"timed_out,omitempty"`
	// Shared is set when the solutions came from another request's
	// shared-scan evaluation (this request attached as a follower).
	Shared bool `json:"shared,omitempty"`
	// Stats counts the engine operations of this evaluation (absent on
	// cache hits).
	Stats *StatsJSON `json:"stats,omitempty"`
}

// StatsJSON mirrors ltj.EvalStats for the response body.
type StatsJSON struct {
	Leaps        int `json:"leaps"`
	Binds        int `json:"binds"`
	Seeks        int `json:"seeks"`
	Enumerations int `json:"enumerations"`
	// BatchDescents and BatchEmits count the batched radix-intersection
	// lane's work (DESIGN.md §13); zero when the lane never engaged.
	BatchDescents int `json:"batch_descents,omitempty"`
	BatchEmits    int `json:"batch_emits,omitempty"`
}

func statsJSON(st ltj.EvalStats) *StatsJSON {
	return &StatsJSON{
		Leaps: st.Leaps, Binds: st.Binds, Seeks: st.Seeks, Enumerations: st.Enumerations,
		BatchDescents: st.BatchDescents, BatchEmits: st.BatchEmits,
	}
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /query body; patterns are tiny, so anything
// beyond this is hostile or broken.
const maxRequestBytes = 1 << 20

// parseRequest decodes a query request from either method.
func parseRequest(r *http.Request) (*QueryRequest, error) {
	switch r.Method {
	case http.MethodPost:
		var req QueryRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("bad JSON body: %w", err)
		}
		if err := validateRequest(&req); err != nil {
			return nil, err
		}
		return &req, nil
	case http.MethodGet:
		q := r.URL.Query()
		raw := q.Get("q")
		if raw == "" {
			return nil, fmt.Errorf("missing q parameter")
		}
		req := &QueryRequest{}
		for _, part := range strings.Split(raw, ";") {
			fields := strings.Fields(part)
			if len(fields) == 0 {
				continue
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("pattern %q: want 3 components, got %d", strings.TrimSpace(part), len(fields))
			}
			req.Pattern = append(req.Pattern, PatternJSON{S: fields[0], P: fields[1], O: fields[2]})
		}
		var err error
		if req.Limit, err = intParam(q.Get("limit")); err != nil {
			return nil, fmt.Errorf("bad limit: %w", err)
		}
		if req.Offset, err = intParam(q.Get("offset")); err != nil {
			return nil, fmt.Errorf("bad offset: %w", err)
		}
		if req.TimeoutMS, err = intParam(q.Get("timeout_ms")); err != nil {
			return nil, fmt.Errorf("bad timeout_ms: %w", err)
		}
		req.Distinct = q.Get("distinct") == "true" || q.Get("distinct") == "1"
		req.NoCache = q.Get("no_cache") == "true" || q.Get("no_cache") == "1"
		if p := q.Get("project"); p != "" {
			req.Project = strings.Split(p, ",")
		}
		if o := q.Get("order_by"); o != "" {
			req.OrderBy = strings.Split(o, ",")
		}
		if err := validateRequest(req); err != nil {
			return nil, err
		}
		return req, nil
	default:
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
}

func intParam(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func validateRequest(req *QueryRequest) error {
	if len(req.Pattern) == 0 {
		return fmt.Errorf("empty pattern")
	}
	if len(req.Pattern) > 64 {
		return fmt.Errorf("pattern has %d triples, max 64", len(req.Pattern))
	}
	if req.Offset < 0 {
		return fmt.Errorf("negative offset")
	}
	if req.Limit < 0 {
		return fmt.Errorf("negative limit")
	}
	if req.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms")
	}
	return nil
}

// patternStrings converts the request pattern to the store's string form.
func (req *QueryRequest) patternStrings() []wcoring.PatternString {
	out := make([]wcoring.PatternString, len(req.Pattern))
	for i, p := range req.Pattern {
		out[i] = wcoring.PatternString{S: p.S, P: p.P, O: p.O}
	}
	return out
}

// effectiveTimeout resolves the request timeout against the server's
// default and cap.
func effectiveTimeout(reqMS int, def, max time.Duration) time.Duration {
	d := def
	if reqMS > 0 {
		d = time.Duration(reqMS) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// effectiveLimit resolves the request limit against the server's default
// and cap.
func effectiveLimit(reqLimit, def, max int) int {
	l := def
	if reqLimit > 0 {
		l = reqLimit
	}
	if max > 0 && (l <= 0 || l > max) {
		l = max
	}
	return l
}
