package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dict"
	"repro/internal/persist"
	"repro/internal/repl"
)

// BenchmarkReplFanout measures read fan-out across a replicated
// deployment: the same cache-disabled query mix as BenchmarkServe,
// round-robined over 1 node (the leader alone) vs 3 nodes (leader + two
// followers at lag 0), all in-process. On a single shared CPU the
// aggregate cannot exceed one node's throughput — the row documents that
// followers serve reads at parity, not a hardware speedup; on real
// separate machines fan-out multiplies capacity by node count.
func BenchmarkReplFanout(b *testing.B) {
	for _, nodes := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
			benchReplFanout(b, nodes)
		})
	}
}

// heavyLiveTriples is the heavyStore graph in live-insert form.
func heavyLiveTriples() []dict.StringTriple {
	rng := rand.New(rand.NewSource(7))
	seen := map[dict.StringTriple]bool{}
	triples := make([]dict.StringTriple, 0, 20000)
	for len(triples) < 20000 {
		tr := dict.StringTriple{
			S: fmt.Sprintf("n%03d", rng.Intn(200)),
			P: fmt.Sprintf("p%d", rng.Intn(4)),
			O: fmt.Sprintf("n%03d", rng.Intn(200)),
		}
		if !seen[tr] {
			seen[tr] = true
			triples = append(triples, tr)
		}
	}
	return triples
}

func benchReplFanout(b *testing.B, nodes int) {
	// One big memtable: the whole graph loads as a single WAL batch and
	// replicates as one record, so setup stays cheap across b.N runs.
	openOpts := persist.Options{MemtableThreshold: 40000, NoBackground: true}
	leaderDB, err := persist.Open(b.TempDir(), openOpts)
	if err != nil {
		b.Fatal(err)
	}
	defer leaderDB.Close()
	if _, err := leaderDB.InsertBatch(heavyLiveTriples(), true); err != nil {
		b.Fatal(err)
	}

	newNode := func(db *persist.DB, f *repl.Follower) *httptest.Server {
		cfg := Config{
			AccessLog:     io.Discard,
			MaxConcurrent: 8,
			MaxQueue:      32,
			QueueWait:     10 * time.Second,
			CacheEntries:  -1,
		}
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.SetLive(db); err != nil {
			b.Fatal(err)
		}
		if f != nil {
			srv.SetFollower(f)
		}
		return httptest.NewServer(srv.Handler())
	}

	bases := []*httptest.Server{newNode(leaderDB, nil)}
	defer func() {
		for _, ts := range bases {
			ts.Close()
		}
	}()

	if nodes > 1 {
		leader := repl.NewLeader(leaderDB, repl.LeaderOptions{Advertise: "leader.bench:0"})
		replSrv := httptest.NewServer(leader.Handler())
		defer replSrv.Close()
		replAddr := strings.TrimPrefix(replSrv.URL, "http://")
		for i := 1; i < nodes; i++ {
			f, err := repl.OpenFollower(repl.FollowerOptions{
				Dir:    b.TempDir(),
				Leader: replAddr,
				Open:   openOpts,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			f.Start()
			deadline := time.Now().Add(30 * time.Second)
			for f.Info().AppliedSeq < leaderDB.DurableSeq() {
				if time.Now().After(deadline) {
					b.Fatalf("follower %d never caught up: %+v", i, f.Info())
				}
				time.Sleep(time.Millisecond)
			}
			bases = append(bases, newNode(f.DB(), f))
		}
	}

	mix := benchMix()
	bodies := make([][]byte, len(mix))
	for i, req := range mix {
		if bodies[i], err = json.Marshal(req); err != nil {
			b.Fatal(err)
		}
	}
	const clients = 8
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	do := func(i int) time.Duration {
		start := time.Now()
		base := bases[i%len(bases)].URL
		resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Error(err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(start)
	}
	for i := 0; i < len(mix)*len(bases); i++ {
		do(i) // warm connections on every node
	}

	latencies := make([][]time.Duration, clients)
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				latencies[c] = append(latencies[c], do(i))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := quantile(all, 0.50)
	p99 := quantile(all, 0.99)
	qps := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(qps, "qps")
	b.ReportMetric(float64(p50)/1e6, "p50-ms")
	b.ReportMetric(float64(p99)/1e6, "p99-ms")

	recordServeBench(serveBenchResult{
		Procs:    4,
		Clients:  clients,
		Cache:    false,
		Mix:      fmt.Sprintf("repl-fanout-%dnode", nodes),
		Nodes:    nodes,
		Requests: b.N,
		QPS:      round3(qps),
		P50MS:    round3(float64(p50) / 1e6),
		P99MS:    round3(float64(p99) / 1e6),
	})
}
