package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func sol(pairs ...string) map[string]string {
	m := map[string]string{}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	return m
}

func TestCacheHitMiss(t *testing.T) {
	c := newResultCache(4, 1<<20)
	if _, ok := c.get("q1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("q1", []map[string]string{sol("x", "alice")})
	got, ok := c.get("q1")
	if !ok || len(got) != 1 || got[0]["x"] != "alice" {
		t.Fatalf("get = %v, %v", got, ok)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 1<<20)
	c.put("a", nil)
	c.put("b", nil)
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", nil) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if st := c.stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestCacheByteBound(t *testing.T) {
	// Empty-result entries cost len(key)+64 bytes; three fit only two at a
	// time under a 140-byte bound.
	c := newResultCache(0, 140)
	c.put("a", nil)
	c.put("b", nil)
	c.put("c", nil)
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	if st.Bytes > 140 {
		t.Fatalf("bytes = %d, exceeds bound", st.Bytes)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
}

func TestCacheOversizeEntrySkipped(t *testing.T) {
	c := newResultCache(4, 100)
	c.put("big", []map[string]string{sol("x", strings.Repeat("v", 200))})
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("oversize entry was cached: %+v", st)
	}
}

func TestCacheRefreshInPlace(t *testing.T) {
	c := newResultCache(4, 1<<20)
	c.put("q", []map[string]string{sol("x", "old")})
	c.put("q", []map[string]string{sol("x", "new"), sol("x", "er")})
	got, ok := c.get("q")
	if !ok || len(got) != 2 || got[0]["x"] != "new" {
		t.Fatalf("refresh lost: %v %v", got, ok)
	}
	st := c.stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 after refresh", st.Entries)
	}
	if want := entrySize("q", got); st.Bytes != want {
		t.Fatalf("bytes = %d, want re-accounted %d", st.Bytes, want)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newResultCache(4, 1<<20)
	c.put("a", nil)
	c.put("b", nil)
	c.invalidate()
	st := c.stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 1 {
		t.Fatalf("stats after invalidate = %+v", st)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("entry survived invalidation")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(8, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", (g+i)%16)
				if _, ok := c.get(key); !ok {
					c.put(key, []map[string]string{sol("x", key)})
				}
			}
		}()
	}
	wg.Wait()
	if st := c.stats(); st.Entries > 8 {
		t.Fatalf("entry bound violated: %+v", st)
	}
}
