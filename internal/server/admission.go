package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// errQueueFull sheds a request because the admission wait queue is at
// capacity. The handler maps it to HTTP 429.
var errQueueFull = errors.New("server: admission queue full")

// admission is a weighted semaphore with a bounded FIFO wait queue. It
// bounds the engine work in flight: every query acquires a weight equal to
// the goroutines its evaluation may occupy, waits in line when the
// capacity is taken, and is shed outright when the line itself is full —
// so a traffic burst degrades into fast 429s instead of unbounded
// goroutine growth.
//
// Grants are strictly FIFO: a heavy waiter at the head blocks lighter
// waiters behind it until it fits. That wastes a little capacity but
// prevents starvation of expensive queries under a stream of cheap ones.
type admission struct {
	mu       sync.Mutex
	capacity int        // immutable after construction
	used     int        //ringlint:guarded-by mu
	maxQueue int        // immutable after construction
	waiters  *list.List // of *waiter, FIFO //ringlint:guarded-by mu
}

type waiter struct {
	weight int
	ready  chan struct{} // closed under a.mu when the waiter is granted
}

// newAdmission creates a semaphore with the given weight capacity and
// wait-queue bound (0 = no waiting, shed immediately when busy).
func newAdmission(capacity, maxQueue int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue, waiters: list.New()}
}

// acquire blocks until weight units are granted, the queue overflows
// (errQueueFull) or ctx is done (ctx.Err()). Weights above the capacity
// are clamped so every request is eventually servable.
func (a *admission) acquire(ctx context.Context, weight int) error {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	if a.waiters.Len() == 0 && a.used+weight <= a.capacity {
		a.used += weight
		a.mu.Unlock()
		return nil
	}
	if a.waiters.Len() >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the cancellation: the caller will
			// not run, so give the grant back (which may admit others).
			a.releaseLocked(weight)
		default:
			a.waiters.Remove(elem)
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release returns weight units and grants as many queued waiters as now
// fit, in FIFO order. The weight must match the acquire.
func (a *admission) release(weight int) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	a.releaseLocked(weight)
	a.mu.Unlock()
}

func (a *admission) releaseLocked(weight int) {
	a.used -= weight
	if a.used < 0 {
		panic("server: admission release without acquire")
	}
	for a.waiters.Len() > 0 {
		w := a.waiters.Front().Value.(*waiter)
		if a.used+w.weight > a.capacity {
			break
		}
		a.used += w.weight
		close(w.ready)
		a.waiters.Remove(a.waiters.Front())
	}
}

// snapshot reports the weight in use and the queue length, for metrics.
func (a *admission) snapshot() (used, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used, a.waiters.Len()
}
