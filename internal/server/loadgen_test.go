package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkServe is an in-process load generator over the full HTTP
// request path: it drives a fixed query mix through httptest at 1/4/16
// concurrent clients with the result cache on and off, at GOMAXPROCS 1
// and 4, reporting throughput and tail latency. `make bench-serve`
// writes the sweep to BENCH_serve.json via the BENCH_SERVE_JSON hook in
// TestMain.
func BenchmarkServe(b *testing.B) {
	for _, procs := range []int{1, 4} {
		for _, clients := range []int{1, 4, 16} {
			for _, cache := range []bool{true, false} {
				name := fmt.Sprintf("procs=%d/clients=%d/cache=%v", procs, clients, cache)
				b.Run(name, func(b *testing.B) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					benchServe(b, procs, clients, cache, "base")
				})
			}
			// The shared-prefix mix is cache-miss-heavy by construction
			// (cache disabled): a hot set of two cores, so concurrent
			// clients collide on identical canonical patterns and the
			// shared-scan lane batches them into one evaluation. With the
			// cache on every row would be a cache hit — uninteresting.
			name := fmt.Sprintf("procs=%d/clients=%d/cache=false/mix=shared", procs, clients)
			b.Run(name, func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				benchServe(b, procs, clients, false, "shared")
			})
		}
	}
}

// benchMix is a set of selective 2-pattern joins anchored at constants —
// the "interactive" shape a serving layer sees, small enough that
// per-request overhead (HTTP, admission, cache) is a visible fraction.
func benchMix() []QueryRequest {
	anchors := []string{"n000", "n003", "n010", "n027", "n058", "n101", "n145", "n199"}
	return anchorMix(anchors)
}

// sharedBenchMix is the shared-prefix workload (the same shape
// wgpb.SharedScanCores generates): a hot set of two cores, round-robined
// so concurrent clients hold identical canonical patterns most of the
// time and the shared-scan lane groups them.
func sharedBenchMix() []QueryRequest {
	return anchorMix([]string{"n000", "n101"})
}

func anchorMix(anchors []string) []QueryRequest {
	mix := make([]QueryRequest, len(anchors))
	for i, a := range anchors {
		mix[i] = QueryRequest{
			Pattern: []PatternJSON{
				{S: a, P: "?p", O: "?b"},
				{S: "?b", P: "p0", O: "?c"},
			},
			Limit: 100,
		}
	}
	return mix
}

func benchServe(b *testing.B, procs, clients int, cache bool, mixName string) {
	cfg := Config{
		Store:         heavyStore(b),
		AccessLog:     io.Discard,
		MaxConcurrent: clients,
		MaxQueue:      4 * clients,
		QueueWait:     10 * time.Second,
	}
	if !cache {
		cfg.CacheEntries = -1
	}
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mix := benchMix()
	if mixName == "shared" {
		mix = sharedBenchMix()
	}
	bodies := make([][]byte, len(mix))
	for i, req := range mix {
		if bodies[i], err = json.Marshal(req); err != nil {
			b.Fatal(err)
		}
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	do := func(i int) time.Duration {
		start := time.Now()
		resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Error(err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(start)
	}
	// Warm: connections, and the cache when enabled.
	for i := range mix {
		do(i)
	}

	latencies := make([][]time.Duration, clients)
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				latencies[c] = append(latencies[c], do(i))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := quantile(all, 0.50)
	p99 := quantile(all, 0.99)
	qps := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(qps, "qps")
	b.ReportMetric(float64(p50)/1e6, "p50-ms")
	b.ReportMetric(float64(p99)/1e6, "p99-ms")

	recordServeBench(serveBenchResult{
		Procs:    procs,
		Clients:  clients,
		Cache:    cache,
		Mix:      mixName,
		Requests: b.N,
		QPS:      round3(qps),
		P50MS:    round3(float64(p50) / 1e6),
		P99MS:    round3(float64(p99) / 1e6),
	})
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// serveBenchResult is one row of BENCH_serve.json.
type serveBenchResult struct {
	Procs   int  `json:"gomaxprocs"`
	Clients int  `json:"clients"`
	Cache   bool `json:"cache"`
	// Mix is "base" (8 anchored join cores), "shared" (2-core hot set
	// exercising shared-scan grouping under concurrency), or
	// "repl-fanout-Nnode" (the base mix round-robined over a replicated
	// deployment; see BenchmarkReplFanout).
	Mix string `json:"mix"`
	// Nodes is the serving-node count for the repl-fanout rows (0 for the
	// single-process sweeps).
	Nodes    int     `json:"nodes,omitempty"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

var (
	serveBenchMu      sync.Mutex
	serveBenchResults []serveBenchResult
)

// recordServeBench keeps the largest-N run per configuration: the bench
// framework calls each sub-benchmark several times while calibrating b.N,
// and only the final, longest run is worth reporting.
func recordServeBench(r serveBenchResult) {
	serveBenchMu.Lock()
	defer serveBenchMu.Unlock()
	for i, old := range serveBenchResults {
		if old.Procs == r.Procs && old.Clients == r.Clients && old.Cache == r.Cache && old.Mix == r.Mix {
			if r.Requests >= old.Requests {
				serveBenchResults[i] = r
			}
			return
		}
	}
	serveBenchResults = append(serveBenchResults, r)
}

// TestMain exists for the BENCH_SERVE_JSON hook: when the env var names a
// path and the serve benchmark ran, the collected sweep is written there
// (see `make bench-serve`).
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_SERVE_JSON"); path != "" && len(serveBenchResults) > 0 {
		out := struct {
			Workload string             `json:"workload"`
			Triples  int                `json:"triples"`
			QueryMix int                `json:"query_mix"`
			NumCPU   int                `json:"num_cpu"`
			Note     string             `json:"note"`
			Results  []serveBenchResult `json:"results"`
		}{
			Workload: "selective 2-pattern joins over a 20k-triple random graph, full HTTP path",
			Triples:  heavySt.Len(),
			QueryMix: len(benchMix()),
			NumCPU:   runtime.NumCPU(),
			Note:     "in-process httptest transport; GOMAXPROCS swept per row; cache=true serves the mix from the result cache after one warm pass; mix=shared is a cache-disabled 2-core hot set exercising shared-scan grouping",
			Results:  serveBenchResults,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	os.Exit(code)
}
