package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Hand-rolled Prometheus-text instrumentation. The repo's no-dependency
// rule extends to the serving layer, and the exposition format is simple
// enough that counters, gauges and histograms fit in a page: everything
// below renders through writeProm into the standard
// `name{labels} value` / `# TYPE` form that any Prometheus scraper (or
// grep in the smoke lane) consumes.

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n int64)  { c.v.Add(n) }
func (c *counter) value() int64 { return c.v.Load() }

// gauge is a set-or-adjust metric.
type gauge struct{ v atomic.Int64 }

func (g *gauge) set(n int64)  { g.v.Store(n) }
func (g *gauge) inc()         { g.v.Add(1) }
func (g *gauge) dec()         { g.v.Add(-1) }
func (g *gauge) value() int64 { return g.v.Load() }

// labeledCounter is a counter family over one or two label values, keyed
// by the pre-rendered label string (e.g. `endpoint="query",code="200"`).
type labeledCounter struct {
	mu sync.Mutex
	m  map[string]*counter //ringlint:guarded-by mu
}

func (lc *labeledCounter) get(labels string) *counter {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.m == nil {
		lc.m = map[string]*counter{}
	}
	c := lc.m[labels]
	if c == nil {
		c = &counter{}
		lc.m[labels] = c
	}
	return c
}

func (lc *labeledCounter) snapshot() map[string]int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make(map[string]int64, len(lc.m))
	for k, c := range lc.m {
		out[k] = c.value()
	}
	return out
}

// histogram is a cumulative-bucket latency histogram with fixed
// exponential bounds; the sum is tracked in nanoseconds to stay atomic.
type histogram struct {
	bounds   []float64 // upper bounds in seconds, ascending
	buckets  []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

// latencyBuckets spans 0.5ms–10s, enough to place both a cache hit and a
// near-timeout join.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// metrics is the server's full instrument set. Scrape-time values (cache
// occupancy, admission queue depth, readiness) are set by the /metrics
// handler just before rendering.
type metrics struct {
	requests labeledCounter // endpoint, code
	queries  labeledCounter // outcome: ok | timeout | cancelled | shed | error
	shed     labeledCounter // reason: queue_full | queue_timeout | not_ready

	inFlight   gauge // queries admitted and evaluating (weight units)
	queueDepth gauge
	ready      gauge

	queryDur *histogram

	// Live-mode ingestion: mutation requests by op and outcome, applied
	// triples, and end-to-end mutation latency (including the group
	// commit wait for sync requests).
	mutations       labeledCounter // op: insert | delete; outcome
	mutationTriples counter
	mutationDur     *histogram

	ltjLeaps, ltjBinds, ltjSeeks, ltjEnums counter
	ltjBatchDescents, ltjBatchEmits        counter

	// Shared-scan batch execution: groups led and followers served from
	// another request's evaluation.
	sharedGroups, sharedFollowers counter

	indexTriples, indexSubjects, indexPredicates, indexObjects gauge
}

func newMetrics() *metrics {
	return &metrics{
		queryDur:    newHistogram(latencyBuckets),
		mutationDur: newHistogram(latencyBuckets),
	}
}

func writeLabeled(w io.Writer, name, help string, lc *labeledCounter) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	snap := lc.snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", name, k, snap[k])
	}
}

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, g *gauge) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, g.value())
}

// writeFloatGauge renders a float-valued gauge (durations in seconds);
// the server's gauge type is integer, so the handful of float series are
// rendered from their source values at scrape time instead.
func writeFloatGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// writeProm renders every series in Prometheus text exposition format.
// The cache counters live in the cache itself; the caller passes a
// snapshot so there is a single source of truth.
func (m *metrics) writeProm(w io.Writer, cs cacheStats) {
	writeLabeled(w, "ringserve_requests_total", "HTTP requests by endpoint and status code.", &m.requests)
	writeLabeled(w, "ringserve_queries_total", "Query evaluations by outcome.", &m.queries)
	writeLabeled(w, "ringserve_admission_shed_total", "Queries shed by the admission controller, by reason.", &m.shed)
	writeGauge(w, "ringserve_in_flight", "Admitted query weight currently evaluating.", &m.inFlight)
	writeGauge(w, "ringserve_admission_queue_depth", "Requests waiting for admission.", &m.queueDepth)
	writeGauge(w, "ringserve_ready", "1 once the index is loaded and self-checked (0 while loading or draining).", &m.ready)
	writeHistogram(w, "ringserve_query_duration_seconds", "End-to-end query handling latency.", m.queryDur)
	writeLabeled(w, "ringserve_mutations_total", "Mutation requests by op and outcome (live mode).", &m.mutations)
	writeCounter(w, "ringserve_mutation_triples_total", "Triples actually inserted or deleted (live mode).", m.mutationTriples.value())
	writeHistogram(w, "ringserve_mutation_duration_seconds", "End-to-end mutation handling latency, including the durability wait.", m.mutationDur)
	writeCounter(w, "ringserve_cache_hits_total", "Result-cache hits.", cs.Hits)
	writeCounter(w, "ringserve_cache_misses_total", "Result-cache misses.", cs.Misses)
	writeCounter(w, "ringserve_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	writeCounter(w, "ringserve_cache_invalidations_total", "Result-cache invalidation sweeps.", cs.Invalidations)
	fmt.Fprintf(w, "# HELP ringserve_cache_entries Result-cache resident entries.\n# TYPE ringserve_cache_entries gauge\nringserve_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP ringserve_cache_bytes Approximate result-cache resident bytes.\n# TYPE ringserve_cache_bytes gauge\nringserve_cache_bytes %d\n", cs.Bytes)
	writeCounter(w, "ringserve_ltj_leaps_total", "LTJ Leap operations across all queries.", m.ltjLeaps.value())
	writeCounter(w, "ringserve_ltj_binds_total", "LTJ Bind operations across all queries.", m.ltjBinds.value())
	writeCounter(w, "ringserve_ltj_seeks_total", "LTJ seek intersections across all queries.", m.ltjSeeks.value())
	writeCounter(w, "ringserve_ltj_enumerations_total", "LTJ lonely-variable enumerations across all queries.", m.ltjEnums.value())
	writeCounter(w, "ringserve_ltj_batch_descents_total", "LTJ batched radix-intersection descents across all queries.", m.ltjBatchDescents.value())
	writeCounter(w, "ringserve_ltj_batch_emits_total", "Candidates emitted by LTJ batched descents across all queries.", m.ltjBatchEmits.value())
	writeCounter(w, "ringserve_shared_scan_groups_total", "Shared-scan groups led (one engine pass each).", m.sharedGroups.value())
	writeCounter(w, "ringserve_shared_scan_followers_total", "Queries served as followers of another request's shared scan.", m.sharedFollowers.value())
	writeGauge(w, "ringserve_index_triples", "Triples in the loaded index.", &m.indexTriples)
	writeGauge(w, "ringserve_index_distinct_subjects", "Distinct subjects in the loaded index.", &m.indexSubjects)
	writeGauge(w, "ringserve_index_distinct_predicates", "Distinct predicates in the loaded index.", &m.indexPredicates)
	writeGauge(w, "ringserve_index_distinct_objects", "Distinct objects in the loaded index.", &m.indexObjects)
}
