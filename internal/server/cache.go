package server

import (
	"container/list"
	"sync"
)

// resultCache is a size-bounded LRU over decoded query results, keyed on
// the canonical query form (query.Select.CacheKey, so syntactic variants
// of the same BGP share an entry). Bounded twice: by entry count and by an
// approximate byte footprint, whichever trips first. The ring is immutable
// once loaded, so entries never go stale by themselves; invalidate is the
// hook a future dynamic store (or an index reload) calls to drop the
// generation wholesale.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int                      // immutable after construction
	maxBytes   int64                    // immutable after construction
	bytes      int64                    //ringlint:guarded-by mu
	ll         *list.List               // MRU at front; values are *cacheEntry //ringlint:guarded-by mu
	items      map[string]*list.Element //ringlint:guarded-by mu

	hits, misses, evictions, invalidations int64 //ringlint:guarded-by mu
}

type cacheEntry struct {
	key  string
	sols []map[string]string
	size int64
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// get returns the cached solutions and marks the entry most-recently-used.
// Callers must treat the returned slice as immutable — it is shared with
// every other hit for the same key.
func (c *resultCache) get(key string) ([]map[string]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(elem)
	return elem.Value.(*cacheEntry).sols, true
}

// put inserts (or refreshes) an entry and evicts from the LRU tail until
// both bounds hold again. Entries bigger than the byte bound are not
// cached at all.
func (c *resultCache) put(key string, sols []map[string]string) {
	size := entrySize(key, sols)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.items[key]; ok {
		old := elem.Value.(*cacheEntry)
		c.bytes += size - old.size
		old.sols, old.size = sols, size
		c.ll.MoveToFront(elem)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sols: sols, size: size})
		c.bytes += size
	}
	for c.ll.Len() > 0 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		tail := c.ll.Back()
		entry := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, entry.key)
		c.bytes -= entry.size
		c.evictions++
	}
}

// invalidate drops every entry.
func (c *resultCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
	c.bytes = 0
	c.invalidations++
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Entries: c.ll.Len(), Bytes: c.bytes,
	}
}

// entrySize approximates the resident footprint of one entry: string
// bytes plus per-map and per-header overheads. It only needs to be
// consistent, not exact — the bound is a sizing knob, not an accountant.
func entrySize(key string, sols []map[string]string) int64 {
	size := int64(len(key)) + 64
	for _, sol := range sols {
		size += 48
		for k, v := range sol {
			size += int64(len(k)) + int64(len(v)) + 32
		}
	}
	return size
}
