//go:build ringdebug

package server

import "testing"

// TestDebugSharedScanAccounting exercises the ringdebug assertions on
// the shared-scan registry: balanced join/leave/finish histories pass,
// and the two invariant violations (negative members, double finish)
// panic.
func TestDebugSharedScanAccounting(t *testing.T) {
	t.Run("balanced", func(t *testing.T) {
		sc := &sharedScans{}
		g, leader := sc.join("k", 10)
		if !leader {
			t.Fatal("first join was not the leader")
		}
		if _, leader := sc.join("k", 5); leader {
			t.Fatal("second join was not a follower")
		}
		sc.leave(g)
		sc.finish("k", g)
		sc.leave(g)
		sc.debugCheckDrained()
	})

	t.Run("negative members panics", func(t *testing.T) {
		sc := &sharedScans{}
		g, _ := sc.join("k", 10)
		sc.leave(g)
		defer func() {
			if recover() == nil {
				t.Fatal("leave past zero members did not panic under ringdebug")
			}
		}()
		sc.leave(g)
	})

	t.Run("double finish panics", func(t *testing.T) {
		sc := &sharedScans{}
		g, _ := sc.join("k", 10)
		sc.finish("k", g)
		defer func() {
			if recover() == nil {
				t.Fatal("second finish did not panic under ringdebug")
			}
		}()
		sc.finish("k", g)
	})
}
