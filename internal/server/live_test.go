package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/persist"
)

// newLiveServer opens a persist.DB in a temp dir and serves it.
func newLiveServer(t testing.TB, opt persist.Options) (*Server, *httptest.Server, *persist.DB) {
	t.Helper()
	db, err := persist.Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, err := New(Config{AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetLive(db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, db
}

func postMutation(t testing.TB, ts *httptest.Server, path string, req MutationRequest) (*MutationResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var mr MutationResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	return &mr, resp.StatusCode
}

func triples(ts ...[3]string) []TripleJSON {
	out := make([]TripleJSON, len(ts))
	for i, t := range ts {
		out[i] = TripleJSON{S: t[0], P: t[1], O: t[2]}
	}
	return out
}

func TestLiveInsertQueryDelete(t *testing.T) {
	_, ts, _ := newLiveServer(t, persist.Options{})

	mr, code := postMutation(t, ts, "/insert", MutationRequest{Triples: triples(
		[3]string{"alice", "knows", "bob"},
		[3]string{"bob", "knows", "carol"},
	)})
	if code != http.StatusOK {
		t.Fatalf("sync insert: status %d, want 200", code)
	}
	if mr.Applied != 2 || !mr.Synced {
		t.Fatalf("sync insert: %+v", mr)
	}

	qr, code := postQuery(t, ts, QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}})
	if code != http.StatusOK || qr.Count != 2 {
		t.Fatalf("query after insert: code %d resp %+v", code, qr)
	}

	// Duplicate insert applies nothing but still succeeds.
	mr, code = postMutation(t, ts, "/insert", MutationRequest{Triples: triples(
		[3]string{"alice", "knows", "bob"},
	)})
	if code != http.StatusOK || mr.Applied != 0 {
		t.Fatalf("duplicate insert: code %d resp %+v", code, mr)
	}

	// Async insert: 202, applied immediately (visibility ahead of fsync).
	async := false
	mr, code = postMutation(t, ts, "/insert", MutationRequest{
		Triples: triples([3]string{"carol", "knows", "dave"}),
		Sync:    &async,
	})
	if code != http.StatusAccepted {
		t.Fatalf("async insert: status %d, want 202", code)
	}
	if mr.Synced {
		t.Fatalf("async insert reported synced: %+v", mr)
	}
	qr, _ = postQuery(t, ts, QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}})
	if qr.Count != 3 {
		t.Fatalf("async insert not visible: count %d, want 3", qr.Count)
	}

	mr, code = postMutation(t, ts, "/delete", MutationRequest{Triples: triples(
		[3]string{"alice", "knows", "bob"},
		[3]string{"never", "was", "there"},
	)})
	if code != http.StatusOK || mr.Applied != 1 {
		t.Fatalf("delete: code %d resp %+v", code, mr)
	}
	qr, _ = postQuery(t, ts, QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}})
	if qr.Count != 2 {
		t.Fatalf("delete not visible: count %d, want 2", qr.Count)
	}
}

func TestLiveMutationValidation(t *testing.T) {
	_, ts, _ := newLiveServer(t, persist.Options{})
	cases := []MutationRequest{
		{},
		{Triples: []TripleJSON{{S: "", P: "p", O: "o"}}},
		{Triples: []TripleJSON{{S: "?x", P: "p", O: "o"}}},
		{Triples: []TripleJSON{{S: "a\nb", P: "p", O: "o"}}},
		{Triples: []TripleJSON{{S: "a", P: "p", O: "o\x00"}}},
	}
	for i, req := range cases {
		if _, code := postMutation(t, ts, "/insert", req); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: status %d, want 405", resp.StatusCode)
	}
}

func TestStaticServerRefusesMutations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, code := postMutation(t, ts, "/insert", MutationRequest{
		Triples: triples([3]string{"a", "p", "b"}),
	}); code != http.StatusNotImplemented {
		t.Fatalf("static /insert: status %d, want 501", code)
	}
}

// TestLiveMutationsDuringRecovery: a live-mode server whose data dir is
// still recovering answers mutations with a retryable 503 (plus
// Retry-After), not the read-only 501 — the state is transient.
func TestLiveMutationsDuringRecovery(t *testing.T) {
	srv, err := New(Config{AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	srv.ExpectLive() // -data-dir boot path: recovery has not finished
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(MutationRequest{Triples: triples([3]string{"a", "p", "b"})})
	resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/insert during recovery: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/insert during recovery: missing Retry-After")
	}

	// Once the DB is installed, the same request succeeds.
	db, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := srv.SetLive(db); err != nil {
		t.Fatal(err)
	}
	if _, code := postMutation(t, ts, "/insert", MutationRequest{
		Triples: triples([3]string{"a", "p", "b"}),
	}); code != http.StatusOK {
		t.Fatalf("/insert after SetLive: status %d, want 200", code)
	}
}

// TestLiveNoStaleCache: a cached result must never be served after a
// batch that changes the answer — the generation-prefixed cache key is
// what guarantees it.
func TestLiveNoStaleCache(t *testing.T) {
	_, ts, _ := newLiveServer(t, persist.Options{})
	postMutation(t, ts, "/insert", MutationRequest{Triples: triples(
		[3]string{"alice", "knows", "bob"},
	)})

	q := QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}}
	qr, _ := postQuery(t, ts, q)
	if qr.Count != 1 {
		t.Fatalf("first query: count %d", qr.Count)
	}
	qr, _ = postQuery(t, ts, q)
	if !qr.Cached {
		t.Fatalf("second identical query not cached")
	}

	postMutation(t, ts, "/insert", MutationRequest{Triples: triples(
		[3]string{"bob", "knows", "carol"},
	)})
	qr, _ = postQuery(t, ts, q)
	if qr.Cached {
		t.Fatal("stale cache hit across an applied batch")
	}
	if qr.Count != 2 {
		t.Fatalf("query after insert: count %d, want 2", qr.Count)
	}
}

// TestLiveConcurrentReadersDuringCompaction is the serving acceptance
// check: with a tiny memtable (forcing constant flushes and merges) and
// a checkpoint mid-burst, concurrent readers must see no 5xx and no
// stale counts beyond the writer's progress.
func TestLiveConcurrentReadersDuringCompaction(t *testing.T) {
	_, ts, db := newLiveServer(t, persist.Options{MemtableThreshold: 16, MaxRings: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var readerErr error
	setErr := func(err error) {
		mu.Lock()
		if readerErr == nil {
			readerErr = err
		}
		mu.Unlock()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(QueryRequest{
					Pattern: []PatternJSON{{S: "?x", P: "p0", O: "?y"}},
				})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					setErr(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					setErr(fmt.Errorf("reader got %d during compaction", resp.StatusCode))
					return
				}
			}
		}()
	}

	total := 0
	for batch := 0; batch < 30; batch++ {
		ops := make([]TripleJSON, 10)
		for i := range ops {
			ops[i] = TripleJSON{S: fmt.Sprintf("s%d", total), P: "p0", O: fmt.Sprintf("o%d", total)}
			total++
		}
		if _, code := postMutation(t, ts, "/insert", MutationRequest{Triples: ops}); code != http.StatusOK {
			t.Fatalf("insert batch %d: status %d", batch, code)
		}
		if batch == 15 {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("mid-burst checkpoint: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	qr, code := postQuery(t, ts, QueryRequest{
		Pattern: []PatternJSON{{S: "?x", P: "p0", O: "?y"}},
		Limit:   total + 10,
	})
	if code != http.StatusOK || qr.Count != total {
		t.Fatalf("final count %d (status %d), want %d", qr.Count, code, total)
	}
}

func TestLiveStatsAndMetrics(t *testing.T) {
	_, ts, _ := newLiveServer(t, persist.Options{})
	postMutation(t, ts, "/insert", MutationRequest{Triples: triples(
		[3]string{"a", "p", "b"},
	)})

	body, code := getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Persist == nil {
		t.Fatal("/stats missing persist section in live mode")
	}
	if stats.Persist.WALBatches == 0 {
		t.Fatalf("persist stats show no WAL batches: %+v", stats.Persist)
	}

	metrics, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, series := range []string{
		"ringserve_wal_appended_total",
		"ringserve_wal_fsync_seconds_bucket",
		"ringserve_memtable_triples",
		"ringserve_static_rings",
		"ringserve_compactions_total",
		"ringserve_recovery_replayed_total",
		"ringserve_index_generation",
		"ringserve_mutations_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}
