package server

import "fmt"

// Runtime assertion hooks for the ringdebug build tag, called behind
// `if ringdebugEnabled { ... }` so normal builds eliminate them
// entirely. They are the dynamic counterpart of the guardedby/golife
// static analyzers on the shared-scan registry: the analyzers prove the
// lock discipline; these assertions prove the membership accounting
// balances at run time across the leader/follower/watchdog interleavings.

// debugCheckMembersLocked asserts the membership count never goes
// negative: a negative count means some path called leave twice for one
// attach, which would cancel a group other members still wait on.
func (sc *sharedScans) debugCheckMembersLocked(g *scanGroup) {
	if g.members < 0 {
		panic(fmt.Sprintf("ringdebug: server: shared-scan group members = %d (leave without matching join)", g.members))
	}
}

// debugCheckFinishLocked asserts a group publishes exactly once — a
// second finish would close(done) twice and crash far from the culprit.
func (sc *sharedScans) debugCheckFinishLocked(g *scanGroup) {
	if g.finished {
		panic("ringdebug: server: shared-scan group finished twice")
	}
}

// debugCheckDrained asserts the registry holds no in-flight groups —
// every member drained. Called from tests at points where the serving
// tier should be quiescent.
func (sc *sharedScans) debugCheckDrained() {
	sc.mu.Lock()
	n := len(sc.m)
	sc.mu.Unlock()
	if n != 0 {
		panic(fmt.Sprintf("ringdebug: server: %d shared-scan group(s) still registered after drain", n))
	}
}
