package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the status code and body size a handler produced,
// for the access log and the request counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// accessLog wraps a handler with one structured (JSON) log line per
// request and feeds the per-endpoint request counters. endpoint is the
// stable label ("query", "metrics", ...) — the raw path would explode
// cardinality if clients probe random URLs.
func (s *Server) accessLog(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.met.requests.get(`endpoint="` + endpoint + `",code="` + strconv.Itoa(status) + `"`).inc()
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("endpoint", endpoint),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}
