package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	wcoring "repro"
)

// smallStore holds a tiny social graph with exactly known join results.
func smallStore(t testing.TB) *wcoring.Store {
	t.Helper()
	st, err := wcoring.NewStore([]wcoring.StringTriple{
		{S: "alice", P: "knows", O: "bob"},
		{S: "bob", P: "knows", O: "carol"},
		{S: "carol", P: "knows", O: "dave"},
		{S: "alice", P: "likes", O: "carol"},
		{S: "bob", P: "likes", O: "dave"},
	}, wcoring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var (
	heavyOnce sync.Once
	heavySt   *wcoring.Store
	heavyErr  error
)

// heavyStore is a dense random graph whose 3-hop all-variable join has far
// more solutions than any test will wait for — the knob that makes
// deadline, shedding and cancellation observable.
func heavyStore(t testing.TB) *wcoring.Store {
	t.Helper()
	heavyOnce.Do(func() {
		rng := rand.New(rand.NewSource(7))
		seen := map[wcoring.StringTriple]bool{}
		triples := make([]wcoring.StringTriple, 0, 20000)
		for len(triples) < 20000 {
			tr := wcoring.StringTriple{
				S: fmt.Sprintf("n%03d", rng.Intn(200)),
				P: fmt.Sprintf("p%d", rng.Intn(4)),
				O: fmt.Sprintf("n%03d", rng.Intn(200)),
			}
			if !seen[tr] {
				seen[tr] = true
				triples = append(triples, tr)
			}
		}
		heavySt, heavyErr = wcoring.NewStore(triples, wcoring.Options{})
	})
	if heavyErr != nil {
		t.Fatal(heavyErr)
	}
	return heavySt
}

// newTestServer builds a server around cfg (Store and AccessLog filled in
// if unset) and wraps it in an httptest.Server.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = smallStore(t)
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = io.Discard
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postQuery(t testing.TB, ts *httptest.Server, req QueryRequest) (*QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr, resp.StatusCode
}

func getBody(t testing.TB, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func TestQueryPOST(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	qr, code := postQuery(t, ts, QueryRequest{
		Pattern: []PatternJSON{
			{S: "?x", P: "knows", O: "?y"},
			{S: "?y", P: "knows", O: "?z"},
		},
		OrderBy: []string{"x"},
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := []map[string]string{
		{"x": "alice", "y": "bob", "z": "carol"},
		{"x": "bob", "y": "carol", "z": "dave"},
	}
	if qr.Count != 2 || len(qr.Solutions) != 2 {
		t.Fatalf("count = %d, solutions = %v", qr.Count, qr.Solutions)
	}
	for i, w := range want {
		for k, v := range w {
			if qr.Solutions[i][k] != v {
				t.Fatalf("solution %d = %v, want %v", i, qr.Solutions[i], w)
			}
		}
	}
	if qr.Cached || qr.TimedOut {
		t.Fatalf("unexpected flags in %+v", qr)
	}
	if qr.Stats == nil || qr.Stats.Binds == 0 {
		t.Fatalf("missing engine stats: %+v", qr.Stats)
	}
}

func TestQueryGET(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := url.Values{
		"q":        {"?x knows ?y ; ?y knows ?z"},
		"project":  {"x"},
		"order_by": {"x"},
	}
	body, code := getBody(t, ts.URL+"/query?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 2 || qr.Solutions[0]["x"] != "alice" || len(qr.Solutions[0]) != 1 {
		t.Fatalf("solutions = %v", qr.Solutions)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"empty pattern", QueryRequest{}},
		{"unknown project var", QueryRequest{
			Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}},
			Project: []string{"nope"},
		}},
		{"unknown order var", QueryRequest{
			Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}},
			OrderBy: []string{"nope"},
		}},
		{"negative limit", QueryRequest{
			Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}},
			Limit:   -1,
		}},
	}
	for _, tc := range cases {
		if _, code := postQuery(t, ts, tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
	}
	// Malformed JSON and unknown fields are 400s too.
	for _, body := range []string{"{", `{"bogus_field": 1}`} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	if body, code := getBody(t, ts.URL+"/query?q="); code != http.StatusBadRequest {
		t.Errorf("empty q: status = %d (%s), want 400", code, body)
	}
}

func TestQueryUnknownConstantIsEmpty(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	qr, code := postQuery(t, ts, QueryRequest{
		Pattern: []PatternJSON{{S: "zeus", P: "knows", O: "?y"}},
	})
	if code != http.StatusOK || qr.Count != 0 || qr.Solutions == nil {
		t.Fatalf("code = %d, resp = %+v; want 200 with empty (non-null) solutions", code, qr)
	}
}

func TestCacheHitFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}}

	first, _ := postQuery(t, ts, req)
	if first.Cached {
		t.Fatal("first query already cached")
	}
	second, _ := postQuery(t, ts, req)
	if !second.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if second.Count != first.Count {
		t.Fatalf("cache returned %d solutions, engine %d", second.Count, first.Count)
	}

	// A syntactic variant (pattern order) of a join hits the same entry.
	join := QueryRequest{Pattern: []PatternJSON{
		{S: "?x", P: "knows", O: "?y"},
		{S: "?y", P: "likes", O: "?z"},
	}}
	if qr, _ := postQuery(t, ts, join); qr.Cached {
		t.Fatal("join unexpectedly cached")
	}
	flipped := QueryRequest{Pattern: []PatternJSON{
		{S: "?y", P: "likes", O: "?z"},
		{S: "?x", P: "knows", O: "?y"},
	}}
	if qr, _ := postQuery(t, ts, flipped); !qr.Cached {
		t.Fatal("reordered pattern missed the cache")
	}

	// no_cache bypasses both lookup and fill.
	req.NoCache = true
	if qr, _ := postQuery(t, ts, req); qr.Cached {
		t.Fatal("no_cache request served from cache")
	}
	req.NoCache = false

	// Invalidation drops the entries.
	resp, err := http.Post(ts.URL+"/cache/invalidate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate status = %d", resp.StatusCode)
	}
	if qr, _ := postQuery(t, ts, req); qr.Cached {
		t.Fatal("cache entry survived invalidation")
	}

	// GET /stats reflects the counter activity.
	body, code := getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	var stats struct {
		Triples int `json:"triples"`
		Cache   struct {
			Hits          int64 `json:"hits"`
			Invalidations int64 `json:"invalidations"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Triples != 5 || stats.Cache.Hits < 2 || stats.Cache.Invalidations != 1 {
		t.Fatalf("stats = %s", body)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	req := QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}}
	postQuery(t, ts, req)
	if qr, _ := postQuery(t, ts, req); qr.Cached {
		t.Fatal("disabled cache served a hit")
	}
	resp, err := http.Post(ts.URL+"/cache/invalidate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("invalidate on disabled cache: status = %d, want 404", resp.StatusCode)
	}
}

func TestReadyzLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: smallStore(t)})
	if body, code := getBody(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz = %d %q", code, body)
	}
	if _, code := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// A server constructed without a store is alive but not ready, and
	// sheds queries, until SetStore completes the async load.
	srv2, err := New(Config{AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if body, code := getBody(t, ts2.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "loading") {
		t.Fatalf("pre-load readyz = %d %q", code, body)
	}
	if _, code := getBody(t, ts2.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("pre-load healthz = %d", code)
	}
	req := QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "?p", O: "?y"}}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts2.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-load query = %d, want 503", resp.StatusCode)
	}
	if err := srv2.SetStore(smallStore(t)); err != nil {
		t.Fatal(err)
	}
	if _, code := getBody(t, ts2.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("post-load readyz = %d", code)
	}
	if qr, code := postQuery(t, ts2, req); code != http.StatusOK || qr.Count != 5 {
		t.Fatalf("post-load query = %d %+v", code, qr)
	}
}

func TestSelfCheckRejectsNilProbe(t *testing.T) {
	// SetStore's probe query must succeed; a healthy store passes.
	srv, err := New(Config{AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetStore(heavyStore(t)); err != nil {
		t.Fatalf("self-check rejected a healthy store: %v", err)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: heavyStore(t), MaxLimit: 1 << 30})
	qr, code := postQuery(t, ts, QueryRequest{
		Pattern: []PatternJSON{
			{S: "?a", P: "?p", O: "?b"},
			{S: "?b", P: "?q", O: "?c"},
			{S: "?c", P: "?r", O: "?d"},
		},
		Limit:     1 << 30,
		TimeoutMS: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !qr.TimedOut {
		t.Skip("3-hop join finished within 1ms on this machine")
	}
	// Partial results with the flag set — the contract for deadline hits.
	if qr.Count != len(qr.Solutions) {
		t.Fatalf("count %d != %d solutions", qr.Count, len(qr.Solutions))
	}

	// A timed-out result must not poison the cache.
	if qr2, _ := postQuery(t, ts, QueryRequest{
		Pattern: []PatternJSON{
			{S: "?a", P: "?p", O: "?b"},
			{S: "?b", P: "?q", O: "?c"},
			{S: "?c", P: "?r", O: "?d"},
		},
		Limit:     1 << 30,
		TimeoutMS: 1,
	}); qr2.Cached {
		t.Fatal("timed-out result was cached")
	}
}

func TestShedUnderLoad(t *testing.T) {
	// Capacity 1 with a single queue slot: under an 8-client burst most
	// requests must shed (MaxQueue 0 would mean "default", hence 1).
	_, ts := newTestServer(t, Config{
		Store:         heavyStore(t),
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     5 * time.Millisecond,
		MaxLimit:      1 << 30,
	})

	const clients = 8
	codes := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, code := postQuery(t, ts, QueryRequest{
				Pattern: []PatternJSON{
					{S: "?a", P: "?p", O: "?b"},
					{S: "?b", P: "?q", O: "?c"},
					{S: "?c", P: "?r", O: "?d"},
				},
				Limit:     1 << 30,
				TimeoutMS: 300,
				NoCache:   true,
			})
			codes <- code
		}()
	}
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for code := range codes {
		counts[code]++
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no query admitted under load: %v", counts)
	}
	if counts[http.StatusTooManyRequests]+counts[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("overload shed nothing: %v", counts)
	}
	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d under load: %v", code, counts)
		}
	}

	// The shed counters made it to /metrics.
	body, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, `ringserve_admission_shed_total{reason="queue_`) {
		t.Fatalf("metrics missing shed series:\n%s", body)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Store: heavyStore(t), MaxLimit: 1 << 30})

	// Start a slow in-flight query...
	type result struct {
		qr   *QueryResponse
		code int
	}
	done := make(chan result, 1)
	go func() {
		qr, code := postQuery(t, ts, QueryRequest{
			Pattern: []PatternJSON{
				{S: "?a", P: "?p", O: "?b"},
				{S: "?b", P: "?q", O: "?c"},
				{S: "?c", P: "?r", O: "?d"},
			},
			Limit:     1 << 30,
			TimeoutMS: 400,
			NoCache:   true,
		})
		done <- result{qr, code}
	}()
	time.Sleep(60 * time.Millisecond) // let it get admitted

	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	// New work is refused, readiness reports draining...
	if body, code := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz = %d %q", code, body)
	}
	if _, code := postQuery(t, ts, QueryRequest{
		Pattern: []PatternJSON{{S: "?a", P: "p0", O: "?b"}},
	}); code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503", code)
	}
	// ...but the in-flight query completes normally.
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight query during drain = %d, want 200", r.code)
	}
}

func TestClientDisconnectCancels(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: heavyStore(t), MaxLimit: 1 << 30})
	body, _ := json.Marshal(QueryRequest{
		Pattern: []PatternJSON{
			{S: "?a", P: "?p", O: "?b"},
			{S: "?b", P: "?q", O: "?c"},
			{S: "?c", P: "?r", O: "?d"},
		},
		Limit:     1 << 30,
		TimeoutMS: 5000,
		NoCache:   true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		// The query finished before the cancel landed; nothing to assert.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Skip("query completed before client disconnect")
	}

	// The handler notices the disconnect and records outcome="cancelled";
	// the handler finishes asynchronously, so poll the metrics.
	deadline := time.Now().Add(10 * time.Second)
	for {
		metrics, _ := getBody(t, ts.URL+"/metrics")
		if strings.Contains(metrics, `ringserve_queries_total{outcome="cancelled"}`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled outcome never surfaced in metrics:\n%s", metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := QueryRequest{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}}
	postQuery(t, ts, req)
	postQuery(t, ts, req) // cache hit

	body, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	for _, want := range []string{
		`ringserve_queries_total{outcome="ok"} 1`,
		`ringserve_queries_total{outcome="cache_hit"} 1`,
		`ringserve_cache_hits_total 1`,
		`ringserve_cache_misses_total 1`,
		`ringserve_index_triples 5`,
		`ringserve_ready 1`,
		`ringserve_requests_total{endpoint="query",code="200"} 2`,
		"ringserve_query_duration_seconds_count 2",
		"ringserve_ltj_binds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestConcurrentClients is the -race stress lane: many clients hammering
// the full request path (cache hits and misses, both methods, stats and
// metrics scrapes) against one server.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, MaxQueue: 64})
	queries := []QueryRequest{
		{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}},
		{Pattern: []PatternJSON{{S: "?x", P: "likes", O: "?y"}}},
		{Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}, {S: "?y", P: "knows", O: "?z"}}},
		{Pattern: []PatternJSON{{S: "alice", P: "?p", O: "?y"}}, NoCache: true},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch i % 5 {
				case 4:
					if g%2 == 0 {
						getBody(t, ts.URL+"/metrics")
					} else {
						getBody(t, ts.URL+"/stats")
					}
				default:
					qr, code := postQuery(t, ts, queries[(g+i)%len(queries)])
					if code != http.StatusOK {
						t.Errorf("query status = %d", code)
						return
					}
					if qr.Count != len(qr.Solutions) {
						t.Errorf("inconsistent count %d vs %d", qr.Count, len(qr.Solutions))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
