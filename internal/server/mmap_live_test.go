package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/persist"
)

// canonQuery runs an ordered, deterministic query and flattens the
// solutions for comparison.
func canonQuery(t *testing.T, ts *stServer, pattern []PatternJSON) string {
	t.Helper()
	qr, code := postQuery(t, ts.ts, QueryRequest{Pattern: pattern, NoCache: true})
	if code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	keys := make([]string, 0, len(qr.Solutions))
	for _, sol := range qr.Solutions {
		vars := make([]string, 0, len(sol))
		for k, v := range sol {
			vars = append(vars, k+"="+v)
		}
		sort.Strings(vars)
		keys = append(keys, strings.Join(vars, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

type stServer struct {
	srv *Server
	ts  *httptest.Server
	db  *persist.DB
}

// TestLiveMmapDifferential drives an identical mutation/checkpoint
// schedule through a plain live server and an Mmap one: after every
// phase — including the checkpoint that swaps heap rings for view-loaded
// mappings — both must answer every query identically.
func TestLiveMmapDifferential(t *testing.T) {
	mk := func(mmap bool) *stServer {
		srv, ts, db := newLiveServer(t, persist.Options{
			MemtableThreshold: 8, MaxRings: 64, NoBackground: true, Mmap: mmap,
		})
		return &stServer{srv: srv, ts: ts, db: db}
	}
	plain, mapped := mk(false), mk(true)
	servers := []*stServer{plain, mapped}

	queries := [][]PatternJSON{
		{{S: "?x", P: "knows", O: "?y"}},
		{{S: "?x", P: "knows", O: "?y"}, {S: "?y", P: "knows", O: "?z"}},
		{{S: "?x", P: "?p", O: "?y"}},
	}
	check := func(phase string) {
		t.Helper()
		for qi, q := range queries {
			want := canonQuery(t, plain, q)
			got := canonQuery(t, mapped, q)
			if got != want {
				t.Fatalf("%s query %d: mmap %q, plain %q", phase, qi, got, want)
			}
		}
	}

	insert := func(trs []TripleJSON) {
		t.Helper()
		for _, s := range servers {
			if _, code := postMutation(t, s.ts, "/insert", MutationRequest{Triples: trs}); code != http.StatusOK {
				t.Fatalf("insert: status %d", code)
			}
		}
	}

	var batch []TripleJSON
	for i := 0; i < 20; i++ {
		batch = append(batch, TripleJSON{S: fmt.Sprintf("n%d", i), P: "knows", O: fmt.Sprintf("n%d", (i+1)%20)})
	}
	insert(batch)
	check("after inserts")

	for _, s := range servers {
		if err := s.db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	check("after checkpoint swap")
	st := mapped.db.Stats()
	if st.MappedRings == 0 {
		t.Fatal("mmap server has no mapped rings after checkpoint")
	}

	// Mutate across the installed views, checkpoint again, delete some.
	insert([]TripleJSON{{S: "n0", P: "likes", O: "n5"}, {S: "n5", P: "likes", O: "n9"}})
	check("after post-swap inserts")
	for _, s := range servers {
		if _, code := postMutation(t, s.ts, "/delete", MutationRequest{Triples: []TripleJSON{
			{S: "n1", P: "knows", O: "n2"},
		}}); code != http.StatusOK {
			t.Fatalf("delete: status %d", code)
		}
		if err := s.db.Checkpoint(); err != nil {
			t.Fatalf("second Checkpoint: %v", err)
		}
	}
	check("after delete and second checkpoint")
}

// TestLiveMmapObservability checks the serving metrics of the zero-copy
// path: /metrics must report the mmap load mode, a mapped byte count and
// a snapshot install time, and /stats must carry the mapped section.
func TestLiveMmapObservability(t *testing.T) {
	_, ts, db := newLiveServer(t, persist.Options{
		MemtableThreshold: 8, MaxRings: 64, NoBackground: true, Mmap: true,
	})
	var batch []TripleJSON
	for i := 0; i < 20; i++ {
		batch = append(batch, TripleJSON{S: fmt.Sprintf("n%d", i), P: "p", O: "o"})
	}
	if _, code := postMutation(t, ts, "/insert", MutationRequest{Triples: batch}); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`ringserve_index_load_mode{mode="mmap"} 1`,
		"ringserve_index_bytes_mapped",
		"ringserve_snapshot_install_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	stats := string(sbody)
	for _, want := range []string{`"mapped"`, `"mode":"mmap"`, `"bytes_mapped"`} {
		if !strings.Contains(stats, want) {
			t.Errorf("/stats missing %q; body: %s", want, stats)
		}
	}
}
