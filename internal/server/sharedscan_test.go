package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// The shared-scan tests orchestrate grouping deterministically with a
// "plug": MaxConcurrent 1 and one slow NoCache query (which bypasses the
// shared path) holding the only admission slot. Group members posted
// while the plug runs all attach to one group — the leader cannot start
// until the plug's timeout releases the slot, so the attach window is
// hundreds of milliseconds wide.

// plugPattern is a 3-hop all-variable join over heavyStore: it cannot
// finish within its deadline, so it pins the admission slot for exactly
// TimeoutMS.
func plugPattern() []PatternJSON {
	return []PatternJSON{
		{S: "?a", P: "?p", O: "?b"},
		{S: "?b", P: "?q", O: "?c"},
		{S: "?c", P: "?r", O: "?d"},
	}
}

// startPlug posts the plug query from its own goroutine and gives it
// time to be admitted; the returned func waits for it to finish.
func startPlug(t *testing.T, url string, timeoutMS int) func() {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(QueryRequest{
			Pattern: plugPattern(), Limit: 1 << 30, TimeoutMS: timeoutMS, NoCache: true,
		})
		resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // the empty slot admits it immediately
	return func() { <-done }
}

// sharedMix is the eligible group query the tests fan out: a selective
// 2-pattern join over heavyStore, anchored on one subject.
func sharedMix() []PatternJSON {
	return []PatternJSON{
		{S: "n000", P: "?p", O: "?b"},
		{S: "?b", P: "p0", O: "?c"},
	}
}

func TestSharedScanFanout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Store:         heavyStore(t),
		MaxConcurrent: 1,
		MaxQueue:      4,
		QueueWait:     5 * time.Second,
		MaxLimit:      1 << 30,
	})
	wait := startPlug(t, ts.URL, 600)

	// Six identical queries against one admission slot and four queue
	// places: without sharing at least one would shed; with sharing one
	// leader queues and five followers ride along.
	const clients = 6
	type result struct {
		qr   *QueryResponse
		code int
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr, code := postQuery(t, ts, QueryRequest{Pattern: sharedMix()})
			results[i] = result{qr, code}
		}(i)
	}
	wg.Wait()
	wait()

	shared := 0
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("client %d: status %d", i, r.code)
		}
		if !reflect.DeepEqual(r.qr.Solutions, results[0].qr.Solutions) {
			t.Fatalf("client %d solutions differ from client 0", i)
		}
		if r.qr.Shared {
			shared++
		}
	}
	if shared != clients-1 {
		t.Fatalf("shared followers = %d, want %d", shared, clients-1)
	}

	// Every member filled the cache under its own key; the next identical
	// query is a plain cache hit.
	qr, code := postQuery(t, ts, QueryRequest{Pattern: sharedMix()})
	if code != http.StatusOK || !qr.Cached {
		t.Fatalf("post-group query: code %d cached %v, want a cache hit", code, qr.Cached)
	}

	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "ringserve_shared_scan_groups_total 1") {
		t.Fatalf("metrics missing shared group:\n%s", metrics)
	}
	if !strings.Contains(metrics, "ringserve_shared_scan_followers_total 5") {
		t.Fatalf("metrics missing shared followers:\n%s", metrics)
	}
}

// TestSharedScanVariantViews: members with different projections, limits
// and offsets attach to one evaluation and each get exactly what a solo
// run would have produced.
func TestSharedScanVariantViews(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Store:         heavyStore(t),
		MaxConcurrent: 1,
		MaxQueue:      4,
		QueueWait:     5 * time.Second,
		CacheEntries:  -1, // misses every time, so the solo oracles re-evaluate
	})
	wait := startPlug(t, ts.URL, 600)

	variants := []QueryRequest{
		{Pattern: sharedMix()},                         // full default-limit view: posted first, so it leads
		{Pattern: sharedMix(), Project: []string{"b"}}, // projection
		{Pattern: sharedMix(), Offset: 2, Limit: 3},    // window
		{Pattern: sharedMix(), Limit: 1},               // tiny limit
		{Pattern: sharedMix(), Project: []string{"c"}}, // other projection
	}
	results := make([]*QueryResponse, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v QueryRequest) {
			defer wg.Done()
			qr, code := postQuery(t, ts, v)
			if code != http.StatusOK {
				t.Errorf("variant %d: status %d", i, code)
				return
			}
			results[i] = qr
		}(i, v)
		if i == 0 {
			time.Sleep(50 * time.Millisecond) // let the widest view become leader
		}
	}
	wg.Wait()
	wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 1; i < len(variants); i++ {
		if !results[i].Shared {
			t.Errorf("variant %d did not attach to the group", i)
		}
	}
	// Solo oracles: NoCache bypasses the shared path and the engine is
	// deterministic in sequential mode, so views must match byte for byte.
	for i, v := range variants {
		v.NoCache = true
		solo, code := postQuery(t, ts, v)
		if code != http.StatusOK {
			t.Fatalf("variant %d solo: status %d", i, code)
		}
		if !reflect.DeepEqual(results[i].Solutions, solo.Solutions) {
			t.Fatalf("variant %d: shared view differs from solo run:\nshared: %v\nsolo:   %v",
				i, results[i].Solutions, solo.Solutions)
		}
	}
}

// TestSharedScanDisabled: with the knob off, the fan-out scenario from
// TestSharedScanFanout degrades to solo evaluations — some of which shed,
// since six requests now compete for one slot and four queue places.
func TestSharedScanDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Store:             heavyStore(t),
		MaxConcurrent:     1,
		MaxQueue:          4,
		QueueWait:         50 * time.Millisecond,
		DisableSharedScan: true,
		CacheEntries:      -1,
	})
	wait := startPlug(t, ts.URL, 400)

	const clients = 6
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, codes[i] = postQuery(t, ts, QueryRequest{Pattern: sharedMix()})
		}(i)
	}
	wg.Wait()
	wait()

	shed := 0
	for _, code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if code != http.StatusOK {
				shed++
			}
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if shed == 0 {
		t.Fatal("DisableSharedScan: all six queries succeeded through one slot and four queue places — sharing still active?")
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "ringserve_shared_scan_groups_total 0") {
		t.Fatalf("metrics recorded a shared group despite DisableSharedScan:\n%s", metrics)
	}
}

// TestSharedScanIneligible: Distinct, OrderBy and NoCache queries bypass
// grouping and still answer correctly.
func TestSharedScanIneligible(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]QueryRequest{
		"distinct": {Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}, Project: []string{"x"}, Distinct: true},
		"orderby":  {Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}, OrderBy: []string{"x"}},
		"nocache":  {Pattern: []PatternJSON{{S: "?x", P: "knows", O: "?y"}}, NoCache: true},
	} {
		qr, code := postQuery(t, ts, req)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", name, code)
		}
		if qr.Shared {
			t.Fatalf("%s: ineligible query marked shared", name)
		}
		if qr.Count != 3 {
			t.Fatalf("%s: count = %d, want 3", name, qr.Count)
		}
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "ringserve_shared_scan_followers_total 0") {
		t.Fatalf("ineligible queries attached to groups:\n%s", metrics)
	}
}

// TestSharedScanFollowerDisconnect: a follower abandoning the group does
// not disturb the leader or the remaining followers.
func TestSharedScanFollowerDisconnect(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Store:         heavyStore(t),
		MaxConcurrent: 1,
		MaxQueue:      4,
		QueueWait:     5 * time.Second,
		CacheEntries:  -1,
	})
	wait := startPlug(t, ts.URL, 600)

	type result struct {
		qr   *QueryResponse
		code int
	}
	stay := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			qr, code := postQuery(t, ts, QueryRequest{Pattern: sharedMix()})
			stay <- result{qr, code}
		}()
	}
	time.Sleep(50 * time.Millisecond) // both attached (leader + follower)

	// Third member attaches, then its client goes away mid-wait.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(QueryRequest{Pattern: sharedMix()})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Log("disconnecting follower got a response before the cancel landed")
	}

	for i := 0; i < 2; i++ {
		r := <-stay
		if r.code != http.StatusOK {
			t.Fatalf("surviving member %d: status %d", i, r.code)
		}
	}
	wait()
}

// TestSharedScanTimeoutFanout: the shared evaluation hitting its deadline
// surfaces as TimedOut partial results on every member.
func TestSharedScanTimeoutFanout(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: heavyStore(t), MaxLimit: 1 << 30})
	const clients = 4
	type result struct {
		qr   *QueryResponse
		code int
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr, code := postQuery(t, ts, QueryRequest{
				Pattern: plugPattern(), Limit: 1 << 30, TimeoutMS: 300,
			})
			results[i] = result{qr, code}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("member %d: status %d", i, r.code)
		}
	}
	if !results[0].qr.TimedOut {
		t.Skip("3-hop join finished within 300ms on this machine")
	}
	for i, r := range results {
		if r.qr.Shared {
			if !r.qr.TimedOut {
				t.Fatalf("member %d: shared but not timed out while the group was", i)
			}
			if !reflect.DeepEqual(r.qr.Solutions, results[0].qr.Solutions) {
				t.Fatalf("member %d: partial solutions differ across the group", i)
			}
		}
		if r.qr.Count != len(r.qr.Solutions) {
			t.Fatalf("member %d: count %d != %d solutions", i, r.qr.Count, len(r.qr.Solutions))
		}
	}
}

// TestSharedScanLeaderDisconnectShedsFollowers: when the leader's client
// disconnects while the leader is waiting for admission, the followers
// must NOT inherit the leader's 499 — their clients are still connected.
// They are shed retryably (503 + Retry-After) so a retry starts a fresh
// group with a live leader.
func TestSharedScanLeaderDisconnectShedsFollowers(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Store:         heavyStore(t),
		MaxConcurrent: 1,
		MaxQueue:      4,
		QueueWait:     5 * time.Second,
		CacheEntries:  -1,
	})
	wait := startPlug(t, ts.URL, 600)

	// The leader joins first, with a client we can hang up.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(QueryRequest{Pattern: sharedMix()})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // leader attached, waiting for admission

	// Two followers attach to the leader's group.
	type result struct {
		code    int
		retry   string
		message string
	}
	followers := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				followers <- result{code: -1, message: err.Error()}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			followers <- result{code: resp.StatusCode, retry: resp.Header.Get("Retry-After"), message: string(b)}
		}()
	}
	time.Sleep(100 * time.Millisecond) // followers attached

	cancel() // the leader's client goes away mid-admission-wait
	<-leaderDone

	for i := 0; i < 2; i++ {
		r := <-followers
		if r.code != http.StatusServiceUnavailable {
			t.Fatalf("follower %d: status %d (%s), want 503: a follower must not inherit the leader's 499",
				i, r.code, r.message)
		}
		if r.retry == "" {
			t.Errorf("follower %d: 503 without Retry-After", i)
		}
	}
	wait()

	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `reason="leader_cancelled"`) {
		t.Fatalf("metrics missing the leader_cancelled shed reason:\n%s", metrics)
	}
}
