package server

// Shared-scan batch execution (DESIGN.md §13). Concurrently-arriving
// cache-miss queries whose canonical pattern forms coincide are grouped:
// the first arrival (the leader) runs one engine pass over the union of
// the group's needs — pattern only, no projection, limit raised to the
// largest member's offset+limit — and every member carves its own view
// (offset/limit slice, projection, decode, cache fill) out of the shared
// solution stream. Followers skip admission entirely, so a thundering
// herd of identical queries costs one admission slot and one evaluation
// instead of N.
//
// Grouping is by canonical pattern equality — the degenerate (total)
// case of prefix sharing: the canonical form is order-insensitive, so
// syntactically permuted patterns group together. A member may attach
// only while the group is in flight and only if its need (offset+limit)
// is covered by the leader's; otherwise it runs solo. Eligibility
// excludes Distinct (limit applies post-dedup, so a slice of the raw
// stream is not a slice of the distinct stream), OrderBy (the shared
// pass would have to adopt one member's sort), and NoCache (the load
// generator uses it to measure the engine, which sharing would skew).
//
// The group's evaluation runs under its own context, detached from the
// leader's request: a leader whose client disconnects keeps computing
// for its followers. Membership is counted; the last member to abandon
// the group cancels the evaluation so no orphaned pass burns a slot.

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/query"
)

// scanGroup is one in-flight shared evaluation. The result fields are
// written by the leader strictly before done closes and are immutable
// afterwards; everything else is guarded by sharedScans.mu.
type scanGroup struct {
	need     int  // offset+limit ceiling the leader evaluates to; immutable after join creates the group
	members  int  // attached requests still waiting //ringlint:guarded-by sharedScans.mu
	fanout   int  // followers that ever attached //ringlint:guarded-by sharedScans.mu
	finished bool // results published //ringlint:guarded-by sharedScans.mu

	done chan struct{} // closed once results (or failure) are published
	//ringlint:guarded-by sharedScans.mu
	cancel context.CancelFunc

	// Published by the leader before close(done):
	sols     []graph.Binding
	stats    ltj.EvalStats
	timedOut bool
	err      error // engine error other than timeout

	// Admission failure to mirror to followers (0 = none).
	failCode   int
	failMsg    string
	failReason string // shed reason label, when failCode sheds
}

// sharedScans is the registry of in-flight groups, keyed by cache-prefix
// + canonical pattern + timeout bucket. Groups are removed the moment
// their results publish, so the map only ever holds live evaluations.
type sharedScans struct {
	mu sync.Mutex
	m  map[string]*scanGroup //ringlint:guarded-by mu
}

// join attaches to the group for key, or creates it. Returns (g, true)
// for the leader, (g, false) for a follower, and (nil, false) when an
// existing group cannot cover need — the caller then runs solo.
func (sc *sharedScans) join(key string, need int) (*scanGroup, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if g, ok := sc.m[key]; ok {
		if need > g.need {
			return nil, false
		}
		g.members++
		g.fanout++
		return g, false
	}
	if sc.m == nil {
		sc.m = map[string]*scanGroup{}
	}
	g := &scanGroup{need: need, members: 1, done: make(chan struct{})}
	sc.m[key] = g
	return g, true
}

// setCancel installs the group context's cancel under the registry lock,
// so leave observes either nil (leader not yet running — impossible to
// abandon, the leader is still a member) or the live cancel.
func (sc *sharedScans) setCancel(g *scanGroup, cancel context.CancelFunc) {
	sc.mu.Lock()
	g.cancel = cancel
	sc.mu.Unlock()
}

// leave detaches one member. The last member to leave an unfinished
// group cancels its evaluation.
func (sc *sharedScans) leave(g *scanGroup) {
	sc.mu.Lock()
	g.members--
	if ringdebugEnabled {
		sc.debugCheckMembersLocked(g)
	}
	cancel := g.cancel
	abandon := g.members == 0 && !g.finished
	sc.mu.Unlock()
	if abandon && cancel != nil {
		cancel()
	}
}

// finish publishes the group's results: it leaves the registry (late
// arrivals start a fresh group) and wakes every waiter.
func (sc *sharedScans) finish(key string, g *scanGroup) {
	sc.mu.Lock()
	if ringdebugEnabled {
		sc.debugCheckFinishLocked(g)
	}
	delete(sc.m, key)
	g.finished = true
	sc.mu.Unlock()
	close(g.done)
}

// trySharedScan routes an eligible cache-miss query through the
// shared-scan path. It reports whether the request was handled; false
// means the caller proceeds with the ordinary solo evaluation.
func (s *Server) trySharedScan(w http.ResponseWriter, r *http.Request, idx index, req *QueryRequest, sel query.Select, cacheKey string, cacheable bool, predVars map[string]bool, start time.Time) bool {
	if s.cfg.DisableSharedScan || req.NoCache || req.Distinct || len(req.OrderBy) > 0 {
		return false
	}
	patKey, ok := (query.Select{Pattern: sel.Pattern}).CacheKey()
	if !ok {
		return false
	}
	// The timeout joins the key so every member shares the deadline the
	// leader evaluates under; CachePrefix keeps live-mode generations
	// apart exactly as it does for the result cache.
	key := idx.CachePrefix() + patKey + "|t" + strconv.FormatInt(sel.Timeout.Milliseconds(), 10)
	g, leader := s.scans.join(key, sel.Offset+sel.Limit)
	if g == nil {
		return false
	}
	if leader {
		s.leadScan(w, r, idx, req, sel, key, g, cacheKey, cacheable, predVars, start)
	} else {
		s.met.sharedFollowers.inc()
		s.followScan(w, r, idx, req, sel, g, cacheKey, cacheable, predVars, start)
	}
	return true
}

// leadScan runs the group's single evaluation: admission under the
// leader's own request context, then the stripped pattern-only Select
// under the group context, then fan-out.
func (s *Server) leadScan(w http.ResponseWriter, r *http.Request, idx index, req *QueryRequest, sel query.Select, key string, g *scanGroup, cacheKey string, cacheable bool, predVars map[string]bool, start time.Time) {
	//ringlint:detach -- the group outlives its leader; cancellation is member-count-driven, not request-driven
	gctx, gcancel := context.WithCancel(context.Background())
	s.scans.setCancel(g, gcancel)
	defer gcancel()

	// The leader's client disconnecting only abandons its membership;
	// the evaluation itself dies when the last member leaves.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-r.Context().Done():
			s.scans.leave(g)
		case <-g.done:
		case <-watchDone:
		}
	}()

	waitCtx, cancelWait := context.WithTimeout(r.Context(), s.cfg.QueueWait)
	err := s.adm.acquire(waitCtx, s.weight)
	cancelWait()
	if err != nil {
		// The whole group inherits the leader's admission verdict: if the
		// server cannot take one evaluation it cannot take N.
		switch {
		case errors.Is(err, errQueueFull):
			g.failCode, g.failMsg, g.failReason = http.StatusTooManyRequests,
				"server saturated: admission queue full", `reason="queue_full"`
		case r.Context().Err() != nil:
			g.failCode = statusClientClosedRequest
		default:
			g.failCode, g.failMsg, g.failReason = http.StatusServiceUnavailable,
				"server saturated: admission wait timed out", `reason="queue_timeout"`
		}
		s.scans.finish(key, g)
		s.respondFromGroup(w, idx, req, sel, g, cacheKey, cacheable, predVars, start, false)
		return
	}
	defer s.adm.release(s.weight)

	var st ltj.EvalStats
	run := sel
	run.Project = nil // members project their own views
	run.Offset = 0
	run.Limit = g.need
	run.Stats = &st
	run.Context = gctx
	iters := idx.PatternIters()
	sols, rerr := run.Run(ltj.IndexFunc(iters))
	s.met.ltjLeaps.add(int64(st.Leaps))
	s.met.ltjBinds.add(int64(st.Binds))
	s.met.ltjSeeks.add(int64(st.Seeks))
	s.met.ltjEnums.add(int64(st.Enumerations))
	s.met.ltjBatchDescents.add(int64(st.BatchDescents))
	s.met.ltjBatchEmits.add(int64(st.BatchEmits))

	g.sols, g.stats = sols, st
	g.timedOut = errors.Is(rerr, ltj.ErrTimeout)
	if rerr != nil && !g.timedOut {
		g.err = rerr
	}
	s.scans.finish(key, g)
	// fanout is stable after finish: the group has left the registry, so
	// no further join can touch it. A lone leader is just the solo path
	// with extra steps; only real fan-outs count as groups.
	if g.fanout > 0 { //ringlint:allow guardedby -- stable after finish: the group has left the registry
		s.met.sharedGroups.inc()
	}
	s.respondFromGroup(w, idx, req, sel, g, cacheKey, cacheable, predVars, start, false)
}

// followScan waits for the group's results (or the follower's own client
// to go away) and renders the follower's view of them.
func (s *Server) followScan(w http.ResponseWriter, r *http.Request, idx index, req *QueryRequest, sel query.Select, g *scanGroup, cacheKey string, cacheable bool, predVars map[string]bool, start time.Time) {
	select {
	case <-g.done:
	case <-r.Context().Done():
		s.scans.leave(g)
		s.met.queries.get(`outcome="cancelled"`).inc()
		w.WriteHeader(statusClientClosedRequest)
		return
	}
	s.respondFromGroup(w, idx, req, sel, g, cacheKey, cacheable, predVars, start, true)
}

// respondFromGroup renders one member's response from the published
// group state: failure mirroring, then the member's offset/limit slice
// of the shared stream, projected, decoded and cached under the
// member's own key.
func (s *Server) respondFromGroup(w http.ResponseWriter, idx index, req *QueryRequest, sel query.Select, g *scanGroup, cacheKey string, cacheable bool, predVars map[string]bool, start time.Time, shared bool) {
	switch {
	case g.failCode == statusClientClosedRequest:
		if shared {
			// The leader's client going away during the admission wait is
			// not the follower's doing: mirroring the 499 would tell a
			// still-connected client that *it* hung up. Shed the follower
			// retryably instead — a retry lands on a fresh group (the old
			// one left the registry at finish) with a new leader.
			s.met.queries.get(`outcome="shed"`).inc()
			s.met.shed.get(`reason="leader_cancelled"`).inc()
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusServiceUnavailable,
				"shared-scan leader cancelled during admission wait; retry")
			return
		}
		s.met.queries.get(`outcome="cancelled"`).inc()
		w.WriteHeader(statusClientClosedRequest)
		return
	case g.failCode != 0:
		s.met.queries.get(`outcome="shed"`).inc()
		if g.failReason != "" {
			s.met.shed.get(g.failReason).inc()
		}
		w.Header().Set("Retry-After", "1")
		jsonError(w, g.failCode, g.failMsg)
		return
	case g.err != nil:
		if errors.Is(g.err, ltj.ErrCancelled) {
			// Only reachable for the leader: a waiting follower keeps the
			// member count positive, so the group cannot be abandoned
			// under it.
			s.met.queries.get(`outcome="cancelled"`).inc()
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		s.met.queries.get(`outcome="error"`).inc()
		jsonError(w, http.StatusInternalServerError, g.err.Error())
		return
	}

	// The member's slice of the shared stream. The leader evaluated with
	// offset 0 and limit g.need ≥ sel.Offset+sel.Limit, so the slice is
	// exactly what an engine-native offset/limit would have produced.
	sols := g.sols
	lo := min(sel.Offset, len(sols))
	hi := len(sols)
	if sel.Limit > 0 && lo+sel.Limit < hi {
		hi = lo + sel.Limit
	}
	decoded := make([]map[string]string, hi-lo)
	for i, b := range sols[lo:hi] {
		m := idx.DecodeBinding(b, predVars)
		if sel.Project != nil {
			proj := make(map[string]string, len(sel.Project))
			for _, v := range sel.Project {
				if val, ok := m[v]; ok {
					proj[v] = val
				}
			}
			m = proj
		}
		decoded[i] = m
	}
	if cacheable && !g.timedOut {
		s.cache.put(cacheKey, decoded)
	}
	elapsed := time.Since(start)
	s.met.queryDur.observe(elapsed)
	outcome := `outcome="ok"`
	if g.timedOut {
		outcome = `outcome="timeout"`
	}
	s.met.queries.get(outcome).inc()
	s.respond(w, &QueryResponse{
		Solutions: decoded,
		TimedOut:  g.timedOut,
		ElapsedMS: msSince(start),
		Stats:     statsJSON(g.stats),
		Shared:    shared,
	})
}
