// Package testutil provides shared helpers for the test suites of the ring
// and the baseline indexes: random graph generation, random basic-graph-
// pattern generation covering every constant/variable shape, and oracle
// comparison against the naive evaluator.
package testutil

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/graph"
)

// RandomGraph generates n random triples over the given domains (duplicates
// collapse, so the result may be smaller than n).
func RandomGraph(rng *rand.Rand, n int, numSO, numP graph.ID) *graph.Graph {
	ts := make([]graph.Triple, n)
	for i := range ts {
		ts[i] = graph.Triple{
			S: graph.ID(rng.Intn(int(numSO))),
			P: graph.ID(rng.Intn(int(numP))),
			O: graph.ID(rng.Intn(int(numSO))),
		}
	}
	return graph.NewWithDomains(ts, numSO, numP)
}

// RandomTerm returns a constant with probability pConst, else one of the
// variable names. Constants are drawn from the domain but biased towards
// values present in the graph when biasTriples is non-empty.
func randomTerm(rng *rand.Rand, pos graph.Position, g *graph.Graph, vars []string, pConst float64) graph.Term {
	if rng.Float64() < pConst {
		ts := g.Triples()
		if len(ts) > 0 && rng.Float64() < 0.8 {
			t := ts[rng.Intn(len(ts))]
			switch pos {
			case graph.PosS:
				return graph.Const(t.S)
			case graph.PosP:
				return graph.Const(t.P)
			default:
				return graph.Const(t.O)
			}
		}
		if pos == graph.PosP {
			return graph.Const(graph.ID(rng.Intn(int(g.NumP()))))
		}
		return graph.Const(graph.ID(rng.Intn(int(g.NumSO()))))
	}
	return graph.Var(vars[rng.Intn(len(vars))])
}

// RandomPattern generates a basic graph pattern with the given number of
// triple patterns and variable pool size. Shapes cover all constant
// placements, shared variables across patterns, and (when allowRepeats)
// repeated variables within one pattern. Patterns after the first are
// required to share a variable with the preceding ones (or carry at least
// one constant), keeping the naive oracle's cross products bounded.
func RandomPattern(rng *rand.Rand, g *graph.Graph, numTriples, numVars int, pConst float64, allowRepeats bool) graph.Pattern {
	vars := make([]string, numVars)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	for {
		q := make(graph.Pattern, numTriples)
		seen := map[string]bool{}
		for i := range q {
			for attempt := 0; ; attempt++ {
				s := randomTerm(rng, graph.PosS, g, vars, pConst)
				p := randomTerm(rng, graph.PosP, g, vars, pConst)
				o := randomTerm(rng, graph.PosO, g, vars, pConst)
				if attempt > 20 {
					// Tiny variable pools can make every candidate collide
					// (e.g. one variable and pConst = 0 forces (?v,?v,?v));
					// force a constant predicate to guarantee progress.
					pid := graph.ID(0)
					if g.NumP() > 0 {
						pid = graph.ID(rng.Intn(int(g.NumP())))
					}
					p = graph.Const(pid)
				}
				tp := graph.TP(s, p, o)
				if !allowRepeats && hasRepeatedVar(tp) {
					continue
				}
				// Avoid variables shared between the predicate position and
				// subject/object positions: the ID spaces are disjoint, so
				// such queries are trivially empty and uninteresting.
				if predicateVarCollision(tp) {
					continue
				}
				if i > 0 && !connectsOrConstrained(tp, seen) {
					continue
				}
				q[i] = tp
				break
			}
			for _, v := range q[i].Vars() {
				seen[v] = true
			}
		}
		if !crossPatternPredicateCollision(q) {
			return q
		}
	}
}

// connectsOrConstrained reports whether the pattern shares a variable with
// the already-generated ones or has at least one constant (limiting the
// blowup of fully unconstrained cross products in the test oracle).
func connectsOrConstrained(tp graph.TriplePattern, seen map[string]bool) bool {
	if tp.NumConstants() > 0 {
		return true
	}
	for _, v := range tp.Vars() {
		if seen[v] {
			return true
		}
	}
	return false
}

func hasRepeatedVar(tp graph.TriplePattern) bool {
	for _, v := range tp.Vars() {
		if len(tp.Positions(v)) > 1 {
			return true
		}
	}
	return false
}

func predicateVarCollision(tp graph.TriplePattern) bool {
	if !tp.P.IsVar {
		return false
	}
	return (tp.S.IsVar && tp.S.Name == tp.P.Name) || (tp.O.IsVar && tp.O.Name == tp.P.Name)
}

func crossPatternPredicateCollision(q graph.Pattern) bool {
	predVars := map[string]bool{}
	soVars := map[string]bool{}
	for _, tp := range q {
		if tp.P.IsVar {
			predVars[tp.P.Name] = true
		}
		if tp.S.IsVar {
			soVars[tp.S.Name] = true
		}
		if tp.O.IsVar {
			soVars[tp.O.Name] = true
		}
	}
	for v := range predVars {
		if soVars[v] {
			return true
		}
	}
	return false
}

// SameSolutions compares two solution multisets over the given variables,
// returning a diagnostic string ("" when equal). Large sets are truncated
// in the diagnostic.
func SameSolutions(got, want []graph.Binding, vars []string) string {
	gc := graph.CanonicalizeBindings(got, vars)
	wc := graph.CanonicalizeBindings(want, vars)
	if reflect.DeepEqual(gc, wc) {
		return ""
	}
	trunc := func(xs []string) []string {
		if len(xs) > 10 {
			return xs[:10]
		}
		return xs
	}
	// Show the first differing entry for debugging.
	firstDiff := ""
	for i := 0; i < len(gc) && i < len(wc); i++ {
		if gc[i] != wc[i] {
			firstDiff = fmt.Sprintf("; first diff at %d: got %q want %q", i, gc[i], wc[i])
			break
		}
	}
	return fmt.Sprintf("got %d solutions (head %v), want %d solutions (head %v)%s",
		len(gc), trunc(gc), len(wc), trunc(wc), firstDiff)
}

// PaperGraph builds the Nobel-laureate graph of the paper's Figure 3 with
// ids 0 Bohr, 1 Strutt, 2 Thomson, 3 Thorne, 4 Wheeler, 5 Nobel and
// predicates 0 adv, 1 nom, 2 win (the paper's Figure 6 mapping, 0-based).
// It has the 13 distinct triples the paper indexes.
func PaperGraph() *graph.Graph {
	const (
		bohr, strutt, thomson, thorne, wheeler, nobel = 0, 1, 2, 3, 4, 5
		adv, nom, win                                 = 0, 1, 2
	)
	return graph.New([]graph.Triple{
		{S: bohr, P: adv, O: thomson},
		{S: thomson, P: adv, O: strutt},
		{S: wheeler, P: adv, O: bohr},
		{S: thorne, P: adv, O: wheeler},
		{S: nobel, P: nom, O: bohr},
		{S: nobel, P: nom, O: thomson},
		{S: nobel, P: nom, O: thorne},
		{S: nobel, P: nom, O: wheeler},
		{S: nobel, P: nom, O: strutt},
		{S: nobel, P: win, O: bohr},
		{S: nobel, P: win, O: thomson},
		{S: nobel, P: win, O: thorne},
		{S: nobel, P: win, O: strutt},
	})
}
