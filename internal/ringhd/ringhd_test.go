package ringhd

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func randomTuples(rng *rand.Rand, n, d int, u uint64) []Tuple {
	ts := make([]Tuple, n)
	for i := range ts {
		t := make(Tuple, d)
		for j := range t {
			t[j] = Value(rng.Int63n(int64(u)))
		}
		ts[i] = t
	}
	return ts
}

// naiveCount counts tuples matching the bound attribute values.
func naiveCount(ts []Tuple, bound map[int]Value) int {
	cnt := 0
	for _, t := range ts {
		ok := true
		for a, v := range bound {
			if t[a] != v {
				ok = false
				break
			}
		}
		if ok {
			cnt++
		}
	}
	return cnt
}

func naiveLeap(ts []Tuple, bound map[int]Value, a int, c Value) (Value, bool) {
	best, found := Value(0), false
	for _, t := range ts {
		ok := t[a] >= c
		for b, v := range bound {
			if t[b] != v {
				ok = false
				break
			}
		}
		if ok && (!found || t[a] < best) {
			best, found = t[a], true
		}
	}
	return best, found
}

func dedupForTest(ts []Tuple, d int) []Tuple {
	seen := map[string]bool{}
	var out []Tuple
	for _, t := range ts {
		k := fmt.Sprint(t)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

func TestTupleRetrieval(t *testing.T) {
	for _, d := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(100 + d)))
		raw := randomTuples(rng, 200, d, 12)
		idx := New(raw, d, 12)
		distinct := dedupForTest(raw, d)
		if idx.Len() != len(distinct) {
			t.Fatalf("d=%d: Len = %d, want %d", d, idx.Len(), len(distinct))
		}
		got := make([]Tuple, idx.Len())
		for i := range got {
			got[i] = idx.TupleAt(i)
		}
		canon := func(ts []Tuple) []string {
			out := make([]string, len(ts))
			for i, x := range ts {
				out[i] = fmt.Sprint(x)
			}
			sort.Strings(out)
			return out
		}
		if !reflect.DeepEqual(canon(got), canon(distinct)) {
			t.Fatalf("d=%d: retrieved tuples differ from input", d)
		}
	}
}

func TestCountAndLeapAgainstOracle(t *testing.T) {
	for _, d := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(200 + d)))
		raw := randomTuples(rng, 300, d, 8)
		distinct := dedupForTest(raw, d)
		idx := New(raw, d, 8)
		for trial := 0; trial < 300; trial++ {
			// Random bound set of size 0..d-1, then leap a random free attr.
			bound := map[int]Value{}
			perm := rng.Perm(d)
			k := rng.Intn(d)
			for _, a := range perm[:k] {
				bound[a] = Value(rng.Int63n(8))
			}
			if got, want := idx.Count(bound), naiveCount(distinct, bound); got != want {
				t.Fatalf("d=%d: Count(%v) = %d, want %d", d, bound, got, want)
			}
			a := perm[k]
			c := Value(rng.Int63n(8))
			gv, gok := idx.Leap(bound, a, c)
			wv, wok := naiveLeap(distinct, bound, a, c)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("d=%d: Leap(%v, %d, %d) = (%d,%v), want (%d,%v)",
					d, bound, a, c, gv, gok, wv, wok)
			}
		}
	}
}

// naiveJoin evaluates the query by brute force.
func naiveJoin(ts []Tuple, q Query) []map[string]Value {
	var out []map[string]Value
	var rec func(i int, b map[string]Value)
	rec = func(i int, b map[string]Value) {
		if i == len(q) {
			cp := map[string]Value{}
			for k, v := range b {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		for _, t := range ts {
			ext := map[string]Value{}
			for k, v := range b {
				ext[k] = v
			}
			ok := true
			for a, term := range q[i] {
				if !term.IsVar {
					if t[a] != term.Value {
						ok = false
						break
					}
					continue
				}
				if v, bound := ext[term.Name]; bound {
					if v != t[a] {
						ok = false
						break
					}
				} else {
					ext[term.Name] = t[a]
				}
			}
			if ok {
				rec(i+1, ext)
			}
		}
	}
	rec(0, map[string]Value{})
	return out
}

func canonBindings(bs []map[string]Value, vars []string) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		s := ""
		for _, v := range vars {
			s += fmt.Sprintf("%s=%d;", v, b[v])
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func TestEvaluateAgainstOracle(t *testing.T) {
	for _, d := range []int{4, 5} {
		rng := rand.New(rand.NewSource(int64(300 + d)))
		raw := randomTuples(rng, 120, d, 5)
		distinct := dedupForTest(raw, d)
		idx := New(raw, d, 5)
		for trial := 0; trial < 25; trial++ {
			// Random query of 1-3 patterns over a pool of variables. The
			// pool must exceed the arity: variables may not repeat within a
			// pattern, so a pattern can need up to d distinct names.
			nq := 1 + rng.Intn(3)
			varPool := []string{"x", "y", "z", "w", "u", "t"}[:d+1]
			q := make(Query, nq)
			for i := range q {
				tp := make(TuplePattern, d)
				used := map[string]bool{}
				for a := range tp {
					if rng.Intn(3) == 0 {
						tp[a] = C(Value(rng.Int63n(5)))
						continue
					}
					// Pick an unused-in-this-pattern variable.
					for {
						name := varPool[rng.Intn(len(varPool))]
						if !used[name] {
							used[name] = true
							tp[a] = V(name)
							break
						}
					}
				}
				q[i] = tp
			}
			want := naiveJoin(distinct, q)
			got, err := idx.Evaluate(q, 0)
			if err != nil {
				t.Fatalf("d=%d query %v: %v", d, q, err)
			}
			// Collect variable list.
			varSet := map[string]bool{}
			var vars []string
			for _, tp := range q {
				for _, term := range tp {
					if term.IsVar && !varSet[term.Name] {
						varSet[term.Name] = true
						vars = append(vars, term.Name)
					}
				}
			}
			gotB := make([]map[string]Value, len(got))
			for i, b := range got {
				gotB[i] = b
			}
			if !reflect.DeepEqual(canonBindings(gotB, vars), canonBindings(want, vars)) {
				t.Fatalf("d=%d query %v: got %d solutions, want %d", d, q, len(got), len(want))
			}
		}
	}
}

func TestRepeatedVariableRejected(t *testing.T) {
	idx := New([]Tuple{{0, 1, 2, 3}}, 4, 5)
	_, err := idx.Evaluate(Query{{V("x"), V("x"), C(2), C(3)}}, 0)
	if err == nil {
		t.Fatal("repeated variable within a pattern was accepted")
	}
}

func TestArityMismatchRejected(t *testing.T) {
	idx := New([]Tuple{{0, 1, 2, 3}}, 4, 5)
	_, err := idx.Evaluate(Query{{V("x"), C(1), C(2)}}, 0)
	if err == nil {
		t.Fatal("wrong-arity pattern was accepted")
	}
}

func TestOrdersCountMatchesCover(t *testing.T) {
	// d=3 backward-only needs 2 cycles; d=4 and 5 stay far below d!.
	for d, maxOrders := range map[int]int{3: 2, 4: 4, 5: 9} {
		idx := New(randomTuples(rand.New(rand.NewSource(1)), 50, d, 6), d, 6)
		if idx.Orders() > maxOrders {
			t.Errorf("d=%d: %d orders, want <= %d", d, idx.Orders(), maxOrders)
		}
	}
}

func TestLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := New(randomTuples(rng, 200, 4, 4), 4, 4)
	got, err := idx.Evaluate(Query{{V("a"), V("b"), V("c"), V("d")}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("limit 5: got %d", len(got))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	raw := randomTuples(rng, 300, 4, 9)
	idx := New(raw, 4, 9)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != idx.Len() || got.D() != idx.D() || got.Orders() != idx.Orders() {
		t.Fatalf("header mismatch after round-trip")
	}
	// Every tuple and a batch of counts/leaps must agree.
	for i := 0; i < got.Len(); i++ {
		a, b := idx.TupleAt(i), got.TupleAt(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("TupleAt(%d) differs after round-trip", i)
			}
		}
	}
	for trial := 0; trial < 100; trial++ {
		bound := map[int]Value{rng.Intn(4): Value(rng.Int63n(9))}
		if idx.Count(bound) != got.Count(bound) {
			t.Fatalf("Count(%v) differs after round-trip", bound)
		}
	}
}

func TestSerializationCorrupt(t *testing.T) {
	idx := New([]Tuple{{0, 1, 2, 3}, {1, 2, 3, 0}}, 4, 5)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("accepted truncated index")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 1
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Corrupt a cycle entry to a duplicate attribute.
	bad2 := append([]byte(nil), data...)
	bad2[40] = bad2[48] // cycle[0] = cycle[1]
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Error("accepted corrupt cycle")
	}
}
