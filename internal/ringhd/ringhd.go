// Package ringhd generalises the ring to relations of arity d (Section 6
// of the paper, Theorem 6.1). A d-ary ring indexes the tuples once per
// cyclic attribute order in a small cover of orders; within one order the
// structure is exactly the triple ring's, with d zones instead of three:
// zone j holds the rotations starting at the order's j-th attribute,
// sorted by the rotation, and stores the cyclically preceding attribute's
// values as its BWT column, with a per-zone C array.
//
// Following the implementation the paper sketches at the end of Section 6,
// binding always proceeds by backward extension (the unidirectional-BWT
// strategy): the index materialises the cycles of orders.BackwardCover(d),
// which guarantee that for every bound set B and next attribute a there is
// a cycle where B is a contiguous arc immediately preceded by a. A leap
// then anchors B in that cycle — a chain of at most d backward extensions,
// O(d log U) — and answers with one range-next-value query, matching the
// O(Q*·d²·m·log U) bound of Theorem 6.1.
//
// For d = 3 the cover has two cycles (the Brisaboa-style configuration);
// the bidirectional triple ring in package ring needs only one, which is
// the paper's headline result.
package ringhd

import (
	"fmt"
	"sort"

	"repro/internal/intvec"
	"repro/internal/orders"
	"repro/internal/wavelet"
)

// Value is one attribute value. All attributes share the domain [0, U).
type Value = uint32

// Tuple is a d-ary tuple.
type Tuple []Value

// Index is the d-dimensional ring.
type Index struct {
	d     int
	n     int
	u     uint64 // shared attribute domain size
	rings []*cycleRing
}

// cycleRing is the ring structure for one cyclic attribute order.
type cycleRing struct {
	cycle  []int             // cycle[j] = attribute whose rotations start zone j
	zoneOf []int             // zoneOf[attr] = j with cycle[j] == attr
	cols   []*wavelet.Matrix // per zone: values of attribute cycle[j-1]
	c      []*intvec.Vector  // per zone: C array over attribute cycle[j]
}

// New builds the index over the given tuples. All tuples must have the
// same arity d >= 2 and values below u.
func New(tuples []Tuple, d int, u uint64) *Index {
	for _, t := range tuples {
		if len(t) != d {
			panic(fmt.Sprintf("ringhd: tuple arity %d, want %d", len(t), d))
		}
		for _, v := range t {
			if uint64(v) >= u {
				panic(fmt.Sprintf("ringhd: value %d outside domain [0,%d)", v, u))
			}
		}
	}
	// Deduplicate.
	ts := make([]Tuple, len(tuples))
	copy(ts, tuples)
	sortTuples(ts, identity(d))
	ts = dedup(ts)

	idx := &Index{d: d, n: len(ts), u: u}
	for _, cycle := range orders.BackwardCover(d) {
		idx.rings = append(idx.rings, buildCycleRing(ts, cycle, d, u))
	}
	return idx
}

func identity(d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortTuples(ts []Tuple, attrOrder []int) {
	sort.Slice(ts, func(i, j int) bool {
		for _, a := range attrOrder {
			if ts[i][a] != ts[j][a] {
				return ts[i][a] < ts[j][a]
			}
		}
		return false
	})
}

func dedup(ts []Tuple) []Tuple {
	if len(ts) == 0 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if !equalTuple(t, out[len(out)-1]) {
			out = append(out, t)
		}
	}
	return out
}

func equalTuple(a, b Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func buildCycleRing(ts []Tuple, cycle []int, d int, u uint64) *cycleRing {
	r := &cycleRing{cycle: cycle, zoneOf: make([]int, d)}
	for j, a := range cycle {
		r.zoneOf[a] = j
	}
	sorted := make([]Tuple, len(ts))
	copy(sorted, ts)
	for j := 0; j < d; j++ {
		// Rotation order starting at zone j: cycle[j], cycle[j+1], ...
		rot := make([]int, d)
		for k := 0; k < d; k++ {
			rot[k] = cycle[(j+k)%d]
		}
		sortTuples(sorted, rot)
		// Column: the preceding attribute cycle[j-1].
		prevAttr := cycle[(j-1+d)%d]
		col := make([]uint64, len(sorted))
		counts := make([]uint64, u+1)
		for i, t := range sorted {
			col[i] = uint64(t[prevAttr])
			counts[t[cycle[j]]+1]++
		}
		for i := uint64(1); i <= u; i++ {
			counts[i] += counts[i-1]
		}
		r.cols = append(r.cols, wavelet.New(col, u, wavelet.Options{}))
		r.c = append(r.c, intvec.New(counts))
	}
	return r
}

// D returns the arity.
func (idx *Index) D() int { return idx.d }

// Len returns the number of distinct indexed tuples.
func (idx *Index) Len() int { return idx.n }

// Orders returns how many cyclic orders the index materialises.
func (idx *Index) Orders() int { return len(idx.rings) }

// SizeBytes returns the total footprint.
func (idx *Index) SizeBytes() int {
	total := 48
	for _, r := range idx.rings {
		for j := range r.cols {
			total += r.cols[j].SizeBytes() + r.c[j].SizeBytes()
		}
	}
	return total
}

// arcOf checks whether the bound attributes form a contiguous arc of the
// cycle; it returns the start zone and length when they do.
func (r *cycleRing) arcOf(bound map[int]Value) (start, length int, ok bool) {
	d := len(r.cycle)
	k := len(bound)
	if k == 0 {
		return 0, 0, true
	}
	inB := make([]bool, d)
	for a := range bound {
		inB[r.zoneOf[a]] = true
	}
	if k == d {
		return 0, d, true
	}
	// The arc start is the unique bound zone whose predecessor is unbound.
	start = -1
	for j := 0; j < d; j++ {
		if inB[j] && !inB[(j-1+d)%d] {
			if start >= 0 {
				return 0, 0, false // more than one run: not contiguous
			}
			start = j
		}
	}
	if start < 0 {
		return 0, 0, false
	}
	for j := 0; j < k; j++ {
		if !inB[(start+j)%d] {
			return 0, 0, false
		}
	}
	return start, k, true
}

// anchor computes the BWT range of the bound arc in this cycle, ending in
// the zone of the arc's first attribute: a chain of backward extensions
// (at most d LF-style steps).
func (r *cycleRing) anchor(bound map[int]Value, start, length, n int) (lo, hi int) {
	d := len(r.cycle)
	if length == 0 {
		return 0, n
	}
	endZone := (start + length - 1) % d
	v := uint64(bound[r.cycle[endZone]])
	lo = int(r.c[endZone].Get(int(v)))
	hi = int(r.c[endZone].Get(int(v) + 1))
	for z := endZone; z != start; z = (z - 1 + d) % d {
		pz := (z - 1 + d) % d
		pv := uint64(bound[r.cycle[pz]])
		base := int(r.c[pz].Get(int(pv)))
		lo = base + r.cols[z].Rank(pv, lo)
		hi = base + r.cols[z].Rank(pv, hi)
	}
	return lo, hi
}

// Count returns the number of tuples whose attributes match the bound
// values. The bound set must be contiguous in some indexed cycle, which
// the backward cover guarantees.
func (idx *Index) Count(bound map[int]Value) int {
	if len(bound) == 0 {
		return idx.n
	}
	for _, r := range idx.rings {
		if start, length, ok := r.arcOf(bound); ok {
			lo, hi := r.anchor(bound, start, length, idx.n)
			return hi - lo
		}
	}
	panic(fmt.Sprintf("ringhd: bound set %v not contiguous in any indexed cycle", bound))
}

// Leap returns the smallest value >= c that attribute a can take so that
// some tuple matches bound ∪ {a: value}; ok is false if none exists.
// a must be unbound.
func (idx *Index) Leap(bound map[int]Value, a int, c Value) (Value, bool) {
	if uint64(c) >= idx.u {
		return 0, false
	}
	if len(bound) == 0 {
		// Next value of attribute a with a non-empty block, via the C
		// array of a's zone in any ring.
		r := idx.rings[0]
		z := r.zoneOf[a]
		base := r.c[z].Get(int(c))
		j := r.c[z].SearchPrefix(base + 1)
		if j >= r.c[z].Len() {
			return 0, false
		}
		return Value(j - 1), true
	}
	// Find a cycle where bound is an arc immediately preceded by a.
	for _, r := range idx.rings {
		start, length, ok := r.arcOf(bound)
		if !ok || length == 0 {
			continue
		}
		d := len(r.cycle)
		if r.cycle[(start-1+d)%d] != a {
			continue
		}
		lo, hi := r.anchor(bound, start, length, idx.n)
		v, found := r.cols[start].RangeNextValue(lo, hi, uint64(c))
		if !found {
			return 0, false
		}
		return Value(v), true
	}
	panic(fmt.Sprintf("ringhd: no indexed cycle supports leap (bound=%v, attr=%d)", bound, a))
}

// TupleAt reconstructs the i-th tuple (in the first cycle's zone-0 order)
// by walking the LF cycle, demonstrating that the d-ary ring also replaces
// the raw data.
func (idx *Index) TupleAt(i int) Tuple {
	r := idx.rings[0]
	d := idx.d
	out := make(Tuple, d)
	z := 0
	pos := i
	for step := 0; step < d; step++ {
		pz := (z - 1 + d) % d
		v := r.cols[z].Access(pos)
		out[r.cycle[pz]] = Value(v)
		pos = int(r.c[pz].Get(int(v))) + r.cols[z].Rank(v, pos)
		z = pz
	}
	return out
}
