package ringhd

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/intvec"
	"repro/internal/wavelet"
)

const magic = uint64(0x52494e4748445631) // "RINGHDV1"

// WriteTo serializes the d-ary ring: header, the cycle covers, then each
// zone's column and C array.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	var total int64
	hdr := []uint64{magic, uint64(idx.d), uint64(idx.n), idx.u, uint64(len(idx.rings))}
	if err := writeU64s(w, &total, hdr...); err != nil {
		return total, err
	}
	for _, r := range idx.rings {
		cyc := make([]uint64, len(r.cycle))
		for i, a := range r.cycle {
			cyc[i] = uint64(a)
		}
		if err := writeU64s(w, &total, cyc...); err != nil {
			return total, err
		}
		for j := range r.cols {
			n, err := r.cols[j].WriteTo(w)
			total += n
			if err != nil {
				return total, err
			}
			n, err = r.c[j].WriteTo(w)
			total += n
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Read deserializes an index written by WriteTo.
func Read(rd io.Reader) (*Index, error) {
	hdr, err := readU64s(rd, 5)
	if err != nil {
		return nil, err
	}
	if hdr[0] != magic {
		return nil, errors.New("ringhd: bad magic")
	}
	idx := &Index{d: int(hdr[1]), n: int(hdr[2]), u: hdr[3]}
	nRings := int(hdr[4])
	if idx.d < 2 || idx.d > 64 || idx.n < 0 || nRings < 1 || nRings > 10000 {
		return nil, fmt.Errorf("ringhd: corrupt header (d=%d n=%d rings=%d)", idx.d, idx.n, nRings)
	}
	for ri := 0; ri < nRings; ri++ {
		cyc, err := readU64s(rd, idx.d)
		if err != nil {
			return nil, err
		}
		r := &cycleRing{cycle: make([]int, idx.d), zoneOf: make([]int, idx.d)}
		seen := make([]bool, idx.d)
		for i, a := range cyc {
			if a >= uint64(idx.d) || seen[a] {
				return nil, errors.New("ringhd: corrupt cycle")
			}
			seen[a] = true
			r.cycle[i] = int(a)
			r.zoneOf[a] = i
		}
		for j := 0; j < idx.d; j++ {
			col, err := wavelet.Read(rd)
			if err != nil {
				return nil, fmt.Errorf("ringhd: ring %d zone %d column: %w", ri, j, err)
			}
			if col.Len() != idx.n {
				return nil, errors.New("ringhd: zone length mismatch")
			}
			cArr, err := intvec.Read(rd)
			if err != nil {
				return nil, fmt.Errorf("ringhd: ring %d zone %d C array: %w", ri, j, err)
			}
			if cArr.Len() != int(idx.u)+1 {
				return nil, errors.New("ringhd: C array length mismatch")
			}
			r.cols = append(r.cols, col)
			r.c = append(r.c, cArr)
		}
		idx.rings = append(idx.rings, r)
	}
	return idx, nil
}

func writeU64s(w io.Writer, total *int64, vs ...uint64) error {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(v >> (8 * j))
		}
	}
	n, err := w.Write(buf)
	*total += int64(n)
	return err
}

func readU64s(r io.Reader, n int) ([]uint64, error) {
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("ringhd: short read: %w", err)
	}
	vs := make([]uint64, n)
	for i := range vs {
		for j := 0; j < 8; j++ {
			vs[i] |= uint64(buf[8*i+j]) << (8 * j)
		}
	}
	return vs, nil
}
