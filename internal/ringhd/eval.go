package ringhd

import (
	"fmt"
	"math"
	"sort"
)

// Term is one component of a tuple pattern: a constant or a named variable.
type Term struct {
	IsVar bool
	Value Value
	Name  string
}

// C returns a constant term.
func C(v Value) Term { return Term{Value: v} }

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Name: name} }

// TuplePattern is a d-ary pattern. Per Theorem 6.1, a variable must not
// repeat within one pattern (the paper shows the general case costs a
// super-exponential factor in d); New*Query validates this.
type TuplePattern []Term

// Query is a conjunctive query over d-ary tuple patterns.
type Query []TuplePattern

// Binding is one solution.
type Binding map[string]Value

// Evaluate runs a leapfrog join over the d-ary ring, in the paper's
// backward-only regime. limit <= 0 means unlimited.
func (idx *Index) Evaluate(q Query, limit int) ([]Binding, error) {
	if len(q) == 0 {
		return nil, nil
	}
	type patState struct {
		pattern TuplePattern
		bound   map[int]Value // attribute -> value (constants + join values)
	}
	states := make([]*patState, 0, len(q))
	varPats := map[string][]int{} // variable -> indices into states
	varAttr := map[string][]int{} // parallel: attribute within that pattern
	var vars []string
	for pi, tp := range q {
		if len(tp) != idx.d {
			return nil, fmt.Errorf("ringhd: pattern %d arity %d, want %d", pi, len(tp), idx.d)
		}
		st := &patState{pattern: tp, bound: map[int]Value{}}
		seen := map[string]bool{}
		for a, t := range tp {
			if !t.IsVar {
				st.bound[a] = t.Value
				continue
			}
			if seen[t.Name] {
				return nil, fmt.Errorf("ringhd: variable %q repeated in pattern %d (unsupported per Theorem 6.1)", t.Name, pi)
			}
			seen[t.Name] = true
			if _, ok := varPats[t.Name]; !ok {
				vars = append(vars, t.Name)
			}
			varPats[t.Name] = append(varPats[t.Name], len(states))
			varAttr[t.Name] = append(varAttr[t.Name], a)
		}
		states = append(states, st)
		if idx.Count(st.bound) == 0 {
			return nil, nil
		}
	}

	// Variable order: increasing minimum cardinality (Section 4.3 carried
	// over), connectivity-preferring.
	sort.SliceStable(vars, func(i, j int) bool {
		ci, cj := math.MaxInt, math.MaxInt
		for _, pi := range varPats[vars[i]] {
			if c := idx.Count(states[pi].bound); c < ci {
				ci = c
			}
		}
		for _, pi := range varPats[vars[j]] {
			if c := idx.Count(states[pi].bound); c < cj {
				cj = c
			}
		}
		return ci < cj
	})

	var out []Binding
	binding := Binding{}
	var search func(j int) bool
	search = func(j int) bool {
		if j == len(vars) {
			cp := make(Binding, len(binding))
			for k, v := range binding {
				cp[k] = v
			}
			out = append(out, cp)
			return limit <= 0 || len(out) < limit
		}
		name := vars[j]
		pis, ats := varPats[name], varAttr[name]
		c := Value(0)
		for {
			// Leapfrog intersection across the patterns mentioning name.
			agreed := false
			for !agreed {
				agreed = true
				for k, pi := range pis {
					v, ok := idx.Leap(states[pi].bound, ats[k], c)
					if !ok {
						return true // this variable is exhausted
					}
					if v != c {
						c = v
						agreed = false
					}
				}
			}
			for k, pi := range pis {
				states[pi].bound[ats[k]] = c
			}
			alive := true
			for _, pi := range pis {
				if idx.Count(states[pi].bound) == 0 {
					alive = false
					break
				}
			}
			if alive {
				binding[name] = c
				if !search(j + 1) {
					for k, pi := range pis {
						delete(states[pi].bound, ats[k])
					}
					delete(binding, name)
					return false
				}
				delete(binding, name)
			}
			for k, pi := range pis {
				delete(states[pi].bound, ats[k])
			}
			if c == math.MaxUint32 {
				return true
			}
			c++
		}
	}
	search(0)
	return out, nil
}
