package rpq

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// ParsePath parses a SPARQL-flavoured property-path expression over
// predicate names:
//
//	path  := seq ('|' seq)*            alternation
//	seq   := step ('/' step)*          concatenation
//	step  := atom ('*' | '+' | '?')*   repetition
//	atom  := '^' atom                  inverse
//	       | '(' path ')'
//	       | predicate-name
//
// resolve maps predicate names to identifiers; unknown names are
// reported as errors.
func ParsePath(s string, resolve func(string) (graph.ID, bool)) (Expr, error) {
	p := &pathParser{input: s, resolve: resolve}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", p.input[p.pos:], p.pos)
	}
	return e, nil
}

type pathParser struct {
	input   string
	pos     int
	resolve func(string) (graph.ID, bool)
}

func (p *pathParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *pathParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *pathParser) parseAlt() (Expr, error) {
	e, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		r, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		e = Alt{e, r}
	}
	return e, nil
}

func (p *pathParser) parseSeq() (Expr, error) {
	e, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	for p.peek() == '/' {
		p.pos++
		r, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		e = Seq{e, r}
	}
	return e, nil
}

func (p *pathParser) parseStep() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			e = Star{e}
		case '+':
			p.pos++
			e = Plus{e}
		case '?':
			p.pos++
			e = Opt{e}
		default:
			return e, nil
		}
	}
}

func (p *pathParser) parseAtom() (Expr, error) {
	switch c := p.peek(); {
	case c == '^':
		p.pos++
		inner, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return invert(inner)
	case c == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == 0:
		return nil, fmt.Errorf("rpq: unexpected end of expression")
	default:
		start := p.pos
		for p.pos < len(p.input) && !strings.ContainsRune("/|()*+?^ \t", rune(p.input[p.pos])) {
			p.pos++
		}
		name := p.input[start:p.pos]
		if name == "" {
			return nil, fmt.Errorf("rpq: expected predicate name at offset %d", p.pos)
		}
		id, ok := p.resolve(name)
		if !ok {
			return nil, fmt.Errorf("rpq: unknown predicate %q", name)
		}
		return Pred{P: id}, nil
	}
}

// invert flips the direction of an expression (^(a/b) = ^b/^a, etc.).
func invert(e Expr) (Expr, error) {
	switch x := e.(type) {
	case Pred:
		return Pred{P: x.P, Inverse: !x.Inverse}, nil
	case Seq:
		l, err := invert(x.L)
		if err != nil {
			return nil, err
		}
		r, err := invert(x.R)
		if err != nil {
			return nil, err
		}
		return Seq{r, l}, nil
	case Alt:
		l, err := invert(x.L)
		if err != nil {
			return nil, err
		}
		r, err := invert(x.R)
		if err != nil {
			return nil, err
		}
		return Alt{l, r}, nil
	case Star:
		i, err := invert(x.X)
		if err != nil {
			return nil, err
		}
		return Star{i}, nil
	case Plus:
		i, err := invert(x.X)
		if err != nil {
			return nil, err
		}
		return Plus{i}, nil
	case Opt:
		i, err := invert(x.X)
		if err != nil {
			return nil, err
		}
		return Opt{i}, nil
	default:
		return nil, fmt.Errorf("rpq: cannot invert %T", e)
	}
}
