package rpq

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/testutil"
)

func resolver(name string) (graph.ID, bool) {
	switch name {
	case "adv":
		return 0, true
	case "nom":
		return 1, true
	case "win":
		return 2, true
	}
	return 0, false
}

func TestParsePathShapes(t *testing.T) {
	cases := map[string]string{
		"adv":           "0",
		"^adv":          "^0",
		"adv/nom":       "(0/1)",
		"adv|win":       "(0|2)",
		"adv*":          "(0)*",
		"adv+":          "(0)+",
		"adv?":          "(0)?",
		"(adv/nom)*":    "((0/1))*",
		"^(adv/nom)":    "(^1/^0)", // inverse distributes and reverses
		"adv / nom|win": "((0/1)|2)",
		"^(adv|win)+":   "((^0|^2))+",
	}
	for input, want := range cases {
		e, err := ParsePath(input, resolver)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", input, err)
		}
		if e.String() != want {
			t.Errorf("ParsePath(%q) = %s, want %s", input, e, want)
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, bad := range []string{
		"", "adv/", "|adv", "(adv", "adv)", "unknown", "adv//nom", "^", "()",
	} {
		if _, err := ParsePath(bad, resolver); err == nil {
			t.Errorf("ParsePath(%q) accepted", bad)
		}
	}
}

func TestParsedPathEvaluates(t *testing.T) {
	g := testutil.PaperGraph()
	el := ringLister(g)
	// Advisor ancestors of Strutt: ^adv+ from Strutt(1) climbs the chain.
	e, err := ParsePath("^adv+", resolver)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedIDs(Compile(e).Reach(el, 1))
	// adv edges: 0->2, 2->1, 4->0, 3->4; inverse from 1: 2, then 0, then 4, then 3.
	want := []graph.ID{0, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("^adv+ from Strutt = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("^adv+ from Strutt = %v, want %v", got, want)
		}
	}
	// Inverted parse equals manual construction.
	e2, _ := ParsePath("^(adv/nom)", resolver)
	m := Path(Inv(1), Inv(0))
	if e2.String() != m.String() {
		t.Errorf("inverse of sequence: %s vs %s", e2, m)
	}
}

func TestParsePrecedence(t *testing.T) {
	// '/' binds tighter than '|': a/b|c = (a/b)|c.
	e, err := ParsePath("adv/nom|win", resolver)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Alt); !ok {
		t.Fatalf("top-level operator of a/b|c is %T, want Alt", e)
	}
}
