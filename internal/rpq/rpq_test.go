package rpq

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func ringLister(g *graph.Graph) EdgeLister {
	r := ring.New(g, ring.Options{})
	return IndexLister{Idx: ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return r.NewPatternState(tp)
	})}
}

// naiveReach is the oracle: BFS over (node, NFA-state) pairs using an
// explicit adjacency representation.
func naiveReach(g *graph.Graph, src graph.ID, e Expr) []graph.ID {
	a := Compile(e)
	return a.Reach(naiveLister{g}, src)
}

type naiveLister struct{ g *graph.Graph }

func (nl naiveLister) Neighbors(v, p graph.ID, inverse bool, visit func(graph.ID) bool) {
	for _, t := range nl.g.Triples() {
		if t.P != p {
			continue
		}
		if !inverse && t.S == v {
			if !visit(t.O) {
				return
			}
		}
		if inverse && t.O == v {
			if !visit(t.S) {
				return
			}
		}
	}
}

func sortedIDs(xs []graph.ID) []graph.ID {
	out := append([]graph.ID(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestReachPaperGraph(t *testing.T) {
	// Nobel graph: 0 Bohr, 1 Strutt, 2 Thomson, 3 Thorne, 4 Wheeler,
	// 5 Nobel; predicates 0 adv, 1 nom, 2 win.
	g := testutil.PaperGraph()
	el := ringLister(g)

	// adv+ from Thorne: the advisor chain Thorne->Wheeler->Bohr->Thomson->Strutt.
	a := Compile(Plus{P(0)})
	got := sortedIDs(a.Reach(el, 3))
	want := []graph.ID{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("adv+ from Thorne = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("adv+ from Thorne = %v, want %v", got, want)
		}
	}

	// adv* includes the source itself.
	a = Compile(Star{P(0)})
	got = a.Reach(el, 3)
	if len(got) != 5 {
		t.Fatalf("adv* from Thorne has %d nodes, want 5 (incl. source)", len(got))
	}

	// win/^nom: winners x such that Nobel → x by win then inverse nom back
	// to Nobel... from Nobel: win then ^nom returns to Nobel only.
	a = Compile(Path(P(2), Inv(1)))
	got = a.Reach(el, 5)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("win/^nom from Nobel = %v, want [5]", got)
	}

	// nom|win from Nobel: all nominees and winners.
	a = Compile(AnyOf(P(1), P(2)))
	got = sortedIDs(a.Reach(el, 5))
	if len(got) != 5 {
		t.Fatalf("nom|win from Nobel = %v, want all 5 people", got)
	}

	// Optional: adv? from Bohr = {Bohr, Thomson}.
	a = Compile(Opt{P(0)})
	got = sortedIDs(a.Reach(el, 0))
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("adv? from Bohr = %v", got)
	}
}

func TestReachAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	g := testutil.RandomGraph(rng, 200, 25, 4)
	el := ringLister(g)
	exprs := []Expr{
		P(0),
		Inv(1),
		Path(P(0), P(1)),
		AnyOf(P(0), Inv(2)),
		Star{P(1)},
		Plus{AnyOf(P(0), P(1))},
		Path(Star{P(0)}, P(2)),
		Opt{Path(P(3), Inv(0))},
		Path(AnyOf(P(0), P(1)), Star{P(2)}, Inv(3)),
	}
	for _, e := range exprs {
		for trial := 0; trial < 20; trial++ {
			src := graph.ID(rng.Intn(25))
			got := sortedIDs(Compile(e).Reach(el, src))
			want := sortedIDs(naiveReach(g, src, e))
			if len(got) != len(want) {
				t.Fatalf("expr %s from %d: got %v, want %v", e, src, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("expr %s from %d: got %v, want %v", e, src, got, want)
				}
			}
		}
	}
}

func TestPairs(t *testing.T) {
	g := testutil.PaperGraph()
	el := ringLister(g)
	a := Compile(P(0)) // adv edges
	var pairs [][2]graph.ID
	a.Pairs(el, []graph.ID{0, 1, 2, 3, 4, 5}, func(s, t graph.ID) bool {
		pairs = append(pairs, [2]graph.ID{s, t})
		return true
	})
	if len(pairs) != 4 {
		t.Fatalf("adv pairs = %v, want the 4 adv edges", pairs)
	}
	// Early stop.
	n := 0
	a.Pairs(el, []graph.ID{0, 1, 2, 3, 4, 5}, func(s, t graph.ID) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d pairs", n)
	}
}

func TestCycleTermination(t *testing.T) {
	// A directed cycle with a star expression must terminate.
	g := graph.New([]graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 2}, {S: 2, P: 0, O: 0},
	})
	el := ringLister(g)
	got := sortedIDs(Compile(Star{P(0)}).Reach(el, 0))
	if len(got) != 3 {
		t.Fatalf("p* over a cycle = %v, want 3 nodes", got)
	}
}

func TestEmptyConstructorsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { Path() },
		func() { AnyOf() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStatesCount(t *testing.T) {
	if Compile(P(0)).States() != 2 {
		t.Error("single predicate NFA should have 2 states")
	}
	if Compile(Path(P(0), P(1))).States() != 4 {
		t.Error("concatenation NFA should have 4 states")
	}
}
