// Package rpq evaluates regular path queries (RPQs) over any indexed
// graph — one of the query operators the paper's conclusions name as
// future work to layer on the ring ("supporting further query operators,
// such as projection, regular path queries, aggregation...").
//
// An RPQ asks for pairs of nodes connected by a path whose predicate
// sequence matches a regular expression over edge labels, with SPARQL
// property-path operators: concatenation, alternation, Kleene star/plus,
// optional, and inverse edges (^p). Evaluation compiles the expression to
// a Thompson NFA and runs a BFS over the product of the graph and the
// automaton, using the index's sorted neighbour enumeration for the
// transitions — exactly the access pattern the ring supports with its
// backward-adjacent Enumerate after binding (s, p) or (p, o).
package rpq

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// Expr is a regular path expression over predicate identifiers.
type Expr interface {
	// addTo appends the expression's fragment to the NFA under
	// construction, returning (start, accept) state ids.
	addTo(n *nfa) (int, int)
	String() string
}

// Pred matches a single edge with the given predicate, optionally
// traversed in inverse (object to subject, SPARQL's ^p).
type Pred struct {
	P       graph.ID
	Inverse bool
}

func (p Pred) String() string {
	if p.Inverse {
		return fmt.Sprintf("^%d", p.P)
	}
	return fmt.Sprintf("%d", p.P)
}

// Seq matches L followed by R.
type Seq struct{ L, R Expr }

func (s Seq) String() string { return fmt.Sprintf("(%s/%s)", s.L, s.R) }

// Alt matches either L or R.
type Alt struct{ L, R Expr }

func (a Alt) String() string { return fmt.Sprintf("(%s|%s)", a.L, a.R) }

// Star matches zero or more repetitions of X.
type Star struct{ X Expr }

func (s Star) String() string { return fmt.Sprintf("(%s)*", s.X) }

// Plus matches one or more repetitions of X.
type Plus struct{ X Expr }

func (p Plus) String() string { return fmt.Sprintf("(%s)+", p.X) }

// Opt matches X or the empty path.
type Opt struct{ X Expr }

func (o Opt) String() string { return fmt.Sprintf("(%s)?", o.X) }

// Convenience constructors.

// P matches predicate p forward.
func P(p graph.ID) Expr { return Pred{P: p} }

// Inv matches predicate p inverted.
func Inv(p graph.ID) Expr { return Pred{P: p, Inverse: true} }

// Path concatenates expressions.
func Path(es ...Expr) Expr {
	if len(es) == 0 {
		panic("rpq: empty path")
	}
	e := es[0]
	for _, x := range es[1:] {
		e = Seq{e, x}
	}
	return e
}

// AnyOf alternates expressions.
func AnyOf(es ...Expr) Expr {
	if len(es) == 0 {
		panic("rpq: empty alternation")
	}
	e := es[0]
	for _, x := range es[1:] {
		e = Alt{e, x}
	}
	return e
}

// --- Thompson NFA ---

type transition struct {
	p       graph.ID
	inverse bool
	to      int
}

type nfa struct {
	eps    [][]int
	trans  [][]transition
	start  int
	accept int
}

func (n *nfa) newState() int {
	n.eps = append(n.eps, nil)
	n.trans = append(n.trans, nil)
	return len(n.eps) - 1
}

func (p Pred) addTo(n *nfa) (int, int) {
	s, a := n.newState(), n.newState()
	n.trans[s] = append(n.trans[s], transition{p: p.P, inverse: p.Inverse, to: a})
	return s, a
}

func (sq Seq) addTo(n *nfa) (int, int) {
	ls, la := sq.L.addTo(n)
	rs, ra := sq.R.addTo(n)
	n.eps[la] = append(n.eps[la], rs)
	return ls, ra
}

func (al Alt) addTo(n *nfa) (int, int) {
	s, a := n.newState(), n.newState()
	ls, la := al.L.addTo(n)
	rs, ra := al.R.addTo(n)
	n.eps[s] = append(n.eps[s], ls, rs)
	n.eps[la] = append(n.eps[la], a)
	n.eps[ra] = append(n.eps[ra], a)
	return s, a
}

func (st Star) addTo(n *nfa) (int, int) {
	s, a := n.newState(), n.newState()
	xs, xa := st.X.addTo(n)
	n.eps[s] = append(n.eps[s], xs, a)
	n.eps[xa] = append(n.eps[xa], xs, a)
	return s, a
}

func (pl Plus) addTo(n *nfa) (int, int) {
	s, a := n.newState(), n.newState()
	xs, xa := pl.X.addTo(n)
	n.eps[s] = append(n.eps[s], xs)
	n.eps[xa] = append(n.eps[xa], xs, a)
	return s, a
}

func (op Opt) addTo(n *nfa) (int, int) {
	s, a := n.newState(), n.newState()
	xs, xa := op.X.addTo(n)
	n.eps[s] = append(n.eps[s], xs, a)
	n.eps[xa] = append(n.eps[xa], a)
	return s, a
}

// Compile builds the NFA of e.
func Compile(e Expr) *NFA {
	n := &nfa{}
	s, a := e.addTo(n)
	n.start, n.accept = s, a
	return &NFA{n: n}
}

// NFA is a compiled regular path expression.
type NFA struct{ n *nfa }

// States returns the automaton size (for tests/diagnostics).
func (a *NFA) States() int { return len(a.n.eps) }

// closure adds eps-reachable states of seed into set, appending new pairs
// to the work queue via visit.
func (n *nfa) closure(state int, mark func(int) bool) {
	stack := []int{state}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !mark(s) {
			continue
		}
		stack = append(stack, n.eps[s]...)
	}
}

// --- evaluation ---

// EdgeLister enumerates a node's neighbours through one predicate, in
// either direction. ltj-based indexes get an implementation via Neighbors.
type EdgeLister interface {
	// Neighbors calls visit for each node w such that (v, p, w) is an edge
	// (forward) or (w, p, v) is an edge (inverse). Order is unspecified;
	// duplicates allowed (the evaluator deduplicates).
	Neighbors(v graph.ID, p graph.ID, inverse bool, visit func(graph.ID) bool)
}

// IndexLister adapts any ltj.Index to EdgeLister.
type IndexLister struct{ Idx ltj.Index }

// Neighbors enumerates via a two-constant pattern and the free position.
func (il IndexLister) Neighbors(v, p graph.ID, inverse bool, visit func(graph.ID) bool) {
	var tp graph.TriplePattern
	var free graph.Position
	if inverse {
		tp = graph.TP(graph.Var("n"), graph.Const(p), graph.Const(v))
		free = graph.PosS
	} else {
		tp = graph.TP(graph.Const(v), graph.Const(p), graph.Var("n"))
		free = graph.PosO
	}
	it := il.Idx.NewPatternIter(tp)
	if it.Empty() {
		return
	}
	if it.CanEnumerate(free) {
		it.Enumerate(free, visit)
		return
	}
	c := graph.ID(0)
	for {
		w, ok := it.Leap(free, c)
		if !ok {
			return
		}
		if !visit(w) {
			return
		}
		if w == graph.MaxID {
			return
		}
		c = w + 1
	}
}

// Reach returns the distinct nodes reachable from src by a path matching
// the expression, by BFS over the (node, state) product space. The result
// is not sorted.
func (a *NFA) Reach(g EdgeLister, src graph.ID) []graph.ID {
	n := a.n
	type ns struct {
		node  graph.ID
		state int
	}
	seen := map[ns]bool{}
	var out []graph.ID
	accepted := map[graph.ID]bool{}

	var queue []ns
	push := func(node graph.ID, state int) {
		n.closure(state, func(s int) bool {
			k := ns{node, s}
			if seen[k] {
				return false
			}
			seen[k] = true
			queue = append(queue, k)
			if s == n.accept && !accepted[node] {
				accepted[node] = true
				out = append(out, node)
			}
			return true
		})
	}
	push(src, n.start)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, tr := range n.trans[cur.state] {
			g.Neighbors(cur.node, tr.p, tr.inverse, func(w graph.ID) bool {
				push(w, tr.to)
				return true
			})
		}
	}
	return out
}

// Pairs evaluates the RPQ with both endpoints free: for every source in
// sources it computes the reachable targets. Visit is called once per
// (source, target) pair; returning false stops the evaluation.
func (a *NFA) Pairs(g EdgeLister, sources []graph.ID, visit func(s, t graph.ID) bool) {
	for _, src := range sources {
		for _, t := range a.Reach(g, src) {
			if !visit(src, t) {
				return
			}
		}
	}
}
