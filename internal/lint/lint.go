// Package lint implements ringlint, the repo-specific static-analysis
// suite behind `make lint` (driver: cmd/ringlint). The succinct substrate
// carries invariants the Go compiler cannot check — derived select/rank
// directories must never be serialized and must be rebuilt on load, hot
// leap/rank/select paths must stay allocation- and dispatch-free, Fork()
// implementations must not share mutable state across goroutines, and
// untrusted uint64 header values must be range-checked before narrowing.
// Each analyzer encodes one of these contracts; together with the
// `ringdebug` runtime assertion layer they catch the bug class that
// surfaces as wrong query answers rather than crashes.
//
// The annotation vocabulary, written as `//ringlint:` directive comments:
//
//   - //ringlint:hotpath [allow-dispatch]
//     On a function's doc comment (or in the file header, marking every
//     function of the file): the function is a hot path and may not
//     contain interface method calls, closures, defer statements, map
//     operations, or non-self appends. allow-dispatch waives only the
//     interface-call rule, for code that is interface-generic by design
//     (the LTJ engine, the cArray accessors).
//
//   - //ringlint:derived
//     On a struct field: the field is acceleration state derived from
//     serialized fields. No Write*/write* serialization function may
//     touch it, and every Read* deserializer returning the struct must
//     (transitively) rebuild it.
//
//   - //ringlint:shared-immutable
//     On a struct field: Fork() may share this reference-typed field
//     between forks because the pointee is immutable after construction.
//
//   - //ringlint:viewed
//     On a struct field: the slice may alias a read-only memory mapping
//     (populated by a View decoder through bits.Source.Words). No code
//     may write through it — no index assignment, append, copy-into, or
//     in-place mutator call (viewsafe analyzer).
//
//   - //ringlint:allow <analyzer> [-- reason]
//     On or immediately above a line: suppress that analyzer's findings
//     for the line, documenting a reviewed exception.
//
// The concurrency/durability suite (PR 8) adds verbs for the serving
// tier:
//
//   - //ringlint:guarded-by <mu>
//     On a struct field: every read or write of the field must happen
//     while <mu> is held. <mu> is either a sibling mutex field of the
//     same struct (the lock receiver must syntactically match the access
//     base: a.mu guards a.used) or Type.field naming another struct's
//     mutex in the same package (any holder qualifies — used when a
//     registry lock guards the records it owns). Reviewed lock-free fast
//     paths carry //ringlint:allow guardedby -- reason. (guardedby)
//
//   - //ringlint:locked [<mu>]
//     On a function's doc comment: the caller holds <mu> (default: every
//     mutex guarding the receiver's annotated fields) for the duration
//     of the call. Methods whose name ends in "Locked" get this
//     implicitly — the repo-wide caller-holds-the-lock convention.
//
//   - //ringlint:goroutine-exception -- reason
//     On or immediately above a go statement: the goroutine is reviewed
//     fire-and-forget. Without it, every go statement needs a tracked
//     termination path — a WaitGroup Done, a completion send/close, or a
//     done channel the spawner closes. (golife)
//
//   - //ringlint:transfer <var> -- reason
//     Inside a function: ownership of the named acquired resource
//     (mman region, admission weight) is handed off and must not be
//     released locally. Returning the resource or storing it into a
//     field, map, or package-level variable transfers implicitly.
//     (refpair)
//
//   - //ringlint:detach -- reason
//     On or immediately above a line: this context.Background()/TODO()
//     is a reviewed detach point (e.g. the shared-scan group context
//     that outlives the leader's request). (ctxflow)
//
//   - //ringlint:durable
//     In a file header: the file performs durability-critical I/O, so
//     Sync/Close/Write/Rename errors on write handles must be checked.
//     Files under internal/persist are checked without the directive.
//     (syncio)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one repo-specific check run over a type-checked package.
type Analyzer interface {
	Name() string
	Run(pkg *Package) []Diagnostic
}

// Analyzers returns the full ringlint suite.
func Analyzers() []Analyzer {
	return []Analyzer{
		hotpath{}, derivedstate{}, forksafe{}, truncation{}, viewsafe{},
		guardedby{}, golife{}, refpair{}, syncio{}, ctxflow{},
	}
}

// Timing is one analyzer's wall-clock cost over a run, reported by
// `ringlint -timing` so CI logs show which analyzer is slow.
type Timing struct {
	Analyzer string        `json:"analyzer"`
	Wall     time.Duration `json:"-"`
	WallMS   float64       `json:"wall_ms"`
	Findings int           `json:"findings"`
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position, with //ringlint:allow suppressions
// already applied.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	out, _ := RunTimed(pkgs, analyzers)
	return out
}

// RunTimed is Run with per-analyzer wall-time accounting. Analyzers run
// concurrently — each owns one goroutine and walks every package; the
// type-checked packages are read-only at this point, so the only shared
// mutable state is the result slices, merged after the join.
func RunTimed(pkgs []*Package, analyzers []Analyzer) ([]Diagnostic, []Timing) {
	allowed := make([]map[allowKey]bool, len(pkgs))
	for i, pkg := range pkgs {
		allowed[i] = allowLines(pkg)
	}
	results := make([][]Diagnostic, len(analyzers))
	timings := make([]Timing, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a Analyzer) {
			defer wg.Done()
			start := time.Now()
			var ds []Diagnostic
			for pi, pkg := range pkgs {
				for _, d := range a.Run(pkg) {
					if allowed[pi][allowKey{d.Pos.Filename, d.Pos.Line, a.Name()}] {
						continue
					}
					ds = append(ds, d)
				}
			}
			wall := time.Since(start)
			results[i] = ds
			timings[i] = Timing{Analyzer: a.Name(), Wall: wall, WallMS: float64(wall.Microseconds()) / 1e3, Findings: len(ds)}
		}(i, a)
	}
	wg.Wait()
	var out []Diagnostic
	for _, ds := range results {
		out = append(out, ds...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, timings
}

const directivePrefix = "//ringlint:"

// directive extracts the ringlint directive from one comment, returning
// the verb ("hotpath", "allow", ...) and the rest of the line.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	rest, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(args), true
}

// groupDirective scans a comment group for a directive with the given verb
// and returns its arguments.
func groupDirective(g *ast.CommentGroup, verb string) (args string, ok bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		if v, a, isDir := directive(c); isDir && v == verb {
			return a, true
		}
	}
	return "", false
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowLines collects //ringlint:allow suppressions. An allow comment
// covers its own line (trailing-comment form) and the following line
// (comment-above form).
func allowLines(pkg *Package) map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				verb, args, ok := directive(c)
				if !ok || verb != "allow" {
					continue
				}
				name, _, _ := strings.Cut(args, "--")
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[allowKey{pos.Filename, pos.Line, name}] = true
				out[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return out
}

type fileLine struct {
	file string
	line int
}

// directiveLines collects every occurrence of the given verb, keyed by
// the lines it covers: its own (trailing-comment form) and the next
// (comment-above form). The value is the directive's arguments with any
// `-- reason` suffix stripped.
func directiveLines(pkg *Package, verb string) map[fileLine]string {
	out := make(map[fileLine]string)
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				v, args, ok := directive(c)
				if !ok || v != verb {
					continue
				}
				args, _, _ = strings.Cut(args, "--")
				args = strings.TrimSpace(args)
				pos := pkg.Fset.Position(c.Pos())
				out[fileLine{pos.Filename, pos.Line}] = args
				out[fileLine{pos.Filename, pos.Line + 1}] = args
			}
		}
	}
	return out
}

// fileHasDirective reports whether the file header (comments before the
// package clause) carries the given directive, and returns its args.
func fileHasDirective(pkg *Package, f *ast.File, verb string) (string, bool) {
	for _, g := range f.Comments {
		if g.Pos() >= f.Package {
			break
		}
		if args, ok := groupDirective(g, verb); ok {
			return args, true
		}
	}
	return "", false
}

// fieldDirective reports whether a struct field carries the directive in
// its doc or trailing comment.
func fieldDirective(field *ast.Field, verb string) bool {
	if _, ok := groupDirective(field.Doc, verb); ok {
		return true
	}
	_, ok := groupDirective(field.Comment, verb)
	return ok
}

// diag builds a Diagnostic at the given node.
func diag(pkg *Package, name string, node ast.Node, format string, args ...interface{}) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(node.Pos()),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}
