// Package lint implements ringlint, the repo-specific static-analysis
// suite behind `make lint` (driver: cmd/ringlint). The succinct substrate
// carries invariants the Go compiler cannot check — derived select/rank
// directories must never be serialized and must be rebuilt on load, hot
// leap/rank/select paths must stay allocation- and dispatch-free, Fork()
// implementations must not share mutable state across goroutines, and
// untrusted uint64 header values must be range-checked before narrowing.
// Each analyzer encodes one of these contracts; together with the
// `ringdebug` runtime assertion layer they catch the bug class that
// surfaces as wrong query answers rather than crashes.
//
// The annotation vocabulary, written as `//ringlint:` directive comments:
//
//   - //ringlint:hotpath [allow-dispatch]
//     On a function's doc comment (or in the file header, marking every
//     function of the file): the function is a hot path and may not
//     contain interface method calls, closures, defer statements, map
//     operations, or non-self appends. allow-dispatch waives only the
//     interface-call rule, for code that is interface-generic by design
//     (the LTJ engine, the cArray accessors).
//
//   - //ringlint:derived
//     On a struct field: the field is acceleration state derived from
//     serialized fields. No Write*/write* serialization function may
//     touch it, and every Read* deserializer returning the struct must
//     (transitively) rebuild it.
//
//   - //ringlint:shared-immutable
//     On a struct field: Fork() may share this reference-typed field
//     between forks because the pointee is immutable after construction.
//
//   - //ringlint:viewed
//     On a struct field: the slice may alias a read-only memory mapping
//     (populated by a View decoder through bits.Source.Words). No code
//     may write through it — no index assignment, append, copy-into, or
//     in-place mutator call (viewsafe analyzer).
//
//   - //ringlint:allow <analyzer> [-- reason]
//     On or immediately above a line: suppress that analyzer's findings
//     for the line, documenting a reviewed exception.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one repo-specific check run over a type-checked package.
type Analyzer interface {
	Name() string
	Run(pkg *Package) []Diagnostic
}

// Analyzers returns the full ringlint suite.
func Analyzers() []Analyzer {
	return []Analyzer{hotpath{}, derivedstate{}, forksafe{}, truncation{}, viewsafe{}}
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position, with //ringlint:allow suppressions
// already applied.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowLines(pkg)
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				if allowed[allowKey{d.Pos.Filename, d.Pos.Line, a.Name()}] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

const directivePrefix = "//ringlint:"

// directive extracts the ringlint directive from one comment, returning
// the verb ("hotpath", "allow", ...) and the rest of the line.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	rest, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(args), true
}

// groupDirective scans a comment group for a directive with the given verb
// and returns its arguments.
func groupDirective(g *ast.CommentGroup, verb string) (args string, ok bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		if v, a, isDir := directive(c); isDir && v == verb {
			return a, true
		}
	}
	return "", false
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowLines collects //ringlint:allow suppressions. An allow comment
// covers its own line (trailing-comment form) and the following line
// (comment-above form).
func allowLines(pkg *Package) map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				verb, args, ok := directive(c)
				if !ok || verb != "allow" {
					continue
				}
				name, _, _ := strings.Cut(args, "--")
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[allowKey{pos.Filename, pos.Line, name}] = true
				out[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return out
}

// fileHasDirective reports whether the file header (comments before the
// package clause) carries the given directive, and returns its args.
func fileHasDirective(pkg *Package, f *ast.File, verb string) (string, bool) {
	for _, g := range f.Comments {
		if g.Pos() >= f.Package {
			break
		}
		if args, ok := groupDirective(g, verb); ok {
			return args, true
		}
	}
	return "", false
}

// fieldDirective reports whether a struct field carries the directive in
// its doc or trailing comment.
func fieldDirective(field *ast.Field, verb string) bool {
	if _, ok := groupDirective(field.Doc, verb); ok {
		return true
	}
	_, ok := groupDirective(field.Comment, verb)
	return ok
}

// diag builds a Diagnostic at the given node.
func diag(pkg *Package, name string, node ast.Node, format string, args ...interface{}) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(node.Pos()),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}
