package lint

// guardedby enforces the lock discipline declared with
// //ringlint:guarded-by <mu> on struct fields: every read or write of an
// annotated field must happen in a function that holds the named mutex
// on the path to the access. The serving tier (admission semaphore,
// result cache, shared-scan registry, WAL, dynamic store, mmap region
// refcounts) keeps its invariants behind plain sync.Mutex fields; a
// single missed lock surfaces as a rare torn read under load, not as a
// test failure — exactly the bug class a compiler-shaped check should
// own.
//
// The analysis is a per-function, branch-scoped walk, not a fixpoint
// over a CFG:
//
//   - mu.Lock()/RLock() adds the mutex (with its receiver expression) to
//     the held set; Unlock()/RUnlock() removes it; a deferred unlock
//     keeps it held until exit.
//   - The bodies of if/else, for, switch cases and select cases are
//     walked with a copy of the held set, so an early-return unlock path
//     does not bleed into the fall-through path.
//   - Function literals are walked with an empty held set: a closure
//     runs when it runs, not where it is written.
//   - Methods whose name ends in "Locked", or functions annotated
//     //ringlint:locked [<mu>], start with the caller's locks held — the
//     repo-wide caller-holds-the-lock convention.
//   - Accesses through a struct the function itself constructs (a
//     composite literal assigned to a local) are exempt: the object is
//     not shared yet.
//
// The guard argument is either a sibling field name ("mu": a.mu guards
// a.used, matched by receiver expression) or Type.field naming another
// struct's mutex in the same package (any holder qualifies — the
// shared-scan registry lock guarding the scanGroup records it owns).
// The walk does not distinguish read from write locks: an RLock holder
// may read and — per this analyzer — write; write-under-RLock is left to
// the race detector lane. Reviewed lock-free fast paths carry
// //ringlint:allow guardedby -- reason.

import (
	"go/ast"
	"go/types"
	"strings"
)

type guardedby struct{}

func (guardedby) Name() string { return "guardedby" }

// gbGuard is the mutex protecting one annotated field.
type gbGuard struct {
	mu      *types.Var
	muName  string // rendered for diagnostics, e.g. "mu" or "sharedScans.mu"
	sibling bool   // sibling field: lock receiver must match access base
}

// gbHeld is one held mutex: the mutex field plus the expression it was
// locked through ("" for entries seeded by the Locked convention on
// cross-struct guards).
type gbHeld struct {
	mu   *types.Var
	base string
}

func (guardedby) Run(pkg *Package) []Diagnostic {
	g := &gbAnalysis{pkg: pkg, guards: map[*types.Var]gbGuard{}, structGuards: map[*types.Named][]gbGuard{}, mus: map[*types.Var]bool{}}
	g.collect()
	if len(g.guards) == 0 {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				g.checkFunc(fd)
			}
		}
	}
	return g.diags
}

type gbAnalysis struct {
	pkg          *Package
	guards       map[*types.Var]gbGuard     // annotated field -> its guard
	structGuards map[*types.Named][]gbGuard // owner struct -> guards of its annotated fields
	mus          map[*types.Var]bool        // every mutex acting as a guard
	diags        []Diagnostic
}

// collect resolves every //ringlint:guarded-by annotation to (field,
// mutex) variable pairs.
func (g *gbAnalysis) collect() {
	for _, f := range g.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := g.pkg.Info.Defs[ts.Name]
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					arg, ok := fieldDirectiveArgs(field, "guarded-by")
					if !ok {
						continue
					}
					guard, ok := g.resolveGuard(arg, st)
					if !ok {
						g.diags = append(g.diags, diag(g.pkg, "guardedby", field,
							"cannot resolve guard %q: want a sibling mutex field or Type.field in this package", arg))
						continue
					}
					for _, name := range field.Names {
						if v, ok := g.pkg.Info.Defs[name].(*types.Var); ok {
							g.guards[v] = guard
							g.structGuards[named] = append(g.structGuards[named], guard)
							g.mus[guard.mu] = true
						}
					}
				}
			}
		}
	}
}

// resolveGuard maps a guarded-by argument to the mutex field it names:
// a sibling field of owner, or Type.field elsewhere in the package.
func (g *gbAnalysis) resolveGuard(arg string, owner *ast.StructType) (gbGuard, bool) {
	if typeName, fieldName, qualified := strings.Cut(arg, "."); qualified {
		obj := g.pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			return gbGuard{}, false
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return gbGuard{}, false
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == fieldName {
				return gbGuard{mu: st.Field(i), muName: arg, sibling: false}, true
			}
		}
		return gbGuard{}, false
	}
	for _, field := range owner.Fields.List {
		for _, name := range field.Names {
			if name.Name == arg {
				if v, ok := g.pkg.Info.Defs[name].(*types.Var); ok {
					return gbGuard{mu: v, muName: arg, sibling: true}, true
				}
			}
		}
	}
	return gbGuard{}, false
}

// fieldDirectiveArgs is fieldDirective with the directive's arguments.
func fieldDirectiveArgs(field *ast.Field, verb string) (string, bool) {
	if args, ok := groupDirective(field.Doc, verb); ok {
		return args, true
	}
	return groupDirective(field.Comment, verb)
}

// checkFunc walks one function with the entry-held set implied by its
// name and directives.
func (g *gbAnalysis) checkFunc(fd *ast.FuncDecl) {
	held := map[gbHeld]bool{}
	if locked, arg := g.callerHoldsLock(fd); locked {
		g.seedHeld(fd, arg, held)
	}
	w := &gbWalker{a: g, fresh: g.freshObjects(fd.Body)}
	w.stmts(fd.Body.List, held)
}

// callerHoldsLock reports the caller-holds-the-lock convention: an
// explicit //ringlint:locked directive, or a method name ending in
// "Locked".
func (g *gbAnalysis) callerHoldsLock(fd *ast.FuncDecl) (bool, string) {
	if arg, ok := groupDirective(fd.Doc, "locked"); ok {
		return true, arg
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true, ""
	}
	return false, ""
}

// seedHeld installs the locks a caller-holds-lock function starts with:
// the named mutex, or every guard of the receiver's annotated fields.
func (g *gbAnalysis) seedHeld(fd *ast.FuncDecl, arg string, held map[gbHeld]bool) {
	recvName := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvName = fd.Recv.List[0].Names[0].Name
	}
	if arg != "" {
		if named := recvNamed(fd, g.pkg); named != nil {
			if st, ok := named.Underlying().(*types.Struct); ok {
				if guard, ok := g.resolveGuardForSeed(arg, st); ok {
					base := ""
					if guard.sibling {
						base = recvName
					}
					held[gbHeld{guard.mu, base}] = true
					return
				}
			}
		}
		// Type.field form works without a receiver.
		if guard, ok := g.resolveGuard(arg, &ast.StructType{Fields: &ast.FieldList{}}); ok {
			held[gbHeld{guard.mu, ""}] = true
		}
		return
	}
	named := recvNamed(fd, g.pkg)
	if named == nil {
		return
	}
	for _, guard := range g.structGuards[named] {
		base := ""
		if guard.sibling {
			base = recvName
		}
		held[gbHeld{guard.mu, base}] = true
	}
}

// resolveGuardForSeed resolves a locked-directive argument against a
// receiver struct's type (no AST available, so sibling lookup goes
// through go/types).
func (g *gbAnalysis) resolveGuardForSeed(arg string, st *types.Struct) (gbGuard, bool) {
	if strings.Contains(arg, ".") {
		return g.resolveGuard(arg, &ast.StructType{Fields: &ast.FieldList{}})
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == arg {
			return gbGuard{mu: st.Field(i), muName: arg, sibling: true}, true
		}
	}
	return gbGuard{}, false
}

// freshObjects collects locals the function itself constructs from a
// composite literal: accesses through them are pre-publication and need
// no lock.
func (g *gbAnalysis) freshObjects(body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if ue, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = ue.X
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := g.pkg.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			} else if obj := g.pkg.Info.Uses[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

type gbWalker struct {
	a     *gbAnalysis
	fresh map[types.Object]bool
}

func copyHeld(held map[gbHeld]bool) map[gbHeld]bool {
	out := make(map[gbHeld]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *gbWalker) stmts(list []ast.Stmt, held map[gbHeld]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// stmt threads the held set through one statement: lock transitions
// mutate it in place, branch bodies get copies.
func (w *gbWalker) stmt(s ast.Stmt, held map[gbHeld]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if mu, base, locks, isOp := w.lockOp(call); isOp {
				w.exprs(call.Args, held)
				if locks {
					held[gbHeld{mu, base}] = true
				} else {
					delete(held, gbHeld{mu, base})
				}
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if _, _, locks, isOp := w.lockOp(s.Call); isOp && !locks {
			return // deferred unlock: held until exit
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		w.expr(s.Call, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.stmt(s.Body, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		body := copyHeld(held)
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmt(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			branch := copyHeld(held)
			w.exprs(cc.List, branch)
			w.stmts(cc.Body, branch)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.stmts(cc.Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := copyHeld(held)
			w.stmt(cc.Comm, branch)
			w.stmts(cc.Body, branch)
		}
	default:
		// Leaf statements (assign, incdec, return, send, decl, branch):
		// scan every contained expression under the current held set.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.stmts(n.Body.List, map[gbHeld]bool{})
				return false
			case *ast.SelectorExpr:
				w.checkAccess(n, held)
			}
			return true
		})
	}
}

func (w *gbWalker) exprs(list []ast.Expr, held map[gbHeld]bool) {
	for _, e := range list {
		w.expr(e, held)
	}
}

// expr scans one expression tree for guarded accesses, descending into
// function literals with an empty held set.
func (w *gbWalker) expr(e ast.Expr, held map[gbHeld]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, map[gbHeld]bool{})
			return false
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		}
		return true
	})
}

// lockOp matches base.mu.Lock/RLock/Unlock/RUnlock() where mu is one of
// the package's guard mutexes.
func (w *gbWalker) lockOp(call *ast.CallExpr) (mu *types.Var, base string, locks, isOp bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return nil, "", false, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false, false
	}
	muVar := w.fieldVar(inner)
	if muVar == nil || !w.a.mus[muVar] {
		return nil, "", false, false
	}
	return muVar, types.ExprString(inner.X), locks, true
}

// checkAccess flags a guarded-field access made without its mutex.
func (w *gbWalker) checkAccess(sel *ast.SelectorExpr, held map[gbHeld]bool) {
	fv := w.fieldVar(sel)
	if fv == nil {
		return
	}
	guard, guarded := w.a.guards[fv]
	if !guarded {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := w.a.pkg.Info.Uses[id]; obj != nil && w.fresh[obj] {
			return // constructed here, not yet shared
		}
	}
	if guard.sibling {
		if held[gbHeld{guard.mu, types.ExprString(sel.X)}] {
			return
		}
	} else {
		for h := range held {
			if h.mu == guard.mu {
				return
			}
		}
	}
	w.a.diags = append(w.a.diags, diag(w.a.pkg, "guardedby", sel,
		"access to %s.%s without holding %s (//ringlint:guarded-by)", types.ExprString(sel.X), sel.Sel.Name, guard.muName))
}

// fieldVar resolves a selector to the struct field it reads, or nil.
func (w *gbWalker) fieldVar(sel *ast.SelectorExpr) *types.Var {
	if s, ok := w.a.pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
