package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpath enforces that functions annotated //ringlint:hotpath stay
// allocation- and dispatch-free: no interface method calls (the PR 2
// devirtualization must not silently regress), no closures, no defer, no
// map operations, and no appends other than the amortized self-append
// push idiom `x = append(x, ...)`. The `allow-dispatch` directive option
// waives only the interface-call rule, for functions that are
// interface-generic by design; single known dispatches are better
// documented with a per-line //ringlint:allow hotpath comment.
type hotpath struct{}

func (hotpath) Name() string { return "hotpath" }

func (hotpath) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		fileArgs, fileWide := fileHasDirective(pkg, f, "hotpath")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			args, annotated := groupDirective(fd.Doc, "hotpath")
			if !annotated {
				if !fileWide {
					continue
				}
				args = fileArgs
			}
			allowDispatch := hasOption(args, "allow-dispatch")
			out = append(out, checkHotFunc(pkg, fd, allowDispatch)...)
		}
	}
	return out
}

func hasOption(args, opt string) bool {
	for _, f := range strings.Fields(args) {
		if f == opt {
			return true
		}
	}
	return false
}

func checkHotFunc(pkg *Package, fd *ast.FuncDecl, allowDispatch bool) []Diagnostic {
	var out []Diagnostic
	name := fd.Name.Name
	parents := buildParents(fd.Body)
	report := func(node ast.Node, format string, args ...interface{}) {
		out = append(out, diag(pkg, "hotpath", node, "%s: "+format, append([]interface{}{name}, args...)...))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure allocated on a hot path")
			return false // the closure body is not part of the hot path
		case *ast.DeferStmt:
			report(n, "defer on a hot path")
		case *ast.CallExpr:
			checkHotCall(pkg, n, parents, allowDispatch, report)
		case *ast.IndexExpr:
			if isMapType(pkg, n.X) {
				report(n, "map access on a hot path")
			}
		case *ast.RangeStmt:
			if isMapType(pkg, n.X) {
				report(n, "map iteration on a hot path")
			}
		case *ast.CompositeLit:
			if t := pkg.Info.Types[n].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n, "map literal allocated on a hot path")
				}
			}
		}
		return true
	})
	return out
}

func checkHotCall(pkg *Package, call *ast.CallExpr, parents map[ast.Node]ast.Node, allowDispatch bool, report func(ast.Node, string, ...interface{})) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				if !isSelfAppend(call, parents) {
					report(call, "append that is not a self-append push (allocates a new backing array)")
				}
			case "delete":
				report(call, "map delete on a hot path")
			case "make":
				if len(call.Args) > 0 {
					if t := pkg.Info.Types[call.Args[0]].Type; t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(call, "map allocation on a hot path")
						}
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if allowDispatch {
			return
		}
		sel, ok := pkg.Info.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return
		}
		if types.IsInterface(sel.Recv()) || interfaceMethod(sel.Obj()) {
			report(call, "interface method call %s.%s (dynamic dispatch on a hot path)",
				types.TypeString(sel.Recv(), types.RelativeTo(pkg.Types)), sel.Obj().Name())
		}
	}
}

// interfaceMethod reports whether obj is declared on an interface (covers
// methods promoted from an interface embedded in a struct).
func interfaceMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

// isSelfAppend reports whether call appears as `x = append(x, ...)` — the
// amortized O(1) stack-push idiom, permitted on hot paths because it only
// allocates on capacity growth and the slice retains the new capacity.
func isSelfAppend(call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	assign, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range assign.Rhs {
		if rhs == ast.Expr(call) && i < len(assign.Lhs) {
			return types.ExprString(assign.Lhs[i]) == types.ExprString(call.Args[0])
		}
	}
	return false
}
