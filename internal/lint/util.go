package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// isDeserializerName reports whether name denotes a deserializer over
// untrusted bytes: the io.Reader-based Read*/read* forms, and the
// Decode*/decode* (bits.Source) and View*/view* (zero-copy mapping)
// forms of the mmap load path. All three families parse attacker- or
// corruption-controlled input and carry the same validation obligations.
func isDeserializerName(name string) bool {
	for _, p := range []string{"Read", "read", "Decode", "decode", "View", "view"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// buildParents maps every node under root to its parent, so analyzers can
// look outward from an expression (e.g. from an append call to the
// assignment that consumes it).
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isMapType(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.Types[expr].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// structFieldsWithDirective returns, per named struct type declared in the
// package, the fields carrying the given ringlint directive.
func structFieldsWithDirective(pkg *Package, verb string) map[*types.Named][]*types.Var {
	out := make(map[*types.Named][]*types.Var)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[ts.Name]
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !fieldDirective(field, verb) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							out[named] = append(out[named], v)
						}
					}
				}
			}
		}
	}
	return out
}

// recvNamed returns the named struct type of a method receiver,
// dereferencing one pointer level, or nil for non-struct receivers.
func recvNamed(fd *ast.FuncDecl, pkg *Package) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pkg.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes, or nil for builtins, conversions and dynamic calls.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}
