package lint

// golife requires every go statement to have a tracked termination path.
// A goroutine nobody can join is a leak the compiler will never mention:
// the shared-scan disconnect watcher, the WAL committer, the checkpoint
// and compaction loops and the parallel-LTJ workers all outlive the
// statement that spawns them, and a missing join turns into an
// accumulating goroutine count (or a send on a closed channel) only
// under production load.
//
// A go statement is considered tracked when the spawned function:
//
//   - contains `defer wg.Done()` on a sync.WaitGroup — the spawner (or
//     its owner) joins via wg.Wait();
//   - ends by signalling completion: its last statement is a channel
//     send or close, which the spawner (or a sibling) receives;
//   - blocks on a done channel the spawning function closes — the
//     bounded-watchdog idiom: `select { ...; case <-watchDone: }` with
//     `defer close(watchDone)` in the spawner;
//   - is a same-package named function satisfying the WaitGroup rule
//     (`go w.commitLoop()` where commitLoop defers wg.Done()).
//
// Anything else needs //ringlint:goroutine-exception -- reason on or
// above the go statement: fire-and-forget is a reviewed decision, not a
// default.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type golife struct{}

func (golife) Name() string { return "golife" }

func (golife) Run(pkg *Package) []Diagnostic {
	exceptions := directiveLines(pkg, "goroutine-exception")
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := pkg.Fset.Position(gs.Pos())
				if _, ok := exceptions[fileLine{pos.Filename, pos.Line}]; ok {
					return true
				}
				if goTracked(pkg, gs, fd.Body) {
					return true
				}
				diags = append(diags, diag(pkg, "golife", gs,
					"goroutine has no tracked termination path (WaitGroup Done, completion send/close, or a done channel the spawner closes); annotate //ringlint:goroutine-exception -- reason if fire-and-forget is intended"))
				return true
			})
		}
	}
	return diags
}

// goTracked classifies one go statement against the tracked-termination
// rules.
func goTracked(pkg *Package, gs *ast.GoStmt, spawner *ast.BlockStmt) bool {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		if bodyDefersWaitGroupDone(pkg, lit.Body) {
			return true
		}
		if endsWithCompletionSignal(lit.Body) {
			return true
		}
		if blocksOnSpawnerClosedChannel(pkg, lit.Body, spawner) {
			return true
		}
		return false
	}
	// go f() / go x.f(): resolve the callee in this package and apply the
	// WaitGroup rule to its body.
	fn := calleeFunc(pkg, gs.Call)
	if fn == nil {
		return false
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return bodyDefersWaitGroupDone(pkg, fd.Body)
			}
		}
	}
	return false
}

// bodyDefersWaitGroupDone reports a `defer wg.Done()` anywhere in the
// body (outside nested function literals).
func bodyDefersWaitGroupDone(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isWaitGroupDone(pkg, ds.Call) {
			found = true
		}
		return true
	})
	return found
}

// isWaitGroupDone matches wg.Done() where wg is a sync.WaitGroup.
func isWaitGroupDone(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return strings.HasSuffix(t.String(), "sync.WaitGroup")
}

// endsWithCompletionSignal reports a body whose last statement is a
// channel send or close — the spawner observes the goroutine's end by
// receiving it.
func endsWithCompletionSignal(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.SendStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
				return true
			}
		}
	}
	return false
}

// blocksOnSpawnerClosedChannel matches the bounded-watchdog idiom: the
// goroutine receives (typically in a select) from a channel variable the
// spawning function closes, usually via defer.
func blocksOnSpawnerClosedChannel(pkg *Package, body *ast.BlockStmt, spawner *ast.BlockStmt) bool {
	received := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return true
		}
		if id, ok := ue.X.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				received[obj] = true
			}
		}
		return true
	})
	if len(received) == 0 {
		return false
	}
	closed := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if argID, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pkg.Info.Uses[argID]; obj != nil && received[obj] {
				closed = true
			}
		}
		return true
	})
	return closed
}
