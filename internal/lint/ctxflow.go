package lint

// ctxflow keeps request cancellation flowing: blocking operations
// reachable from an HTTP handler must be guarded by a context, and
// fresh root contexts may not be minted outside reviewed detach points.
// The serving tier's responsiveness contract — a disconnected client
// stops costing capacity — dies quietly when a handler-reachable path
// parks on a bare channel receive or a context.Background() severs the
// cancellation chain.
//
// Two rules:
//
//   - context.Background() and context.TODO() are flagged everywhere
//     unless the line carries //ringlint:detach -- reason. The repo has
//     exactly two legitimate detach points: the shared-scan group
//     context (the evaluation outlives the leader's request) and the
//     parallel-LTJ fallback when the caller provides no context.
//
//   - In packages importing net/http, within functions reachable from a
//     handler (signature contains http.ResponseWriter and
//     *http.Request; reachability via same-package static calls,
//     function literals counted as their enclosing function):
//     a receive outside a select, a select with neither a Done() case
//     nor a default, time.Sleep, WaitGroup.Wait and Cond.Wait are
//     flagged — each parks the request beyond its context's reach.
//
// The call graph is intra-package: a blocking wait behind an interface
// or in another package (e.g. the WAL commit promise, which
// deliberately outlives the request: the batch is already applied, the
// ack merely awaits fsync) is out of scope and documented where it
// lives.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type ctxflow struct{}

func (ctxflow) Name() string { return "ctxflow" }

func (ctxflow) Run(pkg *Package) []Diagnostic {
	detach := directiveLines(pkg, "detach")
	var diags []Diagnostic

	// Rule 1: no fresh root contexts outside annotated detach points.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != "context" {
				return true
			}
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); !isPkg {
				return true
			}
			pos := pkg.Fset.Position(call.Pos())
			if _, ok := detach[fileLine{pos.Filename, pos.Line}]; ok {
				return true
			}
			diags = append(diags, diag(pkg, "ctxflow",
				call, "context.%s() severs the cancellation chain: thread the caller's context, or annotate //ringlint:detach -- reason", sel.Sel.Name))
			return true
		})
	}

	if !cfImportsNetHTTP(pkg) {
		return diags
	}

	// Rule 2: blocking operations in handler-reachable functions.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for fn, fd := range decls {
		if cfHandlerSignature(pkg, fd) {
			reachable[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg, call)
			if callee == nil || decls[callee] == nil || reachable[callee] {
				return true
			}
			reachable[callee] = true
			queue = append(queue, callee)
			return true
		})
	}
	for fn := range reachable {
		diags = append(diags, cfCheckBlocking(pkg, decls[fn])...)
	}
	return diags
}

func cfImportsNetHTTP(pkg *Package) bool {
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "net/http" {
			return true
		}
	}
	return false
}

// cfHandlerSignature reports a function taking both an
// http.ResponseWriter and an *http.Request — a handler or a helper on
// the handler path.
func cfHandlerSignature(pkg *Package, fd *ast.FuncDecl) bool {
	var hasW, hasR bool
	for _, field := range fd.Type.Params.List {
		t := pkg.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		switch t.String() {
		case "net/http.ResponseWriter":
			hasW = true
		case "*net/http.Request":
			hasR = true
		}
	}
	return hasW && hasR
}

// cfCheckBlocking flags context-free blocking operations in one
// handler-reachable function.
func cfCheckBlocking(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	inSelect := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault, hasDone := false, false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if ue, ok := m.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
						inSelect[ue] = true
						if cfIsDoneChannel(pkg, ue.X) {
							hasDone = true
						}
					}
					return true
				})
			}
			if !hasDefault && !hasDone {
				diags = append(diags, diag(pkg, "ctxflow",
					n, "select on a handler-reachable path has no context Done() case and no default: a gone client parks here forever"))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inSelect[n] {
				diags = append(diags, diag(pkg, "ctxflow",
					n, "blocking receive outside select on a handler-reachable path: guard it with the request context"))
			}
		case *ast.CallExpr:
			if name, blocking := cfBlockingCall(pkg, n); blocking {
				diags = append(diags, diag(pkg, "ctxflow",
					n, "%s blocks a handler-reachable path without a context: a gone client keeps paying for it", name))
			}
		}
		return true
	})
	return diags
}

// cfIsDoneChannel matches <-x.Done() (context cancellation) and
// receives from channels whose name marks them as completion signals
// (done, ready, watchDone...).
func cfIsDoneChannel(pkg *Package, ch ast.Expr) bool {
	if call, ok := ch.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	return false
}

// cfBlockingCall matches time.Sleep, (*sync.WaitGroup).Wait and
// (*sync.Cond).Wait.
func cfBlockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && sel.Sel.Name == "Sleep" {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return "time.Sleep", true
		}
	}
	if sel.Sel.Name != "Wait" {
		return "", false
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "sync.WaitGroup":
		return "WaitGroup.Wait", true
	case "sync.Cond":
		return "Cond.Wait", true
	}
	return "", false
}
