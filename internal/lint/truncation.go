package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// truncation flags unguarded narrowing conversions of uint64 values —
// bit positions, counts, header words — inside deserializers (the
// Read*/read*, Decode*/decode* and View*/view* families), where the
// uint64 comes from an untrusted stream or mapping. An unchecked
// uint64→int/uint32 conversion silently wraps, turning a corrupt header
// into out-of-range panics or, worse, structurally valid but wrong
// directories (wrong answers, not crashes).
//
// A conversion counts as guarded when
//
//   - the operand is masked with a constant that fits the target type
//     (e.g. uint(pos & 63)),
//   - the operand, the conversion itself, or the variable/field the
//     result is assigned to appears in a comparison somewhere in the same
//     function (the `if v.n < 0 { return err }` validation idiom), or
//   - the line carries a //ringlint:allow truncation comment.
//
// The analyzer is deliberately scoped to deserializers: inside the query
// hot paths uint64 positions are trusted invariants of construction, and
// flagging every internal narrowing would bury the real findings.
type truncation struct{}

func (truncation) Name() string { return "truncation" }

func (truncation) Run(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isDeserializerName(fd.Name.Name) {
				continue
			}
			out = append(out, checkTruncation(pkg, fd)...)
		}
	}
	return out
}

func checkTruncation(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	parents := buildParents(fd.Body)
	guards := comparisonExprs(fd.Body)

	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		target := tv.Type
		if !isNarrowIntType(target) {
			return true
		}
		arg := call.Args[0]
		argTV := pkg.Info.Types[arg]
		if argTV.Value != nil { // constant-folded: checked at compile time
			return true
		}
		if b, ok := argTV.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Uint64 {
			return true
		}
		if maskedWithin(pkg, arg, target) {
			return true
		}
		for _, cand := range guardCandidates(pkg, call, arg, parents) {
			if guards[cand] {
				return true
			}
		}
		out = append(out, diag(pkg, "truncation", call,
			"unguarded uint64→%s conversion of %s in deserializer %s (range-check the value or mask it)",
			types.TypeString(target, types.RelativeTo(pkg.Types)), types.ExprString(arg), fd.Name.Name))
		return true
	})
	return out
}

// isNarrowIntType reports whether converting a uint64 to t can lose or
// reinterpret bits: every integer type except uint64/uintptr itself.
func isNarrowIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// targetMax returns the largest uint64 that survives conversion to t
// unchanged.
func targetMax(t types.Type) uint64 {
	switch t.Underlying().(*types.Basic).Kind() {
	case types.Int8:
		return 1<<7 - 1
	case types.Uint8:
		return 1<<8 - 1
	case types.Int16:
		return 1<<15 - 1
	case types.Uint16:
		return 1<<16 - 1
	case types.Int32:
		return 1<<31 - 1
	case types.Uint32:
		return 1<<32 - 1
	default: // int, int64, uint (64-bit platforms)
		return 1<<63 - 1
	}
}

// maskedWithin reports whether arg is an AND against a constant that fits
// the target type, e.g. uint(pos & 63).
func maskedWithin(pkg *Package, arg ast.Expr, target types.Type) bool {
	be, ok := arg.(*ast.BinaryExpr)
	if !ok || be.Op != token.AND {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if v := pkg.Info.Types[side].Value; v != nil {
			if mask, ok := constant.Uint64Val(constant.ToInt(v)); ok && mask <= targetMax(target) {
				return true
			}
		}
	}
	return false
}

// guardCandidates returns the rendered expressions whose appearance in a
// comparison validates this conversion: the operand, the conversion
// itself, and the destination the result is assigned to (including
// `v.field` for composite-literal construction).
func guardCandidates(pkg *Package, call *ast.CallExpr, arg ast.Expr, parents map[ast.Node]ast.Node) []string {
	cands := []string{types.ExprString(arg), types.ExprString(call)}
	switch parent := parents[call].(type) {
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs == ast.Expr(call) && i < len(parent.Lhs) {
				cands = append(cands, types.ExprString(parent.Lhs[i]))
			}
		}
	case *ast.ValueSpec:
		for i, rhs := range parent.Values {
			if rhs == ast.Expr(call) && i < len(parent.Names) {
				cands = append(cands, parent.Names[i].Name)
			}
		}
	case *ast.KeyValueExpr:
		key, ok := parent.Key.(*ast.Ident)
		if !ok {
			break
		}
		// Walk out of the composite literal (and its enclosing &) to the
		// variable it is assigned to.
		node := parents[parent]
		lit, ok := node.(*ast.CompositeLit)
		if !ok {
			break
		}
		outer := parents[lit]
		if u, ok := outer.(*ast.UnaryExpr); ok && u.Op == token.AND {
			outer = parents[u]
		}
		if assign, ok := outer.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					cands = append(cands, id.Name+"."+key.Name)
				}
			}
		}
	}
	return cands
}

// comparisonExprs collects the rendered form of every subexpression that
// participates in a comparison (or switch) within body — the evidence
// that a value was validated somewhere in the function.
func comparisonExprs(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	addSubexprs := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if sub, ok := n.(ast.Expr); ok {
				out[types.ExprString(sub)] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				addSubexprs(n.X)
				addSubexprs(n.Y)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				addSubexprs(n.Tag)
			}
		}
		return true
	})
	return out
}
