package lint

import (
	"go/ast"
	"go/types"
)

// forksafe checks every Fork method (the trieiter.Forkable capability the
// parallel LTJ engine relies on): the fork handed to another goroutine
// must not share mutable state with the receiver. Concretely, every
// reference-typed field of the receiver struct — slice, map, pointer,
// chan, func or interface — must either be freshly built in the fork
// (append-copy, make, a constructor call) or be tagged
// //ringlint:shared-immutable, documenting that the pointee is immutable
// after construction (the index structures the iterators share
// read-only).
//
// Two construction shapes are recognised: composite literals
// (&T{f: append([]E(nil), it.f...), ...}) and the value-copy idiom
// (cp := *it; cp.f = append(...)). A composite-literal entry that merely
// copies the receiver's field, or a value copy whose reference field is
// never reassigned, is a shared-state finding.
type forksafe struct{}

func (forksafe) Name() string { return "forksafe" }

func (forksafe) Run(pkg *Package) []Diagnostic {
	shared := structFieldsWithDirective(pkg, "shared-immutable")
	sharedVars := make(map[*types.Var]bool)
	for _, vars := range shared {
		for _, v := range vars {
			sharedVars[v] = true
		}
	}

	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Fork" || fd.Body == nil {
				continue
			}
			named := recvNamed(fd, pkg)
			if named == nil {
				continue
			}
			out = append(out, checkFork(pkg, fd, named, sharedVars)...)
		}
	}
	return out
}

func checkFork(pkg *Package, fd *ast.FuncDecl, named *types.Named, sharedVars map[*types.Var]bool) []Diagnostic {
	st := named.Underlying().(*types.Struct)
	refFields := make(map[*types.Var]bool)
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if sharedVars[fv] || !isReferenceType(fv.Type()) {
			continue
		}
		refFields[fv] = true
	}
	if len(refFields) == 0 {
		return nil
	}

	recvObj := receiverVar(pkg, fd)

	var out []Diagnostic
	handled := make(map[*types.Var]bool)    // freshly rebuilt in the fork
	violated := make(map[*types.Var]bool)   // reported at a specific site
	var structCopies []*ast.AssignStmt      // cp := *recv sites
	copyVars := make(map[types.Object]bool) // the cp objects

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// cp := *recv — a value copy shares every reference field
			// until it is reassigned.
			for i, rhs := range n.Rhs {
				star, ok := rhs.(*ast.StarExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := star.X.(*ast.Ident); ok && recvObj != nil && pkg.Info.Uses[id] == recvObj {
					if lhs, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pkg.Info.Defs[lhs]; obj != nil {
							copyVars[obj] = true
							structCopies = append(structCopies, n)
						}
					}
				}
			}
			// cp.f = <fresh expr> marks f handled.
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !refFields[v] {
					continue
				}
				if i < len(n.Rhs) && isFreshExpr(n.Rhs[i]) {
					handled[v] = true
				} else if i < len(n.Rhs) {
					violated[v] = true
					out = append(out, diag(pkg, "forksafe", n.Rhs[i],
						"Fork on %s shares reference field %s (deep-copy it or tag it //ringlint:shared-immutable)",
						named.Obj().Name(), v.Name()))
				}
			}
		case *ast.CompositeLit:
			t := pkg.Info.Types[n].Type
			if t == nil {
				return true
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if t != types.Type(named) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pkg.Info.Uses[key].(*types.Var)
				if !ok || !refFields[v] {
					continue
				}
				if isFreshExpr(kv.Value) {
					handled[v] = true
				} else {
					violated[v] = true
					out = append(out, diag(pkg, "forksafe", kv.Value,
						"Fork on %s shares reference field %s (deep-copy it or tag it //ringlint:shared-immutable)",
						named.Obj().Name(), v.Name()))
				}
			}
		}
		return true
	})

	// A struct copy shares every reference field that was never rebuilt.
	if len(structCopies) > 0 {
		for fv := range refFields {
			if !handled[fv] && !violated[fv] {
				out = append(out, diag(pkg, "forksafe", structCopies[0],
					"Fork on %s copies the struct but never rebuilds reference field %s (deep-copy it or tag it //ringlint:shared-immutable)",
					named.Obj().Name(), fv.Name()))
			}
		}
	}
	return out
}

// receiverVar returns the receiver's types.Var, or nil for an anonymous
// receiver.
func receiverVar(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// isReferenceType reports whether values of t alias underlying storage
// when copied.
func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// isFreshExpr reports whether the expression plausibly builds fresh
// storage: anything containing a call (append, make, a clone helper, a
// recursive Fork) or a composite literal. A bare selector or identifier
// copies the reference.
func isFreshExpr(e ast.Expr) bool {
	fresh := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.CompositeLit:
			fresh = true
			return false
		}
		return true
	})
	return fresh
}
