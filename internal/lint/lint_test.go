package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureWant is one `// want "regex"` expectation scraped from a fixture.
type fixtureWant struct {
	file    string
	pattern string
	re      *regexp.Regexp
}

// scanWants collects the `// want "regex"` trailing comments of a fixture
// package, keyed by line number. Fixtures are one file per package, so a
// plain line key is unambiguous.
func scanWants(t *testing.T, pkg *Package) map[int]*fixtureWant {
	t.Helper()
	out := make(map[int]*fixtureWant)
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				pattern, ok := strings.CutSuffix(strings.TrimSpace(rest), `"`)
				if !ok {
					t.Fatalf("malformed want comment: %s", c.Text)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				if out[pos.Line] != nil {
					t.Fatalf("%s:%d: multiple want comments on one line", pos.Filename, pos.Line)
				}
				out[pos.Line] = &fixtureWant{file: pos.Filename, pattern: pattern, re: re}
			}
		}
	}
	return out
}

func analyzerByName(t *testing.T, name string) Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestFixtures runs each analyzer over its testdata package and checks the
// diagnostics against the `// want` marks both ways: every mark must be
// matched by a diagnostic on its line, and every diagnostic must land on a
// marked line with a matching message.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"hotpath", "derivedstate", "forksafe", "truncation", "viewsafe"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := Load(dir, []string{dir})
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
			}
			wants := scanWants(t, pkgs[0])
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			diags := Run(pkgs, []Analyzer{analyzerByName(t, name)})
			matched := make(map[int]bool)
			for _, d := range diags {
				w := wants[d.Pos.Line]
				if w == nil {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				if !w.re.MatchString(d.Message) {
					t.Errorf("diagnostic %q at %s:%d does not match want %q",
						d.Message, d.Pos.Filename, d.Pos.Line, w.pattern)
				}
				matched[d.Pos.Line] = true
			}
			for line, w := range wants {
				if !matched[line] {
					t.Errorf("%s:%d: want %q matched no diagnostic", w.file, line, w.pattern)
				}
			}
		})
	}
}

// TestRepoClean runs the full analyzer suite over the real module — the
// same gate `make lint` enforces — and requires zero diagnostics.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := filepath.Join("..", "..")
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from the module root")
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
