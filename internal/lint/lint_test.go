package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureWant is one `// want "regex"` expectation scraped from a fixture.
type fixtureWant struct {
	file    string
	pattern string
	re      *regexp.Regexp
}

// scanWants collects the `// want "regex"` trailing comments of a fixture
// package, keyed by line number. Fixtures are one file per package, so a
// plain line key is unambiguous.
func scanWants(t *testing.T, pkg *Package) map[int]*fixtureWant {
	t.Helper()
	out := make(map[int]*fixtureWant)
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				pattern, ok := strings.CutSuffix(strings.TrimSpace(rest), `"`)
				if !ok {
					t.Fatalf("malformed want comment: %s", c.Text)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				if out[pos.Line] != nil {
					t.Fatalf("%s:%d: multiple want comments on one line", pos.Filename, pos.Line)
				}
				out[pos.Line] = &fixtureWant{file: pos.Filename, pattern: pattern, re: re}
			}
		}
	}
	return out
}

func analyzerByName(t *testing.T, name string) Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestFixtures runs each analyzer over its testdata package and checks the
// diagnostics against the `// want` marks both ways: every mark must be
// matched by a diagnostic on its line, and every diagnostic must land on a
// marked line with a matching message.
func TestFixtures(t *testing.T) {
	for _, name := range []string{
		"hotpath", "derivedstate", "forksafe", "truncation", "viewsafe",
		"guardedby", "golife", "refpair", "syncio", "ctxflow",
	} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := Load(dir, []string{dir})
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
			}
			wants := scanWants(t, pkgs[0])
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			diags := Run(pkgs, []Analyzer{analyzerByName(t, name)})
			matched := make(map[int]bool)
			for _, d := range diags {
				w := wants[d.Pos.Line]
				if w == nil {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				if !w.re.MatchString(d.Message) {
					t.Errorf("diagnostic %q at %s:%d does not match want %q",
						d.Message, d.Pos.Filename, d.Pos.Line, w.pattern)
				}
				matched[d.Pos.Line] = true
			}
			for line, w := range wants {
				if !matched[line] {
					t.Errorf("%s:%d: want %q matched no diagnostic", w.file, line, w.pattern)
				}
			}
		})
	}
}

// TestSuppressionsHaveReasons requires every reviewed-exception
// directive in the module to document itself: an allow, detach,
// transfer or goroutine-exception without `-- reason` is an
// unexplained opt-out, which defeats the point of annotating.
func TestSuppressionsHaveReasons(t *testing.T) {
	reasoned := map[string]bool{
		"allow": true, "detach": true, "transfer": true, "goroutine-exception": true,
	}
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "//ringlint:")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("//ringlint:"):]
			verb, args, _ := strings.Cut(rest, " ")
			if !reasoned[strings.TrimSpace(verb)] {
				continue
			}
			if !strings.Contains(args, "--") || strings.TrimSpace(strings.SplitN(args, "--", 2)[1]) == "" {
				t.Errorf("%s:%d: //ringlint:%s without `-- reason`", path, i+1, strings.TrimSpace(verb))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepoClean runs the full analyzer suite over the real module — the
// same gate `make lint` enforces — and requires zero diagnostics.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := filepath.Join("..", "..")
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from the module root")
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
