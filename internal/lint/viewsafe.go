package lint

import (
	"go/ast"
	"go/types"
)

// viewsafe enforces the zero-copy view contract: word slices handed out
// by bits.Source.Words may alias a read-only file mapping (ViewPlain and
// friends over an mmap'd index), so writing through them is at best a
// silent corruption of shared pages and at worst a SIGSEGV. The analyzer
// flags, for
//
//	(a) locals assigned from a .Words(...) call, and
//	(b) selector expressions of struct fields annotated //ringlint:viewed
//	    (the fields the View decoders populate with aliased slices),
//
// every write: index assignment (x[i] = v, including op-assign forms),
// append with the slice as the appendee, use as copy's destination, and
// passing the slice to a known in-place mutator (WriteBits). It also
// requires that a struct field directly assigned from a Words(...)
// result carries the //ringlint:viewed annotation, so the aliasing
// contract stays visible at the type definition.
//
// Constructors that write through an annotated field into backing they
// just allocated (fresh heap memory, never viewed) document the reviewed
// exception with //ringlint:allow viewsafe.
type viewsafe struct{}

func (viewsafe) Name() string { return "viewsafe" }

// sliceMutators names functions known to write their slice argument in
// place; passing a view-aliased slice to one is a write.
var sliceMutators = map[string]bool{"WriteBits": true}

func (viewsafe) Run(pkg *Package) []Diagnostic {
	viewed := structFieldsWithDirective(pkg, "viewed")
	viewedVars := make(map[*types.Var]bool)
	for _, vars := range viewed {
		for _, v := range vars {
			viewedVars[v] = true
		}
	}

	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkViewsafe(pkg, fd, viewedVars)...)
		}
	}
	return out
}

func checkViewsafe(pkg *Package, fd *ast.FuncDecl, viewedVars map[*types.Var]bool) []Diagnostic {
	var out []Diagnostic

	// Pass 1 (flow-insensitive): locals bound to Words(...) results taint
	// their name for the whole function, and a direct field assignment
	// from Words must target an annotated field.
	taint := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || !isWordsCall(assign.Rhs[0]) || len(assign.Lhs) == 0 {
			return true
		}
		// Words returns (slice, error); in both `w, err := src.Words(n)`
		// and `v.f, err = src.Words(n)` the slice binds to Lhs[0].
		switch lhs := assign.Lhs[0].(type) {
		case *ast.Ident:
			taint[lhs.Name] = true
		case *ast.SelectorExpr:
			if v, ok := pkg.Info.Uses[lhs.Sel].(*types.Var); ok && v.IsField() && !viewedVars[v] {
				out = append(out, diag(pkg, "viewsafe", lhs,
					"field %s is assigned a Source.Words slice but is not annotated //ringlint:viewed",
					types.ExprString(lhs)))
			}
		}
		return true
	})

	tainted := func(e ast.Expr) (string, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			if taint[e.Name] {
				return e.Name, true
			}
		case *ast.SelectorExpr:
			if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && viewedVars[v] {
				return types.ExprString(e), true
			}
		}
		return "", false
	}

	// Pass 2: writes through tainted slices.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if name, ok := tainted(ix.X); ok {
					out = append(out, diag(pkg, "viewsafe", lhs,
						"write through view-aliased slice %s (may alias a read-only mapping)", name))
				}
			}
		case *ast.CallExpr:
			if fun, ok := n.Fun.(*ast.Ident); ok {
				if fun.Name == "append" && len(n.Args) > 0 {
					if name, ok := tainted(n.Args[0]); ok {
						out = append(out, diag(pkg, "viewsafe", n,
							"append to view-aliased slice %s (may write into mapped memory)", name))
					}
				}
				if fun.Name == "copy" && len(n.Args) == 2 {
					if name, ok := tainted(n.Args[0]); ok {
						out = append(out, diag(pkg, "viewsafe", n,
							"copy into view-aliased slice %s (may alias a read-only mapping)", name))
					}
				}
			}
			if callee := calleeFunc(pkg, n); callee != nil && sliceMutators[callee.Name()] {
				for _, arg := range n.Args {
					if name, ok := tainted(arg); ok {
						out = append(out, diag(pkg, "viewsafe", n,
							"passing view-aliased slice %s to in-place mutator %s", name, callee.Name()))
					}
				}
			}
		}
		return true
	})
	return out
}

// isWordsCall reports whether e is a method call named Words — the
// bits.Source accessor whose result may alias the input buffer.
func isWordsCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Words"
}
