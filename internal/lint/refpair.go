package lint

// refpair pairs resource acquisitions with their releases: mmap region
// refcounts (mman.Map / Region.Retain → Region.Release) and
// admission-semaphore weight (admission.acquire → admission.release).
// An unbalanced region refcount either unmaps memory still aliased by a
// live ring (crash) or pins a mapping forever (leak); a dropped
// admission token shrinks server capacity permanently. Both escape
// tests because the steady state looks fine — the bug is on the error
// path nobody exercises.
//
// Acquire sites are recognized by callee name with a type check — a
// call to Map/Retain/acquire only counts when the produced value's type
// (first result, or the receiver) actually has the matching
// Release/release method — so fixture types and future resources keyed
// to the same verbs participate without a hardcoded package list.
//
// Per function, a branch-scoped walk (same discipline as guardedby)
// tracks outstanding acquisitions and accepts these dispositions:
//
//   - an explicit release call on the resource expression;
//   - a deferred release — directly (`defer reg.Release()`) or inside a
//     deferred closure (`defer func() { ... reg.Release() ... }()`),
//     which also covers panic paths;
//   - transfer: returning the resource, storing it into a struct field,
//     map/slice element or package-level variable, sending it on a
//     channel, or an explicit //ringlint:transfer <var> -- reason;
//   - process exit: os.Exit / log.Fatal* / panic end the walk — the
//     kernel releases mappings, and a dying process owes no tokens.
//
// When the acquire returns an error, the resource is considered live
// only after the `if err != nil` guard: inside that branch nothing was
// acquired, so its early return is clean. A return (or falling off the
// end of the function) with an outstanding, untransferred resource is a
// finding.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type refpair struct{}

func (refpair) Name() string { return "refpair" }

// rpPairs maps acquire callee names to the release method the produced
// value must have.
var rpPairs = map[string]string{
	"Map":     "Release",
	"Retain":  "Release",
	"acquire": "release",
}

func (refpair) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The resource types' own methods implement the lifecycle; the
			// pairing obligation is on their callers.
			w := &rpWalker{pkg: pkg, transfers: rpTransferVars(pkg, fd)}
			state := &rpState{live: map[string]*rpResource{}}
			if !w.stmts(fd.Body.List, state) {
				w.checkLeaks(state, fd.Body.End(), "the implicit return at end of function", &w.diags)
			}
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

// rpResource is one outstanding acquisition.
type rpResource struct {
	key     string // expression the release must target: "reg", "s.adm"
	relName string // "Release" or "release"
	errVar  types.Object
	node    ast.Node
}

type rpState struct {
	live map[string]*rpResource
}

func (s *rpState) clone() *rpState {
	out := &rpState{live: make(map[string]*rpResource, len(s.live))}
	for k, v := range s.live {
		out.live[k] = v
	}
	return out
}

type rpWalker struct {
	pkg       *Package
	transfers map[string]bool // vars handed off via //ringlint:transfer
	deferred  []string        // resource keys released by a defer seen so far
	diags     []Diagnostic
}

// rpTransferVars collects //ringlint:transfer <var> directives anywhere
// in the function.
func rpTransferVars(pkg *Package, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	lines := directiveLines(pkg, "transfer")
	start := pkg.Fset.Position(fd.Pos()).Line
	end := pkg.Fset.Position(fd.End()).Line
	file := pkg.Fset.Position(fd.Pos()).Filename
	for fl, arg := range lines {
		if fl.file == file && fl.line >= start && fl.line <= end+1 && arg != "" {
			out[arg] = true
		}
	}
	return out
}

// stmts processes a block; the bool result reports that the block
// definitely terminated (return, exit, panic), so nothing after it runs.
func (w *rpWalker) stmts(list []ast.Stmt, st *rpState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt processes one statement; the bool result reports a terminator
// (return, exit, panic) after which the enclosing block stops.
// Acquisitions made inside a fall-through branch propagate out (union):
// a resource live at the end of any non-terminating path stays live
// after the statement.
func (w *rpWalker) stmt(s ast.Stmt, st *rpState) bool {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.AssignStmt:
		w.assign(s, st)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if rpTerminates(w.pkg, call) {
				return true
			}
			if key, ok := w.releaseTarget(call, st); ok {
				delete(st.live, key)
				return false
			}
			// Receiver-keyed acquire as a bare statement: r.Retain().
			if res := w.acquire(call, nil); res != nil {
				w.track(res, st)
			}
		}
	case *ast.DeferStmt:
		w.deferRelease(s.Call, st)
	case *ast.ReturnStmt:
		w.checkLeaks(w.afterTransfers(s, st), s.Pos(), "this return path", &w.diags)
		return true
	case *ast.SendStmt:
		if id, ok := s.Value.(*ast.Ident); ok {
			delete(st.live, id.Name) // handed to another goroutine
		}
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		body := st.clone()
		w.refineErrBranch(s.Cond, body)
		if !w.stmt(s.Body, body) {
			w.merge(st, body)
		}
		if s.Else != nil {
			els := st.clone()
			if !w.stmt(s.Else, els) {
				w.merge(st, els)
			}
		}
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		body := st.clone()
		if !w.stmt(s.Body, body) {
			w.merge(st, body)
		}
	case *ast.RangeStmt:
		body := st.clone()
		if !w.stmt(s.Body, body) {
			w.merge(st, body)
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		for _, c := range s.Body.List {
			branch := st.clone()
			if !w.stmts(c.(*ast.CaseClause).Body, branch) {
				w.merge(st, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			branch := st.clone()
			if !w.stmts(c.(*ast.CaseClause).Body, branch) {
				w.merge(st, branch)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := st.clone()
			w.stmt(cc.Comm, branch)
			if !w.stmts(cc.Body, branch) {
				w.merge(st, branch)
			}
		}
	}
	return false
}

// merge unions a fall-through branch's live set into the enclosing
// state (benchload acquires inside a switch case; ringstats inside an
// if body).
func (w *rpWalker) merge(st, branch *rpState) {
	for k, v := range branch.live {
		st.live[k] = v
	}
}

// assign handles acquire sites and transfer-by-store.
func (w *rpWalker) assign(s *ast.AssignStmt, st *rpState) {
	// Reassigning an error variable severs its link to earlier acquires.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := w.lhsObj(id); obj != nil {
				for _, r := range st.live {
					if r.errVar == obj {
						r.errVar = nil
					}
				}
			}
		}
	}
	// Transfer: resource stored into a field, element, or package var.
	for i, rhs := range s.Rhs {
		id, ok := rhs.(*ast.Ident)
		if !ok || st.live[id.Name] == nil || i >= len(s.Lhs) {
			continue
		}
		switch lhs := s.Lhs[i].(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			_ = lhs
			delete(st.live, id.Name)
		case *ast.Ident:
			if obj := w.pkg.Info.Uses[lhs]; obj != nil && obj.Parent() == w.pkg.Types.Scope() {
				delete(st.live, id.Name) // package-level owner takes over
			}
		}
	}
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	var key *ast.Ident
	if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		key = id
	}
	res := w.acquire(call, key)
	if res == nil {
		return
	}
	// The error result, if captured, refines `if err != nil` branches:
	// inside them the acquire failed.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := w.lhsObj(id); obj != nil && obj.Type() != nil && obj.Type().String() == "error" {
				res.errVar = obj
			}
		}
	}
	w.track(res, st)
}

func (w *rpWalker) track(res *rpResource, st *rpState) {
	if w.transfers[res.key] {
		return // annotated handoff
	}
	for _, k := range w.deferred {
		if k == res.key {
			return // a defer registered earlier releases it at exit
		}
	}
	st.live[res.key] = res
}

func (w *rpWalker) lhsObj(id *ast.Ident) types.Object {
	if obj := w.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pkg.Info.Uses[id]
}

// acquire matches a call against rpPairs, verifying the produced value
// has the paired release method. key overrides the resource expression
// (the assignment lhs); nil means the call receiver (Retain/acquire).
func (w *rpWalker) acquire(call *ast.CallExpr, key *ast.Ident) *rpResource {
	var name string
	var sel *ast.SelectorExpr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		sel = fun
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name // same-package call, e.g. Map(path)
	default:
		return nil
	}
	relName, ok := rpPairs[name]
	if !ok {
		return nil
	}
	switch name {
	case "Map":
		// Function returning the resource (mman.Map or a same-package
		// Map): the assignment lhs is the handle.
		if key == nil {
			return nil
		}
		t := w.pkg.Info.Types[call].Type
		if tuple, ok := t.(*types.Tuple); ok && tuple.Len() > 0 {
			t = tuple.At(0).Type()
		}
		if !rpHasMethod(t, relName) {
			return nil
		}
		return &rpResource{key: key.Name, relName: relName, node: call}
	default:
		// Method acquire (Retain, acquire): the receiver is the resource.
		if sel == nil {
			return nil
		}
		recv := w.pkg.Info.Types[sel.X].Type
		if !rpHasMethod(recv, relName) {
			return nil
		}
		return &rpResource{key: types.ExprString(sel.X), relName: relName, node: call}
	}
}

// releaseTarget matches `<key>.Release()` / `<key>.release(...)` for a
// live resource.
func (w *rpWalker) releaseTarget(call *ast.CallExpr, st *rpState) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	key := types.ExprString(sel.X)
	res := st.live[key]
	if res != nil && sel.Sel.Name == res.relName {
		return key, true
	}
	return "", false
}

// deferRelease handles `defer x.Release()` and deferred closures that
// release: both run on every exit, including panics.
func (w *rpWalker) deferRelease(call *ast.CallExpr, st *rpState) {
	record := func(key string) {
		delete(st.live, key)
		w.deferred = append(w.deferred, key)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Release" || sel.Sel.Name == "release" {
			record(types.ExprString(sel.X))
			return
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := inner.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Release" || sel.Sel.Name == "release" {
					record(types.ExprString(sel.X))
				}
			}
			return true
		})
	}
}

// refineErrBranch drops resources whose acquire failed from an
// `if err != nil` branch: nothing was acquired on that path.
func (w *rpWalker) refineErrBranch(cond ast.Expr, st *rpState) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return
	}
	id, ok := be.X.(*ast.Ident)
	if !ok {
		return
	}
	if nilID, ok := be.Y.(*ast.Ident); !ok || nilID.Name != "nil" {
		return
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	for k, r := range st.live {
		if r.errVar == obj {
			delete(st.live, k)
		}
	}
}

// afterTransfers clones the state minus resources the return statement
// itself hands to the caller.
func (w *rpWalker) afterTransfers(ret *ast.ReturnStmt, st *rpState) *rpState {
	out := st.clone()
	for _, res := range ret.Results {
		if id, ok := res.(*ast.Ident); ok {
			delete(out.live, id.Name)
		}
	}
	return out
}

func (w *rpWalker) checkLeaks(st *rpState, pos token.Pos, where string, diags *[]Diagnostic) {
	for _, r := range st.live {
		*diags = append(*diags, Diagnostic{
			Pos:      w.pkg.Fset.Position(pos),
			Analyzer: "refpair",
			Message: "acquired " + r.key + " is not released or transferred on " + where +
				" (pair with " + r.relName + ", defer it, or annotate //ringlint:transfer " + r.key + " -- reason)",
		})
	}
}

// rpHasMethod reports whether t (or *t) has a method with the given
// name — the gate that keeps unrelated Map/acquire/Retain callees out
// of the pair table.
func rpHasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// rpTerminates matches calls after which the function never returns:
// os.Exit, log.Fatal*, panic.
func rpTerminates(pkg *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pkgID.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if pkgID.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return true
			}
		}
	}
	return false
}
