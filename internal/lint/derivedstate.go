package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// derivedstate enforces the contract of //ringlint:derived struct fields
// (the select samples, rank caches and devirtualized views of the
// succinct substrate): they are pure acceleration state, derived from the
// serialized fields. Therefore
//
//  1. no Write*/write* serialization function may reference them (a
//     reference in a serializer means the derived state is being written
//     to the stream, bloating the |G| + o(|G|) space claim and going
//     stale on rebuild), and
//  2. every deserializer returning the struct (the Read*/read*,
//     Decode*/decode* and View*/view* families) must rebuild them —
//     directly or through functions it calls — before handing the value
//     out, or queries on a loaded index return wrong answers.
type derivedstate struct{}

func (derivedstate) Name() string { return "derivedstate" }

// funcFacts are the per-function observations derivedstate gathers in one
// pass: derived fields assigned, derived fields referenced, and static
// intra-package callees (for the transitive rebuild check).
type funcFacts struct {
	decl    *ast.FuncDecl
	assigns map[*types.Var]bool
	refs    []*ast.SelectorExpr
	refVars []*types.Var
	callees []*types.Func
}

func (derivedstate) Run(pkg *Package) []Diagnostic {
	derived := structFieldsWithDirective(pkg, "derived")
	if len(derived) == 0 {
		return nil
	}
	derivedVars := make(map[*types.Var]*types.Named)
	for named, vars := range derived {
		for _, v := range vars {
			derivedVars[v] = named
		}
	}

	facts := make(map[*types.Func]*funcFacts)
	var order []*types.Func
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &funcFacts{decl: fd, assigns: make(map[*types.Var]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && derivedVars[v] != nil {
								ff.assigns[v] = true
							}
						}
					}
				case *ast.KeyValueExpr:
					if key, ok := n.Key.(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[key].(*types.Var); ok && derivedVars[v] != nil {
							ff.assigns[v] = true
						}
					}
				case *ast.SelectorExpr:
					if v, ok := pkg.Info.Uses[n.Sel].(*types.Var); ok && derivedVars[v] != nil {
						ff.refs = append(ff.refs, n)
						ff.refVars = append(ff.refVars, v)
					}
				case *ast.CallExpr:
					if callee := calleeFunc(pkg, n); callee != nil && callee.Pkg() == pkg.Types {
						ff.callees = append(ff.callees, callee)
					}
				}
				return true
			})
			facts[fn] = ff
			order = append(order, fn)
		}
	}

	var out []Diagnostic
	for _, fn := range order {
		ff := facts[fn]
		name := fn.Name()
		switch {
		case strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "write"):
			for i, sel := range ff.refs {
				v := ff.refVars[i]
				out = append(out, diag(pkg, "derivedstate", sel,
					"serialization function %s references derived field %s.%s (derived directories must never be serialized)",
					name, derivedVars[v].Obj().Name(), v.Name()))
			}
		case isDeserializerName(name):
			sig := fn.Type().(*types.Signature)
			results := sig.Results()
			for i := 0; i < results.Len(); i++ {
				t := results.At(i).Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				named, ok := t.(*types.Named)
				if !ok || len(derived[named]) == 0 {
					continue
				}
				rebuilt := transitiveAssigns(fn, facts)
				for _, v := range derived[named] {
					if !rebuilt[v] {
						out = append(out, diag(pkg, "derivedstate", ff.decl.Name,
							"deserializer %s returns %s without rebuilding derived field %s",
							name, named.Obj().Name(), v.Name()))
					}
				}
			}
		}
	}
	return out
}

// transitiveAssigns returns the derived fields assigned by fn or by any
// function reachable from it through static intra-package calls.
func transitiveAssigns(fn *types.Func, facts map[*types.Func]*funcFacts) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	seen := make(map[*types.Func]bool)
	var visit func(*types.Func)
	visit = func(f *types.Func) {
		if seen[f] {
			return
		}
		seen[f] = true
		ff := facts[f]
		if ff == nil {
			return
		}
		for v := range ff.assigns {
			out[v] = true
		}
		for _, callee := range ff.callees {
			visit(callee)
		}
	}
	visit(fn)
	return out
}
