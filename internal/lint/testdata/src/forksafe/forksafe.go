// Package forksafe is a ringlint test fixture: positive and negative
// cases for the forksafe analyzer.
package forksafe

type index struct{ data []uint64 }

// good deep-copies its cursor slice and shares the tagged index.
type good struct {
	idx  *index //ringlint:shared-immutable -- immutable after construction
	vals []int
}

func (g *good) Fork() *good {
	return &good{
		idx:  g.idx,
		vals: append([]int(nil), g.vals...),
	}
}

// bad shares its untagged slice field through the composite literal.
type bad struct {
	vals []int
}

func (b *bad) Fork() *bad {
	return &bad{
		vals: b.vals, // want "shares reference field vals"
	}
}

// badCopy copies the struct and never rebuilds the slice.
type badCopy struct {
	vals []int
}

func (b *badCopy) Fork() *badCopy {
	cp := *b // want "never rebuilds reference field vals"
	return &cp
}

// goodCopy copies the struct, then rebuilds the slice: negative case.
type goodCopy struct {
	vals []int
}

func (g *goodCopy) Fork() *goodCopy {
	cp := *g
	cp.vals = append([]int(nil), g.vals...)
	return &cp
}
