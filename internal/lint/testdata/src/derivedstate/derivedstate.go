// Package derivedstate is a ringlint test fixture: positive and negative
// cases for the derivedstate analyzer.
package derivedstate

import "io"

// Index models a structure with a derived select directory.
type Index struct {
	data []uint64
	//ringlint:derived
	samples []uint32
}

// rebuild derives samples from data.
func (x *Index) rebuild() {
	x.samples = make([]uint32, len(x.data))
}

// WriteTo serializes data only; touching samples is a finding.
func (x *Index) WriteTo(w io.Writer) error {
	_ = x.data
	_ = x.samples // want "references derived field"
	return nil
}

// ReadIndex rebuilds samples through a helper: negative case (the rebuild
// check is transitive over intra-package calls).
func ReadIndex(r io.Reader) (*Index, error) {
	x := &Index{data: make([]uint64, 4)}
	x.rebuild()
	return x, nil
}

// ReadIndexBroken forgets the rebuild: positive case.
func ReadIndexBroken(r io.Reader) (*Index, error) { // want "without rebuilding derived field samples"
	return &Index{data: make([]uint64, 4)}, nil
}
