// Package ctxflow is a ringlint test fixture: positive and negative
// cases for the context-propagation analyzer.
package ctxflow

import (
	"context"
	"net/http"
	"sync"
	"time"
)

func background() context.Context {
	return context.Background() // want "severs the cancellation chain"
}

func todo() context.Context {
	return context.TODO() // want "severs the cancellation chain"
}

func detached() context.Context {
	//ringlint:detach -- fixture: reviewed detach point
	return context.Background() // negative: annotated detach
}

func handler(w http.ResponseWriter, r *http.Request) {
	waitBoth(r, make(chan struct{}))
	helperSleep()
	pollOnce(make(chan int))
}

func waitBoth(r *http.Request, ch chan struct{}) {
	select { // negative: context Done case present
	case <-ch:
	case <-r.Context().Done():
	}
}

func helperSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep blocks a handler-reachable path"
}

func pollOnce(ch chan int) int {
	select { // negative: default makes it non-blocking
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func bareReceive(w http.ResponseWriter, r *http.Request, ch chan int) int {
	return <-ch // want "blocking receive outside select"
}

func selectNoDone(w http.ResponseWriter, r *http.Request, a, b chan int) int {
	select { // want "no context Done"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func wgWait(w http.ResponseWriter, r *http.Request, wg *sync.WaitGroup) {
	wg.Wait() // want "WaitGroup.Wait blocks a handler-reachable path"
}

func notReachable(ch chan int) int {
	return <-ch // negative: not on a handler path
}
