// Package truncation is a ringlint test fixture: positive and negative
// cases for the truncation analyzer.
package truncation

import "io"

type header struct {
	n int
}

// readGuarded validates the narrowed value before use: negative case.
func readGuarded(r io.Reader, raw []uint64) (*header, error) {
	h := &header{n: int(raw[0])}
	if h.n < 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return h, nil
}

// readMasked masks the operand to the target width: negative case.
func readMasked(raw []uint64) uint32 {
	return uint32(raw[1] & 0xffff)
}

// notARead narrows without guards outside a deserializer: negative case
// (the analyzer is scoped to Read*/read* functions).
func notARead(raw []uint64) int {
	return int(raw[0])
}

// readBroken narrows an untrusted header word with no validation.
func readBroken(raw []uint64) int {
	return int(raw[0]) // want "unguarded uint64→int conversion"
}

// decodeBroken narrows an untrusted word in the Decode* deserializer
// family (bits.Source path): positive case.
func decodeBroken(raw []uint64) int {
	return int(raw[0]) // want "unguarded uint64→int conversion"
}

// viewBroken narrows an untrusted word in the View* deserializer family
// (zero-copy mapping path): positive case.
func viewBroken(raw []uint64) uint32 {
	return uint32(raw[0]) // want "unguarded uint64→uint32 conversion"
}

// decodeGuarded validates the narrowed value: negative case.
func decodeGuarded(raw []uint64) (int, error) {
	n := int(raw[0])
	if n < 0 {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}
