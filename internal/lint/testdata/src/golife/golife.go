// Package golife is a ringlint test fixture: positive and negative
// cases for the goroutine-lifecycle analyzer.
package golife

import "sync"

func work() {}

func fireAndForget() {
	go work() // want "no tracked termination path"
}

func fireAndForgetLit() {
	go func() { // want "no tracked termination path"
		work()
	}()
}

func waitGroupTracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // negative: joined via wg.Wait
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func completionSend() error {
	errs := make(chan error, 1)
	go func() { // negative: last statement signals completion
		work()
		errs <- nil
	}()
	return <-errs
}

func completionClose() {
	done := make(chan struct{})
	go func() { // negative: close(done) is the join point
		work()
		close(done)
	}()
	<-done
}

func watchdog() {
	stop := make(chan struct{})
	defer close(stop)
	go func() { // negative: bounded by the spawner's close(stop)
		select {
		case <-stop:
		}
	}()
	work()
}

type looper struct{ wg sync.WaitGroup }

func (l *looper) loop() {
	defer l.wg.Done()
	work()
}

func (l *looper) start() {
	l.wg.Add(1)
	go l.loop() // negative: named callee defers wg.Done
}

func untrackedNamed() {
	go work() // want "no tracked termination path"
}

func reviewedException() {
	//ringlint:goroutine-exception -- fixture: reviewed fire-and-forget
	go work() // negative: annotated exception
}
