// Package hotpath is a ringlint test fixture: positive and negative cases
// for the hotpath analyzer. It is loaded only by the analyzer tests (and
// by hand via `go run ./cmd/ringlint <this dir>`); the go tool ignores
// testdata directories.
package hotpath

import "sort"

type iface interface{ Do() int }

type state struct {
	frames []int
	m      map[string]int
}

func cleanup() {}

//ringlint:hotpath
func closure(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "closure allocated"
}

//ringlint:hotpath
func deferred() {
	defer cleanup() // want "defer on a hot path"
}

//ringlint:hotpath
func dispatch(v iface) int {
	return v.Do() // want "interface method call"
}

//ringlint:hotpath allow-dispatch
func dispatchAllowed(v iface) int {
	return v.Do() // negative: allow-dispatch waives the interface-call rule
}

//ringlint:hotpath
func dispatchAllowedLine(v iface) int {
	return v.Do() //ringlint:allow hotpath -- negative: reviewed single dispatch
}

//ringlint:hotpath
func mapRead(s *state, k string) int {
	return s.m[k] // want "map access"
}

//ringlint:hotpath
func mapDelete(s *state, k string) {
	delete(s.m, k) // want "map delete"
}

//ringlint:hotpath
func freshAppend(xs []int, v int) []int {
	ys := append(xs, v) // want "not a self-append"
	return ys
}

//ringlint:hotpath
func selfAppend(s *state, v int) {
	s.frames = append(s.frames, v) // negative: the amortized push idiom
}

// unannotated functions are not checked.
func unannotated() map[string]int {
	return map[string]int{"k": 1}
}
