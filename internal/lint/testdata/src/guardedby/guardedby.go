// Package guardedby is a ringlint test fixture: positive and negative
// cases for the guardedby lock-discipline analyzer.
package guardedby

import "sync"

type counterSet struct {
	mu sync.Mutex
	n  int //ringlint:guarded-by mu
	m  map[string]int
}

// registry guards the records it owns: record fields name the registry
// type's mutex.
type registry struct {
	mu   sync.Mutex
	recs map[string]*record
}

type record struct {
	members int //ringlint:guarded-by registry.mu
}

func unlocked(c *counterSet) int {
	return c.n // want "access to c.n without holding mu"
}

func locked(c *counterSet) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // negative: lock held via defer
}

func lockUnlock(c *counterSet) {
	c.mu.Lock()
	c.n++ // negative: between Lock and Unlock
	c.mu.Unlock()
	c.n-- // want "access to c.n without holding mu"
}

func earlyReturn(c *counterSet, quit bool) int {
	c.mu.Lock()
	if quit {
		c.mu.Unlock()
		return 0
	}
	v := c.n // negative: the unlock above belongs to the returning branch
	c.mu.Unlock()
	return v
}

func wrongReceiver(a, b *counterSet) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want "access to b.n without holding mu"
}

func unguardedField(c *counterSet) map[string]int {
	return c.m // negative: field carries no directive
}

// bumpLocked relies on the caller-holds-the-lock naming convention.
func (c *counterSet) bumpLocked() {
	c.n++ // negative: *Locked suffix means the caller holds mu
}

// bump is the locking wrapper.
func (c *counterSet) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

//ringlint:locked mu
func (c *counterSet) bumpAnnotated() {
	c.n++ // negative: //ringlint:locked declares the caller's lock
}

func crossGuard(r *registry, rec *record) {
	rec.members++ // want "access to rec.members without holding registry.mu"
	r.mu.Lock()
	rec.members++ // negative: the owning registry's lock is held
	r.mu.Unlock()
}

func constructor() *counterSet {
	c := &counterSet{}
	c.n = 1 // negative: constructed here, not shared yet
	return c
}

func closureResets(c *counterSet) func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want "access to c.n without holding mu"
	}
}

func reviewed(c *counterSet) int {
	//ringlint:allow guardedby -- fixture: reviewed lock-free fast path
	return c.n // negative: allow suppression
}
