// Package refpair is a ringlint test fixture: positive and negative
// cases for the acquire/release pairing analyzer.
package refpair

import "os"

type region struct{ refs int }

func Map(path string) (*region, error) { return &region{refs: 1}, nil }

func (r *region) Retain() *region { r.refs++; return r }
func (r *region) Release()        { r.refs-- }

type sem struct{ used int }

func (s *sem) acquire(w int) error { s.used += w; return nil }
func (s *sem) release(w int)       { s.used -= w }

func use(r *region) {}

func leakOnReturn(path string) error {
	r, err := Map(path)
	if err != nil {
		return err // negative: the acquire failed on this branch
	}
	use(r)
	return nil // want "not released or transferred"
}

func releasedOnAllPaths(path string) error {
	r, err := Map(path)
	if err != nil {
		return err
	}
	defer r.Release()
	use(r)
	return nil // negative: deferred release covers every exit
}

func deferredClosureRelease(path string) error {
	r, err := Map(path)
	if err != nil {
		return err
	}
	defer func() { r.Release() }()
	use(r)
	return nil // negative: the deferred closure releases
}

func explicitRelease(path string) error {
	r, err := Map(path)
	if err != nil {
		return err
	}
	use(r)
	r.Release()
	return nil // negative
}

func leakOnBranch(path string) (*region, error) {
	r, err := Map(path)
	if err != nil {
		return nil, err
	}
	if r.refs > 1 {
		return nil, nil // want "not released or transferred"
	}
	return r, nil // negative: transfer by return
}

var global *region

func transferToGlobal(path string) error {
	r, err := Map(path)
	if err != nil {
		return err
	}
	global = r // negative: package-level owner takes over
	return nil
}

func annotatedTransfer(path string) error {
	//ringlint:transfer r -- fixture: handed off to a finalizer
	r, err := Map(path)
	if err != nil {
		return err
	}
	use(r)
	return nil // negative: annotated handoff
}

func retainLeak(r *region) {
	r.Retain() // acquire keyed to the receiver
	use(r)
} // want "not released or transferred"

func retainBalanced(r *region) {
	r.Retain()
	defer r.Release()
	use(r)
}

func weightHeld(s *sem) error {
	if err := s.acquire(1); err != nil {
		return err
	}
	defer s.release(1)
	return nil // negative
}

func weightDropped(s *sem) error {
	if err := s.acquire(1); err != nil {
		return err
	}
	return nil // want "not released or transferred"
}

func exitHolding(path string) {
	r, err := Map(path)
	if err != nil {
		return
	}
	use(r)
	os.Exit(0) // negative: the dying process owes nothing
}
