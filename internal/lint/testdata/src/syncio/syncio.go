// Package syncio is a ringlint test fixture: positive and negative
// cases for the durable-I/O error-checking analyzer. The file opts in
// via the durable header directive, standing in for internal/persist.
//
//ringlint:durable
package syncio

import (
	"bufio"
	"io"
	"os"
)

func discardedSync(f *os.File) {
	f.Sync() // want "error from f.Sync discarded"
}

func discardedClose(f *os.File) {
	f.Close() // want "error from f.Close discarded"
}

func blankClose(f *os.File) {
	_ = f.Close() // want "assigned to blank"
}

func blankWriteErr(f *os.File, p []byte) int {
	n, _ := f.Write(p) // want "assigned to blank"
	return n
}

func captured(f *os.File, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	return f.Sync() // negative: propagated to the caller
}

func deferredWriteClose(path string, p []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred f.Close on a durable path"
	_, err = f.Write(p)
	return err
}

func deferredReadClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // negative: read-only handle, close error harmless
	return io.ReadAll(f)
}

func renameDiscarded(a, b string) {
	os.Rename(a, b) // want "error from os.Rename discarded"
}

func renameChecked(a, b string) error {
	return os.Rename(a, b) // negative
}

func flushDiscarded(w *bufio.Writer) {
	w.Flush() // want "error from w.Flush discarded"
}

func flushChecked(w *bufio.Writer) error {
	return w.Flush() // negative
}

func reviewedDiscard(f *os.File) {
	f.Close() //ringlint:allow syncio -- fixture: best-effort close on a path already failing
}
