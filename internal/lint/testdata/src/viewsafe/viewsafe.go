// Package viewsafe is a ringlint test fixture: positive and negative
// cases for the viewsafe analyzer. The source type mimics bits.Source —
// its Words method may return a slice aliasing a read-only mapping.
package viewsafe

type source struct{ buf []uint64 }

func (s *source) Words(n int) ([]uint64, error) { return s.buf[:n], nil }

// vec's data is populated by the view decoder below, so it may alias a
// mapping.
type vec struct {
	data []uint64 //ringlint:viewed
	n    int
}

// bare is missing the annotation: assigning a Words slice into it is a
// contract violation.
type bare struct {
	data []uint64
}

// WriteBits stands in for the real in-place mutator the analyzer knows.
func WriteBits(w []uint64, pos uint64, v uint64) { w[pos>>6] |= v }

// viewOK stores the aliased slice without writing: negative case.
func viewOK(src *source) (*vec, error) {
	words, err := src.Words(4)
	if err != nil {
		return nil, err
	}
	return &vec{data: words, n: 4}, nil
}

// viewWrite writes through a Words-derived local: positive case.
func viewWrite(src *source) error {
	words, err := src.Words(4)
	if err != nil {
		return err
	}
	words[0] = 1 // want "write through view-aliased slice words"
	return nil
}

// viewOpAssign op-assigns through a Words-derived local: positive case.
func viewOpAssign(src *source) error {
	words, err := src.Words(4)
	if err != nil {
		return err
	}
	words[0] |= 2 // want "write through view-aliased slice words"
	return nil
}

// viewAppend appends to a Words-derived local: positive case (append can
// write into spare capacity of the aliased array).
func viewAppend(src *source) ([]uint64, error) {
	words, err := src.Words(4)
	if err != nil {
		return nil, err
	}
	return append(words, 7), nil // want "append to view-aliased slice words"
}

// viewCopyInto copies into a Words-derived local: positive case.
func viewCopyInto(src *source, fresh []uint64) error {
	words, err := src.Words(4)
	if err != nil {
		return err
	}
	copy(words, fresh) // want "copy into view-aliased slice words"
	return nil
}

// viewCopyFrom copies OUT of the aliased slice: negative case (reading
// is the whole point of the view).
func viewCopyFrom(src *source, fresh []uint64) error {
	words, err := src.Words(4)
	if err != nil {
		return err
	}
	copy(fresh, words)
	return nil
}

// fieldWrite writes through an annotated field: positive case.
func fieldWrite(v *vec) {
	v.data[0] = 9 // want "write through view-aliased slice v.data"
}

// fieldMutator passes an annotated field to a known mutator: positive
// case.
func fieldMutator(v *vec) {
	WriteBits(v.data, 0, 1) // want "passing view-aliased slice v.data to in-place mutator WriteBits"
}

// fieldRead reads the annotated field: negative case.
func fieldRead(v *vec) uint64 { return v.data[0] }

// buildFresh writes through the annotated field into backing it just
// allocated — the reviewed constructor exception: negative case.
func buildFresh(n int) *vec {
	v := &vec{data: make([]uint64, n), n: n}
	WriteBits(v.data, 0, 1) //ringlint:allow viewsafe -- fresh allocation, never viewed
	return v
}

// viewUnannotated assigns a Words slice into a field without the
// annotation: positive case.
func viewUnannotated(src *source, b *bare) (err error) {
	b.data, err = src.Words(2) // want "not annotated //ringlint:viewed"
	return err
}
