package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/bitvector"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader type-checks module packages from source with no external
// dependencies: intra-module imports are resolved recursively from the
// module tree, everything else (the standard library) through the
// go/importer source importer. It implements types.ImporterFrom so it can
// be handed to types.Config directly.
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // by import path; nil entry = in progress
	tags       map[string]bool     // build tags considered enabled
}

// Load type-checks packages of the module that contains dir and returns
// them in deterministic (import path) order.
//
// Each pattern is either the recursive pattern "./..." — every package
// under the module root, skipping testdata, vendor and hidden directories —
// or a directory path, which is loaded as a single package even when it
// lives below a testdata directory (that is how the analyzer fixtures are
// loaded). Test files are not analyzed. Files whose build constraints do
// not match the default build (in particular the ringdebug assertion
// layer) are skipped, exactly as `go build` would skip them.
func Load(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		tags:       defaultTags(),
	}

	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := modulePackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				addDir(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			ds, err := modulePackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				addDir(d)
			}
		default:
			addDir(pat)
		}
	}

	var out []*Package
	for _, d := range dirs {
		path, err := ld.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.load(path, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

func defaultTags() map[string]bool {
	t := map[string]bool{
		runtime.GOOS:   true,
		runtime.GOARCH: true,
		"gc":           true,
	}
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly":
		t["unix"] = true
	}
	return t
}

// modulePackageDirs returns every directory under root that contains
// non-test Go files, skipping testdata, vendor and hidden directories.
func modulePackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor maps a directory inside the module to its import path.
func (ld *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, ld.moduleDir)
	}
	if rel == "." {
		return ld.modulePath, nil
	}
	return ld.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForImport is the inverse of importPathFor.
func (ld *loader) dirForImport(path string) string {
	if path == ld.modulePath {
		return ld.moduleDir
	}
	rel := strings.TrimPrefix(path, ld.modulePath+"/")
	return filepath.Join(ld.moduleDir, filepath.FromSlash(rel))
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from source by this loader, everything else is delegated to the
// standard library source importer.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == ld.modulePath || strings.HasPrefix(path, ld.modulePath+"/") {
		pkg, err := ld.load(path, ld.dirForImport(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks the package in dir (memoized). It returns
// nil when the directory holds no buildable non-test Go files.
func (ld *loader) load(path, dir string) (*Package, error) {
	if pkg, done := ld.pkgs[path]; done {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	ld.pkgs[path] = nil // mark in progress for cycle detection

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		fpath := filepath.Join(dir, name)
		src, err := os.ReadFile(fpath)
		if err != nil {
			return nil, err
		}
		if !ld.fileMatchesBuild(src) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, fpath, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(ld.pkgs, path)
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// fileMatchesBuild reports whether the file's //go:build constraint (if
// any) is satisfied with the loader's tag set — no tags beyond the
// platform defaults, so ringdebug-only files are skipped like `go build`
// would skip them.
func (ld *loader) fileMatchesBuild(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true // malformed constraint: let the parser complain
		}
		return expr.Eval(func(tag string) bool { return ld.tags[tag] })
	}
	return true
}
