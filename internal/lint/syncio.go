package lint

// syncio enforces the durability contract on the persistence tier: an
// error from Sync, Close, Write, WriteString, Flush or Truncate on a
// file or buffered writer — or from os.Rename — that is silently
// dropped breaks 200-after-fsync without any test noticing. The WAL
// acks a mutation only after fdatasync; a swallowed sync or close error
// on that path means the client holds a 200 for bytes the kernel never
// promised to keep.
//
// Scope: every file under internal/persist, plus any file whose header
// carries //ringlint:durable. Within scope, a flagged call's error must
// be captured into a variable (propagation is the code reviewer's half
// of the contract); discarding it — as a bare statement, via `_ =`, or
// behind a naked defer — is a finding. One shape is exempt: `defer
// f.Close()` on a handle opened read-only by os.Open in the same
// function, where a close error cannot lose acknowledged data.
// Reviewed discards (best-effort close on an error path already
// reporting the original error) carry //ringlint:allow syncio --
// reason.

import (
	"go/ast"
	"go/types"
	"strings"
)

type syncio struct{}

func (syncio) Name() string { return "syncio" }

// sioMethods are the durable-I/O methods whose error results matter.
var sioMethods = map[string]bool{
	"Sync": true, "Close": true, "Write": true, "WriteString": true,
	"Flush": true, "Truncate": true,
}

func (syncio) Run(pkg *Package) []Diagnostic {
	inPersist := strings.HasSuffix(pkg.Path, "internal/persist")
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if !inPersist {
			if _, ok := fileHasDirective(pkg, f, "durable"); !ok {
				continue
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			readHandles := sioReadOnlyHandles(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok && sioDurableCall(pkg, call) {
						diags = append(diags, diag(pkg, "syncio",
							n, "error from %s discarded on a durable path: capture and propagate it (200-after-fsync)", sioCallName(call)))
					}
				case *ast.DeferStmt:
					if !sioDurableCall(pkg, n.Call) {
						return true
					}
					if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
						if id, ok := sel.X.(*ast.Ident); ok {
							if obj := pkg.Info.Uses[id]; obj != nil && readHandles[obj] {
								return true // read-only handle: close error is harmless
							}
						}
					}
					diags = append(diags, diag(pkg, "syncio",
						n, "deferred %s on a durable path drops its error: collect it explicitly (named return or error slot)", sioCallName(n.Call)))
				case *ast.AssignStmt:
					// `_ = f.Close()` and friends: explicit, but still a drop.
					for i, rhs := range n.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok || !sioDurableCall(pkg, call) {
							continue
						}
						if sioErrDiscarded(n.Lhs, i, len(n.Rhs)) {
							diags = append(diags, diag(pkg, "syncio",
								n, "error from %s assigned to blank on a durable path: capture and propagate it", sioCallName(call)))
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// sioDurableCall matches a durable-I/O call: one of sioMethods on an
// *os.File or *bufio.Writer, or os.Rename.
func sioDurableCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return id.Name == "os" && sel.Sel.Name == "Rename"
		}
	}
	if !sioMethods[sel.Sel.Name] {
		return false
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if t.String() == "*bufio.Writer" {
		return true
	}
	return sioFileLike(t)
}

// sioFileLike reports whether t behaves as a durable file handle: its
// method set carries both Sync() error and Close() error. This matches
// *os.File and any interface seam standing in for it (the WAL's
// committer-file type), so swapping a concrete file for a test seam
// does not silently drop the durable-I/O checks.
func sioFileLike(t types.Type) bool {
	return sioHasErrMethod(t, "Sync") && sioHasErrMethod(t, "Close")
}

// sioHasErrMethod reports whether t's method set has `name() error`.
func sioHasErrMethod(t types.Type, name string) bool {
	sel := types.NewMethodSet(t).Lookup(nil, name)
	if sel == nil {
		return false
	}
	sig, ok := sel.Obj().Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		sig.Results().At(0).Type().String() == "error"
}

// sioReadOnlyHandles collects locals assigned from os.Open (read-only)
// in this function.
func sioReadOnlyHandles(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Open" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "os" {
			return true
		}
		if len(as.Lhs) > 0 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// sioErrDiscarded reports whether the error result of this rhs call is
// assigned to blank. Write-shaped calls return (n, error), so in a
// tuple assignment the error is the last lhs; Sync/Close-shaped calls
// return only the error, so in a paired assignment it is slot i.
func sioErrDiscarded(lhs []ast.Expr, i, nRhs int) bool {
	var slot ast.Expr
	if nRhs == len(lhs) && i < len(lhs) {
		slot = lhs[i]
	} else {
		slot = lhs[len(lhs)-1]
	}
	id, ok := slot.(*ast.Ident)
	return ok && id.Name == "_"
}

func sioCallName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return types.ExprString(call.Fun)
}
