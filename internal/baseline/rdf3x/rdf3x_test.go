package rdf3x

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/testutil"
)

func TestScanRangeRoundTrip(t *testing.T) {
	// Every order must decompress back to the full sorted triple list.
	rng := rand.New(rand.NewSource(81))
	g := testutil.RandomGraph(rng, 3000, 100, 6)
	idx := New(g)
	for _, o := range idx.orders {
		var got []graph.Triple
		o.scanRange(key{}, key{^graph.ID(0), ^graph.ID(0), ^graph.ID(0)}, func(k key) bool {
			got = append(got, k.toTriple(o.perm))
			return true
		})
		if len(got) != g.Len() {
			t.Fatalf("order %v: decompressed %d triples, want %d", o.perm, len(got), g.Len())
		}
		graph.SortSPO(got)
		want := g.Triples()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v: triple %d mismatch: %v vs %v", o.perm, i, got[i], want[i])
			}
		}
	}
}

func TestScanRangeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := testutil.RandomGraph(rng, 2000, 60, 4)
	idx := New(g)
	o := idx.orders[0] // spo
	for trial := 0; trial < 200; trial++ {
		s := graph.ID(rng.Intn(60))
		lo := key{s, 0, 0}
		hi := key{s + 1, 0, 0}
		cnt := 0
		o.scanRange(lo, hi, func(k key) bool {
			if k[0] != s {
				t.Fatalf("scanRange leaked key %v outside s=%d", k, s)
			}
			cnt++
			return true
		})
		want := 0
		for _, u := range g.Triples() {
			if u.S == s {
				want++
			}
		}
		if cnt != want {
			t.Fatalf("scanRange(s=%d) visited %d, want %d", s, cnt, want)
		}
	}
}

func TestCompressionIsEffective(t *testing.T) {
	// A graph with heavy prefix sharing must compress well below 12 B/triple
	// per order.
	rng := rand.New(rand.NewSource(83))
	ts := make([]graph.Triple, 30000)
	for i := range ts {
		ts[i] = graph.Triple{
			S: graph.ID(rng.Intn(50)),
			P: graph.ID(rng.Intn(3)),
			O: graph.ID(rng.Intn(20000)),
		}
	}
	g := graph.New(ts)
	idx := New(g)
	bptPerOrder := float64(idx.SizeBytes()) / 6 / float64(g.Len())
	if bptPerOrder >= 12 {
		t.Errorf("compressed order uses %.2f B/triple, want < 12 (raw)", bptPerOrder)
	}
}

func TestEvaluateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g := testutil.RandomGraph(rng, 120, 15, 3)
	idx := New(g)
	for trial := 0; trial < 120; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 0.4, true)
		want := g.Evaluate(q, 0)
		res, err := idx.Evaluate(q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestEvaluateLimit(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(85)), 500, 30, 2)
	idx := New(g)
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	res, err := idx.Evaluate(q, ltj.Options{Limit: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 9 {
		t.Errorf("limit 9: got %d", len(res.Solutions))
	}
}

func TestEmptyGraph(t *testing.T) {
	idx := New(graph.New(nil))
	res, err := idx.Evaluate(graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Error("empty graph yielded solutions")
	}
}
