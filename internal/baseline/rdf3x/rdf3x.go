// Package rdf3x is the repository's RDF-3X analogue (Neumann & Weikum
// 2010): a clustered, leaf-compressed triple store. Triples are kept in
// all six orders; within each order, leaves of 128 triples are
// differentially encoded (a header byte says how many leading components
// repeat the previous triple; the remaining components are varint gaps),
// exactly the byte-level scheme RDF-3X popularised. Joins are pairwise
// index-nested-loop with a greedy selectivity planner — deliberately not
// worst-case optimal, like the system it models.
package rdf3x

import (
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// BlockSize is the number of triples per compressed leaf.
const BlockSize = 128

var perms = [6][3]graph.Position{
	{graph.PosS, graph.PosP, graph.PosO},
	{graph.PosS, graph.PosO, graph.PosP},
	{graph.PosP, graph.PosS, graph.PosO},
	{graph.PosP, graph.PosO, graph.PosS},
	{graph.PosO, graph.PosS, graph.PosP},
	{graph.PosO, graph.PosP, graph.PosS},
}

type key [3]graph.ID

func (k key) less(o key) bool {
	for i := 0; i < 3; i++ {
		if k[i] != o[i] {
			return k[i] < o[i]
		}
	}
	return false
}

// order is one compressed clustered index order.
type order struct {
	perm   [3]graph.Position
	firsts []key  // first key of each block (the sparse directory)
	data   []byte // concatenated compressed blocks
	starts []int  // byte offset of each block in data
	counts []int  // triples per block
	n      int
}

func buildOrder(ts []graph.Triple, perm [3]graph.Position) *order {
	o := &order{perm: perm, n: len(ts)}
	keys := make([]key, len(ts))
	for i, tr := range ts {
		keys[i] = keyOf(tr, perm)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })

	var buf [binary.MaxVarintLen64]byte
	for b := 0; b < len(keys); b += BlockSize {
		end := b + BlockSize
		if end > len(keys) {
			end = len(keys)
		}
		o.firsts = append(o.firsts, keys[b])
		o.starts = append(o.starts, len(o.data))
		o.counts = append(o.counts, end-b)
		prev := keys[b]
		// The first triple of a block is implicit in the directory entry.
		for i := b + 1; i < end; i++ {
			k := keys[i]
			// shared = number of leading components equal to the previous
			// triple; the first differing component is gap-encoded.
			shared := 0
			for shared < 3 && k[shared] == prev[shared] {
				shared++
			}
			if shared == 3 {
				panic("rdf3x: duplicate triple in input (graphs must be deduplicated)")
			}
			o.data = append(o.data, byte(shared))
			gap := uint64(k[shared] - prev[shared]) // positive: sorted order
			n := binary.PutUvarint(buf[:], gap)
			o.data = append(o.data, buf[:n]...)
			for j := shared + 1; j < 3; j++ {
				n := binary.PutUvarint(buf[:], uint64(k[j]))
				o.data = append(o.data, buf[:n]...)
			}
			prev = k
		}
	}
	o.starts = append(o.starts, len(o.data))
	return o
}

func keyOf(tr graph.Triple, perm [3]graph.Position) key {
	var k key
	for i, pos := range perm {
		switch pos {
		case graph.PosS:
			k[i] = tr.S
		case graph.PosP:
			k[i] = tr.P
		default:
			k[i] = tr.O
		}
	}
	return k
}

func (k key) toTriple(perm [3]graph.Position) graph.Triple {
	var tr graph.Triple
	for i, pos := range perm {
		switch pos {
		case graph.PosS:
			tr.S = k[i]
		case graph.PosP:
			tr.P = k[i]
		default:
			tr.O = k[i]
		}
	}
	return tr
}

// scanBlock decompresses block b, calling visit for each key; visit
// returning false stops the scan.
func (o *order) scanBlock(b int, visit func(key) bool) bool {
	k := o.firsts[b]
	if !visit(k) {
		return false
	}
	data := o.data[o.starts[b]:o.starts[b+1]]
	for i := 1; i < o.counts[b]; i++ {
		shared := int(data[0])
		data = data[1:]
		gap, n := binary.Uvarint(data)
		data = data[n:]
		k[shared] += graph.ID(gap)
		for j := shared + 1; j < 3; j++ {
			v, n := binary.Uvarint(data)
			data = data[n:]
			k[j] = graph.ID(v)
		}
		if !visit(k) {
			return false
		}
	}
	return true
}

// scanRange visits all keys k with lo <= k < hi in sorted order.
func (o *order) scanRange(lo, hi key, visit func(key) bool) {
	// First block that can contain lo: the last block whose first key <= lo.
	b := sort.Search(len(o.firsts), func(i int) bool { return lo.less(o.firsts[i]) })
	if b > 0 {
		b--
	}
	for ; b < len(o.firsts) && o.firsts[b].less(hi); b++ {
		cont := o.scanBlock(b, func(k key) bool {
			if k.less(lo) {
				return true
			}
			if !k.less(hi) {
				return false // keys only grow: the range is exhausted
			}
			return visit(k)
		})
		if !cont {
			return
		}
	}
}

// estimate returns an upper bound on the number of keys in [lo, hi),
// at block granularity (the planner's statistic).
func (o *order) estimate(lo, hi key) int {
	b1 := sort.Search(len(o.firsts), func(i int) bool { return lo.less(o.firsts[i]) })
	if b1 > 0 {
		b1--
	}
	b2 := sort.Search(len(o.firsts), func(i int) bool { return hi.less(o.firsts[i]) || o.firsts[i] == hi })
	if b2 >= len(o.firsts) {
		b2 = len(o.firsts)
	}
	est := 0
	for b := b1; b < b2; b++ {
		est += o.counts[b]
	}
	return est
}

func (o *order) sizeBytes() int {
	return len(o.data) + 12*len(o.firsts) + 8*len(o.starts) + 8*len(o.counts)
}

// Index is the six-order compressed store.
type Index struct {
	orders [6]*order
	n      int
}

// New builds the index.
func New(g *graph.Graph) *Index {
	idx := &Index{n: g.Len()}
	for i, p := range perms {
		idx.orders[i] = buildOrder(g.Triples(), p)
	}
	return idx
}

// SizeBytes returns the total compressed footprint.
func (idx *Index) SizeBytes() int {
	total := 0
	for _, o := range idx.orders {
		total += o.sizeBytes()
	}
	return total
}

// Len returns the number of indexed triples.
func (idx *Index) Len() int { return idx.n }

// rangeFor computes the best order and key range for tp under binding b.
func (idx *Index) rangeFor(tp graph.TriplePattern, b graph.Binding) (*order, key, key, map[graph.Position]graph.ID) {
	bound := map[graph.Position]graph.ID{}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		t := tp.Term(pos)
		if !t.IsVar {
			bound[pos] = t.Value
		} else if v, ok := b[t.Name]; ok {
			bound[pos] = v
		}
	}
	// Pick the order with the longest bound prefix.
	var best *order
	bestLen := -1
	for _, o := range idx.orders {
		l := 0
		for _, pos := range o.perm {
			if _, ok := bound[pos]; !ok {
				break
			}
			l++
		}
		if l > bestLen {
			bestLen, best = l, o
		}
	}
	var lo, hi key
	for i := 0; i < bestLen; i++ {
		lo[i] = bound[best.perm[i]]
		hi[i] = bound[best.perm[i]]
	}
	// hi = prefix incremented at its last bound coordinate.
	if bestLen == 0 {
		hi = key{graph.MaxID, graph.MaxID, graph.MaxID}
		// Upper bound is exclusive; use max key and accept missing the
		// all-max triple (ids never reach 2^32-1 in practice).
	} else {
		carry := true
		for i := bestLen - 1; i >= 0 && carry; i-- {
			hi[i]++
			carry = hi[i] == 0
		}
		if carry {
			hi = key{graph.MaxID, graph.MaxID, graph.MaxID}
		}
	}
	return best, lo, hi, bound
}

// Evaluate runs the pairwise greedy plan.
func (idx *Index) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	res := &ltj.Result{}
	if len(q) == 0 {
		return res, nil
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	ticks := 0
	expired := func() bool {
		if deadline.IsZero() {
			return false
		}
		ticks++
		return ticks&255 == 0 && time.Now().After(deadline)
	}

	var rec func(rem []graph.TriplePattern, b graph.Binding) bool
	rec = func(rem []graph.TriplePattern, b graph.Binding) bool {
		if expired() {
			res.TimedOut = true
			return false
		}
		if len(rem) == 0 {
			res.Solutions = append(res.Solutions, b.Clone())
			return opt.Limit <= 0 || len(res.Solutions) < opt.Limit
		}
		bestI, bestE := 0, int(^uint(0)>>1)
		for i, tp := range rem {
			o, lo, hi, _ := idx.rangeFor(tp, b)
			if e := o.estimate(lo, hi); e < bestE {
				bestI, bestE = i, e
			}
		}
		tp := rem[bestI]
		rest := make([]graph.TriplePattern, 0, len(rem)-1)
		rest = append(rest, rem[:bestI]...)
		rest = append(rest, rem[bestI+1:]...)
		o, lo, hi, bound := idx.rangeFor(tp, b)
		cont := true
		o.scanRange(lo, hi, func(k key) bool {
			if expired() {
				res.TimedOut = true
				cont = false
				return false
			}
			tr := k.toTriple(o.perm)
			if !matchesBound(tr, bound) {
				return true
			}
			ext, ok := extendBinding(tp, tr, b)
			if !ok {
				return true
			}
			if !rec(rest, ext) {
				cont = false
				return false
			}
			return true
		})
		return cont
	}
	rec(q, graph.Binding{})
	return res, nil
}

func matchesBound(tr graph.Triple, bound map[graph.Position]graph.ID) bool {
	if v, ok := bound[graph.PosS]; ok && tr.S != v {
		return false
	}
	if v, ok := bound[graph.PosP]; ok && tr.P != v {
		return false
	}
	if v, ok := bound[graph.PosO]; ok && tr.O != v {
		return false
	}
	return true
}

func extendBinding(tp graph.TriplePattern, tr graph.Triple, b graph.Binding) (graph.Binding, bool) {
	vals := [3]graph.ID{tr.S, tr.P, tr.O}
	out := b
	cloned := false
	for i, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		t := tp.Term(pos)
		if !t.IsVar {
			continue
		}
		if v, ok := out[t.Name]; ok {
			if v != vals[i] {
				return nil, false
			}
			continue
		}
		if !cloned {
			out = b.Clone()
			cloned = true
		}
		out[t.Name] = vals[i]
	}
	return out, true
}
