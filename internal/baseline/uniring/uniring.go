// Package uniring is the cyclic *unidirectional* configuration the paper
// contrasts the ring against (Section 2.3.2 and the end of Section 6): a
// BWT-based index that can only extend bindings backwards, in the style
// of Brisaboa et al.'s CSA index. Without bidirectionality one cyclic
// order cannot cover all elimination orders, so TWO orders are
// materialised (ctw(3) = 2, Table 3) — the ring's whole point is that
// bidirectionality brings this down to one.
//
// The implementation reuses the d-ary backward-only ring of package
// ringhd instantiated at d = 3, adapted to the trie-iterator interface so
// the same LTJ engine drives it. It serves as the "2 orders, backward
// only" ablation in the benchmarks: roughly twice the ring's space, with
// comparable query mechanics.
package uniring

import (
	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ringhd"
)

// Index wraps a 3-ary backward-only ring over the graph's triples.
type Index struct {
	hd *ringhd.Index
	n  int
}

// New builds the two cyclic orders over g. Subjects/objects and
// predicates are folded into one attribute domain (the larger of the
// two), which the d-ary ring requires; the per-position C arrays simply
// have some unused tail entries.
func New(g *graph.Graph) *Index {
	u := uint64(g.NumSO())
	if p := uint64(g.NumP()); p > u {
		u = p
	}
	if u == 0 {
		u = 1
	}
	tuples := make([]ringhd.Tuple, g.Len())
	for i, t := range g.Triples() {
		tuples[i] = ringhd.Tuple{t.S, t.P, t.O}
	}
	return &Index{hd: ringhd.New(tuples, 3, u), n: g.Len()}
}

// SizeBytes returns the index footprint (two cyclic orders).
func (idx *Index) SizeBytes() int { return idx.hd.SizeBytes() }

// Len returns the number of indexed triples.
func (idx *Index) Len() int { return idx.n }

// Orders returns the number of cyclic orders materialised (2 for d=3).
func (idx *Index) Orders() int { return idx.hd.Orders() }

// NewPatternIter creates the trie-iterator for tp.
func (idx *Index) NewPatternIter(tp graph.TriplePattern) ltj.PatternIter {
	it := &patternIter{idx: idx, bound: map[int]ringhd.Value{}}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		if t := tp.Term(pos); !t.IsVar {
			it.Bind(pos, t.Value)
		}
	}
	return it
}

// patternIter tracks the bound attribute values; every observable is
// recomputed by anchoring the bound set in whichever cyclic order covers
// it (O(d log U) per operation, the unidirectional regime's price).
type patternIter struct {
	idx   *Index //ringlint:shared-immutable -- the d-ary ring is immutable after construction
	bound map[int]ringhd.Value
	order []int // bind order, for Unbind
}

func attrOf(pos graph.Position) int { return int(pos) }

func (it *patternIter) Count() int {
	return it.idx.hd.Count(it.bound)
}

func (it *patternIter) Empty() bool { return it.Count() == 0 }

func (it *patternIter) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	v, ok := it.idx.hd.Leap(it.bound, attrOf(pos), ringhd.Value(c))
	return graph.ID(v), ok
}

func (it *patternIter) Bind(pos graph.Position, c graph.ID) {
	a := attrOf(pos)
	it.bound[a] = ringhd.Value(c)
	it.order = append(it.order, a)
}

func (it *patternIter) Unbind() {
	if len(it.order) == 0 {
		panic("uniring: Unbind with no bindings")
	}
	a := it.order[len(it.order)-1]
	it.order = it.order[:len(it.order)-1]
	delete(it.bound, a)
}

// Fork returns an independent copy for parallel evaluation: the bound-set
// map and bind order are cloned, the d-ary ring is shared read-only.
func (it *patternIter) Fork() ltj.PatternIter {
	cp := &patternIter{
		idx:   it.idx,
		bound: make(map[int]ringhd.Value, len(it.bound)),
		order: append([]int(nil), it.order...),
	}
	for k, v := range it.bound {
		cp.bound[k] = v
	}
	return cp
}

// CanEnumerate is always false: the unidirectional index has no
// lonely-variable fast path here; LTJ falls back to seek loops.
func (it *patternIter) CanEnumerate(graph.Position) bool { return false }

func (it *patternIter) Enumerate(graph.Position, func(graph.ID) bool) {
	panic("uniring: Enumerate not supported")
}
