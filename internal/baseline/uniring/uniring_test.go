package uniring

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func TestTwoOrders(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	if idx.Orders() != 2 {
		t.Fatalf("orders = %d, want 2 (ctw(3), Table 3)", idx.Orders())
	}
}

func TestRandomQueriesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	g := testutil.RandomGraph(rng, 120, 15, 3)
	idx := New(g)
	for trial := 0; trial < 100; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(4), 0.4, false)
		want := g.Evaluate(q, 0)
		res, err := ltj.Evaluate(idx, q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestPaperQuery(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("z"), graph.Const(0), graph.Var("y")),
	}
	res, err := ltj.Evaluate(idx, q, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Fatalf("got %d solutions, want 3", len(res.Solutions))
	}
}

func TestRoughlyTwiceTheRingSpace(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(112)), 5000, 500, 8)
	uni := New(g)
	r := ring.New(g, ring.Options{})
	ratio := float64(uni.SizeBytes()) / float64(r.SizeBytes())
	if ratio < 1.2 || ratio > 4 {
		t.Errorf("unidirectional/bidirectional space ratio = %.2f, expected near 2", ratio)
	}
}

func TestEmptyGraph(t *testing.T) {
	idx := New(graph.New(nil))
	res, err := ltj.Evaluate(idx, graph.Pattern{
		graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("o")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Error("empty graph yielded solutions")
	}
}
