// Package btreeltj is the repository's "Jena LTJ" analogue (Hogan et al.
// 2019): clustered B+-trees in all six attribute orders exposing the
// trie-iterator interface, driven by the same LTJ engine as the ring. It
// is worst-case optimal like the ring but pays for it with six full copies
// of the data in page-structured trees — the space/time trade-off the
// paper's Tables 1 and 2 quantify.
package btreeltj

import (
	"fmt"
	"sort"

	"repro/internal/baseline/btree"
	"repro/internal/graph"
	"repro/internal/ltj"
)

var perms = [6][3]graph.Position{
	{graph.PosS, graph.PosP, graph.PosO},
	{graph.PosS, graph.PosO, graph.PosP},
	{graph.PosP, graph.PosS, graph.PosO},
	{graph.PosP, graph.PosO, graph.PosS},
	{graph.PosO, graph.PosS, graph.PosP},
	{graph.PosO, graph.PosP, graph.PosS},
}

// Index holds the six trees.
type Index struct {
	trees [6]*btree.Tree
	n     int
}

// New bulk-loads the six orders.
func New(g *graph.Graph) *Index {
	idx := &Index{n: g.Len()}
	for i, p := range perms {
		idx.trees[i] = btree.NewTree(g.Triples(), p)
	}
	return idx
}

// SizeBytes returns the total footprint of the six trees.
func (idx *Index) SizeBytes() int {
	total := 0
	for _, t := range idx.trees {
		total += t.SizeBytes()
	}
	return total
}

// Len returns the number of indexed triples.
func (idx *Index) Len() int { return idx.n }

// treeFor returns the tree whose level order starts with exactly prefix.
func (idx *Index) treeFor(prefix []graph.Position) *btree.Tree {
	for i, p := range perms {
		ok := true
		for j, pos := range prefix {
			if p[j] != pos {
				ok = false
				break
			}
		}
		if ok {
			return idx.trees[i]
		}
	}
	panic(fmt.Sprintf("btreeltj: no order with prefix %v", prefix))
}

// NewPatternIter creates the trie-iterator for tp.
func (idx *Index) NewPatternIter(tp graph.TriplePattern) ltj.PatternIter {
	it := &patternIter{idx: idx}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		if t := tp.Term(pos); !t.IsVar {
			it.Bind(pos, t.Value)
		}
	}
	return it
}

// patternIter mirrors the flat-trie iterator, but every level search is a
// B+-tree descent. Ranges are global offsets into the clustered leaf
// level; they are identical across the trees sharing the current bound
// prefix sequence, so the iterator can hop between trees as new positions
// are bound.
type patternIter struct {
	idx    *Index //ringlint:shared-immutable -- the six trees are immutable after construction
	prefix []graph.Position
	vals   []graph.ID
	lo, hi int
	frames []frame
}

type frame struct{ lo, hi int }

func (it *patternIter) tree(next ...graph.Position) *btree.Tree {
	return it.idx.treeFor(append(append([]graph.Position{}, it.prefix...), next...))
}

func (it *patternIter) curRange() (int, int) {
	if len(it.prefix) == 0 {
		return 0, it.idx.n
	}
	return it.lo, it.hi
}

func (it *patternIter) Count() int {
	lo, hi := it.curRange()
	return hi - lo
}

func (it *patternIter) Empty() bool { return it.Count() == 0 }

// levelKey builds the search key for the current prefix values followed by
// c at the next level (remaining coordinates zero).
func (it *patternIter) levelKey(c graph.ID) btree.Key {
	var k btree.Key
	copy(k[:], it.vals)
	k[len(it.vals)] = c
	return k
}

func (it *patternIter) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	t := it.tree(pos)
	lo, hi := it.curRange()
	if lo >= hi {
		return 0, false
	}
	i := t.LowerBound(it.levelKey(c))
	if i < lo {
		i = lo
	}
	if i >= hi {
		return 0, false
	}
	return t.At(i)[len(it.prefix)], true
}

func (it *patternIter) Bind(pos graph.Position, c graph.ID) {
	it.frames = append(it.frames, frame{it.lo, it.hi})
	t := it.tree(pos)
	lo, hi := it.curRange()
	nlo := t.LowerBound(it.levelKey(c))
	nhi := t.LowerBound(it.levelKey(c + 1)) // c+1 wraps to 0 only at MaxID
	if c == graph.MaxID {
		nhi = hi
	}
	if nlo < lo {
		nlo = lo
	}
	if nhi > hi {
		nhi = hi
	}
	if nhi < nlo {
		nhi = nlo
	}
	it.lo, it.hi = nlo, nhi
	it.prefix = append(it.prefix, pos)
	it.vals = append(it.vals, c)
}

// Fork returns an independent copy for parallel evaluation: the cursor is
// cloned with its own backing arrays, the six trees are shared read-only.
func (it *patternIter) Fork() ltj.PatternIter {
	return &patternIter{
		idx:    it.idx,
		prefix: append([]graph.Position(nil), it.prefix...),
		vals:   append([]graph.ID(nil), it.vals...),
		frames: append([]frame(nil), it.frames...),
		lo:     it.lo,
		hi:     it.hi,
	}
}

func (it *patternIter) Unbind() {
	if len(it.prefix) == 0 {
		panic("btreeltj: Unbind with no bindings")
	}
	f := it.frames[len(it.frames)-1]
	it.frames = it.frames[:len(it.frames)-1]
	it.lo, it.hi = f.lo, f.hi
	it.prefix = it.prefix[:len(it.prefix)-1]
	it.vals = it.vals[:len(it.vals)-1]
}

func (it *patternIter) CanEnumerate(pos graph.Position) bool {
	for _, p := range it.prefix {
		if p == pos {
			return false
		}
	}
	return true
}

func (it *patternIter) Enumerate(pos graph.Position, visit func(graph.ID) bool) {
	t := it.tree(pos)
	lo, hi := it.curRange()
	level := len(it.prefix)
	for lo < hi {
		c := t.At(lo)[level]
		if !visit(c) {
			return
		}
		// Seek the first key with a larger coordinate at this level.
		lo += sort.Search(hi-lo, func(i int) bool { return t.At(lo + i)[level] > c })
	}
}
