package btreeltj

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/ring"
	"repro/internal/testutil"
)

func TestRandomQueriesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := testutil.RandomGraph(rng, 120, 15, 3)
	idx := New(g)
	for trial := 0; trial < 150; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 0.4, true)
		want := g.Evaluate(q, 0)
		res, err := ltj.Evaluate(idx, q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestLargerGraphSpotChecks(t *testing.T) {
	// Cross-check against the (independently implemented) ring index on a
	// graph too large for the naive evaluator.
	rng := rand.New(rand.NewSource(72))
	g := testutil.RandomGraph(rng, 3000, 80, 4)
	idx := New(g)
	rIdx := ring.New(g, ring.Options{})
	ringIdx := ltj.IndexFunc(func(tp graph.TriplePattern) ltj.PatternIter {
		return rIdx.NewPatternState(tp)
	})
	for trial := 0; trial < 40; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(3), 0.5, false)
		want, err := ltj.Evaluate(ringIdx, q, ltj.Options{})
		if err != nil {
			t.Fatalf("ring query %v: %v", q, err)
		}
		res, err := ltj.Evaluate(idx, q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want.Solutions, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestSpaceIsSixOrders(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(73)), 2000, 200, 5)
	idx := New(g)
	bpt := float64(idx.SizeBytes()) / float64(g.Len())
	if bpt < 72 {
		t.Errorf("Jena-LTJ bytes/triple = %.1f, expected >= 72 (six orders)", bpt)
	}
}

func TestTriangle(t *testing.T) {
	ts := []graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 2}, {S: 0, P: 0, O: 2},
		{S: 5, P: 0, O: 6},
	}
	g := graph.New(ts)
	idx := New(g)
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Const(0), graph.Var("z")),
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("z")),
	}
	res, err := ltj.Evaluate(idx, q, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("triangles = %d, want 1", len(res.Solutions))
	}
}
