// Package flattrie is the repository's EmptyHeaded analogue: a
// worst-case-optimal index that materialises the triples in all 3! = 6
// attribute orders ("Flat" in the paper's Figure 2) as flat sorted arrays
// whose levels are navigated by binary search — the classic trie-based
// storage wco joins assume. It exposes the same trie-iterator interface as
// the ring, so the identical LTJ engine runs over it; the comparison then
// isolates the indexing scheme, which is the paper's point: the flat
// scheme needs ~6x the data (plus directory overheads) where the ring
// needs one order in |G|+o(|G|) bits.
package flattrie

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// perms enumerates the six level orders.
var perms = [6][3]graph.Position{
	{graph.PosS, graph.PosP, graph.PosO},
	{graph.PosS, graph.PosO, graph.PosP},
	{graph.PosP, graph.PosS, graph.PosO},
	{graph.PosP, graph.PosO, graph.PosS},
	{graph.PosO, graph.PosS, graph.PosP},
	{graph.PosO, graph.PosP, graph.PosS},
}

// permIndex returns the index in perms of the order whose first k levels
// are exactly the positions of prefix (in order) — completing arbitrary
// levels afterwards.
func permIndex(prefix []graph.Position) int {
	for i, p := range perms {
		ok := true
		for j, pos := range prefix {
			if p[j] != pos {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	panic(fmt.Sprintf("flattrie: no order with prefix %v", prefix))
}

// Index stores the six sorted copies.
type Index struct {
	orders [6][]graph.Triple
	n      int
}

// New builds the six flat tries of g.
func New(g *graph.Graph) *Index {
	idx := &Index{n: g.Len()}
	for i, p := range perms {
		ts := make([]graph.Triple, g.Len())
		copy(ts, g.Triples())
		p := p
		sort.Slice(ts, func(a, b int) bool {
			x, y := ts[a], ts[b]
			for _, pos := range p {
				xv, yv := coord(x, pos), coord(y, pos)
				if xv != yv {
					return xv < yv
				}
			}
			return false
		})
		idx.orders[i] = ts
	}
	return idx
}

func coord(t graph.Triple, pos graph.Position) graph.ID {
	switch pos {
	case graph.PosS:
		return t.S
	case graph.PosP:
		return t.P
	default:
		return t.O
	}
}

// SizeBytes returns the memory footprint: six triple arrays.
func (idx *Index) SizeBytes() int {
	return 6*12*idx.n + 6*24
}

// Len returns the number of indexed triples.
func (idx *Index) Len() int { return idx.n }

// NewPatternIter creates the trie-iterator for tp (constants bound at
// creation).
func (idx *Index) NewPatternIter(tp graph.TriplePattern) ltj.PatternIter {
	it := &patternIter{idx: idx}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		if t := tp.Term(pos); !t.IsVar {
			it.Bind(pos, t.Value)
		}
	}
	return it
}

// patternIter navigates the flat tries. The bound positions, in binding
// order, select the trie whose levels start with exactly that sequence;
// the matching triples then form a contiguous range of that trie found by
// binary search.
type patternIter struct {
	idx    *Index           //ringlint:shared-immutable -- the six sorted arrays are immutable after construction
	prefix []graph.Position // bound positions in binding order
	vals   []graph.ID       // their values
	frames []fframe
	lo, hi int // current range; valid when len(prefix) > 0
}

type fframe struct {
	lo, hi int
}

// order returns the trie matching the current prefix plus an optional next
// position.
func (it *patternIter) order(next ...graph.Position) []graph.Triple {
	return it.idx.orders[permIndex(append(append([]graph.Position{}, it.prefix...), next...))]
}

// searchRange finds, within arr[lo,hi) sorted by pos at the current level,
// the subrange whose level-k coordinate equals c.
func searchLevel(arr []graph.Triple, lo, hi int, pos graph.Position, c graph.ID) (int, int) {
	first := lo + sort.Search(hi-lo, func(i int) bool { return coord(arr[lo+i], pos) >= c })
	last := lo + sort.Search(hi-lo, func(i int) bool { return coord(arr[lo+i], pos) > c })
	return first, last
}

func (it *patternIter) Count() int {
	if len(it.prefix) == 0 {
		return it.idx.n
	}
	return it.hi - it.lo
}

func (it *patternIter) Empty() bool { return it.Count() == 0 }

func (it *patternIter) Leap(pos graph.Position, c graph.ID) (graph.ID, bool) {
	arr := it.order(pos)
	lo, hi := it.lo, it.hi
	if len(it.prefix) == 0 {
		lo, hi = 0, len(arr)
	}
	if lo >= hi {
		return 0, false
	}
	// Values at the next level are sorted within the range: binary search c.
	i := lo + sort.Search(hi-lo, func(i int) bool { return coord(arr[lo+i], pos) >= c })
	if i >= hi {
		return 0, false
	}
	return coord(arr[i], pos), true
}

func (it *patternIter) Bind(pos graph.Position, c graph.ID) {
	it.frames = append(it.frames, fframe{it.lo, it.hi})
	arr := it.order(pos)
	lo, hi := it.lo, it.hi
	if len(it.prefix) == 0 {
		lo, hi = 0, len(arr)
	}
	it.lo, it.hi = searchLevel(arr, lo, hi, pos, c)
	it.prefix = append(it.prefix, pos)
	it.vals = append(it.vals, c)
}

// Fork returns an independent copy for parallel evaluation: the cursor
// (prefix, values, range, frame stack) is cloned with its own backing
// arrays, the six sorted triple arrays are shared read-only.
func (it *patternIter) Fork() ltj.PatternIter {
	return &patternIter{
		idx:    it.idx,
		prefix: append([]graph.Position(nil), it.prefix...),
		vals:   append([]graph.ID(nil), it.vals...),
		frames: append([]fframe(nil), it.frames...),
		lo:     it.lo,
		hi:     it.hi,
	}
}

func (it *patternIter) Unbind() {
	if len(it.prefix) == 0 {
		panic("flattrie: Unbind with no bindings")
	}
	f := it.frames[len(it.frames)-1]
	it.frames = it.frames[:len(it.frames)-1]
	it.lo, it.hi = f.lo, f.hi
	it.prefix = it.prefix[:len(it.prefix)-1]
	it.vals = it.vals[:len(it.vals)-1]
}

// CanEnumerate: a flat trie can enumerate any unbound position (there is
// always an order listing it right after the bound prefix).
func (it *patternIter) CanEnumerate(pos graph.Position) bool {
	for _, p := range it.prefix {
		if p == pos {
			return false
		}
	}
	return true
}

func (it *patternIter) Enumerate(pos graph.Position, visit func(graph.ID) bool) {
	arr := it.order(pos)
	lo, hi := it.lo, it.hi
	if len(it.prefix) == 0 {
		lo, hi = 0, len(arr)
	}
	for lo < hi {
		c := coord(arr[lo], pos)
		if !visit(c) {
			return
		}
		// Skip to the first triple with a larger coordinate.
		lo += sort.Search(hi-lo, func(i int) bool { return coord(arr[lo+i], pos) > c })
	}
}
