package flattrie

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/testutil"
)

func TestRandomQueriesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := testutil.RandomGraph(rng, 120, 15, 3)
	idx := New(g)
	for trial := 0; trial < 150; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 0.4, true)
		want := g.Evaluate(q, 0)
		res, err := ltj.Evaluate(idx, q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestPaperQuery(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(2), graph.Var("y")),
		graph.TP(graph.Var("x"), graph.Const(1), graph.Var("z")),
		graph.TP(graph.Var("z"), graph.Const(0), graph.Var("y")),
	}
	res, err := ltj.Evaluate(idx, q, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Fatalf("paper query: got %d solutions, want 3", len(res.Solutions))
	}
}

func TestLeapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := testutil.RandomGraph(rng, 80, 12, 3)
	idx := New(g)
	for trial := 0; trial < 200; trial++ {
		tr := g.Triples()[rng.Intn(g.Len())]
		it := idx.NewPatternIter(graph.TP(graph.Const(tr.S), graph.Var("p"), graph.Var("o")))
		c := graph.ID(rng.Intn(4))
		got, ok := it.Leap(graph.PosP, c)
		// Oracle.
		want, wok := graph.ID(0), false
		for _, u := range g.Triples() {
			if u.S == tr.S && u.P >= c && (!wok || u.P < want) {
				want, wok = u.P, true
			}
		}
		if ok != wok || (ok && got != want) {
			t.Fatalf("Leap(P,%d) with s=%d: got (%d,%v), want (%d,%v)", c, tr.S, got, ok, want, wok)
		}
	}
}

func TestSixOrdersSpace(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(53)), 1000, 100, 5)
	idx := New(g)
	// Six 12-byte copies: at least 72 bytes per triple.
	if bpt := float64(idx.SizeBytes()) / float64(g.Len()); bpt < 72 {
		t.Errorf("flat trie bytes/triple = %.1f, expected >= 72 (six copies)", bpt)
	}
}

func TestEnumerate(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	it := idx.NewPatternIter(graph.TP(graph.Const(5), graph.Const(1), graph.Var("o")))
	if !it.CanEnumerate(graph.PosO) {
		t.Fatal("cannot enumerate free object")
	}
	var got []graph.ID
	it.Enumerate(graph.PosO, func(c graph.ID) bool {
		got = append(got, c)
		return true
	})
	if len(got) != 5 { // Nobel nominated 5 entities
		t.Fatalf("enumerated %d objects, want 5: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("enumeration not strictly increasing")
		}
	}
}

func TestCannotEnumerateBoundPosition(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	it := idx.NewPatternIter(graph.TP(graph.Const(5), graph.Var("p"), graph.Var("o")))
	if it.CanEnumerate(graph.PosS) {
		t.Error("claimed to enumerate a bound position")
	}
}
