package btree

import (
	"time"

	"repro/internal/graph"
	"repro/internal/ltj"
)

// Jena is the Jena TDB analogue: three clustered B+-tree orders — spo,
// pos, osp — evaluated with index-nested-loop joins. It is deliberately
// not worst-case optimal: like the system it models, it picks a pattern
// order by greedy selectivity and, for each partial binding, scans the
// best matching index range. The ring should beat it clearly on cyclic
// patterns while using an order of magnitude less space.
type Jena struct {
	trees [3]*Tree // spo, pos, osp
	n     int
}

// jenaOrders are the three orders Jena TDB maintains.
var jenaOrders = [3][3]graph.Position{
	{graph.PosS, graph.PosP, graph.PosO},
	{graph.PosP, graph.PosO, graph.PosS},
	{graph.PosO, graph.PosS, graph.PosP},
}

// NewJena indexes g in the three Jena orders.
func NewJena(g *graph.Graph) *Jena {
	j := &Jena{n: g.Len()}
	for i, o := range jenaOrders {
		j.trees[i] = NewTree(g.Triples(), o)
	}
	return j
}

// SizeBytes returns the total index footprint.
func (j *Jena) SizeBytes() int {
	total := 0
	for _, t := range j.trees {
		total += t.SizeBytes()
	}
	return total
}

// bestTree returns the tree with the longest level prefix covered by the
// bound positions, together with the usable prefix values.
func (j *Jena) bestTree(bound map[graph.Position]graph.ID) (*Tree, []graph.ID) {
	bestLen := -1
	var best *Tree
	var bestPrefix []graph.ID
	for _, t := range j.trees {
		var prefix []graph.ID
		for _, pos := range t.order {
			v, ok := bound[pos]
			if !ok {
				break
			}
			prefix = append(prefix, v)
		}
		if len(prefix) > bestLen {
			bestLen = len(prefix)
			best = t
			bestPrefix = prefix
		}
	}
	return best, bestPrefix
}

// scan visits the triples matching tp under binding b, using the best
// available index prefix and filtering the rest.
func (j *Jena) scan(tp graph.TriplePattern, b graph.Binding, visit func(graph.Triple) bool) {
	bound := map[graph.Position]graph.ID{}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		t := tp.Term(pos)
		if !t.IsVar {
			bound[pos] = t.Value
		} else if v, ok := b[t.Name]; ok {
			bound[pos] = v
		}
	}
	tree, prefix := j.bestTree(bound)
	lo, hi := tree.PrefixRange(prefix)
	for i := lo; i < hi; i++ {
		tr := tree.TripleAt(i)
		if matchesBound(tr, bound) {
			if !visit(tr) {
				return
			}
		}
	}
}

func matchesBound(tr graph.Triple, bound map[graph.Position]graph.ID) bool {
	if v, ok := bound[graph.PosS]; ok && tr.S != v {
		return false
	}
	if v, ok := bound[graph.PosP]; ok && tr.P != v {
		return false
	}
	if v, ok := bound[graph.PosO]; ok && tr.O != v {
		return false
	}
	return true
}

// estimate returns the index range size for tp under b — the planner's
// selectivity estimate.
func (j *Jena) estimate(tp graph.TriplePattern, b graph.Binding) int {
	bound := map[graph.Position]graph.ID{}
	for _, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		t := tp.Term(pos)
		if !t.IsVar {
			bound[pos] = t.Value
		} else if v, ok := b[t.Name]; ok {
			bound[pos] = v
		}
	}
	tree, prefix := j.bestTree(bound)
	lo, hi := tree.PrefixRange(prefix)
	return hi - lo
}

// extend merges tp's components into b given a matching triple, returning
// false on a conflict (repeated variable with a different value).
func extend(tp graph.TriplePattern, tr graph.Triple, b graph.Binding) (graph.Binding, bool) {
	vals := [3]graph.ID{tr.S, tr.P, tr.O}
	out := b
	cloned := false
	for i, pos := range []graph.Position{graph.PosS, graph.PosP, graph.PosO} {
		t := tp.Term(pos)
		if !t.IsVar {
			continue
		}
		if v, ok := out[t.Name]; ok {
			if v != vals[i] {
				return nil, false
			}
			continue
		}
		if !cloned {
			out = b.Clone()
			cloned = true
		}
		out[t.Name] = vals[i]
	}
	return out, true
}

// Evaluate runs the nested-loop plan and returns solutions under the same
// options contract as the LTJ engine.
func (j *Jena) Evaluate(q graph.Pattern, opt ltj.Options) (*ltj.Result, error) {
	res := &ltj.Result{}
	if len(q) == 0 {
		return res, nil
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	ticks := 0
	checkDeadline := func() bool {
		if deadline.IsZero() {
			return false
		}
		ticks++
		return ticks&255 == 0 && time.Now().After(deadline)
	}

	remaining := make([]graph.TriplePattern, len(q))
	copy(remaining, q)

	var rec func(rem []graph.TriplePattern, b graph.Binding) bool
	rec = func(rem []graph.TriplePattern, b graph.Binding) bool {
		if checkDeadline() {
			res.TimedOut = true
			return false
		}
		if len(rem) == 0 {
			res.Solutions = append(res.Solutions, b.Clone())
			return opt.Limit <= 0 || len(res.Solutions) < opt.Limit
		}
		// Greedy: evaluate next the pattern with the smallest current
		// estimate (most selective under the bindings so far).
		bestI, bestE := 0, int(^uint(0)>>1)
		for i, tp := range rem {
			if e := j.estimate(tp, b); e < bestE {
				bestI, bestE = i, e
			}
		}
		tp := rem[bestI]
		rest := make([]graph.TriplePattern, 0, len(rem)-1)
		rest = append(rest, rem[:bestI]...)
		rest = append(rest, rem[bestI+1:]...)
		cont := true
		j.scan(tp, b, func(tr graph.Triple) bool {
			if checkDeadline() {
				res.TimedOut = true
				cont = false
				return false
			}
			if ext, ok := extend(tp, tr, b); ok {
				if !rec(rest, ext) {
					cont = false
					return false
				}
			}
			return true
		})
		return cont
	}
	rec(remaining, graph.Binding{})
	if res.TimedOut {
		return res, nil
	}
	return res, nil
}
