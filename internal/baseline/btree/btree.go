// Package btree provides a from-scratch static B+-tree over triples and,
// on top of it, the repository's Jena TDB analogue: three clustered
// B+-tree orders (spo, pos, osp) queried with index-nested-loop joins —
// the classic non-worst-case-optimal graph store the paper compares
// against. The sibling package btreeltj reuses the same trees in all six
// orders to reproduce the paper's "Jena LTJ" configuration.
package btree

import (
	"sort"

	"repro/internal/graph"
)

// Key is a triple's coordinates in the tree's level order.
type Key [3]graph.ID

// Less compares keys lexicographically.
func (k Key) Less(o Key) bool {
	for i := 0; i < 3; i++ {
		if k[i] != o[i] {
			return k[i] < o[i]
		}
	}
	return false
}

// Fanout is the number of keys per page. With 12-byte keys this gives
// pages of roughly 1.5 KB plus headers, a small-page configuration of the
// sort Jena TDB uses in memory-mapped mode.
const Fanout = 128

// pageHeaderBytes approximates the per-page bookkeeping of a real
// disk-backed tree (page id, count, sibling pointer).
const pageHeaderBytes = 24

// Tree is a static (bulk-loaded, read-only) clustered B+-tree: the sorted
// keys are the leaf level, and each internal level stores the first key of
// each child page.
type Tree struct {
	order [3]graph.Position // level order, e.g. [s,p,o]
	keys  []Key             // sorted leaf data (clustered)
	// inner[l][i] is the first key of child i at level l; level 0 is the
	// level just above the leaves.
	inner [][]Key
}

// NewTree bulk-loads the triples into a tree sorted by the given attribute
// order.
func NewTree(ts []graph.Triple, order [3]graph.Position) *Tree {
	t := &Tree{order: order, keys: make([]Key, len(ts))}
	for i, tr := range ts {
		t.keys[i] = t.keyOf(tr)
	}
	sort.Slice(t.keys, func(i, j int) bool { return t.keys[i].Less(t.keys[j]) })
	// Build the directory levels bottom-up.
	cur := len(t.keys)
	for cur > Fanout {
		nPages := (cur + Fanout - 1) / Fanout
		level := make([]Key, nPages)
		if len(t.inner) == 0 {
			for i := 0; i < nPages; i++ {
				level[i] = t.keys[i*Fanout]
			}
		} else {
			prev := t.inner[len(t.inner)-1]
			for i := 0; i < nPages; i++ {
				level[i] = prev[i*Fanout]
			}
		}
		t.inner = append(t.inner, level)
		cur = nPages
	}
	return t
}

func (t *Tree) keyOf(tr graph.Triple) Key {
	var k Key
	for i, pos := range t.order {
		switch pos {
		case graph.PosS:
			k[i] = tr.S
		case graph.PosP:
			k[i] = tr.P
		default:
			k[i] = tr.O
		}
	}
	return k
}

// Len returns the number of keys.
func (t *Tree) Len() int { return len(t.keys) }

// At returns the i-th key in sorted order.
func (t *Tree) At(i int) Key { return t.keys[i] }

// Order returns the tree's level order.
func (t *Tree) Order() [3]graph.Position { return t.order }

// TripleAt decodes the i-th key back into a triple.
func (t *Tree) TripleAt(i int) graph.Triple {
	k := t.keys[i]
	var tr graph.Triple
	for j, pos := range t.order {
		switch pos {
		case graph.PosS:
			tr.S = k[j]
		case graph.PosP:
			tr.P = k[j]
		default:
			tr.O = k[j]
		}
	}
	return tr
}

// LowerBound returns the smallest index i with keys[i] >= k, descending
// the directory levels and finishing with a binary search inside one page.
func (t *Tree) LowerBound(k Key) int {
	// Descend from the top directory level narrowing to a child range.
	lo, hi := 0, 0 // page range at the current level
	for l := len(t.inner) - 1; l >= 0; l-- {
		level := t.inner[l]
		if l == len(t.inner)-1 {
			lo, hi = 0, len(level)
		}
		// Find the last page whose first key is <= k.
		i := lo + sort.Search(hi-lo, func(i int) bool { return k.Less(level[lo+i]) })
		if i > lo {
			i--
		}
		lo, hi = i*Fanout, (i+1)*Fanout
		if l == 0 {
			if hi > len(t.keys) {
				hi = len(t.keys)
			}
		} else if hi > len(t.inner[l-1]) {
			hi = len(t.inner[l-1])
		}
	}
	if len(t.inner) == 0 {
		lo, hi = 0, len(t.keys)
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return !t.keys[lo+i].Less(k) })
}

// PrefixRange returns [lo, hi) of the keys whose first len(prefix)
// coordinates equal prefix.
func (t *Tree) PrefixRange(prefix []graph.ID) (int, int) {
	var loKey, hiKey Key
	copy(loKey[:], prefix)
	for i := len(prefix); i < 3; i++ {
		loKey[i] = 0
	}
	lo := t.LowerBound(loKey)
	// hiKey: the prefix with its last coordinate incremented.
	copy(hiKey[:], prefix)
	for i := len(prefix); i < 3; i++ {
		hiKey[i] = 0
	}
	carry := true
	for i := len(prefix) - 1; i >= 0 && carry; i-- {
		hiKey[i]++
		carry = hiKey[i] == 0
	}
	if len(prefix) == 0 || carry {
		return lo, len(t.keys)
	}
	return lo, t.LowerBound(hiKey)
}

// SizeBytes approximates the in-memory footprint including page headers
// and the directory, the way a page-based store accounts for them.
func (t *Tree) SizeBytes() int {
	leafPages := (len(t.keys) + Fanout - 1) / Fanout
	total := len(t.keys)*12 + leafPages*pageHeaderBytes
	for _, level := range t.inner {
		pages := (len(level) + Fanout - 1) / Fanout
		total += len(level)*12 + len(level)*8 + pages*pageHeaderBytes // keys + child pointers
	}
	return total
}
