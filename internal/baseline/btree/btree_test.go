package btree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/testutil"
)

func TestTreeSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := testutil.RandomGraph(rng, 5000, 300, 8)
	tr := NewTree(g.Triples(), [3]graph.Position{graph.PosS, graph.PosP, graph.PosO})
	if tr.Len() != g.Len() {
		t.Fatalf("Len = %d, want %d", tr.Len(), g.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if !tr.At(i - 1).Less(tr.At(i)) {
			t.Fatalf("keys not strictly sorted at %d", i)
		}
	}
	// Round-trip through TripleAt must give back the graph.
	got := make([]graph.Triple, tr.Len())
	for i := range got {
		got[i] = tr.TripleAt(i)
	}
	graph.SortSPO(got)
	want := g.Triples()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TripleAt round-trip mismatch at %d", i)
		}
	}
}

func TestLowerBoundAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := testutil.RandomGraph(rng, 3000, 100, 5)
	for _, order := range [][3]graph.Position{
		{graph.PosS, graph.PosP, graph.PosO},
		{graph.PosO, graph.PosP, graph.PosS},
	} {
		tr := NewTree(g.Triples(), order)
		for trial := 0; trial < 1000; trial++ {
			k := Key{graph.ID(rng.Intn(110)), graph.ID(rng.Intn(110)), graph.ID(rng.Intn(110))}
			got := tr.LowerBound(k)
			want := sort.Search(tr.Len(), func(i int) bool { return !tr.At(i).Less(k) })
			if got != want {
				t.Fatalf("LowerBound(%v) = %d, want %d", k, got, want)
			}
		}
		// Extremes.
		if got := tr.LowerBound(Key{}); got != 0 {
			t.Errorf("LowerBound(zero) = %d", got)
		}
		maxK := Key{^graph.ID(0), ^graph.ID(0), ^graph.ID(0)}
		if got := tr.LowerBound(maxK); got != tr.Len() && tr.At(got).Less(maxK) {
			t.Errorf("LowerBound(max) = %d of %d", got, tr.Len())
		}
	}
}

func TestPrefixRange(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g := testutil.RandomGraph(rng, 2000, 50, 4)
	tr := NewTree(g.Triples(), [3]graph.Position{graph.PosP, graph.PosO, graph.PosS})
	for trial := 0; trial < 300; trial++ {
		p := graph.ID(rng.Intn(5))
		lo, hi := tr.PrefixRange([]graph.ID{p})
		cnt := 0
		for _, u := range g.Triples() {
			if u.P == p {
				cnt++
			}
		}
		if hi-lo != cnt {
			t.Fatalf("PrefixRange(p=%d) size = %d, want %d", p, hi-lo, cnt)
		}
		for i := lo; i < hi; i++ {
			if tr.At(i)[0] != p {
				t.Fatalf("PrefixRange content wrong at %d", i)
			}
		}
	}
	// Empty prefix covers everything.
	lo, hi := tr.PrefixRange(nil)
	if lo != 0 || hi != tr.Len() {
		t.Errorf("empty prefix = [%d,%d), want [0,%d)", lo, hi, tr.Len())
	}
}

func TestJenaAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := testutil.RandomGraph(rng, 120, 15, 3)
	j := NewJena(g)
	for trial := 0; trial < 120; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 0.4, true)
		want := g.Evaluate(q, 0)
		res, err := j.Evaluate(q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
}

func TestJenaLimit(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(65)), 400, 30, 2)
	j := NewJena(g)
	q := graph.Pattern{graph.TP(graph.Var("x"), graph.Var("p"), graph.Var("y"))}
	res, err := j.Evaluate(q, ltj.Options{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 5 {
		t.Errorf("limit 5: got %d", len(res.Solutions))
	}
}

func TestJenaSpaceIsThreeOrders(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(66)), 2000, 200, 5)
	j := NewJena(g)
	bpt := float64(j.SizeBytes()) / float64(g.Len())
	if bpt < 36 { // three 12-byte copies plus directories
		t.Errorf("Jena bytes/triple = %.1f, expected >= 36", bpt)
	}
}

func TestTreeSmall(t *testing.T) {
	// Trees smaller than one page must still work.
	ts := []graph.Triple{{S: 2, P: 0, O: 1}, {S: 1, P: 1, O: 0}}
	tr := NewTree(ts, [3]graph.Position{graph.PosS, graph.PosP, graph.PosO})
	if tr.Len() != 2 {
		t.Fatal("len")
	}
	if got := tr.LowerBound(Key{1, 0, 0}); got != 0 {
		t.Errorf("LowerBound = %d, want 0", got)
	}
	if got := tr.LowerBound(Key{2, 0, 0}); got != 1 {
		t.Errorf("LowerBound = %d, want 1", got)
	}
	empty := NewTree(nil, [3]graph.Position{graph.PosS, graph.PosP, graph.PosO})
	if empty.Len() != 0 || empty.LowerBound(Key{}) != 0 {
		t.Error("empty tree misbehaves")
	}
}
