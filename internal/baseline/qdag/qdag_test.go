package qdag

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltj"
	"repro/internal/testutil"
)

func TestK2TreeMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pts := make([]point, 0, 200)
	set := map[point]bool{}
	for i := 0; i < 200; i++ {
		p := point{row: graph.ID(rng.Intn(50)), col: graph.ID(rng.Intn(50))}
		if !set[p] {
			set[p] = true
			pts = append(pts, p)
		}
	}
	h := uint(6) // 64x64
	tr := buildK2(pts, h)
	// Navigate to every cell and compare with the set.
	for row := graph.ID(0); row < 64; row++ {
		for col := graph.ID(0); col < 64; col++ {
			node := 0
			present := true
			for l := uint(0); l < h; l++ {
				shift := h - 1 - l
				rb := int((row >> shift) & 1)
				cb := int((col >> shift) & 1)
				qd := rb*2 + cb
				if !tr.hasQuad(l, node, qd) {
					present = false
					break
				}
				node = tr.childNode(l, node, qd)
			}
			if present != set[point{row, col}] {
				t.Fatalf("cell (%d,%d): tree says %v, set says %v", row, col, present, set[point{row, col}])
			}
		}
	}
}

func supportedPattern(q graph.Pattern) bool {
	for _, tp := range q {
		if tp.P.IsVar || !tp.S.IsVar || !tp.O.IsVar {
			return false
		}
	}
	return true
}

func TestEvaluateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := testutil.RandomGraph(rng, 150, 20, 3)
	idx := New(g)
	tried := 0
	for trial := 0; tried < 80 && trial < 2000; trial++ {
		q := testutil.RandomPattern(rng, g, 1+rng.Intn(3), 1+rng.Intn(4), 0.0, true)
		// Force constant predicates: replace predicate variables.
		for i := range q {
			q[i].P = graph.Const(graph.ID(rng.Intn(3)))
		}
		if !supportedPattern(q) {
			continue
		}
		tried++
		want := g.Evaluate(q, 0)
		res, err := idx.Evaluate(q, ltj.Options{})
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if diff := testutil.SameSolutions(res.Solutions, want, q.Vars()); diff != "" {
			t.Fatalf("query %v: %s", q, diff)
		}
	}
	if tried < 50 {
		t.Fatalf("only exercised %d supported queries", tried)
	}
}

func TestTriangles(t *testing.T) {
	ts := []graph.Triple{
		{S: 0, P: 0, O: 1}, {S: 1, P: 0, O: 2}, {S: 0, P: 0, O: 2},
		{S: 3, P: 0, O: 4}, {S: 4, P: 0, O: 5}, {S: 3, P: 0, O: 5},
		{S: 6, P: 0, O: 7},
	}
	g := graph.New(ts)
	idx := New(g)
	q := graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
		graph.TP(graph.Var("y"), graph.Const(0), graph.Var("z")),
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("z")),
	}
	res, err := idx.Evaluate(q, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("triangles = %d, want 2", len(res.Solutions))
	}
}

func TestUnsupportedShapes(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	for _, q := range []graph.Pattern{
		{graph.TP(graph.Const(5), graph.Const(1), graph.Var("o"))}, // constant subject
		{graph.TP(graph.Var("s"), graph.Var("p"), graph.Var("o"))}, // variable predicate
		{graph.TP(graph.Var("s"), graph.Const(1), graph.Const(0))}, // constant object
	} {
		if _, err := idx.Evaluate(q, ltj.Options{}); !errors.Is(err, ErrUnsupported) {
			t.Errorf("query %v: error = %v, want ErrUnsupported", q, err)
		}
	}
}

func TestAbsentPredicate(t *testing.T) {
	g := testutil.PaperGraph()
	idx := New(g)
	res, err := idx.Evaluate(graph.Pattern{
		graph.TP(graph.Var("s"), graph.Const(99), graph.Var("o")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Error("absent predicate yielded solutions")
	}
}

func TestSelfLoopSharedVariable(t *testing.T) {
	g := graph.New([]graph.Triple{
		{S: 1, P: 0, O: 1}, {S: 2, P: 0, O: 3}, {S: 4, P: 0, O: 4},
	})
	idx := New(g)
	res, err := idx.Evaluate(graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("x")),
	}, ltj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("self-loops = %d, want 2", len(res.Solutions))
	}
}

func TestLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	g := testutil.RandomGraph(rng, 500, 30, 2)
	idx := New(g)
	res, err := idx.Evaluate(graph.Pattern{
		graph.TP(graph.Var("x"), graph.Const(0), graph.Var("y")),
	}, ltj.Options{Limit: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 6 {
		t.Errorf("limit 6: got %d", len(res.Solutions))
	}
}

func TestSuccinctSpace(t *testing.T) {
	// The quadtrees of a sparse graph should be far below the 72 B/triple
	// of the six flat orders.
	rng := rand.New(rand.NewSource(94))
	g := testutil.RandomGraph(rng, 20000, 5000, 4)
	idx := New(g)
	bpt := float64(idx.SizeBytes()) / float64(g.Len())
	if bpt > 30 {
		t.Errorf("qdag bytes/triple = %.1f, expected succinct (< 30)", bpt)
	}
}
